// Quickstart: check a handful of statements the way the paper's
// `find_anti_patterns(query)` API does (§7), print the ranked report.
//
//   $ ./quickstart
#include <cstdio>

#include "core/sqlcheck.h"

int main() {
  sqlcheck::SqlCheck checker;

  // An application workload: schema + queries, warts and all.
  checker.AddScript(R"sql(
CREATE TABLE users (
  id INTEGER PRIMARY KEY,
  name VARCHAR(40),
  email VARCHAR(60),
  password VARCHAR(32),
  balance FLOAT,
  friend_ids TEXT
);
CREATE TABLE orders (order_id INTEGER PRIMARY KEY, user_id INTEGER, total FLOAT);
SELECT * FROM users WHERE friend_ids LIKE '%,42,%';
SELECT o.total FROM orders o JOIN users u ON o.user_id = u.id;
INSERT INTO orders VALUES (1, 42, 9.99);
SELECT name FROM users ORDER BY RAND() LIMIT 1;
)sql");

  sqlcheck::Report report = checker.Run();
  std::printf("%s", report.ToText().c_str());

  // Programmatic access: counts per anti-pattern type.
  std::printf("summary:\n");
  for (const auto& [type, count] : report.CountsByType()) {
    std::printf("  %-28s x%d\n", sqlcheck::ApName(type), count);
  }
  return report.empty() ? 1 : 0;
}
