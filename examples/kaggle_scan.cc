// Data-only analysis (§8.4 "Data Analysis"): no queries at all — attach a
// database and let the data rules profile it, exactly like the paper's scan
// of 31 Kaggle SQLite files. Scans two of the synthesized datasets.
//
//   $ ./kaggle_scan
#include <cstdio>

#include "core/sqlcheck.h"
#include "workload/kaggle.h"

using namespace sqlcheck;

int main() {
  int scanned = 0;
  for (const auto& spec : workload::KaggleSpecs()) {
    if (spec.name != "The History of Baseball" && spec.name != "Soccer Dataset") continue;
    auto db = workload::SynthesizeKaggleDatabase(spec);

    SqlCheckOptions options = SqlCheckOptions::Parallel();
    options.detector.intra_query = false;  // data rules only — no queries exist
    SqlCheck checker(options);
    checker.AttachDatabase(db.get());
    Report report = checker.Run();

    std::printf("== %s: %zu tables, %zu findings ==\n", spec.name.c_str(),
                db->table_count(), report.size());
    std::printf("%s\n", report.ToText(5).c_str());
    ++scanned;
  }
  return scanned == 2 ? 0 : 1;
}
