// Streaming monitor: the incremental library API (AnalysisSession) driving
// a long-lived watcher — statements arrive one at a time (here, a simulated
// application trace) and each Check() reports the new statement's findings
// against everything seen so far, at O(rules) per statement no matter how
// long the session has been running. This is the library-level equivalent of
// `sqlcheck --follow`.
//
//   $ ./streaming_monitor
#include <cstdio>

#include "core/session.h"

int main() {
  sqlcheck::AnalysisSession session;

  // The schema ships first (think: migration files at service start-up).
  session.AddScript(R"sql(
CREATE TABLE users (
  id INTEGER PRIMARY KEY,
  name VARCHAR(40),
  password VARCHAR(32),
  friend_ids TEXT
);
CREATE TABLE orders (order_id INTEGER PRIMARY KEY, user_id INTEGER, total FLOAT);
)sql");

  // Then the query stream. Repeated statements hit the fingerprint memo: one
  // hash lookup instead of a fresh parse-and-analyze.
  const char* kTrace[] = {
      "SELECT * FROM users WHERE id = 1",
      "SELECT * FROM users WHERE id = 2",  // new group: literals are analysis-relevant
      "SELECT * FROM users WHERE id = 1",  // memo hit: byte-identical repeat
      "SELECT name FROM users WHERE friend_ids LIKE '%,42,%'",
      "SELECT o.total FROM orders o JOIN users u ON o.user_id = u.id",
      "SELECT name FROM users WHERE password = 'hunter2'",
      "SELECT name FROM users ORDER BY RAND() LIMIT 1",
  };

  size_t total_findings = 0;
  for (const char* sql : kTrace) {
    sqlcheck::Report delta = session.Check(sql);
    std::printf("stmt %2zu | %zu finding(s) | %s\n", session.statement_count() - 1,
                delta.size(), sql);
    for (const auto& f : delta.findings) {
      std::printf("        -> %s: %s\n", sqlcheck::ApName(f.ranked.detection.type),
                  f.ranked.detection.message.c_str());
    }
    total_findings += delta.size();
  }

  std::printf("\n%zu statements (%zu unique), %zu streamed finding(s)\n",
              session.statement_count(), session.unique_count(), total_findings);

  // A full snapshot is still available at any point — byte-identical to a
  // batch SqlCheck::Run() over the same statements.
  sqlcheck::Report full = session.Snapshot();
  std::printf("full snapshot: %zu finding(s), %d distinct type(s)\n", full.size(),
              full.DistinctTypes());
  return 0;
}
