-- Sample application workload exercising a spread of anti-patterns:
-- schema DDL plus the queries an app issues against it. Used by the CLI
-- smoke tests (`sqlcheck examples/sample_workload.sql`) and the README.

CREATE TABLE users (
    id INTEGER PRIMARY KEY,
    name VARCHAR(80) NOT NULL,
    email VARCHAR(120),
    password VARCHAR(64),
    tag_list TEXT,
    balance FLOAT,
    created_at TIMESTAMP
);

CREATE TABLE orders (
    id INTEGER PRIMARY KEY,
    user_id INTEGER,
    status VARCHAR(16) CHECK (status IN ('open', 'paid', 'cancelled')),
    total FLOAT
);

CREATE INDEX idx_orders_user ON orders (user_id);
CREATE INDEX idx_orders_user_status ON orders (user_id, status);

-- Queries.
SELECT * FROM users WHERE email = 'ada@example.com';
SELECT u.name, o.total
    FROM users u JOIN orders o ON u.id = o.user_id
    WHERE o.status = 'open';
SELECT name FROM users WHERE tag_list LIKE '%,42,%';
SELECT name, password FROM users WHERE password = 'hunter2';
SELECT * FROM orders ORDER BY RAND();
INSERT INTO orders VALUES (1, 7, 'open', 19.99);
