// The user-study scenario (§8.3): a developer drafts the bike e-commerce
// schema with typical shortcuts; sqlcheck reviews it, suggests fixes, and the
// example applies every mechanical rewrite it gets back, then re-checks.
//
//   $ ./ecommerce_review
#include <cstdio>

#include "core/sqlcheck.h"

using namespace sqlcheck;

int main() {
  const char* draft = R"sql(
CREATE TABLE products (sku VARCHAR(20), name VARCHAR(60), price FLOAT, tag_ids TEXT);
CREATE TABLE accounts (id INTEGER PRIMARY KEY, email VARCHAR(60), password VARCHAR(32));
CREATE TABLE orders (order_id INTEGER PRIMARY KEY, account INTEGER,
                     status ENUM('new', 'paid', 'shipped'), total FLOAT);
SELECT * FROM products WHERE tag_ids LIKE '%,7,%';
SELECT name FROM products WHERE name LIKE '%gravel%';
INSERT INTO orders VALUES (1, 7, 'new', 129.99);
SELECT DISTINCT p.name FROM products p JOIN orders o ON p.sku = o.status;
SELECT sku FROM products ORDER BY RAND() LIMIT 3;
)sql";

  // Batch analysis across every hardware thread; output is identical to a
  // serial run.
  SqlCheck checker(SqlCheckOptions::Parallel());
  checker.AddScript(draft);
  Report report = checker.Run();

  std::printf("== review of the draft schema/queries ==\n%s\n",
              report.ToText().c_str());

  // Apply every mechanical rewrite the repair engine produced.
  std::printf("== fixes a developer can paste straight in ==\n");
  int rewrites = 0;
  for (const auto& finding : report.findings) {
    if (finding.fix.kind != FixKind::kRewrite) continue;
    ++rewrites;
    std::printf("-- fixing: %s\n", ApName(finding.ranked.detection.type));
    for (const auto& stmt : finding.fix.statements) {
      std::printf("%s\n", stmt.c_str());
    }
  }
  std::printf("\n%d mechanical rewrites, %zu textual suggestions\n", rewrites,
              report.size() - static_cast<size_t>(rewrites));
  return report.empty() ? 1 : 0;
}
