// The paper's case study end to end (§2.1, §8.2): build the GlobaLeaks-style
// deployment, let sqlcheck find/rank/fix its anti-patterns with BOTH query
// and data analysis, apply the headline fix, and show the AP is gone and the
// task query got faster.
//
//   $ ./globaleaks_audit
#include <chrono>
#include <cstdio>

#include "core/sqlcheck.h"
#include "engine/executor.h"
#include "workload/globaleaks.h"

using namespace sqlcheck;
using workload::Globaleaks;

namespace {

double TimeMs(Executor& exec, const std::string& sql_text) {
  auto start = std::chrono::steady_clock::now();
  auto r = exec.ExecuteSql(sql_text);
  double ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                        start)
                  .count();
  if (!r.ok()) std::printf("  (query failed: %s)\n", r.message().c_str());
  return ms;
}

}  // namespace

int main() {
  workload::GlobaleaksOptions scale;
  scale.tenant_count = 500;
  scale.users_per_tenant = 20;

  // 1. Deploy the AP-ridden application.
  Database ap_db("globaleaks");
  Globaleaks::BuildWithAps(&ap_db, scale);
  std::printf("== deployed GlobaLeaks with %zu tenants / %zu users ==\n",
              ap_db.GetTable("Tenants")->live_row_count(),
              ap_db.GetTable("Users")->live_row_count());

  // 2. Audit it: queries + live database, sharded over all hardware threads.
  SqlCheck checker(SqlCheckOptions::Parallel());
  checker.AddScript(Globaleaks::ApWorkloadScript());
  checker.AttachDatabase(&ap_db);
  Report report = checker.Run();
  std::printf("\n%s\n", report.ToText(6).c_str());

  // 3. Measure the #1 task before the fix.
  Executor ap_exec(&ap_db);
  std::string user = Globaleaks::SomeUserId(scale);
  double before_ms = TimeMs(ap_exec, Globaleaks::Task1Ap(user));

  // 4. Apply the multi-valued-attribute fix (the paper's intersection
  // table): deploy the refactored design instead.
  Database fixed_db("globaleaks_fixed");
  Globaleaks::BuildRefactored(&fixed_db, scale);
  Executor fixed_exec(&fixed_db);
  double after_ms = TimeMs(fixed_exec, Globaleaks::Task1Fixed(user));

  std::printf("Task 1 (tenants of a user): %.3f ms with the AP, %.3f ms fixed "
              "(%.0fx faster)\n",
              before_ms, after_ms, before_ms / std::max(after_ms, 1e-6));

  // 5. Re-audit the refactored deployment: the headline APs are gone.
  SqlCheck recheck;
  recheck.AttachDatabase(&fixed_db);
  Report after = recheck.Run();
  auto counts = after.CountsByType();
  std::printf("\nafter refactor: MVA=%d, EnumeratedTypes=%d (both should be 0)\n",
              counts[AntiPattern::kMultiValuedAttribute],
              counts[AntiPattern::kEnumeratedTypes]);
  return 0;
}
