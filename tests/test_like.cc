#include "engine/like.h"

#include <gtest/gtest.h>

namespace sqlcheck {
namespace {

TEST(LikeTest, ExactMatchWithoutWildcards) {
  EXPECT_TRUE(LikeMatch("abc", "abc"));
  EXPECT_FALSE(LikeMatch("abc", "abcd"));
  EXPECT_FALSE(LikeMatch("abcd", "abc"));
}

TEST(LikeTest, PercentWildcard) {
  EXPECT_TRUE(LikeMatch("hello world", "hello%"));
  EXPECT_TRUE(LikeMatch("hello world", "%world"));
  EXPECT_TRUE(LikeMatch("hello world", "%lo wo%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("hello", "%x%"));
}

TEST(LikeTest, UnderscoreWildcard) {
  EXPECT_TRUE(LikeMatch("cat", "c_t"));
  EXPECT_FALSE(LikeMatch("cart", "c_t"));
  EXPECT_TRUE(LikeMatch("cart", "c__t"));
}

TEST(LikeTest, ConsecutivePercentsCollapse) {
  EXPECT_TRUE(LikeMatch("abc", "%%a%%c%%"));
}

TEST(LikeTest, CaseSensitivityFlag) {
  EXPECT_FALSE(LikeMatch("ABC", "abc"));
  EXPECT_TRUE(LikeMatch("ABC", "abc", /*case_insensitive=*/true));
}

TEST(LikeTest, EscapedWildcard) {
  EXPECT_TRUE(LikeMatch("50%", "50\\%"));
  EXPECT_FALSE(LikeMatch("50x", "50\\%"));
}

TEST(WordBoundaryTest, MarkerDetection) {
  EXPECT_TRUE(HasWordBoundaryMarkers("[[:<:]]U1[[:>:]]"));
  EXPECT_FALSE(HasWordBoundaryMarkers("%U1%"));
}

TEST(WordBoundaryTest, MatchesWholeTokensOnly) {
  // The paper's §2.1 scenario: finding U1 in a comma-separated list.
  EXPECT_TRUE(WordBoundaryMatch("U1,U2,U3", "[[:<:]]U1[[:>:]]"));
  EXPECT_TRUE(WordBoundaryMatch("U2,U1", "[[:<:]]U1[[:>:]]"));
  EXPECT_FALSE(WordBoundaryMatch("U11,U12", "[[:<:]]U1[[:>:]]"));  // no partials
  EXPECT_FALSE(WordBoundaryMatch("XU1", "[[:<:]]U1[[:>:]]"));
}

TEST(WordBoundaryTest, ToleratesSurroundingPercents) {
  EXPECT_TRUE(WordBoundaryMatch("a U1 b", "%[[:<:]]U1[[:>:]]%"));
}

TEST(WordBoundaryTest, SingleElementList) {
  EXPECT_TRUE(WordBoundaryMatch("U1", "[[:<:]]U1[[:>:]]"));
}

TEST(SqlPatternTest, DispatchesByMarkerPresence) {
  EXPECT_TRUE(SqlPatternMatch("U1,U2", "[[:<:]]U2[[:>:]]"));
  EXPECT_TRUE(SqlPatternMatch("hello", "he%"));
  EXPECT_FALSE(SqlPatternMatch("U12", "[[:<:]]U1[[:>:]]"));
}

TEST(SimpleRegexTest, SubstringSemantics) {
  EXPECT_TRUE(SimpleRegexMatch("hello world", "world"));
  EXPECT_FALSE(SimpleRegexMatch("hello", "world"));
}

TEST(SimpleRegexTest, AnchorsAndDotStar) {
  EXPECT_TRUE(SimpleRegexMatch("hello", "^he"));
  EXPECT_FALSE(SimpleRegexMatch("ahead", "^he"));
  EXPECT_TRUE(SimpleRegexMatch("hello", "lo$"));
  EXPECT_FALSE(SimpleRegexMatch("lonely", "lo$"));
  EXPECT_TRUE(SimpleRegexMatch("abc123", "a.*3"));
  EXPECT_TRUE(SimpleRegexMatch("ac", "ab*c"));
  EXPECT_TRUE(SimpleRegexMatch("abbbc", "ab*c"));
}

TEST(SimpleRegexTest, WordBoundaryMarkers) {
  EXPECT_TRUE(SimpleRegexMatch("U1,U2", "[[:<:]]U2[[:>:]]"));
  EXPECT_FALSE(SimpleRegexMatch("U12", "[[:<:]]U1[[:>:]]"));
}

TEST(SimpleRegexTest, DotMatchesOneChar) {
  EXPECT_TRUE(SimpleRegexMatch("cat", "c.t"));
  EXPECT_FALSE(SimpleRegexMatch("ct", "c.t"));
}

}  // namespace
}  // namespace sqlcheck
