#include "ranking/model.h"

#include <gtest/gtest.h>

namespace sqlcheck {
namespace {

TEST(RankingModelTest, Figure6FormulaeExactValues) {
  // Reproduces Example 6 / Figure 7 of the paper.
  ApMetrics index_underuse;
  index_underuse.read_speedup = 1.5;
  ApMetrics enum_types;
  enum_types.write_speedup = 10.0;
  enum_types.maintainability = 2.0;
  enum_types.data_amplification = 1.0;

  RankingModel c1(RankingWeights::C1());
  EXPECT_NEAR(c1.Score(index_underuse), 0.21, 1e-9);   // 0.7 * min(1, 1.5/5)
  EXPECT_NEAR(c1.Score(enum_types), 0.175, 1e-9);      // 0.15 + 0.02 + 0.005

  RankingModel c2(RankingWeights::C2());
  EXPECT_NEAR(c2.Score(index_underuse), 0.12, 1e-9);
  EXPECT_NEAR(c2.Score(enum_types), 0.445, 1e-9);      // paper rounds to 0.47
}

TEST(RankingModelTest, SquashingSaturatesAtOne) {
  ApMetrics huge;
  huge.read_speedup = 10000.0;
  RankingModel model(RankingWeights::C1());
  EXPECT_NEAR(model.Score(huge), 0.7, 1e-9);  // Wrp * min(1, ...) = Wrp
}

TEST(RankingModelTest, NoImprovementScoresZero) {
  ApMetrics flat;
  flat.read_speedup = 1.0;  // ratio 1.0 = no change
  flat.write_speedup = 0.9;
  RankingModel model;
  EXPECT_DOUBLE_EQ(model.Score(flat), 0.0);
}

TEST(RankingModelTest, RankSortsDescending) {
  Detection high;
  high.type = AntiPattern::kMultiValuedAttribute;  // huge read speedup
  Detection low;
  low.type = AntiPattern::kGenericPrimaryKey;  // maintainability only
  RankingModel model;
  auto ranked = model.Rank({low, high, low});
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].detection.type, AntiPattern::kMultiValuedAttribute);
  EXPECT_GE(ranked[0].score, ranked[1].score);
  EXPECT_GE(ranked[1].score, ranked[2].score);
}

TEST(RankingModelTest, QueryAwareAdjustment) {
  // §5.2: a detection on a read-only statement cannot claim write speedup.
  sql::SelectStatement select_stmt;
  sql::InsertStatement insert_stmt;
  Detection on_select;
  on_select.type = AntiPattern::kEnumeratedTypes;  // write-heavy metrics
  on_select.stmt = &select_stmt;
  Detection on_insert = on_select;
  on_insert.stmt = &insert_stmt;

  RankingModel model(RankingWeights::C2());
  double select_score = model.ScoreDetection(on_select).score;
  double insert_score = model.ScoreDetection(on_insert).score;
  EXPECT_LT(select_score, insert_score);
}

TEST(RankingModelTest, ByApCountModeGroupsBusyQueries) {
  Detection a1;
  a1.type = AntiPattern::kGenericPrimaryKey;  // low score
  a1.query = "q_busy";
  Detection a2 = a1;
  a2.type = AntiPattern::kColumnWildcard;
  Detection b;
  b.type = AntiPattern::kMultiValuedAttribute;  // highest score
  b.query = "q_single";

  RankingModel by_count(RankingWeights::C1(), InterQueryMode::kByApCount);
  auto ranked = by_count.Rank({b, a1, a2});
  // The two-AP query outranks the single high-scoring one in count mode.
  EXPECT_EQ(ranked[0].detection.query, "q_busy");

  RankingModel by_score(RankingWeights::C1(), InterQueryMode::kByScore);
  auto ranked2 = by_score.Rank({b, a1, a2});
  EXPECT_EQ(ranked2[0].detection.query, "q_single");
}

TEST(MetricsStoreTest, DefaultsCoverEveryType) {
  MetricsStore store = MetricsStore::Default();
  // Spot-check the calibration rows cited from the paper.
  EXPECT_NEAR(store.For(AntiPattern::kMultiValuedAttribute).read_speedup, 636.0, 1e-9);
  EXPECT_NEAR(store.For(AntiPattern::kIndexUnderuse).read_speedup, 1.5, 1e-9);
  EXPECT_NEAR(store.For(AntiPattern::kEnumeratedTypes).write_speedup, 10.0, 1e-9);
}

TEST(MetricsStoreTest, RecordObservationBlends) {
  MetricsStore store = MetricsStore::Default();
  ApMetrics observed;
  observed.read_speedup = 3.0;
  observed.accuracy = 1;
  double before = store.For(AntiPattern::kIndexUnderuse).read_speedup;
  store.RecordObservation(AntiPattern::kIndexUnderuse, observed, 0.5);
  const ApMetrics& after = store.For(AntiPattern::kIndexUnderuse);
  EXPECT_NEAR(after.read_speedup, 0.5 * before + 0.5 * 3.0, 1e-9);
  EXPECT_EQ(after.accuracy, 1);  // binary flags stick
}

}  // namespace
}  // namespace sqlcheck
