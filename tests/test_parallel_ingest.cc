// Sharded parallel ingestion (AnalysisSession::ParallelIngest): bulk-loading
// a script with ingest_parallelism N must leave the session byte-identical
// to serial ingestion — same statements, fingerprint groups, NameIds, memos,
// and reports — at every shard count, for adversarial statement orders, with
// fixes and verify-exec on, and on both the scalar and SIMD lexer paths.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/session.h"
#include "core/sqlcheck.h"
#include "server/handler.h"
#include "sql/block_scan.h"
#include "sql/splitter.h"
#include "workload/corpus.h"

namespace sqlcheck {
namespace {

/// Full serialized form — ToText and ToJson together catch every field.
std::string Serialize(const Report& report) {
  return report.ToText() + "\n---\n" + report.ToJson();
}

/// Adversarial bulk script: heavy cross-shard duplication (the same
/// statements recur in every region, so shard-local dedup must re-resolve
/// against earlier shards at merge), DML referencing tables whose DDL only
/// arrives in the last region (DDL-after-DML), and enough statements for an
/// 8-way split to clear the per-shard floor.
std::string AdversarialScript(size_t rounds) {
  std::string script;
  auto add = [&script](const std::string& stmt) {
    script += stmt;
    script += ";\n";
  };
  for (size_t r = 0; r < rounds; ++r) {
    const std::string t = "late" + std::to_string(r % 3);
    // DML first — the CREATE TABLE for `t` lands in the closing region.
    add("SELECT * FROM " + t + " WHERE id = ?");
    add("select * from " + t + " where id = ?");  // same group, case jitter
    add("SELECT a.name, b.status FROM " + t + " a JOIN orders b ON a.id = b.ref_id");
    add("INSERT INTO " + t + " VALUES (1, 'open', 0.5)");
    add("SELECT name FROM users WHERE tag_ids LIKE '%,7,%'");
    add("SELECT name, password FROM users WHERE password = 'hunter2'");
    add("UPDATE users SET balance = 0 WHERE id = " + std::to_string(r));
    add("SELECT * FROM users WHERE id = ?");  // duplicated in every round
  }
  add("CREATE TABLE users (id INT PRIMARY KEY, name VARCHAR(64), "
      "password VARCHAR(64), tag_ids TEXT, balance FLOAT)");
  add("CREATE TABLE orders (id INT PRIMARY KEY, ref_id INT, status VARCHAR(8))");
  for (int k = 0; k < 3; ++k) {
    const std::string t = "late" + std::to_string(k);
    add("CREATE TABLE " + t + " (id INT PRIMARY KEY, status VARCHAR(8), score FLOAT)");
    add("CREATE INDEX idx_" + t + " ON " + t + " (status)");
  }
  add("SELECT * FROM users WHERE id = ?");  // one more duplicate after the DDL
  return script;
}

SqlCheckOptions WithIngestThreads(int threads, const SqlCheckOptions& base = {}) {
  SqlCheckOptions options = base;
  options.ingest_parallelism = threads;
  return options;
}

/// Serial-reference vs sharded session over one bulk script: reports,
/// grouping, and accounting must all agree.
void ExpectShardedMatchesSerial(const std::string& script, const SqlCheckOptions& base,
                                int threads) {
  AnalysisSession serial(WithIngestThreads(1, base));
  size_t serial_count = serial.AddScript(script);
  Report serial_report = serial.Snapshot();

  AnalysisSession sharded(WithIngestThreads(threads, base));
  size_t sharded_count = sharded.AddScript(script);
  ASSERT_EQ(serial_count, sharded_count) << threads << " shards";
  EXPECT_EQ(serial.statement_count(), sharded.statement_count());
  EXPECT_EQ(serial.unique_count(), sharded.unique_count());
  EXPECT_EQ(serial.Usage().interner_names, sharded.Usage().interner_names);
  EXPECT_EQ(Serialize(serial_report), Serialize(sharded.Snapshot()))
      << threads << " shards";
}

TEST(ParallelIngestTest, SnapshotIdenticalAtEveryShardCount) {
  const std::string script = AdversarialScript(20);  // 161 statements
  for (int threads : {2, 4, 8}) {
    ExpectShardedMatchesSerial(script, SqlCheckOptions{}, threads);
  }
}

TEST(ParallelIngestTest, ScalarPathIdentical) {
  const std::string script = AdversarialScript(20);
  sql::blockscan::SetForceScalarForTest(true);
  ExpectShardedMatchesSerial(script, SqlCheckOptions{}, 4);
  sql::blockscan::SetForceScalarForTest(false);
  ExpectShardedMatchesSerial(script, SqlCheckOptions{}, 4);
}

TEST(ParallelIngestTest, DedupOffIdentical) {
  SqlCheckOptions base;
  base.dedup_queries = false;
  ExpectShardedMatchesSerial(AdversarialScript(16), base, 4);
}

TEST(ParallelIngestTest, VerifyExecMemoSurvivesMerge) {
  SqlCheckOptions base;
  base.verify_exec.mode = ExecVerifyMode::kOn;
  const std::string script = AdversarialScript(12);

  AnalysisSession serial(WithIngestThreads(1, base));
  serial.AddScript(script);
  Report serial_report = serial.Snapshot();

  AnalysisSession sharded(WithIngestThreads(4, base));
  sharded.AddScript(script);
  Report first = sharded.Snapshot();
  EXPECT_EQ(Serialize(serial_report), Serialize(first));

  // A second snapshot replays verification verdicts from the session memo;
  // the merged session must behave exactly like the serial one.
  Report second = sharded.Snapshot();
  EXPECT_EQ(Serialize(first), Serialize(second));
  EXPECT_EQ(serial.verify_stats().memo_hits > 0, sharded.verify_stats().memo_hits > 0);
}

TEST(ParallelIngestTest, Table3CorpusIdentical) {
  workload::CorpusOptions corpus_options;
  corpus_options.repo_count = 12;
  workload::Corpus corpus = workload::GenerateCorpus(corpus_options);
  std::string script;
  for (const auto& s : corpus.AllStatements()) {
    script += s.sql;
    script += ";\n";
  }
  for (int threads : {2, 8}) {
    ExpectShardedMatchesSerial(script, SqlCheckOptions{}, threads);
  }
}

TEST(ParallelIngestTest, AutoParallelismClampsToHardware) {
  // ingest_parallelism <= 0 means auto: resolve to the hardware thread
  // count, never more — shards past the physical threads only contend.
  const unsigned hw = std::thread::hardware_concurrency();
  const int resolved = ThreadPool::ResolveParallelism(0);
  ASSERT_GE(resolved, 1);
  if (hw != 0) EXPECT_EQ(resolved, static_cast<int>(hw));

  // A script whose per-shard floor would allow far more shards than any
  // machine has threads: auto mode must still clamp to the thread count.
  const std::string script = AdversarialScript(128);
  std::vector<std::string_view> pieces = sql::SplitStatements(script);
  ASSERT_GT(pieces.size() / AnalysisSession::kMinStatementsPerIngestShard,
            static_cast<size_t>(resolved) + 2);

  AnalysisSession auto_session(WithIngestThreads(0));
  auto_session.AddScript(script);
  EXPECT_GE(auto_session.last_ingest_shards(), 1);
  EXPECT_LE(auto_session.last_ingest_shards(), resolved);
  if (resolved > 1) EXPECT_EQ(auto_session.last_ingest_shards(), resolved);

  // Explicit positive values are honored literally, above the clamp or not.
  AnalysisSession explicit_session(WithIngestThreads(resolved + 2));
  explicit_session.AddScript(script);
  EXPECT_EQ(explicit_session.last_ingest_shards(), resolved + 2);

  // Auto mode is still byte-identical to serial — the clamp changes the
  // schedule, never the report.
  ExpectShardedMatchesSerial(script, SqlCheckOptions{}, 0);
}

TEST(ParallelIngestTest, SmallScriptFallsBackToSerial) {
  // Below 2 * kMinStatementsPerIngestShard statements a parallel session
  // must take the serial path (no shard clears the floor) and still agree.
  const std::string script = AdversarialScript(2);  // 29 statements
  std::vector<std::string_view> pieces = sql::SplitStatements(script);
  ASSERT_LT(pieces.size(), 2 * AnalysisSession::kMinStatementsPerIngestShard);
  ExpectShardedMatchesSerial(script, SqlCheckOptions{}, 8);
}

TEST(ParallelIngestTest, StreamingCheckAfterBulkLoad) {
  // Check() on top of a sharded bulk load: the per-statement hot path must
  // see the merged memos/aggregates exactly as a serial session would.
  const std::string script = AdversarialScript(16);
  const char* incoming = "SELECT * FROM users WHERE id = ?;"
                         "SELECT score FROM late1 WHERE status = 'open';";

  AnalysisSession serial(WithIngestThreads(1));
  serial.AddScript(script);
  Report serial_delta = serial.Check(incoming);

  AnalysisSession sharded(WithIngestThreads(4));
  sharded.AddScript(script);
  Report sharded_delta = sharded.Check(incoming);
  EXPECT_EQ(Serialize(serial_delta), Serialize(sharded_delta));
  EXPECT_EQ(Serialize(serial.Snapshot()), Serialize(sharded.Snapshot()));
}

TEST(ParallelIngestTest, QuotaGatesWholeScript) {
  const std::string script = AdversarialScript(16);
  SqlCheckOptions base;
  base.limits.max_ingest_bytes = script.size() / 2;
  AnalysisSession session(WithIngestThreads(4, base));
  EXPECT_EQ(session.AddScript(script), 0u);  // refused whole, nothing ingested
  EXPECT_FALSE(session.quota_status().ok());
  EXPECT_EQ(session.statement_count(), 0u);
}

TEST(ParallelIngestTest, MidSessionQuotaBreachIsStickyAcrossShardMerge) {
  // The first bulk load fits; the second crosses the byte cap and must be
  // refused whole at the gate — no shard runs, no partial merge, and the
  // session stays frozen (but fully queryable) at first-load state. A retry
  // stays refused: quotas only tighten as the session grows.
  const std::string first = AdversarialScript(10);
  const std::string second = AdversarialScript(16);
  SqlCheckOptions base;
  base.limits.max_ingest_bytes = first.size() + second.size() / 2;
  AnalysisSession session(WithIngestThreads(4, base));

  ASSERT_GT(session.AddScript(first), 0u);
  ASSERT_TRUE(session.quota_status().ok());
  const std::string before = Serialize(session.Snapshot());
  const SessionUsage usage_before = session.Usage();

  EXPECT_EQ(session.AddScript(second), 0u);
  EXPECT_FALSE(session.quota_status().ok());
  SessionUsage usage_after = session.Usage();
  EXPECT_EQ(usage_after.statements, usage_before.statements);
  EXPECT_EQ(usage_after.ingested_bytes, usage_before.ingested_bytes);
  EXPECT_EQ(usage_after.interner_names, usage_before.interner_names);
  EXPECT_EQ(before, Serialize(session.Snapshot()));

  EXPECT_EQ(session.AddScript(second), 0u);  // sticky: the retry is refused too
  EXPECT_EQ(usage_before.statements, session.statement_count());
}

TEST(ParallelIngestTest, HandlerResetRecoversFromQuotaExhaustion) {
  // Tenant-facing recovery: a sharded session that exhausts max_statements
  // refuses further checks with quota_exceeded until `reset` replaces it with
  // a fresh session, after which the same request succeeds.
  SqlCheckOptions base = WithIngestThreads(4);
  base.limits.max_statements = 100;
  server::SessionHandler handler{base};

  std::string big;
  for (int i = 0; i < 161; ++i) {
    big += "SELECT col" + std::to_string(i) + " FROM tbl" + std::to_string(i) + "; ";
  }
  std::string filler = handler.HandleLine("{\"op\": \"check\", \"sql\": \"" + big + "\"}");
  EXPECT_NE(filler.find("\"op\": \"check\""), std::string::npos);

  const std::string probe = R"({"op": "check", "sql": "SELECT 1;"})";
  std::string refused = handler.HandleLine(probe);
  EXPECT_NE(refused.find("\"code\": \"quota_exceeded\""), std::string::npos);
  EXPECT_EQ(handler.HandleLine(probe), refused);  // sticky until reset

  EXPECT_EQ(handler.HandleLine(R"({"op": "reset"})"), "{\"op\": \"reset\", \"ok\": true}\n");
  std::string recovered = handler.HandleLine(probe);
  EXPECT_EQ(recovered.find("\"code\": \"quota_exceeded\""), std::string::npos);
  EXPECT_NE(recovered.find("\"op\": \"check\""), std::string::npos);
}

TEST(ParallelIngestTest, UsageAccountsAdoptedArenas) {
  const std::string script = AdversarialScript(16);
  AnalysisSession sharded(WithIngestThreads(4));
  sharded.AddScript(script);
  SessionUsage usage = sharded.Usage();
  // The shard arenas were adopted; the trees they own must show up in the
  // session's accounting (a serial session's usage is all in one arena).
  EXPECT_GT(usage.arena_used_bytes, 0u);
  EXPECT_GE(usage.arena_reserved_bytes, usage.arena_used_bytes);
  EXPECT_EQ(usage.statements, sharded.statement_count());
}

TEST(ParallelIngestTest, RepeatedBulkLoadsKeepMerging) {
  // Two sharded AddScript calls in a row: the second merge dedups against
  // groups created by the first, exactly like continued serial ingestion.
  const std::string first = AdversarialScript(10);
  const std::string second = AdversarialScript(14);  // overlaps heavily

  AnalysisSession serial(WithIngestThreads(1));
  serial.AddScript(first);
  serial.AddScript(second);

  AnalysisSession sharded(WithIngestThreads(4));
  sharded.AddScript(first);
  sharded.AddScript(second);

  EXPECT_EQ(serial.unique_count(), sharded.unique_count());
  EXPECT_EQ(Serialize(serial.Snapshot()), Serialize(sharded.Snapshot()));
}

}  // namespace
}  // namespace sqlcheck
