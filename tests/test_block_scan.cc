// Block-scan tiers (sql/block_scan.h): the SWAR/SIMD fast paths must agree
// with the scalar reference byte-for-byte — on the unified character-class
// tables (lexer, splitter, and fingerprint scanner all read
// lexer_detail.h), on every run/find primitive, and on the full token
// stream, split boundaries, and canonical forms over the table-3 corpus
// plus a hostile fuzz corpus.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "sql/block_scan.h"
#include "sql/fingerprint.h"
#include "sql/lexer.h"
#include "sql/lexer_detail.h"
#include "sql/splitter.h"
#include "workload/corpus.h"

namespace sqlcheck::sql {
namespace {

namespace bs = blockscan;

/// Restores the force-scalar mode on scope exit, so running this binary
/// under SQLCHECK_FORCE_SCALAR=1 keeps every other suite scalar.
class ScopedMode {
 public:
  ScopedMode() : was_(bs::ForceScalar()) {}
  ~ScopedMode() { bs::SetForceScalarForTest(was_); }

 private:
  bool was_;
};

// ---------------------------------------------------------------------------
// Character-class lockstep (satellite: CRLF/\f/\v unification).
// ---------------------------------------------------------------------------

TEST(BlockScanTest, CharClassTableMatchesReferencePredicates) {
  for (int c = 0; c < 256; ++c) {
    const char ch = static_cast<char>(c);
    const bool space = ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r' ||
                       ch == '\f' || ch == '\v';
    const bool digit = c >= '0' && c <= '9';
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    EXPECT_EQ(lexer_detail::IsSpace(ch), space) << "byte " << c;
    EXPECT_EQ(lexer_detail::IsDigit(ch), digit) << "byte " << c;
    // ASCII-only by construction: high bytes are never identifier chars
    // (multi-byte UTF-8 runs fall through to the kOther path).
    EXPECT_EQ(lexer_detail::IsIdentStart(ch), alpha || ch == '_') << "byte " << c;
    EXPECT_EQ(lexer_detail::IsIdentChar(ch), alpha || digit || ch == '_' || ch == '$')
        << "byte " << c;
  }
}

TEST(BlockScanTest, SwarLanesMatchCharClassTable) {
  // One 8-lane block per byte value: every lane must classify exactly as the
  // scalar table does — this is the lockstep contract the lexer, splitter,
  // and canonicalizer all rely on.
  for (int c = 0; c < 256; ++c) {
    char buf[8];
    for (char& b : buf) b = static_cast<char>(c);
    const uint64_t v = bs::swar::Load(buf);
    const uint64_t all = 0x8080808080808080ull;
    EXPECT_EQ(bs::swar::SpaceMask(v), lexer_detail::IsSpace(static_cast<char>(c)) ? all : 0u)
        << "byte " << c;
    EXPECT_EQ(bs::swar::DigitMask(v), lexer_detail::IsDigit(static_cast<char>(c)) ? all : 0u)
        << "byte " << c;
    EXPECT_EQ(bs::swar::IdentMask(v),
              lexer_detail::IsIdentChar(static_cast<char>(c)) ? all : 0u)
        << "byte " << c;
  }
}

// ---------------------------------------------------------------------------
// Primitive dispatchers: scalar vs fast tier over adversarial buffers.
// ---------------------------------------------------------------------------

std::vector<std::string> FuzzBuffers() {
  std::vector<std::string> out;
  // Deterministic fuzz over the full structural alphabet; lengths 1..65
  // cover every straddle of the 8-byte SWAR and 16-byte SIMD blocks.
  const std::string alphabet =
      " \t\n\r\f\vabcXYZ019_$'\"`[]();,.-/*#\\?%:=<>|!~@^&+\x80\xC3\xA9\xF0";
  std::mt19937 rng(12345);
  std::uniform_int_distribution<size_t> pick(0, alphabet.size() - 1);
  for (size_t len = 1; len <= 65; ++len) {
    for (int rep = 0; rep < 8; ++rep) {
      std::string s;
      s.reserve(len);
      for (size_t i = 0; i < len; ++i) s.push_back(alphabet[pick(rng)]);
      out.push_back(std::move(s));
    }
  }
  // Long homogeneous runs exercise the block loops past their tails.
  out.push_back(std::string(100, 'a'));
  out.push_back(std::string(100, ' '));
  out.push_back(std::string(100, '7'));
  out.push_back(std::string(63, 'x') + "'");
  return out;
}

TEST(BlockScanTest, PrimitivesMatchScalarReference) {
  ScopedMode restore;
  for (const std::string& s : FuzzBuffers()) {
    for (size_t pos = 0; pos <= s.size(); ++pos) {
      bs::SetForceScalarForTest(false);
      const size_t ident_fast = bs::IdentRunEnd(s, pos);
      const size_t space_fast = bs::SpaceRunEnd(s, pos);
      const size_t digit_fast = bs::DigitRunEnd(s, pos);
      const size_t quote_fast = bs::FindByte(s, pos, '\'');
      const size_t either_fast = bs::FindEither(s, pos, '*', '/');
      const size_t special_fast = bs::FindStringSpecial(s, pos);
      bs::SetForceScalarForTest(true);
      EXPECT_EQ(ident_fast, bs::IdentRunEnd(s, pos)) << "pos " << pos;
      EXPECT_EQ(space_fast, bs::SpaceRunEnd(s, pos)) << "pos " << pos;
      EXPECT_EQ(digit_fast, bs::DigitRunEnd(s, pos)) << "pos " << pos;
      EXPECT_EQ(quote_fast, bs::FindByte(s, pos, '\'')) << "pos " << pos;
      EXPECT_EQ(either_fast, bs::FindEither(s, pos, '*', '/')) << "pos " << pos;
      EXPECT_EQ(special_fast, bs::FindStringSpecial(s, pos)) << "pos " << pos;
    }
  }
}

// ---------------------------------------------------------------------------
// Whole-frontend identity: token stream, split boundaries, canonical forms.
// ---------------------------------------------------------------------------

std::string RenderTokens(const std::vector<Token>& tokens) {
  std::string out;
  for (const Token& t : tokens) {
    out += std::to_string(static_cast<int>(t.kind));
    out += '/';
    out += std::to_string(static_cast<int>(t.keyword));
    out += '/';
    out += std::to_string(static_cast<int>(t.op));
    out += '/';
    out += t.normalized ? '1' : '0';
    out += '[';
    out.append(t.text);
    out += "]@";
    out += std::to_string(t.offset);
    out += '+';
    out += std::to_string(t.length);
    out += '\n';
  }
  return out;
}

std::string RenderSplit(const std::vector<std::string_view>& pieces, bool complete) {
  std::string out = complete ? "complete\n" : "fragment\n";
  for (std::string_view piece : pieces) {
    out.append(piece);
    out += '\x1f';
  }
  return out;
}

/// Scalar-vs-fast identity of everything the frontend derives from `s`.
void ExpectFrontendIdentity(std::string_view s) {
  ScopedMode restore;
  TokenBuffer buffer;
  LexerOptions keep;
  keep.keep_comments = true;

  bs::SetForceScalarForTest(false);
  const std::string fast_tokens = RenderTokens(Lex(s, buffer));
  const std::string fast_comments = RenderTokens(Lex(s, buffer, keep));
  bool fast_complete = false;
  const std::string fast_split = RenderSplit(SplitStatements(s, &fast_complete, &buffer),
                                             fast_complete);
  const std::string fast_exact = CanonicalizeSql(s, FingerprintOptions::Exact());
  const std::string fast_template = CanonicalizeSql(s, FingerprintOptions::Template());

  bs::SetForceScalarForTest(true);
  EXPECT_EQ(fast_tokens, RenderTokens(Lex(s, buffer)));
  EXPECT_EQ(fast_comments, RenderTokens(Lex(s, buffer, keep)));
  bool scalar_complete = false;
  EXPECT_EQ(fast_split, RenderSplit(SplitStatements(s, &scalar_complete, &buffer),
                                    scalar_complete));
  EXPECT_EQ(fast_exact, CanonicalizeSql(s, FingerprintOptions::Exact()));
  EXPECT_EQ(fast_template, CanonicalizeSql(s, FingerprintOptions::Template()));
  EXPECT_EQ(FingerprintCanonical(fast_exact),
            FingerprintCanonical(CanonicalizeSql(s, FingerprintOptions::Exact())));
}

TEST(BlockScanTest, FrontendIdenticalOverTable3Corpus) {
  workload::CorpusOptions options;
  options.repo_count = 25;
  workload::Corpus corpus = workload::GenerateCorpus(options);
  for (const auto& s : corpus.AllStatements()) {
    ExpectFrontendIdentity(s.sql);
  }
}

TEST(BlockScanTest, FrontendIdenticalOverHostileCorpus) {
  const char* hostile[] = {
      "SELECT $$dollar 'quoted' ; body$$ FROM t",
      "SELECT $tag$nested $$ inside$tag$ FROM t",
      "/* outer /* inner */ still open? */ SELECT 1",
      "SELECT 'unterminated",
      "SELECT \"unterminated ident",
      "SELECT 'h\xC3\xA9llo w\xC3\xB6rld \xE2\x80\x93 \xF0\x9F\x8E\x89'",
      "SELECT '\\' || 'doubled '' quote' FROM t",
      "SELECT [bracket ident], \"quo\"\"ted\", `tick` FROM t",
      "-- line comment\nSELECT 1;\n# hash comment\nSELECT 2",
      "SELECT a--trailing comment",
      "SELECT :named, ?, $1, %s FROM t WHERE a <> b AND c != d",
      "SELECT a||b, c::int, x.y.z, 1.5e-7, .5, 5., 0x1F FROM t",
      "\r\nSELECT\t1\f;\vSELECT\r2;",
      "BEGIN UPDATE t SET a = 1; UPDATE t SET b = 2; END; SELECT 1",
      "SELECT CASE WHEN a THEN 'x;y' ELSE 'z' END FROM t; SELECT 2",
      ";;;   ;; SELECT 1 ;;",
      "",
      "   \t\r\n\f\v   ",
      "$",
      "'",
  };
  for (const char* s : hostile) ExpectFrontendIdentity(s);
}

TEST(BlockScanTest, FrontendIdenticalOverFuzzStraddles) {
  for (const std::string& s : FuzzBuffers()) ExpectFrontendIdentity(s);
}

TEST(BlockScanTest, TierNameIsKnown) {
  const std::string tier = bs::FastTierName();
  EXPECT_TRUE(tier == "sse2" || tier == "neon" || tier == "swar" || tier == "scalar")
      << tier;
}

}  // namespace
}  // namespace sqlcheck::sql
