#include <gtest/gtest.h>

#include "sql/parser.h"
#include "storage/database.h"
#include "storage/sampler.h"

namespace sqlcheck {
namespace {

TableSchema TwoColumnSchema(const std::string& name) {
  auto stmt = sql::ParseStatement("CREATE TABLE " + name + " (id INTEGER, v VARCHAR(10))");
  return TableSchema::FromCreateTable(*stmt->As<sql::CreateTableStatement>());
}

TEST(TableTest, InsertAndScan) {
  Table table(TwoColumnSchema("t"));
  table.Insert({Value::Int(1), Value::Str("a")});
  table.Insert({Value::Int(2), Value::Str("b")});
  EXPECT_EQ(table.live_row_count(), 2u);
  int visited = 0;
  table.ForEachLive([&](size_t, const Row& row) {
    ++visited;
    EXPECT_EQ(row.size(), 2u);
  });
  EXPECT_EQ(visited, 2);
}

TEST(TableTest, DeleteTombstones) {
  Table table(TwoColumnSchema("t"));
  size_t slot = table.Insert({Value::Int(1), Value::Str("a")});
  table.Insert({Value::Int(2), Value::Str("b")});
  EXPECT_TRUE(table.DeleteRow(slot).ok());
  EXPECT_EQ(table.live_row_count(), 1u);
  EXPECT_FALSE(table.IsLive(slot));
  EXPECT_FALSE(table.DeleteRow(slot).ok());  // double delete rejected
  EXPECT_EQ(table.LiveSlots().size(), 1u);
}

TEST(TableTest, UpdateRewritesRow) {
  Table table(TwoColumnSchema("t"));
  size_t slot = table.Insert({Value::Int(1), Value::Str("a")});
  EXPECT_TRUE(table.UpdateRow(slot, {Value::Int(9), Value::Str("z")}).ok());
  EXPECT_EQ(table.RowAt(slot)[0].AsInt(), 9);
}

TEST(TableTest, IndexMaintainedAcrossMutations) {
  Table table(TwoColumnSchema("t"));
  IndexSchema index_schema;
  index_schema.name = "idx_id";
  index_schema.table = "t";
  index_schema.columns = {"id"};
  ASSERT_TRUE(table.CreateIndex(index_schema).ok());
  const Index* index = table.FindIndexOnColumn("id");
  ASSERT_NE(index, nullptr);

  size_t slot = table.Insert({Value::Int(5), Value::Str("a")});
  CompositeKey five{{Value::Int(5)}};
  EXPECT_EQ(index->Lookup(five).size(), 1u);

  table.UpdateRow(slot, {Value::Int(6), Value::Str("a")});
  EXPECT_TRUE(index->Lookup(five).empty());
  CompositeKey six{{Value::Int(6)}};
  EXPECT_EQ(index->Lookup(six).size(), 1u);

  table.DeleteRow(slot);
  EXPECT_TRUE(index->Lookup(six).empty());
  EXPECT_EQ(index->entry_count(), 0u);
}

TEST(TableTest, CreateIndexOverExistingRows) {
  Table table(TwoColumnSchema("t"));
  for (int i = 0; i < 10; ++i) {
    table.Insert({Value::Int(i % 3), Value::Str("x")});
  }
  IndexSchema index_schema;
  index_schema.name = "idx";
  index_schema.table = "t";
  index_schema.columns = {"id"};
  ASSERT_TRUE(table.CreateIndex(index_schema).ok());
  CompositeKey key{{Value::Int(0)}};
  EXPECT_EQ(table.FindIndexOnColumn("id")->Lookup(key).size(), 4u);  // 0,3,6,9
}

TEST(TableTest, IndexCreationFailures) {
  Table table(TwoColumnSchema("t"));
  IndexSchema bad;
  bad.name = "idx";
  bad.table = "t";
  bad.columns = {"missing"};
  EXPECT_FALSE(table.CreateIndex(bad).ok());
  IndexSchema good = bad;
  good.columns = {"id"};
  EXPECT_TRUE(table.CreateIndex(good).ok());
  EXPECT_FALSE(table.CreateIndex(good).ok());  // duplicate name
  EXPECT_TRUE(table.DropIndex("idx").ok());
  EXPECT_FALSE(table.DropIndex("idx").ok());
}

TEST(TableTest, FindSingleColumnIndexSkipsComposites) {
  Table table(TwoColumnSchema("t"));
  IndexSchema composite;
  composite.name = "idx_both";
  composite.table = "t";
  composite.columns = {"id", "v"};
  ASSERT_TRUE(table.CreateIndex(composite).ok());
  EXPECT_NE(table.FindIndexOnColumn("id"), nullptr);        // leading column ok
  EXPECT_EQ(table.FindSingleColumnIndex("id"), nullptr);    // but not single
  IndexSchema single;
  single.name = "idx_id";
  single.table = "t";
  single.columns = {"id"};
  ASSERT_TRUE(table.CreateIndex(single).ok());
  EXPECT_NE(table.FindSingleColumnIndex("id"), nullptr);
}

TEST(TableTest, AddAndDropColumnRewriteRows) {
  Table table(TwoColumnSchema("t"));
  table.Insert({Value::Int(1), Value::Str("a")});
  ColumnSchema extra;
  extra.name = "flag";
  extra.type = DataType::Make(TypeId::kBoolean);
  ASSERT_TRUE(table.AddColumn(extra, Value::Bool(false)).ok());
  EXPECT_EQ(table.RowAt(0).size(), 3u);
  EXPECT_FALSE(table.RowAt(0)[2].AsBool());

  ASSERT_TRUE(table.DropColumn("id").ok());
  EXPECT_EQ(table.RowAt(0).size(), 2u);
  EXPECT_EQ(table.schema().ColumnIndex("flag"), 1);
}

TEST(TableTest, DropColumnRebuildsSurvivingIndexes) {
  Table table(TwoColumnSchema("t"));
  table.Insert({Value::Int(7), Value::Str("a")});
  IndexSchema on_v;
  on_v.name = "idx_v";
  on_v.table = "t";
  on_v.columns = {"v"};
  ASSERT_TRUE(table.CreateIndex(on_v).ok());
  ASSERT_TRUE(table.DropColumn("id").ok());
  // Index on v survives and still finds the row at its shifted position.
  const Index* index = table.FindIndexOnColumn("v");
  ASSERT_NE(index, nullptr);
  CompositeKey key{{Value::Str("a")}};
  EXPECT_EQ(index->Lookup(key).size(), 1u);
}

TEST(TableTest, AutoIncrementObservesExplicitValues) {
  Table table(TwoColumnSchema("t"));
  EXPECT_EQ(table.NextAutoValue(), 1);
  table.ObserveAutoValue(41);
  EXPECT_EQ(table.NextAutoValue(), 42);
}

TEST(DatabaseTest, TableLifecycle) {
  Database db;
  EXPECT_TRUE(db.CreateTable(TwoColumnSchema("t")).ok());
  EXPECT_FALSE(db.CreateTable(TwoColumnSchema("t")).ok());
  EXPECT_NE(db.GetTable("T"), nullptr);  // case-insensitive
  EXPECT_TRUE(db.DropTable("t").ok());
  EXPECT_EQ(db.GetTable("t"), nullptr);
}

TEST(DatabaseTest, BuildCatalogReflectsState) {
  Database db;
  db.CreateTable(TwoColumnSchema("t"));
  IndexSchema index;
  index.name = "idx_id";
  index.table = "t";
  index.columns = {"id"};
  db.CreateIndex(index);
  Catalog catalog = db.BuildCatalog();
  EXPECT_NE(catalog.FindTable("t"), nullptr);
  EXPECT_NE(catalog.FindIndex("idx_id"), nullptr);
}

TEST(SamplerTest, SampleSmallerThanTableIsDeterministic) {
  Table table(TwoColumnSchema("t"));
  for (int i = 0; i < 100; ++i) table.Insert({Value::Int(i), Value::Str("x")});
  auto a = SampleSlots(table, 10, 7);
  auto b = SampleSlots(table, 10, 7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 10u);
  auto c = SampleSlots(table, 10, 8);
  EXPECT_NE(a, c);  // different seed, different sample (overwhelmingly likely)
}

TEST(SamplerTest, SampleLargerThanTableReturnsAll) {
  Table table(TwoColumnSchema("t"));
  for (int i = 0; i < 5; ++i) table.Insert({Value::Int(i), Value::Str("x")});
  EXPECT_EQ(SampleSlots(table, 50, 1).size(), 5u);
  EXPECT_EQ(SampleRows(table, 50, 1).size(), 5u);
  EXPECT_TRUE(SampleSlots(table, 0, 1).empty());
}

}  // namespace
}  // namespace sqlcheck
