#include "fix/fix_engine.h"

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "rules/registry.h"
#include "sql/parser.h"

namespace sqlcheck {
namespace {

/// Detects in `script` (optionally with data) and returns the fix for the
/// first detection of `type`.
struct FixResult {
  Fix fix;
  bool found = false;
};

FixResult FixFor(const std::string& script, AntiPattern type,
                 const Database* db = nullptr) {
  ContextBuilder builder;
  builder.AddScript(script);
  if (db != nullptr) builder.AttachDatabase(db);
  Context context = builder.Build();
  auto detections = DetectAntiPatterns(context, DetectorConfig{});
  RuleRegistry registry = RuleRegistry::Default();
  FixEngine engine(registry, DetectorConfig{});
  for (const auto& d : detections) {
    if (d.type == type) return {engine.SuggestFix(d, context), true};
  }
  return {};
}

TEST(FixTest, ImplicitColumnsRewriteAddsColumnList) {
  auto r = FixFor(
      "CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR(5));"
      "INSERT INTO t VALUES (1, 'x');",
      AntiPattern::kImplicitColumns);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.fix.kind, FixKind::kRewrite);
  ASSERT_EQ(r.fix.statements.size(), 1u);
  EXPECT_EQ(r.fix.statements[0], "INSERT INTO t (a, b) VALUES (1, 'x');");
  // The rewrite must parse.
  EXPECT_EQ(sql::ParseStatement(r.fix.statements[0])->kind, sql::StatementKind::kInsert);
}

TEST(FixTest, ImplicitColumnsFallsBackWithoutSchema) {
  auto r = FixFor("INSERT INTO mystery VALUES (1)", AntiPattern::kImplicitColumns);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.fix.kind, FixKind::kTextual);
}

TEST(FixTest, WildcardExpansionUsesCatalog) {
  auto r = FixFor(
      "CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR(5), c VARCHAR(5));"
      "SELECT * FROM t;",
      AntiPattern::kColumnWildcard);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.fix.kind, FixKind::kRewrite);
  EXPECT_EQ(r.fix.statements[0], "SELECT a, b, c FROM t;");
}

TEST(FixTest, ConcatNullsWrapsInCoalesce) {
  auto r = FixFor(
      "CREATE TABLE p (first VARCHAR(10), last VARCHAR(10));"
      "SELECT first || ' ' || last FROM p;",
      AntiPattern::kConcatenateNulls);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.fix.kind, FixKind::kRewrite);
  EXPECT_NE(r.fix.statements[0].find("COALESCE(first, '')"), std::string::npos)
      << r.fix.statements[0];
}

TEST(FixTest, ConcatNullsFixActuallyFixesTheQuery) {
  // End-to-end: run the rewritten query and observe the NULL no longer voids
  // the result.
  Database db;
  Executor exec(&db);
  exec.ExecuteSql("CREATE TABLE p (first VARCHAR(10), last VARCHAR(10))");
  exec.ExecuteSql("INSERT INTO p (first, last) VALUES ('prince', NULL)");
  auto r = FixFor(
      "CREATE TABLE p (first VARCHAR(10), last VARCHAR(10));"
      "SELECT first || ' ' || last FROM p;",
      AntiPattern::kConcatenateNulls);
  ASSERT_TRUE(r.found);
  auto result = exec.ExecuteSql(r.fix.statements[0]);
  ASSERT_TRUE(result.ok()) << result.message();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsString(), "prince ");
}

TEST(FixTest, IndexUnderuseCreatesIndexThatExecutes) {
  Database db;
  Executor exec(&db);
  exec.ExecuteSql("CREATE TABLE t (k INTEGER PRIMARY KEY, owner VARCHAR(10))");
  auto r = FixFor(
      "CREATE TABLE t (k INTEGER PRIMARY KEY, owner VARCHAR(10));"
      "SELECT k FROM t WHERE owner = 'x';",
      AntiPattern::kIndexUnderuse);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.fix.kind, FixKind::kRewrite);
  auto result = exec.ExecuteSql(r.fix.statements[0]);
  EXPECT_TRUE(result.ok()) << result.message();
  EXPECT_NE(db.GetTable("t")->FindIndexOnColumn("owner"), nullptr);
}

TEST(FixTest, NoForeignKeyEmitsAddConstraint) {
  auto r = FixFor(
      "CREATE TABLE a (x INTEGER PRIMARY KEY);"
      "CREATE TABLE b (y INTEGER PRIMARY KEY, x INTEGER);"
      "SELECT b.y FROM a JOIN b ON a.x = b.x;",
      AntiPattern::kNoForeignKey);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.fix.kind, FixKind::kRewrite);
  EXPECT_NE(r.fix.statements[0].find("FOREIGN KEY (x) REFERENCES a"), std::string::npos)
      << r.fix.statements[0];
}

TEST(FixTest, NoPrimaryKeyPicksUniqueColumnFromData) {
  Database db;
  Executor exec(&db);
  exec.ExecuteSql("CREATE TABLE t (code VARCHAR(8), v INTEGER)");
  for (int i = 0; i < 10; ++i) {
    exec.ExecuteSql("INSERT INTO t VALUES ('c" + std::to_string(i) + "', 1)");
  }
  auto r = FixFor("CREATE TABLE t (code VARCHAR(8), v INTEGER);",
                  AntiPattern::kNoPrimaryKey, &db);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.fix.kind, FixKind::kRewrite);
  EXPECT_NE(r.fix.statements[0].find("ADD PRIMARY KEY (code)"), std::string::npos);
}

TEST(FixTest, MvaFixBuildsIntersectionTableAndListsImpactedQueries) {
  auto r = FixFor(
      "CREATE TABLE tenants (tenant_id VARCHAR(8) PRIMARY KEY, user_ids TEXT);"
      "SELECT * FROM tenants WHERE user_ids LIKE '[[:<:]]U1[[:>:]]';"
      "SELECT tenant_id FROM tenants WHERE user_ids LIKE '%,U2,%';",
      AntiPattern::kMultiValuedAttribute);
  ASSERT_TRUE(r.found);
  ASSERT_GE(r.fix.statements.size(), 2u);
  EXPECT_NE(r.fix.statements[0].find("CREATE TABLE"), std::string::npos);
  EXPECT_NE(r.fix.statements[1].find("DROP COLUMN user_ids"), std::string::npos);
  // Algorithm 4's impacted-query set: the other statements touching tenants.
  EXPECT_GE(r.fix.impacted_queries.size(), 1u);
}

TEST(FixTest, EnumeratedTypesBuildsLookupTable) {
  auto r = FixFor(
      "CREATE TABLE users (user_id INTEGER PRIMARY KEY, role VARCHAR(4) CHECK (role IN "
      "('R1', 'R2')));",
      AntiPattern::kEnumeratedTypes);
  ASSERT_TRUE(r.found);
  ASSERT_GE(r.fix.statements.size(), 3u);
  EXPECT_NE(r.fix.statements[0].find("role_lookup"), std::string::npos);
}

TEST(FixTest, RoundingErrorsAltersToNumeric) {
  auto r = FixFor("CREATE TABLE t (k INTEGER PRIMARY KEY, price FLOAT);",
                  AntiPattern::kRoundingErrors);
  ASSERT_TRUE(r.found);
  EXPECT_NE(r.fix.statements[0].find("TYPE NUMERIC"), std::string::npos);
}

TEST(FixTest, TextualFixesCarryGuidance) {
  auto rand_fix = FixFor("SELECT a FROM t ORDER BY RAND()", AntiPattern::kOrderingByRand);
  ASSERT_TRUE(rand_fix.found);
  EXPECT_EQ(rand_fix.fix.kind, FixKind::kTextual);
  EXPECT_FALSE(rand_fix.fix.explanation.empty());

  auto joins = FixFor(
      "SELECT t0.x FROM a t0 JOIN a t1 ON t0.x = t1.x JOIN a t2 ON t1.x = t2.x JOIN a "
      "t3 ON t2.x = t3.x JOIN a t4 ON t3.x = t4.x JOIN a t5 ON t4.x = t5.x",
      AntiPattern::kTooManyJoins);
  ASSERT_TRUE(joins.found);
  EXPECT_EQ(joins.fix.kind, FixKind::kTextual);
}

TEST(FixTest, EveryDetectionGetsSomeFix) {
  // Batch API covers all detections in ranked order.
  ContextBuilder builder;
  builder.AddScript(
      "CREATE TABLE t (id INTEGER PRIMARY KEY, tags TEXT, price FLOAT, password "
      "VARCHAR(20));"
      "SELECT * FROM t ORDER BY RAND();"
      "INSERT INTO t VALUES (1, 'a,b', 1.5, 'pw');");
  Context context = builder.Build();
  auto detections = DetectAntiPatterns(context, DetectorConfig{});
  ASSERT_GE(detections.size(), 4u);
  RuleRegistry registry = RuleRegistry::Default();
  FixEngine engine(registry);
  auto fixes = engine.SuggestFixes(detections, context);
  ASSERT_EQ(fixes.size(), detections.size());
  for (const auto& fix : fixes) {
    EXPECT_TRUE(!fix.explanation.empty() || !fix.statements.empty());
  }
}

TEST(FixTest, RewrittenStatementsAllParse) {
  ContextBuilder builder;
  builder.AddScript(
      "CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR(5));"
      "INSERT INTO t VALUES (1, 'x');"
      "SELECT * FROM t;");
  Context context = builder.Build();
  auto detections = DetectAntiPatterns(context, DetectorConfig{});
  RuleRegistry registry = RuleRegistry::Default();
  FixEngine engine(registry);
  for (const auto& fix : engine.SuggestFixes(detections, context)) {
    if (fix.kind != FixKind::kRewrite) continue;
    for (const auto& stmt : fix.statements) {
      EXPECT_NE(sql::ParseStatement(stmt)->kind, sql::StatementKind::kUnknown)
          << "unparseable fix: " << stmt;
    }
  }
}

}  // namespace
}  // namespace sqlcheck
