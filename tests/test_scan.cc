// Corpus scanner (scan/scanner.h) end-to-end: the cold == warm ==
// store-disabled report identity over a real directory tree, manifest
// staleness and recovery, every store-degradation path (corruption, foreign
// file, lock contention, injected open/commit faults) falling back to a cold
// scan with the SAME report, and the auto job clamp. The scan's soundness
// contract is that the store can only ever change how fast a report is
// produced, never a byte of it.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <stdlib.h>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "persist/fingerprint_store.h"
#include "rules/registry.h"
#include "scan/scanner.h"
#include "sql/fingerprint.h"

namespace sqlcheck::scan {
namespace {

namespace fs = std::filesystem;

class ScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Instance().DisarmAll();
    char tmpl[] = "/tmp/sqlcheck_scan_XXXXXX";
    char* dir = mkdtemp(tmpl);
    ASSERT_NE(dir, nullptr);
    root_ = dir;
    store_ = root_ + ".store";
    WriteFile("alpha/queries.sql",
              "SELECT * FROM users;\n"
              "SELECT name FROM users WHERE tag_ids LIKE '%,7,%';\n"
              "SELECT id, name FROM users WHERE id = 3;\n");
    WriteFile("alpha/app.py",
              "import db\n"
              "def load(conn):\n"
              "    return conn.execute(\"SELECT * FROM orders WHERE status = 'open'\")\n");
    WriteFile("beta/queries.sql",
              "SELECT * FROM users;\n"
              "CREATE TABLE t (id INT, payload VARCHAR(10));\n");
    // Dot-directories are skipped entirely — this file must never be scanned.
    WriteFile(".hidden/secret.sql", "SELECT * FROM users;\n");
  }
  void TearDown() override {
    FailpointRegistry::Instance().DisarmAll();
    std::error_code ec;
    fs::remove_all(root_, ec);
    fs::remove(store_, ec);
  }

  void WriteFile(const std::string& rel, const std::string& content) {
    fs::path p = fs::path(root_) / rel;
    std::error_code ec;
    fs::create_directories(p.parent_path(), ec);
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << content;
    ASSERT_TRUE(out.good());
  }

  void AppendToFile(const std::string& rel, const std::string& content) {
    std::ofstream out(fs::path(root_) / rel, std::ios::binary | std::ios::app);
    out << content;
    ASSERT_TRUE(out.good());
  }

  struct Run {
    ScanReport report;
    ScanSummary summary;
    uint64_t digest = 0;
    std::string text;
  };

  Run Scan(const std::string& store_path, int jobs = 0) {
    ScanOptions options;
    options.store_path = store_path;
    options.jobs = jobs;
    CorpusScanner scanner(options);
    Result<ScanReport> result = scanner.Scan(root_);
    EXPECT_TRUE(result.ok()) << result.message();
    Run run;
    if (result.ok()) {
      run.report = std::move(result.value());
      run.digest = DigestScanReport(run.report);
      run.text = run.report.ToText() + run.report.ToJson();
    }
    run.summary = scanner.summary();
    return run;
  }

  std::string root_;
  std::string store_;
};

TEST_F(ScanTest, ColdWarmDisabledReportsAreIdentical) {
  Run cold = Scan(store_);
  EXPECT_EQ(cold.report.files, 3u);   // the dot-dir file is invisible
  EXPECT_EQ(cold.report.repos, 2u);
  EXPECT_GT(cold.report.statements, 0u);
  EXPECT_GT(cold.report.findings, 0u);
  EXPECT_EQ(cold.summary.store_reused, 0u);
  EXPECT_GT(cold.summary.store.appended, 0u);
  EXPECT_GT(cold.summary.store.appended_files, 0u);
  EXPECT_TRUE(cold.summary.store.warning.empty()) << cold.summary.store.warning;

  Run warm = Scan(store_);
  // Fully warm: every file replays whole from its manifest — the scan never
  // opens a file, so the statement tier sees zero traffic of either kind.
  EXPECT_EQ(warm.summary.files_reused, warm.report.files);
  EXPECT_EQ(warm.summary.analyzed, 0u);
  EXPECT_EQ(warm.summary.store.misses, 0u);
  EXPECT_EQ(warm.summary.store.file_misses, 0u);
  EXPECT_GT(warm.summary.store_reused, 0u);

  Run disabled = Scan("");
  EXPECT_FALSE(disabled.summary.store_enabled);

  EXPECT_EQ(cold.digest, warm.digest);
  EXPECT_EQ(cold.digest, disabled.digest);
  EXPECT_EQ(cold.text, warm.text);
  EXPECT_EQ(cold.text, disabled.text);

  std::string summary;
  EXPECT_TRUE(persist::FingerprintStore::Verify(store_, &summary).ok()) << summary;
}

TEST_F(ScanTest, ChangedFileFallsBackToStatementTierThenRecovers) {
  Run cold = Scan(store_);
  // Growing the file changes its size, so its manifest goes stale; the other
  // files' manifests stay live.
  AppendToFile("beta/queries.sql", "DELETE FROM t WHERE id = 1;\n");

  Run second = Scan(store_);
  EXPECT_EQ(second.summary.files_reused, second.report.files - 1);
  EXPECT_EQ(second.summary.store.file_misses, 1u);
  // The changed file re-reads, but its unchanged statements still hit the
  // statement tier; only the new statement is analyzed from scratch.
  EXPECT_GT(second.summary.store.hits, 0u);
  EXPECT_EQ(second.summary.analyzed, 1u);
  EXPECT_EQ(second.report.statements, cold.report.statements + 1);
  EXPECT_NE(second.digest, cold.digest);

  // The rescan appended a fresh manifest: the next scan is fully warm again
  // and reports byte-identically to the stale-fallback scan.
  Run third = Scan(store_);
  EXPECT_EQ(third.summary.files_reused, third.report.files);
  EXPECT_EQ(third.summary.analyzed, 0u);
  EXPECT_EQ(third.digest, second.digest);
  EXPECT_EQ(third.text, second.text);
}

TEST_F(ScanTest, CorruptStoreDegradesToColdWithIdenticalReport) {
  Run cold = Scan(store_);
  {
    // Flip a byte in the header: checksum mismatch, store rebuilt at open.
    std::fstream f(store_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(16);
    char c = 0;
    f.get(c);
    f.seekp(16);
    f.put(static_cast<char>(c ^ 0xFF));
  }
  Run degraded = Scan(store_);
  EXPECT_TRUE(degraded.summary.store_enabled);
  EXPECT_TRUE(degraded.summary.store.degraded);
  EXPECT_FALSE(degraded.summary.store.warning.empty());
  EXPECT_EQ(degraded.summary.store_reused, 0u);  // nothing survived to reuse
  EXPECT_EQ(degraded.digest, cold.digest);
  EXPECT_EQ(degraded.text, cold.text);

  // The rebuild left a valid store: the next scan is warm again.
  Run warm = Scan(store_);
  EXPECT_EQ(warm.summary.files_reused, warm.report.files);
  EXPECT_EQ(warm.digest, cold.digest);
}

TEST_F(ScanTest, ForeignFileAtStorePathIsLeftUntouched) {
  const std::string original = "precious data that is not a store\n";
  {
    std::ofstream out(store_, std::ios::binary);
    out << original;
  }
  Run run = Scan(store_);
  EXPECT_TRUE(run.summary.store_enabled);
  EXPECT_FALSE(run.summary.store.warning.empty());
  EXPECT_EQ(run.summary.store_reused, 0u);
  EXPECT_EQ(run.digest, Scan("").digest);

  std::ifstream in(store_, std::ios::binary);
  std::string raw((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(raw, original);
}

TEST_F(ScanTest, LockedStoreScansColdAndCorrectly) {
  Run cold = Scan(store_);

  const uint64_t hash =
      persist::FingerprintStore::RulesetHash(RuleRegistry::Default());
  persist::FingerprintStore holder;
  ASSERT_TRUE(holder.Open(store_, hash).ok());
  ASSERT_TRUE(holder.usable());

  Run locked = Scan(store_);
  EXPECT_TRUE(locked.summary.store_enabled);
  EXPECT_NE(locked.summary.store.warning.find("locked"), std::string::npos)
      << locked.summary.store.warning;
  EXPECT_EQ(locked.summary.store_reused, 0u);
  EXPECT_EQ(locked.digest, cold.digest);
  EXPECT_EQ(locked.text, cold.text);

  holder.Close();
  Run warm = Scan(store_);
  EXPECT_EQ(warm.summary.files_reused, warm.report.files);
  EXPECT_EQ(warm.digest, cold.digest);
}

TEST_F(ScanTest, InjectedOpenFaultScansCold) {
  Run cold = Scan(store_);
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("store_open", "oneshot").ok());
  Run faulted = Scan(store_);
  EXPECT_TRUE(faulted.summary.store_enabled);
  EXPECT_FALSE(faulted.summary.store.warning.empty());
  EXPECT_EQ(faulted.summary.store_reused, 0u);
  EXPECT_EQ(faulted.digest, cold.digest);
  EXPECT_EQ(faulted.text, cold.text);
}

TEST_F(ScanTest, InjectedCommitFaultKeepsReportSoundAndStoreRecoverable) {
  // The torn flush fires inside the scan's final Commit: the report must be
  // unaffected (it never depends on the write-back), the summary must carry
  // the warning, and the next scan must open the store cleanly.
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("store_append", "oneshot").ok());
  Run cold = Scan(store_);
  EXPECT_FALSE(cold.summary.store.warning.empty());

  FailpointRegistry::Instance().DisarmAll();
  Run second = Scan(store_);
  EXPECT_TRUE(second.summary.store.warning.empty() ||
              second.summary.store.warning.find("uncommitted") != std::string::npos)
      << second.summary.store.warning;
  EXPECT_EQ(second.digest, cold.digest);
  EXPECT_EQ(second.text, cold.text);

  // That second scan re-appended and committed; now it is warm.
  Run third = Scan(store_);
  EXPECT_EQ(third.summary.files_reused, third.report.files);
  EXPECT_EQ(third.digest, cold.digest);
  std::string summary;
  EXPECT_TRUE(persist::FingerprintStore::Verify(store_, &summary).ok()) << summary;
}

TEST_F(ScanTest, AutoJobsClampToHardwareAndFileCount) {
  const int hw = ThreadPool::ResolveParallelism(0);
  Run auto_run = Scan("", /*jobs=*/0);
  EXPECT_GE(auto_run.summary.jobs, 1);
  EXPECT_LE(auto_run.summary.jobs, hw);
  EXPECT_LE(auto_run.summary.jobs, static_cast<int>(auto_run.report.files));

  // Explicit values are honored up to the file count — shards past the files
  // would sit empty.
  Run explicit_run = Scan("", /*jobs=*/64);
  EXPECT_EQ(explicit_run.summary.jobs,
            std::min<int>(64, static_cast<int>(explicit_run.report.files)));
  EXPECT_EQ(explicit_run.digest, auto_run.digest);
}

TEST(ScanFingerprintsTest, TemplateOfExactMatchesTemplateOfRaw) {
  // FingerprintForScan derives the template fingerprint by re-canonicalizing
  // the exact form instead of the raw text. That is only sound if
  // canonicalization is stable on its own output — locked in here across
  // comment, case, whitespace, and literal shapes.
  const char* statements[] = {
      "SELECT * FROM users WHERE id = 42",
      "select   name ,  id from USERS where ID=7 -- trailing comment",
      "/* leading */ SELECT 'quoted literal' FROM t WHERE x IN (1, 2, 3)",
      "INSERT INTO t (a, b) VALUES (1.5, 'two')",
      "UPDATE t SET a = a + 1 WHERE b LIKE '%,7,%'",
      "CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(10))",
  };
  for (const char* raw : statements) {
    std::string exact_canonical;
    sql::ScanFingerprints fp = sql::FingerprintForScan(raw, &exact_canonical);
    EXPECT_EQ(fp.exact, sql::FingerprintSql(raw, sql::FingerprintOptions::Exact()))
        << raw;
    EXPECT_EQ(fp.tmpl, sql::FingerprintSql(raw, sql::FingerprintOptions::Template()))
        << raw;
    EXPECT_EQ(fp.tmpl, sql::FingerprintSql(exact_canonical,
                                           sql::FingerprintOptions::Template()))
        << raw;
    EXPECT_EQ(exact_canonical,
              sql::CanonicalizeSql(exact_canonical, sql::FingerprintOptions::Exact()))
        << raw;
  }
}

}  // namespace
}  // namespace sqlcheck::scan
