// Query fingerprint dedup: memoized analysis + rule evaluation must be
// invisible in the output — reports byte-identical to an unmemoized run at
// every parallelism level, with per-occurrence raw text preserved.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/context.h"
#include "core/sqlcheck.h"
#include "rules/registry.h"
#include "sql/fingerprint.h"

namespace sqlcheck {
namespace {

// Duplicate-heavy workload: repeated templates with whitespace / keyword-case
// jitter, plus literal-differing near-duplicates that must NOT be merged.
const char* kDuplicateScript =
    "CREATE TABLE users (id INT PRIMARY KEY, name VARCHAR(64), password VARCHAR(64));\n"
    "SELECT * FROM users WHERE id = ?;\n"
    "select * from users where id = ?;\n"
    "SELECT   *   FROM users WHERE id = ?;\n"
    "SELECT * FROM users WHERE id = ? -- lookup\n;\n"
    "SELECT name FROM users WHERE name LIKE '%smith';\n"
    "SELECT name FROM users WHERE name LIKE 'smith%';\n"
    "SELECT name FROM users WHERE name LIKE '%smith';\n"
    "INSERT INTO users VALUES (1, 'a', 'b');\n"
    "INSERT INTO users VALUES (1, 'a', 'b');\n"
    "SELECT u.name FROM users u ORDER BY RAND();\n";

std::string RunReport(bool dedup, int parallelism) {
  SqlCheckOptions options;
  options.dedup_queries = dedup;
  options.parallelism = parallelism;
  SqlCheck checker(options);
  checker.AddScript(kDuplicateScript);
  return checker.Run().ToText();
}

TEST(DedupTest, ReportByteIdenticalWithAndWithoutDedup) {
  std::string reference = RunReport(false, 1);
  EXPECT_FALSE(reference.empty());
  for (int threads : {1, 2, 4}) {
    EXPECT_EQ(RunReport(true, threads), reference) << "dedup on, threads=" << threads;
    EXPECT_EQ(RunReport(false, threads), reference) << "dedup off, threads=" << threads;
  }
}

TEST(DedupTest, GroupsCollapseWhitespaceCaseAndComments) {
  ContextBuilder builder;
  builder.AddQuery("SELECT * FROM t WHERE a = 1");
  builder.AddQuery("select * from t where a = 1");
  builder.AddQuery("SELECT *  FROM t /* hint */ WHERE a = 1");
  builder.AddQuery("SELECT * FROM t WHERE a = 2");  // different literal
  Context context = builder.Build();

  const QueryGroups& groups = context.query_groups();
  ASSERT_EQ(groups.representative.size(), 4u);
  EXPECT_EQ(groups.unique_count(), 2u);
  EXPECT_TRUE(groups.has_duplicates());
  EXPECT_EQ(groups.representative[0], 0u);
  EXPECT_EQ(groups.representative[1], 0u);
  EXPECT_EQ(groups.representative[2], 0u);
  EXPECT_EQ(groups.representative[3], 3u);
  EXPECT_EQ(groups.fingerprints[0], groups.fingerprints[1]);
  EXPECT_EQ(groups.fingerprints[0], groups.fingerprints[2]);
  EXPECT_NE(groups.fingerprints[0], groups.fingerprints[3]);
}

TEST(DedupTest, SharedFactsAreRebasedOntoEachOccurrence) {
  ContextBuilder builder;
  builder.AddQuery("SELECT * FROM t");
  builder.AddQuery("select  *  from t");
  Context context = builder.Build();

  ASSERT_EQ(context.queries().size(), 2u);
  EXPECT_EQ(context.queries()[0].raw_sql, "SELECT * FROM t");
  EXPECT_EQ(context.queries()[1].raw_sql, "select  *  from t");
  EXPECT_NE(context.queries()[0].stmt, context.queries()[1].stmt);
  EXPECT_TRUE(context.queries()[1].selects_wildcard);
}

TEST(DedupTest, DetectionsCarryPerOccurrenceRawSql) {
  ContextBuilder builder;
  builder.AddQuery("SELECT * FROM t");
  builder.AddQuery("select  *  from t");
  Context context = builder.Build();

  DetectorConfig config;
  config.data_analysis = false;
  auto detections = DetectAntiPatterns(context, RuleRegistry::Default(), config);
  ASSERT_EQ(detections.size(), 2u);
  EXPECT_EQ(detections[0].query, "SELECT * FROM t");
  EXPECT_EQ(detections[1].query, "select  *  from t");
  EXPECT_EQ(detections[1].stmt, context.queries()[1].stmt);
}

TEST(DedupTest, CustomRuleDetectionsFanOutPerOccurrence) {
  class EchoRule final : public Rule {
   public:
    AntiPattern type() const override { return AntiPattern::kGodTable; }
    void CheckQuery(const QueryFacts& facts, const Context&, const DetectorConfig&,
                    std::vector<Detection>* out) const override {
      Detection d;
      d.type = type();
      d.query = facts.raw_sql;
      d.stmt = facts.stmt;
      d.message = "echo";
      out->push_back(std::move(d));
    }
  };
  RuleRegistry registry;
  registry.Register(std::make_unique<EchoRule>());

  ContextBuilder builder;
  builder.AddQuery("SELECT a FROM t");
  builder.AddQuery("SELECT  a  FROM t");
  Context context = builder.Build();

  DetectorConfig config;
  config.data_analysis = false;
  auto detections = DetectAntiPatterns(context, registry, config);
  ASSERT_EQ(detections.size(), 2u);
  EXPECT_EQ(detections[0].query, "SELECT a FROM t");
  EXPECT_EQ(detections[1].query, "SELECT  a  FROM t");
}

TEST(DedupTest, LiteralDifferencesKeepStatementsDistinct) {
  // Leading-wildcard position lives in the literal — merging these would
  // corrupt the PatternMatching detections.
  ContextBuilder builder;
  builder.AddQuery("SELECT name FROM users WHERE name LIKE '%smith'");
  builder.AddQuery("SELECT name FROM users WHERE name LIKE 'smith%'");
  Context context = builder.Build();
  EXPECT_EQ(context.query_groups().unique_count(), 2u);

  DetectorConfig config;
  config.data_analysis = false;
  auto detections = DetectAntiPatterns(context, RuleRegistry::Default(), config);
  int pattern_hits = 0;
  for (const auto& d : detections) {
    if (d.type == AntiPattern::kPatternMatching) ++pattern_hits;
  }
  EXPECT_EQ(pattern_hits, 1);  // only the leading-wildcard query fires
}

TEST(DedupTest, DedupOffYieldsIdentityGroups) {
  ContextBuilder builder;
  builder.AddQuery("SELECT 1");
  builder.AddQuery("SELECT 1");
  Context context = builder.Build(1, nullptr, /*dedup_queries=*/false);
  const QueryGroups& groups = context.query_groups();
  EXPECT_EQ(groups.unique_count(), 2u);
  EXPECT_FALSE(groups.has_duplicates());
  EXPECT_TRUE(groups.fingerprints.empty());
}

TEST(DedupTest, ParallelDedupMatchesSerialDedup) {
  auto build_report = [](int threads) {
    SqlCheckOptions options;
    options.parallelism = threads;
    SqlCheck checker(options);
    for (int i = 0; i < 40; ++i) {
      checker.AddQuery("SELECT * FROM users u JOIN orders o ON u.id = o.user_id");
      checker.AddQuery("SELECT name FROM users WHERE id = " + std::to_string(i % 4));
    }
    return checker.Run().ToText();
  };
  std::string serial = build_report(1);
  EXPECT_EQ(build_report(2), serial);
  EXPECT_EQ(build_report(4), serial);
  EXPECT_EQ(build_report(0), serial);
}

}  // namespace
}  // namespace sqlcheck
