#include "engine/eval.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace sqlcheck {
namespace {

/// Evaluates the expression of `SELECT <expr>` with an empty scope.
Result<Value> EvalText(const std::string& expr_text) {
  static std::vector<sql::StatementPtr> keep_alive;
  keep_alive.push_back(sql::ParseStatement("SELECT " + expr_text));
  auto* select = keep_alive.back()->As<sql::SelectStatement>();
  EXPECT_NE(select, nullptr) << expr_text;
  static Rng rng(99);
  EvalScope scope;
  scope.rng = &rng;
  return Eval(*select->items[0].expr, scope);
}

Value MustEval(const std::string& expr_text) {
  auto r = EvalText(expr_text);
  EXPECT_TRUE(r.ok()) << r.message() << " for " << expr_text;
  return r.ok() ? *r : Value::Null_();
}

TEST(EvalTest, Literals) {
  EXPECT_EQ(MustEval("42").AsInt(), 42);
  EXPECT_DOUBLE_EQ(MustEval("2.5").AsReal(), 2.5);
  EXPECT_EQ(MustEval("'abc'").AsString(), "abc");
  EXPECT_TRUE(MustEval("TRUE").AsBool());
  EXPECT_TRUE(MustEval("NULL").is_null());
}

TEST(EvalTest, Arithmetic) {
  EXPECT_EQ(MustEval("1 + 2 * 3").AsInt(), 7);
  EXPECT_EQ(MustEval("7 / 2").AsInt(), 3);        // int division
  EXPECT_DOUBLE_EQ(MustEval("7.0 / 2").AsReal(), 3.5);
  EXPECT_EQ(MustEval("7 % 3").AsInt(), 1);
  EXPECT_EQ(MustEval("-5").AsInt(), -5);
  EXPECT_TRUE(MustEval("1 / 0").is_null());       // division by zero -> NULL
}

TEST(EvalTest, NullPropagatesThroughOperators) {
  EXPECT_TRUE(MustEval("1 + NULL").is_null());
  EXPECT_TRUE(MustEval("NULL = NULL").is_null());
  EXPECT_TRUE(MustEval("'a' || NULL").is_null());
  EXPECT_TRUE(MustEval("NOT NULL").is_null());
}

TEST(EvalTest, ThreeValuedLogic) {
  // NULL AND FALSE is FALSE; NULL OR TRUE is TRUE; else NULL.
  EXPECT_FALSE(MustEval("NULL AND FALSE").AsBool());
  EXPECT_FALSE(MustEval("NULL AND FALSE").is_null());
  EXPECT_TRUE(MustEval("NULL OR TRUE").AsBool());
  EXPECT_TRUE(MustEval("NULL AND TRUE").is_null());
  EXPECT_TRUE(MustEval("NULL OR FALSE").is_null());
}

TEST(EvalTest, Comparisons) {
  EXPECT_TRUE(MustEval("2 > 1").AsBool());
  EXPECT_TRUE(MustEval("2 >= 2").AsBool());
  EXPECT_TRUE(MustEval("'a' < 'b'").AsBool());
  EXPECT_TRUE(MustEval("1 <> 2").AsBool());
  EXPECT_FALSE(MustEval("1 = 2").AsBool());
}

TEST(EvalTest, LikeAndRegexp) {
  EXPECT_TRUE(MustEval("'hello' LIKE 'he%'").AsBool());
  EXPECT_FALSE(MustEval("'hello' NOT LIKE 'he%'").AsBool());
  EXPECT_TRUE(MustEval("'HELLO' ILIKE 'he%'").AsBool());
  EXPECT_TRUE(MustEval("'U1,U2' REGEXP '[[:<:]]U2[[:>:]]'").AsBool());
  EXPECT_TRUE(MustEval("'abc' LIKE NULL").is_null());
}

TEST(EvalTest, InAndBetween) {
  EXPECT_TRUE(MustEval("2 IN (1, 2, 3)").AsBool());
  EXPECT_FALSE(MustEval("9 IN (1, 2, 3)").AsBool());
  EXPECT_TRUE(MustEval("9 NOT IN (1, 2, 3)").AsBool());
  // NULL in the list makes a miss UNKNOWN, not FALSE.
  EXPECT_TRUE(MustEval("9 IN (1, NULL)").is_null());
  EXPECT_TRUE(MustEval("2 BETWEEN 1 AND 3").AsBool());
  EXPECT_TRUE(MustEval("0 NOT BETWEEN 1 AND 3").AsBool());
}

TEST(EvalTest, IsNullForms) {
  EXPECT_TRUE(MustEval("NULL IS NULL").AsBool());
  EXPECT_FALSE(MustEval("1 IS NULL").AsBool());
  EXPECT_TRUE(MustEval("1 IS NOT NULL").AsBool());
}

TEST(EvalTest, CaseExpression) {
  EXPECT_EQ(MustEval("CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' ELSE 'c' END")
                .AsString(),
            "b");
  EXPECT_EQ(MustEval("CASE WHEN 1 > 2 THEN 'a' ELSE 'c' END").AsString(), "c");
  EXPECT_TRUE(MustEval("CASE WHEN 1 > 2 THEN 'a' END").is_null());
  EXPECT_EQ(MustEval("CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END").AsString(), "two");
}

TEST(EvalTest, StringFunctions) {
  EXPECT_EQ(MustEval("UPPER('ab')").AsString(), "AB");
  EXPECT_EQ(MustEval("LOWER('AB')").AsString(), "ab");
  EXPECT_EQ(MustEval("LENGTH('abc')").AsInt(), 3);
  EXPECT_EQ(MustEval("REPLACE('a,b,a', 'a', 'x')").AsString(), "x,b,x");
  EXPECT_EQ(MustEval("SUBSTR('hello', 2, 3)").AsString(), "ell");
  EXPECT_EQ(MustEval("TRIM('  x ')").AsString(), "x");
  EXPECT_EQ(MustEval("CONCAT('a', 'b', 'c')").AsString(), "abc");
  EXPECT_TRUE(MustEval("CONCAT('a', NULL)").is_null());  // MySQL semantics
  EXPECT_EQ(MustEval("CONCAT_WS('-', 'a', NULL, 'b')").AsString(), "a-b");
}

TEST(EvalTest, NullHandlingFunctions) {
  EXPECT_EQ(MustEval("COALESCE(NULL, NULL, 'x')").AsString(), "x");
  EXPECT_TRUE(MustEval("COALESCE(NULL, NULL)").is_null());
  EXPECT_TRUE(MustEval("NULLIF(1, 1)").is_null());
  EXPECT_EQ(MustEval("NULLIF(1, 2)").AsInt(), 1);
  EXPECT_EQ(MustEval("IFNULL(NULL, 9)").AsInt(), 9);
}

TEST(EvalTest, MathFunctions) {
  EXPECT_EQ(MustEval("ABS(-4)").AsInt(), 4);
  EXPECT_DOUBLE_EQ(MustEval("ROUND(2.567, 1)").AsReal(), 2.6);
  double r = MustEval("RAND()").AsReal();
  EXPECT_GE(r, 0.0);
  EXPECT_LT(r, 1.0);
}

TEST(EvalTest, FloorAndCeil) {
  // These back the ORDER BY RAND() key-probe rewrite, so the Tier-3
  // verifier needs them executable.
  EXPECT_EQ(MustEval("FLOOR(2.9)").AsInt(), 2);
  EXPECT_EQ(MustEval("FLOOR(-2.1)").AsInt(), -3);
  EXPECT_EQ(MustEval("FLOOR(7)").AsInt(), 7);
  EXPECT_EQ(MustEval("CEIL(2.1)").AsInt(), 3);
  EXPECT_EQ(MustEval("CEILING(-2.9)").AsInt(), -2);
  EXPECT_EQ(MustEval("CEIL(7)").AsInt(), 7);
  EXPECT_TRUE(MustEval("FLOOR(NULL)").is_null());
  EXPECT_TRUE(MustEval("CEIL(NULL)").is_null());
}

TEST(EvalTest, ReverseFunction) {
  // Backs the leading-wildcard LIKE rewrite; byte-wise, matching the
  // rewriter's ASCII-only guard.
  EXPECT_EQ(MustEval("REVERSE('abc')").AsString(), "cba");
  EXPECT_EQ(MustEval("REVERSE('')").AsString(), "");
  EXPECT_TRUE(MustEval("REVERSE(NULL)").is_null());
  EXPECT_EQ(MustEval("REVERSE(REVERSE('smith'))").AsString(), "smith");
}

TEST(EvalTest, CastExpressions) {
  EXPECT_EQ(MustEval("CAST('42' AS INTEGER)").AsInt(), 42);
  EXPECT_DOUBLE_EQ(MustEval("CAST('2.5' AS FLOAT)").AsReal(), 2.5);
  EXPECT_EQ(MustEval("CAST(7 AS TEXT)").AsString(), "7");
  EXPECT_EQ(MustEval("'42'::integer").AsInt(), 42);
}

TEST(EvalTest, ColumnResolutionThroughScope) {
  auto stmt = sql::ParseStatement("CREATE TABLE t (a INTEGER, b VARCHAR(5))");
  TableSchema schema =
      TableSchema::FromCreateTable(*stmt->As<sql::CreateTableStatement>());
  EvalScope scope;
  scope.AddSource("t", &schema);
  Row row{Value::Int(7), Value::Str("x")};
  scope.BindRow(0, &row);

  auto q = sql::ParseStatement("SELECT a + 1, t.b, missing FROM t");
  auto* select = q->As<sql::SelectStatement>();
  auto v0 = Eval(*select->items[0].expr, scope);
  ASSERT_TRUE(v0.ok());
  EXPECT_EQ(v0->AsInt(), 8);
  auto v1 = Eval(*select->items[1].expr, scope);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->AsString(), "x");
  EXPECT_FALSE(Eval(*select->items[2].expr, scope).ok());
}

TEST(EvalTest, AggregateOutsideContextErrors) {
  EXPECT_FALSE(EvalText("SUM(1)").ok());
}

TEST(EvalTest, ContainsAggregateDetection) {
  auto q = sql::ParseStatement("SELECT SUM(a) + 1, b FROM t");
  auto* select = q->As<sql::SelectStatement>();
  EXPECT_TRUE(ContainsAggregate(*select->items[0].expr));
  EXPECT_FALSE(ContainsAggregate(*select->items[1].expr));
}

TEST(EvalTest, UnboundParameterErrors) {
  EXPECT_FALSE(EvalText("?").ok());
}

}  // namespace
}  // namespace sqlcheck
