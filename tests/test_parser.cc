#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/printer.h"

namespace sqlcheck::sql {
namespace {

template <typename T>
const T& ParseAs(std::string_view text) {
  static StatementPtr holder;  // keeps the statement alive for the returned ref
  holder = ParseStatement(text);
  const T* typed = holder->As<T>();
  EXPECT_NE(typed, nullptr) << "parsed as " << StatementKindName(holder->kind) << ": " << text;
  return *typed;
}

TEST(ParserSelectTest, SimpleSelect) {
  const auto& s = ParseAs<SelectStatement>("SELECT a, b FROM t");
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[0].expr->ColumnName(), "a");
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].name, "t");
}

TEST(ParserSelectTest, SelectStarAndQualifiedStar) {
  const auto& s = ParseAs<SelectStatement>("SELECT *, t.* FROM t");
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[0].expr->kind, ExprKind::kStar);
  EXPECT_EQ(s.items[1].expr->kind, ExprKind::kStar);
  ASSERT_EQ(s.items[1].expr->name_parts.size(), 1u);
  EXPECT_EQ(s.items[1].expr->name_parts[0], "t");
}

TEST(ParserSelectTest, DistinctFlag) {
  EXPECT_TRUE(ParseAs<SelectStatement>("SELECT DISTINCT a FROM t").distinct);
  EXPECT_FALSE(ParseAs<SelectStatement>("SELECT a FROM t").distinct);
}

TEST(ParserSelectTest, AliasWithAndWithoutAs) {
  const auto& s = ParseAs<SelectStatement>("SELECT a AS x, b y FROM t AS u");
  EXPECT_EQ(s.items[0].alias, "x");
  EXPECT_EQ(s.items[1].alias, "y");
  EXPECT_EQ(s.from[0].alias, "u");
}

TEST(ParserSelectTest, JoinVariants) {
  const auto& s = ParseAs<SelectStatement>(
      "SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id "
      "CROSS JOIN d");
  ASSERT_EQ(s.joins.size(), 3u);
  EXPECT_EQ(s.joins[0].type, JoinType::kInner);
  EXPECT_EQ(s.joins[1].type, JoinType::kLeft);
  EXPECT_EQ(s.joins[2].type, JoinType::kCross);
  EXPECT_EQ(s.JoinCount(), 3);
}

TEST(ParserSelectTest, JoinUsing) {
  const auto& s = ParseAs<SelectStatement>("SELECT * FROM a JOIN b USING (id, ts)");
  ASSERT_EQ(s.joins.size(), 1u);
  EXPECT_EQ(sql::ToStringVector(s.joins[0].using_columns),
            (std::vector<std::string>{"id", "ts"}));
}

TEST(ParserSelectTest, CommaJoinCountsAsImplicitJoin) {
  const auto& s = ParseAs<SelectStatement>("SELECT * FROM a, b, c");
  EXPECT_EQ(s.from.size(), 3u);
  EXPECT_EQ(s.JoinCount(), 2);
}

TEST(ParserSelectTest, WhereGroupHavingOrderLimitOffset) {
  const auto& s = ParseAs<SelectStatement>(
      "SELECT dept, COUNT(*) FROM emp WHERE salary > 10 GROUP BY dept "
      "HAVING COUNT(*) > 2 ORDER BY dept DESC LIMIT 5 OFFSET 3");
  EXPECT_NE(s.where, nullptr);
  ASSERT_EQ(s.group_by.size(), 1u);
  EXPECT_NE(s.having, nullptr);
  ASSERT_EQ(s.order_by.size(), 1u);
  EXPECT_TRUE(s.order_by[0].descending);
  EXPECT_EQ(s.limit, 5);
  EXPECT_EQ(s.offset, 3);
}

TEST(ParserSelectTest, MysqlLimitCommaForm) {
  const auto& s = ParseAs<SelectStatement>("SELECT a FROM t LIMIT 10, 20");
  EXPECT_EQ(s.offset, 10);
  EXPECT_EQ(s.limit, 20);
}

TEST(ParserSelectTest, SubqueryInFrom) {
  const auto& s = ParseAs<SelectStatement>("SELECT x FROM (SELECT a AS x FROM t) AS sub");
  ASSERT_EQ(s.from.size(), 1u);
  ASSERT_NE(s.from[0].subquery, nullptr);
  EXPECT_EQ(s.from[0].alias, "sub");
}

TEST(ParserSelectTest, InSubqueryAndExists) {
  const auto& s = ParseAs<SelectStatement>(
      "SELECT * FROM t WHERE id IN (SELECT id FROM u) AND EXISTS (SELECT 1 FROM v)");
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.where->text, "AND");
}

TEST(ParserSelectTest, LikeVariantsAndNegation) {
  const auto& s = ParseAs<SelectStatement>(
      "SELECT * FROM t WHERE a LIKE '%x%' AND b NOT LIKE 'y' AND c REGEXP '^z'");
  EXPECT_NE(s.where, nullptr);
  // Root is AND; descend to confirm LIKE nodes exist with negation flags.
  int like_count = 0;
  int negated_count = 0;
  VisitExpr(*s.where, false, [&](const Expr& e) {
    if (e.kind == ExprKind::kLike) {
      ++like_count;
      if (e.negated) ++negated_count;
    }
  });
  EXPECT_EQ(like_count, 3);
  EXPECT_EQ(negated_count, 1);
}

TEST(ParserSelectTest, BetweenAndInList) {
  const auto& s = ParseAs<SelectStatement>(
      "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2, 3)");
  int between = 0;
  int in_list = 0;
  VisitExpr(*s.where, false, [&](const Expr& e) {
    if (e.kind == ExprKind::kBetween) ++between;
    if (e.kind == ExprKind::kIn) in_list += static_cast<int>(e.children.size()) - 1;
  });
  EXPECT_EQ(between, 1);
  EXPECT_EQ(in_list, 3);
}

TEST(ParserSelectTest, IsNullAndIsNotNull) {
  const auto& s =
      ParseAs<SelectStatement>("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL");
  int is_null = 0;
  int negated = 0;
  VisitExpr(*s.where, false, [&](const Expr& e) {
    if (e.kind == ExprKind::kIsNull) {
      ++is_null;
      if (e.negated) ++negated;
    }
  });
  EXPECT_EQ(is_null, 2);
  EXPECT_EQ(negated, 1);
}

TEST(ParserSelectTest, OperatorPrecedence) {
  const auto& s = ParseAs<SelectStatement>("SELECT 1 + 2 * 3 FROM t");
  const Expr& e = *s.items[0].expr;
  ASSERT_EQ(e.kind, ExprKind::kBinary);
  EXPECT_EQ(e.text, "+");
  EXPECT_EQ(e.children[1]->text, "*");
}

TEST(ParserSelectTest, ConcatOperator) {
  const auto& s = ParseAs<SelectStatement>("SELECT first || ' ' || last FROM people");
  const Expr& e = *s.items[0].expr;
  EXPECT_EQ(e.text, "||");
}

TEST(ParserSelectTest, FunctionCallsWithDistinctArg) {
  const auto& s = ParseAs<SelectStatement>("SELECT COUNT(DISTINCT user_id), SUM(x) FROM t");
  EXPECT_EQ(s.items[0].expr->kind, ExprKind::kFunction);
  EXPECT_TRUE(s.items[0].expr->distinct_arg);
  EXPECT_EQ(s.items[1].expr->text, "SUM");
}

TEST(ParserSelectTest, CaseExpression) {
  const auto& s = ParseAs<SelectStatement>(
      "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t");
  EXPECT_EQ(s.items[0].expr->kind, ExprKind::kCase);
}

TEST(ParserInsertTest, ImplicitColumns) {
  const auto& s = ParseAs<InsertStatement>("INSERT INTO t VALUES (1, 'a', true)");
  EXPECT_TRUE(s.columns.empty());
  ASSERT_EQ(s.rows.size(), 1u);
  EXPECT_EQ(s.rows[0].size(), 3u);
}

TEST(ParserInsertTest, ExplicitColumnsMultiRow) {
  const auto& s =
      ParseAs<InsertStatement>("INSERT INTO t (a, b) VALUES (1, 2), (3, 4)");
  EXPECT_EQ(sql::ToStringVector(s.columns), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(s.rows.size(), 2u);
}

TEST(ParserInsertTest, InsertSelect) {
  const auto& s = ParseAs<InsertStatement>("INSERT INTO t (a) SELECT x FROM u");
  EXPECT_NE(s.select, nullptr);
}

TEST(ParserUpdateTest, AssignmentsAndWhere) {
  const auto& s =
      ParseAs<UpdateStatement>("UPDATE t SET a = 1, b = b + 1 WHERE id = 5");
  EXPECT_EQ(s.table, "t");
  ASSERT_EQ(s.assignments.size(), 2u);
  EXPECT_EQ(s.assignments[0].first, "a");
  EXPECT_NE(s.where, nullptr);
}

TEST(ParserDeleteTest, DeleteWithWhere) {
  const auto& s = ParseAs<DeleteStatement>("DELETE FROM t WHERE id = 3");
  EXPECT_EQ(s.table, "t");
  EXPECT_NE(s.where, nullptr);
}

TEST(ParserCreateTableTest, ColumnsTypesConstraints) {
  const auto& s = ParseAs<CreateTableStatement>(
      "CREATE TABLE users ("
      "  id INTEGER PRIMARY KEY,"
      "  email VARCHAR(120) NOT NULL UNIQUE,"
      "  score FLOAT DEFAULT 0,"
      "  role VARCHAR(10) REFERENCES roles(role_id) ON DELETE CASCADE,"
      "  bio TEXT,"
      "  CHECK (score >= 0)"
      ")");
  EXPECT_EQ(s.table, "users");
  ASSERT_EQ(s.columns.size(), 5u);
  EXPECT_TRUE(s.columns[0].primary_key);
  EXPECT_TRUE(s.columns[1].not_null);
  EXPECT_TRUE(s.columns[1].unique);
  EXPECT_EQ(std::vector<int64_t>(s.columns[1].type.params.begin(),
                                 s.columns[1].type.params.end()),
            (std::vector<int64_t>{120}));
  EXPECT_NE(s.columns[2].default_value, nullptr);
  ASSERT_TRUE(s.columns[3].references.has_value());
  EXPECT_EQ(s.columns[3].references->table, "roles");
  EXPECT_TRUE(s.columns[3].references->on_delete_cascade);
  ASSERT_EQ(s.constraints.size(), 1u);
  EXPECT_EQ(s.constraints[0].kind, TableConstraintKind::kCheck);
  EXPECT_TRUE(s.HasPrimaryKey());
  EXPECT_TRUE(s.HasForeignKey());
}

TEST(ParserCreateTableTest, CompositePrimaryKeyAndForeignKey) {
  const auto& s = ParseAs<CreateTableStatement>(
      "CREATE TABLE hosting ("
      "  user_id VARCHAR(10),"
      "  tenant_id VARCHAR(10),"
      "  PRIMARY KEY (user_id, tenant_id),"
      "  FOREIGN KEY (user_id) REFERENCES users(user_id)"
      ")");
  ASSERT_EQ(s.constraints.size(), 2u);
  EXPECT_EQ(s.constraints[0].columns.size(), 2u);
  EXPECT_EQ(s.constraints[1].reference.table, "users");
}

TEST(ParserCreateTableTest, EnumType) {
  const auto& s = ParseAs<CreateTableStatement>(
      "CREATE TABLE u (role ENUM('admin', 'user', 'guest'))");
  ASSERT_EQ(s.columns.size(), 1u);
  EXPECT_EQ(sql::ToStringVector(s.columns[0].type.enum_values),
            (std::vector<std::string>{"admin", "user", "guest"}));
}

TEST(ParserCreateTableTest, TimestampWithTimeZone) {
  const auto& s = ParseAs<CreateTableStatement>(
      "CREATE TABLE e (at1 TIMESTAMP WITH TIME ZONE, at2 TIMESTAMP, at3 TIMESTAMPTZ)");
  EXPECT_TRUE(s.columns[0].type.with_time_zone);
  EXPECT_FALSE(s.columns[1].type.with_time_zone);
}

TEST(ParserCreateIndexTest, UniqueAndPlain) {
  const auto& s =
      ParseAs<CreateIndexStatement>("CREATE UNIQUE INDEX idx_u ON t (a, b)");
  EXPECT_TRUE(s.unique);
  EXPECT_EQ(s.index, "idx_u");
  EXPECT_EQ(s.table, "t");
  EXPECT_EQ(sql::ToStringVector(s.columns), (std::vector<std::string>{"a", "b"}));
}

TEST(ParserAlterTest, AddDropColumnAndConstraint) {
  const auto& add = ParseAs<AlterTableStatement>("ALTER TABLE t ADD COLUMN c INTEGER");
  EXPECT_EQ(add.action, AlterAction::kAddColumn);
  EXPECT_EQ(add.column.name, "c");

  const auto& drop = ParseAs<AlterTableStatement>("ALTER TABLE t DROP COLUMN c");
  EXPECT_EQ(drop.action, AlterAction::kDropColumn);

  const auto& add_check = ParseAs<AlterTableStatement>(
      "ALTER TABLE u ADD CONSTRAINT chk CHECK (role IN ('R1', 'R2'))");
  EXPECT_EQ(add_check.action, AlterAction::kAddConstraint);
  EXPECT_EQ(add_check.constraint.kind, TableConstraintKind::kCheck);
  EXPECT_EQ(add_check.constraint.name, "chk");

  const auto& drop_check = ParseAs<AlterTableStatement>(
      "ALTER TABLE u DROP CONSTRAINT IF EXISTS chk");
  EXPECT_EQ(drop_check.action, AlterAction::kDropConstraint);
  EXPECT_TRUE(drop_check.if_exists);
}

TEST(ParserDropTest, DropTableAndIndex) {
  const auto& t = ParseAs<DropTableStatement>("DROP TABLE IF EXISTS t");
  EXPECT_TRUE(t.if_exists);
  const auto& i = ParseAs<DropIndexStatement>("DROP INDEX idx");
  EXPECT_EQ(i.index, "idx");
}

TEST(ParserFallbackTest, GarbageBecomesUnknown) {
  auto stmt = ParseStatement("THIS IS NOT SQL AT ALL ~~~~");
  EXPECT_EQ(stmt->kind, StatementKind::kUnknown);
  EXPECT_FALSE(stmt->As<UnknownStatement>()->tokens.empty());
}

TEST(ParserFallbackTest, CreateViewFallsBackGracefully) {
  auto stmt = ParseStatement("CREATE VIEW v AS SELECT 1");
  EXPECT_EQ(stmt->kind, StatementKind::kUnknown);
}

TEST(ParserFallbackTest, RawSqlIsPreserved) {
  auto stmt = ParseStatement("SELECT a FROM t");
  EXPECT_EQ(stmt->raw_sql, "SELECT a FROM t");
}

TEST(ParserScriptTest, MultiStatementScript) {
  auto stmts = ParseScript("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t");
  ASSERT_EQ(stmts.size(), 3u);
  EXPECT_EQ(stmts[0]->kind, StatementKind::kCreateTable);
  EXPECT_EQ(stmts[1]->kind, StatementKind::kInsert);
  EXPECT_EQ(stmts[2]->kind, StatementKind::kSelect);
}

TEST(ParserDialectTest, KeywordAsColumnName) {
  const auto& s = ParseAs<SelectStatement>("SELECT key, type FROM config");
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[0].expr->ColumnName(), "key");
  EXPECT_EQ(s.items[1].expr->ColumnName(), "type");
}

TEST(ParserDialectTest, TheGlobaleaksMvaQueryParses) {
  // The motivating query from the paper (§2.1, Task 1).
  const auto& s = ParseAs<SelectStatement>(
      "SELECT * FROM Tenants WHERE User_IDs LIKE '[[:<:]]U1[[:>:]]'");
  EXPECT_NE(s.where, nullptr);
  EXPECT_EQ(s.where->kind, ExprKind::kLike);
}

TEST(ParserDialectTest, ExpressionJoinFromPaperParses) {
  // §2.1 Task 2: join through a LIKE over concatenation.
  const auto& s = ParseAs<SelectStatement>(
      "SELECT * FROM Tenants AS t JOIN Users AS u "
      "ON t.User_IDs LIKE '[[:<:]]' || u.User_ID || '[[:>:]]' "
      "WHERE t.Tenant_ID = 'T1'");
  ASSERT_EQ(s.joins.size(), 1u);
  EXPECT_NE(s.joins[0].on, nullptr);
  EXPECT_EQ(s.joins[0].on->kind, ExprKind::kLike);
}

}  // namespace
}  // namespace sqlcheck::sql
