#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace sqlcheck::sql {
namespace {

/// Shared buffer for the whole test binary: tokens from one LexAll stay
/// valid until the next call, which is all these tests need.
TokenBuffer& SharedBuffer() {
  static TokenBuffer* buffer = new TokenBuffer();
  return *buffer;
}

std::vector<Token> LexAll(std::string_view s, LexerOptions opts = {}) {
  return Lex(s, SharedBuffer(), opts);
}

std::vector<Token> LexNoEnd(std::string_view s, LexerOptions opts = {}) {
  auto tokens = LexAll(s, opts);
  EXPECT_FALSE(tokens.empty());
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
  tokens.pop_back();
  return tokens;
}

TEST(LexerTest, EmptyInputYieldsOnlyEnd) {
  auto tokens = LexAll("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

TEST(LexerTest, KeywordsAndIdentifiers) {
  auto tokens = LexNoEnd("SELECT name FROM users");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[1].text, "name");
  EXPECT_TRUE(tokens[2].IsKeyword("from"));
  EXPECT_EQ(tokens[3].text, "users");
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = LexNoEnd("sElEcT");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kKeyword);
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
}

TEST(LexerTest, SingleQuotedStringWithDoubledEscape) {
  auto tokens = LexNoEnd("'it''s'");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, BackslashEscapeInString) {
  auto tokens = LexNoEnd(R"('a\'b')");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].text, "a'b");
}

TEST(LexerTest, QuotedIdentifierStyles) {
  auto tokens = LexNoEnd(R"("col" `col` [col])");
  ASSERT_EQ(tokens.size(), 3u);
  for (const auto& t : tokens) {
    EXPECT_EQ(t.kind, TokenKind::kQuotedIdentifier);
    EXPECT_EQ(t.text, "col");
  }
}

TEST(LexerTest, DollarQuotedString) {
  auto tokens = LexNoEnd("$$hello world$$");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "hello world");
}

TEST(LexerTest, TaggedDollarQuotedString) {
  auto tokens = LexNoEnd("$tag$a $$ b$tag$");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].text, "a $$ b");
}

TEST(LexerTest, NumbersIntegerRealExponent) {
  auto tokens = LexNoEnd("1 2.5 3e10 4.2E-3 .5");
  ASSERT_EQ(tokens.size(), 5u);
  for (const auto& t : tokens) EXPECT_EQ(t.kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[0].text, "1");
  EXPECT_EQ(tokens[1].text, "2.5");
  EXPECT_EQ(tokens[2].text, "3e10");
  EXPECT_EQ(tokens[3].text, "4.2E-3");
  EXPECT_EQ(tokens[4].text, ".5");
}

TEST(LexerTest, LineCommentsAreSkippedByDefault) {
  auto tokens = LexNoEnd("SELECT 1 -- trailing comment\n+ 2");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[2].text, "+");
}

TEST(LexerTest, HashCommentsAreSkipped) {
  auto tokens = LexNoEnd("SELECT 1 # mysql comment\n, 2");
  ASSERT_EQ(tokens.size(), 4u);
}

TEST(LexerTest, BlockCommentsAreSkipped) {
  auto tokens = LexNoEnd("SELECT /* a\nmultiline\ncomment */ 42");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[1].text, "42");
}

TEST(LexerTest, CommentsKeptWhenRequested) {
  LexerOptions opts;
  opts.keep_comments = true;
  auto tokens = LexNoEnd("SELECT 1 -- note", opts);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[2].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[2].text, "-- note");
}

TEST(LexerTest, BindParameterSpellings) {
  auto tokens = LexNoEnd("? %s :named $3");
  ASSERT_EQ(tokens.size(), 4u);
  for (const auto& t : tokens) EXPECT_EQ(t.kind, TokenKind::kParam);
  EXPECT_EQ(tokens[0].text, "?");
  EXPECT_EQ(tokens[1].text, "%s");
  EXPECT_EQ(tokens[2].text, ":named");
  EXPECT_EQ(tokens[3].text, "$3");
}

TEST(LexerTest, ModuloBeforeIdentifierIsNotAParam) {
  // Regression: `id%salary` used to lex as param `%s` + identifier `alary`.
  auto tokens = LexNoEnd("id%salary");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "id");
  EXPECT_TRUE(tokens[1].IsOperator("%"));
  EXPECT_EQ(tokens[2].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[2].text, "salary");
}

TEST(LexerTest, ParamStillRecognizedAtWordBoundary) {
  auto tokens = LexNoEnd("a = %s, b = %s) %s");
  int params = 0;
  for (const auto& t : tokens) {
    if (t.kind == TokenKind::kParam) ++params;
  }
  EXPECT_EQ(params, 3);
}

TEST(LexerTest, NestedBlockCommentsAreOneComment) {
  // Regression: PostgreSQL block comments nest; the inner `*/` used to end
  // the comment and leak `c */` as live tokens.
  auto tokens = LexNoEnd("SELECT /* a /* b */ c */ 42");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_EQ(tokens[1].text, "42");
}

TEST(LexerTest, NestedBlockCommentKeptWhole) {
  LexerOptions opts;
  opts.keep_comments = true;
  auto tokens = LexNoEnd("/* a /* b */ c */", opts);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[0].text, "/* a /* b */ c */");
}

TEST(LexerTest, UnterminatedNestedBlockCommentConsumesRest) {
  auto tokens = LexNoEnd("SELECT /* outer /* inner */ still comment");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
}

TEST(LexerTest, MySqlNullSafeEqualsIsOneToken) {
  auto tokens = LexNoEnd("a <=> b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_TRUE(tokens[1].IsOperator("<=>"));
}

TEST(LexerTest, JsonPathOperatorsAreSingleTokens) {
  auto tokens = LexNoEnd("j #>> 'p' #> 'q' @> r <@ s");
  std::vector<std::string> ops;
  for (const auto& t : tokens) {
    if (t.kind == TokenKind::kOperator) ops.emplace_back(t.text);
  }
  EXPECT_EQ(ops, (std::vector<std::string>{"#>>", "#>", "@>", "<@"}));
}

TEST(LexerTest, HashStillStartsCommentWhenNotJsonOperator) {
  auto tokens = LexNoEnd("SELECT 1 # comment with #> inside\n+ 2");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[2].text, "+");
}

TEST(LexerTest, MultiCharOperators) {
  auto tokens = LexNoEnd("a || b <> c != d <= e >= f :: g == h");
  std::vector<std::string> ops;
  for (const auto& t : tokens) {
    if (t.kind == TokenKind::kOperator) ops.emplace_back(t.text);
  }
  EXPECT_EQ(ops, (std::vector<std::string>{"||", "<>", "!=", "<=", ">=", "::", "=="}));
}

TEST(LexerTest, PunctuationKinds) {
  auto tokens = LexNoEnd("(a, b.c);");
  EXPECT_EQ(tokens[0].kind, TokenKind::kLeftParen);
  EXPECT_EQ(tokens[2].kind, TokenKind::kComma);
  EXPECT_EQ(tokens[4].kind, TokenKind::kDot);
  EXPECT_EQ(tokens[6].kind, TokenKind::kRightParen);
  EXPECT_EQ(tokens[7].kind, TokenKind::kSemicolon);
}

TEST(LexerTest, OffsetsAndLengthsTrackSource) {
  std::string sql = "SELECT 'ab'";
  auto tokens = LexNoEnd(sql);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[0].length, 6u);
  EXPECT_EQ(tokens[1].offset, 7u);
  EXPECT_EQ(tokens[1].length, 4u);  // includes quotes
}

TEST(LexerTest, UnterminatedStringDoesNotCrash) {
  auto tokens = LexNoEnd("'never closed");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "never closed");
}

TEST(LexerTest, WordBoundaryPatternSurvivesAsString) {
  auto tokens = LexNoEnd("WHERE User_IDs LIKE '[[:<:]]U1[[:>:]]'");
  EXPECT_EQ(tokens.back().kind, TokenKind::kString);
  EXPECT_EQ(tokens.back().text, "[[:<:]]U1[[:>:]]");
}

}  // namespace
}  // namespace sqlcheck::sql
