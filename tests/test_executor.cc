#include "engine/executor.h"

#include <gtest/gtest.h>

namespace sqlcheck {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : exec_(&db_) {}

  QueryResult Run(std::string_view sql_text) {
    auto r = exec_.ExecuteSql(sql_text);
    EXPECT_TRUE(r.ok()) << r.message() << " for: " << sql_text;
    return r.ok() ? std::move(*r) : QueryResult{};
  }

  Status RunExpectError(std::string_view sql_text) {
    auto r = exec_.ExecuteSql(sql_text);
    EXPECT_FALSE(r.ok()) << "expected failure for: " << sql_text;
    return r.status();
  }

  Database db_;
  Executor exec_;
};

TEST_F(ExecutorTest, CreateInsertSelectRoundTrip) {
  Run("CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(20))");
  Run("INSERT INTO t (id, name) VALUES (1, 'alice'), (2, 'bob')");
  auto r = Run("SELECT name FROM t ORDER BY id");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "alice");
  EXPECT_EQ(r.rows[1][0].AsString(), "bob");
}

TEST_F(ExecutorTest, SelectStarExpandsColumns) {
  Run("CREATE TABLE t (a INT, b INT, c INT)");
  Run("INSERT INTO t VALUES (1, 2, 3)");
  auto r = Run("SELECT * FROM t");
  EXPECT_EQ(r.columns, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][2].AsInt(), 3);
}

TEST_F(ExecutorTest, WhereFiltersAndComparisons) {
  Run("CREATE TABLE t (x INT)");
  Run("INSERT INTO t VALUES (1), (2), (3), (4), (5)");
  EXPECT_EQ(Run("SELECT x FROM t WHERE x > 3").rows.size(), 2u);
  EXPECT_EQ(Run("SELECT x FROM t WHERE x BETWEEN 2 AND 4").rows.size(), 3u);
  EXPECT_EQ(Run("SELECT x FROM t WHERE x IN (1, 5, 9)").rows.size(), 2u);
  EXPECT_EQ(Run("SELECT x FROM t WHERE x <> 3").rows.size(), 4u);
}

TEST_F(ExecutorTest, NullSemanticsInWhere) {
  Run("CREATE TABLE t (x INT)");
  Run("INSERT INTO t VALUES (1), (NULL), (3)");
  // NULL comparisons are never true (the classic NULL Usage AP trap).
  EXPECT_EQ(Run("SELECT x FROM t WHERE x = NULL").rows.size(), 0u);
  EXPECT_EQ(Run("SELECT x FROM t WHERE x != NULL").rows.size(), 0u);
  EXPECT_EQ(Run("SELECT x FROM t WHERE x IS NULL").rows.size(), 1u);
  EXPECT_EQ(Run("SELECT x FROM t WHERE x IS NOT NULL").rows.size(), 2u);
}

TEST_F(ExecutorTest, ConcatenationPropagatesNull) {
  Run("CREATE TABLE people (first VARCHAR(10), last VARCHAR(10))");
  Run("INSERT INTO people VALUES ('ada', 'lovelace'), ('prince', NULL)");
  auto r = Run("SELECT first || ' ' || last FROM people");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "ada lovelace");
  EXPECT_TRUE(r.rows[1][0].is_null());  // the Concatenate NULLs AP in action
}

TEST_F(ExecutorTest, AggregatesSumCountAvgMinMax) {
  Run("CREATE TABLE t (x INT)");
  Run("INSERT INTO t VALUES (1), (2), (3), (NULL)");
  auto r = Run("SELECT COUNT(*), COUNT(x), SUM(x), AVG(x), MIN(x), MAX(x) FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);
  EXPECT_EQ(r.rows[0][1].AsInt(), 3);
  EXPECT_EQ(r.rows[0][2].AsInt(), 6);
  EXPECT_DOUBLE_EQ(r.rows[0][3].AsReal(), 2.0);
  EXPECT_EQ(r.rows[0][4].AsInt(), 1);
  EXPECT_EQ(r.rows[0][5].AsInt(), 3);
}

TEST_F(ExecutorTest, GroupByWithHaving) {
  Run("CREATE TABLE sales (dept VARCHAR(10), amount INT)");
  Run("INSERT INTO sales VALUES ('a', 10), ('a', 20), ('b', 5), ('c', 7), ('c', 1)");
  auto r = Run(
      "SELECT dept, SUM(amount) FROM sales GROUP BY dept HAVING SUM(amount) > 6 "
      "ORDER BY dept");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "a");
  EXPECT_EQ(r.rows[0][1].AsInt(), 30);
  EXPECT_EQ(r.rows[1][0].AsString(), "c");
}

TEST_F(ExecutorTest, CountDistinct) {
  Run("CREATE TABLE t (x INT)");
  Run("INSERT INTO t VALUES (1), (1), (2), (2), (3)");
  auto r = Run("SELECT COUNT(DISTINCT x) FROM t");
  EXPECT_EQ(r.Scalar().AsInt(), 3);
}

TEST_F(ExecutorTest, HashJoinOnEquality) {
  Run("CREATE TABLE a (id INT PRIMARY KEY, v VARCHAR(5))");
  Run("CREATE TABLE b (id INT, w VARCHAR(5))");
  Run("INSERT INTO a VALUES (1, 'x'), (2, 'y')");
  Run("INSERT INTO b VALUES (1, 'p'), (1, 'q'), (3, 'r')");
  auto r = Run("SELECT a.v, b.w FROM a JOIN b ON a.id = b.id ORDER BY b.w");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].AsString(), "p");
  EXPECT_EQ(r.rows[1][1].AsString(), "q");
}

TEST_F(ExecutorTest, LeftJoinPadsWithNulls) {
  Run("CREATE TABLE a (id INT)");
  Run("CREATE TABLE b (id INT, w VARCHAR(5))");
  Run("INSERT INTO a VALUES (1), (2)");
  Run("INSERT INTO b VALUES (1, 'p')");
  auto r = Run("SELECT a.id, b.w FROM a LEFT JOIN b ON a.id = b.id ORDER BY a.id");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].AsString(), "p");
  EXPECT_TRUE(r.rows[1][1].is_null());
}

TEST_F(ExecutorTest, ExpressionJoinWithLike) {
  // The paper's multi-valued-attribute join (§2.1 Task 2).
  Run("CREATE TABLE tenants (tenant_id VARCHAR(5), user_ids TEXT)");
  Run("CREATE TABLE users (user_id VARCHAR(5), name VARCHAR(10))");
  Run("INSERT INTO tenants VALUES ('T1', 'U1,U2'), ('T2', 'U3,U4')");
  Run("INSERT INTO users VALUES ('U1', 'n1'), ('U2', 'n2'), ('U3', 'n3'), ('U4', 'n4')");
  auto r = Run(
      "SELECT u.name FROM tenants AS t JOIN users AS u "
      "ON t.user_ids LIKE '[[:<:]]' || u.user_id || '[[:>:]]' "
      "WHERE t.tenant_id = 'T1' ORDER BY u.name");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "n1");
  EXPECT_EQ(r.rows[1][0].AsString(), "n2");
}

TEST_F(ExecutorTest, CommaJoinProducesCrossProduct) {
  Run("CREATE TABLE a (x INT)");
  Run("CREATE TABLE b (y INT)");
  Run("INSERT INTO a VALUES (1), (2)");
  Run("INSERT INTO b VALUES (10), (20), (30)");
  EXPECT_EQ(Run("SELECT * FROM a, b").rows.size(), 6u);
}

TEST_F(ExecutorTest, DistinctRemovesDuplicates) {
  Run("CREATE TABLE t (x INT)");
  Run("INSERT INTO t VALUES (1), (1), (2)");
  EXPECT_EQ(Run("SELECT DISTINCT x FROM t").rows.size(), 2u);
}

TEST_F(ExecutorTest, OrderByRandShuffles) {
  Run("CREATE TABLE t (x INT)");
  for (int i = 0; i < 50; ++i) {
    Run("INSERT INTO t VALUES (" + std::to_string(i) + ")");
  }
  auto r = Run("SELECT x FROM t ORDER BY RAND()");
  ASSERT_EQ(r.rows.size(), 50u);
  bool out_of_order = false;
  for (size_t i = 1; i < r.rows.size(); ++i) {
    if (r.rows[i][0].AsInt() < r.rows[i - 1][0].AsInt()) out_of_order = true;
  }
  EXPECT_TRUE(out_of_order);
}

TEST_F(ExecutorTest, LimitAndOffset) {
  Run("CREATE TABLE t (x INT)");
  Run("INSERT INTO t VALUES (1), (2), (3), (4), (5)");
  auto r = Run("SELECT x FROM t ORDER BY x LIMIT 2 OFFSET 1");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r.rows[1][0].AsInt(), 3);
}

TEST_F(ExecutorTest, UpdateWithWhere) {
  Run("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  Run("INSERT INTO t VALUES (1, 10), (2, 20)");
  auto r = Run("UPDATE t SET v = v + 1 WHERE id = 2");
  EXPECT_EQ(r.affected, 1u);
  EXPECT_EQ(Run("SELECT v FROM t WHERE id = 2").Scalar().AsInt(), 21);
}

TEST_F(ExecutorTest, DeleteWithWhere) {
  Run("CREATE TABLE t (id INT)");
  Run("INSERT INTO t VALUES (1), (2), (3)");
  EXPECT_EQ(Run("DELETE FROM t WHERE id >= 2").affected, 2u);
  EXPECT_EQ(Run("SELECT COUNT(*) FROM t").Scalar().AsInt(), 1);
}

TEST_F(ExecutorTest, PrimaryKeyUniquenessEnforced) {
  Run("CREATE TABLE t (id INT PRIMARY KEY)");
  Run("INSERT INTO t VALUES (1)");
  auto s = RunExpectError("INSERT INTO t VALUES (1)");
  EXPECT_NE(s.message().find("PRIMARY KEY"), std::string::npos);
}

TEST_F(ExecutorTest, NotNullEnforced) {
  Run("CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(5) NOT NULL)");
  RunExpectError("INSERT INTO t (id) VALUES (1)");
}

TEST_F(ExecutorTest, CheckConstraintEnforced) {
  Run("CREATE TABLE t (rating INT CHECK (rating BETWEEN 1 AND 5))");
  Run("INSERT INTO t VALUES (3)");
  auto s = RunExpectError("INSERT INTO t VALUES (9)");
  EXPECT_NE(s.message().find("CHECK"), std::string::npos);
}

TEST_F(ExecutorTest, EnumDomainEnforced) {
  Run("CREATE TABLE u (role ENUM('admin', 'user'))");
  Run("INSERT INTO u VALUES ('admin')");
  RunExpectError("INSERT INTO u VALUES ('superuser')");
}

TEST_F(ExecutorTest, ForeignKeyEnforcedOnInsert) {
  Run("CREATE TABLE parent (id INT PRIMARY KEY)");
  Run("CREATE TABLE child (pid INT REFERENCES parent(id))");
  Run("INSERT INTO parent VALUES (1)");
  Run("INSERT INTO child VALUES (1)");
  auto s = RunExpectError("INSERT INTO child VALUES (99)");
  EXPECT_NE(s.message().find("FOREIGN KEY"), std::string::npos);
}

TEST_F(ExecutorTest, ForeignKeyRestrictsParentDelete) {
  Run("CREATE TABLE parent (id INT PRIMARY KEY)");
  Run("CREATE TABLE child (pid INT REFERENCES parent(id))");
  Run("INSERT INTO parent VALUES (1)");
  Run("INSERT INTO child VALUES (1)");
  RunExpectError("DELETE FROM parent WHERE id = 1");
}

TEST_F(ExecutorTest, CascadeDeleteRemovesChildren) {
  Run("CREATE TABLE parent (id INT PRIMARY KEY)");
  Run("CREATE TABLE child (pid INT REFERENCES parent(id) ON DELETE CASCADE)");
  Run("INSERT INTO parent VALUES (1), (2)");
  Run("INSERT INTO child VALUES (1), (1), (2)");
  Run("DELETE FROM parent WHERE id = 1");
  EXPECT_EQ(Run("SELECT COUNT(*) FROM child").Scalar().AsInt(), 1);
}

TEST_F(ExecutorTest, AutoIncrementAssignsIds) {
  Run("CREATE TABLE t (id SERIAL PRIMARY KEY, v VARCHAR(3))");
  Run("INSERT INTO t (v) VALUES ('a')");
  Run("INSERT INTO t (v) VALUES ('b')");
  auto r = Run("SELECT id FROM t ORDER BY id");
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[1][0].AsInt(), 2);
}

TEST_F(ExecutorTest, DefaultValuesApplied) {
  Run("CREATE TABLE t (id INT, status VARCHAR(10) DEFAULT 'new')");
  Run("INSERT INTO t (id) VALUES (1)");
  EXPECT_EQ(Run("SELECT status FROM t").Scalar().AsString(), "new");
}

TEST_F(ExecutorTest, InsertSelectCopiesRows) {
  Run("CREATE TABLE src (x INT)");
  Run("CREATE TABLE dst (x INT)");
  Run("INSERT INTO src VALUES (1), (2), (3)");
  auto r = Run("INSERT INTO dst (x) SELECT x FROM src WHERE x > 1");
  EXPECT_EQ(r.affected, 2u);
}

TEST_F(ExecutorTest, ScalarSubqueryInWhere) {
  Run("CREATE TABLE t (x INT)");
  Run("INSERT INTO t VALUES (1), (5), (9)");
  auto r = Run("SELECT x FROM t WHERE x > (SELECT AVG(x) FROM t)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 9);
}

TEST_F(ExecutorTest, InSubquery) {
  Run("CREATE TABLE a (x INT)");
  Run("CREATE TABLE b (x INT)");
  Run("INSERT INTO a VALUES (1), (2), (3)");
  Run("INSERT INTO b VALUES (2), (3), (4)");
  EXPECT_EQ(Run("SELECT x FROM a WHERE x IN (SELECT x FROM b)").rows.size(), 2u);
}

TEST_F(ExecutorTest, SubqueryInFrom) {
  Run("CREATE TABLE t (x INT)");
  Run("INSERT INTO t VALUES (1), (2), (3)");
  auto r = Run("SELECT big FROM (SELECT x AS big FROM t WHERE x > 1) AS sub ORDER BY big");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(ExecutorTest, IndexLookupMatchesScanResults) {
  Run("CREATE TABLE t (id INT, v INT)");
  for (int i = 0; i < 100; ++i) {
    Run("INSERT INTO t VALUES (" + std::to_string(i % 10) + ", " + std::to_string(i) + ")");
  }
  auto before = Run("SELECT COUNT(*) FROM t WHERE id = 7");
  Run("CREATE INDEX idx_id ON t (id)");
  auto after = Run("SELECT COUNT(*) FROM t WHERE id = 7");
  EXPECT_EQ(before.Scalar().AsInt(), after.Scalar().AsInt());
}

TEST_F(ExecutorTest, AlterAddCheckValidatesExistingRows) {
  Run("CREATE TABLE u (role VARCHAR(5))");
  Run("INSERT INTO u VALUES ('R1'), ('R9')");
  RunExpectError("ALTER TABLE u ADD CONSTRAINT chk CHECK (role IN ('R1', 'R2'))");
  Run("UPDATE u SET role = 'R2' WHERE role = 'R9'");
  Run("ALTER TABLE u ADD CONSTRAINT chk CHECK (role IN ('R1', 'R2'))");
  RunExpectError("INSERT INTO u VALUES ('R9')");
}

TEST_F(ExecutorTest, AlterDropConstraintRemovesCheck) {
  Run("CREATE TABLE u (role VARCHAR(5))");
  Run("ALTER TABLE u ADD CONSTRAINT chk CHECK (role IN ('R1'))");
  RunExpectError("INSERT INTO u VALUES ('R2')");
  Run("ALTER TABLE u DROP CONSTRAINT chk");
  Run("INSERT INTO u VALUES ('R2')");
}

TEST_F(ExecutorTest, AlterAddAndDropColumn) {
  Run("CREATE TABLE t (a INT)");
  Run("INSERT INTO t VALUES (1)");
  Run("ALTER TABLE t ADD COLUMN b VARCHAR(5) DEFAULT 'x'");
  EXPECT_EQ(Run("SELECT b FROM t").Scalar().AsString(), "x");
  Run("ALTER TABLE t DROP COLUMN a");
  auto r = Run("SELECT * FROM t");
  EXPECT_EQ(r.columns, (std::vector<std::string>{"b"}));
}

TEST_F(ExecutorTest, FloatColumnLosesPrecisionNumericDoesNot) {
  // The Rounding Errors AP (§2.2): FLOAT storage drifts, NUMERIC stays exact.
  Run("CREATE TABLE f (v FLOAT)");
  Run("CREATE TABLE n (v NUMERIC(10, 2))");
  for (int i = 0; i < 100; ++i) {
    Run("INSERT INTO f VALUES (0.1)");
    Run("INSERT INTO n VALUES (0.1)");
  }
  double fsum = Run("SELECT SUM(v) FROM f").Scalar().AsReal();
  double nsum = Run("SELECT SUM(v) FROM n").Scalar().AsReal();
  EXPECT_GT(std::abs(fsum - 10.0), 1e-9);   // float drifted
  EXPECT_LT(std::abs(nsum - 10.0), 1e-9);   // numeric exact (double here)
}

TEST_F(ExecutorTest, ErrorsOnMissingTableAndColumn) {
  RunExpectError("SELECT * FROM nope");
  Run("CREATE TABLE t (a INT)");
  RunExpectError("SELECT b FROM t");
  RunExpectError("INSERT INTO t (b) VALUES (1)");
}

TEST_F(ExecutorTest, InsertColumnCountMismatchFails) {
  Run("CREATE TABLE t (a INT, b INT)");
  RunExpectError("INSERT INTO t (a) VALUES (1, 2)");
}

TEST_F(ExecutorTest, ScriptExecutionReturnsLastResult) {
  auto r = exec_.ExecuteScript(
      "CREATE TABLE t (x INT); INSERT INTO t VALUES (7); SELECT x FROM t;");
  ASSERT_TRUE(r.ok()) << r.message();
  EXPECT_EQ(r->Scalar().AsInt(), 7);
}

TEST_F(ExecutorTest, FromlessSelectEvaluatesExpressions) {
  auto r = Run("SELECT 1 + 2, UPPER('abc')");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  EXPECT_EQ(r.rows[0][1].AsString(), "ABC");
}

// ---------------------------------------------------------------------------
// Edge cases the Tier-3 differential verifier leans on: the engine is now a
// load-bearing oracle for rewrite equivalence, so its three-valued logic,
// LIKE matching, and write-path constraint checks get pinned down here.
// ---------------------------------------------------------------------------

TEST_F(ExecutorTest, ThreeValuedLogicInCompoundPredicates) {
  Run("CREATE TABLE t (x INT, y INT)");
  Run("INSERT INTO t VALUES (1, 1), (2, NULL), (NULL, 3), (NULL, NULL)");
  // UNKNOWN AND FALSE = FALSE, UNKNOWN OR TRUE = TRUE; WHERE keeps only TRUE.
  EXPECT_EQ(Run("SELECT x FROM t WHERE x = 1 OR y = 3").rows.size(), 2u);
  EXPECT_EQ(Run("SELECT x FROM t WHERE x = 1 AND y = 1").rows.size(), 1u);
  // NOT (UNKNOWN) is UNKNOWN: negating a NULL comparison rescues nothing.
  EXPECT_EQ(Run("SELECT x FROM t WHERE NOT (x = 1)").rows.size(), 1u);
  // A predicate and its negation never cover rows where it is UNKNOWN.
  size_t hits = Run("SELECT x FROM t WHERE x < 2").rows.size() +
                Run("SELECT x FROM t WHERE NOT (x < 2)").rows.size();
  EXPECT_EQ(hits, 2u);
  EXPECT_EQ(Run("SELECT x FROM t").rows.size(), 4u);
  // NOT IN with a NULL in the list matches nothing (the NULL Usage trap).
  EXPECT_EQ(Run("SELECT x FROM t WHERE x NOT IN (2, NULL)").rows.size(), 0u);
  EXPECT_EQ(Run("SELECT x FROM t WHERE x IN (1, NULL)").rows.size(), 1u);
}

TEST_F(ExecutorTest, LikeBoundaryAndEscapeCases) {
  Run("CREATE TABLE s (v VARCHAR(20))");
  Run("INSERT INTO s VALUES (''), ('a'), ('ab'), ('ba'), ('aba'), "
      "('100%'), ('a_b'), ('ab_'), ('%')");
  // '%' alone matches everything, including the empty string.
  EXPECT_EQ(Run("SELECT v FROM s WHERE v LIKE '%'").rows.size(), 9u);
  // Leading/trailing/both-sided wildcards at string boundaries.
  EXPECT_EQ(Run("SELECT v FROM s WHERE v LIKE 'a%'").rows.size(), 5u);
  EXPECT_EQ(Run("SELECT v FROM s WHERE v LIKE '%a'").rows.size(), 3u);
  EXPECT_EQ(Run("SELECT v FROM s WHERE v LIKE '%a%'").rows.size(), 6u);
  // '_' demands exactly one character — the empty string never matches.
  EXPECT_EQ(Run("SELECT v FROM s WHERE v LIKE '_'").rows.size(), 2u);  // 'a', '%'
  EXPECT_EQ(Run("SELECT v FROM s WHERE v LIKE '_b'").rows.size(), 1u);
  EXPECT_EQ(Run("SELECT v FROM s WHERE v LIKE 'a_'").rows.size(), 1u);
  // Escaped wildcards match literally. The lexer itself consumes one level
  // of backslash escaping inside string literals, so the SQL text needs
  // \\% for the matcher to receive \% (a literal percent sign).
  EXPECT_EQ(Run("SELECT v FROM s WHERE v LIKE '100\\\\%'").rows.size(), 1u);
  EXPECT_EQ(Run("SELECT v FROM s WHERE v LIKE 'a\\\\_b'").rows.size(), 1u);
  EXPECT_EQ(Run("SELECT v FROM s WHERE v LIKE '\\\\%'").rows.size(), 1u);
  // Unescaped, the same pattern text is pure wildcard: everything matches.
  EXPECT_EQ(Run("SELECT v FROM s WHERE v LIKE '\\%'").rows.size(), 9u);
  // The empty pattern matches only the empty string.
  EXPECT_EQ(Run("SELECT v FROM s WHERE v LIKE ''").rows.size(), 1u);
}

TEST_F(ExecutorTest, ForeignKeyValidatedOnChildUpdate) {
  Run("CREATE TABLE parent (id INT PRIMARY KEY)");
  Run("CREATE TABLE child (pid INT REFERENCES parent(id))");
  Run("INSERT INTO parent VALUES (1), (2)");
  Run("INSERT INTO child VALUES (1)");
  Run("UPDATE child SET pid = 2 WHERE pid = 1");
  auto s = RunExpectError("UPDATE child SET pid = 99");
  EXPECT_NE(s.message().find("FOREIGN KEY"), std::string::npos);
  // The failed update must not have clobbered the row.
  EXPECT_EQ(Run("SELECT pid FROM child").Scalar().AsInt(), 2);
}

TEST_F(ExecutorTest, NullForeignKeyIsAlwaysAccepted) {
  Run("CREATE TABLE parent (id INT PRIMARY KEY)");
  Run("CREATE TABLE child (pid INT REFERENCES parent(id))");
  // SQL FK semantics: a NULL reference is UNKNOWN, which passes.
  Run("INSERT INTO child VALUES (NULL)");
  Run("INSERT INTO parent VALUES (1)");
  Run("INSERT INTO child VALUES (1)");
  Run("UPDATE child SET pid = NULL WHERE pid = 1");
  EXPECT_EQ(Run("SELECT COUNT(*) FROM child WHERE pid IS NULL").Scalar().AsInt(), 2);
}

TEST_F(ExecutorTest, CheckConstraintPassesOnNullResult) {
  // CHECK rejects only FALSE; NULL (UNKNOWN) passes — both at insert time
  // and when ALTER ... ADD CHECK revalidates existing rows.
  Run("CREATE TABLE t (rating INT CHECK (rating BETWEEN 1 AND 5))");
  Run("INSERT INTO t VALUES (NULL)");
  Run("CREATE TABLE u (score INT)");
  Run("INSERT INTO u VALUES (3), (NULL)");
  Run("ALTER TABLE u ADD CONSTRAINT chk CHECK (score > 0)");
  RunExpectError("INSERT INTO u VALUES (-1)");
  Run("INSERT INTO u VALUES (NULL)");
}

TEST_F(ExecutorTest, AlterAddCheckRevalidationLeavesSchemaUnchangedOnFailure) {
  Run("CREATE TABLE t (v INT)");
  Run("INSERT INTO t VALUES (10)");
  RunExpectError("ALTER TABLE t ADD CONSTRAINT neg CHECK (v < 0)");
  // The rejected constraint must not linger: this insert would violate it.
  Run("INSERT INTO t VALUES (5)");
}

TEST_F(ExecutorTest, UpdateRevalidatesCheckConstraints) {
  Run("CREATE TABLE t (rating INT CHECK (rating BETWEEN 1 AND 5))");
  Run("INSERT INTO t VALUES (3)");
  auto s = RunExpectError("UPDATE t SET rating = 9");
  EXPECT_NE(s.message().find("CHECK"), std::string::npos);
  EXPECT_EQ(Run("SELECT rating FROM t").Scalar().AsInt(), 3);
}

}  // namespace
}  // namespace sqlcheck
