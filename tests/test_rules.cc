#include "rules/registry.h"

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "storage/database.h"

namespace sqlcheck {
namespace {

/// Runs detection over a workload script (optionally with a database).
std::vector<Detection> Detect(const std::string& script, const Database* db = nullptr,
                              DetectorConfig config = {}) {
  ContextBuilder builder;
  builder.AddScript(script);
  if (db != nullptr) builder.AttachDatabase(db);
  Context context = builder.Build();
  return DetectAntiPatterns(context, config);
}

int CountType(const std::vector<Detection>& detections, AntiPattern type) {
  int n = 0;
  for (const auto& d : detections) {
    if (d.type == type) ++n;
  }
  return n;
}

// --------------------------- logical design rules ---------------------------

TEST(RuleMvaTest, FiresOnWordBoundaryPattern) {
  auto d = Detect("SELECT * FROM tenants WHERE user_ids LIKE '[[:<:]]U1[[:>:]]'");
  EXPECT_GE(CountType(d, AntiPattern::kMultiValuedAttribute), 1);
}

TEST(RuleMvaTest, FiresOnIdListColumnDdl) {
  auto d = Detect("CREATE TABLE t (k INTEGER PRIMARY KEY, friend_ids TEXT)");
  EXPECT_GE(CountType(d, AntiPattern::kMultiValuedAttribute), 1);
}

TEST(RuleMvaTest, ProseColumnSuppressedByInterQueryContext) {
  std::string q = "SELECT id FROM t WHERE notes LIKE '%,%'";
  DetectorConfig intra_only;
  intra_only.inter_query = false;
  EXPECT_GE(CountType(Detect(q, nullptr, intra_only), AntiPattern::kMultiValuedAttribute),
            1);
  EXPECT_EQ(CountType(Detect(q), AntiPattern::kMultiValuedAttribute), 0);
}

TEST(RuleMvaTest, DataRuleConfirmsDelimitedColumn) {
  Database db;
  Executor exec(&db);
  exec.ExecuteSql("CREATE TABLE t (k INTEGER PRIMARY KEY, members TEXT)");
  for (int i = 0; i < 10; ++i) {
    exec.ExecuteSql("INSERT INTO t VALUES (" + std::to_string(i) + ", 'a,b,c')");
  }
  auto d = Detect("", &db);
  EXPECT_GE(CountType(d, AntiPattern::kMultiValuedAttribute), 1);
}

TEST(RuleNoPkTest, FiresOnlyWithoutPrimaryKey) {
  EXPECT_GE(CountType(Detect("CREATE TABLE t (a INT)"), AntiPattern::kNoPrimaryKey), 1);
  EXPECT_EQ(CountType(Detect("CREATE TABLE t (a INT PRIMARY KEY)"),
                      AntiPattern::kNoPrimaryKey),
            0);
  EXPECT_EQ(CountType(Detect("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))"),
                      AntiPattern::kNoPrimaryKey),
            0);
}

TEST(RuleNoFkTest, NeedsJoinPlusBothDdls) {
  std::string ddls =
      "CREATE TABLE tenant (tenant_id INTEGER PRIMARY KEY);"
      "CREATE TABLE questionnaire (q_id INTEGER PRIMARY KEY, tenant_id INTEGER);";
  std::string join =
      "SELECT q.q_id FROM questionnaire q JOIN tenant t ON t.tenant_id = q.tenant_id;";
  // Example 3 of the paper: DDLs alone cannot reveal the missing FK...
  EXPECT_EQ(CountType(Detect(ddls), AntiPattern::kNoForeignKey), 0);
  // ...the JOIN plus both DDLs can.
  EXPECT_GE(CountType(Detect(ddls + join), AntiPattern::kNoForeignKey), 1);
  // With the FK declared, nothing fires.
  std::string fixed =
      "CREATE TABLE tenant (tenant_id INTEGER PRIMARY KEY);"
      "CREATE TABLE questionnaire (q_id INTEGER PRIMARY KEY, tenant_id INTEGER "
      "REFERENCES tenant (tenant_id));" +
      join;
  EXPECT_EQ(CountType(Detect(fixed), AntiPattern::kNoForeignKey), 0);
}

TEST(RuleNoFkTest, DisabledWithoutInterQueryAnalysis) {
  std::string workload =
      "CREATE TABLE a (x INTEGER PRIMARY KEY);"
      "CREATE TABLE b (y INTEGER PRIMARY KEY, x INTEGER);"
      "SELECT b.y FROM a JOIN b ON a.x = b.x;";
  DetectorConfig intra_only;
  intra_only.inter_query = false;
  EXPECT_EQ(CountType(Detect(workload, nullptr, intra_only), AntiPattern::kNoForeignKey),
            0);
}

TEST(RuleGenericPkTest, FlagsIdOnly) {
  EXPECT_GE(CountType(Detect("CREATE TABLE t (id INTEGER PRIMARY KEY)"),
                      AntiPattern::kGenericPrimaryKey),
            1);
  EXPECT_EQ(CountType(Detect("CREATE TABLE t (t_id INTEGER PRIMARY KEY)"),
                      AntiPattern::kGenericPrimaryKey),
            0);
}

TEST(RuleDataInMetadataTest, NumberedColumnSeries) {
  EXPECT_GE(CountType(Detect("CREATE TABLE t (k INT PRIMARY KEY, tag1 TEXT, tag2 TEXT, "
                             "tag3 TEXT)"),
                      AntiPattern::kDataInMetadata),
            1);
  EXPECT_EQ(CountType(Detect("CREATE TABLE t (k INT PRIMARY KEY, alpha TEXT, beta TEXT)"),
                      AntiPattern::kDataInMetadata),
            0);
}

TEST(RuleAdjacencyListTest, SelfReference) {
  EXPECT_GE(CountType(Detect("CREATE TABLE emp (emp_id INTEGER PRIMARY KEY, mgr_id "
                             "INTEGER REFERENCES emp (emp_id))"),
                      AntiPattern::kAdjacencyList),
            1);
  EXPECT_EQ(CountType(Detect("CREATE TABLE emp (emp_id INTEGER PRIMARY KEY, dept_id "
                             "INTEGER REFERENCES dept (dept_id))"),
                      AntiPattern::kAdjacencyList),
            0);
}

TEST(RuleGodTableTest, ThresholdIsConfigurable) {
  std::string wide = "CREATE TABLE t (c0 INT PRIMARY KEY";
  for (int i = 1; i < 12; ++i) wide += ", col_" + std::string(1, char('a' + i)) + " INT";
  wide += ")";
  EXPECT_GE(CountType(Detect(wide), AntiPattern::kGodTable), 1);
  DetectorConfig relaxed;
  relaxed.god_table_columns = 20;
  EXPECT_EQ(CountType(Detect(wide, nullptr, relaxed), AntiPattern::kGodTable), 0);
}

// --------------------------- physical design rules --------------------------

TEST(RuleRoundingTest, FlagsFloatNotNumeric) {
  EXPECT_GE(CountType(Detect("CREATE TABLE t (price FLOAT)"),
                      AntiPattern::kRoundingErrors),
            1);
  EXPECT_EQ(CountType(Detect("CREATE TABLE t (price NUMERIC(10, 2))"),
                      AntiPattern::kRoundingErrors),
            0);
}

TEST(RuleEnumTest, FiresOnEnumTypeAndCheckInList) {
  EXPECT_GE(CountType(Detect("CREATE TABLE t (s ENUM('a', 'b'))"),
                      AntiPattern::kEnumeratedTypes),
            1);
  EXPECT_GE(CountType(Detect("CREATE TABLE t (s VARCHAR(4) CHECK (s IN ('a', 'b')))"),
                      AntiPattern::kEnumeratedTypes),
            1);
  // Example 4's ALTER form.
  EXPECT_GE(CountType(Detect("ALTER TABLE u ADD CONSTRAINT c CHECK (role IN ('R1', "
                             "'R2', 'R3'))"),
                      AntiPattern::kEnumeratedTypes),
            1);
  // A range CHECK is NOT an enumerated domain.
  EXPECT_EQ(CountType(Detect("CREATE TABLE t (r INT CHECK (r BETWEEN 1 AND 5))"),
                      AntiPattern::kEnumeratedTypes),
            0);
}

TEST(RuleExternalStorageTest, PathColumns) {
  EXPECT_GE(CountType(Detect("CREATE TABLE docs (doc_id INT PRIMARY KEY, file_path "
                             "VARCHAR(255))"),
                      AntiPattern::kExternalDataStorage),
            1);
  EXPECT_EQ(CountType(Detect("CREATE TABLE docs (doc_id INT PRIMARY KEY, body TEXT)"),
                      AntiPattern::kExternalDataStorage),
            0);
}

TEST(RuleIndexOveruseTest, RedundantPrefixIndex) {
  // Example 5, workload 1: composite (zone, active) makes the single-column
  // zone index redundant when queries always filter both.
  std::string workload =
      "CREATE TABLE tenant (tenant_id INTEGER PRIMARY KEY, zone_id VARCHAR(8), active "
      "BOOLEAN);"
      "CREATE INDEX idx_zone_actv ON tenant (zone_id, active);"
      "CREATE INDEX idx_zone ON tenant (zone_id);"
      "SELECT tenant_id FROM tenant WHERE zone_id = 'Z1' AND active = true;";
  EXPECT_GE(CountType(Detect(workload), AntiPattern::kIndexOveruse), 1);

  // Workload 2: queries also use zone_id alone — the single index earns its
  // keep and must NOT be flagged.
  std::string workload2 = workload + "SELECT tenant_id FROM tenant WHERE zone_id = 'Z1';";
  EXPECT_EQ(CountType(Detect(workload2), AntiPattern::kIndexOveruse), 0);
}

TEST(RuleIndexOveruseTest, TooManyIndexes) {
  std::string workload =
      "CREATE TABLE t (a INT PRIMARY KEY, b INT, c INT, d INT, e INT);"
      "CREATE INDEX i1 ON t (b); CREATE INDEX i2 ON t (c);"
      "CREATE INDEX i3 ON t (d); CREATE INDEX i4 ON t (e);";
  EXPECT_GE(CountType(Detect(workload), AntiPattern::kIndexOveruse), 1);
}

TEST(RuleIndexUnderuseTest, UnindexedFilterColumn) {
  std::string workload =
      "CREATE TABLE t (k INTEGER PRIMARY KEY, owner VARCHAR(20));"
      "SELECT k FROM t WHERE owner = 'x';";
  EXPECT_GE(CountType(Detect(workload), AntiPattern::kIndexUnderuse), 1);
  std::string indexed = workload + "CREATE INDEX idx_owner ON t (owner);";
  EXPECT_EQ(CountType(Detect(indexed), AntiPattern::kIndexUnderuse), 0);
  // PK filters are implicitly indexed.
  std::string pk_only =
      "CREATE TABLE t (k INTEGER PRIMARY KEY); SELECT k FROM t WHERE k = 1;";
  EXPECT_EQ(CountType(Detect(pk_only), AntiPattern::kIndexUnderuse), 0);
}

TEST(RuleIndexUnderuseTest, LowCardinalitySuppressedByDataAnalysis) {
  // Fig. 8c's lesson: indexing a 2-value column does not pay; the data rule
  // suppresses the naive suggestion.
  Database db;
  Executor exec(&db);
  exec.ExecuteSql("CREATE TABLE t (k INTEGER PRIMARY KEY, flag VARCHAR(2))");
  for (int i = 0; i < 300; ++i) {
    exec.ExecuteSql("INSERT INTO t VALUES (" + std::to_string(i) + ", 'F" +
                    std::to_string(i % 2) + "')");
  }
  std::string query = "SELECT k FROM t WHERE flag = 'F1';";
  EXPECT_EQ(CountType(Detect(query, &db), AntiPattern::kIndexUnderuse), 0);
  // Without data analysis the naive rule would have flagged it.
  DetectorConfig no_data;
  no_data.data_analysis = false;
  EXPECT_GE(CountType(Detect(query, &db, no_data), AntiPattern::kIndexUnderuse), 1);
}

TEST(RuleCloneTableTest, NumericSuffixFamily) {
  std::string clones =
      "CREATE TABLE sales_2019 (k INT PRIMARY KEY);"
      "CREATE TABLE sales_2020 (k INT PRIMARY KEY);";
  EXPECT_GE(CountType(Detect(clones), AntiPattern::kCloneTable), 1);
  // A lone suffixed table is not a clone family.
  EXPECT_EQ(CountType(Detect("CREATE TABLE snapshot_7 (k INT PRIMARY KEY)"),
                      AntiPattern::kCloneTable),
            0);
}

// ------------------------------- query rules --------------------------------

TEST(RuleWildcardTest, SelectStarOnly) {
  EXPECT_GE(CountType(Detect("SELECT * FROM t"), AntiPattern::kColumnWildcard), 1);
  EXPECT_EQ(CountType(Detect("SELECT a, b FROM t"), AntiPattern::kColumnWildcard), 0);
}

TEST(RuleConcatNullsTest, NullableColumnsOnly) {
  std::string nullable =
      "CREATE TABLE p (first VARCHAR(10), last VARCHAR(10));"
      "SELECT first || ' ' || last FROM p;";
  EXPECT_GE(CountType(Detect(nullable), AntiPattern::kConcatenateNulls), 1);
  std::string not_null =
      "CREATE TABLE p (first VARCHAR(10) NOT NULL, last VARCHAR(10) NOT NULL);"
      "SELECT first || ' ' || last FROM p;";
  EXPECT_EQ(CountType(Detect(not_null), AntiPattern::kConcatenateNulls), 0);
}

TEST(RuleOrderByRandTest, RandAndRandom) {
  EXPECT_GE(CountType(Detect("SELECT a FROM t ORDER BY RAND()"),
                      AntiPattern::kOrderingByRand),
            1);
  EXPECT_GE(CountType(Detect("SELECT a FROM t ORDER BY RANDOM() LIMIT 1"),
                      AntiPattern::kOrderingByRand),
            1);
  EXPECT_EQ(CountType(Detect("SELECT a FROM t ORDER BY a"),
                      AntiPattern::kOrderingByRand),
            0);
}

TEST(RulePatternMatchingTest, LeadingWildcardAndRegex) {
  EXPECT_GE(CountType(Detect("SELECT a FROM t WHERE name LIKE '%son'"),
                      AntiPattern::kPatternMatching),
            1);
  EXPECT_GE(CountType(Detect("SELECT a FROM t WHERE name REGEXP '^ab'"),
                      AntiPattern::kPatternMatching),
            1);
  // Prefix LIKE is index-friendly: not an AP.
  EXPECT_EQ(CountType(Detect("SELECT a FROM t WHERE name LIKE 'jo%'"),
                      AntiPattern::kPatternMatching),
            0);
}

TEST(RuleImplicitColumnsTest, InsertWithoutColumnList) {
  EXPECT_GE(CountType(Detect("INSERT INTO t VALUES (1, 2)"),
                      AntiPattern::kImplicitColumns),
            1);
  EXPECT_EQ(CountType(Detect("INSERT INTO t (a, b) VALUES (1, 2)"),
                      AntiPattern::kImplicitColumns),
            0);
}

TEST(RuleDistinctJoinTest, RequiresBoth) {
  EXPECT_GE(CountType(Detect("SELECT DISTINCT a.x FROM a JOIN b ON a.id = b.id"),
                      AntiPattern::kDistinctAndJoin),
            1);
  EXPECT_EQ(CountType(Detect("SELECT DISTINCT x FROM a"),
                      AntiPattern::kDistinctAndJoin),
            0);
  EXPECT_EQ(CountType(Detect("SELECT a.x FROM a JOIN b ON a.id = b.id"),
                      AntiPattern::kDistinctAndJoin),
            0);
}

TEST(RuleTooManyJoinsTest, CountsImplicitAndExplicit) {
  std::string six_way =
      "SELECT t0.x FROM a t0 JOIN a t1 ON t0.x = t1.x JOIN a t2 ON t1.x = t2.x "
      "JOIN a t3 ON t2.x = t3.x JOIN a t4 ON t3.x = t4.x JOIN a t5 ON t4.x = t5.x";
  EXPECT_GE(CountType(Detect(six_way), AntiPattern::kTooManyJoins), 1);
  EXPECT_EQ(CountType(Detect("SELECT x FROM a JOIN b ON a.x = b.x"),
                      AntiPattern::kTooManyJoins),
            0);
}

TEST(RuleReadablePasswordTest, ColumnAndLiteralComparison) {
  EXPECT_GE(CountType(Detect("CREATE TABLE u (id INT PRIMARY KEY, password VARCHAR(32))"),
                      AntiPattern::kReadablePassword),
            1);
  EXPECT_GE(CountType(Detect("SELECT id FROM u WHERE password = 'hunter2'"),
                      AntiPattern::kReadablePassword),
            1);
  EXPECT_EQ(CountType(Detect("CREATE TABLE u (id INT PRIMARY KEY, pass_hash "
                             "VARCHAR(64))"),
                      AntiPattern::kReadablePassword),
            0);
}

// -------------------------------- data rules --------------------------------

class DataRuleTest : public ::testing::Test {
 protected:
  DataRuleTest() : exec_(&db_) {}

  void Run(const std::string& sql_text) {
    auto r = exec_.ExecuteSql(sql_text);
    ASSERT_TRUE(r.ok()) << r.message();
  }

  std::vector<Detection> DetectData() {
    DetectorConfig config;
    config.intra_query = false;
    return Detect("", &db_, config);
  }

  Database db_;
  Executor exec_;
};

TEST_F(DataRuleTest, MissingTimezoneOnTzLessType) {
  Run("CREATE TABLE e (k INTEGER PRIMARY KEY, at TIMESTAMP)");
  for (int i = 0; i < 6; ++i) {
    Run("INSERT INTO e VALUES (" + std::to_string(i) + ", '2020-01-0" +
        std::to_string(1 + i) + " 10:00:00')");
  }
  EXPECT_GE(CountType(DetectData(), AntiPattern::kMissingTimezone), 1);
}

TEST_F(DataRuleTest, IncorrectDataTypeNumericStrings) {
  Run("CREATE TABLE t (k INTEGER PRIMARY KEY, reading TEXT)");
  for (int i = 0; i < 8; ++i) {
    Run("INSERT INTO t VALUES (" + std::to_string(i) + ", '" + std::to_string(100 + i) +
        "')");
  }
  EXPECT_GE(CountType(DetectData(), AntiPattern::kIncorrectDataType), 1);
}

TEST_F(DataRuleTest, IncorrectDataTypeQuietOnRealText) {
  Run("CREATE TABLE t (k INTEGER PRIMARY KEY, word TEXT)");
  for (int i = 0; i < 8; ++i) {
    Run("INSERT INTO t VALUES (" + std::to_string(i) + ", 'word" + std::to_string(i) +
        "')");
  }
  EXPECT_EQ(CountType(DetectData(), AntiPattern::kIncorrectDataType), 0);
}

TEST_F(DataRuleTest, DenormalizedFunctionalDependency) {
  Run("CREATE TABLE t (k INTEGER PRIMARY KEY, team VARCHAR(4), city VARCHAR(12))");
  for (int i = 0; i < 12; ++i) {
    int team = i % 3;
    Run("INSERT INTO t VALUES (" + std::to_string(i) + ", 'T" + std::to_string(team) +
        "', 'city" + std::to_string(team) + "')");
  }
  EXPECT_GE(CountType(DetectData(), AntiPattern::kDenormalizedTable), 1);
}

TEST_F(DataRuleTest, InformationDuplicationAgeDob) {
  Run("CREATE TABLE p (k INTEGER PRIMARY KEY, birth_year INTEGER, age INTEGER)");
  for (int i = 0; i < 6; ++i) {
    Run("INSERT INTO p VALUES (" + std::to_string(i) + ", 1990, 30)");
  }
  EXPECT_GE(CountType(DetectData(), AntiPattern::kInformationDuplication), 1);
}

TEST_F(DataRuleTest, InformationDuplicationDerivedSum) {
  Run("CREATE TABLE o (k INTEGER PRIMARY KEY, net INTEGER, tax INTEGER, gross INTEGER)");
  for (int i = 0; i < 8; ++i) {
    Run("INSERT INTO o VALUES (" + std::to_string(i) + ", " + std::to_string(100 + i) +
        ", " + std::to_string(10 + i) + ", " + std::to_string(110 + 2 * i) + ")");
  }
  EXPECT_GE(CountType(DetectData(), AntiPattern::kInformationDuplication), 1);
}

TEST_F(DataRuleTest, RedundantColumnAllNullsOrConstant) {
  Run("CREATE TABLE t (k INTEGER PRIMARY KEY, dead TEXT, locale VARCHAR(8))");
  for (int i = 0; i < 8; ++i) {
    Run("INSERT INTO t (k, locale) VALUES (" + std::to_string(i) + ", 'en-us')");
  }
  EXPECT_GE(CountType(DetectData(), AntiPattern::kRedundantColumn), 2);
}

TEST_F(DataRuleTest, NoDomainConstraintOnBoundedColumn) {
  Run("CREATE TABLE r (k INTEGER PRIMARY KEY, rating INTEGER)");
  for (int i = 0; i < 10; ++i) {
    Run("INSERT INTO r VALUES (" + std::to_string(i) + ", " + std::to_string(1 + i % 5) +
        ")");
  }
  EXPECT_GE(CountType(DetectData(), AntiPattern::kNoDomainConstraint), 1);
}

TEST_F(DataRuleTest, NoDomainConstraintQuietWithCheck) {
  Run("CREATE TABLE r (k INTEGER PRIMARY KEY, rating INTEGER CHECK (rating BETWEEN 1 "
      "AND 5))");
  for (int i = 0; i < 10; ++i) {
    Run("INSERT INTO r VALUES (" + std::to_string(i) + ", " + std::to_string(1 + i % 5) +
        ")");
  }
  EXPECT_EQ(CountType(DetectData(), AntiPattern::kNoDomainConstraint), 0);
}

// ------------------------------- registry -----------------------------------

TEST(RegistryTest, DefaultHasAllRules) {
  EXPECT_EQ(RuleRegistry::Default().size(), static_cast<size_t>(kAntiPatternCount));
}

TEST(RegistryTest, CustomRuleIsInvoked) {
  class AlwaysFires final : public Rule {
   public:
    AntiPattern type() const override { return AntiPattern::kGodTable; }
    void CheckQuery(const QueryFacts& facts, const Context&, const DetectorConfig&,
                    std::vector<Detection>* out) const override {
      Detection d;
      d.type = type();
      d.query = facts.raw_sql;
      d.message = "custom";
      out->push_back(std::move(d));
    }
  };
  RuleRegistry registry;
  registry.Register(std::make_unique<AlwaysFires>());
  ContextBuilder builder;
  builder.AddQuery("SELECT 1");
  Context context = builder.Build();
  auto detections = DetectAntiPatterns(context, registry, {});
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].message, "custom");
}

TEST(RegistryTest, ApInfoTableIsConsistent) {
  for (int t = 0; t < kAntiPatternCount; ++t) {
    AntiPattern type = static_cast<AntiPattern>(t);
    EXPECT_EQ(InfoFor(type).type, type);
    EXPECT_NE(ApName(type), nullptr);
  }
}

}  // namespace
}  // namespace sqlcheck
