// Structured report emitters: the JSON shape is golden-file tested byte for
// byte (determinism is part of the contract — CI diffs, dashboards, and
// code-scanning uploads all depend on it), and the SARIF rendering is pinned
// to the 2.1.0 required-key set plus the full 27-rule driver catalog.
#include <gtest/gtest.h>

#include <string>

#include "core/emit.h"
#include "core/sqlcheck.h"

namespace sqlcheck {
namespace {

size_t CountOccurrences(const std::string& haystack, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(EmitJsonTest, GoldenSingleFinding) {
  Report report = FindAntiPatterns("SELECT * FROM users");
  const char* kGolden = R"json({
  "tool": "sqlcheck",
  "findings": 1,
  "distinct_types": 1,
  "results": [
    {
      "rank": 1,
      "rule": "Column Wildcard Usage",
      "id": "column-wildcard-usage",
      "category": "Query",
      "source": "intra-query",
      "score": 0.212,
      "table": "users",
      "column": "",
      "query": "SELECT * FROM users",
      "message": "SELECT * couples the application to the table layout; it breaks on refactoring and fetches columns the caller never reads",
      "fix": {
        "kind": "textual",
        "explanation": "replace SELECT * with the columns the caller actually reads",
        "statements": [],
        "impacted_queries": 0
      }
    }
  ]
}
)json";
  EXPECT_EQ(report.ToJson(), kGolden);
  EXPECT_EQ(ToJson(report), kGolden);  // member delegates to the free emitter
}

TEST(EmitJsonTest, GoldenEmptyReport) {
  Report report = FindAntiPatterns("SELECT id FROM t WHERE id = 1");
  ASSERT_TRUE(report.empty());
  EXPECT_EQ(report.ToJson(),
            "{\n"
            "  \"tool\": \"sqlcheck\",\n"
            "  \"findings\": 0,\n"
            "  \"distinct_types\": 0,\n"
            "  \"results\": []\n"
            "}\n");
}

TEST(EmitJsonTest, MaxFindingsCapsResultsAndReportsSuppressed) {
  SqlCheck checker;
  checker.AddScript(
      "SELECT * FROM a; SELECT * FROM b; SELECT x FROM c ORDER BY RAND();");
  Report report = checker.Run();
  ASSERT_EQ(report.size(), 3u);

  EmitOptions options;
  options.max_findings = 1;
  std::string json = ToJson(report, options);
  EXPECT_EQ(CountOccurrences(json, "\"rank\":"), 1u);
  EXPECT_NE(json.find("\"findings\": 3"), std::string::npos);  // totals stay honest
  EXPECT_NE(json.find("\"suppressed\": 2"), std::string::npos);
}

TEST(EmitJsonTest, EscapesQuotesNewlinesAndControlCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line1\nline2\ttab"), "line1\\nline2\\ttab");
  EXPECT_EQ(JsonEscape(std::string("nul\x01", 4)), "nul\\u0001");

  Report report = FindAntiPatterns("SELECT * FROM users WHERE name = 'a\"b\nc'");
  std::string json = report.ToJson();
  EXPECT_NE(json.find("a\\\"b\\nc"), std::string::npos);
  EXPECT_EQ(json.find("a\"b"), std::string::npos);  // raw quote never leaks
  EXPECT_EQ(json.find("b\nc"), std::string::npos);  // raw newline never leaks
}

TEST(EmitSarifTest, CarriesRequiredSarifKeysAndCatalog) {
  Report report = FindAntiPatterns("SELECT * FROM users");
  EmitOptions options;
  options.artifact_uri = "app/queries.sql";
  std::string sarif = ToSarif(report, options);

  // SARIF 2.1.0 required keys.
  EXPECT_NE(sarif.find("\"$schema\": "
                       "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                       "master/Schemata/sarif-schema-2.1.0.json\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"runs\": ["), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"sqlcheck\""), std::string::npos);

  // Full 27-rule driver catalog, one entry per anti-pattern.
  EXPECT_EQ(CountOccurrences(sarif, "\"shortDescription\""),
            static_cast<size_t>(kAntiPatternCount));

  // The result block, pinned exactly.
  const char* kResult = R"json(        {
          "ruleId": "column-wildcard-usage",
          "ruleIndex": 13,
          "level": "warning",
          "message": { "text": "SELECT * couples the application to the table layout; it breaks on refactoring and fetches columns the caller never reads | query: SELECT * FROM users" },
          "locations": [
            {
              "physicalLocation": { "artifactLocation": { "uri": "app/queries.sql" } },
              "logicalLocations": [ { "name": "users", "kind": "member" } ]
            }
          ],
          "properties": { "score": 0.212, "source": "intra-query" }
        })json";
  EXPECT_NE(sarif.find(kResult), std::string::npos) << sarif;
}

TEST(EmitSarifTest, OmitsPhysicalLocationWithoutArtifactUri) {
  Report report = FindAntiPatterns("SELECT * FROM users");
  std::string sarif = report.ToSarif();
  EXPECT_EQ(sarif.find("physicalLocation"), std::string::npos);
  EXPECT_NE(sarif.find("logicalLocations"), std::string::npos);
}

TEST(EmitSarifTest, EmptyReportIsStillAValidRun) {
  Report report;
  std::string sarif = report.ToSarif();
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
  EXPECT_EQ(CountOccurrences(sarif, "\"shortDescription\""),
            static_cast<size_t>(kAntiPatternCount));
}

TEST(EmitFixesTest, GoldenJsonWithVerifiedRewrite) {
  // --fixes surface: the fix object gains verification fields and the
  // impacted list; everything before them is byte-identical to the default
  // emission (the baseline shape is golden-tested above).
  SqlCheck checker;
  checker.AddScript(
      "CREATE TABLE users (user_id INTEGER PRIMARY KEY, name VARCHAR(10));\n"
      "SELECT * FROM users;\n");
  Report report = checker.Run();
  ASSERT_EQ(report.size(), 1u);

  EmitOptions options;
  options.include_fixes = true;
  const char* kGoldenFix = R"json(      "fix": {
        "kind": "rewrite",
        "explanation": "expanded SELECT * into the concrete column list so schema changes cannot silently alter the result shape",
        "statements": ["SELECT user_id, name FROM users;"],
        "impacted_queries": 0,
        "verified": true,
        "verify_tier": "analysis",
        "replaces_original": true,
        "verify_note": "",
        "anchor": "SELECT * FROM users",
        "impacted": []
      })json";
  std::string json = ToJson(report, options);
  EXPECT_NE(json.find(kGoldenFix), std::string::npos) << json;
  // Severity grading (ranking/model.h thresholds) rides the same surface.
  EXPECT_NE(json.find("\"severity\": \"medium\""), std::string::npos) << json;

  // Without --fixes the very same report emits the baseline fix shape.
  std::string baseline = ToJson(report);
  EXPECT_EQ(baseline.find("\"verified\""), std::string::npos);
  EXPECT_NE(baseline.find("\"impacted_queries\": 0\n"), std::string::npos);
}

TEST(EmitFixesTest, GoldenSarifFixesShape) {
  const char* kWorkload =
      "CREATE TABLE users (user_id INTEGER PRIMARY KEY, name VARCHAR(10));\n"
      "SELECT * FROM users;\n";
  SqlCheck checker;
  checker.AddScript(kWorkload);
  Report report = checker.Run();
  ASSERT_EQ(report.size(), 1u);

  EmitOptions options;
  options.include_fixes = true;
  options.artifact_uri = "app/queries.sql";
  options.artifact_content = kWorkload;
  std::string sarif = ToSarif(report, options);

  // SARIF 2.1.0 fixes[] shape, pinned exactly: one fix, one artifactChange,
  // one replacement whose deletedRegion spans the offending statement's
  // bytes inside the artifact.
  const char* kGoldenFixes = R"json(          "fixes": [
            {
              "description": { "text": "expanded SELECT * into the concrete column list so schema changes cannot silently alter the result shape" },
              "properties": { "verify_tier": "analysis" },
              "artifactChanges": [
                {
                  "artifactLocation": { "uri": "app/queries.sql" },
                  "replacements": [
                    {
                      "deletedRegion": { "charOffset": 68, "charLength": 20 },
                      "insertedContent": { "text": "SELECT user_id, name FROM users;" }
                    }
                  ]
                }
              ]
            }
          ],)json";
  EXPECT_NE(sarif.find(kGoldenFixes), std::string::npos) << sarif;

  // The deleted region really is the offending statement, terminator
  // included — applying the ;-terminated rewrite must not double it.
  EXPECT_EQ(std::string(kWorkload).substr(68, 20), "SELECT * FROM users;");

  // Default SARIF emission stays fix-free.
  EmitOptions plain;
  plain.artifact_uri = "app/queries.sql";
  EXPECT_EQ(ToSarif(report, plain).find("\"fixes\""), std::string::npos);
}

TEST(EmitFixesTest, DuplicateOffendersAnchorToSuccessiveOccurrences) {
  const char* kWorkload =
      "CREATE TABLE users (user_id INTEGER PRIMARY KEY, name VARCHAR(10));\n"
      "SELECT * FROM users;\n"
      "SELECT * FROM users;\n";
  SqlCheck checker;
  checker.AddScript(kWorkload);
  Report report = checker.Run();
  ASSERT_EQ(report.size(), 2u);

  EmitOptions options;
  options.include_fixes = true;
  options.artifact_uri = "app/queries.sql";
  options.artifact_content = kWorkload;
  std::string sarif = ToSarif(report, options);
  // Two identical offending statements: each result's fix must delete its
  // own occurrence, not both the first.
  std::string content(kWorkload);
  size_t first = content.find("SELECT * FROM users;");
  size_t second = content.find("SELECT * FROM users;", first + 1);
  EXPECT_NE(sarif.find("\"charOffset\": " + std::to_string(first) + ","),
            std::string::npos)
      << sarif;
  EXPECT_NE(sarif.find("\"charOffset\": " + std::to_string(second) + ","),
            std::string::npos)
      << sarif;
}

TEST(EmitFixesTest, AdditiveDdlFixInsertsAtEndOfArtifact) {
  const char* kWorkload =
      "CREATE TABLE t (k INTEGER PRIMARY KEY, owner VARCHAR(10));\n"
      "SELECT k FROM t WHERE owner = 'x';\n";
  SqlCheck checker;
  checker.AddScript(kWorkload);
  Report report = checker.Run();

  EmitOptions options;
  options.include_fixes = true;
  options.artifact_uri = "app/queries.sql";
  options.artifact_content = kWorkload;
  std::string sarif = ToSarif(report, options);
  // Index Underuse proposes CREATE INDEX — an additive fix: zero-length
  // deletion at end-of-artifact.
  std::string expected = "\"deletedRegion\": { \"charOffset\": " +
                         std::to_string(std::string(kWorkload).size()) +
                         ", \"charLength\": 0 }";
  EXPECT_NE(sarif.find(expected), std::string::npos) << sarif;
  EXPECT_NE(sarif.find("CREATE INDEX idx_t_owner ON t (owner);"), std::string::npos);
}

TEST(ReportTextTest, ColorAddsAnsiWithoutChangingDefaultOutput) {
  Report report = FindAntiPatterns("SELECT * FROM users");
  std::string plain = report.ToText();
  std::string colored = report.ToText(0, /*color=*/true);
  EXPECT_EQ(plain.find('\x1b'), std::string::npos);
  EXPECT_NE(colored.find("\x1b[1m"), std::string::npos);
  EXPECT_NE(plain, colored);

  // Stripping the escape codes recovers the plain rendering exactly.
  std::string stripped;
  for (size_t i = 0; i < colored.size(); ++i) {
    if (colored[i] == '\x1b') {
      while (i < colored.size() && colored[i] != 'm') ++i;
      continue;
    }
    stripped.push_back(colored[i]);
  }
  EXPECT_EQ(stripped, plain);
}

}  // namespace
}  // namespace sqlcheck
