#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace sqlcheck {
namespace {

sql::StatementPtr Parse(std::string_view text) { return sql::ParseStatement(text); }

TEST(SchemaTest, FromCreateTableExtractsEverything) {
  auto stmt = Parse(
      "CREATE TABLE users (user_id INTEGER PRIMARY KEY, email VARCHAR(60) NOT NULL "
      "UNIQUE, role VARCHAR(4) CHECK (role IN ('a','b')), team_id INTEGER REFERENCES "
      "teams(team_id) ON DELETE CASCADE, score INT DEFAULT 10)");
  auto schema = TableSchema::FromCreateTable(
      *stmt->As<sql::CreateTableStatement>());
  EXPECT_EQ(schema.name, "users");
  EXPECT_EQ(schema.primary_key, (std::vector<std::string>{"user_id"}));
  ASSERT_EQ(schema.columns.size(), 5u);
  EXPECT_TRUE(schema.columns[0].not_null);  // PK implies NOT NULL
  EXPECT_TRUE(schema.columns[1].not_null);
  EXPECT_TRUE(schema.columns[1].unique);
  ASSERT_EQ(schema.checks.size(), 1u);
  ASSERT_EQ(schema.foreign_keys.size(), 1u);
  EXPECT_EQ(schema.foreign_keys[0].ref_table, "teams");
  EXPECT_TRUE(schema.foreign_keys[0].on_delete_cascade);
  ASSERT_TRUE(schema.columns[4].default_value.has_value());
  EXPECT_EQ(schema.columns[4].default_value->AsInt(), 10);
}

TEST(SchemaTest, ColumnLookupIsCaseInsensitive) {
  auto stmt = Parse("CREATE TABLE t (Alpha INT, beta INT)");
  auto schema = TableSchema::FromCreateTable(*stmt->As<sql::CreateTableStatement>());
  EXPECT_NE(schema.FindColumn("alpha"), nullptr);
  EXPECT_NE(schema.FindColumn("BETA"), nullptr);
  EXPECT_EQ(schema.FindColumn("gamma"), nullptr);
  EXPECT_EQ(schema.ColumnIndex("ALPHA"), 0);
  EXPECT_EQ(schema.ColumnIndex("nope"), -1);
}

class CatalogTest : public ::testing::Test {
 protected:
  Status Apply(std::string_view ddl) { return catalog_.ApplyDdl(*Parse(ddl)); }
  Catalog catalog_;
};

TEST_F(CatalogTest, CreateAndDropTable) {
  EXPECT_TRUE(Apply("CREATE TABLE t (a INT)").ok());
  EXPECT_NE(catalog_.FindTable("T"), nullptr);
  EXPECT_FALSE(Apply("CREATE TABLE t (a INT)").ok());  // duplicate
  EXPECT_TRUE(Apply("CREATE TABLE IF NOT EXISTS t (a INT)").ok());
  EXPECT_TRUE(Apply("DROP TABLE t").ok());
  EXPECT_EQ(catalog_.FindTable("t"), nullptr);
  EXPECT_FALSE(Apply("DROP TABLE t").ok());
  EXPECT_TRUE(Apply("DROP TABLE IF EXISTS t").ok());
}

TEST_F(CatalogTest, IndexLifecycleFollowsTable) {
  Apply("CREATE TABLE t (a INT, b INT)");
  EXPECT_TRUE(Apply("CREATE INDEX idx_a ON t (a)").ok());
  EXPECT_NE(catalog_.FindIndex("idx_a"), nullptr);
  EXPECT_TRUE(catalog_.HasIndexOnColumn("t", "a"));
  EXPECT_FALSE(catalog_.HasIndexOnColumn("t", "b"));
  EXPECT_EQ(catalog_.IndexesOnTable("t").size(), 1u);
  Apply("DROP TABLE t");
  EXPECT_EQ(catalog_.FindIndex("idx_a"), nullptr);  // dropped with the table
}

TEST_F(CatalogTest, AlterAddAndDropColumn) {
  Apply("CREATE TABLE t (a INT)");
  EXPECT_TRUE(Apply("ALTER TABLE t ADD COLUMN b VARCHAR(10)").ok());
  EXPECT_NE(catalog_.FindTable("t")->FindColumn("b"), nullptr);
  EXPECT_TRUE(Apply("ALTER TABLE t DROP COLUMN a").ok());
  EXPECT_EQ(catalog_.FindTable("t")->FindColumn("a"), nullptr);
  EXPECT_FALSE(Apply("ALTER TABLE t DROP COLUMN nope").ok());
}

TEST_F(CatalogTest, AlterConstraints) {
  Apply("CREATE TABLE t (a INT, b INT)");
  EXPECT_TRUE(Apply("ALTER TABLE t ADD CONSTRAINT chk CHECK (a > 0)").ok());
  EXPECT_EQ(catalog_.FindTable("t")->checks.size(), 1u);
  EXPECT_TRUE(Apply("ALTER TABLE t DROP CONSTRAINT chk").ok());
  EXPECT_TRUE(catalog_.FindTable("t")->checks.empty());
  EXPECT_FALSE(Apply("ALTER TABLE t DROP CONSTRAINT chk").ok());
  EXPECT_TRUE(Apply("ALTER TABLE t DROP CONSTRAINT IF EXISTS chk").ok());

  EXPECT_TRUE(Apply("ALTER TABLE t ADD PRIMARY KEY (a)").ok());
  EXPECT_EQ(catalog_.FindTable("t")->primary_key, (std::vector<std::string>{"a"}));
}

TEST_F(CatalogTest, AlterColumnTypeAndRenames) {
  Apply("CREATE TABLE t (a FLOAT)");
  EXPECT_TRUE(Apply("ALTER TABLE t ALTER COLUMN a TYPE NUMERIC(10, 2)").ok());
  EXPECT_EQ(catalog_.FindTable("t")->FindColumn("a")->type.id, TypeId::kNumeric);
  EXPECT_TRUE(Apply("ALTER TABLE t RENAME COLUMN a TO amount").ok());
  EXPECT_NE(catalog_.FindTable("t")->FindColumn("amount"), nullptr);
  EXPECT_TRUE(Apply("ALTER TABLE t RENAME TO u").ok());
  EXPECT_EQ(catalog_.FindTable("t"), nullptr);
  EXPECT_NE(catalog_.FindTable("u"), nullptr);
}

TEST_F(CatalogTest, DmlIsIgnored) {
  EXPECT_TRUE(Apply("SELECT 1").ok());
  EXPECT_TRUE(Apply("INSERT INTO missing VALUES (1)").ok());
  EXPECT_EQ(catalog_.table_count(), 0u);
}

TEST_F(CatalogTest, TablesEnumeration) {
  Apply("CREATE TABLE a (x INT)");
  Apply("CREATE TABLE b (y INT)");
  EXPECT_EQ(catalog_.Tables().size(), 2u);
}

}  // namespace
}  // namespace sqlcheck
