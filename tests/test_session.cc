// Incremental session engine: feeding any prefix — or any chunking — of a
// script through AnalysisSession must yield reports byte-identical to one
// batch run over the same statement order, with the pre-session batch
// pipeline (ContextBuilder + DetectAntiPatterns + rank + fix) as the anchor
// so neither path can drift.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/context.h"
#include "core/session.h"
#include "core/sqlcheck.h"
#include "engine/executor.h"
#include "fix/fix_engine.h"
#include "ranking/model.h"
#include "rules/registry.h"
#include "sql/splitter.h"
#include "workload/corpus.h"

namespace sqlcheck {
namespace {

// Mixed workload: DDL (design rules), duplicate-heavy queries (the memo),
// index DDL (inter-query rules), and data-sensitive predicates.
const char* kScript = R"sql(
CREATE TABLE users (id INT PRIMARY KEY, name VARCHAR(64), password VARCHAR(64),
                    tag_ids TEXT, balance FLOAT, created_at TIMESTAMP);
CREATE TABLE orders (id INT PRIMARY KEY, user_id INT,
                     status VARCHAR(8) CHECK (status IN ('open', 'paid')));
CREATE INDEX idx_orders_user ON orders (user_id);
CREATE INDEX idx_orders_user_status ON orders (user_id, status);
SELECT * FROM users WHERE id = ?;
select * from users where id = ?;
SELECT * FROM users WHERE id = ?  -- comment jitter
;
SELECT u.name, o.status FROM users u JOIN orders o ON u.id = o.user_id;
SELECT name FROM users WHERE tag_ids LIKE '%,7,%';
SELECT name, password FROM users WHERE password = 'hunter2';
SELECT DISTINCT u.name FROM users u JOIN orders o ON u.id = o.user_id
    ORDER BY RAND();
INSERT INTO orders VALUES (1, 1, 'open');
INSERT INTO orders VALUES (1, 1, 'open');
UPDATE users SET balance = 0 WHERE id = 3;
)sql";

/// The pre-session batch pipeline, verbatim — the reference every
/// incremental feeding order is compared against.
Report ReferencePipeline(const std::vector<std::string>& statements,
                         const SqlCheckOptions& options, const Database* db = nullptr) {
  ContextBuilder builder;
  for (const auto& s : statements) builder.AddQuery(s);
  if (db != nullptr) builder.AttachDatabase(db, options.data_analyzer);
  Context context = builder.Build(1, nullptr, options.dedup_queries);

  RuleRegistry registry = RuleRegistry::Default();
  EXPECT_TRUE(registry.Disable(options.disabled_rules).ok());
  std::vector<Detection> detections =
      DetectAntiPatterns(context, registry, options.detector);

  RankingModel model(options.ranking_weights, options.ranking_mode);
  std::vector<RankedDetection> ranked = model.Rank(detections);
  FixEngine repair(registry, options.detector);
  Report report;
  for (auto& r : ranked) {
    Finding finding;
    finding.fix = options.suggest_fixes ? repair.SuggestFix(r.detection, context) : Fix{};
    finding.ranked = std::move(r);
    report.findings.push_back(std::move(finding));
  }
  return report;
}

/// Full serialized form — ToText and ToJson together catch every field.
std::string Serialize(const Report& report) {
  return report.ToText() + "\n---\n" + report.ToJson();
}

std::vector<std::string> ScriptStatements() {
  std::vector<std::string> out;
  for (std::string_view piece : sql::SplitStatements(kScript)) out.emplace_back(piece);
  return out;
}

TEST(SessionTest, EveryPrefixMatchesBatch) {
  std::vector<std::string> statements = ScriptStatements();
  ASSERT_GE(statements.size(), 10u);

  AnalysisSession session;  // one long-lived session, statements stream in
  std::vector<std::string> prefix;
  for (const auto& stmt : statements) {
    session.AddQuery(stmt);
    prefix.push_back(stmt);
    EXPECT_EQ(Serialize(session.Snapshot()),
              Serialize(ReferencePipeline(prefix, SqlCheckOptions{})))
        << "prefix length " << prefix.size();
  }
}

TEST(SessionTest, ChunkPermutationsMatchBatchOnSameOrder) {
  std::vector<std::string> statements = ScriptStatements();
  const size_t third = statements.size() / 3;
  std::vector<std::vector<std::string>> chunks = {
      {statements.begin(), statements.begin() + third},
      {statements.begin() + third, statements.begin() + 2 * third},
      {statements.begin() + 2 * third, statements.end()},
  };

  for (const std::vector<size_t>& order :
       std::vector<std::vector<size_t>>{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}, {2, 1, 0}}) {
    AnalysisSession session;
    std::vector<std::string> fed_order;
    for (size_t c : order) {
      std::string chunk_script;
      for (const auto& stmt : chunks[c]) {
        chunk_script += stmt;
        // ';' on its own line: a piece ending in a '--' comment must not
        // swallow the separator when the chunk is re-split.
        chunk_script += "\n;\n";
        fed_order.push_back(stmt);
      }
      session.AddScript(chunk_script);
    }
    EXPECT_EQ(Serialize(session.Snapshot()),
              Serialize(ReferencePipeline(fed_order, SqlCheckOptions{})))
        << "chunk order " << order[0] << order[1] << order[2];
  }
}

TEST(SessionTest, SnapshotIsIdempotentAndAppendable) {
  AnalysisSession session;
  session.AddScript(kScript);
  std::string first = Serialize(session.Snapshot());
  EXPECT_EQ(Serialize(session.Snapshot()), first);

  session.AddQuery("SELECT * FROM orders");
  std::string grown = Serialize(session.Snapshot());
  EXPECT_NE(grown, first);
  EXPECT_EQ(grown, Serialize(session.Snapshot()));
}

TEST(SessionTest, MatchesBatchWithDedupOff) {
  SqlCheckOptions options;
  options.dedup_queries = false;
  AnalysisSession session(options);
  std::vector<std::string> statements = ScriptStatements();
  for (const auto& stmt : statements) session.AddQuery(stmt);
  EXPECT_EQ(Serialize(session.Snapshot()),
            Serialize(ReferencePipeline(statements, options)));
}

TEST(SessionTest, MatchesBatchAtEveryParallelism) {
  std::vector<std::string> statements = ScriptStatements();
  std::string reference = Serialize(ReferencePipeline(statements, SqlCheckOptions{}));
  for (int threads : {1, 2, 4, 0}) {
    SqlCheckOptions options;
    options.parallelism = threads;
    AnalysisSession session(options);
    for (const auto& stmt : statements) session.AddQuery(stmt);
    EXPECT_EQ(Serialize(session.Snapshot()), reference) << "threads=" << threads;
  }
}

TEST(SessionTest, CorpusWorkloadWithDatabaseMatchesBatch) {
  workload::CorpusOptions corpus_options;
  corpus_options.repo_count = 12;
  std::vector<std::string> statements;
  for (const auto& labeled : workload::GenerateCorpus(corpus_options).AllStatements()) {
    statements.push_back(labeled.sql);
  }

  Database db;
  Executor exec(&db);
  exec.ExecuteScript(R"sql(
CREATE TABLE users (id INTEGER PRIMARY KEY, name VARCHAR(40), status TEXT,
                    password VARCHAR(32), created_at TEXT);
)sql");
  for (int i = 0; i < 16; ++i) {
    std::string n = std::to_string(i);
    exec.ExecuteSql("INSERT INTO users VALUES (" + n + ", 'user" + n +
                    "', 'active', 'hunter2', '2019-07-04 12:00:00')");
  }

  // Attach-early and attach-late sessions must both match the batch build.
  std::string reference =
      Serialize(ReferencePipeline(statements, SqlCheckOptions{}, &db));

  AnalysisSession early;
  early.AttachDatabase(&db);
  for (const auto& stmt : statements) early.AddQuery(stmt);
  EXPECT_EQ(Serialize(early.Snapshot()), reference);

  AnalysisSession late;
  for (const auto& stmt : statements) late.AddQuery(stmt);
  late.AttachDatabase(&db);
  EXPECT_EQ(Serialize(late.Snapshot()), reference);
}

TEST(SessionTest, RepeatedStatementReusesFingerprintMemo) {
  AnalysisSession session;
  session.AddQuery("SELECT * FROM users WHERE id = ?");
  for (int i = 0; i < 100; ++i) {
    session.AddQuery("SELECT * FROM users WHERE id = ?");
    session.AddQuery("select * from users where id = ?");  // case jitter
  }
  EXPECT_EQ(session.statement_count(), 201u);
  EXPECT_EQ(session.unique_count(), 1u);
}

TEST(SessionTest, CheckReportsFindingsForAppendedStatementOnly) {
  AnalysisSession session;
  session.AddScript(
      "CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(8));"
      "SELECT * FROM t;");

  Report delta = session.Check("SELECT v FROM t ORDER BY RAND()");
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta.findings[0].ranked.detection.type, AntiPattern::kOrderingByRand);
  // The wildcard finding from the earlier statement is not replayed...
  for (const auto& f : delta.findings) {
    EXPECT_NE(f.ranked.detection.type, AntiPattern::kColumnWildcard);
  }
  // ...but the full snapshot still carries both.
  Report full = session.Snapshot();
  EXPECT_EQ(full.CountsByType().count(AntiPattern::kColumnWildcard), 1u);
  EXPECT_EQ(full.CountsByType().count(AntiPattern::kOrderingByRand), 1u);
}

TEST(SessionTest, CheckOnDuplicateUsesCachedGroup) {
  AnalysisSession session;
  Report first = session.Check("SELECT * FROM users");
  ASSERT_EQ(first.size(), 1u);
  size_t uniques = session.unique_count();

  Report again = session.Check("select  *  from users  -- dup");
  EXPECT_EQ(session.unique_count(), uniques);  // memo hit, no new analysis
  ASSERT_EQ(again.size(), 1u);
  // Rebased onto the duplicate occurrence's own raw text.
  EXPECT_EQ(again.findings[0].ranked.detection.query, "select  *  from users  -- dup");
  EXPECT_EQ(again.findings[0].ranked.detection.type,
            first.findings[0].ranked.detection.type);
}

// ------------------------------ disabled rules ------------------------------

TEST(SessionTest, DisabledRulesAreHonored) {
  SqlCheckOptions options;
  options.disabled_rules = {"Column Wildcard Usage", "ordering by rand"};  // any case
  AnalysisSession session(options);
  EXPECT_TRUE(session.status().ok());
  session.AddScript(kScript);
  Report report = session.Snapshot();
  EXPECT_FALSE(report.empty());
  for (const auto& f : report.findings) {
    EXPECT_NE(f.ranked.detection.type, AntiPattern::kColumnWildcard);
    EXPECT_NE(f.ranked.detection.type, AntiPattern::kOrderingByRand);
  }
  // And the session output still matches a batch run with the same options.
  EXPECT_EQ(Serialize(session.Snapshot()),
            Serialize(ReferencePipeline(ScriptStatements(), options)));
}

TEST(SessionTest, UnknownDisabledRuleSurfacesErrorStatus) {
  SqlCheckOptions options;
  options.disabled_rules = {"Not A Rule"};
  AnalysisSession session(options);
  EXPECT_FALSE(session.status().ok());
  EXPECT_NE(session.status().message().find("Not A Rule"), std::string::npos);
  // The full rule set stays active.
  session.AddQuery("SELECT * FROM users");
  EXPECT_EQ(session.Snapshot().size(), 1u);
}

TEST(RuleRegistryTest, DisableRemovesMatchingRulesOnly) {
  RuleRegistry registry = RuleRegistry::Default();
  size_t all = registry.size();
  EXPECT_TRUE(registry.Disable({"Too Many Joins"}).ok());
  EXPECT_EQ(registry.size(), all - 1);
  for (const auto& rule : registry.rules()) {
    EXPECT_NE(rule->type(), AntiPattern::kTooManyJoins);
  }
  // Unknown names error and leave the registry unchanged.
  EXPECT_FALSE(registry.Disable({"Bogus"}).ok());
  EXPECT_EQ(registry.size(), all - 1);
}

// -------------------------- facade / one-shot paths -------------------------

TEST(SessionTest, FindAntiPatternsMatchesSessionAndFacade) {
  const char* sql = "SELECT DISTINCT a.x FROM a JOIN b ON a.id = b.a_id ORDER BY RAND()";

  AnalysisSession session;
  session.AddQuery(sql);
  std::string via_session = Serialize(session.Snapshot());

  SqlCheck checker;
  checker.AddQuery(sql);
  std::string via_facade = Serialize(checker.Run());

  EXPECT_EQ(Serialize(FindAntiPatterns(sql)), via_session);
  EXPECT_EQ(via_facade, via_session);
  EXPECT_EQ(via_session, Serialize(ReferencePipeline({sql}, SqlCheckOptions{})));
}

TEST(SessionTest, CustomRuleRegisteredLateCoversEarlierStatements) {
  class UpdateEverythingRule final : public Rule {
   public:
    AntiPattern type() const override { return AntiPattern::kImplicitColumns; }
    void CheckQuery(const QueryFacts& facts, const Context& context,
                    const DetectorConfig& config,
                    std::vector<Detection>* out) const override {
      (void)context;
      (void)config;
      if (facts.kind != sql::StatementKind::kUpdate) return;
      Detection d;
      d.type = type();
      d.query = facts.raw_sql;
      d.message = "custom: update spotted";
      out->push_back(d);
    }
  };

  AnalysisSession session;
  session.AddQuery("UPDATE t SET a = 1");  // ingested before the rule exists
  session.RegisterRule(std::make_unique<UpdateEverythingRule>());
  Report report = session.Snapshot();
  bool found = false;
  for (const auto& f : report.findings) {
    if (f.ranked.detection.message == "custom: update spotted") found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace sqlcheck
