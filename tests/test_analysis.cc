#include <gtest/gtest.h>

#include "analysis/context.h"
#include "analysis/query_analyzer.h"
#include "core/report.h"
#include "engine/executor.h"
#include "sql/parser.h"

namespace sqlcheck {
namespace {

QueryFacts Analyze(std::string_view text) {
  static std::vector<sql::StatementPtr> keep_alive;
  keep_alive.push_back(sql::ParseStatement(text));
  return AnalyzeQuery(*keep_alive.back());
}

TEST(QueryAnalyzerTest, SelectShape) {
  QueryFacts facts = Analyze(
      "SELECT DISTINCT a.x, COUNT(*) FROM alpha a JOIN beta b ON a.id = b.id "
      "WHERE a.x = 5 GROUP BY a.x ORDER BY RAND()");
  EXPECT_EQ(facts.kind, sql::StatementKind::kSelect);
  EXPECT_TRUE(facts.distinct);
  EXPECT_TRUE(facts.has_where);
  EXPECT_TRUE(facts.order_by_rand);
  EXPECT_EQ(facts.join_count, 1);
  EXPECT_EQ(facts.tables, (std::vector<std::string_view>{"alpha", "beta"}));
  ASSERT_EQ(facts.joins.size(), 1u);
  EXPECT_EQ(facts.joins[0].left_table, "alpha");   // alias resolved
  EXPECT_EQ(facts.joins[0].right_table, "beta");
  ASSERT_GE(facts.predicates.size(), 1u);
  EXPECT_EQ(facts.predicates[0].column, "x");
  EXPECT_EQ(facts.predicates[0].table, "alpha");
  EXPECT_EQ(facts.group_by_columns, (std::vector<std::string>{"alpha.x"}));
}

TEST(QueryAnalyzerTest, WildcardAndPatterns) {
  QueryFacts facts = Analyze("SELECT * FROM t WHERE name LIKE '%x%'");
  EXPECT_TRUE(facts.selects_wildcard);
  ASSERT_EQ(facts.patterns.size(), 1u);
  EXPECT_TRUE(facts.patterns[0].leading_wildcard);
  EXPECT_EQ(facts.patterns[0].column, "name");
  EXPECT_EQ(facts.patterns[0].table, "t");  // sole-table fallback
}

TEST(QueryAnalyzerTest, ComputedPatternDetected) {
  QueryFacts facts = Analyze(
      "SELECT * FROM a JOIN b ON a.list LIKE '[[:<:]]' || b.id || '[[:>:]]'");
  ASSERT_GE(facts.patterns.size(), 1u);
  EXPECT_TRUE(facts.patterns[0].computed_pattern);
  EXPECT_TRUE(facts.patterns[0].word_boundary);
  ASSERT_GE(facts.joins.size(), 1u);
  EXPECT_TRUE(facts.joins[0].expression_join);
}

TEST(QueryAnalyzerTest, InsertShape) {
  QueryFacts implicit = Analyze("INSERT INTO t VALUES (1)");
  EXPECT_TRUE(implicit.insert_without_columns);
  QueryFacts explicit_cols = Analyze("INSERT INTO t (a) VALUES (1)");
  EXPECT_FALSE(explicit_cols.insert_without_columns);
  EXPECT_EQ(explicit_cols.insert_columns, (std::vector<std::string_view>{"a"}));
}

TEST(QueryAnalyzerTest, UpdateAndConcatColumns) {
  QueryFacts facts =
      Analyze("UPDATE t SET label = first || '-' || last WHERE id = 3");
  EXPECT_EQ(facts.updated_columns, (std::vector<std::string_view>{"label"}));
  // Nested || nodes may re-visit operands; the contract is coverage, not
  // exact multiplicity.
  EXPECT_GE(facts.concat_columns.size(), 2u);
  bool has_first = false;
  bool has_last = false;
  for (const auto& c : facts.concat_columns) {
    if (c == "t.first") has_first = true;
    if (c == "t.last") has_last = true;
  }
  EXPECT_TRUE(has_first && has_last);
  ASSERT_GE(facts.predicates.size(), 1u);
  EXPECT_EQ(facts.predicates[0].literal, "3");
}

TEST(QueryAnalyzerTest, SubqueryFactsBubbleUp) {
  QueryFacts facts =
      Analyze("SELECT x FROM outer_t WHERE x IN (SELECT y FROM inner_t WHERE y = 1)");
  EXPECT_TRUE(facts.ReferencesTable("inner_t"));
  bool inner_predicate = false;
  for (const auto& p : facts.predicates) {
    if (p.column == "y") inner_predicate = true;
  }
  EXPECT_TRUE(inner_predicate);
}

TEST(ContextTest, CatalogFromDdlWhenNoDatabase) {
  ContextBuilder builder;
  builder.AddScript(
      "CREATE TABLE a (x INTEGER PRIMARY KEY);"
      "CREATE INDEX idx_ax ON a (x);"
      "SELECT x FROM a WHERE x = 1;");
  Context context = builder.Build();
  EXPECT_NE(context.catalog().FindTable("a"), nullptr);
  EXPECT_NE(context.catalog().FindIndex("idx_ax"), nullptr);
  EXPECT_FALSE(context.has_data());
  EXPECT_EQ(context.queries().size(), 3u);
  EXPECT_EQ(context.QueriesReferencing("a").size(), 3u);
  EXPECT_GE(context.EqualityUseCount("a", "x"), 1);
}

TEST(ContextTest, DatabaseBaselinePlusDdlAugmentation) {
  Database db;
  Executor exec(&db);
  exec.ExecuteSql("CREATE TABLE live (k INTEGER PRIMARY KEY)");
  exec.ExecuteSql("INSERT INTO live VALUES (1)");
  ContextBuilder builder;
  builder.AttachDatabase(&db);
  builder.AddQuery("CREATE TABLE ddl_only (v INTEGER)");
  Context context = builder.Build();
  EXPECT_NE(context.catalog().FindTable("live"), nullptr);      // from database
  EXPECT_NE(context.catalog().FindTable("ddl_only"), nullptr);  // from workload DDL
  EXPECT_TRUE(context.has_data());
  EXPECT_NE(context.ProfileFor("live"), nullptr);
  EXPECT_EQ(context.ProfileFor("ddl_only"), nullptr);  // no data behind DDL
}

TEST(ContextTest, JoinAndFkQueries) {
  ContextBuilder builder;
  builder.AddScript(
      "CREATE TABLE p (id INTEGER PRIMARY KEY);"
      "CREATE TABLE c (id INTEGER PRIMARY KEY, p_id INTEGER REFERENCES p (id));"
      "SELECT c.id FROM p JOIN c ON p.id = c.p_id;");
  Context context = builder.Build();
  EXPECT_TRUE(context.TablesJoined("p", "c"));
  EXPECT_TRUE(context.TablesJoined("c", "p"));  // symmetric
  EXPECT_FALSE(context.TablesJoined("p", "x"));
  EXPECT_TRUE(context.ForeignKeyExists("c", "p"));
  EXPECT_TRUE(context.ForeignKeyExists("p", "c"));
}

TEST(ContextTest, ColumnNullability) {
  ContextBuilder builder;
  builder.AddQuery("CREATE TABLE t (a INTEGER NOT NULL, b INTEGER)");
  Context context = builder.Build();
  EXPECT_FALSE(context.ColumnNullable("t", "a"));
  EXPECT_TRUE(context.ColumnNullable("t", "b"));
  EXPECT_TRUE(context.ColumnNullable("missing", "c"));  // unknown = nullable
}

TEST(ReportTest, CountsAndRendering) {
  Report report;
  Finding f1;
  f1.ranked.detection.type = AntiPattern::kColumnWildcard;
  f1.ranked.detection.table = "t";
  f1.ranked.detection.message = "msg";
  f1.ranked.score = 0.5;
  f1.fix.kind = FixKind::kTextual;
  f1.fix.explanation = "do better";
  Finding f2 = f1;
  f2.ranked.detection.type = AntiPattern::kNoPrimaryKey;
  report.findings = {f1, f2};

  EXPECT_EQ(report.size(), 2u);
  EXPECT_EQ(report.DistinctTypes(), 2);
  EXPECT_EQ(report.CountsByType()[AntiPattern::kColumnWildcard], 1);
  std::string text = report.ToText();
  EXPECT_NE(text.find("Column Wildcard Usage"), std::string::npos);
  EXPECT_NE(text.find("do better"), std::string::npos);
  // Truncation marker when limited.
  EXPECT_NE(report.ToText(1).find("1 more finding"), std::string::npos);
}

}  // namespace
}  // namespace sqlcheck
