#include "sql/fingerprint.h"

#include <gtest/gtest.h>

#include "sql/lexer.h"

namespace sqlcheck::sql {
namespace {

const FingerprintOptions kTemplate = FingerprintOptions::Template();
const FingerprintOptions kExact = FingerprintOptions::Exact();

TEST(FingerprintTest, CanonicalFormLowercasesKeywordsAndCollapsesLiterals) {
  EXPECT_EQ(CanonicalizeSql("SELECT  *  FROM t WHERE a = 'x' -- note\n", kTemplate),
            "select * from t where a = ?");
}

TEST(FingerprintTest, ExactFormKeepsLiteralText) {
  EXPECT_EQ(CanonicalizeSql("SELECT * FROM t WHERE a = 'x' AND b = 2", kExact),
            "select * from t where a = 'x' and b = 2");
}

TEST(FingerprintTest, LiteralValuesDoNotChangeTemplateFingerprint) {
  uint64_t a = FingerprintSql("SELECT * FROM users WHERE id = 1", kTemplate);
  uint64_t b = FingerprintSql("SELECT * FROM users WHERE id = 42", kTemplate);
  uint64_t c = FingerprintSql("SELECT * FROM users WHERE id = 'abc'", kTemplate);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(FingerprintTest, ParamSpellingsShareATemplateFingerprint) {
  uint64_t q = FingerprintSql("SELECT * FROM t WHERE id = ?", kTemplate);
  EXPECT_EQ(q, FingerprintSql("SELECT * FROM t WHERE id = %s", kTemplate));
  EXPECT_EQ(q, FingerprintSql("SELECT * FROM t WHERE id = :id", kTemplate));
  EXPECT_EQ(q, FingerprintSql("SELECT * FROM t WHERE id = $1", kTemplate));
  // A literal collapses to the same placeholder as a parameter.
  EXPECT_EQ(q, FingerprintSql("SELECT * FROM t WHERE id = 7", kTemplate));
}

TEST(FingerprintTest, WhitespaceCommentsAndKeywordCaseAreInvariant) {
  const char* variants[] = {
      "SELECT name FROM users WHERE id = 3",
      "select name from users where id = 3",
      "SELECT   name\n\tFROM users  WHERE id = 3",
      "SELECT name /* inline */ FROM users WHERE id = 3",
      "SELECT name FROM users -- trailing\n WHERE id = 3",
  };
  uint64_t expected_template = FingerprintSql(variants[0], kTemplate);
  uint64_t expected_exact = FingerprintSql(variants[0], kExact);
  for (const char* v : variants) {
    EXPECT_EQ(FingerprintSql(v, kTemplate), expected_template) << v;
    EXPECT_EQ(FingerprintSql(v, kExact), expected_exact) << v;
  }
}

TEST(FingerprintTest, DistinctStructureYieldsDistinctFingerprints) {
  uint64_t base = FingerprintSql("SELECT a FROM t WHERE x = 1", kTemplate);
  EXPECT_NE(base, FingerprintSql("SELECT b FROM t WHERE x = 1", kTemplate));
  EXPECT_NE(base, FingerprintSql("SELECT a FROM u WHERE x = 1", kTemplate));
  EXPECT_NE(FingerprintSql("SELECT a FROM t WHERE x = 1 AND y = 2", kTemplate),
            FingerprintSql("SELECT a FROM t WHERE x = 1 OR y = 2", kTemplate));
  EXPECT_NE(FingerprintSql("SELECT DISTINCT a FROM t", kTemplate),
            FingerprintSql("SELECT a FROM t", kTemplate));
}

TEST(FingerprintTest, ExactModeDistinguishesLiterals) {
  EXPECT_NE(FingerprintSql("SELECT * FROM t WHERE id = 1", kExact),
            FingerprintSql("SELECT * FROM t WHERE id = 2", kExact));
  // Analysis-relevant literal content: wildcard position in LIKE patterns.
  EXPECT_NE(FingerprintSql("SELECT a FROM t WHERE a LIKE '%x'", kExact),
            FingerprintSql("SELECT a FROM t WHERE a LIKE 'x%'", kExact));
}

TEST(FingerprintTest, IdentifierCaseIsSignificant) {
  // The analyzer reports table/column names as written, so identifier case
  // must stay visible in both modes.
  EXPECT_NE(FingerprintSql("SELECT a FROM Users", kTemplate),
            FingerprintSql("SELECT a FROM users", kTemplate));
  EXPECT_NE(FingerprintSql("SELECT a FROM Users", kExact),
            FingerprintSql("SELECT a FROM users", kExact));
}

TEST(FingerprintTest, CanonicalRenderingIsInjective) {
  // Two adjacent strings vs one string whose text embeds quote-space-quote:
  // doubled-quote escaping keeps the canonical forms distinct.
  EXPECT_NE(CanonicalizeSql("SELECT 'a' 'b'", kExact),
            CanonicalizeSql("SELECT 'a'' ''b'", kExact));
  // A quoted identifier spelled like a keyword is not that keyword.
  EXPECT_NE(CanonicalizeSql("\"select\"", kExact), CanonicalizeSql("select", kExact));
  // A string is not a bare identifier.
  EXPECT_NE(FingerprintSql("SELECT 'a' FROM t", kExact),
            FingerprintSql("SELECT a FROM t", kExact));
}

TEST(FingerprintTest, StreamingCanonicalizerMatchesTokenPath) {
  sql::TokenBuffer buffer;
  // CanonicalizeSql is a tuned scanning pass; CanonicalizeTokens(Lex(...)) is
  // the reference. Any disagreement here could let the dedup cache merge two
  // statements the lexer distinguishes — keep them in lockstep.
  const char* tricky[] = {
      "SELECT * FROM t WHERE a = 'it''s' AND b = 'a\\'b'",
      "SELECT \"col\" , `col`, [col], `a``b`, \"a\"\"b\", [a\"b] FROM t",
      "$$body$$ $tag$a $$ b$tag$ $unterminated$rest",
      "$not_a_quote + $1 + ? + %s + :named",
      "id%salary % %s",
      "1 2.5 3e10 4.2E-3 .5 1.e 5e+2",
      "/* outer /* inner */ still */ SELECT 1 -- tail\n# hash\n2",
      "j #>> 'p' #> 'q' @> x <@ y <=> z :: t -> u ->> v ~* w !~* q",
      "SeLeCt DiStInCt NaMe FrOm UsErS wHeRe Id In (1,2,3);",
      "'unterminated string",
      "SELECT CASE WHEN a THEN 'x' END FROM t WHERE b LIKE '%y' ESCAPE '!'",
      "",
      "   \t\n  ",
      "@ # $ ^ & !",
  };
  for (const FingerprintOptions& options : {kTemplate, kExact}) {
    for (const char* sql : tricky) {
      EXPECT_EQ(CanonicalizeSql(sql, options), CanonicalizeTokens(Lex(sql, buffer), options))
          << "input: " << sql;
    }
  }
}

TEST(FingerprintTest, FingerprintIsHashOfCanonicalForm) {
  std::string canonical = CanonicalizeSql("SELECT 1", kTemplate);
  EXPECT_EQ(FingerprintSql("SELECT 1", kTemplate), FingerprintCanonical(canonical));
  EXPECT_NE(FingerprintCanonical("a"), FingerprintCanonical("b"));
}

}  // namespace
}  // namespace sqlcheck::sql
