#include "storage/statistics.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace sqlcheck {
namespace {

Table MakeTable(const std::string& ddl) {
  auto stmt = sql::ParseStatement(ddl);
  return Table(TableSchema::FromCreateTable(*stmt->As<sql::CreateTableStatement>()));
}

TEST(StatisticsTest, BasicCountsAndDistribution) {
  Table t = MakeTable("CREATE TABLE t (v INTEGER)");
  for (int i = 0; i < 10; ++i) t.Insert({Value::Int(i % 3)});
  t.Insert({Value::Null_()});
  TableStats stats = ComputeTableStats(t);
  ASSERT_EQ(stats.columns.size(), 1u);
  const ColumnStats& c = stats.columns[0];
  EXPECT_EQ(c.row_count, 11u);
  EXPECT_EQ(c.null_count, 1u);
  EXPECT_EQ(c.distinct_count, 3u);
  EXPECT_EQ(c.min->AsInt(), 0);
  EXPECT_EQ(c.max->AsInt(), 2);
  EXPECT_NEAR(c.mean, 0.9, 1e-9);  // (0+1+2)*3 + 0 = 9 over 10 non-null
  EXPECT_NEAR(c.NullFraction(), 1.0 / 11.0, 1e-9);
}

TEST(StatisticsTest, TopValueAndFrequency) {
  Table t = MakeTable("CREATE TABLE t (v VARCHAR(5))");
  for (int i = 0; i < 7; ++i) t.Insert({Value::Str("a")});
  for (int i = 0; i < 3; ++i) t.Insert({Value::Str("b")});
  TableStats stats = ComputeTableStats(t);
  EXPECT_EQ(stats.columns[0].top_value.AsString(), "a");
  EXPECT_EQ(stats.columns[0].top_frequency, 7u);
}

TEST(StatisticsTest, StringShapeFractions) {
  Table t = MakeTable("CREATE TABLE t (v TEXT)");
  t.Insert({Value::Str("123")});
  t.Insert({Value::Str("456")});
  t.Insert({Value::Str("789")});
  t.Insert({Value::Str("abc")});
  TableStats stats = ComputeTableStats(t);
  EXPECT_NEAR(stats.columns[0].numeric_string_fraction, 0.75, 1e-9);
}

TEST(StatisticsTest, DateAndTimezoneFractions) {
  Table t = MakeTable("CREATE TABLE t (v TEXT)");
  t.Insert({Value::Str("2020-01-01 10:00:00Z")});
  t.Insert({Value::Str("2020-01-02 10:00:00")});
  TableStats stats = ComputeTableStats(t);
  EXPECT_DOUBLE_EQ(stats.columns[0].date_string_fraction, 1.0);
  EXPECT_DOUBLE_EQ(stats.columns[0].timezone_fraction, 0.5);
}

TEST(StatisticsTest, DelimitedDetection) {
  Table t = MakeTable("CREATE TABLE t (v TEXT)");
  t.Insert({Value::Str("U1,U2,U3")});
  t.Insert({Value::Str("U4,U5")});
  t.Insert({Value::Str("plain")});
  TableStats stats = ComputeTableStats(t);
  EXPECT_NEAR(stats.columns[0].delimited_fraction, 2.0 / 3.0, 1e-9);
  EXPECT_EQ(stats.columns[0].dominant_delimiter, ',');
}

TEST(StatisticsTest, ProseWithCommasIsNotDelimited) {
  char delim = '\0';
  EXPECT_FALSE(LooksDelimited(
      "This is a long sentence, with a comma, that describes something in "
      "enough words to exceed the field-size bound.",
      &delim));
  EXPECT_TRUE(LooksDelimited("a,b,c", &delim));
  EXPECT_EQ(delim, ',');
  EXPECT_FALSE(LooksDelimited("trailing,", &delim));  // empty field
  EXPECT_FALSE(LooksDelimited("nodelims", &delim));
}

TEST(StatisticsTest, SemicolonAndPipeDelimiters) {
  char delim = '\0';
  EXPECT_TRUE(LooksDelimited("U3;U4", &delim));
  EXPECT_EQ(delim, ';');
  EXPECT_TRUE(LooksDelimited("x|y|z", &delim));
  EXPECT_EQ(delim, '|');
}

TEST(StatisticsTest, SamplingBoundsWork) {
  Table t = MakeTable("CREATE TABLE t (v INTEGER)");
  for (int i = 0; i < 1000; ++i) t.Insert({Value::Int(i)});
  TableStats sampled = ComputeTableStats(t, /*sample_limit=*/50);
  EXPECT_EQ(sampled.row_count, 1000u);          // table size is exact
  EXPECT_EQ(sampled.columns[0].row_count, 50u); // stats over the sample
  EXPECT_EQ(sampled.columns[0].distinct_count, 50u);
}

TEST(StatisticsTest, FindColumnLookup) {
  Table t = MakeTable("CREATE TABLE t (alpha INTEGER, beta TEXT)");
  t.Insert({Value::Int(1), Value::Str("x")});
  TableStats stats = ComputeTableStats(t);
  EXPECT_NE(stats.FindColumn("ALPHA"), nullptr);
  EXPECT_EQ(stats.FindColumn("gamma"), nullptr);
}

}  // namespace
}  // namespace sqlcheck
