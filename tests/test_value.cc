#include "catalog/value.h"

#include <gtest/gtest.h>

#include "catalog/data_type.h"

namespace sqlcheck {
namespace {

TEST(ValueTest, ConstructorsAndPredicates) {
  EXPECT_TRUE(Value::Null_().is_null());
  EXPECT_TRUE(Value::Int(1).is_int());
  EXPECT_TRUE(Value::Real(1.5).is_real());
  EXPECT_TRUE(Value::Str("x").is_string());
  EXPECT_TRUE(Value::Bool(true).is_bool());
  EXPECT_TRUE(Value::Int(1).is_numeric());
  EXPECT_TRUE(Value::Real(1.0).is_numeric());
  EXPECT_FALSE(Value::Str("1").is_numeric());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Int(42).AsReal(), 42.0);
  EXPECT_EQ(Value::Real(2.9).AsInt(), 2);  // truncation
  EXPECT_EQ(Value::Str("hi").AsString(), "hi");
  EXPECT_TRUE(Value::Int(1).AsBool());
  EXPECT_FALSE(Value::Int(0).AsBool());
}

TEST(ValueTest, DisplayForms) {
  EXPECT_EQ(Value::Null_().ToDisplay(), "NULL");
  EXPECT_EQ(Value::Int(7).ToDisplay(), "7");
  EXPECT_EQ(Value::Bool(true).ToDisplay(), "true");
  EXPECT_EQ(Value::Str("abc").ToDisplay(), "abc");
  EXPECT_EQ(Value::Real(2.5).ToDisplay(), "2.5");
}

TEST(ValueTest, CompareWithinTypes) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Str("b").Compare(Value::Str("a")), 0);
  EXPECT_EQ(Value::Bool(false).Compare(Value::Bool(false)), 0);
}

TEST(ValueTest, MixedIntRealCompareNumerically) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Real(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Real(2.5)), 0);
}

TEST(ValueTest, CrossTypeOrderingIsStable) {
  // NULL < bool < numeric < string.
  EXPECT_LT(Value::Null_().Compare(Value::Bool(false)), 0);
  EXPECT_LT(Value::Bool(true).Compare(Value::Int(-100)), 0);
  EXPECT_LT(Value::Int(1000).Compare(Value::Str("")), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Int(5).Hash());
  EXPECT_EQ(Value::Int(5).Hash(), Value::Real(5.0).Hash());  // compare equal too
  EXPECT_EQ(Value::Str("x").Hash(), Value::Str("x").Hash());
}

TEST(CompositeKeyTest, EqualityAndOrdering) {
  CompositeKey a{{Value::Int(1), Value::Str("x")}};
  CompositeKey b{{Value::Int(1), Value::Str("x")}};
  CompositeKey c{{Value::Int(1), Value::Str("y")}};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a < c);
  EXPECT_EQ(CompositeKeyHash{}(a), CompositeKeyHash{}(b));
}

TEST(CompositeKeyTest, PrefixOrdering) {
  CompositeKey shorter{{Value::Int(1)}};
  CompositeKey longer{{Value::Int(1), Value::Int(2)}};
  EXPECT_TRUE(shorter < longer);
  EXPECT_FALSE(longer < shorter);
}

TEST(DataTypeTest, ResolutionFromTypeNames) {
  auto resolve = [](const char* name) {
    sql::TypeName t;
    t.name = name;
    return DataType::FromTypeName(t).id;
  };
  EXPECT_EQ(resolve("int"), TypeId::kInteger);
  EXPECT_EQ(resolve("INTEGER"), TypeId::kInteger);
  EXPECT_EQ(resolve("bigint"), TypeId::kBigInt);
  EXPECT_EQ(resolve("float"), TypeId::kFloat);
  EXPECT_EQ(resolve("real"), TypeId::kFloat);
  EXPECT_EQ(resolve("double precision"), TypeId::kDouble);
  EXPECT_EQ(resolve("numeric"), TypeId::kNumeric);
  EXPECT_EQ(resolve("varchar"), TypeId::kVarchar);
  EXPECT_EQ(resolve("text"), TypeId::kText);
  EXPECT_EQ(resolve("boolean"), TypeId::kBoolean);
  EXPECT_EQ(resolve("timestamp"), TypeId::kTimestamp);
  EXPECT_EQ(resolve("timestamptz"), TypeId::kTimestampTz);
  EXPECT_EQ(resolve("serial"), TypeId::kSerial);
  EXPECT_EQ(resolve("uuid"), TypeId::kUuid);
  EXPECT_EQ(resolve("made_up_type"), TypeId::kUnknown);
}

TEST(DataTypeTest, TimestampWithTimeZoneFlag) {
  sql::TypeName t;
  t.name = "timestamp";
  t.with_time_zone = true;
  EXPECT_EQ(DataType::FromTypeName(t).id, TypeId::kTimestampTz);
}

TEST(DataTypeTest, FloatCoercionLosesPrecisionDoubleDoesNot) {
  DataType f = DataType::Make(TypeId::kFloat);
  DataType d = DataType::Make(TypeId::kDouble);
  Value v = Value::Real(0.1);
  EXPECT_NE(f.Coerce(v).AsReal(), 0.1);  // squeezed through a 32-bit float
  EXPECT_EQ(d.Coerce(v).AsReal(), 0.1);
}

TEST(DataTypeTest, AcceptsRespectsKinds) {
  EXPECT_TRUE(DataType::Make(TypeId::kInteger).Accepts(Value::Int(1)));
  EXPECT_FALSE(DataType::Make(TypeId::kInteger).Accepts(Value::Str("x")));
  EXPECT_TRUE(DataType::Make(TypeId::kText).Accepts(Value::Str("x")));
  EXPECT_FALSE(DataType::Make(TypeId::kText).Accepts(Value::Int(1)));
  // NULL is accepted everywhere (nullability is a separate constraint).
  EXPECT_TRUE(DataType::Make(TypeId::kInteger).Accepts(Value::Null_()));
}

TEST(DataTypeTest, EnumRendering) {
  sql::TypeName t;
  t.name = "enum";
  t.enum_values = {"a", "b"};
  DataType dt = DataType::FromTypeName(t);
  EXPECT_EQ(dt.id, TypeId::kEnum);
  EXPECT_EQ(dt.ToSql(), "ENUM('a', 'b')");
}

}  // namespace
}  // namespace sqlcheck
