// Round-trip property tests for the diagnosis pipeline: every kRewrite fix
// any built-in rule emits must re-parse cleanly and must no longer trigger
// the originating anti-pattern on re-analysis — checked here independently
// of the FixEngine's own verification loop, over the full table-3 synthetic
// corpus plus a database-backed workload (all fixes, not a sample). Also
// unit-tests the AST rewriter's transformations and refusals, the session's
// per-fingerprint-group fix cache, and ApplyFixes.
#include "fix/rewriter.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/query_analyzer.h"
#include "core/sqlcheck.h"
#include "engine/executor.h"
#include "fix/fix_engine.h"
#include "fix/fixer.h"
#include "fix/fixers.h"
#include "rules/registry.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "workload/corpus.h"

namespace sqlcheck {
namespace {

/// Detection types every rule reports for one parsed statement against
/// `context` (query rules only — the statement under test is not profiled).
std::set<AntiPattern> TypesFor(const sql::Statement& stmt, const RuleRegistry& registry,
                               const Context& context, const DetectorConfig& config) {
  QueryFacts facts = AnalyzeQuery(stmt);
  std::vector<Detection> out;
  for (const auto& rule : registry.rules()) {
    rule->CheckQuery(facts, context, config, &out);
  }
  std::set<AntiPattern> types;
  for (const Detection& d : out) types.insert(d.type);
  return types;
}

/// The round-trip property, asserted for every finding of `report`:
///  - every kRewrite is verified and re-parses to a recognized statement,
///  - the originating anti-pattern is gone from the rewritten statement,
///  - statement-replacing rewrites introduce no anti-pattern type the
///    original statement did not already carry.
void AssertRewritesRoundTrip(const Report& report, const Context& context) {
  RuleRegistry registry = RuleRegistry::Default();
  DetectorConfig config;
  size_t rewrites = 0;
  for (const Finding& f : report.findings) {
    const Fix& fix = f.fix;
    if (fix.kind != FixKind::kRewrite) {
      // A demoted proposal must say why.
      if (!fix.verify_note.empty()) {
        EXPECT_FALSE(fix.verified);
      }
      continue;
    }
    ++rewrites;
    EXPECT_TRUE(fix.verified) << "unverified kRewrite for " << ApName(fix.type);
    ASSERT_FALSE(fix.statements.empty());
    for (const std::string& text : fix.statements) {
      sql::StatementPtr stmt = sql::ParseStatement(text);
      ASSERT_NE(stmt, nullptr);
      EXPECT_NE(stmt->kind, sql::StatementKind::kUnknown)
          << "unparseable fix for " << ApName(fix.type) << ": " << text;
      std::set<AntiPattern> rewritten_types = TypesFor(*stmt, registry, context, config);
      EXPECT_EQ(rewritten_types.count(fix.type), 0u)
          << ApName(fix.type) << " still present after rewrite: " << text;
    }
    if (fix.replaces_original) {
      ASSERT_EQ(fix.statements.size(), 1u);
      sql::StatementPtr original = sql::ParseStatement(fix.original_sql);
      sql::StatementPtr rewritten = sql::ParseStatement(fix.statements[0]);
      ASSERT_NE(original, nullptr);
      std::set<AntiPattern> before = TypesFor(*original, registry, context, config);
      std::set<AntiPattern> after = TypesFor(*rewritten, registry, context, config);
      for (AntiPattern t : after) {
        EXPECT_EQ(before.count(t), 1u)
            << "rewrite introduced new anti-pattern " << ApName(t) << ": "
            << fix.statements[0];
      }
    }
  }
  EXPECT_GT(rewrites, 0u) << "corpus produced no rewrite fixes to check";
}

TEST(RewriteRoundTripTest, EveryRewriteOnTheTable3CorpusVerifies) {
  workload::CorpusOptions options;
  options.repo_count = 40;
  workload::Corpus corpus = workload::GenerateCorpus(options);
  SqlCheck checker;
  for (const auto& labeled : corpus.AllStatements()) checker.AddQuery(labeled.sql);
  Report report = checker.Run();
  ASSERT_FALSE(report.empty());
  AssertRewritesRoundTrip(report, checker.session().context());
}

TEST(RewriteRoundTripTest, EveryRewriteOnADatabaseBackedWorkloadVerifies) {
  // Data-analysis detections (type changes, domain constraints, redundant
  // columns, missing PKs) propose DDL fixes; they must round-trip too.
  Database db;
  Executor exec(&db);
  exec.ExecuteSql("CREATE TABLE readings (station VARCHAR(8), amount VARCHAR(12), "
                  "taken_at TIMESTAMP, filler VARCHAR(4))");
  for (int i = 0; i < 12; ++i) {
    exec.ExecuteSql("INSERT INTO readings VALUES ('s" + std::to_string(i) + "', '" +
                    std::to_string(i * 10) + "', '2020-01-0" +
                    std::to_string(1 + i % 9) + " 10:00:00', NULL)");
  }
  SqlCheck checker;
  checker.AddScript(
      "CREATE TABLE readings (station VARCHAR(8), amount VARCHAR(12), "
      "taken_at TIMESTAMP, filler VARCHAR(4));"
      "SELECT * FROM readings WHERE station = 's1';"
      "INSERT INTO readings VALUES ('s1', '10', '2020-01-01 10:00:00', NULL);");
  checker.AttachDatabase(&db);
  Report report = checker.Run();
  ASSERT_FALSE(report.empty());
  AssertRewritesRoundTrip(report, checker.session().context());
}

// ---------------------------------------------------------------------------
// Rewriter transformations
// ---------------------------------------------------------------------------

Context BuildContext(const std::string& script) {
  ContextBuilder builder;
  builder.AddScript(script);
  return builder.Build();
}

const sql::SelectStatement& LastSelect(const Context& context) {
  const auto& queries = context.queries();
  const auto* select = queries.back().stmt->As<sql::SelectStatement>();
  EXPECT_NE(select, nullptr);
  return *select;
}

TEST(RewriterTest, WildcardExpansionQualifiesMultiSourceSelects) {
  Context context = BuildContext(
      "CREATE TABLE users (id INTEGER PRIMARY KEY, name VARCHAR(10));"
      "CREATE TABLE orders (oid INTEGER PRIMARY KEY, user_id INTEGER);"
      "SELECT * FROM users u JOIN orders o ON u.id = o.user_id;");
  sql::StatementPtr fixed = ExpandWildcard(LastSelect(context), context);
  ASSERT_NE(fixed, nullptr);
  EXPECT_EQ(sql::PrintStatement(*fixed),
            "SELECT u.id, u.name, o.oid, o.user_id FROM users AS u "
            "JOIN orders AS o ON (u.id = o.user_id);");
}

TEST(RewriterTest, QualifiedStarExpandsOnlyItsOwnTable) {
  Context context = BuildContext(
      "CREATE TABLE users (id INTEGER PRIMARY KEY, name VARCHAR(10));"
      "CREATE TABLE orders (oid INTEGER PRIMARY KEY, user_id INTEGER);"
      "SELECT o.*, u.name FROM users u JOIN orders o ON u.id = o.user_id;");
  sql::StatementPtr fixed = ExpandWildcard(LastSelect(context), context);
  ASSERT_NE(fixed, nullptr);
  std::string printed = sql::PrintStatement(*fixed);
  EXPECT_NE(printed.find("SELECT o.oid, o.user_id, u.name"), std::string::npos)
      << printed;
}

TEST(RewriterTest, WildcardExpansionRefusesUnknownAndSubquerySources) {
  Context unknown = BuildContext("SELECT * FROM mystery;");
  EXPECT_EQ(ExpandWildcard(LastSelect(unknown), unknown), nullptr);

  Context sub = BuildContext(
      "CREATE TABLE t (a INTEGER PRIMARY KEY);"
      "SELECT * FROM (SELECT a FROM t) AS inner_t;");
  EXPECT_EQ(ExpandWildcard(LastSelect(sub), sub), nullptr);
}

TEST(RewriterTest, OrderByRandBecomesKeyRangeProbe) {
  Context context = BuildContext(
      "CREATE TABLE users (id INTEGER PRIMARY KEY, name VARCHAR(10));"
      "SELECT name FROM users ORDER BY RAND() LIMIT 1;");
  sql::StatementPtr fixed = ReplaceOrderByRand(LastSelect(context), context);
  ASSERT_NE(fixed, nullptr);
  std::string printed = sql::PrintStatement(*fixed);
  EXPECT_NE(printed.find("id >= (SELECT FLOOR((RAND() * MAX(id))) FROM users)"),
            std::string::npos)
      << printed;
  EXPECT_NE(printed.find("ORDER BY id LIMIT 1"), std::string::npos) << printed;
  // The probe must re-parse and must not read as ORDER BY RAND anymore.
  sql::StatementPtr reparsed = sql::ParseStatement(printed);
  ASSERT_NE(reparsed, nullptr);
  EXPECT_EQ(reparsed->kind, sql::StatementKind::kSelect);
  EXPECT_FALSE(AnalyzeQuery(*reparsed).order_by_rand);
}

TEST(RewriterTest, OrderByRandRefusesShufflesAndCompositeKeys) {
  // No LIMIT: the statement is a full shuffle; the probe form is not
  // equivalent.
  Context shuffle = BuildContext(
      "CREATE TABLE users (id INTEGER PRIMARY KEY, name VARCHAR(10));"
      "SELECT name FROM users ORDER BY RAND();");
  EXPECT_EQ(ReplaceOrderByRand(LastSelect(shuffle), shuffle), nullptr);

  Context composite = BuildContext(
      "CREATE TABLE pairs (a INTEGER, b INTEGER, PRIMARY KEY (a, b));"
      "SELECT a FROM pairs ORDER BY RAND() LIMIT 1;");
  EXPECT_EQ(ReplaceOrderByRand(LastSelect(composite), composite), nullptr);
}

TEST(RewriterTest, LeadingWildcardLikeReversesLiteralTails) {
  Context context = BuildContext(
      "CREATE TABLE users (id INTEGER PRIMARY KEY, email VARCHAR(40));"
      "SELECT id FROM users WHERE email LIKE '%@example.com';");
  sql::StatementPtr fixed = RewriteLeadingWildcards(LastSelect(context));
  ASSERT_NE(fixed, nullptr);
  std::string printed = sql::PrintStatement(*fixed);
  EXPECT_NE(printed.find("REVERSE(email) LIKE 'moc.elpmaxe@%'"), std::string::npos)
      << printed;
  // Reversal preserves the match set boundary: the pattern is now a prefix.
  sql::StatementPtr reparsed = sql::ParseStatement(printed);
  QueryFacts facts = AnalyzeQuery(*reparsed);
  for (const auto& p : facts.patterns) EXPECT_FALSE(p.leading_wildcard);
}

TEST(RewriterTest, LikeReversalRefusesInfixUnderscoreAndUtf8Patterns) {
  const char* cases[] = {
      "SELECT id FROM users WHERE email LIKE '%a%b';",   // second wildcard
      "SELECT id FROM users WHERE email LIKE '%a_b';",   // _ wildcard
      "SELECT id FROM users WHERE email LIKE 'abc%';",   // already a prefix
      "SELECT id FROM users WHERE email LIKE '%caf\xc3\xa9';",  // UTF-8 tail
  };
  for (const char* sql_text : cases) {
    Context context = BuildContext(
        std::string("CREATE TABLE users (id INTEGER PRIMARY KEY, email "
                    "VARCHAR(40));") +
        sql_text);
    EXPECT_EQ(RewriteLeadingWildcards(LastSelect(context)), nullptr) << sql_text;
  }
}

TEST(RewriterTest, ConcatWrapRefusesWhenNoOperandIsReachable) {
  // The concat lives in ORDER BY, which the transformation does not touch:
  // proposing the unchanged statement as a "rewrite" would claim an action
  // that never happened; the fixer must fall back to guidance instead.
  Context context = BuildContext(
      "CREATE TABLE t (k INTEGER PRIMARY KEY, a VARCHAR(5), b VARCHAR(5));"
      "SELECT k FROM t ORDER BY a || b;");
  EXPECT_EQ(WrapConcatNulls(LastSelect(context), context), nullptr);

  SqlCheck checker;
  checker.AddScript(
      "CREATE TABLE t (k INTEGER PRIMARY KEY, a VARCHAR(5), b VARCHAR(5));"
      "SELECT k FROM t ORDER BY a || b;");
  for (const Finding& f : checker.Run().findings) {
    if (f.ranked.detection.type != AntiPattern::kConcatenateNulls) continue;
    EXPECT_EQ(f.fix.kind, FixKind::kTextual);
    EXPECT_EQ(f.fix.explanation,
              "wrap nullable columns in COALESCE(col, '') before concatenating");
  }
}

TEST(RewriterTest, InsertExpansionRefusesArityMismatch) {
  Context context = BuildContext(
      "CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR(5), c VARCHAR(5));"
      "INSERT INTO t VALUES (1, 'x');");
  const auto* insert = context.queries().back().stmt->As<sql::InsertStatement>();
  ASSERT_NE(insert, nullptr);
  EXPECT_EQ(ExpandInsertColumns(*insert, context), nullptr);
}

// ---------------------------------------------------------------------------
// Verification loop
// ---------------------------------------------------------------------------

TEST(VerifyRewriteTest, RejectsUnparseableAndStillBrokenRewrites) {
  Context context = BuildContext("CREATE TABLE t (a INTEGER PRIMARY KEY);");
  RuleRegistry registry = RuleRegistry::Default();
  const Rule* wildcard = registry.FindRule(AntiPattern::kColumnWildcard);
  ASSERT_NE(wildcard, nullptr);

  Fix garbled;
  garbled.type = AntiPattern::kColumnWildcard;
  garbled.kind = FixKind::kRewrite;
  garbled.statements = {"SELEKT ( FROM"};
  RewriteCheck check = VerifyRewrite(garbled, wildcard, context, DetectorConfig{});
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.reason.find("re-parse"), std::string::npos);

  Fix still_broken;
  still_broken.type = AntiPattern::kColumnWildcard;
  still_broken.kind = FixKind::kRewrite;
  still_broken.statements = {"SELECT * FROM t;"};
  check = VerifyRewrite(still_broken, wildcard, context, DetectorConfig{});
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.reason.find("still triggers"), std::string::npos);

  Fix clean;
  clean.type = AntiPattern::kColumnWildcard;
  clean.kind = FixKind::kRewrite;
  clean.statements = {"SELECT a FROM t;"};
  EXPECT_TRUE(VerifyRewrite(clean, wildcard, context, DetectorConfig{}).ok);
}

TEST(VerifyRewriteTest, EngineDemotesFailingProposalsWithReason) {
  /// A deliberately broken action half: proposes the offending statement
  /// itself as the "fix".
  class IdentityFixer final : public Fixer {
   public:
    AntiPattern type() const override { return AntiPattern::kColumnWildcard; }
    Fix Propose(const Detection& d, const Context&) const override {
      Fix fix;
      fix.type = d.type;
      fix.original_sql = d.query;
      fix.kind = FixKind::kRewrite;
      fix.replaces_original = true;
      fix.statements.push_back(d.query + ";");
      return fix;
    }
  };
  RuleRegistry registry = RuleRegistry::Default();
  registry.RegisterFixer(std::make_unique<IdentityFixer>());  // overrides builtin

  Context context = BuildContext(
      "CREATE TABLE t (a INTEGER PRIMARY KEY);"
      "SELECT * FROM t;");
  auto detections = DetectAntiPatterns(context, DetectorConfig{});
  FixEngine engine(registry, DetectorConfig{});
  bool saw_wildcard = false;
  for (const Detection& d : detections) {
    if (d.type != AntiPattern::kColumnWildcard) continue;
    saw_wildcard = true;
    Fix fix = engine.SuggestFix(d, context);
    EXPECT_EQ(fix.kind, FixKind::kTextual);  // demoted
    EXPECT_FALSE(fix.verified);
    EXPECT_NE(fix.verify_note.find("still triggers"), std::string::npos)
        << fix.verify_note;
  }
  EXPECT_TRUE(saw_wildcard);
}

// ---------------------------------------------------------------------------
// Session fix cache + provenance + impacted queries
// ---------------------------------------------------------------------------

TEST(SessionFixCacheTest, StatementLocalFixesReplayAcrossDuplicates) {
  AnalysisSession session;
  // Pattern-matching fixes are statement-local on both halves; the three
  // occurrences share one cache row.
  session.AddScript(
      "SELECT id FROM users WHERE email LIKE '%@example.com';"
      "SELECT id FROM users WHERE email LIKE '%@example.com';"
      "select id from users where email like '%@example.com';");
  Report report = session.Snapshot();
  ASSERT_EQ(report.size(), 3u);
  EXPECT_GT(session.fix_cache_hits(), 0u);
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.fix.kind, FixKind::kRewrite);
    EXPECT_TRUE(f.fix.verified);
    // The replayed fix is rebased onto each occurrence's own raw text.
    EXPECT_EQ(f.fix.original_sql, f.ranked.detection.query);
  }
  // Replayed fixes must equal what a cold engine computes.
  SqlCheck batch;
  batch.AddScript(
      "SELECT id FROM users WHERE email LIKE '%@example.com';"
      "SELECT id FROM users WHERE email LIKE '%@example.com';"
      "select id from users where email like '%@example.com';");
  EXPECT_EQ(report.ToJson(), batch.Run().ToJson());
}

TEST(FixProvenanceTest, DataAntiPatternFixesAnchorToTheOwningTable) {
  Database db;
  Executor exec(&db);
  exec.ExecuteSql("CREATE TABLE m (k INTEGER, price FLOAT, stamp TIMESTAMP)");
  for (int i = 0; i < 8; ++i) {
    exec.ExecuteSql("INSERT INTO m VALUES (" + std::to_string(i) +
                    ", 1.5, '2020-01-01 10:00:00')");
  }
  SqlCheck checker;
  checker.AddScript("CREATE TABLE m (k INTEGER, price FLOAT, stamp TIMESTAMP);");
  checker.AttachDatabase(&db);
  Report report = checker.Run();
  bool saw_data_fix = false;
  for (const Finding& f : report.findings) {
    if (f.ranked.detection.source != DetectionSource::kDataAnalysis) continue;
    saw_data_fix = true;
    // Anchored to the owning table's DDL (present in this workload), never "".
    EXPECT_EQ(f.fix.original_sql,
              "CREATE TABLE m (k INTEGER, price FLOAT, stamp TIMESTAMP)");
  }
  EXPECT_TRUE(saw_data_fix);
}

TEST(ImpactedQueriesTest, IndexedLookupMatchesFullScanDigest) {
  // Satellite: Algorithm 4's I set must be identical whether answered by the
  // WorkloadStats per-table index or a full workload scan.
  const char* kScript =
      "CREATE TABLE tenants (tenant_id VARCHAR(8) PRIMARY KEY, user_ids TEXT);"
      "CREATE TABLE other (k INTEGER PRIMARY KEY);"
      "SELECT tenant_id FROM tenants WHERE user_ids LIKE '%,U2,%';"
      "SELECT * FROM tenants WHERE user_ids LIKE '[[:<:]]U1[[:>:]]';"
      "SELECT k FROM other WHERE k = 1;"
      "UPDATE tenants SET user_ids = '' WHERE tenant_id = 't1';";
  ContextBuilder builder;
  builder.AddScript(kScript);
  Context context = builder.Build();
  auto detections = DetectAntiPatterns(context, DetectorConfig{});
  RuleRegistry registry = RuleRegistry::Default();
  FixEngine engine(registry);

  auto digest = [](const std::vector<std::string>& queries) {
    uint64_t h = 1469598103934665603ull;
    for (const auto& q : queries) {
      for (char c : q) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
      }
      h ^= 0xff;
      h *= 1099511628211ull;
    }
    return h;
  };

  bool saw_impacted = false;
  for (const Detection& d : detections) {
    Fix fix = engine.SuggestFix(d, context);
    if (fix.impacted_queries.empty()) continue;
    saw_impacted = true;
    // Reference: brute-force scan over every statement's facts.
    std::vector<std::string> reference;
    for (const QueryFacts& facts : context.queries()) {
      if (facts.raw_sql.empty() || facts.raw_sql == d.query) continue;
      if (facts.kind == sql::StatementKind::kCreateTable ||
          facts.kind == sql::StatementKind::kCreateIndex) {
        continue;
      }
      if (facts.ReferencesTable(d.table)) reference.emplace_back(facts.raw_sql);
    }
    EXPECT_EQ(digest(fix.impacted_queries), digest(reference))
        << "impacted-query set diverged for " << ApName(d.type);
  }
  EXPECT_TRUE(saw_impacted);
}

// ---------------------------------------------------------------------------
// ApplyFixes
// ---------------------------------------------------------------------------

TEST(ApplyFixesTest, RewrittenWorkloadReportsStrictlyFewerDetections) {
  const char* kScript =
      "CREATE TABLE users (user_id INTEGER PRIMARY KEY, name VARCHAR(40), "
      "email VARCHAR(40));"
      "SELECT * FROM users WHERE user_id = 1;"
      "SELECT user_id FROM users WHERE email LIKE '%@example.com';"
      "INSERT INTO users VALUES (1, 'ada', 'ada@example.com');";
  SqlCheck checker;
  checker.AddScript(kScript);
  Report before = checker.Run();
  ASSERT_FALSE(before.empty());

  size_t applied = 0;
  std::string rewritten = ApplyFixes(checker.session().context(), before, &applied);
  EXPECT_GE(applied, 3u);

  SqlCheck again;
  again.AddScript(rewritten);
  Report after = again.Run();
  EXPECT_LT(after.size(), before.size()) << rewritten;
}

TEST(ApplyFixesTest, HighestRankedRewriteWinsPerStatement) {
  // One statement carrying two rewritable anti-patterns: the fix attached to
  // the higher-ranked finding must be the one applied.
  SqlCheck checker;
  checker.AddScript(
      "CREATE TABLE users (user_id INTEGER PRIMARY KEY, email VARCHAR(40));"
      "SELECT * FROM users WHERE email LIKE '%@example.com';");
  Report report = checker.Run();
  const Fix* expected = nullptr;
  for (const Finding& f : report.findings) {
    if (f.fix.kind == FixKind::kRewrite && f.fix.replaces_original) {
      expected = &f.fix;
      break;  // findings are in rank order
    }
  }
  ASSERT_NE(expected, nullptr);
  std::string rewritten = ApplyFixes(checker.session().context(), report);
  EXPECT_NE(rewritten.find(expected->statements[0]), std::string::npos) << rewritten;
}

}  // namespace
}  // namespace sqlcheck
