// Tier-3 differential execution tests: the VerifyByExecution pipeline in
// isolation (ephemeral database construction, schema synthesis, contract
// semantics, divergence diagnostics), the FixEngine's tiered demotion policy
// around it (including --verify-exec required), the session-level verdict
// memo, and the table-3 corpus property that every surviving kRewrite still
// verifies — with Tier 3 engaged — under more than one seed.
#include "fix/verify_exec.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/context.h"
#include "core/session.h"
#include "core/sqlcheck.h"
#include "fix/fix_engine.h"
#include "fix/fixer.h"
#include "rules/registry.h"
#include "workload/corpus.h"

namespace sqlcheck {
namespace {

using Outcome = ExecCheck::Outcome;

Context BuildContext(const std::string& script) {
  ContextBuilder builder;
  builder.AddScript(script);
  return builder.Build();
}

/// A statement-replacing rewrite proposal, ready for VerifyByExecution.
Fix MakeRewrite(const std::string& original, const std::string& rewritten) {
  Fix fix;
  fix.type = AntiPattern::kColumnWildcard;  // any type; Tier 3 keys on SQL
  fix.kind = FixKind::kRewrite;
  fix.replaces_original = true;
  fix.original_sql = original;
  fix.statements = {rewritten};
  return fix;
}

ExecCheck RunCheck(const std::string& script, const Fix& fix,
                   EquivalenceContract contract,
                   ExecVerifyOptions options = {}) {
  Context context = BuildContext(script);
  if (options.mode == ExecVerifyMode::kOff) options.mode = ExecVerifyMode::kOn;
  return VerifyByExecution(fix, contract, context, options);
}

constexpr const char* kUsersDdl =
    "CREATE TABLE users (id INTEGER PRIMARY KEY, name VARCHAR(20), "
    "bio VARCHAR(40));";

// ---------------------------------------------------------------------------
// Gating: when Tier 3 does not apply at all
// ---------------------------------------------------------------------------

TEST(VerifyExecTest, NotApplicableContractSkips) {
  Fix fix = MakeRewrite("SELECT * FROM users", "SELECT id FROM users;");
  ExecCheck check =
      RunCheck(kUsersDdl, fix, EquivalenceContract::kNotApplicable);
  EXPECT_EQ(check.outcome, Outcome::kSkipped);
}

TEST(VerifyExecTest, AdditiveNonReplacingFixSkips) {
  // DDL advice (e.g. "CREATE INDEX ...") augments the workload rather than
  // replacing a statement; there is no pair of sides to compare.
  Fix fix = MakeRewrite("SELECT * FROM users", "CREATE INDEX i ON users (name);");
  fix.replaces_original = false;
  ExecCheck check = RunCheck(kUsersDdl, fix, EquivalenceContract::kExactOrdered);
  EXPECT_EQ(check.outcome, Outcome::kSkipped);
}

// ---------------------------------------------------------------------------
// SELECT rewrites: exact-ordered and multiset contracts
// ---------------------------------------------------------------------------

TEST(VerifyExecTest, EquivalentWildcardExpansionPasses) {
  Fix fix = MakeRewrite("SELECT * FROM users",
                        "SELECT id, name, bio FROM users;");
  ExecCheck check = RunCheck(kUsersDdl, fix, EquivalenceContract::kExactOrdered);
  EXPECT_EQ(check.outcome, Outcome::kEquivalent) << check.note;
  EXPECT_TRUE(check.note.empty());
}

TEST(VerifyExecTest, RowCountDivergenceIsDiagnosed) {
  // The rewrite silently filters everything out: same shape, fewer rows.
  Fix fix = MakeRewrite("SELECT id FROM users",
                        "SELECT id FROM users WHERE 1 = 0;");
  ExecCheck check = RunCheck(kUsersDdl, fix, EquivalenceContract::kExactOrdered);
  EXPECT_EQ(check.outcome, Outcome::kDivergent);
  EXPECT_NE(check.note.find("row counts differ"), std::string::npos) << check.note;
}

TEST(VerifyExecTest, ColumnCountDivergenceIsDiagnosed) {
  Fix fix = MakeRewrite("SELECT id, name FROM users", "SELECT id FROM users;");
  ExecCheck check = RunCheck(kUsersDdl, fix, EquivalenceContract::kExactOrdered);
  EXPECT_EQ(check.outcome, Outcome::kDivergent);
  EXPECT_NE(check.note.find("column counts differ"), std::string::npos)
      << check.note;
}

TEST(VerifyExecTest, OrderingDivergenceRespectsTheContract) {
  // Same multiset of rows, opposite order: the exact-ordered contract must
  // reject the rewrite and name the first differing position; the multiset
  // contract must accept it. This is precisely why PatternMatching declares
  // kMultiset — REVERSE-LIKE rewrites preserve the row set, not the order.
  Fix fix = MakeRewrite("SELECT id FROM users ORDER BY id",
                        "SELECT id FROM users ORDER BY id DESC;");
  ExecCheck strict = RunCheck(kUsersDdl, fix, EquivalenceContract::kExactOrdered);
  EXPECT_EQ(strict.outcome, Outcome::kDivergent);
  EXPECT_NE(strict.note.find("first differing row"), std::string::npos)
      << strict.note;

  ExecCheck loose = RunCheck(kUsersDdl, fix, EquivalenceContract::kMultiset);
  EXPECT_EQ(loose.outcome, Outcome::kEquivalent) << loose.note;
}

TEST(VerifyExecTest, PredicateDataIsPlantedSoFiltersSelectRows) {
  // The generator plants harvested literals: a predicate over a constant
  // must match at least one generated row, or equivalence checks would
  // trivially compare empty sets. Divergence on the filtered column proves
  // the planted rows exist.
  Fix fix = MakeRewrite("SELECT id FROM users WHERE name = 'smith'",
                        "SELECT id FROM users WHERE name <> 'smith';");
  ExecCheck check = RunCheck(kUsersDdl, fix, EquivalenceContract::kMultiset);
  EXPECT_EQ(check.outcome, Outcome::kDivergent) << check.note;
}

TEST(VerifyExecTest, DocumentedDivergenceOnlyRequiresBothSidesToExecute) {
  // ORDER BY RAND -> key-range probe: the row sets intentionally differ, so
  // the contract only demands that both sides run on the populated tables.
  Fix fix = MakeRewrite(
      "SELECT * FROM users ORDER BY RAND() LIMIT 1",
      "SELECT * FROM users WHERE (id >= (SELECT FLOOR((RAND() * MAX(id))) "
      "FROM users)) ORDER BY id LIMIT 1;");
  ExecCheck check =
      RunCheck(kUsersDdl, fix, EquivalenceContract::kDocumentedDivergence);
  EXPECT_EQ(check.outcome, Outcome::kEquivalent) << check.note;

  // ...but a rewrite that cannot execute still fails loudly.
  Fix broken = MakeRewrite("SELECT id FROM users",
                           "SELECT NO_SUCH_FN(id) FROM users;");
  check = RunCheck(kUsersDdl, broken, EquivalenceContract::kDocumentedDivergence);
  EXPECT_EQ(check.outcome, Outcome::kDivergent);
  EXPECT_NE(check.note.find("failed to execute"), std::string::npos) << check.note;
}

// ---------------------------------------------------------------------------
// Feasibility boundaries
// ---------------------------------------------------------------------------

TEST(VerifyExecTest, OriginalThatCannotExecuteIsInfeasibleNotDivergent) {
  // An engine limitation on the *original* side is not evidence against the
  // rewrite; policy (on vs required) decides what happens to the fix.
  Fix fix = MakeRewrite("SELECT NO_SUCH_FN(id) FROM users",
                        "SELECT id FROM users;");
  ExecCheck check = RunCheck(kUsersDdl, fix, EquivalenceContract::kExactOrdered);
  EXPECT_EQ(check.outcome, Outcome::kInfeasible);
  EXPECT_NE(check.note.find("original"), std::string::npos) << check.note;
}

TEST(VerifyExecTest, SchemaIsSynthesizedWhenTheWorkloadHasNoDdl) {
  // No CREATE TABLE anywhere: the verifier invents a schema from the
  // statement's own column references and still reaches a verdict.
  Fix fix = MakeRewrite("SELECT id, label FROM ghost WHERE id = 3",
                        "SELECT id, label FROM ghost WHERE (id = 3);");
  ExecCheck check = RunCheck("SELECT id, label FROM ghost WHERE id = 3;", fix,
                             EquivalenceContract::kExactOrdered);
  EXPECT_EQ(check.outcome, Outcome::kEquivalent) << check.note;

  Fix divergent = MakeRewrite("SELECT id, label FROM ghost WHERE id = 3",
                              "SELECT id, label FROM ghost;");
  check = RunCheck("SELECT id, label FROM ghost WHERE id = 3;", divergent,
                   EquivalenceContract::kExactOrdered);
  EXPECT_EQ(check.outcome, Outcome::kDivergent) << check.note;
}

TEST(VerifyExecTest, DeterministicAcrossRunsAndSensitiveToSeed) {
  Fix fix = MakeRewrite("SELECT id FROM users WHERE name LIKE '%ith'",
                        "SELECT id FROM users WHERE (REVERSE(name) LIKE 'hti%');");
  for (uint64_t seed : {42u, 7u, 1234567u}) {
    ExecVerifyOptions options;
    options.mode = ExecVerifyMode::kOn;
    options.seed = seed;
    ExecCheck first = RunCheck(kUsersDdl, fix, EquivalenceContract::kMultiset,
                               options);
    ExecCheck second = RunCheck(kUsersDdl, fix, EquivalenceContract::kMultiset,
                                options);
    EXPECT_EQ(first.outcome, second.outcome) << "seed " << seed;
    EXPECT_EQ(first.note, second.note) << "seed " << seed;
    EXPECT_EQ(first.outcome, Outcome::kEquivalent)
        << "seed " << seed << ": " << first.note;
  }
}

// ---------------------------------------------------------------------------
// DML rewrites: table-state comparison across two ephemeral databases
// ---------------------------------------------------------------------------

TEST(VerifyExecTest, UpdateRewriteComparedByFinalTableState) {
  Fix same = MakeRewrite("UPDATE users SET bio = 'x' WHERE id = 1",
                         "UPDATE users SET bio = 'x' WHERE (id = 1);");
  ExecCheck check = RunCheck(kUsersDdl, same, EquivalenceContract::kExactOrdered);
  EXPECT_EQ(check.outcome, Outcome::kEquivalent) << check.note;

  // Dropping the predicate rewrites every row: the final states differ.
  Fix broad = MakeRewrite("UPDATE users SET bio = 'x' WHERE id = 1",
                          "UPDATE users SET bio = 'x';");
  check = RunCheck(kUsersDdl, broad, EquivalenceContract::kExactOrdered);
  EXPECT_EQ(check.outcome, Outcome::kDivergent);
  EXPECT_NE(check.note.find("table state diverged"), std::string::npos)
      << check.note;
}

TEST(VerifyExecTest, InsertRewriteComparedByFinalTableState) {
  Fix same = MakeRewrite("INSERT INTO users VALUES (981, 'zed', 'hi')",
                         "INSERT INTO users (id, name, bio) "
                         "VALUES (981, 'zed', 'hi');");
  ExecCheck check = RunCheck(kUsersDdl, same, EquivalenceContract::kExactOrdered);
  EXPECT_EQ(check.outcome, Outcome::kEquivalent) << check.note;

  Fix different = MakeRewrite("INSERT INTO users VALUES (981, 'zed', 'hi')",
                              "INSERT INTO users (id, name, bio) "
                              "VALUES (981, 'zed', 'bye');");
  check = RunCheck(kUsersDdl, different, EquivalenceContract::kExactOrdered);
  EXPECT_EQ(check.outcome, Outcome::kDivergent) << check.note;
}

// ---------------------------------------------------------------------------
// FixEngine policy: demotion, required mode, memoization
// ---------------------------------------------------------------------------

/// Proposes a rewrite that passes Tiers 1-2 (parses, no wildcard left) but
/// returns a different result set — only Tier 3 can catch it.
class DropAllRowsFixer final : public Fixer {
 public:
  AntiPattern type() const override { return AntiPattern::kColumnWildcard; }
  EquivalenceContract equivalence() const override {
    return EquivalenceContract::kExactOrdered;
  }
  Fix Propose(const Detection& d, const Context&) const override {
    Fix fix;
    fix.type = d.type;
    fix.original_sql = d.query;
    fix.kind = FixKind::kRewrite;
    fix.replaces_original = true;
    fix.statements = {"SELECT id FROM users WHERE 1 = 0;"};
    return fix;
  }
};

TEST(VerifyExecEngineTest, DivergentProposalIsDemotedWithDiagnostic) {
  RuleRegistry registry = RuleRegistry::Default();
  registry.RegisterFixer(std::make_unique<DropAllRowsFixer>());

  Context context = BuildContext(std::string(kUsersDdl) + "SELECT * FROM users;");
  auto detections = DetectAntiPatterns(context, DetectorConfig{});
  ExecVerifyOptions exec;
  exec.mode = ExecVerifyMode::kOn;
  VerifyStats stats;
  FixEngine counting(registry, DetectorConfig{}, exec, nullptr, &stats);
  bool saw_wildcard = false;
  for (const Detection& d : detections) {
    if (d.type != AntiPattern::kColumnWildcard) continue;
    saw_wildcard = true;
    Fix fix = counting.SuggestFix(d, context);
    EXPECT_EQ(fix.kind, FixKind::kTextual);  // demoted by Tier 3
    EXPECT_FALSE(fix.verified);
    EXPECT_EQ(fix.verify_tier, VerifyTier::kNone);
    EXPECT_NE(fix.verify_note.find("differential execution"), std::string::npos)
        << fix.verify_note;
    EXPECT_NE(fix.verify_note.find("exact-ordered"), std::string::npos)
        << fix.verify_note;
  }
  EXPECT_TRUE(saw_wildcard);
  EXPECT_GE(stats.demoted, 1u);
  EXPECT_GE(stats.exec_runs, 1u);
}

TEST(VerifyExecEngineTest, RequiredModeDemotesInfeasibleOnKeepsTierTwo) {
  // The original statement calls a function the embedded engine lacks, so
  // Tier 3 is infeasible. `on` keeps the Tier-2 verdict; `required` refuses
  // to bless what it could not execute.
  const std::string script = std::string(kUsersDdl) +
                             "SELECT * FROM users WHERE SOUNDEX(name) = 'S530';";
  RuleRegistry registry = RuleRegistry::Default();
  Context context = BuildContext(script);
  auto detections = DetectAntiPatterns(context, DetectorConfig{});

  for (ExecVerifyMode mode : {ExecVerifyMode::kOn, ExecVerifyMode::kRequired}) {
    ExecVerifyOptions exec;
    exec.mode = mode;
    VerifyStats stats;
    FixEngine engine(registry, DetectorConfig{}, exec, nullptr, &stats);
    bool saw_wildcard = false;
    for (const Detection& d : detections) {
      if (d.type != AntiPattern::kColumnWildcard) continue;
      saw_wildcard = true;
      Fix fix = engine.SuggestFix(d, context);
      if (mode == ExecVerifyMode::kOn) {
        EXPECT_EQ(fix.kind, FixKind::kRewrite);
        EXPECT_TRUE(fix.verified);
        EXPECT_EQ(fix.verify_tier, VerifyTier::kAnalysis);
      } else {
        EXPECT_EQ(fix.kind, FixKind::kTextual);
        EXPECT_FALSE(fix.verified);
        EXPECT_NE(fix.verify_note.find("required but infeasible"),
                  std::string::npos)
            << fix.verify_note;
      }
    }
    EXPECT_TRUE(saw_wildcard);
    EXPECT_GE(stats.exec_infeasible, 1u);
  }
}

TEST(VerifyExecEngineTest, SessionMemoizesVerdictsAcrossSnapshots) {
  SqlCheckOptions options;
  options.verify_exec.mode = ExecVerifyMode::kOn;
  AnalysisSession session(options);
  session.AddScript(std::string(kUsersDdl) + "SELECT * FROM users;");
  Report first = session.Snapshot();
  const uint64_t runs_after_first = session.verify_stats().exec_runs;
  EXPECT_GE(runs_after_first, 1u);
  EXPECT_EQ(session.verify_stats().memo_hits, 0u);

  Report second = session.Snapshot();
  EXPECT_EQ(first.findings.size(), second.findings.size());
  // The second snapshot re-suggests the same fixes: all memo hits, no new
  // executions.
  EXPECT_GE(session.verify_stats().memo_hits, 1u);
  EXPECT_EQ(session.verify_stats().exec_runs, runs_after_first);
}

// ---------------------------------------------------------------------------
// Corpus property: the table-3 workload under multiple seeds
// ---------------------------------------------------------------------------

/// (type, query) detection identity of a report, for cross-run comparison.
std::vector<std::pair<AntiPattern, std::string>> DetectionSignature(
    const Report& report) {
  std::vector<std::pair<AntiPattern, std::string>> sig;
  sig.reserve(report.findings.size());
  for (const Finding& f : report.findings) {
    sig.emplace_back(f.ranked.detection.type, f.ranked.detection.query);
  }
  return sig;
}

TEST(VerifyExecCorpusTest, EverySurvivingRewriteVerifiesUnderTwoSeeds) {
  workload::CorpusOptions corpus_options;
  corpus_options.repo_count = 40;
  workload::Corpus corpus = workload::GenerateCorpus(corpus_options);

  std::vector<std::pair<AntiPattern, std::string>> baseline_sig;
  {
    SqlCheck baseline;  // verification off
    for (const auto& labeled : corpus.AllStatements()) baseline.AddQuery(labeled.sql);
    baseline_sig = DetectionSignature(baseline.Run());
    ASSERT_FALSE(baseline_sig.empty());
  }

  for (uint64_t seed : {42u, 7u}) {
    SqlCheckOptions options;
    options.verify_exec.mode = ExecVerifyMode::kOn;
    options.verify_exec.seed = seed;
    SqlCheck checker(options);
    for (const auto& labeled : corpus.AllStatements()) checker.AddQuery(labeled.sql);
    Report report = checker.Run();

    // Tier 3 must not perturb detection or ranking: same findings, same
    // order, regardless of seed.
    EXPECT_EQ(DetectionSignature(report), baseline_sig) << "seed " << seed;

    size_t exec_verified = 0;
    for (const Finding& f : report.findings) {
      const Fix& fix = f.fix;
      if (fix.kind != FixKind::kRewrite) {
        if (!fix.verify_note.empty()) {
          EXPECT_FALSE(fix.verified);
        }
        continue;
      }
      // The surviving-rewrite property: still verified, at Tier 2 at worst
      // (infeasible cases keep their analysis-tier verdict under `on`), and
      // never carrying a divergence note.
      EXPECT_TRUE(fix.verified) << ApName(fix.type) << " seed " << seed;
      EXPECT_TRUE(fix.verify_tier == VerifyTier::kAnalysis ||
                  fix.verify_tier == VerifyTier::kExec)
          << ApName(fix.type) << " seed " << seed;
      EXPECT_TRUE(fix.verify_note.empty()) << fix.verify_note;
      if (fix.verify_tier == VerifyTier::kExec) ++exec_verified;
    }
    EXPECT_GT(exec_verified, 0u)
        << "corpus produced no Tier-3-verified rewrites at seed " << seed;

    const VerifyStats& stats = checker.session().verify_stats();
    EXPECT_GT(stats.exec_runs, 0u);
    EXPECT_EQ(stats.tier_exec, exec_verified);
  }
}

}  // namespace
}  // namespace sqlcheck
