#include <gtest/gtest.h>

#include "baseline/dbdeo.h"
#include "workload/corpus.h"
#include "workload/django.h"
#include "workload/globaleaks.h"
#include "workload/kaggle.h"
#include "workload/user_study.h"
#include "engine/executor.h"

namespace sqlcheck {
namespace {

TEST(DbdeoTest, SupportsElevenTypes) {
  EXPECT_EQ(Dbdeo::SupportedTypes().size(), 11u);
}

TEST(DbdeoTest, DetectsObviousSmells) {
  Dbdeo dbdeo;
  auto has = [&](const std::string& sql_text, AntiPattern type) {
    for (const auto& d : dbdeo.Check(sql_text)) {
      if (d.type == type) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("CREATE TABLE t (a INT)", AntiPattern::kNoPrimaryKey));
  EXPECT_TRUE(has("CREATE TABLE t (s ENUM('a','b'))", AntiPattern::kEnumeratedTypes));
  EXPECT_TRUE(has("CREATE TABLE t (x FLOAT)", AntiPattern::kRoundingErrors));
  EXPECT_TRUE(has("SELECT a FROM t WHERE b LIKE '%x%'", AntiPattern::kPatternMatching));
  EXPECT_TRUE(has("CREATE TABLE logs_2019 (k INT PRIMARY KEY)", AntiPattern::kCloneTable));
}

TEST(DbdeoTest, ContextFreeFalsePositives) {
  Dbdeo dbdeo;
  // 'enum' inside an identifier still fires — the precision gap sqlcheck
  // closes (Table 2).
  bool fired = false;
  for (const auto& d : dbdeo.Check("SELECT enumeration_state FROM t WHERE k = 1")) {
    if (d.type == AntiPattern::kEnumeratedTypes) fired = true;
  }
  EXPECT_TRUE(fired);
  // Filtered SELECT flagged as index underuse without seeing the CREATE INDEX
  // elsewhere in the application.
  fired = false;
  for (const auto& d : dbdeo.Check("SELECT a FROM t WHERE status = 'open'")) {
    if (d.type == AntiPattern::kIndexUnderuse) fired = true;
  }
  EXPECT_TRUE(fired);
}

TEST(CorpusTest, DeterministicForSeed) {
  workload::CorpusOptions options;
  options.repo_count = 5;
  auto a = GenerateCorpus(options);
  auto b = GenerateCorpus(options);
  ASSERT_EQ(a.StatementCount(), b.StatementCount());
  auto sa = a.AllStatements();
  auto sb = b.AllStatements();
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].sql, sb[i].sql);
  }
  options.seed = 99;
  auto c = GenerateCorpus(options);
  EXPECT_NE(a.StatementCount(), c.StatementCount());
}

TEST(CorpusTest, GroundTruthLabelsArePresent) {
  workload::CorpusOptions options;
  options.repo_count = 40;
  auto corpus = GenerateCorpus(options);
  size_t labeled = 0;
  for (const auto& stmt : corpus.AllStatements()) {
    labeled += stmt.truth.empty() ? 0 : 1;
  }
  EXPECT_GT(labeled, 0u);
  EXPECT_LT(labeled, corpus.StatementCount());  // negatives exist too
}

TEST(CorpusTest, ScoreDetectionsCountsMatches) {
  workload::CorpusOptions options;
  options.repo_count = 3;
  auto corpus = GenerateCorpus(options);
  // A fake detector that reports exactly the truth scores perfectly.
  std::vector<Detection> perfect;
  for (const auto& stmt : corpus.AllStatements()) {
    for (AntiPattern type : stmt.truth) {
      Detection d;
      d.type = type;
      d.query = stmt.sql;
      perfect.push_back(std::move(d));
    }
  }
  auto scores = ScoreDetections(corpus, perfect, {});
  for (const auto& [type, score] : scores) {
    EXPECT_EQ(score.false_positives, 0) << ApName(type);
    EXPECT_EQ(score.false_negatives, 0) << ApName(type);
    EXPECT_DOUBLE_EQ(score.Precision(), 1.0);
    EXPECT_DOUBLE_EQ(score.Recall(), 1.0);
  }
}

TEST(GlobaleaksTest, PairedBuildsAgreeOnScale) {
  workload::GlobaleaksOptions small;
  small.tenant_count = 10;
  small.users_per_tenant = 4;
  Database ap, fixed;
  workload::Globaleaks::BuildWithAps(&ap, small);
  workload::Globaleaks::BuildRefactored(&fixed, small);
  EXPECT_EQ(ap.GetTable("Users")->live_row_count(), 40u);
  EXPECT_EQ(fixed.GetTable("Users")->live_row_count(), 40u);
  EXPECT_EQ(fixed.GetTable("Hosting")->live_row_count(), 40u);
  EXPECT_EQ(ap.GetTable("Tenants")->live_row_count(), 10u);
}

TEST(GlobaleaksTest, TaskQueriesReturnSameLogicalAnswer) {
  workload::GlobaleaksOptions small;
  small.tenant_count = 10;
  small.users_per_tenant = 4;
  Database ap, fixed;
  workload::Globaleaks::BuildWithAps(&ap, small);
  workload::Globaleaks::BuildRefactored(&fixed, small);
  Executor ap_exec(&ap);
  Executor fixed_exec(&fixed);
  std::string user = workload::Globaleaks::SomeUserId(small);
  auto a = ap_exec.ExecuteSql(workload::Globaleaks::Task1Ap(user));
  auto b = fixed_exec.ExecuteSql(workload::Globaleaks::Task1Fixed(user));
  ASSERT_TRUE(a.ok()) << a.message();
  ASSERT_TRUE(b.ok()) << b.message();
  EXPECT_EQ(a->rows.size(), b->rows.size());
  EXPECT_EQ(a->rows.size(), 1u);  // each user belongs to exactly one tenant
}

TEST(KaggleTest, SpecsMatchPaperShape) {
  const auto& specs = workload::KaggleSpecs();
  EXPECT_EQ(specs.size(), 31u);
  int total = 0;
  for (const auto& spec : specs) total += spec.ap_target;
  EXPECT_EQ(total, 200);  // Table 6's total
}

TEST(KaggleTest, CleanDatabaseExistsAndBuilds) {
  for (const auto& spec : workload::KaggleSpecs()) {
    if (spec.ap_target != 0) continue;
    auto db = workload::SynthesizeKaggleDatabase(spec);
    EXPECT_GE(db->table_count(), 1u);
    return;
  }
  FAIL() << "expected one clean database in the spec table";
}

TEST(DjangoTest, FifteenAppsWithWorkloads) {
  const auto& specs = workload::DjangoAppSpecs();
  EXPECT_EQ(specs.size(), 15u);
  for (const auto& spec : specs) {
    auto workload_sql = GenerateDjangoWorkload(spec);
    EXPECT_GE(static_cast<int>(workload_sql.size()), spec.detected)
        << spec.name;
  }
}

TEST(UserStudyTest, ParticipantsAndStatementVolume) {
  auto participants = workload::GenerateUserStudy();
  EXPECT_EQ(participants.size(), 23u);
  size_t total = 0;
  for (const auto& p : participants) {
    EXPECT_EQ(p.statements.size(), p.truth.size());
    total += p.statements.size();
  }
  EXPECT_GT(total, 500u);   // near the paper's 987 at default settings
  EXPECT_LT(total, 1500u);
}

TEST(UserStudyTest, SkillAffectsApRate) {
  auto participants = workload::GenerateUserStudy();
  const workload::Participant* most_skilled = &participants[0];
  const workload::Participant* least_skilled = &participants[0];
  for (const auto& p : participants) {
    if (p.skill > most_skilled->skill) most_skilled = &p;
    if (p.skill < least_skilled->skill) least_skilled = &p;
  }
  auto ap_rate = [](const workload::Participant& p) {
    size_t labeled = 0;
    for (const auto& t : p.truth) labeled += t.empty() ? 0 : 1;
    return static_cast<double>(labeled) / static_cast<double>(p.truth.size());
  };
  EXPECT_GT(ap_rate(*least_skilled), ap_rate(*most_skilled));
}

TEST(UserStudyTest, FixOutcomeIsDeterministic) {
  auto participants = workload::GenerateUserStudy();
  auto o1 = workload::SimulateFixOutcome(participants[0],
                                         AntiPattern::kColumnWildcard, 42);
  auto o2 = workload::SimulateFixOutcome(participants[0],
                                         AntiPattern::kColumnWildcard, 42);
  EXPECT_EQ(o1, o2);
}

}  // namespace
}  // namespace sqlcheck
