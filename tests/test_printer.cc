#include "sql/printer.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace sqlcheck::sql {
namespace {

TEST(PrinterTest, SimpleStatements) {
  EXPECT_EQ(PrintStatement(*ParseStatement("select a from t")), "SELECT a FROM t;");
  EXPECT_EQ(PrintStatement(*ParseStatement("delete from t where x = 1")),
            "DELETE FROM t WHERE (x = 1);");
}

TEST(PrinterTest, QuotingInLiteralsAndIdentifiers) {
  EXPECT_EQ(PrintStatement(*ParseStatement("SELECT 'it''s' FROM t")),
            "SELECT 'it''s' FROM t;");
  EXPECT_EQ(PrintStatement(*ParseStatement("SELECT \"weird col\" FROM t")),
            "SELECT \"weird col\" FROM t;");
}

// Property: printing a parsed statement and re-parsing the output must yield
// a tree that prints identically (print∘parse is a fixpoint after one round).
class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, PrintParsePrintIsStable) {
  StatementPtr first = ParseStatement(GetParam());
  ASSERT_NE(first->kind, StatementKind::kUnknown) << GetParam();
  std::string once = PrintStatement(*first);
  StatementPtr second = ParseStatement(once);
  ASSERT_NE(second->kind, StatementKind::kUnknown) << "re-parse failed: " << once;
  EXPECT_EQ(PrintStatement(*second), once) << "unstable print for: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Statements, RoundTripTest,
    ::testing::Values(
        "SELECT a, b FROM t",
        "SELECT * FROM t",
        "SELECT t.* FROM t",
        "SELECT DISTINCT a FROM t WHERE b > 3",
        "SELECT a AS x FROM t AS u",
        "SELECT a FROM t WHERE a IN (1, 2, 3)",
        "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b IS NOT NULL",
        "SELECT a FROM t WHERE name LIKE '%x%' ESCAPE '!'",
        "SELECT a FROM t WHERE NOT (a = 1 OR b = 2)",
        "SELECT COUNT(*), COUNT(DISTINCT a), SUM(b + 1) FROM t GROUP BY c HAVING "
        "COUNT(*) > 2",
        "SELECT a FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 5",
        "SELECT a FROM t1 JOIN t2 ON t1.id = t2.id LEFT JOIN t3 ON t2.id = t3.id",
        "SELECT a FROM t1 CROSS JOIN t2",
        "SELECT a FROM (SELECT a FROM u) AS sub",
        "SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t",
        "SELECT CAST(a AS INTEGER) FROM t",
        "SELECT a || '-' || b FROM t",
        "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)",
        "SELECT a FROM t WHERE id IN (SELECT id FROM u)",
        "SELECT a FROM t ORDER BY RAND()",
        "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
        "INSERT INTO t VALUES (1, NULL, TRUE)",
        "INSERT INTO t (a) SELECT a FROM u WHERE a > 0",
        "UPDATE t SET a = a + 1, b = 'x' WHERE id = 3",
        "DELETE FROM t",
        "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(30) NOT NULL, "
        "score FLOAT DEFAULT 0)",
        "CREATE TABLE t (a INTEGER, b INTEGER, PRIMARY KEY (a, b), "
        "FOREIGN KEY (a) REFERENCES u (x) ON DELETE CASCADE)",
        "CREATE TABLE t (role ENUM('a', 'b') NOT NULL)",
        "CREATE TABLE t (v VARCHAR(10) CHECK (v IN ('x', 'y')))",
        "CREATE UNIQUE INDEX idx ON t (a, b)",
        "ALTER TABLE t ADD COLUMN c INTEGER",
        "ALTER TABLE t DROP COLUMN c",
        "ALTER TABLE t ADD CONSTRAINT chk CHECK (a > 0)",
        "ALTER TABLE t DROP CONSTRAINT IF EXISTS chk",
        "ALTER TABLE t ALTER COLUMN a TYPE NUMERIC(10, 2)",
        "DROP TABLE IF EXISTS t",
        "DROP INDEX idx"));

// Property: expression printing respects structure (parenthesization keeps
// the parsed precedence).
class ExprPrecedenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ExprPrecedenceTest, ReparseKeepsStructure) {
  std::string q = std::string("SELECT ") + GetParam() + " FROM t";
  StatementPtr first = ParseStatement(q);
  auto* s1 = first->As<SelectStatement>();
  ASSERT_NE(s1, nullptr);
  std::string printed = PrintExpr(*s1->items[0].expr);
  StatementPtr second = ParseStatement("SELECT " + printed + " FROM t");
  auto* s2 = second->As<SelectStatement>();
  ASSERT_NE(s2, nullptr) << printed;
  EXPECT_EQ(PrintExpr(*s2->items[0].expr), printed);
}

INSTANTIATE_TEST_SUITE_P(Expressions, ExprPrecedenceTest,
                         ::testing::Values("1 + 2 * 3", "(1 + 2) * 3", "a AND b OR c",
                                           "a AND (b OR c)", "NOT a = b",
                                           "a - b - c", "a / b / c",
                                           "x || y || z", "-a + b"));

}  // namespace
}  // namespace sqlcheck::sql
