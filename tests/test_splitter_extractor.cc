#include <gtest/gtest.h>

#include "sql/extractor.h"
#include "sql/splitter.h"

namespace sqlcheck::sql {
namespace {

TEST(SplitterTest, BasicSplit) {
  auto parts = SplitStatements("SELECT 1; SELECT 2 ; SELECT 3");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "SELECT 1");
  EXPECT_EQ(parts[2], "SELECT 3");
}

TEST(SplitterTest, SemicolonInsideStringIsNotABoundary) {
  auto parts = SplitStatements("SELECT 'a;b' FROM t; SELECT 2");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "SELECT 'a;b' FROM t");
}

TEST(SplitterTest, SemicolonInsideCommentIsNotABoundary) {
  auto parts = SplitStatements("SELECT 1 -- trailing; comment\n; SELECT 2");
  ASSERT_EQ(parts.size(), 2u);
}

TEST(SplitterTest, EmptyPiecesDropped) {
  EXPECT_TRUE(SplitStatements(";;;  ; ").empty());
  EXPECT_EQ(SplitStatements("SELECT 1;;").size(), 1u);
}

TEST(SplitterTest, TriggerBodyWithSemicolonsStaysWhole) {
  // Regression: MySQL trigger/procedure scripts used to be cut mid-body.
  auto parts = SplitStatements(
      "CREATE TABLE t (a INT);\n"
      "CREATE TRIGGER trg BEFORE INSERT ON t FOR EACH ROW\n"
      "BEGIN\n"
      "  INSERT INTO log VALUES (1);\n"
      "  UPDATE counters SET n = n + 1;\n"
      "END;\n"
      "SELECT * FROM t");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_NE(parts[1].find("UPDATE counters"), std::string::npos);
  EXPECT_NE(parts[1].find("END"), std::string::npos);
  EXPECT_EQ(parts[2], "SELECT * FROM t");
}

TEST(SplitterTest, EndIfInsideBodyDoesNotCloseTheBlock) {
  auto parts = SplitStatements(
      "CREATE TRIGGER trg BEFORE INSERT ON t FOR EACH ROW\n"
      "BEGIN\n"
      "  IF NEW.x IS NULL THEN SET NEW.x = 0; END IF;\n"
      "  INSERT INTO log VALUES (1);\n"
      "END;\n"
      "SELECT 1");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_NE(parts[0].find("INSERT INTO log"), std::string::npos);
  EXPECT_EQ(parts[1], "SELECT 1");
}

TEST(SplitterTest, NestedBeginBlocksTrackDepth) {
  auto parts = SplitStatements(
      "CREATE PROCEDURE p()\n"
      "BEGIN\n"
      "  BEGIN\n"
      "    SELECT 1;\n"
      "  END;\n"
      "  SELECT 2;\n"
      "END;\n"
      "SELECT 3");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "SELECT 3");
}

TEST(SplitterTest, TransactionBeginIsNotABlock) {
  auto parts = SplitStatements("BEGIN; SELECT 1; COMMIT; BEGIN TRANSACTION; SELECT 2");
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "BEGIN");
  EXPECT_EQ(parts[3], "BEGIN TRANSACTION");
}

TEST(SplitterTest, SqliteAndPostgresTransactionBeginVariants) {
  auto parts = SplitStatements(
      "BEGIN IMMEDIATE; INSERT INTO t VALUES (1); COMMIT; "
      "BEGIN DEFERRED; SELECT 1; COMMIT; "
      "BEGIN EXCLUSIVE; SELECT 2; COMMIT; "
      "BEGIN READ ONLY; SELECT 3; COMMIT; "
      "BEGIN TRAN; UPDATE t SET a = 1; COMMIT");
  ASSERT_EQ(parts.size(), 15u);
  EXPECT_EQ(parts[0], "BEGIN IMMEDIATE");
  EXPECT_EQ(parts[9], "BEGIN READ ONLY");
  EXPECT_EQ(parts[12], "BEGIN TRAN");
  EXPECT_EQ(parts[14], "COMMIT");
}

TEST(SplitterTest, EndCaseClosesItsBlock) {
  // Regression: the CASE token in `END CASE` re-incremented the depth the
  // END had just released, so the block never closed.
  auto parts = SplitStatements(
      "CREATE PROCEDURE p()\n"
      "BEGIN\n"
      "  CASE x WHEN 1 THEN SELECT 1; ELSE SELECT 2; END CASE;\n"
      "END;\n"
      "SELECT 3");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_NE(parts[0].find("END CASE"), std::string::npos);
  EXPECT_EQ(parts[1], "SELECT 3");
}

TEST(SplitterTest, CaseExpressionDoesNotSwallowBoundaries) {
  auto parts = SplitStatements(
      "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t; SELECT 2");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "SELECT 2");
}

TEST(ExtractorTest, FindsSqlInHostStrings) {
  auto found = ExtractEmbeddedSql(R"(
cur.execute("SELECT * FROM users WHERE id = 1")
name = "bob"
db.run('INSERT INTO logs VALUES (1)')
)");
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].sql, "SELECT * FROM users WHERE id = 1");
  EXPECT_EQ(found[1].sql, "INSERT INTO logs VALUES (1)");
}

TEST(ExtractorTest, NonSqlStringsIgnored) {
  auto found = ExtractEmbeddedSql("x = \"hello world\"\ny = 'select all the things!'");
  // 'select all...' does start with "select " — extractor keeps it; the
  // parser downstream degrades it to Unknown. "hello world" must be skipped.
  ASSERT_EQ(found.size(), 1u);
}

TEST(ExtractorTest, TripleQuotedMultilineSql) {
  auto found = ExtractEmbeddedSql(
      "q = \"\"\"SELECT a,\n       b\nFROM t\nWHERE x = 1\"\"\"\n");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NE(found[0].sql.find("FROM t"), std::string::npos);
}

TEST(ExtractorTest, MultiStatementStringSplits) {
  auto found = ExtractEmbeddedSql("s = 'CREATE TABLE t (a INT); INSERT INTO t VALUES (1)'");
  ASSERT_EQ(found.size(), 2u);
}

TEST(ExtractorTest, CommentedOutSqlSkipped) {
  auto found = ExtractEmbeddedSql(
      "# cur.execute('SELECT 1 FROM dual')\n"
      "// db.run(\"SELECT 2\")\n"
      "real = 'SELECT 3'\n");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].sql, "SELECT 3");
}

TEST(ExtractorTest, EscapedQuotesInsideHostString) {
  auto found = ExtractEmbeddedSql(R"(q = "SELECT * FROM t WHERE name = \"x\"")");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NE(found[0].sql.find("WHERE name ="), std::string::npos);
}

TEST(SplitterTest, CompleteFlagTracksTopLevelTermination) {
  bool complete = false;

  SplitStatements("SELECT 1; SELECT 2;", &complete);
  EXPECT_TRUE(complete);

  // Trailing fragment: the last piece is mid-statement.
  std::vector<std::string_view> pieces = SplitStatements("SELECT 1; SELECT", &complete);
  EXPECT_FALSE(complete);
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[1], "SELECT");

  // A ';' inside a still-open BEGIN...END body does not terminate — the
  // streaming CLI relies on this to buffer trigger bodies whole.
  SplitStatements("CREATE TRIGGER t AFTER INSERT ON u FOR EACH ROW\nBEGIN\n"
                  "UPDATE audit SET n = n + 1;",
                  &complete);
  EXPECT_FALSE(complete);

  // ...and closing the block restores completeness.
  pieces = SplitStatements("CREATE TRIGGER t AFTER INSERT ON u FOR EACH ROW\nBEGIN\n"
                           "UPDATE audit SET n = n + 1;\nEND;",
                           &complete);
  EXPECT_TRUE(complete);
  EXPECT_EQ(pieces.size(), 1u);

  // A ';' inside a string literal does not terminate either.
  SplitStatements("SELECT * FROM t WHERE name = 'a;", &complete);
  EXPECT_FALSE(complete);
}

}  // namespace
}  // namespace sqlcheck::sql
