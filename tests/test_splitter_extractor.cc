#include <gtest/gtest.h>

#include "sql/extractor.h"
#include "sql/splitter.h"

namespace sqlcheck::sql {
namespace {

TEST(SplitterTest, BasicSplit) {
  auto parts = SplitStatements("SELECT 1; SELECT 2 ; SELECT 3");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "SELECT 1");
  EXPECT_EQ(parts[2], "SELECT 3");
}

TEST(SplitterTest, SemicolonInsideStringIsNotABoundary) {
  auto parts = SplitStatements("SELECT 'a;b' FROM t; SELECT 2");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "SELECT 'a;b' FROM t");
}

TEST(SplitterTest, SemicolonInsideCommentIsNotABoundary) {
  auto parts = SplitStatements("SELECT 1 -- trailing; comment\n; SELECT 2");
  ASSERT_EQ(parts.size(), 2u);
}

TEST(SplitterTest, EmptyPiecesDropped) {
  EXPECT_TRUE(SplitStatements(";;;  ; ").empty());
  EXPECT_EQ(SplitStatements("SELECT 1;;").size(), 1u);
}

TEST(ExtractorTest, FindsSqlInHostStrings) {
  auto found = ExtractEmbeddedSql(R"(
cur.execute("SELECT * FROM users WHERE id = 1")
name = "bob"
db.run('INSERT INTO logs VALUES (1)')
)");
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].sql, "SELECT * FROM users WHERE id = 1");
  EXPECT_EQ(found[1].sql, "INSERT INTO logs VALUES (1)");
}

TEST(ExtractorTest, NonSqlStringsIgnored) {
  auto found = ExtractEmbeddedSql("x = \"hello world\"\ny = 'select all the things!'");
  // 'select all...' does start with "select " — extractor keeps it; the
  // parser downstream degrades it to Unknown. "hello world" must be skipped.
  ASSERT_EQ(found.size(), 1u);
}

TEST(ExtractorTest, TripleQuotedMultilineSql) {
  auto found = ExtractEmbeddedSql(
      "q = \"\"\"SELECT a,\n       b\nFROM t\nWHERE x = 1\"\"\"\n");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NE(found[0].sql.find("FROM t"), std::string::npos);
}

TEST(ExtractorTest, MultiStatementStringSplits) {
  auto found = ExtractEmbeddedSql("s = 'CREATE TABLE t (a INT); INSERT INTO t VALUES (1)'");
  ASSERT_EQ(found.size(), 2u);
}

TEST(ExtractorTest, CommentedOutSqlSkipped) {
  auto found = ExtractEmbeddedSql(
      "# cur.execute('SELECT 1 FROM dual')\n"
      "// db.run(\"SELECT 2\")\n"
      "real = 'SELECT 3'\n");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].sql, "SELECT 3");
}

TEST(ExtractorTest, EscapedQuotesInsideHostString) {
  auto found = ExtractEmbeddedSql(R"(q = "SELECT * FROM t WHERE name = \"x\"")");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NE(found[0].sql.find("WHERE name ="), std::string::npos);
}

}  // namespace
}  // namespace sqlcheck::sql
