// Persistent fingerprint store (persist/fingerprint_store.h): round trips,
// collision safety, every corruption class the open path must absorb
// (foreign file, truncation, flipped bytes, version/rule-set mismatch, torn
// commits via the store_* failpoints), writer locking, and the offline
// Verify/Compact tools. The store's failure contract is the point: every
// recoverable problem degrades to a cold scan with a warning — never a
// crash, never a wrong probe answer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <stdlib.h>
#include <unistd.h>

#include "common/failpoint.h"
#include "persist/fingerprint_store.h"
#include "rules/registry.h"

namespace sqlcheck::persist {
namespace {

class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Instance().DisarmAll();
    char tmpl[] = "/tmp/sqlcheck_persist_XXXXXX";
    char* dir = mkdtemp(tmpl);
    ASSERT_NE(dir, nullptr);
    dir_ = dir;
    path_ = dir_ + "/fp.store";
  }
  void TearDown() override {
    FailpointRegistry::Instance().DisarmAll();
    std::remove(path_.c_str());
    ::rmdir(dir_.c_str());
  }

  /// Reads the store file's raw bytes.
  std::string ReadRaw() {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  /// Flips one byte of the store file in place (size and mtime unchanged
  /// beyond the write itself — this is the "bit rot" corruption class).
  void FlipByte(size_t at) {
    std::string raw = ReadRaw();
    ASSERT_LT(at, raw.size());
    raw[at] = static_cast<char>(raw[at] ^ 0xFF);
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(raw.data(), static_cast<std::streamsize>(raw.size()));
  }

  void Truncate(size_t to) {
    ASSERT_EQ(::truncate(path_.c_str(), static_cast<off_t>(to)), 0);
  }

  static StoredFinding MakeFinding(uint8_t type, double score,
                                   const std::string& message) {
    StoredFinding f;
    f.type = type;
    f.source = 1;
    f.has_query = true;
    f.score = score;
    f.table = "users";
    f.column = "tag_ids";
    f.message = message;
    return f;
  }

  static constexpr uint64_t kHash = 0xfeedface12345678ull;
  std::string dir_;
  std::string path_;
};

TEST_F(PersistTest, RoundTripStatementsAndManifest) {
  std::vector<StoredFinding> findings = {MakeFinding(3, 0.75, "csv list"),
                                         MakeFinding(7, 0.25, "implicit cols")};
  uint64_t off_a = 0, off_b = 0;
  {
    FingerprintStore store;
    ASSERT_TRUE(store.Open(path_, kHash).ok());
    ASSERT_TRUE(store.usable());
    off_a = store.Append("SELECT * FROM users", 0x1111, 0xaaaa, findings);
    ASSERT_NE(off_a, FingerprintStore::kNoOffset);
    // "Analyzed, found nothing" is cached too — an empty list is a hit.
    off_b = store.Append("SELECT id FROM users", 0x2222, 0xbbbb, {});
    ASSERT_NE(off_b, FingerprintStore::kNoOffset);
    // Re-appending the same statement dedups to the existing record.
    EXPECT_EQ(store.Append("SELECT * FROM users", 0x1111, 0xaaaa, findings), off_a);
    std::vector<StmtRef> refs = {{0x1111, 0xaaaa, off_a}, {0x2222, 0xbbbb, off_b}};
    EXPECT_TRUE(store.AppendFile("repo/queries.sql", 120, 99000111, refs));
    EXPECT_EQ(store.stats().appended, 2u);
    EXPECT_EQ(store.stats().appended_files, 1u);
    store.Close();
  }
  {
    FingerprintStore store;
    ASSERT_TRUE(store.Open(path_, kHash).ok());
    ASSERT_TRUE(store.usable());
    EXPECT_TRUE(store.stats().warning.empty());
    EXPECT_EQ(store.stats().entries, 2u);
    EXPECT_EQ(store.stats().file_entries, 1u);

    std::vector<StoredFinding> got;
    ASSERT_TRUE(store.Probe("SELECT * FROM users", 0x1111, &got));
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], findings[0]);
    EXPECT_EQ(got[1], findings[1]);
    ASSERT_TRUE(store.Probe("SELECT id FROM users", 0x2222, &got));
    EXPECT_TRUE(got.empty());
    EXPECT_FALSE(store.Probe("SELECT nope", 0x3333, &got));

    std::vector<FindingStat> stats;
    uint64_t tmpl = 0, off = 0;
    ASSERT_TRUE(store.ProbeStats("SELECT * FROM users", 0x1111, &stats, &tmpl, &off));
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].type, 3);
    EXPECT_DOUBLE_EQ(stats[0].score, 0.75);
    EXPECT_EQ(tmpl, 0xaaaaull);
    EXPECT_EQ(off, off_a);

    std::vector<StmtRef> refs;
    ASSERT_TRUE(store.ProbeFile("repo/queries.sql", 120, 99000111, &refs));
    ASSERT_EQ(refs.size(), 2u);
    EXPECT_EQ(refs[0].offset, off_a);
    EXPECT_EQ(refs[1].offset, off_b);
    // Any freshness-key mismatch is a miss — the warm scan re-reads the file.
    EXPECT_FALSE(store.ProbeFile("repo/queries.sql", 121, 99000111, &refs));
    EXPECT_FALSE(store.ProbeFile("repo/queries.sql", 120, 99000112, &refs));

    stats.clear();
    ASSERT_TRUE(store.ResolveStats(off_a, 0x1111, &stats, &tmpl));
    EXPECT_EQ(stats.size(), 2u);
    EXPECT_FALSE(store.ResolveStats(off_a, 0x9999, &stats, &tmpl));  // fp mismatch
    EXPECT_FALSE(store.ResolveStats(off_a + 1, 0x1111, &stats, &tmpl));
    store.Close();
  }
}

TEST_F(PersistTest, FingerprintCollisionNeverSplicesFindings) {
  // Two different canonicals under one fingerprint: the probe must compare
  // text, so each canonical gets its own findings back.
  std::vector<StoredFinding> fa = {MakeFinding(1, 0.5, "a")};
  std::vector<StoredFinding> fb = {MakeFinding(2, 0.9, "b")};
  FingerprintStore store;
  ASSERT_TRUE(store.Open(path_, kHash).ok());
  uint64_t off_a = store.Append("SELECT a", 0x42, 0x1, fa);
  uint64_t off_b = store.Append("SELECT b", 0x42, 0x2, fb);
  ASSERT_NE(off_a, FingerprintStore::kNoOffset);
  ASSERT_NE(off_b, FingerprintStore::kNoOffset);
  ASSERT_NE(off_a, off_b);
  store.Close();

  ASSERT_TRUE(store.Open(path_, kHash).ok());
  std::vector<StoredFinding> got;
  ASSERT_TRUE(store.Probe("SELECT a", 0x42, &got));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].message, "a");
  ASSERT_TRUE(store.Probe("SELECT b", 0x42, &got));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].message, "b");
  EXPECT_FALSE(store.Probe("SELECT c", 0x42, &got));
  store.Close();
}

TEST_F(PersistTest, RulesetMismatchInvalidatesAndBumpsGeneration) {
  {
    FingerprintStore store;
    ASSERT_TRUE(store.Open(path_, kHash).ok());
    store.Append("SELECT 1", 0x1, 0x1, {});
    store.Close();
  }
  FingerprintStore store;
  ASSERT_TRUE(store.Open(path_, kHash + 1).ok());
  EXPECT_TRUE(store.usable());  // Rebuilt, not refused: the scan stays warm-capable.
  EXPECT_TRUE(store.stats().degraded);
  EXPECT_NE(store.stats().warning.find("rule-set"), std::string::npos);
  EXPECT_EQ(store.stats().entries, 0u);
  EXPECT_EQ(store.stats().generation, 2u);
  std::vector<StoredFinding> got;
  EXPECT_FALSE(store.Probe("SELECT 1", 0x1, &got));
  store.Close();
}

TEST_F(PersistTest, ForeignFileIsNeverClobbered) {
  const std::string original = "-- just a SQL script, not a store\nSELECT 1;\n";
  {
    std::ofstream out(path_, std::ios::binary);
    out << original;
  }
  FingerprintStore store;
  ASSERT_TRUE(store.Open(path_, kHash).ok());
  EXPECT_FALSE(store.usable());
  EXPECT_TRUE(store.stats().degraded);
  EXPECT_EQ(store.Append("SELECT 1", 0x1, 0x1, {}), FingerprintStore::kNoOffset);
  store.Close();
  EXPECT_EQ(ReadRaw(), original);  // byte-identical: refused, not rebuilt
}

TEST_F(PersistTest, TruncationRebuildsCleanly) {
  {
    FingerprintStore store;
    ASSERT_TRUE(store.Open(path_, kHash).ok());
    store.Append("SELECT * FROM t", 0x7, 0x7, {MakeFinding(1, 0.5, "x")});
    store.Close();
  }
  // Below the header (magic intact): rebuild.
  Truncate(32);
  {
    FingerprintStore store;
    ASSERT_TRUE(store.Open(path_, kHash).ok());
    EXPECT_TRUE(store.usable());
    EXPECT_TRUE(store.stats().degraded);
    EXPECT_EQ(store.stats().entries, 0u);
    // The rebuilt store accepts fresh work.
    EXPECT_NE(store.Append("SELECT 2", 0x2, 0x2, {}), FingerprintStore::kNoOffset);
    store.Close();
  }
  // Header claims more committed bytes than the file holds: rebuild.
  std::string raw = ReadRaw();
  Truncate(raw.size() - 5);
  {
    FingerprintStore store;
    ASSERT_TRUE(store.Open(path_, kHash).ok());
    EXPECT_TRUE(store.usable());
    EXPECT_TRUE(store.stats().degraded);
    EXPECT_EQ(store.stats().entries, 0u);
    store.Close();
  }
}

TEST_F(PersistTest, FlippedRecordByteRebuildsAndVerifyRejects) {
  {
    FingerprintStore store;
    ASSERT_TRUE(store.Open(path_, kHash).ok());
    store.Append("SELECT * FROM t", 0x7, 0x7, {MakeFinding(1, 0.5, "x")});
    store.Close();
  }
  ASSERT_TRUE(FingerprintStore::Verify(path_, nullptr).ok());
  FlipByte(64 + 20);  // inside the record body, past the 64-byte header
  EXPECT_FALSE(FingerprintStore::Verify(path_, nullptr).ok());
  FingerprintStore store;
  ASSERT_TRUE(store.Open(path_, kHash).ok());
  EXPECT_TRUE(store.usable());
  EXPECT_TRUE(store.stats().degraded);
  EXPECT_NE(store.stats().warning.find("corrupt"), std::string::npos);
  EXPECT_EQ(store.stats().entries, 0u);
  store.Close();
  ASSERT_TRUE(FingerprintStore::Verify(path_, nullptr).ok());  // rebuilt clean
}

TEST_F(PersistTest, FlippedHeaderByteRebuilds) {
  {
    FingerprintStore store;
    ASSERT_TRUE(store.Open(path_, kHash).ok());
    store.Append("SELECT 1", 0x1, 0x1, {});
    store.Close();
  }
  FlipByte(16);  // header field: checksum catches it
  FingerprintStore store;
  ASSERT_TRUE(store.Open(path_, kHash).ok());
  EXPECT_TRUE(store.usable());
  EXPECT_TRUE(store.stats().degraded);
  EXPECT_EQ(store.stats().entries, 0u);
  store.Close();
}

TEST_F(PersistTest, TornFlushKeepsCommittedPrefixWarm) {
  uint64_t committed_bytes = 0;
  {
    FingerprintStore store;
    ASSERT_TRUE(store.Open(path_, kHash).ok());
    store.Append("SELECT old", 0x1, 0x1, {MakeFinding(1, 0.5, "old")});
    ASSERT_TRUE(store.Commit().ok());
    committed_bytes = store.stats().bytes;

    // The flush of the second batch tears mid-write (store_append simulates
    // half the bytes landing, then the device failing).
    store.Append("SELECT new", 0x2, 0x2, {MakeFinding(2, 0.5, "new")});
    ASSERT_TRUE(FailpointRegistry::Instance().Arm("store_append", "oneshot").ok());
    EXPECT_FALSE(store.Commit().ok());
    EXPECT_FALSE(store.stats().warning.empty());
    // The log is frozen: later appends are refused, a retried commit is a
    // no-op success (nothing pending — the failed batch was dropped).
    EXPECT_EQ(store.Append("SELECT x", 0x3, 0x3, {}), FingerprintStore::kNoOffset);
    EXPECT_TRUE(store.Commit().ok());
    store.Close();
  }
  FingerprintStore store;
  ASSERT_TRUE(store.Open(path_, kHash).ok());
  ASSERT_TRUE(store.usable());
  // The torn tail was truncated; the committed prefix survives warm.
  EXPECT_NE(store.stats().warning.find("uncommitted"), std::string::npos);
  EXPECT_EQ(store.stats().entries, 1u);
  std::vector<StoredFinding> got;
  EXPECT_TRUE(store.Probe("SELECT old", 0x1, &got));
  EXPECT_FALSE(store.Probe("SELECT new", 0x2, &got));
  store.Close();
  EXPECT_TRUE(FingerprintStore::Verify(path_, nullptr).ok());
}

TEST_F(PersistTest, HeaderPublishFailureDropsTailOnReopen) {
  {
    FingerprintStore store;
    ASSERT_TRUE(store.Open(path_, kHash).ok());
    store.Append("SELECT old", 0x1, 0x1, {});
    ASSERT_TRUE(store.Commit().ok());
    store.Append("SELECT new", 0x2, 0x2, {});
    // The bulk write lands, fsync succeeds, but the header publish fails:
    // the bytes sit past the committed end as a torn tail.
    ASSERT_TRUE(FailpointRegistry::Instance().Arm("store_commit", "oneshot").ok());
    EXPECT_FALSE(store.Commit().ok());
    store.Close();
  }
  FingerprintStore store;
  ASSERT_TRUE(store.Open(path_, kHash).ok());
  ASSERT_TRUE(store.usable());
  EXPECT_NE(store.stats().warning.find("uncommitted"), std::string::npos);
  EXPECT_EQ(store.stats().entries, 1u);
  std::vector<StoredFinding> got;
  EXPECT_TRUE(store.Probe("SELECT old", 0x1, &got));
  EXPECT_FALSE(store.Probe("SELECT new", 0x2, &got));
  store.Close();
}

TEST_F(PersistTest, OpenFailpointDegradesToCold) {
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("store_open", "oneshot").ok());
  FingerprintStore store;
  ASSERT_TRUE(store.Open(path_, kHash).ok());  // degrade, not error
  EXPECT_FALSE(store.usable());
  EXPECT_TRUE(store.stats().degraded);
  EXPECT_EQ(store.Append("SELECT 1", 0x1, 0x1, {}), FingerprintStore::kNoOffset);
  store.Close();
}

TEST_F(PersistTest, SecondWriterDegradesThenRecoversAfterClose) {
  FingerprintStore first;
  ASSERT_TRUE(first.Open(path_, kHash).ok());
  ASSERT_TRUE(first.usable());
  first.Append("SELECT 1", 0x1, 0x1, {});

  FingerprintStore second;
  ASSERT_TRUE(second.Open(path_, kHash).ok());
  EXPECT_FALSE(second.usable());  // lock contention → cold scan, no waiting
  EXPECT_NE(second.stats().warning.find("locked"), std::string::npos);

  first.Close();
  ASSERT_TRUE(second.Open(path_, kHash).ok());
  EXPECT_TRUE(second.usable());
  EXPECT_EQ(second.stats().entries, 1u);
  second.Close();
}

TEST_F(PersistTest, AppendFileRejectsInvalidOffsets) {
  FingerprintStore store;
  ASSERT_TRUE(store.Open(path_, kHash).ok());
  uint64_t off = store.Append("SELECT 1", 0x1, 0x1, {});
  ASSERT_NE(off, FingerprintStore::kNoOffset);
  // Offset 0 is the header; a forward reference past the staged end is
  // equally meaningless. Both must be refused, not stored.
  EXPECT_FALSE(store.AppendFile("a.sql", 1, 1, {{0x1, 0x1, 0}}));
  EXPECT_FALSE(store.AppendFile("a.sql", 1, 1, {{0x1, 0x1, 1u << 20}}));
  EXPECT_TRUE(store.AppendFile("a.sql", 1, 1, {{0x1, 0x1, off}}));
  store.Close();
  EXPECT_TRUE(FingerprintStore::Verify(path_, nullptr).ok());
}

TEST_F(PersistTest, CompactDropsSupersededManifestsAndRemapsOffsets) {
  // Session 1: statement A + a manifest for queries.sql referencing it.
  {
    FingerprintStore store;
    ASSERT_TRUE(store.Open(path_, kHash).ok());
    uint64_t a = store.Append("SELECT a", 0xa, 0xa1, {MakeFinding(1, 0.5, "a")});
    ASSERT_TRUE(store.AppendFile("repo/queries.sql", 10, 100, {{0xa, 0xa1, a}}));
    store.Close();
  }
  // Session 2: the file grew — statement B lands and a fresh manifest
  // supersedes the old one (last write wins).
  {
    FingerprintStore store;
    ASSERT_TRUE(store.Open(path_, kHash).ok());
    uint64_t b = store.Append("SELECT b", 0xb, 0xb1, {MakeFinding(2, 0.5, "b")});
    std::vector<FindingStat> stats;
    uint64_t tmpl = 0, a = 0;
    ASSERT_TRUE(store.ProbeStats("SELECT a", 0xa, &stats, &tmpl, &a));
    ASSERT_TRUE(store.AppendFile("repo/queries.sql", 20, 200,
                                 {{0xa, 0xa1, a}, {0xb, 0xb1, b}}));
    store.Close();
  }
  std::string summary;
  ASSERT_TRUE(FingerprintStore::Verify(path_, &summary).ok());
  EXPECT_NE(summary.find("files=2"), std::string::npos);

  ASSERT_TRUE(FingerprintStore::Compact(path_, kHash, &summary).ok());
  EXPECT_NE(summary.find("files=1"), std::string::npos);
  ASSERT_TRUE(FingerprintStore::Verify(path_, nullptr).ok());

  FingerprintStore store;
  ASSERT_TRUE(store.Open(path_, kHash).ok());
  EXPECT_EQ(store.stats().entries, 2u);
  EXPECT_EQ(store.stats().file_entries, 1u);
  EXPECT_GE(store.stats().generation, 2u);
  // The surviving manifest is the newer one, with offsets remapped onto the
  // compacted layout: every reference must still resolve.
  std::vector<StmtRef> refs;
  ASSERT_TRUE(store.ProbeFile("repo/queries.sql", 20, 200, &refs));
  ASSERT_EQ(refs.size(), 2u);
  for (const StmtRef& r : refs) {
    std::vector<FindingStat> stats;
    uint64_t tmpl = 0;
    EXPECT_TRUE(store.ResolveStats(r.offset, r.exact, &stats, &tmpl));
    EXPECT_EQ(stats.size(), 1u);
  }
  EXPECT_FALSE(store.ProbeFile("repo/queries.sql", 10, 100, &refs));
  store.Close();
}

TEST_F(PersistTest, CompactUnderDifferentRulesetEmptiesTheStore) {
  {
    FingerprintStore store;
    ASSERT_TRUE(store.Open(path_, kHash).ok());
    store.Append("SELECT 1", 0x1, 0x1, {});
    store.Close();
  }
  std::string summary;
  ASSERT_TRUE(FingerprintStore::Compact(path_, kHash + 1, &summary).ok());
  FingerprintStore store;
  ASSERT_TRUE(store.Open(path_, kHash + 1).ok());
  EXPECT_EQ(store.stats().entries, 0u);
  store.Close();
}

TEST_F(PersistTest, RulesetHashTracksRegistryComposition) {
  RuleRegistry all = RuleRegistry::Default();
  EXPECT_NE(FingerprintStore::RulesetHash(all), 0u);
  EXPECT_EQ(FingerprintStore::RulesetHash(all),
            FingerprintStore::RulesetHash(RuleRegistry::Default()));
  // Disabling a rule must change the key: a store written under the full
  // rule set can never replay findings into a run that disabled one.
  RuleRegistry partial = RuleRegistry::Default();
  ASSERT_TRUE(partial.Disable({"Multi-Valued Attribute"}).ok());
  ASSERT_LT(partial.size(), all.size());
  EXPECT_NE(FingerprintStore::RulesetHash(all), FingerprintStore::RulesetHash(partial));
}

}  // namespace
}  // namespace sqlcheck::persist
