// Chaos-engineering coverage of the failpoint framework and the hardened
// request path, bottom-up: FailpointRegistry semantics (modes, parsing,
// scope gating), the DeadlineWheel and QuarantineSet primitives, session
// recovery under injected faults (transient retry, persistent quarantine,
// deadline and statement-budget refusal, parallel-ingest fault folding),
// handler-level statement_error streaming, and the live epoll daemon under
// socket-fault profiles, queue overload, and request deadlines. Every test
// disarms the registry on teardown so ambient suites stay unaffected.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/emit.h"
#include "core/session.h"
#include "server/client.h"
#include "server/deadline_wheel.h"
#include "server/handler.h"
#include "server/server.h"
#include "server/wire.h"
#include "sql/parser.h"

namespace sqlcheck {
namespace {

/// Every chaos test runs with a clean registry before and after, so an
/// assertion failure mid-test cannot leak an armed failpoint into the next
/// case (or, under ctest -j, into this binary's other suites).
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

// --------------------------- failpoint registry ------------------------------

using FailpointTest = ChaosTest;

TEST_F(FailpointTest, DisarmedSitesNeverFire) {
  EXPECT_FALSE(AnyFailpointArmed());
  FailpointScope scope;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(SQLCHECK_FAILPOINT("chaos_test_point"));
    EXPECT_FALSE(SQLCHECK_SCOPED_FAILPOINT("chaos_test_point"));
  }
}

TEST_F(FailpointTest, ProbabilityOneFiresEveryTime) {
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("chaos_test_point", "1.0").ok());
  EXPECT_TRUE(AnyFailpointArmed());
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(SQLCHECK_FAILPOINT("chaos_test_point"));
  }
  FailpointInfo info = FailpointRegistry::Instance().Info("chaos_test_point");
  EXPECT_EQ(info.evaluations, 20u);
  EXPECT_EQ(info.fires, 20u);
}

TEST_F(FailpointTest, AfterNFiresExactlyOnceOnTheNthEvaluation) {
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("chaos_test_point", "after-3").ok());
  EXPECT_FALSE(SQLCHECK_FAILPOINT("chaos_test_point"));
  EXPECT_FALSE(SQLCHECK_FAILPOINT("chaos_test_point"));
  EXPECT_TRUE(SQLCHECK_FAILPOINT("chaos_test_point"));
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(SQLCHECK_FAILPOINT("chaos_test_point"));
  }
  EXPECT_EQ(FailpointRegistry::Instance().Info("chaos_test_point").fires, 1u);
}

TEST_F(FailpointTest, OneshotIsAfterOne) {
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("chaos_test_point", "oneshot").ok());
  EXPECT_TRUE(SQLCHECK_FAILPOINT("chaos_test_point"));
  EXPECT_FALSE(SQLCHECK_FAILPOINT("chaos_test_point"));
}

TEST_F(FailpointTest, ScopedSiteRequiresAScope) {
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("chaos_test_point", "1.0").ok());
  // No FailpointScope on this thread: the scoped form is inert even though
  // the point is armed at probability 1 — this is what keeps an armed chaos
  // profile away from code with no recovery story.
  EXPECT_FALSE(SQLCHECK_SCOPED_FAILPOINT("chaos_test_point"));
  {
    FailpointScope scope;
    EXPECT_TRUE(SQLCHECK_SCOPED_FAILPOINT("chaos_test_point"));
    {
      FailpointScope nested;  // re-entrant
      EXPECT_TRUE(SQLCHECK_SCOPED_FAILPOINT("chaos_test_point"));
    }
    EXPECT_TRUE(SQLCHECK_SCOPED_FAILPOINT("chaos_test_point"));
  }
  EXPECT_FALSE(SQLCHECK_SCOPED_FAILPOINT("chaos_test_point"));
}

TEST_F(FailpointTest, ConfigureParsesTheEnvironmentSyntax) {
  FailpointRegistry& reg = FailpointRegistry::Instance();
  ASSERT_TRUE(reg.Configure("chaos_a=0.5, chaos_b=after-7 ,chaos_c=oneshot").ok());
  EXPECT_EQ(reg.Info("chaos_a").mode, "p=" + std::to_string(0.5));
  EXPECT_EQ(reg.Info("chaos_b").mode, "after-7");
  EXPECT_EQ(reg.Info("chaos_c").mode, "after-1");
}

TEST_F(FailpointTest, ConfigureRejectsMalformedSpecs) {
  FailpointRegistry& reg = FailpointRegistry::Instance();
  EXPECT_FALSE(reg.Configure("chaos_a").ok());            // no '='
  EXPECT_FALSE(reg.Configure("chaos_a=").ok());           // empty mode
  EXPECT_FALSE(reg.Configure("chaos_a=2.0").ok());        // prob > 1
  EXPECT_FALSE(reg.Configure("chaos_a=0").ok());          // prob must be > 0
  EXPECT_FALSE(reg.Configure("chaos_a=after-0").ok());    // N >= 1
  EXPECT_FALSE(reg.Configure("chaos_a=after-x").ok());    // not a number
  EXPECT_FALSE(reg.Configure("=oneshot").ok());           // empty name
  // Valid entries before the malformed one still apply.
  EXPECT_FALSE(reg.Configure("chaos_good=oneshot,chaos_bad=nope").ok());
  EXPECT_EQ(reg.Info("chaos_good").mode, "after-1");
}

TEST_F(FailpointTest, DisarmAllZeroesTheArmedGate) {
  FailpointRegistry& reg = FailpointRegistry::Instance();
  ASSERT_TRUE(reg.Configure("chaos_a=1.0,chaos_b=oneshot").ok());
  EXPECT_TRUE(AnyFailpointArmed());
  reg.DisarmAll();
  EXPECT_FALSE(AnyFailpointArmed());
  EXPECT_EQ(reg.Info("chaos_a").mode, "off");
  EXPECT_FALSE(SQLCHECK_FAILPOINT("chaos_a"));
}

TEST_F(FailpointTest, DisarmOnePointLeavesOthersArmed) {
  FailpointRegistry& reg = FailpointRegistry::Instance();
  ASSERT_TRUE(reg.Configure("chaos_a=1.0,chaos_b=1.0").ok());
  reg.Disarm("chaos_a");
  EXPECT_TRUE(AnyFailpointArmed());
  EXPECT_FALSE(SQLCHECK_FAILPOINT("chaos_a"));
  EXPECT_TRUE(SQLCHECK_FAILPOINT("chaos_b"));
}

// ---------------------------- deadline wheel ---------------------------------

TEST(DeadlineWheelTest, EmptyWheelHasNoTimeout) {
  server::DeadlineWheel wheel;
  EXPECT_EQ(wheel.NextTimeoutMs(), -1);
  EXPECT_EQ(wheel.size(), 0u);
  std::vector<server::DeadlineEntry> due;
  wheel.PopDue(1000, &due);
  EXPECT_TRUE(due.empty());
}

TEST(DeadlineWheelTest, PopsExactlyTheDueEntries) {
  server::DeadlineWheel wheel;
  wheel.Add(1, 10, 1050);
  wheel.Add(2, 20, 1500);
  wheel.Add(3, 30, 1060);
  EXPECT_EQ(wheel.size(), 3u);
  EXPECT_GT(wheel.NextTimeoutMs(), 0);

  std::vector<server::DeadlineEntry> due;
  wheel.PopDue(1100, &due);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(wheel.size(), 1u);
  // Both expired entries surface; the 1500ms one stays.
  bool saw_seq10 = false, saw_seq30 = false;
  for (const server::DeadlineEntry& entry : due) {
    saw_seq10 |= (entry.conn_id == 1 && entry.seq == 10);
    saw_seq30 |= (entry.conn_id == 3 && entry.seq == 30);
  }
  EXPECT_TRUE(saw_seq10);
  EXPECT_TRUE(saw_seq30);

  due.clear();
  wheel.PopDue(2000, &due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].seq, 20u);
  EXPECT_EQ(wheel.size(), 0u);
  EXPECT_EQ(wheel.NextTimeoutMs(), -1);
}

TEST(DeadlineWheelTest, FarFutureEntriesSurviveWheelRevolutions) {
  // 256 buckets x 16ms granularity = ~4s per revolution; an entry 10s out
  // shares a bucket with earlier ticks and must not expire early.
  server::DeadlineWheel wheel;
  wheel.Add(1, 1, 11000);
  std::vector<server::DeadlineEntry> due;
  for (int64_t now = 1000; now < 11000; now += 500) {
    wheel.PopDue(now, &due);
    EXPECT_TRUE(due.empty()) << "entry expired early at now=" << now;
  }
  wheel.PopDue(11016, &due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].deadline_ms, 11000);
}

TEST(DeadlineWheelTest, LargeJumpDrainsEverything) {
  server::DeadlineWheel wheel;
  for (uint64_t i = 0; i < 100; ++i) {
    wheel.Add(i, i, static_cast<int64_t>(1000 + i * 37));
  }
  std::vector<server::DeadlineEntry> due;
  wheel.PopDue(1000000, &due);  // the loop slept way past every deadline
  EXPECT_EQ(due.size(), 100u);
  EXPECT_EQ(wheel.size(), 0u);
}

// ---------------------------- quarantine set ---------------------------------

TEST(QuarantineSetTest, BoundedLruEvictsTheOldest) {
  QuarantineSet q(3);
  q.Insert(1);
  q.Insert(2);
  q.Insert(3);
  EXPECT_TRUE(q.Touch(1));  // refresh: 1 is now most recent
  q.Insert(4);              // evicts 2, the least recently touched
  EXPECT_EQ(q.size(), 3u);
  EXPECT_TRUE(q.Touch(1));
  EXPECT_FALSE(q.Touch(2));
  EXPECT_TRUE(q.Touch(3));
  EXPECT_TRUE(q.Touch(4));
}

TEST(QuarantineSetTest, ReinsertIsIdempotent) {
  QuarantineSet q(2);
  q.Insert(7);
  q.Insert(7);
  q.Insert(7);
  EXPECT_EQ(q.size(), 1u);
}

TEST(QuarantineSetTest, ZeroCapacityNeverStores) {
  QuarantineSet q(0);
  q.Insert(1);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.Touch(1));
}

// --------------------------- session under chaos -----------------------------

using SessionChaosTest = ChaosTest;

TEST_F(SessionChaosTest, ArmedScopedFailpointLeavesBareParsingAlone) {
  // arena_alloc at probability 1 would fail every chunk allocation — but
  // ParseStatement outside a session append holds no FailpointScope, so the
  // parse must succeed untouched.
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("arena_alloc", "1.0").ok());
  sql::StatementPtr stmt = sql::ParseStatement("SELECT a, b FROM t WHERE a = 1;");
  EXPECT_NE(stmt, nullptr);
}

TEST_F(SessionChaosTest, TransientMemoFaultIsAbsorbedByRetry) {
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("memo_insert", "oneshot").ok());
  AnalysisSession session;
  session.AddQuery("SELECT * FROM users;");
  EXPECT_EQ(session.statement_count(), 1u);
  EXPECT_TRUE(session.recent_failures().empty());
  EXPECT_GE(session.faults_recovered(), 1u);
  EXPECT_EQ(session.statements_quarantined(), 0u);
}

TEST_F(SessionChaosTest, TransientArenaFaultIsAbsorbedByRetry) {
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("arena_alloc", "oneshot").ok());
  AnalysisSession session;
  size_t added = session.AddScript("SELECT a FROM t1; SELECT b FROM t2;");
  EXPECT_EQ(added, 2u);
  EXPECT_TRUE(session.recent_failures().empty());
  EXPECT_GE(session.faults_recovered(), 1u);
}

TEST_F(SessionChaosTest, PersistentFaultQuarantinesAndRepeatIsRefusedO1) {
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("arena_alloc", "1.0").ok());
  AnalysisSession session;
  session.AddQuery("SELECT poisoned FROM t;");
  // Every retry failed: nothing ingested, the statement is quarantined and
  // reported as a failure entry.
  EXPECT_EQ(session.statement_count(), 0u);
  ASSERT_EQ(session.recent_failures().size(), 1u);
  EXPECT_EQ(session.recent_failures()[0].code, "internal_error");
  EXPECT_TRUE(session.recent_failures()[0].quarantined);
  EXPECT_EQ(session.statements_quarantined(), 1u);
  EXPECT_EQ(session.quarantine_size(), 1u);

  // Faults clear — but the fingerprint stays quarantined: the repeat (even
  // respelled in keyword case and whitespace — the same exact-canonical
  // form) is refused by the O(1) probe before any parse work.
  FailpointRegistry::Instance().DisarmAll();
  session.AddQuery("select   poisoned\n FROM t;");
  EXPECT_EQ(session.statement_count(), 0u);
  EXPECT_EQ(session.quarantine_refusals(), 1u);
  ASSERT_EQ(session.recent_failures().size(), 1u);
  EXPECT_TRUE(session.recent_failures()[0].quarantined);

  // Different statements are unaffected.
  session.AddQuery("SELECT healthy FROM t;");
  EXPECT_EQ(session.statement_count(), 1u);
  EXPECT_TRUE(session.recent_failures().empty());
}

TEST_F(SessionChaosTest, ReportsAreByteIdenticalOnceTransientFaultsClear) {
  // A profile of one-off faults across three seams: every statement still
  // lands via retry, and the resulting report must be byte-for-byte the
  // clean session's.
  const char* script =
      "CREATE TABLE users (id INT PRIMARY KEY, name VARCHAR(64));"
      "SELECT * FROM users;"
      "SELECT id, name FROM users WHERE name LIKE '%smith%';"
      "INSERT INTO users VALUES (1, 'a');";
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Configure("arena_alloc=after-2,memo_insert=after-3")
                  .ok());
  AnalysisSession chaotic;
  chaotic.AddScript(script);
  FailpointRegistry::Instance().DisarmAll();

  AnalysisSession clean;
  clean.AddScript(script);

  ASSERT_EQ(chaotic.statement_count(), clean.statement_count());
  EXPECT_TRUE(chaotic.recent_failures().empty());
  Report chaotic_report = chaotic.Snapshot();
  Report clean_report = clean.Snapshot();
  EXPECT_EQ(ToJson(chaotic_report, {}), ToJson(clean_report, {}));
}

TEST_F(SessionChaosTest, ExpiredDeadlineRefusesTheTailNotTheHead) {
  AnalysisSession session;
  session.AddScript("SELECT a FROM t1;");  // pre-deadline history
  session.SetDeadline(std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(10));
  size_t added = session.AddScript("SELECT b FROM t2; SELECT c FROM t3;");
  session.ClearDeadline();
  EXPECT_EQ(added, 0u);
  EXPECT_EQ(session.statement_count(), 1u);  // history intact
  ASSERT_EQ(session.recent_failures().size(), 2u);
  for (const StatementFailure& failure : session.recent_failures()) {
    EXPECT_EQ(failure.code, "deadline_exceeded");
    EXPECT_FALSE(failure.quarantined);  // a refusal, not a poison verdict
  }
  EXPECT_EQ(session.quarantine_size(), 0u);

  // The deadline was per-request: cleared, the session ingests normally.
  session.AddScript("SELECT b FROM t2;");
  EXPECT_EQ(session.statement_count(), 2u);
}

TEST_F(SessionChaosTest, StatementBudgetQuarantinesTheOverrunnerButKeepsIt) {
  // A genuinely heavy statement (a ~100k-item IN list) against a 1ms budget:
  // it must land — the tenant asked for it and paid — but its fingerprint is
  // quarantined so repeats are refused before the cost recurs.
  std::string heavy = "SELECT * FROM t WHERE id IN (0";
  for (int i = 1; i < 100000; ++i) {
    heavy += ',';
    heavy += std::to_string(i);
  }
  heavy += ");";

  SqlCheckOptions options;
  options.statement_budget_ms = 1;
  AnalysisSession session(options);
  session.AddScript(heavy);
  EXPECT_EQ(session.statement_count(), 1u);
  ASSERT_EQ(session.recent_failures().size(), 1u);
  EXPECT_EQ(session.recent_failures()[0].code, "deadline_exceeded");
  EXPECT_TRUE(session.recent_failures()[0].quarantined);
  EXPECT_EQ(session.statements_quarantined(), 1u);

  // The repeat is refused in O(1) — no second multi-millisecond parse.
  session.AddScript(heavy);
  EXPECT_EQ(session.statement_count(), 1u);
  EXPECT_EQ(session.quarantine_refusals(), 1u);
}

TEST_F(SessionChaosTest, ParallelIngestFoldsShardFailuresBack) {
  // 64 distinct statements, 4-way sharded ingest, arena faults at p=1:
  // nothing lands, every shard's quarantine and failure records merge into
  // the parent session (capped at kMaxRecordedFailures).
  std::string script;
  for (int i = 0; i < 64; ++i) {
    script += "SELECT c" + std::to_string(i) + " FROM t" + std::to_string(i) + ";\n";
  }
  SqlCheckOptions options;
  options.ingest_parallelism = 4;
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("arena_alloc", "1.0").ok());
  AnalysisSession session(options);
  size_t added = session.AddScript(script);
  EXPECT_EQ(added, 0u);
  EXPECT_EQ(session.statement_count(), 0u);
  EXPECT_EQ(session.statements_quarantined(), 64u);
  EXPECT_EQ(session.quarantine_size(), 64u);
  EXPECT_FALSE(session.recent_failures().empty());
  EXPECT_LE(session.recent_failures().size(), AnalysisSession::kMaxRecordedFailures);

  // Faults clear; the same script is refused wholesale by the quarantine
  // probes, while a fresh script ingests — and the merged session matches a
  // never-faulted session byte-for-byte.
  FailpointRegistry::Instance().DisarmAll();
  EXPECT_EQ(session.AddScript(script), 0u);
  EXPECT_GE(session.quarantine_refusals(), 64u);

  std::string fresh;
  for (int i = 0; i < 64; ++i) {
    fresh += "SELECT f" + std::to_string(i) + " FROM u" + std::to_string(i) + ";\n";
  }
  EXPECT_EQ(session.AddScript(fresh), 64u);

  AnalysisSession clean(options);
  clean.AddScript(fresh);
  EXPECT_EQ(ToJson(session.Snapshot(), {}), ToJson(clean.Snapshot(), {}));
}

// --------------------------- handler under chaos -----------------------------

using HandlerChaosTest = ChaosTest;

std::vector<std::string> SplitResponse(const std::string& response) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < response.size()) {
    size_t end = response.find('\n', start);
    if (end == std::string::npos) end = response.size();
    lines.push_back(response.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

TEST_F(HandlerChaosTest, PoisonedStatementStreamsAStatementErrorLine) {
  server::SessionHandler handler{SqlCheckOptions{}};
  // memo_insert (unlike arena_alloc, which only fires when a fresh chunk is
  // actually carved) evaluates once per new unique statement — a
  // deterministic poison regardless of arena occupancy.
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("memo_insert", "1.0").ok());
  std::string response =
      handler.HandleLine(R"({"op": "check", "sql": "SELECT doomed FROM t;"})");
  FailpointRegistry::Instance().DisarmAll();

  std::vector<std::string> lines = SplitResponse(response);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"op\": \"statement_error\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"code\": \"internal_error\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"quarantined\": true"), std::string::npos);
  EXPECT_NE(lines[0].find("SELECT doomed FROM t"), std::string::npos);
  // The request itself still succeeds — the failure is statement-scoped.
  EXPECT_NE(lines[1].find("\"op\": \"check\", \"ok\": true"), std::string::npos);
  EXPECT_NE(lines[1].find("\"statements\": 0"), std::string::npos);
  EXPECT_NE(lines[1].find("\"failed_statements\": 1"), std::string::npos);

  // Repeat offender: refused by the quarantine, same statement-scoped shape.
  response = handler.HandleLine(R"({"op": "check", "sql": "SELECT doomed FROM t;"})");
  lines = SplitResponse(response);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"quarantined\": true"), std::string::npos);
  EXPECT_NE(lines[1].find("\"failed_statements\": 1"), std::string::npos);

  // reset is the recovery path: the quarantine restarts from zero and the
  // response matches a handler that never saw a fault, byte for byte.
  handler.HandleLine(R"({"op": "reset"})");
  response = handler.HandleLine(R"({"op": "check", "sql": "SELECT doomed FROM t;"})");
  server::SessionHandler pristine{SqlCheckOptions{}};
  std::string expected =
      pristine.HandleLine(R"({"op": "check", "sql": "SELECT doomed FROM t;"})");
  EXPECT_EQ(response, expected);
}

TEST_F(HandlerChaosTest, ExpiredRequestDeadlineAnswersDeadlineExceeded) {
  server::ServerGauges gauges;
  server::SessionHandler handler{SqlCheckOptions{}, false, &gauges};
  // deadline_ms = 1 on the monotonic clock is in the distant past: every
  // piece of the script is refused at the cooperative check.
  std::string response = handler.HandleLine(
      R"({"op": "check", "sql": "SELECT a FROM t1; SELECT b FROM t2;"})",
      /*deadline_ms=*/1);
  std::vector<std::string> lines = SplitResponse(response);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"code\": \"deadline_exceeded\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"op\": \"check\", \"ok\": false"), std::string::npos);
  EXPECT_NE(lines.back().find("\"code\": \"deadline_exceeded\""), std::string::npos);
  EXPECT_EQ(gauges.deadlines_expired.load(), 1u);

  // The deadline was per-request: the next (undeadlined) check works and the
  // session held no partial junk from the refused one.
  response = handler.HandleLine(R"({"op": "check", "sql": "SELECT a FROM t1;"})");
  EXPECT_NE(response.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(response.find("\"total_statements\": 1"), std::string::npos);
}

TEST_F(HandlerChaosTest, StatsReportRobustnessCounters) {
  server::SessionHandler handler{SqlCheckOptions{}};
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("memo_insert", "oneshot").ok());
  handler.HandleLine(R"({"op": "check", "sql": "SELECT recovered FROM t;"})");
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("memo_insert", "1.0").ok());
  handler.HandleLine(R"({"op": "check", "sql": "SELECT doomed FROM t;"})");
  FailpointRegistry::Instance().DisarmAll();
  handler.HandleLine(R"({"op": "check", "sql": "SELECT doomed FROM t;"})");

  std::string stats = handler.HandleLine(R"({"op": "stats"})");
  EXPECT_NE(stats.find("\"statements_quarantined\": 1"), std::string::npos);
  EXPECT_NE(stats.find("\"quarantine_size\": 1"), std::string::npos);
  EXPECT_NE(stats.find("\"quarantine_refusals\": 1"), std::string::npos);
  EXPECT_NE(stats.find("\"faults_recovered\": 1"), std::string::npos);
}

TEST_F(HandlerChaosTest, StatementErrorSqlEchoIsTruncatedUtf8Safely) {
  // 200 two-byte codepoints: the 160-byte cap falls mid-codepoint and must
  // back off to a boundary rather than emit a torn sequence.
  std::string sql = "SELECT '";
  for (int i = 0; i < 200; ++i) sql += "\xC3\xA9";
  sql += "' FROM t;";
  std::string line =
      server::StatementErrorLine("internal_error", "boom", sql, true);
  EXPECT_NE(line.find("..."), std::string::npos);
  EXPECT_TRUE(server::ValidUtf8(line));
}

// ----------------------- live server under chaos -----------------------------

class ServerChaosTest : public ChaosTest {
 protected:
  void TearDown() override {
    if (server_) server_->Stop();
    ChaosTest::TearDown();
  }

  Status StartServer(server::ServerOptions options = {}) {
    options.host = "127.0.0.1";
    options.port = 0;
    if (options.workers == 0) options.workers = 2;
    server_ = std::make_unique<server::SqlCheckServer>(options);
    return server_->Start();
  }

  server::LineClient Connect() {
    server::LineClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    return client;
  }

  /// Reads one response group: zero or more finding/statement_error stream
  /// lines followed by the terminal line (anything else), which is returned
  /// last.
  std::vector<std::string> ReadResponse(server::LineClient* client) {
    std::vector<std::string> lines;
    while (true) {
      std::string line;
      if (!client->ReadLine(&line).ok()) break;
      bool stream_line =
          line.rfind("{\"op\": \"finding\", ", 0) == 0 ||
          line.rfind("{\"op\": \"statement_error\", ", 0) == 0;
      lines.push_back(std::move(line));
      if (!stream_line) break;
    }
    return lines;
  }

  std::unique_ptr<server::SqlCheckServer> server_;
};

TEST_F(ServerChaosTest, SocketFaultProfileIsTransparentToClients) {
  ASSERT_TRUE(StartServer().ok());

  // Collect the clean responses first, then replay the same request stream
  // under an aggressive read/write fault profile: dropped read rounds and
  // short writes must only delay bytes, never corrupt or lose them.
  std::vector<std::string> requests;
  requests.push_back(R"({"op": "check", "sql": "SELECT * FROM users;"})");
  requests.push_back(R"({"op": "check", "sql": "SELECT a FROM t WHERE b LIKE '%x%';"})");
  requests.push_back(R"({"op": "snapshot"})");
  requests.push_back(R"({"op": "ping"})");

  auto run_stream = [&]() {
    server::LineClient client = Connect();
    std::string hello;
    EXPECT_TRUE(client.ReadLine(&hello).ok());
    std::vector<std::string> all;
    for (const std::string& request : requests) {
      EXPECT_TRUE(client.SendLine(request).ok());
      for (std::string& line : ReadResponse(&client)) all.push_back(std::move(line));
    }
    client.Close();
    return all;
  };

  std::vector<std::string> clean = run_stream();
  ASSERT_FALSE(clean.empty());

  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Configure("socket_read=0.5,socket_write=0.5")
                  .ok());
  std::vector<std::string> chaotic = run_stream();
  FailpointRegistry::Instance().DisarmAll();

  EXPECT_EQ(chaotic, clean);
}

TEST_F(ServerChaosTest, OverloadShedsWithRetryAfterAndRecovers) {
  server::ServerOptions options;
  options.workers = 1;
  options.max_queue_depth = 1;
  ASSERT_TRUE(StartServer(options).ok());
  server::LineClient client = Connect();
  std::string hello;
  ASSERT_TRUE(client.ReadLine(&hello).ok());

  // One slow request to pin the single worker, then a burst of pings: the
  // admission gate must refuse most of the burst with a retryable
  // `overloaded` error carrying retry_after_ms.
  std::string big;
  for (int i = 0; i < 3000; ++i) {
    big += "SELECT col" + std::to_string(i) + " FROM tbl" + std::to_string(i) + "; ";
  }
  std::string burst = "{\"op\": \"check\", \"sql\": \"" + big + "\"}\n";
  const int kPings = 40;
  for (int i = 0; i < kPings; ++i) burst += "{\"op\": \"ping\"}\n";
  ASSERT_TRUE(client.SendRaw(burst).ok());

  // Shed refusals are written at admission time — they legitimately arrive
  // before the responses of requests admitted earlier (the `overloaded` line
  // never waits on a worker). Classify every line instead of assuming
  // request order: one check terminal plus exactly kPings ping-or-overloaded
  // lines must arrive.
  int shed = 0, served = 0, check_terminals = 0;
  while (check_terminals + shed + served < kPings + 1) {
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line).ok());
    if (line.rfind("{\"op\": \"finding\", ", 0) == 0 ||
        line.rfind("{\"op\": \"statement_error\", ", 0) == 0) {
      continue;  // the big check's stream lines
    }
    if (line.find("\"code\": \"overloaded\"") != std::string::npos) {
      ++shed;
      EXPECT_NE(line.find("\"retry_after_ms\": "), std::string::npos);
    } else if (line.find("\"op\": \"ping\", \"ok\": true") != std::string::npos) {
      ++served;
    } else if (line.find("\"op\": \"check\"") != std::string::npos) {
      ++check_terminals;
    } else {
      FAIL() << "unexpected response line: " << line;
    }
  }
  EXPECT_EQ(check_terminals, 1);
  EXPECT_GT(shed, 0);
  EXPECT_EQ(shed + served, kPings);
  EXPECT_GE(server_->gauges().requests_shed.load(), static_cast<uint64_t>(shed));

  // Nothing wedged: once the burst drains, the connection serves normally.
  ASSERT_TRUE(client.SendLine(R"({"op": "ping"})").ok());
  std::string pong;
  ASSERT_TRUE(client.ReadLine(&pong).ok());
  EXPECT_EQ(pong, "{\"op\": \"ping\", \"ok\": true}");
}

TEST_F(ServerChaosTest, QueuedRequestsPastTheDeadlineAreExpired) {
  server::ServerOptions options;
  options.workers = 1;
  options.request_deadline_ms = 30;
  ASSERT_TRUE(StartServer(options).ok());
  server::LineClient client = Connect();
  std::string hello;
  ASSERT_TRUE(client.ReadLine(&hello).ok());

  // The big check occupies the lone worker well past 30ms, so the pings
  // queued behind it expire on the deadline wheel without ever running; the
  // big check itself stops cooperatively at the cutoff.
  std::string big;
  for (int i = 0; i < 5000; ++i) {
    big += "SELECT col" + std::to_string(i) + " FROM tbl" + std::to_string(i) + "; ";
  }
  std::string burst = "{\"op\": \"check\", \"sql\": \"" + big + "\"}\n";
  const int kPings = 5;
  for (int i = 0; i < kPings; ++i) burst += "{\"op\": \"ping\"}\n";
  ASSERT_TRUE(client.SendRaw(burst).ok());

  // Wheel expiries are written by the event thread the instant the deadline
  // passes — while the worker is still streaming the big check's lines — so
  // responses legitimately interleave across requests. Classify every line
  // instead of assuming order: one check terminal plus exactly kPings
  // pong-or-expired lines must arrive.
  int deadline_hits = 0, served_pings = 0, expired_pings = 0, check_terminals = 0;
  while (check_terminals + served_pings + expired_pings < kPings + 1) {
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line).ok());
    if (line.rfind("{\"op\": \"finding\", ", 0) == 0 ||
        line.rfind("{\"op\": \"statement_error\", ", 0) == 0) {
      continue;  // the big check's stream lines
    }
    if (line.find("\"op\": \"check\"") != std::string::npos) {
      ++check_terminals;
      if (line.find("\"code\": \"deadline_exceeded\"") != std::string::npos) {
        ++deadline_hits;  // the check stopped cooperatively at the cutoff
      }
    } else if (line.find("\"op\": \"ping\", \"ok\": true") != std::string::npos) {
      ++served_pings;
    } else if (line.find("\"code\": \"deadline_exceeded\"") != std::string::npos) {
      ++expired_pings;
      ++deadline_hits;
    } else {
      FAIL() << "unexpected response line: " << line;
    }
  }
  EXPECT_EQ(check_terminals, 1);
  EXPECT_EQ(served_pings + expired_pings, kPings);
  EXPECT_GT(deadline_hits, 0);
  EXPECT_GE(server_->gauges().deadlines_expired.load(),
            static_cast<uint64_t>(expired_pings));

  // Recovery: an unhurried request on the same connection completes.
  ASSERT_TRUE(client.SendLine(R"({"op": "ping"})").ok());
  std::string pong;
  ASSERT_TRUE(client.ReadLine(&pong).ok());
  EXPECT_EQ(pong, "{\"op\": \"ping\", \"ok\": true}");
}

TEST_F(ServerChaosTest, AcceptFaultRejectsTheConnectionNotTheServer) {
  ASSERT_TRUE(StartServer().ok());
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("socket_accept", "oneshot").ok());

  // The first connection lands on the armed accept and is dropped at the
  // socket; the client sees EOF (connect succeeds — the kernel completed the
  // handshake — but no hello ever arrives).
  server::LineClient victim;
  ASSERT_TRUE(victim.Connect("127.0.0.1", server_->port()).ok());
  std::string line;
  EXPECT_FALSE(victim.ReadLine(&line).ok());

  // The daemon itself is unharmed: the next connection is served.
  server::LineClient survivor = Connect();
  ASSERT_TRUE(survivor.ReadLine(&line).ok());
  EXPECT_NE(line.find("\"op\": \"hello\""), std::string::npos);
  EXPECT_GE(server_->gauges().connections_rejected.load(), 1u);
}

}  // namespace
}  // namespace sqlcheck
