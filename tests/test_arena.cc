// Arena / NameInterner / zero-copy frontend tests: allocator lifetime rules,
// token span round-trips over nasty inputs, the steady-state zero-heap-
// allocation contract of the arena parse path, and the alias-resolution
// regression for the interned/flat alias map.
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/query_analyzer.h"
#include "common/arena.h"
#include "common/interner.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/splitter.h"

namespace {

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in this binary bumps it, so
// a region with zero delta performed zero heap allocations. (Debug or
// Release — the contract holds in both.)
// ---------------------------------------------------------------------------
std::atomic<size_t> g_heap_allocations{0};

}  // namespace

// GCC flags free() inside replaced global deallocation functions as a
// mismatched pair; this is the canonical counting-allocator shape, so hush.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  ++g_heap_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_heap_allocations;
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace sqlcheck {
namespace {

using sql::Token;
using sql::TokenBuffer;
using sql::TokenKind;

// ------------------------------- Arena -------------------------------------

TEST(ArenaTest, DupReturnsStableCopies) {
  Arena arena(64);
  std::string source = "hello world";
  std::string_view copy = arena.Dup(source);
  source.assign("xxxxxxxxxxx");
  EXPECT_EQ(copy, "hello world");
  EXPECT_NE(copy.data(), source.data());
}

TEST(ArenaTest, ManySmallAllocationsSpanChunks) {
  Arena arena(64);
  std::vector<std::string_view> views;
  for (int i = 0; i < 1000; ++i) {
    views.push_back(arena.Dup(std::string(17, static_cast<char>('a' + i % 26))));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(views[i], std::string(17, static_cast<char>('a' + i % 26)));
  }
  EXPECT_GE(arena.bytes_used(), 17000u);
  EXPECT_EQ(arena.allocation_count(), 1000u);
}

TEST(ArenaTest, ResetRetainsCapacityAndInvalidatesCounts) {
  Arena arena(64);
  for (int i = 0; i < 100; ++i) arena.Dup("some moderately long payload here");
  size_t reserved = arena.bytes_reserved();
  ASSERT_GT(reserved, 0u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.allocation_count(), 0u);
  // Retained chunks: refilling identically must not grow the reservation.
  for (int i = 0; i < 100; ++i) arena.Dup("some moderately long payload here");
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, TrimReleasesTailChunksWhenEmpty) {
  Arena arena(64);
  for (int i = 0; i < 200; ++i) arena.Dup("some moderately long payload here");
  size_t grown = arena.bytes_reserved();

  // Trim on a non-empty arena is a no-op: live objects must never move.
  arena.Trim(0);
  EXPECT_EQ(arena.bytes_reserved(), grown);

  arena.Reset();
  arena.Trim(0);
  size_t trimmed = arena.bytes_reserved();
  EXPECT_LT(trimmed, grown);
  EXPECT_GT(trimmed, 0u);  // chunk 0 is always retained

  // The trimmed arena is immediately usable and regrows on demand.
  for (int i = 0; i < 200; ++i) arena.Dup("some moderately long payload here");
  EXPECT_GE(arena.bytes_reserved(), trimmed);

  // A keep_bytes floor retains capacity up to (at least) that budget.
  arena.Reset();
  arena.Trim(grown);
  EXPECT_GE(arena.bytes_reserved(), trimmed);
}

TEST(TokenBufferTest, TrimShedsScratchReservation) {
  TokenBuffer buffer;
  std::string big = "SELECT '";
  for (int i = 0; i < (1 << 14); ++i) big += "x''";  // escaped quotes: the
  big += "' FROM t";  // payload normalizes through the norm arena
  sql::Lex(big, buffer);
  size_t grown = buffer.reserved_bytes();
  ASSERT_GT(grown, 0u);
  buffer.Trim(0);
  EXPECT_LT(buffer.reserved_bytes(), grown);
  // Still lexes correctly after the trim.
  sql::Lex("SELECT 1 FROM t", buffer);
  EXPECT_GT(buffer.tokens().size(), 0u);
}

TEST(ArenaTest, WorksAsPmrResource) {
  Arena arena;
  std::pmr::vector<std::pmr::string> v(&arena);
  for (int i = 0; i < 64; ++i) v.emplace_back("value-with-some-length-" + std::to_string(i));
  EXPECT_EQ(v.size(), 64u);
  EXPECT_GT(arena.bytes_used(), 0u);
}

// Arena-tier statements must not be copyable: a copy could outlive the
// arena that owns every byte of the original.
static_assert(!std::is_copy_constructible_v<sql::SelectStatement>,
              "statements must not be copyable out of their arena");
static_assert(!std::is_copy_assignable_v<sql::SelectStatement>);
static_assert(!std::is_copy_constructible_v<sql::Expr>);
static_assert(!std::is_copy_constructible_v<sql::UnknownStatement>);

TEST(ArenaTest, ParsedStatementLivesInArena) {
  Arena arena;
  sql::StatementPtr stmt = sql::ParseStatement("SELECT a, b FROM t WHERE a = 1", &arena);
  ASSERT_NE(stmt, nullptr);
  EXPECT_TRUE(stmt->arena_managed);
  EXPECT_GT(arena.bytes_used(), 0u);
  const auto* select = stmt->As<sql::SelectStatement>();
  ASSERT_NE(select, nullptr);
  EXPECT_EQ(select->from[0].name, "t");
}

TEST(ArenaTest, HeapTierStatementsStillDeleteCleanly) {
  // No arena: the same API must produce ordinary heap statements (exercised
  // under ASan in CI — a double free or leak here fails the job).
  sql::StatementPtr stmt = sql::ParseStatement("SELECT a FROM t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_FALSE(stmt->arena_managed);
  sql::StatementPtr clone = stmt->CloneStatement();
  EXPECT_FALSE(clone->arena_managed);
}

TEST(ArenaTest, CloneOfArenaStatementOutlivesArena) {
  sql::StatementPtr clone;
  {
    Arena arena;
    sql::StatementPtr stmt =
        sql::ParseStatement("SELECT \"weird name\" FROM t WHERE x = 'it''s'", &arena);
    clone = stmt->CloneStatement();
  }  // arena gone; the clone is heap-tier and self-contained
  EXPECT_EQ(std::string_view(clone->raw_sql),
            "SELECT \"weird name\" FROM t WHERE x = 'it''s'");
}

// ----------------------------- NameInterner --------------------------------

TEST(InternerTest, CaseInsensitiveDense) {
  NameInterner interner;
  NameId a = interner.Intern("Users");
  EXPECT_EQ(interner.Intern("USERS"), a);
  EXPECT_EQ(interner.Intern("users"), a);
  NameId b = interner.Intern("Orders");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.Lower(a), "users");
  EXPECT_EQ(interner.Spelling(a), "Users");  // first spelling wins
  EXPECT_EQ(interner.Find("uSeRs"), a);
  EXPECT_EQ(interner.Find("absent"), kNoName);
  EXPECT_EQ(interner.Intern(""), kNoName);
}

TEST(InternerTest, LowerViewsStayValidAsTableGrows) {
  NameInterner interner;
  std::string_view first = interner.Lower(interner.Intern("First_Table"));
  for (int i = 0; i < 10000; ++i) interner.Intern("name" + std::to_string(i));
  EXPECT_EQ(first, "first_table");
}

TEST(InternerTest, MergeRemapsShardIds) {
  NameInterner main;
  main.Intern("users");   // 1
  main.Intern("orders");  // 2
  NameInterner shard;
  shard.Intern("ORDERS");  // shard id 1
  shard.Intern("items");   // shard id 2
  std::vector<NameId> remap;
  main.Merge(shard, &remap);
  EXPECT_EQ(remap[1], main.Find("orders"));
  EXPECT_EQ(remap[2], main.Find("items"));
  EXPECT_EQ(main.size(), 3u);
}

// --------------------------- Token round-trips -----------------------------

TEST(TokenRoundTripTest, OffsetsReconstructEveryLexeme) {
  // Dollar quotes, nested block comments, every identifier-quoting style,
  // escaped strings, params, multi-char operators — each token's
  // offset/length must slice the exact original lexeme out of the source,
  // spans must be disjoint and monotonic, and every non-whitespace byte
  // must belong to some token.
  const std::string_view corpus[] = {
      "SELECT a, \"b c\", `d`, [e f] FROM t WHERE x = 'it''s' AND y = $tag$raw $ body$tag$",
      "/* outer /* nested */ still comment */ SELECT 1 + 2.5e-3 FROM t -- tail",
      "SELECT * FROM t WHERE a <=> b AND c #>> '{x}' AND d !~* 'p' AND e := 1",
      "INSERT INTO t VALUES (?, %s, :named, $1, 'a\\'b')",
      "# mysql comment\nSELECT x FROM y WHERE json #> 'p' @> q",
      "UPDATE \"Mixed\"\"Quote\" SET a = 'x;y' WHERE b IN (1, 2, 3)",
  };
  TokenBuffer buffer;
  sql::LexerOptions keep;
  keep.keep_comments = true;
  for (std::string_view sql : corpus) {
    const std::vector<Token>& tokens = Lex(sql, buffer, keep);
    size_t prev_end = 0;
    std::vector<bool> covered(sql.size(), false);
    for (const Token& t : tokens) {
      if (t.kind == TokenKind::kEnd) {
        EXPECT_EQ(t.offset, sql.size());
        continue;
      }
      ASSERT_LE(t.offset + t.length, sql.size()) << sql;
      EXPECT_GE(t.offset, prev_end) << "overlapping spans in: " << sql;
      prev_end = t.offset + t.length;
      std::string_view lexeme = sql.substr(t.offset, t.length);
      for (size_t i = t.offset; i < t.offset + t.length; ++i) covered[i] = true;
      if (!t.normalized) {
        // Zero-copy payload: the text is a subview of its own lexeme.
        EXPECT_GE(t.text.data(), lexeme.data()) << sql;
        EXPECT_LE(t.text.data() + t.text.size(), lexeme.data() + lexeme.size()) << sql;
      } else {
        // Normalized payloads (escape-stripped) live in the buffer but must
        // still be reconstructible: stripping quotes/escapes from the lexeme
        // yields the text. Spot-check total length shrinks.
        EXPECT_LT(t.text.size(), lexeme.size()) << sql;
      }
      switch (t.kind) {
        case TokenKind::kIdentifier:
        case TokenKind::kKeyword:
        case TokenKind::kNumber:
        case TokenKind::kOperator:
        case TokenKind::kParam:
        case TokenKind::kComment:
          EXPECT_EQ(t.text, lexeme) << sql;
          break;
        default:
          break;
      }
    }
    for (size_t i = 0; i < sql.size(); ++i) {
      if (!std::isspace(static_cast<unsigned char>(sql[i]))) {
        EXPECT_TRUE(covered[i]) << "byte " << i << " uncovered in: " << sql;
      }
    }
  }
}

TEST(TokenRoundTripTest, UnknownStatementTokensSelfContained) {
  // Unparseable statements keep their token run; the views must point into
  // the statement's own storage, not the (dead) lex-time buffer.
  sql::StatementPtr stmt;
  {
    Arena arena;
    std::string transient = "MERGE INTO t USING s ON t.id = s.id WHEN 'it''s' THEN x";
    stmt = sql::ParseStatement(transient, &arena)->CloneStatement();
    // `transient` and the arena die here; the heap clone must survive.
  }
  const auto* unknown = stmt->As<sql::UnknownStatement>();
  ASSERT_NE(unknown, nullptr);
  ASSERT_FALSE(unknown->tokens.empty());
  bool saw_normalized = false;
  for (const Token& t : unknown->tokens) {
    if (t.normalized) saw_normalized = true;
    if (t.kind == TokenKind::kIdentifier || t.kind == TokenKind::kKeyword) {
      EXPECT_FALSE(t.text.empty());
    }
  }
  EXPECT_TRUE(saw_normalized);  // 'it''s' forces an owned payload
  EXPECT_EQ(unknown->tokens.front().text, "MERGE");
}

TEST(TokenRoundTripTest, UnterminatedQuoteBodyPastTrimIsPreserved) {
  // An unterminated string at end-of-input keeps its trailing whitespace in
  // the token text, but Trim strips it from raw_sql — the adopted token must
  // take an owned copy rather than a (truncated) view of raw_sql.
  Arena arena;
  sql::StatementPtr stmt = sql::ParseStatement("GRANT 'abc  ", &arena);
  const auto* unknown = stmt->As<sql::UnknownStatement>();
  ASSERT_NE(unknown, nullptr);
  ASSERT_GE(unknown->tokens.size(), 2u);
  EXPECT_EQ(std::string_view(unknown->raw_sql), "GRANT 'abc");
  EXPECT_EQ(unknown->tokens[1].kind, TokenKind::kString);
  EXPECT_EQ(unknown->tokens[1].text, "abc  ");
  // Clone must re-rebase the owned payload too.
  sql::StatementPtr clone = stmt->CloneStatement();
  EXPECT_EQ(clone->As<sql::UnknownStatement>()->tokens[1].text, "abc  ");
}

// --------------------------- Zero-allocation -------------------------------

TEST(ZeroAllocTest, SteadyStateParsePathDoesNotTouchTheHeap) {
  // Statements chosen to cover the common shapes (no casts — TypeName
  // rendering for casts builds a transient std::string, which is fine but
  // not part of the steady-state contract being spot-checked).
  const std::string_view statements[] = {
      "SELECT u.id, u.name FROM users u JOIN orders o ON u.id = o.user_id "
      "WHERE o.total > 100 AND u.status = 'active' ORDER BY u.created_at DESC LIMIT 10",
      "INSERT INTO logs (user_id, action) VALUES (1, 'login')",
      "UPDATE users SET name = 'x', updated_at = 12345 WHERE id = 7",
      "DELETE FROM sessions WHERE expires_at < 9999",
      "SELECT COUNT(*) FROM t WHERE a BETWEEN 1 AND 5 AND b LIKE '%x%' GROUP BY c",
  };
  Arena arena;
  sql::TokenBuffer buffer;
  // Warm-up passes grow the arena chunks / token buffer capacity to their
  // steady-state sizes (Reset retains them).
  for (int pass = 0; pass < 3; ++pass) {
    arena.Reset();
    for (std::string_view s : statements) {
      sql::StatementPtr stmt = sql::ParseStatement(s, &arena, &buffer);
      ASSERT_NE(stmt, nullptr);
    }
  }
  arena.Reset();
  size_t before = g_heap_allocations.load();
  for (std::string_view s : statements) {
    sql::StatementPtr stmt = sql::ParseStatement(s, &arena, &buffer);
    if (stmt == nullptr) std::abort();  // no gtest allocations inside the region
  }
  size_t after = g_heap_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "steady-state arena parse performed heap allocations";
}

// ------------------------ Alias-map regression -----------------------------

TEST(AliasMapRegressionTest, MixedCaseAliasResolvesToTable) {
  Arena arena;
  sql::StatementPtr stmt = sql::ParseStatement(
      "SELECT e.salary FROM Emp E WHERE e.id = 10 AND E.dept = 'sales'", &arena);
  QueryFacts facts = AnalyzeQuery(*stmt);
  ASSERT_EQ(facts.predicates.size(), 2u);
  EXPECT_EQ(facts.predicates[0].table, "Emp");
  EXPECT_EQ(facts.predicates[0].column, "id");
  EXPECT_EQ(facts.predicates[1].table, "Emp");
  ASSERT_EQ(facts.tables.size(), 1u);
  EXPECT_EQ(facts.tables[0], "Emp");
}

TEST(AliasMapRegressionTest, UnaliasedMixedCaseQualifier) {
  Arena arena;
  sql::StatementPtr stmt = sql::ParseStatement(
      "SELECT 1 FROM Users WHERE USERS.id = 3 AND users.age > 2", &arena);
  QueryFacts facts = AnalyzeQuery(*stmt);
  ASSERT_EQ(facts.predicates.size(), 2u);
  // Both spellings resolve through the case-insensitive binding to the
  // declared table name.
  EXPECT_EQ(facts.predicates[0].table, "Users");
  EXPECT_EQ(facts.predicates[1].table, "Users");
}

// -------------------------- Splitter regression ----------------------------

TEST(SplitterRegressionTest, BeginWorkIsTransactional) {
  // BEGIN WORK is transaction control, not a compound-statement opener; it
  // must not swallow the following statements into one piece.
  auto parts = sql::SplitStatements("BEGIN WORK; SELECT 1; COMMIT; SELECT 2");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "BEGIN WORK");
  EXPECT_EQ(parts[1], "SELECT 1");
}

}  // namespace
}  // namespace sqlcheck
