#include <gtest/gtest.h>

#include "core/sqlcheck.h"
#include "workload/globaleaks.h"

namespace sqlcheck {
namespace {

TEST(IntegrationTest, GlobaleaksWorkloadFindsThePaperHeadlineAps) {
  SqlCheck checker;
  checker.AddScript(workload::Globaleaks::ApWorkloadScript());
  Report report = checker.Run();
  ASSERT_FALSE(report.empty());

  auto counts = report.CountsByType();
  // The §2.1 / §8.2 anti-patterns must all surface.
  EXPECT_GE(counts[AntiPattern::kMultiValuedAttribute], 1);
  EXPECT_GE(counts[AntiPattern::kEnumeratedTypes], 1);
  EXPECT_GE(counts[AntiPattern::kNoForeignKey], 1);
  EXPECT_GE(counts[AntiPattern::kColumnWildcard], 1);
  EXPECT_GE(counts[AntiPattern::kImplicitColumns], 1);
  EXPECT_GE(counts[AntiPattern::kPatternMatching], 1);
}

TEST(IntegrationTest, DataAnalysisConfirmsMvaOnLiveDatabase) {
  Database db;
  workload::GlobaleaksOptions small;
  small.tenant_count = 20;
  small.users_per_tenant = 5;
  workload::Globaleaks::BuildWithAps(&db, small);

  SqlCheck checker;
  checker.AttachDatabase(&db);
  Report report = checker.Run();
  auto counts = report.CountsByType();
  // Pure data analysis (no queries!) still finds the packed user_ids column.
  EXPECT_GE(counts[AntiPattern::kMultiValuedAttribute], 1) << report.ToText();
}

TEST(IntegrationTest, RefactoredGlobaleaksIsMvaClean) {
  Database db;
  workload::GlobaleaksOptions small;
  small.tenant_count = 20;
  small.users_per_tenant = 5;
  workload::Globaleaks::BuildRefactored(&db, small);

  SqlCheck checker;
  checker.AttachDatabase(&db);
  Report report = checker.Run();
  auto counts = report.CountsByType();
  EXPECT_EQ(counts[AntiPattern::kMultiValuedAttribute], 0) << report.ToText();
  EXPECT_EQ(counts[AntiPattern::kEnumeratedTypes], 0) << report.ToText();
}

TEST(IntegrationTest, RankingPutsHighImpactFirstAndFixesAttach) {
  SqlCheck checker;
  checker.AddScript(workload::Globaleaks::ApWorkloadScript());
  Report report = checker.Run();
  ASSERT_GE(report.size(), 2u);
  for (size_t i = 1; i < report.findings.size(); ++i) {
    EXPECT_GE(report.findings[i - 1].ranked.score, report.findings[i].ranked.score);
  }
  // Every finding carries a fix (rewrite or textual).
  for (const auto& finding : report.findings) {
    EXPECT_FALSE(finding.fix.explanation.empty() && finding.fix.statements.empty());
  }
  // The report renders.
  EXPECT_NE(report.ToText().find("sqlcheck report"), std::string::npos);
}

TEST(IntegrationTest, FindAntiPatternsOneShotApi) {
  Report report = FindAntiPatterns("SELECT * FROM users");
  EXPECT_GE(report.CountsByType()[AntiPattern::kColumnWildcard], 1);
}

}  // namespace
}  // namespace sqlcheck
