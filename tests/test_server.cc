// The server stack, bottom-up: the wire parser (framing, escapes, hostile
// input), the transport-free SessionHandler (every op, quota refusal and
// recovery, byte-identity of streamed findings against the batch emitters),
// and the live epoll daemon over loopback (greeting, pipelining, split
// reads, oversize resync, capacity rejection, idle eviction, half-close,
// and end-to-end byte-identity on examples/sample_workload.sql).
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/emit.h"
#include "core/session.h"
#include "core/sqlcheck.h"
#include "server/client.h"
#include "server/handler.h"
#include "server/server.h"
#include "server/wire.h"

namespace sqlcheck {
namespace server {
namespace {

// ----------------------------- wire parsing ---------------------------------

TEST(WireParse, MinimalRequest) {
  Request r = ParseRequest(R"({"op": "ping"})");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.op, "ping");
  EXPECT_TRUE(r.sql.empty());
}

TEST(WireParse, AllKnownFields) {
  Request r = ParseRequest(R"({"op":"snapshot","sql":"SELECT 1;","format":"json"})");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.op, "snapshot");
  EXPECT_EQ(r.sql, "SELECT 1;");
  EXPECT_EQ(r.format, "json");
}

TEST(WireParse, EscapesDecode) {
  Request r = ParseRequest(R"({"op":"check","sql":"SELECT \"a\\b\"\n\tFROM t;"})");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.sql, "SELECT \"a\\b\"\n\tFROM t;");
}

TEST(WireParse, UnicodeEscapes) {
  // BMP escape plus a surrogate pair (U+1F600).
  Request r = ParseRequest(R"({"op":"check","sql":"é 😀"})");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.sql, "\xC3\xA9 \xF0\x9F\x98\x80");
}

TEST(WireParse, UnpairedSurrogateRejected) {
  EXPECT_FALSE(ParseRequest(R"({"op":"check","sql":"\ud83d"})").ok);
  EXPECT_FALSE(ParseRequest(R"({"op":"check","sql":"\ude00"})").ok);
}

TEST(WireParse, UnknownMembersIgnored) {
  Request r = ParseRequest(
      R"({"op":"ping","extra":{"nested":[1,2,{"k":"v"}]},"n":42,"b":true,"z":null})");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.op, "ping");
}

TEST(WireParse, MalformedRejected) {
  EXPECT_FALSE(ParseRequest("").ok);
  EXPECT_FALSE(ParseRequest("not json").ok);
  EXPECT_FALSE(ParseRequest(R"(["op"])").ok);          // not an object
  EXPECT_FALSE(ParseRequest(R"({"op": "ping"} junk)").ok);  // trailing bytes
  EXPECT_FALSE(ParseRequest(R"({"op": })").ok);
  EXPECT_FALSE(ParseRequest(R"({"op": "ping")").ok);   // unterminated object
  EXPECT_FALSE(ParseRequest(R"({"sql": "SELECT 1;"})").ok);  // missing op
  EXPECT_FALSE(ParseRequest(R"({"op": 7})").ok);       // op must be a string
  EXPECT_FALSE(ParseRequest(R"({"sql": [1]})").ok);    // sql must be a string
  Request r = ParseRequest("not json");
  EXPECT_EQ(r.error_code, ErrorCode::kBadRequest);
}

TEST(WireParse, InvalidUtf8Rejected) {
  std::string line = "{\"op\": \"ping\", \"x\": \"\xC3\x28\"}";  // bad continuation
  EXPECT_FALSE(ParseRequest(line).ok);
  std::string overlong = "{\"op\": \"ping\", \"x\": \"\xC0\xAF\"}";  // overlong '/'
  EXPECT_FALSE(ParseRequest(overlong).ok);
  std::string raw_ctrl = "{\"op\": \"ping\", \"x\": \"a\x01b\"}";
  EXPECT_FALSE(ParseRequest(raw_ctrl).ok);
}

TEST(WireParse, ValidUtf8Accepted) {
  EXPECT_TRUE(ValidUtf8("plain ascii"));
  EXPECT_TRUE(ValidUtf8("caf\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x98\x80"));
  EXPECT_FALSE(ValidUtf8("\xED\xA0\x80"));  // encoded surrogate
  EXPECT_FALSE(ValidUtf8("\xF4\x90\x80\x80"));  // > U+10FFFF
  EXPECT_FALSE(ValidUtf8("\xFF"));
}

TEST(WireParse, DeepNestingBounded) {
  std::string deep = R"({"op":"ping","x":)";
  for (int i = 0; i < 64; ++i) deep += "[";
  for (int i = 0; i < 64; ++i) deep += "]";
  deep += "}";
  EXPECT_FALSE(ParseRequest(deep).ok);  // depth bound, not a stack overflow
}

// --------------------------- handler semantics ------------------------------

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) break;
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

TEST(Handler, PingAndQuit) {
  SessionHandler handler{SqlCheckOptions{}};
  EXPECT_EQ(handler.HandleLine(R"({"op": "ping"})"), "{\"op\": \"ping\", \"ok\": true}\n");
  EXPECT_FALSE(handler.quit());
  EXPECT_EQ(handler.HandleLine(R"({"op": "quit"})"), "{\"op\": \"quit\", \"ok\": true}\n");
  EXPECT_TRUE(handler.quit());
}

TEST(Handler, CheckStreamsFindingsThenTerminal) {
  SessionHandler handler{SqlCheckOptions{}};
  std::string response =
      handler.HandleLine(R"({"op": "check", "sql": "SELECT * FROM users;"})");
  std::vector<std::string> lines = SplitLines(response);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"op\": \"finding\""), std::string::npos);
  EXPECT_NE(lines[0].find("Column Wildcard Usage"), std::string::npos);
  EXPECT_EQ(lines[1],
            "{\"op\": \"check\", \"ok\": true, \"statements\": 1, "
            "\"total_statements\": 1, \"findings\": 1}");
}

TEST(Handler, CheckRequiresSql) {
  SessionHandler handler{SqlCheckOptions{}};
  std::string response = handler.HandleLine(R"({"op": "check"})");
  EXPECT_NE(response.find(ErrorCode::kBadRequest), std::string::npos);
}

TEST(Handler, UnknownOpRejected) {
  SessionHandler handler{SqlCheckOptions{}};
  std::string response = handler.HandleLine(R"({"op": "explode"})");
  EXPECT_NE(response.find(ErrorCode::kBadRequest), std::string::npos);
  EXPECT_NE(response.find("explode"), std::string::npos);
}

// The streamed finding objects must be the batch emitters' bytes exactly:
// feed the same statements to a handler and to an offline session, and
// compare each finding line against FindingToJsonLine of the batch report.
TEST(Handler, FindingBytesMatchBatch) {
  const char* statements[] = {
      "CREATE TABLE t (id INT, tag_ids TEXT);",
      "SELECT * FROM t WHERE tag_ids LIKE '%,7,%';",
      "SELECT id FROM t ORDER BY RAND();",
  };
  SessionHandler handler{SqlCheckOptions{}};
  std::string streamed;
  for (const char* sql : statements) {
    streamed += handler.HandleLine(std::string(R"({"op": "check", "sql": ")") +
                                   JsonEscape(sql) + "\"}");
  }
  streamed += handler.HandleLine(R"({"op": "snapshot"})");

  AnalysisSession batch{SqlCheckOptions{}};
  for (const char* sql : statements) batch.Check(sql);
  Report report = batch.Snapshot();
  ASSERT_FALSE(report.findings.empty());

  std::vector<std::string> finding_lines;
  for (const std::string& line : SplitLines(streamed)) {
    if (line.rfind("{\"op\": \"finding\", ", 0) == 0) finding_lines.push_back(line);
  }
  // The snapshot tail re-streams the full ranked report; compare that tail.
  ASSERT_GE(finding_lines.size(), report.findings.size());
  size_t tail = finding_lines.size() - report.findings.size();
  for (size_t i = 0; i < report.findings.size(); ++i) {
    std::string expected = "{\"op\": \"finding\", \"finding\": " +
                           FindingToJsonLine(report.findings[i], i + 1) + "}";
    EXPECT_EQ(finding_lines[tail + i], expected) << "finding " << i;
  }
}

TEST(Handler, SnapshotJsonDocumentMatchesBatchEmitter) {
  SessionHandler handler{SqlCheckOptions{}};
  handler.HandleLine(R"({"op": "check", "sql": "SELECT * FROM users;"})");
  std::string response = handler.HandleLine(R"({"op": "snapshot", "format": "json"})");

  AnalysisSession batch{SqlCheckOptions{}};
  batch.Check("SELECT * FROM users;");
  std::string document = ToJson(batch.Snapshot(), EmitOptions{});
  std::string needle = "\"document\": \"" + JsonEscape(document) + "\"";
  EXPECT_NE(response.find(needle), std::string::npos)
      << "snapshot document must embed the batch ToJson bytes";
}

TEST(Handler, SnapshotUnknownFormatRejected) {
  SessionHandler handler{SqlCheckOptions{}};
  std::string response = handler.HandleLine(R"({"op": "snapshot", "format": "xml"})");
  EXPECT_NE(response.find(ErrorCode::kBadRequest), std::string::npos);
}

TEST(Handler, StatementQuotaRefusesAndResetRecovers) {
  SqlCheckOptions options;
  options.limits.max_statements = 2;
  SessionHandler handler{options};
  handler.HandleLine(R"({"op": "check", "sql": "SELECT 1;"})");
  handler.HandleLine(R"({"op": "check", "sql": "SELECT 2;"})");
  std::string refused = handler.HandleLine(R"({"op": "check", "sql": "SELECT 3;"})");
  EXPECT_NE(refused.find(ErrorCode::kQuotaExceeded), std::string::npos);
  EXPECT_EQ(handler.session().statement_count(), 2u);

  // The ingested history stays queryable after refusal...
  std::string snapshot = handler.HandleLine(R"({"op": "snapshot"})");
  EXPECT_NE(snapshot.find("\"ok\": true"), std::string::npos);

  // ...and reset is the recovery path: fresh session, fresh quota.
  EXPECT_EQ(handler.HandleLine(R"({"op": "reset"})"),
            "{\"op\": \"reset\", \"ok\": true}\n");
  std::string after = handler.HandleLine(R"({"op": "check", "sql": "SELECT 4;"})");
  EXPECT_NE(after.find("\"op\": \"check\", \"ok\": true"), std::string::npos);
  EXPECT_EQ(handler.session().statement_count(), 1u);
}

TEST(Handler, ByteQuotaRefusesOversizedRequest) {
  SqlCheckOptions options;
  options.limits.max_ingest_bytes = 64;
  SessionHandler handler{options};
  std::string ok = handler.HandleLine(R"({"op": "check", "sql": "SELECT 1;"})");
  EXPECT_NE(ok.find("\"ok\": true"), std::string::npos);
  std::string big(100, 'x');
  std::string refused = handler.HandleLine(
      R"({"op": "check", "sql": "SELECT ')" + big + R"(' FROM t;"})");
  EXPECT_NE(refused.find(ErrorCode::kQuotaExceeded), std::string::npos);
}

TEST(Handler, ArenaCapRefuses) {
  SqlCheckOptions options;
  options.limits.arena_cap_bytes = 16 * 1024;  // one arena chunk
  SessionHandler handler{options};
  // Keep ingesting distinct statements until the arena cap trips; the cap
  // must refuse with quota_exceeded rather than grow without bound.
  bool refused = false;
  for (int i = 0; i < 4000 && !refused; ++i) {
    std::string sql = "SELECT col_" + std::to_string(i) + " FROM table_" +
                      std::to_string(i) + " WHERE a = " + std::to_string(i) + ";";
    std::string response = handler.HandleLine(
        R"({"op": "check", "sql": ")" + JsonEscape(sql) + "\"}");
    refused = response.find(ErrorCode::kQuotaExceeded) != std::string::npos;
  }
  EXPECT_TRUE(refused);
  SessionUsage usage = handler.session().Usage();
  // The cap is enforced pre-append, so overshoot is bounded by one chunk.
  EXPECT_LE(usage.arena_reserved_bytes, options.limits.arena_cap_bytes + (64u << 10));
}

TEST(Handler, StatsReportsUsageAndLimits) {
  SqlCheckOptions options;
  options.limits.max_statements = 100;
  SessionHandler handler{options};
  handler.HandleLine(R"({"op": "check", "sql": "SELECT * FROM t;"})");
  std::string stats = handler.HandleLine(R"({"op": "stats"})");
  EXPECT_NE(stats.find("\"statements\": 1"), std::string::npos);
  EXPECT_NE(stats.find("\"ingested_bytes\": 16"), std::string::npos);
  EXPECT_NE(stats.find("\"max_statements\": 100"), std::string::npos);
  EXPECT_NE(stats.find("\"quota_ok\": true"), std::string::npos);
  EXPECT_NE(stats.find("\"arena_reserved_bytes\""), std::string::npos);
  EXPECT_NE(stats.find("\"interner_names\""), std::string::npos);
}

// ----------------------------- loopback daemon ------------------------------

class LoopbackTest : public ::testing::Test {
 protected:
  Status StartServer(ServerOptions options = {}) {
    options.port = 0;  // ephemeral
    options.workers = 2;
    server_ = std::make_unique<SqlCheckServer>(std::move(options));
    return server_->Start();
  }

  LineClient Connect() {
    LineClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    return client;
  }

  /// Reads lines until the terminal (non-finding) line; returns all of them.
  std::vector<std::string> ReadResponse(LineClient* client) {
    std::vector<std::string> lines;
    std::string line;
    while (client->ReadLine(&line).ok()) {
      lines.push_back(line);
      if (line.rfind("{\"op\": \"finding\", ", 0) != 0) break;
    }
    return lines;
  }

  std::unique_ptr<SqlCheckServer> server_;
};

TEST_F(LoopbackTest, GreetingAndPing) {
  ASSERT_TRUE(StartServer().ok());
  LineClient client = Connect();
  std::string hello;
  ASSERT_TRUE(client.ReadLine(&hello).ok());
  EXPECT_NE(hello.find("\"op\": \"hello\""), std::string::npos);
  EXPECT_NE(hello.find("\"protocol\": 1"), std::string::npos);
  EXPECT_NE(hello.find("\"rules\": 27"), std::string::npos);

  ASSERT_TRUE(client.SendLine(R"({"op": "ping"})").ok());
  std::string pong;
  ASSERT_TRUE(client.ReadLine(&pong).ok());
  EXPECT_EQ(pong, "{\"op\": \"ping\", \"ok\": true}");
}

TEST_F(LoopbackTest, PipelinedRequestsAnswerInOrder) {
  ASSERT_TRUE(StartServer().ok());
  LineClient client = Connect();
  std::string hello;
  ASSERT_TRUE(client.ReadLine(&hello).ok());

  // One write, three requests: responses must come back in request order.
  ASSERT_TRUE(client
                  .SendLine("{\"op\": \"check\", \"sql\": \"SELECT 1;\"}\n"
                            "{\"op\": \"check\", \"sql\": \"SELECT * FROM t;\"}\n"
                            "{\"op\": \"stats\"}")
                  .ok());
  std::vector<std::string> first = ReadResponse(&client);
  ASSERT_FALSE(first.empty());
  EXPECT_NE(first.back().find("\"total_statements\": 1"), std::string::npos);
  std::vector<std::string> second = ReadResponse(&client);
  ASSERT_FALSE(second.empty());
  EXPECT_NE(second.back().find("\"total_statements\": 2"), std::string::npos);
  EXPECT_NE(second.front().find("Column Wildcard Usage"), std::string::npos);
  std::vector<std::string> third = ReadResponse(&client);
  ASSERT_FALSE(third.empty());
  EXPECT_NE(third.back().find("\"op\": \"stats\""), std::string::npos);
}

TEST_F(LoopbackTest, SplitWritesReassemble) {
  ASSERT_TRUE(StartServer().ok());
  LineClient client = Connect();
  std::string hello;
  ASSERT_TRUE(client.ReadLine(&hello).ok());

  // The request arrives in three TCP pushes; the server must buffer until
  // the newline lands, answering nothing in between.
  std::string request = R"({"op": "check", "sql": "SELECT * FROM users;"})";
  ASSERT_TRUE(client.SendRaw(request.substr(0, 13)).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(client.SendRaw(request.substr(13, 17)).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(client.SendRaw(request.substr(30) + "\n").ok());
  std::vector<std::string> lines = ReadResponse(&client);
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.back().find("\"op\": \"check\", \"ok\": true"), std::string::npos);
}

TEST_F(LoopbackTest, OversizedLineErrorsAndResyncs) {
  ServerOptions options;
  options.max_line_bytes = 256;
  ASSERT_TRUE(StartServer(options).ok());
  LineClient client = Connect();
  std::string hello;
  ASSERT_TRUE(client.ReadLine(&hello).ok());

  std::string huge(1024, 'x');
  ASSERT_TRUE(client.SendLine("{\"op\": \"check\", \"sql\": \"" + huge + "\"}").ok());
  std::string error;
  ASSERT_TRUE(client.ReadLine(&error).ok());
  EXPECT_NE(error.find(ErrorCode::kLineTooLong), std::string::npos);

  // The stream resynchronizes: the next well-formed request still works.
  ASSERT_TRUE(client.SendLine(R"({"op": "ping"})").ok());
  std::string pong;
  ASSERT_TRUE(client.ReadLine(&pong).ok());
  EXPECT_EQ(pong, "{\"op\": \"ping\", \"ok\": true}");
}

TEST_F(LoopbackTest, CapacityRejectsBeyondMaxSessions) {
  ServerOptions options;
  options.max_sessions = 1;
  ASSERT_TRUE(StartServer(options).ok());
  LineClient first = Connect();
  std::string hello;
  ASSERT_TRUE(first.ReadLine(&hello).ok());

  LineClient second = Connect();
  std::string rejection;
  ASSERT_TRUE(second.ReadLine(&rejection).ok());
  EXPECT_NE(rejection.find(ErrorCode::kCapacity), std::string::npos);
  std::string eof_probe;
  EXPECT_FALSE(second.ReadLine(&eof_probe).ok());  // closed after the error

  // The seat frees up when the first tenant leaves.
  ASSERT_TRUE(first.SendLine(R"({"op": "quit"})").ok());
  std::string bye;
  ASSERT_TRUE(first.ReadLine(&bye).ok());
  first.Close();
  for (int attempt = 0; attempt < 50; ++attempt) {
    LineClient retry;
    ASSERT_TRUE(retry.Connect("127.0.0.1", server_->port()).ok());
    std::string line;
    ASSERT_TRUE(retry.ReadLine(&line).ok());
    if (line.find("\"op\": \"hello\"") != std::string::npos) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "capacity seat never freed after quit";
}

TEST_F(LoopbackTest, IdleSessionsAreEvicted) {
  ServerOptions options;
  options.idle_evict_ms = 100;
  ASSERT_TRUE(StartServer(options).ok());
  LineClient client = Connect();
  std::string hello;
  ASSERT_TRUE(client.ReadLine(&hello).ok());

  std::string notice;
  ASSERT_TRUE(client.ReadLine(&notice).ok());  // blocks until the sweep fires
  EXPECT_NE(notice.find(ErrorCode::kEvicted), std::string::npos);
  std::string eof_probe;
  EXPECT_FALSE(client.ReadLine(&eof_probe).ok());  // then the close
  EXPECT_GE(server_->gauges().evictions.load(), 1u);
}

TEST_F(LoopbackTest, HalfCloseFlushesPendingWork) {
  ASSERT_TRUE(StartServer().ok());
  LineClient client = Connect();
  std::string hello;
  ASSERT_TRUE(client.ReadLine(&hello).ok());
  ASSERT_TRUE(client.SendLine(R"({"op": "check", "sql": "SELECT * FROM t;"})").ok());
  client.ShutdownWrite();  // the `nc` pattern: EOF on stdin, keep reading
  std::vector<std::string> lines = ReadResponse(&client);
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.back().find("\"op\": \"check\", \"ok\": true"), std::string::npos);
  std::string eof_probe;
  EXPECT_FALSE(client.ReadLine(&eof_probe).ok());  // server closes after flush
}

TEST_F(LoopbackTest, SessionsAreIsolated) {
  ASSERT_TRUE(StartServer().ok());
  LineClient a = Connect();
  LineClient b = Connect();
  std::string hello;
  ASSERT_TRUE(a.ReadLine(&hello).ok());
  ASSERT_TRUE(b.ReadLine(&hello).ok());

  ASSERT_TRUE(a.SendLine(R"({"op": "check", "sql": "SELECT 1;"})").ok());
  ASSERT_TRUE(a.SendLine(R"({"op": "check", "sql": "SELECT 2;"})").ok());
  ASSERT_TRUE(b.SendLine(R"({"op": "check", "sql": "SELECT 3;"})").ok());
  ReadResponse(&a);
  std::vector<std::string> a2 = ReadResponse(&a);
  std::vector<std::string> b1 = ReadResponse(&b);
  ASSERT_FALSE(a2.empty());
  ASSERT_FALSE(b1.empty());
  // Tenant A has two statements, tenant B one — no cross-tenant bleed.
  EXPECT_NE(a2.back().find("\"total_statements\": 2"), std::string::npos);
  EXPECT_NE(b1.back().find("\"total_statements\": 1"), std::string::npos);
}

// End-to-end identity: stream examples/sample_workload.sql statement by
// statement through the live server; every finding object in the final
// snapshot must be byte-identical to the offline batch run's serialization.
TEST_F(LoopbackTest, SampleWorkloadFindingsMatchBatchBytes) {
  std::ifstream in(std::string(SQLCHECK_SOURCE_DIR) +
                   "/examples/sample_workload.sql");
  ASSERT_TRUE(in.is_open());
  std::ostringstream content;
  content << in.rdbuf();
  std::string workload = content.str();

  ASSERT_TRUE(StartServer().ok());
  LineClient client = Connect();
  std::string hello;
  ASSERT_TRUE(client.ReadLine(&hello).ok());
  ASSERT_TRUE(client
                  .SendLine(R"({"op": "check", "sql": ")" + JsonEscape(workload) +
                            "\"}")
                  .ok());
  ReadResponse(&client);
  ASSERT_TRUE(client.SendLine(R"({"op": "snapshot"})").ok());
  std::vector<std::string> lines = ReadResponse(&client);
  ASSERT_GE(lines.size(), 2u);

  AnalysisSession batch{SqlCheckOptions{}};
  batch.AddScript(workload);
  Report report = batch.Snapshot();
  ASSERT_FALSE(report.findings.empty());

  ASSERT_EQ(lines.size(), report.findings.size() + 1);
  for (size_t i = 0; i < report.findings.size(); ++i) {
    std::string expected = "{\"op\": \"finding\", \"finding\": " +
                           FindingToJsonLine(report.findings[i], i + 1) + "}";
    EXPECT_EQ(lines[i], expected) << "finding " << i;
  }
}

TEST_F(LoopbackTest, GaugesCountTraffic) {
  ASSERT_TRUE(StartServer().ok());
  {
    LineClient client = Connect();
    std::string hello;
    ASSERT_TRUE(client.ReadLine(&hello).ok());
    ASSERT_TRUE(client.SendLine(R"({"op": "ping"})").ok());
    std::string pong;
    ASSERT_TRUE(client.ReadLine(&pong).ok());
  }
  const ServerGauges& gauges = server_->gauges();
  EXPECT_GE(gauges.connections_accepted.load(), 1u);
  EXPECT_GE(gauges.requests.load(), 1u);
  EXPECT_GT(gauges.bytes_in.load(), 0u);
  EXPECT_GT(gauges.bytes_out.load(), 0u);
}

}  // namespace
}  // namespace server
}  // namespace sqlcheck
