#include "common/strings.h"

#include <gtest/gtest.h>

namespace sqlcheck {
namespace {

TEST(StringsTest, CaseConversions) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("SeLeCt"), "SELECT");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selects"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(StringsTest, StartsAndContainsIgnoreCase) {
  EXPECT_TRUE(StartsWithIgnoreCase("SELECT * FROM t", "select "));
  EXPECT_FALSE(StartsWithIgnoreCase("SEL", "select"));
  EXPECT_TRUE(ContainsIgnoreCase("a LIKE b", "like"));
  EXPECT_FALSE(ContainsIgnoreCase("ab", "abc"));
  EXPECT_TRUE(ContainsIgnoreCase("anything", ""));
}

TEST(StringsTest, SplitAndJoin) {
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ", "), "");
}

TEST(StringsTest, NumericPredicates) {
  EXPECT_TRUE(IsAllDigits("0123"));
  EXPECT_FALSE(IsAllDigits("12a"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_TRUE(LooksNumeric("42"));
  EXPECT_TRUE(LooksNumeric("-3.14"));
  EXPECT_TRUE(LooksNumeric("+7"));
  EXPECT_FALSE(LooksNumeric("1.2.3"));
  EXPECT_FALSE(LooksNumeric("abc"));
  EXPECT_FALSE(LooksNumeric("."));
}

TEST(StringsTest, DateDetection) {
  EXPECT_TRUE(LooksLikeDate("2019-07-04"));
  EXPECT_TRUE(LooksLikeDate("2019/07/04 12:00"));
  EXPECT_TRUE(LooksLikeDate("07/04/2019"));
  EXPECT_FALSE(LooksLikeDate("not a date"));
  EXPECT_FALSE(LooksLikeDate("2019-7-4"));  // needs zero padding
}

TEST(StringsTest, TimezoneSuffix) {
  EXPECT_TRUE(HasTimezoneSuffix("2019-07-04 10:00:00Z"));
  EXPECT_TRUE(HasTimezoneSuffix("2019-07-04 10:00:00+02:00"));
  EXPECT_TRUE(HasTimezoneSuffix("2019-07-04 10:00:00-0500"));
  EXPECT_FALSE(HasTimezoneSuffix("2019-07-04 10:00:00"));
  EXPECT_FALSE(HasTimezoneSuffix("2019-07-04"));
}

TEST(StringsTest, Unquote) {
  EXPECT_EQ(Unquote("'abc'"), "abc");
  EXPECT_EQ(Unquote("\"abc\""), "abc");
  EXPECT_EQ(Unquote("`abc`"), "abc");
  EXPECT_EQ(Unquote("[abc]"), "abc");
  EXPECT_EQ(Unquote("abc"), "abc");
  EXPECT_EQ(Unquote("'"), "'");  // too short to strip
}

}  // namespace
}  // namespace sqlcheck
