// Parallel batch-analysis pipeline: the N-thread run must be byte-identical
// to the serial run, the ThreadPool must actually fork/join correctly, and
// the built-in rules must tolerate concurrent evaluation (they are stateless;
// these tests keep them that way).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/sqlcheck.h"
#include "engine/executor.h"
#include "rules/registry.h"
#include "storage/database.h"
#include "workload/corpus.h"

namespace sqlcheck {
namespace {

// ------------------------------- ThreadPool --------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossPhases) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int phase = 0; phase < 3; ++phase) {
    for (int i = 0; i < 10; ++i) pool.Submit([&count] { count.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(count.load(), (phase + 1) * 10);
  }
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Nothing submitted; must not hang.
}

TEST(ThreadPoolTest, ResolveParallelismMapsNonPositiveToHardware) {
  EXPECT_EQ(ThreadPool::ResolveParallelism(3), 3);
  EXPECT_GE(ThreadPool::ResolveParallelism(0), 1);
  EXPECT_GE(ThreadPool::ResolveParallelism(-1), 1);
}

TEST(ParallelShardsTest, CoversRangeExactlyOnceInShardOrder) {
  for (int parallelism : {1, 2, 3, 4, 7}) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{64}}) {
      std::vector<int> hits(n, 0);
      std::vector<std::pair<size_t, size_t>> bounds;
      std::mutex mu;
      ParallelShards(n, parallelism, [&](int shard, size_t begin, size_t end) {
        std::lock_guard<std::mutex> lock(mu);
        bounds.emplace_back(begin, end);
        (void)shard;
        for (size_t i = begin; i < end; ++i) ++hits[i];
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i], 1) << "n=" << n << " p=" << parallelism << " i=" << i;
      }
      size_t covered = 0;
      for (const auto& [begin, end] : bounds) covered += end - begin;
      EXPECT_EQ(covered, n);
    }
  }
}

// ---------------------- workload used for equality tests --------------------

/// A mixed workload: the synthetic corpus statements (query + DDL rules)
/// plus a small profiled database (data rules), so every detector path runs.
std::string CorpusScript() {
  workload::CorpusOptions options;
  options.repo_count = 24;
  std::string script;
  for (const auto& labeled : workload::GenerateCorpus(options).AllStatements()) {
    script += labeled.sql;
    script += ";\n";
  }
  return script;
}

void PopulateDatabase(Database* db) {
  Executor exec(db);
  exec.ExecuteScript(R"sql(
CREATE TABLE users (id INTEGER PRIMARY KEY, name VARCHAR(40), status TEXT,
                    password VARCHAR(32), created_at TEXT);
CREATE TABLE orders (id INTEGER PRIMARY KEY, user_id INTEGER, tag_ids TEXT,
                     total FLOAT, subtotal FLOAT, tax FLOAT);
)sql");
  for (int i = 0; i < 32; ++i) {
    std::string n = std::to_string(i);
    exec.ExecuteSql("INSERT INTO users VALUES (" + n + ", 'user" + n +
                    "', 'active', 'hunter2', '2019-07-0" + std::to_string(i % 9 + 1) +
                    " 12:00:00')");
    exec.ExecuteSql("INSERT INTO orders VALUES (" + n + ", " + n + ", '1,2,3', 10.5, 10.0, 0.5)");
  }
}

Report RunWithParallelism(const std::string& script, const Database* db, int parallelism) {
  SqlCheckOptions options;
  options.parallelism = parallelism;
  SqlCheck checker(options);
  checker.AddScript(script);
  if (db != nullptr) checker.AttachDatabase(db);
  return checker.Run();
}

void ExpectSameDetections(const std::vector<Detection>& serial,
                          const std::vector<Detection>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].type, parallel[i].type) << "at " << i;
    EXPECT_EQ(serial[i].source, parallel[i].source) << "at " << i;
    EXPECT_EQ(serial[i].table, parallel[i].table) << "at " << i;
    EXPECT_EQ(serial[i].column, parallel[i].column) << "at " << i;
    EXPECT_EQ(serial[i].query, parallel[i].query) << "at " << i;
    EXPECT_EQ(serial[i].message, parallel[i].message) << "at " << i;
  }
}

// --------------------------- pipeline determinism ---------------------------

TEST(ParallelPipelineTest, DetectionsMatchSerialAtEveryThreadCount) {
  Database db;
  PopulateDatabase(&db);
  ContextBuilder builder;
  builder.AddScript(CorpusScript());
  builder.AttachDatabase(&db);
  Context context = builder.Build();

  RuleRegistry registry = RuleRegistry::Default();
  std::vector<Detection> serial = DetectAntiPatterns(context, registry, {}, 1);
  ASSERT_FALSE(serial.empty());
  for (int threads : {2, 3, 4, 8}) {
    ExpectSameDetections(serial, DetectAntiPatterns(context, registry, {}, threads));
  }
}

TEST(ParallelPipelineTest, ParallelContextBuildMatchesSerial) {
  std::string script = CorpusScript();
  ContextBuilder serial_builder;
  serial_builder.AddScript(script);
  Context serial = serial_builder.Build(1);

  ContextBuilder parallel_builder;
  parallel_builder.AddScript(script);
  Context parallel = parallel_builder.Build(4);

  ASSERT_EQ(serial.queries().size(), parallel.queries().size());
  for (size_t i = 0; i < serial.queries().size(); ++i) {
    EXPECT_EQ(serial.queries()[i].raw_sql, parallel.queries()[i].raw_sql);
    EXPECT_EQ(serial.queries()[i].tables, parallel.queries()[i].tables);
    EXPECT_EQ(serial.queries()[i].predicates.size(), parallel.queries()[i].predicates.size());
  }
}

TEST(ParallelPipelineTest, ReportTextIsByteIdenticalAcrossThreadCounts) {
  std::string script = CorpusScript();
  Database db;
  PopulateDatabase(&db);

  std::string serial_text = RunWithParallelism(script, &db, 1).ToText();
  ASSERT_FALSE(serial_text.empty());
  for (int threads : {2, 4, 8, 0}) {  // 0 = all hardware threads
    EXPECT_EQ(serial_text, RunWithParallelism(script, &db, threads).ToText())
        << "parallelism=" << threads;
  }
}

TEST(ParallelPipelineTest, HandlesMoreThreadsThanWork) {
  std::string tiny = "SELECT * FROM t";
  std::string serial_text = RunWithParallelism(tiny, nullptr, 1).ToText();
  EXPECT_EQ(serial_text, RunWithParallelism(tiny, nullptr, 16).ToText());
}

// ------------------------------ thread-safety -------------------------------

TEST(ParallelPipelineTest, SharedDefaultRegistryIsSafeUnderConcurrentRuns) {
  Database db;
  PopulateDatabase(&db);
  ContextBuilder builder;
  builder.AddScript(CorpusScript());
  builder.AttachDatabase(&db);
  Context context = builder.Build();

  // One registry, many concurrent full detections — each itself sharded.
  // Any rule keeping hidden mutable state would corrupt at least one run.
  RuleRegistry registry = RuleRegistry::Default();
  std::vector<Detection> serial = DetectAntiPatterns(context, registry, {}, 1);

  constexpr int kRunners = 8;
  std::vector<std::vector<Detection>> results(kRunners);
  std::vector<std::thread> runners;
  runners.reserve(kRunners);
  for (int r = 0; r < kRunners; ++r) {
    runners.emplace_back([&, r] {
      results[static_cast<size_t>(r)] = DetectAntiPatterns(context, registry, {}, 2);
    });
  }
  for (auto& t : runners) t.join();
  for (const auto& result : results) ExpectSameDetections(serial, result);
}

}  // namespace
}  // namespace sqlcheck
