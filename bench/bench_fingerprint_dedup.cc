// Fingerprint dedup cache on a duplicate-heavy workload: 90% of the batch
// re-issues a small set of parameterized statement templates (with
// whitespace / keyword-case / comment jitter, as real query logs have), 10%
// is unique. Runs the analysis + detection pipeline with the dedup cache off
// and on, verifies the detection streams are byte-identical (every field
// folded into an order-sensitive digest), and reports the single-thread
// speedup plus how dedup composes with the parallel pipeline. Exits nonzero
// on digest divergence always; with --gate it additionally requires >=2x
// single-thread speedup.
//
//   $ ./bench_fingerprint_dedup [statement_count] [--gate]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/context.h"
#include "rules/registry.h"

using namespace sqlcheck;

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Folds every byte of every detection field into one order-sensitive hash,
/// so any reorder/substitution in the merged stream changes the digest.
uint64_t DigestDetections(const std::vector<Detection>& detections) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::string_view s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= 0xff;  // field separator
    h *= 1099511628211ull;
  };
  for (const auto& d : detections) {
    mix(std::to_string(static_cast<int>(d.type)));
    mix(std::to_string(static_cast<int>(d.source)));
    mix(d.table);
    mix(d.column);
    mix(d.query);
    mix(d.message);
  }
  return h;
}

/// 90%-duplicate corpus: templates cycled with cosmetic jitter the canonical
/// form folds away, plus 10% literal-unique statements.
std::vector<std::string> BuildCorpus(size_t count) {
  // Statement shapes mirror the paper's web-app corpora: multi-join selects
  // with predicates and grouping, correlated subqueries, parameterized CRUD.
  static const char* kTemplates[] = {
      "SELECT * FROM users u JOIN profiles p ON u.id = p.user_id "
      "LEFT JOIN addresses a ON a.user_id = u.id "
      "WHERE u.created_at > ? AND u.status = 'active' AND u.email LIKE '%@example.com'",
      "SELECT u.id, u.name, (SELECT o.total FROM orders o WHERE o.user_id = u.id "
      "AND o.status = 'open') FROM users u WHERE u.region = ? AND u.age > ? "
      "GROUP BY u.id, u.name ORDER BY u.created_at",
      "SELECT name, password FROM users WHERE name LIKE '%smith' AND password = ?",
      "SELECT DISTINCT u.name, o.total, i.sku FROM users u "
      "JOIN orders o ON u.id = o.user_id JOIN items i ON i.order_id = o.id "
      "WHERE o.created_at BETWEEN ? AND ? AND i.price > 100",
      "INSERT INTO logs (user_id, action, detail, created_at) "
      "SELECT u.id, ?, ?, ? FROM users u WHERE u.last_seen < ?",
      "SELECT * FROM products p JOIN categories c ON p.category_id = c.id "
      "WHERE c.name IN ('a', 'b', 'c') ORDER BY RAND()",
      "SELECT a.x, b.y, c.z FROM a JOIN b ON a.id = b.a_id JOIN c ON b.id = c.b_id "
      "JOIN d ON c.id = d.c_id JOIN e ON d.id = e.d_id JOIN f ON e.id = f.e_id "
      "WHERE a.k = ? AND b.m = ? AND e.n || f.o = ?",
      "UPDATE users SET name = ?, email = ?, updated_at = ? "
      "WHERE id = ? AND status <> 'deleted'",
  };
  constexpr size_t kTemplateCount = sizeof(kTemplates) / sizeof(kTemplates[0]);

  std::vector<std::string> statements;
  statements.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (i % 10 == 9) {
      // Unique statement: a distinct literal defeats the exact-canonical key.
      statements.push_back(
          "SELECT u.name, o.total FROM users u JOIN orders o ON u.id = o.user_id "
          "WHERE o.created_at > '2020-01-01' AND o.id = " +
          std::to_string(i));
      continue;
    }
    std::string s = kTemplates[i % kTemplateCount];
    switch ((i / kTemplateCount) % 4) {
      case 1: s += "  "; break;
      case 2: s += " -- issued by app"; break;
      case 3: s.insert(0, "  "); break;
      default: break;
    }
    statements.push_back(std::move(s));
  }
  return statements;
}

struct RunResult {
  double build_ms = 0.0;
  double detect_ms = 0.0;
  size_t detections = 0;
  size_t unique = 0;
  uint64_t digest = 0;
  double total() const { return build_ms + detect_ms; }
};

RunResult RunPipeline(const std::vector<std::string>& statements,
                      const RuleRegistry& registry, bool dedup, int parallelism,
                      int repeats) {
  RunResult best;
  for (int r = 0; r < repeats; ++r) {
    ContextBuilder builder;
    for (const auto& sql_text : statements) builder.AddQuery(sql_text);

    auto build_start = Clock::now();
    Context context = builder.Build(parallelism, nullptr, dedup);
    double build_ms = MsSince(build_start);

    DetectorConfig config;
    config.data_analysis = false;
    auto detect_start = Clock::now();
    std::vector<Detection> detections =
        DetectAntiPatterns(context, registry, config, parallelism);
    double detect_ms = MsSince(detect_start);

    if (r == 0) {
      best.detections = detections.size();
      best.unique = context.query_groups().unique_count();
      best.digest = DigestDetections(detections);
    }
    if (r == 0 || build_ms + detect_ms < best.total()) {
      best.build_ms = build_ms;
      best.detect_ms = detect_ms;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  size_t statement_count = 4000;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--gate") {
      gate = true;
    } else {
      statement_count = static_cast<size_t>(std::atoll(argv[i]));
    }
  }

  std::vector<std::string> statements = BuildCorpus(statement_count);
  RuleRegistry registry = RuleRegistry::Default();
  constexpr int kRepeats = 3;

  std::printf(
      "fingerprint dedup: %zu statements (90%% duplicate templates), %zu rules\n\n",
      statements.size(), registry.size());
  std::printf("%18s %8s %12s %12s %12s %12s %10s\n", "config", "threads", "build(ms)",
              "detect(ms)", "total(ms)", "detections", "unique");

  RunResult off = RunPipeline(statements, registry, /*dedup=*/false, 1, kRepeats);
  std::printf("%18s %8d %12.1f %12.1f %12.1f %12zu %10zu\n", "dedup off", 1, off.build_ms,
              off.detect_ms, off.total(), off.detections, off.unique);

  RunResult on = RunPipeline(statements, registry, /*dedup=*/true, 1, kRepeats);
  std::printf("%18s %8d %12.1f %12.1f %12.1f %12zu %10zu\n", "dedup on", 1, on.build_ms,
              on.detect_ms, on.total(), on.detections, on.unique);

  bool ok = true;
  if (on.detections != off.detections || on.digest != off.digest) {
    std::printf("FAIL: detection stream diverged with dedup on "
                "(%zu vs %zu detections, digest %016llx vs %016llx)\n",
                on.detections, off.detections, static_cast<unsigned long long>(on.digest),
                static_cast<unsigned long long>(off.digest));
    ok = false;
  }

  // Dedup composes with the parallel pipeline: shards cover unique
  // fingerprints, and every thread count must reproduce the same stream.
  for (int threads : {2, 4}) {
    RunResult result =
        RunPipeline(statements, registry, /*dedup=*/true, threads, kRepeats);
    std::printf("%18s %8d %12.1f %12.1f %12.1f %12zu %10zu\n", "dedup on", threads,
                result.build_ms, result.detect_ms, result.total(), result.detections,
                result.unique);
    if (result.detections != off.detections || result.digest != off.digest) {
      std::printf("FAIL: detection stream diverged at %d threads\n", threads);
      ok = false;
    }
  }
  if (!ok) return 1;

  double speedup = on.total() > 0.0 ? off.total() / on.total() : 0.0;
  std::printf("\ndetection streams identical (digest %016llx)\n",
              static_cast<unsigned long long>(off.digest));
  std::printf("single-thread dedup speedup: %.2fx (target >= 2x)\n", speedup);

  if (!gate) {
    std::printf("speedup gate off — pass --gate to enforce the 2x target\n");
    return 0;
  }
  return speedup >= 2.0 ? 0 : 1;
}
