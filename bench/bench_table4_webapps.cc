// Tables 4 & 7: sqlcheck on 15 Django-style applications — APs detected per
// app vs the high-impact subset worth reporting upstream. The reporting
// filter mirrors §8.4: rank by impact score, keep distinct AP classes above
// a score floor, and drop low-severity classes (Generic Primary Key) and
// requirement-dependent ones (Too Many Joins).
#include <cstdio>
#include <set>
#include <tuple>

#include "core/sqlcheck.h"
#include "engine/executor.h"
#include "workload/django.h"

using namespace sqlcheck;

namespace {

bool Reportable(AntiPattern type) {
  return type != AntiPattern::kGenericPrimaryKey && type != AntiPattern::kTooManyJoins &&
         type != AntiPattern::kColumnWildcard && type != AntiPattern::kImplicitColumns;
}

}  // namespace

int main() {
  std::printf("Tables 4 & 7 — sqlcheck on Django-style web applications\n");
  std::printf("%-22s %-14s %8s %8s  %s\n", "App", "Domain", "# Det", "# Rep",
              "Reported AP classes");
  int total_detected = 0;
  int total_reported = 0;
  for (const auto& spec : workload::DjangoAppSpecs()) {
    // Deploy the app (the paper runs each on PostgreSQL, §8.4): execute its
    // workload so the data analyzer has real tables to profile.
    Database db(spec.name);
    Executor exec(&db);
    SqlCheck checker;
    for (const auto& sql_text : workload::GenerateDjangoWorkload(spec)) {
      exec.ExecuteSql(sql_text);  // SELECTs just run; DDL/DML materialize
      checker.AddQuery(sql_text);
    }
    checker.AttachDatabase(&db);
    Report report = checker.Run();

    // An application AP = one (type, table, column) site, however many
    // statements expose it.
    std::set<std::tuple<AntiPattern, std::string, std::string>> sites;
    for (const auto& finding : report.findings) {
      const Detection& d = finding.ranked.detection;
      sites.emplace(d.type, d.table, d.column);
    }

    // Reported = distinct high-impact AP classes after the severity filter.
    std::set<AntiPattern> reported;
    std::string reported_names;
    for (const auto& finding : report.findings) {
      AntiPattern type = finding.ranked.detection.type;
      if (!Reportable(type) || finding.ranked.score < 0.03) continue;
      if (reported.insert(type).second) {
        if (!reported_names.empty()) reported_names += ", ";
        reported_names += ApName(type);
      }
    }
    std::printf("%-22s %-14s %8zu %8zu  %s\n", spec.name.c_str(), spec.domain.c_str(),
                sites.size(), reported.size(), reported_names.c_str());
    total_detected += static_cast<int>(sites.size());
    total_reported += static_cast<int>(reported.size());
  }
  std::printf("%-22s %-14s %8d %8d\n", "Total:", "", total_detected, total_reported);
  std::printf("\npaper: 123 detected / 32 reported across 15 apps; shape target is a "
              "detected count far above the reported count with Index Overuse and "
              "Pattern Matching dominating the reported set\n");
  return 0;
}
