// Figure 8g-i: the Enumerated Types AP (CHECK-constrained domain vs lookup
// table, Example 4 / Figure 5 of the paper).
//   8g — renaming a role value. AP: ALTER DROP CHECK + UPDATE every matching
//        row + ALTER ADD CHECK (re-validating the whole table). Fix: one
//        UPDATE of one lookup row. Paper: >1000x.
//   8h — INSERT throughput: per-row CHECK IN-list evaluation + string storage
//        vs integer FK probed through the lookup's PK index.
//   8i — SELECT filtered by role: flat (both fast), the fix costs a small
//        join but nothing prominent.
#include <benchmark/benchmark.h>

#include "engine/executor.h"
#include "storage/database.h"

namespace {

using sqlcheck::Database;
using sqlcheck::Executor;

constexpr int kUsers = 20000;

std::unique_ptr<Database> BuildAp() {
  auto db = std::make_unique<Database>("fig8_enum_ap");
  Executor exec(db.get());
  exec.ExecuteSql(
      "CREATE TABLE users (user_id INTEGER PRIMARY KEY, name VARCHAR(24), "
      "role VARCHAR(4))");
  for (int i = 0; i < kUsers; ++i) {
    exec.ExecuteSql("INSERT INTO users (user_id, name, role) VALUES (" +
                    std::to_string(i) + ", 'n" + std::to_string(i) + "', 'R" +
                    std::to_string(1 + i % 3) + "')");
  }
  exec.ExecuteSql(
      "ALTER TABLE users ADD CONSTRAINT user_role_check CHECK (role IN ('R1', 'R2', "
      "'R3'))");
  return db;
}

std::unique_ptr<Database> BuildFixed() {
  auto db = std::make_unique<Database>("fig8_enum_fixed");
  Executor exec(db.get());
  exec.ExecuteSql(
      "CREATE TABLE role (role_id INTEGER PRIMARY KEY, role_name VARCHAR(8) UNIQUE)");
  exec.ExecuteSql(
      "CREATE TABLE users (user_id INTEGER PRIMARY KEY, name VARCHAR(24), "
      "role_id INTEGER REFERENCES role (role_id))");
  for (int r = 1; r <= 3; ++r) {
    exec.ExecuteSql("INSERT INTO role (role_id, role_name) VALUES (" + std::to_string(r) +
                    ", 'R" + std::to_string(r) + "')");
  }
  for (int i = 0; i < kUsers; ++i) {
    exec.ExecuteSql("INSERT INTO users (user_id, name, role_id) VALUES (" +
                    std::to_string(i) + ", 'n" + std::to_string(i) + "', " +
                    std::to_string(1 + i % 3) + ")");
  }
  return db;
}

// --- 8g: rename role R2 -> R5 and back ------------------------------------
void BM_Fig8g_RenameRole_AP(benchmark::State& state) {
  auto db = BuildAp();
  Executor exec(db.get());
  bool flip = false;
  for (auto _ : state) {
    const char* from = flip ? "R5" : "R2";
    const char* to = flip ? "R2" : "R5";
    flip = !flip;
    exec.ExecuteSql("ALTER TABLE users DROP CONSTRAINT IF EXISTS user_role_check");
    exec.ExecuteSql(std::string("UPDATE users SET role = '") + to + "' WHERE role = '" +
                    from + "'");
    auto r = exec.ExecuteSql(std::string("ALTER TABLE users ADD CONSTRAINT "
                                         "user_role_check CHECK (role IN ('R1', '") +
                             to + "', 'R3'))");
    if (!r.ok()) state.SkipWithError(r.message().c_str());
  }
  state.SetLabel("DROP CHECK + UPDATE scan + ADD CHECK revalidation (AP)");
}

void BM_Fig8g_RenameRole_Fixed(benchmark::State& state) {
  auto db = BuildFixed();
  Executor exec(db.get());
  bool flip = false;
  for (auto _ : state) {
    const char* from = flip ? "R5" : "R2";
    const char* to = flip ? "R2" : "R5";
    flip = !flip;
    auto r = exec.ExecuteSql(std::string("UPDATE role SET role_name = '") + to +
                             "' WHERE role_name = '" + from + "'");
    if (!r.ok()) state.SkipWithError(r.message().c_str());
  }
  state.SetLabel("one UPDATE on the lookup table (fix)");
}

// --- 8h: INSERT ------------------------------------------------------------
void BM_Fig8h_Insert_AP(benchmark::State& state) {
  auto db = BuildAp();
  Executor exec(db.get());
  int i = kUsers;
  for (auto _ : state) {
    auto r = exec.ExecuteSql("INSERT INTO users (user_id, name, role) VALUES (" +
                             std::to_string(i++) + ", 'x', 'R2')");
    if (!r.ok()) state.SkipWithError(r.message().c_str());
  }
  state.SetLabel("CHECK IN-list evaluated per insert (AP)");
}

void BM_Fig8h_Insert_Fixed(benchmark::State& state) {
  auto db = BuildFixed();
  Executor exec(db.get());
  int i = kUsers;
  for (auto _ : state) {
    auto r = exec.ExecuteSql("INSERT INTO users (user_id, name, role_id) VALUES (" +
                             std::to_string(i++) + ", 'x', 2)");
    if (!r.ok()) state.SkipWithError(r.message().c_str());
  }
  state.SetLabel("integer FK probe via lookup PK index (fix)");
}

// --- 8i: SELECT ------------------------------------------------------------
void BM_Fig8i_Select_AP(benchmark::State& state) {
  auto db = BuildAp();
  Executor exec(db.get());
  for (auto _ : state) {
    auto r = exec.ExecuteSql("SELECT COUNT(*) FROM users WHERE role = 'R2'");
    if (!r.ok()) state.SkipWithError(r.message().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("filter on inline string domain (AP)");
}

void BM_Fig8i_Select_Fixed(benchmark::State& state) {
  auto db = BuildFixed();
  Executor exec(db.get());
  for (auto _ : state) {
    auto r = exec.ExecuteSql(
        "SELECT COUNT(*) FROM users u JOIN role r ON u.role_id = r.role_id "
        "WHERE r.role_name = 'R2'");
    if (!r.ok()) state.SkipWithError(r.message().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("filter through lookup join (fix)");
}

BENCHMARK(BM_Fig8g_RenameRole_AP)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig8g_RenameRole_Fixed)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Fig8h_Insert_AP)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Fig8h_Insert_Fixed)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Fig8i_Select_AP)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig8i_Select_Fixed)->Unit(benchmark::kMillisecond);

}  // namespace
