// Ablation (§4.2): the data analyzer samples because profiling is the
// expensive part. Sweeps the per-table sample limit and reports profiling
// time vs whether the data rules still fire — small samples must already
// recover the detections.
#include <chrono>
#include <cstdio>

#include "analysis/context.h"
#include "rules/registry.h"
#include "workload/globaleaks.h"

using namespace sqlcheck;

int main() {
  Database db;
  workload::GlobaleaksOptions scale;
  scale.tenant_count = 2000;
  scale.users_per_tenant = 10;
  workload::Globaleaks::BuildWithAps(&db, scale);

  std::printf("Ablation — data-analyzer sample size (Tenants rows: %zu)\n",
              db.GetTable("Tenants")->live_row_count());
  std::printf("%10s %14s %10s %12s\n", "sample", "profile_ms", "MVA hit", "detections");

  for (size_t sample : {size_t{10}, size_t{50}, size_t{200}, size_t{1000}, size_t{0}}) {
    ContextBuilder builder;
    DataAnalyzerOptions data_options;
    data_options.sample_limit = sample;
    builder.AttachDatabase(&db, data_options);

    auto start = std::chrono::steady_clock::now();
    Context context = builder.Build();
    DetectorConfig config;
    config.intra_query = false;
    auto detections = DetectAntiPatterns(context, config);
    auto elapsed = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();

    bool mva = false;
    for (const auto& d : detections) {
      if (d.type == AntiPattern::kMultiValuedAttribute) mva = true;
    }
    std::printf("%10s %14.2f %10s %12zu\n",
                sample == 0 ? "full" : std::to_string(sample).c_str(), elapsed,
                mva ? "yes" : "NO", detections.size());
  }
  std::printf("\nexpected shape: detections stable across sample sizes while profile "
              "time grows toward the full scan\n");
  return 0;
}
