// Incremental session latency: streams a duplicate-heavy query-log corpus
// through AnalysisSession::Check() one statement at a time, measuring the
// per-statement append latency distribution (p50/p99), then re-runs the
// batch facade over the same history to price what a non-incremental caller
// pays per new statement. Verifies first that the session's final snapshot
// is byte-identical to the batch report (always enforced), then writes the
// measurements to BENCH_incremental.json. With --gate it additionally
// requires incremental append to be >=10x faster than the batch re-run at
// the configured history length.
//
//   $ ./bench_incremental_latency [history_statements] [--gate]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "core/session.h"
#include "core/sqlcheck.h"

using namespace sqlcheck;

namespace {

using Clock = std::chrono::steady_clock;

double UsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

/// 90%-duplicate query log (the shape of real application traffic): a small
/// set of parameterized templates with cosmetic jitter, plus 10% statements
/// made unique by a fresh literal.
std::vector<std::string> BuildCorpus(size_t count) {
  static const char* kTemplates[] = {
      "SELECT * FROM users u JOIN profiles p ON u.id = p.user_id "
      "WHERE u.status = 'active' AND u.email LIKE '%@example.com'",
      "SELECT u.id, u.name FROM users u WHERE u.region = ? AND u.age > ? "
      "GROUP BY u.id, u.name ORDER BY u.created_at",
      "SELECT name, password FROM users WHERE name LIKE '%smith' AND password = ?",
      "SELECT DISTINCT u.name, o.total FROM users u "
      "JOIN orders o ON u.id = o.user_id WHERE o.created_at BETWEEN ? AND ?",
      "INSERT INTO logs (user_id, action, detail) SELECT u.id, ?, ? FROM users u",
      "SELECT * FROM products p JOIN categories c ON p.category_id = c.id "
      "ORDER BY RAND()",
      "UPDATE users SET name = ?, email = ? WHERE id = ? AND status <> 'deleted'",
  };
  constexpr size_t kTemplateCount = sizeof(kTemplates) / sizeof(kTemplates[0]);

  std::vector<std::string> statements;
  statements.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (i % 10 == 9) {
      statements.push_back(
          "SELECT u.name, o.total FROM users u JOIN orders o ON u.id = o.user_id "
          "WHERE o.id = " +
          std::to_string(i));
      continue;
    }
    std::string s = kTemplates[i % kTemplateCount];
    switch ((i / kTemplateCount) % 3) {
      case 1: s += "  "; break;
      case 2: s += " -- app"; break;
      default: break;
    }
    statements.push_back(std::move(s));
  }
  return statements;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

}  // namespace

int main(int argc, char** argv) {
  size_t history = 10000;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--gate") {
      gate = true;
    } else {
      history = static_cast<size_t>(std::atoll(argv[i]));
    }
  }

  std::vector<std::string> statements = BuildCorpus(history);
  std::printf("incremental latency: %zu-statement history (90%% duplicates)\n\n",
              statements.size());

  // ---- Incremental: stream every statement through one session. ----
  AnalysisSession session;
  std::vector<double> append_us;
  append_us.reserve(statements.size());
  double append_total_us = 0.0;
  for (const auto& sql : statements) {
    auto start = Clock::now();
    Report delta = session.Check(sql);
    double us = UsSince(start);
    append_us.push_back(us);
    append_total_us += us;
  }

  std::vector<double> sorted = append_us;
  std::sort(sorted.begin(), sorted.end());
  double p50 = Percentile(sorted, 0.50);
  double p99 = Percentile(sorted, 0.99);
  double mean = append_total_us / static_cast<double>(sorted.size());

  // Snapshot() is idempotent, so time it best-of-3 — the single-shot
  // measurement this bench used to take was dominated by scheduler noise.
  Report incremental_report;
  double snapshot_ms = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    auto snapshot_start = Clock::now();
    incremental_report = session.Snapshot();
    snapshot_ms = std::min(snapshot_ms, UsSince(snapshot_start) / 1000.0);
  }

  // ---- Batch facade re-run over the same history. ----
  auto batch_start = Clock::now();
  SqlCheck batch;
  for (const auto& sql : statements) batch.AddQuery(sql);
  Report batch_report = batch.Run();
  double batch_ms = UsSince(batch_start) / 1000.0;

  bool identical = incremental_report.ToJson() == batch_report.ToJson();

  // ---- Fix-suggestion overhead: the same history with fixes disabled. ----
  // The diagnosis pipeline (per-rule fixers + rewrite verification) must be
  // pay-for-what-you-use: with suggest_fixes off the snapshot must stay
  // byte-identical between streaming and batch, and its timing prices what
  // fix suggestion adds on top.
  SqlCheckOptions no_fix_options;
  no_fix_options.suggest_fixes = false;
  AnalysisSession no_fix_session(no_fix_options);
  for (const auto& sql : statements) no_fix_session.AddQuery(sql);
  Report no_fix_report;
  double snapshot_no_fix_ms = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    auto start = Clock::now();
    no_fix_report = no_fix_session.Snapshot();
    snapshot_no_fix_ms = std::min(snapshot_no_fix_ms, UsSince(start) / 1000.0);
  }
  SqlCheck no_fix_batch(no_fix_options);
  for (const auto& sql : statements) no_fix_batch.AddQuery(sql);
  bool identical_no_fixes = no_fix_report.ToJson() == no_fix_batch.Run().ToJson();
  double fix_overhead_ms = snapshot_ms - snapshot_no_fix_ms;
  double speedup = p99 > 0.0 ? (batch_ms * 1000.0) / p99 : 0.0;

  std::printf("%28s %12s\n", "metric", "value");
  std::printf("%28s %12zu\n", "unique groups", session.unique_count());
  std::printf("%28s %12zu\n", "findings", incremental_report.size());
  std::printf("%28s %10.1fus\n", "append p50", p50);
  std::printf("%28s %10.1fus\n", "append p99", p99);
  std::printf("%28s %10.1fus\n", "append mean", mean);
  std::printf("%28s %10.1fms\n", "full snapshot", snapshot_ms);
  std::printf("%28s %10.1fms\n", "snapshot (fixes off)", snapshot_no_fix_ms);
  std::printf("%28s %10.1fms\n", "fix suggestion overhead", fix_overhead_ms);
  std::printf("%28s %9zu/%zu\n", "fix cache hits/misses", session.fix_cache_hits(),
              session.fix_cache_misses());
  std::printf("%28s %10.1fms\n", "batch facade re-run", batch_ms);
  std::printf("%28s %11.1fx\n", "append speedup vs batch", speedup);

  FILE* out = std::fopen("BENCH_incremental.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write BENCH_incremental.json\n");
    return 1;
  }
  {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"incremental_latency\",\n"
                 "  \"history_statements\": %zu,\n"
                 "  \"unique_groups\": %zu,\n"
                 "  \"append_p50_us\": %.2f,\n"
                 "  \"append_p99_us\": %.2f,\n"
                 "  \"append_mean_us\": %.2f,\n"
                 "  \"snapshot_ms\": %.2f,\n"
                 "  \"snapshot_no_fixes_ms\": %.2f,\n"
                 "  \"fix_overhead_ms\": %.2f,\n"
                 "  \"fix_cache_hits\": %zu,\n"
                 "  \"fix_cache_misses\": %zu,\n"
                 "  \"batch_rerun_ms\": %.2f,\n"
                 "  \"append_speedup_vs_batch\": %.2f,\n"
                 "  \"reports_identical\": %s,\n"
                 "  \"reports_identical_no_fixes\": %s\n"
                 "}\n",
                 statements.size(), session.unique_count(), p50, p99, mean,
                 snapshot_ms, snapshot_no_fix_ms, fix_overhead_ms,
                 session.fix_cache_hits(), session.fix_cache_misses(), batch_ms,
                 speedup, identical ? "true" : "false",
                 identical_no_fixes ? "true" : "false");
    std::fclose(out);
    std::printf("\nwrote BENCH_incremental.json\n");
  }

  if (!identical) {
    std::printf("FAIL: incremental snapshot diverged from the batch report\n");
    return 1;
  }
  if (!identical_no_fixes) {
    std::printf(
        "FAIL: fixes-disabled incremental snapshot diverged from the batch report\n");
    return 1;
  }
  std::printf("incremental snapshot byte-identical to batch report (fixes on and off)\n");

  if (!gate) {
    std::printf("speedup gate off — pass --gate to enforce the 10x target\n");
    return 0;
  }
  if (speedup < 10.0) {
    std::printf("FAIL: append p99 only %.1fx faster than batch re-run (target 10x)\n",
                speedup);
    return 1;
  }
  std::printf("gate passed: append p99 %.1fx faster than batch re-run (target 10x)\n",
              speedup);
  return 0;
}
