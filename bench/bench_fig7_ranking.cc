// Figures 6 & 7 / Example 6: the ranking model. Reproduces the worked
// example — under C1 (read-heavy) Index Underuse (0.21) outranks Enumerated
// Types (0.175); under C2 (hybrid) the order flips (0.12 vs ~0.45).
#include <cstdio>

#include "ranking/model.h"

using namespace sqlcheck;

int main() {
  // Figure 7b's metric rows.
  ApMetrics index_underuse;
  index_underuse.read_speedup = 1.5;
  ApMetrics enum_types;
  enum_types.write_speedup = 10.0;
  enum_types.maintainability = 2.0;
  enum_types.data_amplification = 1.0;

  std::printf("Figure 7 — ranking model configurations (Example 6)\n");
  std::printf("%-22s %8s %8s\n", "anti-pattern", "C1", "C2");
  RankingModel c1(RankingWeights::C1());
  RankingModel c2(RankingWeights::C2());
  std::printf("%-22s %8.3f %8.3f\n", "Index Underuse", c1.Score(index_underuse),
              c2.Score(index_underuse));
  std::printf("%-22s %8.3f %8.3f\n", "Enumerated Types", c1.Score(enum_types),
              c2.Score(enum_types));

  bool c1_order = c1.Score(index_underuse) > c1.Score(enum_types);
  bool c2_order = c2.Score(enum_types) > c2.Score(index_underuse);
  std::printf("\nC1 ranks Index Underuse first: %s (paper: yes, 0.21 vs 0.175)\n",
              c1_order ? "yes" : "NO");
  std::printf("C2 ranks Enumerated Types first: %s (paper: yes, 0.47 vs 0.12)\n",
              c2_order ? "yes" : "NO");
  return (c1_order && c2_order) ? 0 : 1;
}
