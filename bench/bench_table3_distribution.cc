// Table 3 + the §8.1 headline counts: the distribution of APs detected by
// dbdeo (D) vs sqlcheck (S) across (a) the GitHub-style corpus, (b) the user
// study statements, and (c) the Kaggle-style databases (S only, data rules).
// Also reports the three detector configurations of §8.1: dbdeo, sqlcheck
// intra-only (more detections, more FPs), sqlcheck intra+inter (fewer,
// cleaner) — the paper's 86656 -> 63058 contraction, at our corpus scale.
#include <cstdio>
#include <map>

#include "analysis/context.h"
#include "baseline/dbdeo.h"
#include "rules/registry.h"
#include "sql/extractor.h"
#include "workload/corpus.h"
#include "workload/kaggle.h"
#include "workload/user_study.h"

using namespace sqlcheck;

namespace {

std::map<AntiPattern, int> CountByType(const std::vector<Detection>& detections) {
  std::map<AntiPattern, int> out;
  for (const auto& d : detections) ++out[d.type];
  return out;
}

int Total(const std::map<AntiPattern, int>& counts) {
  int total = 0;
  for (const auto& [_, n] : counts) total += n;
  return total;
}

int DistinctTypes(const std::map<AntiPattern, int>& counts) {
  int types = 0;
  for (const auto& [_, n] : counts) {
    if (n > 0) ++types;
  }
  return types;
}

}  // namespace

int main() {
  // ---------------- GitHub-style corpus, three configurations --------------
  workload::CorpusOptions corpus_options;
  corpus_options.repo_count = 300;
  workload::Corpus corpus = GenerateCorpus(corpus_options);

  Dbdeo dbdeo;
  std::vector<Detection> d_git, s_git_intra, s_git_full;
  for (const auto& repo : corpus.repos) {
    ContextBuilder intra_builder, full_builder;
    std::vector<std::string> raw;
    for (const auto& found : sql::ExtractEmbeddedSql(repo.source)) {
      intra_builder.AddQuery(found.sql);
      full_builder.AddQuery(found.sql);
      raw.push_back(found.sql);
    }
    Context intra_ctx = intra_builder.Build();
    Context full_ctx = full_builder.Build();

    DetectorConfig intra_cfg;
    intra_cfg.inter_query = false;
    intra_cfg.data_analysis = false;
    DetectorConfig full_cfg;
    full_cfg.data_analysis = false;

    for (auto& d : DetectAntiPatterns(intra_ctx, intra_cfg)) s_git_intra.push_back(std::move(d));
    for (auto& d : DetectAntiPatterns(full_ctx, full_cfg)) s_git_full.push_back(std::move(d));
    for (auto& d : dbdeo.CheckAll(raw)) d_git.push_back(std::move(d));
  }

  // ---------------- user study statements ---------------------------------
  auto participants = workload::GenerateUserStudy();
  std::vector<Detection> d_study, s_study;
  size_t study_statements = 0;
  for (const auto& p : participants) {
    ContextBuilder builder;
    for (const auto& sql_text : p.statements) builder.AddQuery(sql_text);
    study_statements += p.statements.size();
    Context ctx = builder.Build();
    DetectorConfig cfg;
    cfg.data_analysis = false;
    for (auto& d : DetectAntiPatterns(ctx, cfg)) s_study.push_back(std::move(d));
    for (auto& d : dbdeo.CheckAll(p.statements)) d_study.push_back(std::move(d));
  }

  // ---------------- Kaggle databases (data rules only) ---------------------
  std::vector<Detection> s_kaggle;
  for (const auto& spec : workload::KaggleSpecs()) {
    auto db = workload::SynthesizeKaggleDatabase(spec);
    ContextBuilder builder;
    builder.AttachDatabase(db.get());
    Context ctx = builder.Build();
    DetectorConfig cfg;
    cfg.intra_query = false;  // data analysis only, as in §8.4
    for (auto& d : DetectAntiPatterns(ctx, cfg)) s_kaggle.push_back(std::move(d));
  }

  auto git_d = CountByType(d_git);
  auto git_s = CountByType(s_git_full);
  auto study_d = CountByType(d_study);
  auto study_s = CountByType(s_study);
  auto kaggle_s = CountByType(s_kaggle);

  std::printf("Table 3 — Distribution of APs (corpus: %d repos, %zu stmts; study: %zu "
              "participants, %zu stmts; kaggle: %zu DBs)\n",
              corpus_options.repo_count, corpus.StatementCount(), participants.size(),
              study_statements, workload::KaggleSpecs().size());
  std::printf("%-26s %8s %8s | %8s %8s | %8s\n", "Anti-Pattern", "GitHub-D", "GitHub-S",
              "Study-D", "Study-S", "Kaggle-S");
  for (int t = 0; t < kAntiPatternCount; ++t) {
    AntiPattern type = static_cast<AntiPattern>(t);
    int gd = git_d[type], gs = git_s[type];
    int sd = study_d[type], ss = study_s[type];
    int ks = kaggle_s[type];
    if (gd + gs + sd + ss + ks == 0) continue;
    std::printf("%-26s %8d %8d | %8d %8d | %8d\n", ApName(type), gd, gs, sd, ss, ks);
  }
  std::printf("%-26s %8d %8d | %8d %8d | %8d\n", "Total:", Total(git_d), Total(git_s),
              Total(study_d), Total(study_s), Total(kaggle_s));

  std::printf("\n§8.1 configuration sweep over the corpus:\n");
  std::printf("  dbdeo:                    %5d detections, %2d AP types\n",
              Total(git_d), DistinctTypes(git_d));
  auto intra_counts = CountByType(s_git_intra);
  std::printf("  sqlcheck (intra only):    %5d detections, %2d AP types\n",
              Total(intra_counts), DistinctTypes(intra_counts));
  std::printf("  sqlcheck (intra+inter):   %5d detections, %2d AP types\n",
              Total(git_s), DistinctTypes(git_s));
  std::printf("  paper shape: intra-only > intra+inter > dbdeo, with sqlcheck covering "
              "more AP types than dbdeo: %s\n",
              (Total(intra_counts) > Total(git_s) && Total(git_s) > Total(git_d) &&
               DistinctTypes(git_s) > DistinctTypes(git_d))
                  ? "reproduced"
                  : "NOT reproduced");
  return 0;
}
