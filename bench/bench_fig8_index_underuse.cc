// Figure 8b/8c: Index Underuse.
//   8b — a grouped aggregate speeds up modestly (paper: 1.3x) once the
//        GROUP BY column is indexed (index-assisted grouping).
//   8c — indexing a LOW-cardinality column does NOT deliver the expected win
//        (paper: 3x SLOWER via index, driven by random heap I/O on disk; an
//        in-memory row store has no such penalty, so expect near-parity here
//        rather than a slowdown — see EXPERIMENTS.md). Either way, sqlcheck's
//        data rule uses column cardinality to suppress this false positive.
#include <benchmark/benchmark.h>

#include "engine/executor.h"
#include "storage/database.h"

namespace {

using sqlcheck::Database;
using sqlcheck::Executor;

constexpr int kRows = 30000;
constexpr int kWideRows = 150000;  // 8c needs rows >> cache for the I/O analogy

std::unique_ptr<Database> Build(bool with_group_index, bool with_lowcard_index) {
  auto db = std::make_unique<Database>("fig8bc");
  Executor exec(db.get());
  exec.ExecuteSql(
      "CREATE TABLE submissions (sub_id INTEGER PRIMARY KEY, tenant VARCHAR(12), "
      "flag VARCHAR(4), amount INTEGER)");
  for (int i = 0; i < kRows; ++i) {
    exec.ExecuteSql("INSERT INTO submissions (sub_id, tenant, flag, amount) VALUES (" +
                    std::to_string(i) + ", 'tn" + std::to_string(i % 500) + "', 'F" +
                    std::to_string(i % 2) + "', " + std::to_string(i % 1000) + ")");
  }
  if (with_group_index) exec.ExecuteSql("CREATE INDEX idx_sub_tenant ON submissions (tenant)");
  if (with_lowcard_index) exec.ExecuteSql("CREATE INDEX idx_sub_flag ON submissions (flag)");
  return db;
}

void RunQuery(benchmark::State& state, Database& db, const std::string& sql,
              const char* label) {
  Executor exec(&db);
  for (auto _ : state) {
    auto r = exec.ExecuteSql(sql);
    if (!r.ok()) state.SkipWithError(r.message().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(label);
}

const char* kGroupedAggregate =
    "SELECT tenant, SUM(amount) FROM submissions GROUP BY tenant";
// Low-cardinality predicate: 'F1' matches half of a wide table. The index
// path visits matching rows in hash order (random access + slot-vector
// allocation); the scan streams sequentially — the in-memory analogue of the
// paper's random-heap-I/O penalty.
const char* kLowCardScan = "SELECT COUNT(*) FROM wide WHERE flag = 'F1'";

std::unique_ptr<Database> BuildWide(bool with_lowcard_index) {
  auto db = std::make_unique<Database>("fig8c");
  Executor exec(db.get());
  exec.ExecuteSql(
      "CREATE TABLE wide (row_id INTEGER PRIMARY KEY, flag VARCHAR(4), "
      "payload VARCHAR(128), amount INTEGER)");
  std::string padding(96, 'x');
  for (int i = 0; i < kWideRows; ++i) {
    exec.ExecuteSql("INSERT INTO wide (row_id, flag, payload, amount) VALUES (" +
                    std::to_string(i) + ", 'F" + std::to_string(i % 2) + "', '" + padding +
                    std::to_string(i) + "', " + std::to_string(i % 1000) + ")");
  }
  if (with_lowcard_index) exec.ExecuteSql("CREATE INDEX idx_wide_flag ON wide (flag)");
  return db;
}

void BM_Fig8b_GroupedAggregate_AP(benchmark::State& state) {
  static auto db = Build(false, false);
  RunQuery(state, *db, kGroupedAggregate, "no index on GROUP BY column (AP)");
}
void BM_Fig8b_GroupedAggregate_Fixed(benchmark::State& state) {
  static auto db = Build(true, false);
  RunQuery(state, *db, kGroupedAggregate, "index on GROUP BY column");
}
void BM_Fig8c_LowCardScan_SeqScan(benchmark::State& state) {
  static auto db = BuildWide(false);
  RunQuery(state, *db, kLowCardScan, "sequential scan (flagged as AP by naive rule)");
}
void BM_Fig8c_LowCardScan_ViaIndex(benchmark::State& state) {
  static auto db = BuildWide(true);
  RunQuery(state, *db, kLowCardScan, "index on low-cardinality column ('fix' that hurts)");
}

BENCHMARK(BM_Fig8b_GroupedAggregate_AP)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig8b_GroupedAggregate_Fixed)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig8c_LowCardScan_SeqScan)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig8c_LowCardScan_ViaIndex)->Unit(benchmark::kMillisecond);

}  // namespace
