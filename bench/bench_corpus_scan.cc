// Corpus-scale scan: cold vs warm `sqlcheck scan` over a generated
// multi-repo corpus on disk. The corpus generator's repositories are laid
// out as a real directory tree (one queries.sql per repo; every fourth repo
// additionally ships its Python-ish source file, so the embedded-SQL
// extractor path is part of the measurement). Three configurations run over
// the same tree:
//
//   cold      fresh fingerprint store each rep (the store file is deleted
//             before the rep, so every statement is parsed and analyzed)
//   warm      store persisted from the cold run (every file replays whole
//             from its manifest; zero fresh analyses, zero file opens)
//   disabled  no store at all (the pre-PR scan cost, for reference)
//
// Each repo's queries.sql concatenates several corpus seed variants so files
// carry realistic statement counts (a dump with a handful of statements is
// dominated by per-file syscall cost on either path and measures the
// filesystem, not the store).
//
// The report digests of all three MUST be byte-identical — that identity is
// the store's whole soundness contract and is checked unconditionally, like
// the digest gates in the other benches. The warm run must additionally
// serve every file from its manifest (analyzed=0, statement and file probe
// misses=0). With --gate (Release CI) the warm scan must clear 5x the cold
// scan.
//
// On failure of any check the bench refuses to write BENCH_scan.json — a
// red run must not leave an artifact that upload steps could mistake for a
// measurement — and exits 1.
//
//   $ ./bench_corpus_scan [repo_count] [--gate]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "scan/scanner.h"
#include "workload/corpus.h"

using namespace sqlcheck;

namespace {

namespace fs = std::filesystem;

constexpr double kWarmSpeedupFloor = 5.0;
/// Seed variants concatenated into each repo's queries.sql (~340 statements
/// per file at the generator's ~14 statements per repo per seed).
constexpr int kSeedVariants = 24;

struct RunResult {
  double best_seconds = 1e100;
  uint64_t digest = 0;
  scan::ScanReport report;
  scan::ScanSummary summary;  ///< From the last rep.
};

/// Runs one scan configuration `reps` times and keeps the best wall time —
/// the minimum is the noise-robust estimator for a deterministic workload.
/// `prepare` runs before each rep outside the timed region (the cold
/// configuration deletes the store file there).
template <typename Prepare>
bool RunScans(const std::string& root, const std::string& store_path, int reps,
              Prepare&& prepare, RunResult* out) {
  for (int r = 0; r < reps; ++r) {
    prepare();
    scan::ScanOptions options;
    options.store_path = store_path;
    scan::CorpusScanner scanner(options);
    Result<scan::ScanReport> result = scanner.Scan(root);
    if (!result.ok()) {
      std::fprintf(stderr, "FAIL: scan: %s\n", result.message().c_str());
      return false;
    }
    uint64_t digest = scan::DigestScanReport(result.value());
    if (r == 0) {
      out->digest = digest;
      out->report = std::move(result.value());
    } else if (digest != out->digest) {
      std::fprintf(stderr, "FAIL: rep %d digest %llu != rep 0 digest %llu\n", r,
                   static_cast<unsigned long long>(digest),
                   static_cast<unsigned long long>(out->digest));
      return false;
    }
    out->summary = scanner.summary();
    if (!out->summary.store.warning.empty()) {
      std::fprintf(stderr, "FAIL: unexpected store warning: %s\n",
                   out->summary.store.warning.c_str());
      return false;
    }
    if (out->summary.seconds < out->best_seconds) {
      out->best_seconds = out->summary.seconds;
    }
  }
  return true;
}

bool WriteCorpusTree(const std::vector<workload::Corpus>& variants,
                     const fs::path& root) {
  const workload::Corpus& base = variants.front();
  for (size_t r = 0; r < base.repos.size(); ++r) {
    fs::path dir = root / base.repos[r].name;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
      std::fprintf(stderr, "FAIL: mkdir %s: %s\n", dir.string().c_str(),
                   ec.message().c_str());
      return false;
    }
    std::ofstream sql(dir / "queries.sql");
    for (const workload::Corpus& corpus : variants) {
      for (const workload::LabeledStatement& stmt : corpus.repos[r].statements) {
        sql << stmt.sql << ";\n";
      }
    }
    if (!sql) return false;
    if (r % 4 == 0) {
      std::ofstream src(dir / "app.py");
      src << base.repos[r].source;
      if (!src) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int repo_count = 60;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    } else {
      repo_count = std::atoi(argv[i]);
      if (repo_count <= 0) {
        std::fprintf(stderr, "usage: %s [repo_count] [--gate]\n", argv[0]);
        return 2;
      }
    }
  }

  char tmpl[] = "/tmp/sqlcheck_bench_scan_XXXXXX";
  char* tmp = mkdtemp(tmpl);
  if (tmp == nullptr) {
    std::fprintf(stderr, "FAIL: mkdtemp\n");
    return 1;
  }
  fs::path root(tmp);
  std::string store_path = root.string() + ".store";

  std::vector<workload::Corpus> variants;
  variants.reserve(kSeedVariants);
  for (int v = 0; v < kSeedVariants; ++v) {
    workload::CorpusOptions options;
    options.repo_count = repo_count;
    options.seed = 1406 + static_cast<uint64_t>(v);
    variants.push_back(workload::GenerateCorpus(options));
  }
  bool ok = WriteCorpusTree(variants, root);

  RunResult cold, warm, disabled;
  if (ok) {
    ok = RunScans(root.string(), store_path, 3,
                  [&] { fs::remove(store_path); }, &cold);
  }
  if (ok && (cold.summary.store_reused != 0 || cold.summary.store.appended == 0)) {
    std::fprintf(stderr, "FAIL: cold scan was not cold (reused=%llu appended=%llu)\n",
                 static_cast<unsigned long long>(cold.summary.store_reused),
                 static_cast<unsigned long long>(cold.summary.store.appended));
    ok = false;
  }
  // The store left behind by the last cold rep feeds the warm runs.
  if (ok) ok = RunScans(root.string(), store_path, 3, [] {}, &warm);
  // A fully-warm scan replays every file whole from its manifest: no fresh
  // analyses, no statement probe misses, no stale manifests.
  if (ok && (warm.summary.analyzed != 0 || warm.summary.store.misses != 0 ||
             warm.summary.store.file_misses != 0 ||
             warm.summary.files_reused != warm.report.files ||
             warm.summary.store_reused == 0)) {
    std::fprintf(stderr,
                 "FAIL: warm scan not fully warm (analyzed=%llu misses=%llu "
                 "file_misses=%llu files_reused=%llu/%llu)\n",
                 static_cast<unsigned long long>(warm.summary.analyzed),
                 static_cast<unsigned long long>(warm.summary.store.misses),
                 static_cast<unsigned long long>(warm.summary.store.file_misses),
                 static_cast<unsigned long long>(warm.summary.files_reused),
                 static_cast<unsigned long long>(warm.report.files));
    ok = false;
  }
  if (ok) ok = RunScans(root.string(), std::string(), 1, [] {}, &disabled);

  // Soundness: the three configurations must report byte-identically. This
  // runs on every build type, gated or not.
  if (ok && (warm.digest != cold.digest || disabled.digest != cold.digest)) {
    std::fprintf(stderr,
                 "FAIL: digest mismatch cold=%llu warm=%llu disabled=%llu\n",
                 static_cast<unsigned long long>(cold.digest),
                 static_cast<unsigned long long>(warm.digest),
                 static_cast<unsigned long long>(disabled.digest));
    ok = false;
  }

  double speedup = ok ? cold.best_seconds / warm.best_seconds : 0.0;
  if (ok) {
    std::printf("corpus scan (repo_count=%d, %llu files, %llu statements, "
                "%llu unique, %llu findings)\n",
                repo_count, static_cast<unsigned long long>(cold.report.files),
                static_cast<unsigned long long>(cold.report.statements),
                static_cast<unsigned long long>(cold.report.unique_statements),
                static_cast<unsigned long long>(cold.report.findings));
    std::printf("  cold      %8.3f s  (fresh store, full analysis)\n",
                cold.best_seconds);
    std::printf("  warm      %8.3f s  (%5.2fx cold; %llu files replayed, 0 analyses)\n",
                warm.best_seconds, speedup,
                static_cast<unsigned long long>(warm.summary.files_reused));
    std::printf("  disabled  %8.3f s  (no store)\n", disabled.best_seconds);
    std::printf("  store     %llu entries, %llu bytes\n",
                static_cast<unsigned long long>(warm.summary.store.entries),
                static_cast<unsigned long long>(warm.summary.store.bytes));
    std::printf("  digests   identical across cold/warm/disabled\n");
  }

  bool gate_passed = true;
  if (ok && gate && speedup < kWarmSpeedupFloor) {
    std::fprintf(stderr, "FAIL: warm scan %.2fx cold < %.1fx floor\n", speedup,
                 kWarmSpeedupFloor);
    gate_passed = false;
  }

  std::error_code ec;
  fs::remove_all(root, ec);
  fs::remove(store_path, ec);

  if (!ok || !gate_passed) {
    // A red run must not leave a plausible-looking artifact behind.
    std::remove("BENCH_scan.json");
    std::fprintf(stderr, "refusing to write BENCH_scan.json: checks failed\n");
    return 1;
  }

  FILE* f = std::fopen("BENCH_scan.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write BENCH_scan.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"corpus_scan\",\n"
               "  \"repo_count\": %d,\n"
               "  \"seed_variants\": %d,\n"
               "  \"files\": %llu,\n"
               "  \"statements\": %llu,\n"
               "  \"unique_statements\": %llu,\n"
               "  \"findings\": %llu,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"cold_s\": %.4f,\n"
               "  \"warm_s\": %.4f,\n"
               "  \"disabled_s\": %.4f,\n"
               "  \"warm_speedup\": %.2f,\n"
               "  \"store_entries\": %llu,\n"
               "  \"store_bytes\": %llu,\n"
               "  \"digests_identical\": true,\n"
               "  \"gate\": %s\n"
               "}\n",
               repo_count, kSeedVariants,
               static_cast<unsigned long long>(cold.report.files),
               static_cast<unsigned long long>(cold.report.statements),
               static_cast<unsigned long long>(cold.report.unique_statements),
               static_cast<unsigned long long>(cold.report.findings),
               std::thread::hardware_concurrency(), cold.best_seconds,
               warm.best_seconds, disabled.best_seconds, speedup,
               static_cast<unsigned long long>(warm.summary.store.entries),
               static_cast<unsigned long long>(warm.summary.store.bytes),
               gate ? "\"pass\"" : "\"not-run\"");
  std::fclose(f);
  return 0;
}
