// Tables 5 & 6: sqlcheck's data-analysis rules over 31 Kaggle-style
// databases — AP count and classes per database (queries are NOT available,
// exactly as in §8.4's data analysis experiment; paper total: 200 APs).
#include <cstdio>
#include <map>
#include <set>

#include "analysis/context.h"
#include "rules/registry.h"
#include "workload/kaggle.h"

using namespace sqlcheck;

int main() {
  std::printf("Tables 5 & 6 — data-analysis detection on Kaggle-style databases\n");
  std::printf("%-36s %6s  %s\n", "Database", "# AP", "Detected classes");
  int total = 0;
  for (const auto& spec : workload::KaggleSpecs()) {
    auto db = workload::SynthesizeKaggleDatabase(spec);
    ContextBuilder builder;
    builder.AttachDatabase(db.get());
    Context context = builder.Build();
    DetectorConfig config;
    config.intra_query = false;  // data rules only
    auto detections = DetectAntiPatterns(context, config);

    std::set<AntiPattern> classes;
    for (const auto& d : detections) classes.insert(d.type);
    std::string names;
    for (AntiPattern type : classes) {
      if (!names.empty()) names += ", ";
      names += ApName(type);
    }
    std::printf("%-36s %6zu  %s\n", spec.name.c_str(), detections.size(), names.c_str());
    total += static_cast<int>(detections.size());
  }
  std::printf("%-36s %6d\n", "Total:", total);
  std::printf("\npaper total: 200 APs across 31 databases (data rules only)\n");
  return 0;
}
