// Figure 8a: Index Overuse — UPDATE latency with one vs five indexes on the
// updated column. The paper measures ~10x slower updates with five indexes
// (1.663s vs 0.244s at their scale); every index entry must be unhooked and
// re-inserted per update.
#include <benchmark/benchmark.h>

#include "engine/executor.h"
#include "storage/database.h"

namespace {

using sqlcheck::Database;
using sqlcheck::Executor;

constexpr int kRows = 20000;

std::unique_ptr<Database> BuildTenants(int index_count) {
  auto db = std::make_unique<Database>("fig8a");
  Executor exec(db.get());
  exec.ExecuteSql(
      "CREATE TABLE tenant (tenant_id INTEGER PRIMARY KEY, zone_id VARCHAR(8), "
      "active BOOLEAN, score INTEGER)");
  for (int i = 0; i < kRows; ++i) {
    exec.ExecuteSql("INSERT INTO tenant (tenant_id, zone_id, active, score) VALUES (" +
                    std::to_string(i) + ", 'Z" + std::to_string(i % 16) + "', true, " +
                    std::to_string(i % 100) + ")");
  }
  // All indexes lead with `score`, the updated field, so each one pays
  // maintenance on every UPDATE below.
  const char* defs[] = {
      "CREATE INDEX idx_score ON tenant (score)",
      "CREATE INDEX idx_score_zone ON tenant (score, zone_id)",
      "CREATE INDEX idx_score_actv ON tenant (score, active)",
      "CREATE INDEX idx_score_id ON tenant (score, tenant_id)",
      "CREATE INDEX idx_score_all ON tenant (score, zone_id, active)",
  };
  for (int i = 0; i < index_count; ++i) exec.ExecuteSql(defs[i]);
  return db;
}

void BM_Update_WithIndexes(benchmark::State& state) {
  auto db = BuildTenants(static_cast<int>(state.range(0)));
  Executor exec(db.get());
  int bump = 0;
  for (auto _ : state) {
    auto r = exec.ExecuteSql("UPDATE tenant SET score = score + 1 WHERE zone_id = 'Z" +
                             std::to_string(bump++ % 16) + "'");
    if (!r.ok()) state.SkipWithError(r.message().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::to_string(state.range(0)) + " index(es) on updated column");
}

// AP: five indexes on the updated field; fix: one.
BENCHMARK(BM_Update_WithIndexes)->Arg(5)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace
