// Figure 3: performance impact of the Multi-Valued Attribute AP on the three
// GlobaLeaks tasks (§2.1, §2.3). Paper speedups after fixing: 636x / 256x /
// 193x. Our substrate is an in-memory engine at smaller scale, so absolute
// times differ; the AP variant must lose by orders of magnitude.
#include <benchmark/benchmark.h>

#include "engine/executor.h"
#include "workload/globaleaks.h"

namespace {

using sqlcheck::Database;
using sqlcheck::Executor;
using sqlcheck::workload::Globaleaks;
using sqlcheck::workload::GlobaleaksOptions;

GlobaleaksOptions Scale() {
  GlobaleaksOptions options;
  options.tenant_count = 1000;
  options.users_per_tenant = 20;
  return options;
}

Database& ApDb() {
  static Database* db = [] {
    auto* d = new Database("globaleaks_ap");
    Globaleaks::BuildWithAps(d, Scale());
    return d;
  }();
  return *db;
}

Database& FixedDb() {
  static Database* db = [] {
    auto* d = new Database("globaleaks_fixed");
    Globaleaks::BuildRefactored(d, Scale());
    return d;
  }();
  return *db;
}

void Run(benchmark::State& state, Database& db, const std::string& sql) {
  Executor exec(&db);
  for (auto _ : state) {
    auto r = exec.ExecuteSql(sql);
    if (!r.ok()) state.SkipWithError(r.message().c_str());
    benchmark::DoNotOptimize(r);
  }
}

void BM_Task1_TenantsOfUser_AP(benchmark::State& state) {
  Run(state, ApDb(), Globaleaks::Task1Ap(Globaleaks::SomeUserId(Scale())));
}
void BM_Task1_TenantsOfUser_Fixed(benchmark::State& state) {
  Run(state, FixedDb(), Globaleaks::Task1Fixed(Globaleaks::SomeUserId(Scale())));
}
void BM_Task2_UsersOfTenant_AP(benchmark::State& state) {
  Run(state, ApDb(), Globaleaks::Task2Ap(Globaleaks::SomeTenantId(Scale())));
}
void BM_Task2_UsersOfTenant_Fixed(benchmark::State& state) {
  Run(state, FixedDb(), Globaleaks::Task2Fixed(Globaleaks::SomeTenantId(Scale())));
}

// Task 3 mutates, so each iteration detaches a DIFFERENT existing user —
// every run does real work instead of re-deleting a ghost.
void BM_Task3_DetachUser_AP(benchmark::State& state) {
  Executor exec(&ApDb());
  size_t i = 0;
  for (auto _ : state) {
    auto r = exec.ExecuteSql(Globaleaks::Task3Ap("U" + std::to_string(i++)));
    if (!r.ok()) state.SkipWithError(r.message().c_str());
    benchmark::DoNotOptimize(r);
  }
}
void BM_Task3_DetachUser_Fixed(benchmark::State& state) {
  Executor exec(&FixedDb());
  size_t i = 0;
  for (auto _ : state) {
    auto r = exec.ExecuteSql(Globaleaks::Task3Fixed("U" + std::to_string(i++)));
    if (!r.ok()) state.SkipWithError(r.message().c_str());
    benchmark::DoNotOptimize(r);
  }
}

BENCHMARK(BM_Task1_TenantsOfUser_AP)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Task1_TenantsOfUser_Fixed)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Task2_UsersOfTenant_AP)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Task2_UsersOfTenant_Fixed)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Task3_DetachUser_AP)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Task3_DetachUser_Fixed)->Unit(benchmark::kMicrosecond);

}  // namespace
