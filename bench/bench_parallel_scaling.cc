// Parallel batch-analysis scaling on the table-3 corpus: one flattened
// GitHub-style workload, detected end-to-end at 1/2/4/8 worker threads.
// Reports analysis + detection wall time per thread count, speedup over the
// serial baseline, and verifies the merged detection streams stay
// byte-identical (every detection field is folded into a digest). Exits
// nonzero on divergence always; with --gate it additionally requires >1.5x
// speedup at 4 threads (on hosts with at least 4 hardware threads).
//
//   $ ./bench_parallel_scaling [repo_count] [--gate]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/context.h"
#include "common/thread_pool.h"
#include "rules/registry.h"
#include "sql/extractor.h"
#include "workload/corpus.h"

using namespace sqlcheck;

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct RunResult {
  double build_ms = 0.0;
  double detect_ms = 0.0;
  size_t detections = 0;
  uint64_t digest = 0;  ///< FNV-1a over every detection field, in order.
};

/// Folds every byte of every detection field into one order-sensitive hash,
/// so any reorder/substitution in the merged stream changes the digest.
uint64_t DigestDetections(const std::vector<Detection>& detections) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::string_view s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= 0xff;  // field separator
    h *= 1099511628211ull;
  };
  for (const auto& d : detections) {
    mix(std::to_string(static_cast<int>(d.type)));
    mix(std::to_string(static_cast<int>(d.source)));
    mix(d.table);
    mix(d.column);
    mix(d.query);
    mix(d.message);
  }
  return h;
}

/// One full pipeline pass (context build + ap-detect), best of `repeats`.
RunResult RunPipeline(const std::vector<std::string>& statements,
                      const RuleRegistry& registry, int parallelism, int repeats) {
  RunResult best;
  for (int r = 0; r < repeats; ++r) {
    ContextBuilder builder;
    for (const auto& sql_text : statements) builder.AddQuery(sql_text);

    auto build_start = Clock::now();
    Context context = builder.Build(parallelism);
    double build_ms = MsSince(build_start);

    DetectorConfig config;
    config.data_analysis = false;  // corpus workload carries no database
    auto detect_start = Clock::now();
    std::vector<Detection> detections =
        DetectAntiPatterns(context, registry, config, parallelism);
    double detect_ms = MsSince(detect_start);

    if (r == 0) {
      best.detections = detections.size();
      best.digest = DigestDetections(detections);
    }
    if (r == 0 || build_ms + detect_ms < best.build_ms + best.detect_ms) {
      best.build_ms = build_ms;
      best.detect_ms = detect_ms;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  workload::CorpusOptions corpus_options;
  corpus_options.repo_count = 600;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--gate") {
      gate = true;
    } else {
      corpus_options.repo_count = std::atoi(argv[i]);
    }
  }

  // Flatten the corpus the way bench_table3 feeds it: embedded SQL extracted
  // from every synthetic repository into one batch workload.
  workload::Corpus corpus = GenerateCorpus(corpus_options);
  std::vector<std::string> statements;
  for (const auto& repo : corpus.repos) {
    for (const auto& found : sql::ExtractEmbeddedSql(repo.source)) {
      statements.push_back(found.sql);
    }
  }

  RuleRegistry registry = RuleRegistry::Default();
  constexpr int kRepeats = 3;

  std::printf("parallel scaling: table-3 corpus, %d repos, %zu statements, %zu rules\n\n",
              corpus_options.repo_count, statements.size(), registry.size());
  std::printf("%8s %12s %12s %12s %12s %10s\n", "threads", "build(ms)", "detect(ms)",
              "total(ms)", "detections", "speedup");

  RunResult serial = RunPipeline(statements, registry, 1, kRepeats);
  double serial_total = serial.build_ms + serial.detect_ms;
  std::printf("%8d %12.1f %12.1f %12.1f %12zu %9.2fx\n", 1, serial.build_ms,
              serial.detect_ms, serial_total, serial.detections, 1.0);

  double speedup_at_4 = 0.0;
  for (int threads : {2, 4, 8}) {
    RunResult result = RunPipeline(statements, registry, threads, kRepeats);
    double total = result.build_ms + result.detect_ms;
    double speedup = total > 0.0 ? serial_total / total : 0.0;
    if (threads == 4) speedup_at_4 = speedup;
    std::printf("%8d %12.1f %12.1f %12.1f %12zu %9.2fx\n", threads, result.build_ms,
                result.detect_ms, total, result.detections, speedup);
    if (result.detections != serial.detections || result.digest != serial.digest) {
      std::printf("FAIL: detection stream diverged at %d threads "
                  "(%zu vs %zu detections, digest %016llx vs %016llx)\n",
                  threads, result.detections, serial.detections,
                  static_cast<unsigned long long>(result.digest),
                  static_cast<unsigned long long>(serial.digest));
      return 1;
    }
  }

  std::printf("\ndetection streams identical at every thread count (digest %016llx)\n",
              static_cast<unsigned long long>(serial.digest));
  std::printf("speedup at 4 threads: %.2fx (target > 1.5x)\n", speedup_at_4);

  if (!gate) {
    std::printf("speedup gate off — pass --gate to enforce the 1.5x target\n");
    return 0;
  }
  // The speedup target only means something when the hardware can actually
  // run shards concurrently; on fewer than 4 cores report-only, don't fail.
  int hardware = ThreadPool::ResolveParallelism(0);
  if (hardware < 4) {
    std::printf("SKIP speedup gate: %d hardware thread(s) available\n", hardware);
    return 0;
  }
  return speedup_at_4 > 1.5 ? 0 : 1;
}
