// Figure 8d-f: the No Foreign Key AP.
//   8d — UPDATE on the referencing column with vs without the FK declared:
//        nearly flat (paper: 1.884s vs 1.74s), because validating the FK is a
//        cheap indexed probe while finding the rows dominates.
//   8e — SELECT join with vs without the FK: flat (1.058 vs 1.0) — the
//        constraint does not change read plans.
//   8f — UPDATE ... WHERE fk_col = v with vs without an index on fk_col:
//        the explicit index is the real win (paper: 142x).
#include <benchmark/benchmark.h>

#include "engine/executor.h"
#include "storage/database.h"

namespace {

using sqlcheck::Database;
using sqlcheck::Executor;

constexpr int kParents = 400;
constexpr int kChildren = 30000;

std::unique_ptr<Database> Build(bool with_fk, bool with_fk_index) {
  auto db = std::make_unique<Database>("fig8def");
  Executor exec(db.get());
  exec.ExecuteSql("CREATE TABLE tenant (tenant_id INTEGER PRIMARY KEY, zone VARCHAR(8))");
  std::string child_ddl =
      "CREATE TABLE questionnaire (q_id INTEGER PRIMARY KEY, tenant_id INTEGER";
  if (with_fk) child_ddl += " REFERENCES tenant (tenant_id)";
  child_ddl += ", name VARCHAR(24), editable BOOLEAN)";
  exec.ExecuteSql(child_ddl);
  for (int i = 0; i < kParents; ++i) {
    exec.ExecuteSql("INSERT INTO tenant (tenant_id, zone) VALUES (" + std::to_string(i) +
                    ", 'Z" + std::to_string(i % 8) + "')");
  }
  for (int i = 0; i < kChildren; ++i) {
    exec.ExecuteSql("INSERT INTO questionnaire (q_id, tenant_id, name, editable) VALUES (" +
                    std::to_string(i) + ", " + std::to_string(i % kParents) + ", 'q" +
                    std::to_string(i) + "', true)");
  }
  if (with_fk_index) {
    exec.ExecuteSql("CREATE INDEX idx_q_tenant ON questionnaire (tenant_id)");
  }
  return db;
}

void BM_Fig8d_UpdateReferencingColumn(benchmark::State& state) {
  bool with_fk = state.range(0) == 1;
  auto db = Build(with_fk, false);
  Executor exec(db.get());
  int i = 0;
  for (auto _ : state) {
    // Reassign one questionnaire to another (existing) tenant; with the FK
    // declared, each write validates the parent via its PK index.
    auto r = exec.ExecuteSql("UPDATE questionnaire SET tenant_id = " +
                             std::to_string((i * 7) % kParents) + " WHERE q_id = " +
                             std::to_string(i % kChildren));
    ++i;
    if (!r.ok()) state.SkipWithError(r.message().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(with_fk ? "FK declared (fix)" : "no FK (AP)");
}

void BM_Fig8e_SelectJoin(benchmark::State& state) {
  bool with_fk = state.range(0) == 1;
  auto db = Build(with_fk, false);
  Executor exec(db.get());
  for (auto _ : state) {
    auto r = exec.ExecuteSql(
        "SELECT q.name, t.zone FROM questionnaire q JOIN tenant t "
        "ON t.tenant_id = q.tenant_id WHERE q.editable = true");
    if (!r.ok()) state.SkipWithError(r.message().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(with_fk ? "FK declared (fix)" : "no FK (AP)");
}

void BM_Fig8f_UpdateByFkColumn(benchmark::State& state) {
  bool with_index = state.range(0) == 1;
  auto db = Build(true, with_index);
  Executor exec(db.get());
  int i = 0;
  for (auto _ : state) {
    auto r = exec.ExecuteSql("UPDATE questionnaire SET editable = false WHERE tenant_id = " +
                             std::to_string(i++ % kParents));
    if (!r.ok()) state.SkipWithError(r.message().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(with_index ? "index on FK column" : "no index (scan per update)");
}

BENCHMARK(BM_Fig8d_UpdateReferencingColumn)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Fig8e_SelectJoin)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig8f_UpdateByFkColumn)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace
