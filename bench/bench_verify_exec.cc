// Differential-execution verification cost: runs a fix-heavy workload
// through the batch facade three ways — fixes on with Tier-3 verification
// off, on, and required — and prices what --verify-exec adds to a fixes-on
// snapshot. Verifies first that Tier 3 never perturbs detection (the
// fixes-off emitter output must stay byte-identical across modes, always
// enforced), then writes the measurements to BENCH_verify.json. With --gate
// it additionally requires the verify-on snapshot to cost at most 2x the
// verify-off snapshot at the configured workload size.
//
//   $ ./bench_verify_exec [statement_count] [--gate]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "core/emit.h"
#include "core/session.h"
#include "core/sqlcheck.h"

using namespace sqlcheck;

namespace {

using Clock = std::chrono::steady_clock;

double UsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

/// A duplicate-heavy workload biased toward statements whose fixes carry an
/// executable equivalence contract (wildcards, implicit INSERT columns,
/// leading-wildcard LIKEs, ORDER BY RAND, NULL-swallowing concats), so the
/// verify-on run actually exercises the ephemeral-database pipeline instead
/// of skipping through kNotApplicable fixes.
std::vector<std::string> BuildWorkload(size_t count) {
  static const char* kDdl[] = {
      "CREATE TABLE users (id INTEGER PRIMARY KEY, name VARCHAR(24), "
      "email VARCHAR(40), status VARCHAR(8))",
      "CREATE TABLE orders (oid INTEGER PRIMARY KEY, user_id INTEGER "
      "REFERENCES users(id), total INTEGER, note VARCHAR(30))",
  };
  static const char* kTemplates[] = {
      "SELECT * FROM users WHERE status = 'active'",
      "SELECT * FROM orders WHERE total > 100",
      "SELECT id FROM users WHERE email LIKE '%@example.com'",
      "SELECT oid FROM orders WHERE note LIKE '%rush'",
      "SELECT * FROM users ORDER BY RAND() LIMIT 1",
      "INSERT INTO users VALUES (1, 'ada', 'ada@example.com', 'active')",
      "SELECT name || email FROM users",
      "SELECT u.name, o.total FROM users u JOIN orders o ON u.id = o.user_id "
      "WHERE o.total > 40",
  };
  constexpr size_t kTemplateCount = sizeof(kTemplates) / sizeof(kTemplates[0]);

  std::vector<std::string> statements;
  statements.reserve(count + 2);
  for (const char* ddl : kDdl) statements.push_back(ddl);
  for (size_t i = 0; i < count; ++i) {
    if (i % 8 == 7) {
      // A unique-literal tail keeps the dedup cache honest: every eighth
      // statement opens a fresh fingerprint group (and a fresh memo probe).
      statements.push_back("SELECT * FROM orders WHERE oid = " + std::to_string(i));
      continue;
    }
    statements.push_back(kTemplates[i % kTemplateCount]);
  }
  return statements;
}

struct ModeRun {
  Report report;
  double snapshot_ms = 0.0;
  VerifyStats stats;
  std::string detection_json;  // fixes-off emitter output: detection identity
};

ModeRun RunMode(const std::vector<std::string>& statements, ExecVerifyMode mode) {
  SqlCheckOptions options;
  options.verify_exec.mode = mode;
  SqlCheck checker(options);
  for (const auto& sql : statements) checker.AddQuery(sql);
  ModeRun run;
  // Best-of-3: Run() is idempotent and the first snapshot pays one-time
  // profiling, which is not what this bench prices.
  run.snapshot_ms = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    auto start = Clock::now();
    run.report = checker.Run();
    run.snapshot_ms = std::min(run.snapshot_ms, UsSince(start) / 1000.0);
  }
  run.stats = checker.session().verify_stats();
  run.detection_json = ToJson(run.report, EmitOptions{});
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  size_t count = 4000;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--gate") {
      gate = true;
    } else {
      count = static_cast<size_t>(std::atoll(argv[i]));
    }
  }

  std::vector<std::string> statements = BuildWorkload(count);
  std::printf("verify-exec cost: %zu-statement fix-heavy workload\n\n",
              statements.size());

  ModeRun off = RunMode(statements, ExecVerifyMode::kOff);
  ModeRun on = RunMode(statements, ExecVerifyMode::kOn);
  ModeRun required = RunMode(statements, ExecVerifyMode::kRequired);

  bool detection_identical =
      off.detection_json == on.detection_json && on.detection_json == required.detection_json;

  const VerifyStats& stats = on.stats;
  uint64_t memo_total = stats.memo_hits + stats.memo_misses;
  double memo_hit_rate =
      memo_total > 0 ? static_cast<double>(stats.memo_hits) /
                           static_cast<double>(memo_total)
                     : 0.0;
  double overhead_ms = on.snapshot_ms - off.snapshot_ms;
  double per_exec_us =
      stats.exec_runs > 0 ? (overhead_ms * 1000.0) / static_cast<double>(stats.exec_runs)
                          : 0.0;
  double ratio = off.snapshot_ms > 0.0 ? on.snapshot_ms / off.snapshot_ms : 0.0;

  std::printf("%28s %12s\n", "metric", "value");
  std::printf("%28s %12zu\n", "findings", on.report.size());
  std::printf("%28s %10.1fms\n", "snapshot (verify off)", off.snapshot_ms);
  std::printf("%28s %10.1fms\n", "snapshot (verify on)", on.snapshot_ms);
  std::printf("%28s %10.1fms\n", "snapshot (verify required)", required.snapshot_ms);
  std::printf("%28s %10.1fms\n", "tier-3 overhead", overhead_ms);
  std::printf("%28s %11.2fx\n", "on/off snapshot ratio", ratio);
  std::printf("%28s %12llu\n", "tier-3 executions",
              static_cast<unsigned long long>(stats.exec_runs));
  std::printf("%28s %12llu\n", "tier-3 infeasible",
              static_cast<unsigned long long>(stats.exec_infeasible));
  std::printf("%28s %10.1fus\n", "cost per execution", per_exec_us);
  std::printf("%28s %9llu/%llu\n", "memo hits/probes",
              static_cast<unsigned long long>(stats.memo_hits),
              static_cast<unsigned long long>(memo_total));
  std::printf("%28s %12llu\n", "exec-tier fixes",
              static_cast<unsigned long long>(stats.tier_exec));
  std::printf("%28s %12llu\n", "analysis-tier fixes",
              static_cast<unsigned long long>(stats.tier_analysis));
  std::printf("%28s %12llu\n", "demoted fixes",
              static_cast<unsigned long long>(stats.demoted));

  FILE* out = std::fopen("BENCH_verify.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write BENCH_verify.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"verify_exec\",\n"
               "  \"statements\": %zu,\n"
               "  \"findings\": %zu,\n"
               "  \"snapshot_off_ms\": %.2f,\n"
               "  \"snapshot_on_ms\": %.2f,\n"
               "  \"snapshot_required_ms\": %.2f,\n"
               "  \"tier3_overhead_ms\": %.2f,\n"
               "  \"on_off_ratio\": %.3f,\n"
               "  \"exec_runs\": %llu,\n"
               "  \"exec_infeasible\": %llu,\n"
               "  \"cost_per_exec_us\": %.2f,\n"
               "  \"memo_hits\": %llu,\n"
               "  \"memo_misses\": %llu,\n"
               "  \"memo_hit_rate\": %.4f,\n"
               "  \"tier_exec\": %llu,\n"
               "  \"tier_analysis\": %llu,\n"
               "  \"demoted\": %llu,\n"
               "  \"detection_identical\": %s\n"
               "}\n",
               statements.size(), on.report.size(), off.snapshot_ms, on.snapshot_ms,
               required.snapshot_ms, overhead_ms, ratio,
               static_cast<unsigned long long>(stats.exec_runs),
               static_cast<unsigned long long>(stats.exec_infeasible), per_exec_us,
               static_cast<unsigned long long>(stats.memo_hits),
               static_cast<unsigned long long>(stats.memo_misses), memo_hit_rate,
               static_cast<unsigned long long>(stats.tier_exec),
               static_cast<unsigned long long>(stats.tier_analysis),
               static_cast<unsigned long long>(stats.demoted),
               detection_identical ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote BENCH_verify.json\n");

  if (!detection_identical) {
    std::printf("FAIL: --verify-exec changed the fixes-off emitter output\n");
    return 1;
  }
  std::printf("detection output byte-identical across verify modes\n");
  if (stats.exec_runs == 0) {
    std::printf("FAIL: workload produced no Tier-3 executions to measure\n");
    return 1;
  }

  if (!gate) {
    std::printf("cost gate off — pass --gate to enforce the 2x budget\n");
    return 0;
  }
  if (ratio > 2.0) {
    std::printf("FAIL: verify-on snapshot %.2fx the verify-off snapshot (budget 2x)\n",
                ratio);
    return 1;
  }
  std::printf("gate passed: verify-on snapshot %.2fx the verify-off snapshot (budget 2x)\n",
              ratio);
  return 0;
}
