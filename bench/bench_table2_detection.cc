// Table 2: detection comparison between sqlcheck (S) and dbdeo (D) on the
// query benchmark, for the six AP classes the paper audits manually:
// S-only / D-only / Both counts plus TP/FP per tool. Ground truth comes from
// the corpus generator's seeded labels (the substitute for the paper's
// manual analysis). Headline to reproduce: sqlcheck has substantially fewer
// false positives (paper: 48%) and fewer false negatives (20%) than dbdeo.
#include <cstdio>
#include <map>
#include <set>

#include "analysis/context.h"
#include "baseline/dbdeo.h"
#include "rules/registry.h"
#include "sql/extractor.h"
#include "workload/corpus.h"

using namespace sqlcheck;
using workload::Corpus;
using workload::CorpusOptions;
using workload::DetectionScore;

namespace {

const std::vector<AntiPattern>& Table2Types() {
  static const std::vector<AntiPattern>* kTypes = new std::vector<AntiPattern>{
      AntiPattern::kPatternMatching, AntiPattern::kGodTable,
      AntiPattern::kEnumeratedTypes, AntiPattern::kRoundingErrors,
      AntiPattern::kDataInMetadata,  AntiPattern::kAdjacencyList,
  };
  return *kTypes;
}

/// (query, type) pair sets for the S/D/Both breakdown.
std::set<std::pair<std::string, int>> PairSet(const std::vector<Detection>& detections) {
  std::set<std::pair<std::string, int>> out;
  for (const auto& d : detections) {
    out.emplace(d.query, static_cast<int>(d.type));
  }
  return out;
}

}  // namespace

int main() {
  CorpusOptions options;
  options.repo_count = 300;
  Corpus corpus = GenerateCorpus(options);

  // Per-repo runs: sqlcheck builds one context per repository (inter-query
  // context is repo-local, as in the paper), dbdeo is statement-local.
  std::vector<Detection> sqlcheck_detections;
  std::vector<Detection> dbdeo_detections;
  Dbdeo dbdeo;
  for (const auto& repo : corpus.repos) {
    ContextBuilder builder;
    std::vector<std::string> raw;
    // Statements arrive through the embedded-SQL extractor, as in §8.1.
    for (const auto& found : sql::ExtractEmbeddedSql(repo.source)) {
      builder.AddQuery(found.sql);
      raw.push_back(found.sql);
    }
    Context context = builder.Build();
    DetectorConfig config;
    config.data_analysis = false;  // GitHub corpora ship queries, not data
    for (auto& d : DetectAntiPatterns(context, config)) {
      sqlcheck_detections.push_back(std::move(d));
    }
    for (auto& d : dbdeo.CheckAll(raw)) {
      dbdeo_detections.push_back(std::move(d));
    }
  }

  auto s_pairs = PairSet(sqlcheck_detections);
  auto d_pairs = PairSet(dbdeo_detections);
  auto s_scores = ScoreDetections(corpus, sqlcheck_detections, Table2Types());
  auto d_scores = ScoreDetections(corpus, dbdeo_detections, Table2Types());

  std::printf("Table 2 — Detection of Anti-Patterns (corpus: %d repos, %zu statements)\n",
              options.repo_count, corpus.StatementCount());
  std::printf("%-18s %6s %6s %6s %6s %6s %6s %6s\n", "AP Name", "S", "D", "Both", "TP-S",
              "FP-S", "TP-D", "FP-D");

  int total_s = 0, total_d = 0, total_both = 0;
  DetectionScore total_sq, total_db;
  for (AntiPattern type : Table2Types()) {
    int t = static_cast<int>(type);
    int s_only = 0, d_only = 0, both = 0;
    for (const auto& pair : s_pairs) {
      if (pair.second != t) continue;
      if (d_pairs.count(pair) > 0) ++both;
      else ++s_only;
    }
    for (const auto& pair : d_pairs) {
      if (pair.second == t && s_pairs.count(pair) == 0) ++d_only;
    }
    const DetectionScore& ss = s_scores[type];
    const DetectionScore& ds = d_scores[type];
    std::printf("%-18s %6d %6d %6d %6d %6d %6d %6d\n", ApName(type), s_only, d_only, both,
                ss.true_positives, ss.false_positives, ds.true_positives,
                ds.false_positives);
    total_s += s_only;
    total_d += d_only;
    total_both += both;
    total_sq.true_positives += ss.true_positives;
    total_sq.false_positives += ss.false_positives;
    total_sq.false_negatives += ss.false_negatives;
    total_db.true_positives += ds.true_positives;
    total_db.false_positives += ds.false_positives;
    total_db.false_negatives += ds.false_negatives;
  }
  std::printf("%-18s %6d %6d %6d %6d %6d %6d %6d\n", "Total:", total_s, total_d,
              total_both, total_sq.true_positives, total_sq.false_positives,
              total_db.true_positives, total_db.false_positives);

  double fp_reduction =
      total_db.false_positives == 0
          ? 0.0
          : 100.0 * (total_db.false_positives - total_sq.false_positives) /
                total_db.false_positives;
  double fn_reduction =
      total_db.false_negatives == 0
          ? 0.0
          : 100.0 * (total_db.false_negatives - total_sq.false_negatives) /
                total_db.false_negatives;
  std::printf("\nsqlcheck vs dbdeo: %.0f%% fewer false positives (paper: 48%%), "
              "%.0f%% fewer false negatives (paper: 20%%)\n",
              fp_reduction, fn_reduction);
  std::printf("sqlcheck precision %.2f recall %.2f | dbdeo precision %.2f recall %.2f\n",
              total_sq.Precision(), total_sq.Recall(), total_db.Precision(),
              total_db.Recall());
  return 0;
}
