// Overload shedding: drives an in-process sqlcheck-server well past its
// worker capacity with a bounded admission queue and verifies the failure
// mode is the designed one — excess requests are refused instantly with a
// retryable `overloaded` line (never queued unboundedly), while the requests
// that ARE admitted keep a latency within a small multiple of the
// uncontended baseline, and no connection is left wedged afterwards.
//
// Load shape: a few driver threads each PIPELINE deep bursts on their own
// connection. Pipelined lines are admitted back-to-back under the
// connection lock, so the queue-depth check observes the burst as a whole —
// the offered concurrency (drivers x burst) is ~4x what the server can hold
// (workers running + max-queue-depth waiting), independent of how many cores
// the host gives the benchmark process. Three phases:
//   1. baseline  — one client, serial requests on an idle server: p99 of the
//                  uncontended round trip.
//   2. overload  — pipelined burst storm against `--max-queue-depth`;
//                  accepted latencies and shed counts per driver.
//   3. liveness  — every connection (and one fresh one) must still answer a
//                  ping; the server's own shed gauge must agree.
// Results go to BENCH_overload.json. With --gate the run requires shed > 0,
// accepted p99 <= 2x the uncontended p99, and zero wedged connections.
//
//   $ ./bench_overload [drivers] [rounds_per_driver] [--gate]
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/emit.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"

using namespace sqlcheck;
using server::LineClient;
using server::ServerOptions;
using server::SqlCheckServer;

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kWorkers = 1;
constexpr size_t kQueueDepth = 1;   // admitted backlog: ~one service time
constexpr size_t kBurst = 8;        // pipelined requests per driver per round

double UsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

/// One request's SQL payload. Two requirements pull in opposite directions:
/// the per-request WORKER time (parse + per-unique-group analysis) must
/// dwarf scheduling noise so the admission queue is the real bottleneck, but
/// the RESPONSE must stay small — finding-heavy payloads shift the cost to
/// the event thread's write path, where no queue bounds latency. So: many
/// statements, every one a distinct fingerprint group (full analysis each),
/// none tripping a rule.
std::string BuildPayload() {
  std::string sql;
  for (size_t i = 0; i < 1200; ++i) {
    sql += "SELECT col_a, col_b FROM tab" + std::to_string(i) +
           " WHERE key_col = ? AND flag = 'y'; ";
  }
  return R"({"op": "check", "sql": ")" + JsonEscape(sql) + "\"}";
}

/// Checks append to the session history, and per-request cost grows with it —
/// a loop without resets measures session size, not contention. The baseline
/// wipes its session at this cadence (drivers reset every round).
constexpr size_t kResetEvery = 25;

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

/// Pulls one numeric field out of a stats response — enough JSON for a bench.
uint64_t ExtractNumber(const std::string& json, const std::string& key) {
  size_t at = json.find("\"" + key + "\": ");
  if (at == std::string::npos) return 0;
  return static_cast<uint64_t>(std::atoll(json.c_str() + at + key.size() + 4));
}

/// Reads stream lines up to the terminal. Returns false on a dead socket.
bool ReadTerminal(LineClient* client, std::string* terminal) {
  std::string line;
  while (client->ReadLine(&line).ok()) {
    if (line.rfind("{\"op\": \"finding\", ", 0) == 0 ||
        line.rfind("{\"op\": \"statement_error\", ", 0) == 0) {
      continue;
    }
    *terminal = line;
    return true;
  }
  return false;
}

/// Resets the connection's session, retrying through the admission gate (the
/// reset itself can be shed under the storm). Returns false on a dead socket.
bool ResetSession(LineClient* client) {
  std::string terminal;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    if (!client->SendLine(R"({"op": "reset"})").ok() ||
        !ReadTerminal(client, &terminal)) {
      return false;
    }
    if (terminal.find("\"op\": \"reset\", \"ok\": true") != std::string::npos) {
      return true;
    }
    if (terminal.find("\"code\": \"overloaded\"") == std::string::npos) return false;
  }
  return false;
}

struct DriverResult {
  std::vector<double> accepted_us;
  size_t shed = 0;
  size_t missing_retry_hint = 0;
  size_t errors = 0;
  bool wedged = false;  ///< liveness ping after the storm failed
};

}  // namespace

int main(int argc, char** argv) {
  size_t drivers = 1;
  size_t rounds = 100;
  bool gate = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--gate") {
      gate = true;
    } else if (positional++ == 0) {
      drivers = static_cast<size_t>(std::atoll(argv[i]));
    } else {
      rounds = static_cast<size_t>(std::atoll(argv[i]));
    }
  }

  rlimit nofile{};
  if (getrlimit(RLIMIT_NOFILE, &nofile) == 0 && nofile.rlim_cur < nofile.rlim_max) {
    nofile.rlim_cur = nofile.rlim_max;
    setrlimit(RLIMIT_NOFILE, &nofile);
  }

  const std::string request = BuildPayload();
  const size_t capacity = static_cast<size_t>(kWorkers) + kQueueDepth;
  std::printf("overload: %d workers, queue depth %zu, %zu drivers x %zu-deep "
              "pipelined bursts (%zux capacity) x %zu rounds\n\n",
              kWorkers, kQueueDepth, drivers, kBurst,
              drivers * kBurst / capacity, rounds);

  ServerOptions options;
  options.port = 0;
  options.workers = kWorkers;
  options.max_queue_depth = kQueueDepth;
  options.max_sessions = drivers + 16;
  SqlCheckServer srv(options);
  Status status = srv.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", status.message().c_str());
    return 1;
  }

  // ---- Phase 1: uncontended baseline on an idle server. ----
  std::vector<double> baseline_us;
  {
    LineClient probe;
    std::string line;
    if (!probe.Connect("127.0.0.1", srv.port()).ok() || !probe.ReadLine(&line).ok()) {
      std::fprintf(stderr, "FAIL: baseline connect failed\n");
      return 1;
    }
    // Warm-up: the first request analyzes every unique group cold.
    for (int i = 0; i < 3; ++i) {
      if (!probe.SendLine(request).ok() || !ReadTerminal(&probe, &line)) {
        std::fprintf(stderr, "FAIL: baseline warm-up request failed\n");
        return 1;
      }
    }
    for (size_t i = 0; i < 200; ++i) {
      if (i % kResetEvery == 0 && !ResetSession(&probe)) {
        std::fprintf(stderr, "FAIL: baseline reset failed\n");
        return 1;
      }
      auto start = Clock::now();
      if (!probe.SendLine(request).ok() || !ReadTerminal(&probe, &line) ||
          line.find("\"ok\": true") == std::string::npos) {
        std::fprintf(stderr, "FAIL: baseline request failed\n");
        return 1;
      }
      baseline_us.push_back(UsSince(start));
    }
    probe.Close();
  }
  std::sort(baseline_us.begin(), baseline_us.end());
  const double baseline_p99 = Percentile(baseline_us, 0.99);
  const double baseline_p50 = Percentile(baseline_us, 0.50);

  // ---- Phase 2: pipelined burst storm at ~4x capacity. ----
  std::vector<DriverResult> results(drivers);
  std::vector<LineClient> clients(drivers);
  for (size_t i = 0; i < drivers; ++i) {
    std::string hello;
    if (!clients[i].Connect("127.0.0.1", srv.port()).ok() ||
        !clients[i].ReadLine(&hello).ok()) {
      std::fprintf(stderr, "FAIL: driver %zu connect failed\n", i);
      return 1;
    }
  }
  std::string burst;
  for (size_t i = 0; i < kBurst; ++i) {
    burst += request;
    burst += '\n';
  }
  {
    std::vector<std::thread> threads;
    for (size_t t = 0; t < drivers; ++t) {
      threads.emplace_back([&, t] {
        DriverResult& r = results[t];
        LineClient& client = clients[t];
        std::string terminal;
        // Warm this session's unique groups outside the measurement.
        if (!client.SendLine(request).ok() || !ReadTerminal(&client, &terminal)) {
          ++r.errors;
          return;
        }
        for (size_t round = 0; round < rounds; ++round) {
          // The reset also bounds the session so per-request cost stays flat.
          if (!ResetSession(&client)) {
            ++r.errors;
            return;  // dead socket: counted as wedged below
          }
          auto start = Clock::now();
          if (!client.SendRaw(burst).ok()) {
            ++r.errors;
            return;
          }
          for (size_t i = 0; i < kBurst; ++i) {
            if (!ReadTerminal(&client, &terminal)) {
              ++r.errors;
              return;
            }
            if (terminal.find("\"code\": \"overloaded\"") != std::string::npos) {
              ++r.shed;
              if (terminal.find("\"retry_after_ms\": ") == std::string::npos) {
                ++r.missing_retry_hint;
              }
            } else if (terminal.find("\"ok\": true") != std::string::npos) {
              r.accepted_us.push_back(UsSince(start));
            } else {
              ++r.errors;
            }
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  }

  // ---- Phase 3: liveness — the storm must leave every connection usable. ----
  for (size_t i = 0; i < drivers; ++i) {
    std::string pong;
    if (!clients[i].SendLine(R"({"op": "ping"})").ok() ||
        !ReadTerminal(&clients[i], &pong) ||
        pong.find("\"op\": \"ping\", \"ok\": true") == std::string::npos) {
      results[i].wedged = true;
    }
  }
  uint64_t server_shed_gauge = 0;
  {
    LineClient fresh;
    std::string line;
    if (fresh.Connect("127.0.0.1", srv.port()).ok() && fresh.ReadLine(&line).ok() &&
        fresh.SendLine(R"({"op": "stats"})").ok() && ReadTerminal(&fresh, &line)) {
      server_shed_gauge = ExtractNumber(line, "requests_shed");
    }
    fresh.Close();
  }
  for (auto& client : clients) client.Close();
  srv.Stop();

  std::vector<double> accepted;
  size_t shed = 0, errors = 0, wedged = 0, missing_hint = 0;
  for (const auto& r : results) {
    accepted.insert(accepted.end(), r.accepted_us.begin(), r.accepted_us.end());
    shed += r.shed;
    errors += r.errors;
    missing_hint += r.missing_retry_hint;
    if (r.wedged) ++wedged;
  }
  std::sort(accepted.begin(), accepted.end());
  const double accepted_p50 = Percentile(accepted, 0.50);
  const double accepted_p99 = Percentile(accepted, 0.99);
  const double ratio = baseline_p99 > 0.0 ? accepted_p99 / baseline_p99 : 0.0;

  std::printf("%28s %12s\n", "metric", "value");
  std::printf("%28s %10.1fus\n", "uncontended p50", baseline_p50);
  std::printf("%28s %10.1fus\n", "uncontended p99", baseline_p99);
  std::printf("%28s %12zu\n", "accepted requests", accepted.size());
  std::printf("%28s %10.1fus\n", "accepted p50", accepted_p50);
  std::printf("%28s %10.1fus\n", "accepted p99", accepted_p99);
  std::printf("%28s %11.2fx\n", "p99 vs uncontended", ratio);
  std::printf("%28s %12zu\n", "shed (overloaded)", shed);
  std::printf("%28s %12llu\n", "server shed gauge",
              static_cast<unsigned long long>(server_shed_gauge));
  std::printf("%28s %12zu\n", "missing retry hints", missing_hint);
  std::printf("%28s %12zu\n", "wedged connections", wedged);
  std::printf("%28s %12zu\n", "request errors", errors);

  FILE* out = std::fopen("BENCH_overload.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write BENCH_overload.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"overload\",\n"
               "  \"workers\": %d,\n"
               "  \"max_queue_depth\": %zu,\n"
               "  \"drivers\": %zu,\n"
               "  \"burst\": %zu,\n"
               "  \"rounds_per_driver\": %zu,\n"
               "  \"uncontended_p50_us\": %.2f,\n"
               "  \"uncontended_p99_us\": %.2f,\n"
               "  \"accepted_requests\": %zu,\n"
               "  \"accepted_p50_us\": %.2f,\n"
               "  \"accepted_p99_us\": %.2f,\n"
               "  \"p99_ratio\": %.3f,\n"
               "  \"shed\": %zu,\n"
               "  \"server_shed_gauge\": %llu,\n"
               "  \"missing_retry_hints\": %zu,\n"
               "  \"wedged_connections\": %zu,\n"
               "  \"request_errors\": %zu\n"
               "}\n",
               kWorkers, kQueueDepth, drivers, kBurst, rounds, baseline_p50,
               baseline_p99, accepted.size(), accepted_p50, accepted_p99, ratio,
               shed, static_cast<unsigned long long>(server_shed_gauge),
               missing_hint, wedged, errors);
  std::fclose(out);
  std::printf("\nwrote BENCH_overload.json\n");

  // Correctness (always enforced): protocol shape and liveness.
  if (missing_hint != 0) {
    std::printf("FAIL: %zu overloaded line(s) lacked retry_after_ms\n", missing_hint);
    return 1;
  }
  if (wedged != 0) {
    std::printf("FAIL: %zu connection(s) wedged after the storm\n", wedged);
    return 1;
  }
  if (errors != 0) {
    std::printf("FAIL: %zu request(s) errored\n", errors);
    return 1;
  }

  if (!gate) {
    std::printf("overload gate off — pass --gate to enforce the shedding targets\n");
    return 0;
  }
  bool pass = true;
  if (shed == 0) {
    std::printf("FAIL: no requests shed at %zux capacity (admission control inert)\n",
                drivers * kBurst / capacity);
    pass = false;
  }
  if (server_shed_gauge == 0) {
    std::printf("FAIL: server shed gauge is zero despite client-side sheds\n");
    pass = false;
  }
  // 2x multiplicative bound plus a constant allowance: on the small shared
  // containers CI runs in, the scheduler occasionally parks a thread for
  // 40-90ms regardless of load, and with O(100) samples the p99 IS that one
  // stall. The constant absorbs it; an actually-unbounded queue fails the
  // shed gate above long before it fails this one.
  constexpr double kSchedJitterUs = 50000.0;
  if (accepted_p99 > 2.0 * baseline_p99 + kSchedJitterUs) {
    std::printf("FAIL: accepted p99 %.1fus is %.2fx the uncontended p99 "
                "(target 2x + %.0fms jitter allowance)\n",
                accepted_p99, ratio, kSchedJitterUs / 1000.0);
    pass = false;
  }
  if (!pass) return 1;
  std::printf("gate passed: %zu shed, accepted p99 %.2fx uncontended, all "
              "connections live\n",
              shed, ratio);
  return 0;
}
