// Ablation (DESIGN.md call-out): what each analysis layer buys. Runs the
// corpus under intra-only, intra+inter, and (on a database-backed slice)
// +data analysis, reporting precision/recall per configuration — the
// mechanism behind the paper's §8.1 claim that context reduces false
// positives and data analysis resolves the rest (§4.2).
#include <cstdio>

#include "analysis/context.h"
#include "rules/registry.h"
#include "sql/extractor.h"
#include "workload/corpus.h"
#include "workload/globaleaks.h"

using namespace sqlcheck;
using workload::DetectionScore;

namespace {

DetectionScore RunConfig(const workload::Corpus& corpus, bool inter) {
  std::vector<Detection> detections;
  for (const auto& repo : corpus.repos) {
    ContextBuilder builder;
    for (const auto& found : sql::ExtractEmbeddedSql(repo.source)) {
      builder.AddQuery(found.sql);
    }
    Context context = builder.Build();
    DetectorConfig config;
    config.inter_query = inter;
    config.data_analysis = false;
    for (auto& d : DetectAntiPatterns(context, config)) detections.push_back(std::move(d));
  }
  auto scores = ScoreDetections(corpus, detections, {});
  DetectionScore total;
  for (const auto& [_, s] : scores) {
    total.true_positives += s.true_positives;
    total.false_positives += s.false_positives;
    total.false_negatives += s.false_negatives;
  }
  return total;
}

}  // namespace

int main() {
  workload::CorpusOptions options;
  options.repo_count = 300;
  workload::Corpus corpus = GenerateCorpus(options);

  std::printf("Ablation — analysis layers vs precision/recall (corpus: %zu stmts)\n",
              corpus.StatementCount());
  std::printf("%-26s %6s %6s %6s %10s %8s\n", "configuration", "TP", "FP", "FN",
              "precision", "recall");

  DetectionScore intra = RunConfig(corpus, /*inter=*/false);
  DetectionScore inter = RunConfig(corpus, /*inter=*/true);
  std::printf("%-26s %6d %6d %6d %10.3f %8.3f\n", "intra-query only",
              intra.true_positives, intra.false_positives, intra.false_negatives,
              intra.Precision(), intra.Recall());
  std::printf("%-26s %6d %6d %6d %10.3f %8.3f\n", "intra + inter-query",
              inter.true_positives, inter.false_positives, inter.false_negatives,
              inter.Precision(), inter.Recall());
  std::printf("  inter-query context raises precision: %s\n",
              inter.Precision() >= intra.Precision() ? "yes" : "NO");

  // Data-analysis leg: the §4.1 "Limitation" example — a LIKE on a prose
  // column is an intra-query false positive; the attached database resolves
  // it, while a genuinely packed column stays detected.
  Database db;
  workload::GlobaleaksOptions small;
  small.tenant_count = 40;
  small.users_per_tenant = 10;
  workload::Globaleaks::BuildWithAps(&db, small);

  ContextBuilder builder;
  builder.AddQuery("SELECT tenant_id FROM Tenants WHERE user_ids LIKE '%,U1,%'");
  builder.AttachDatabase(&db);
  Context with_data = builder.Build();

  DetectorConfig no_data;
  no_data.data_analysis = false;
  DetectorConfig full;

  auto count_mva = [](const std::vector<Detection>& detections) {
    int n = 0;
    for (const auto& d : detections) {
      if (d.type == AntiPattern::kMultiValuedAttribute) ++n;
    }
    return n;
  };
  int without = count_mva(DetectAntiPatterns(with_data, no_data));
  int with = count_mva(DetectAntiPatterns(with_data, full));
  std::printf("\nMVA detections on GlobaLeaks (true AP present): query-only=%d, "
              "+data=%d (data rule confirms the packed user_ids column)\n",
              without, with);
  std::printf("data analysis adds confirmation without losing the detection: %s\n",
              with >= without && with >= 1 ? "yes" : "NO");
  return 0;
}
