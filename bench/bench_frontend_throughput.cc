// Frontend throughput: lex MB/s, lex+parse MB/s, and end-to-end batch
// `SqlCheck::Run()` statements/sec over the table-3 synthetic corpus (the
// same generator the detection-quality benches use). Writes the measurements
// to BENCH_frontend.json next to the committed pre-refactor baseline, and
// always cross-checks the report detection digest against the recorded
// baseline digest — a digest mismatch means the frontend rewrite changed
// analysis results and the bench exits nonzero no matter the flags.
//
// The SIMD/SWAR frontend (PR 8) adds two sections on top: the lex stage is
// measured on both the block-scan fast tier and the forced-scalar reference
// (their token streams are asserted identical by tests/test_block_scan.cc;
// here they are separate throughput rows), and bulk ingestion is measured at
// ingest_parallelism 1/2/4/8 over the corpus joined into one script. Every
// shard count must produce the same report digest — that identity is
// unconditional, like the baseline digest check.
//
// Gate policy: --gate enforces only SAME-RUN ratios — both sides measured in
// this process on this machine — because absolute throughput floors recorded
// on one container are not portable to another (a slower CI host fails them
// with the optimization fully intact, which is exactly what happened to the
// recorded-constant gates this bench originally shipped with). Under --gate
// the fast lex tier must clear 1.25x the same-run scalar tier, and on hosts
// with >=4 hardware threads 4-way sharded ingestion must clear 1.5x serial
// ingestion. The cross-host ratios against the recorded baseline and the
// PR-7-era lexer are still measured and written to the JSON as informational
// fields. A failed run refuses to write BENCH_frontend.json at all, so a red
// bench can never leave behind an artifact that looks like a measurement.
//
// The baseline block below was measured on this container immediately
// before the arena/interner refactor (PR 4), with the same corpus seed and
// repo count, so current/baseline pairs are like-for-like on any rebuild of
// that commit range. CI machines differ from the recording machine, so the
// ratio gate only runs when explicitly requested (--gate), and the digest
// identity check — which is hardware-independent — runs everywhere.
//
//   $ ./bench_frontend_throughput [repo_count] [--gate] [--record-baseline]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/session.h"
#include "core/sqlcheck.h"
#include "sql/block_scan.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "workload/corpus.h"

using namespace sqlcheck;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Order-sensitive FNV digest over every detection field (same fold as
/// bench_fingerprint_dedup / bench_parallel_scaling, so the streams are
/// comparable across benches).
uint64_t DigestReport(const Report& report) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::string_view s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= 0xff;
    h *= 1099511628211ull;
  };
  for (const auto& f : report.findings) {
    const Detection& d = f.ranked.detection;
    mix(std::to_string(static_cast<int>(d.type)));
    mix(std::to_string(static_cast<int>(d.source)));
    mix(d.table);
    mix(d.column);
    mix(d.query);
    mix(d.message);
  }
  return h;
}

// ---------------------------------------------------------------------------
// Pre-refactor baseline, recorded with --record-baseline at repo_count=200 on
// the reference container (1-core, gcc Release) right before the zero-copy
// frontend landed. The digest is hardware-independent ground truth; the
// throughput figures are the denominators for the --gate ratios.
// ---------------------------------------------------------------------------
constexpr int kBaselineRepoCount = 200;
constexpr double kBaselineLexMBs = 68.49;
constexpr double kBaselineLexParseMBs = 36.14;
constexpr double kBaselineRunStmtsPerSec = 95614.0;
constexpr uint64_t kBaselineDigest = 3179248164023172358ull;

// Lex MB/s recorded by this bench immediately before the SIMD/SWAR block
// scanner landed (PR 7 era, same corpus, recorded on a faster container than
// typical gating hosts). Informational only — the `lex_speedup_vs_prev`
// JSON field reports the ratio each run, but no gate compares against it:
// cross-host absolute floors flake on slower hardware regardless of how much
// headroom they had on the recording machine.
constexpr double kPrevLexMBs = 325.37;

// Same-run SIMD-vs-scalar floor: unlike the cross-host ratio above, both
// sides are measured in this process on this machine, so the gate is
// host-independent. The scalar reference itself got faster than the PR-7
// lexer (span-oriented restructure, ~1.3x), so the fast tier clearing 1.25x
// *scalar* confirms the SIMD tiers are doing real work on top of that.
constexpr double kLexFastVsScalarFloor = 1.25;

/// One bulk-ingestion measurement: AddScript + Snapshot at a shard count.
struct IngestRow {
  int shards = 0;
  double stmts_per_sec = 0.0;
  uint64_t digest = 0;
};

struct Measurement {
  double lex_mbs = 0.0;         ///< Block-scan fast tier (SSE2/NEON/SWAR).
  double lex_scalar_mbs = 0.0;  ///< Forced-scalar reference path.
  double lex_parse_mbs = 0.0;
  double run_stmts_per_sec = 0.0;
  double run_with_fixes_stmts_per_sec = 0.0;
  std::vector<IngestRow> ingest;  ///< Sharded bulk ingestion, 1/2/4/8 shards.
  uint64_t digest = 0;
  size_t statements = 0;
  size_t bytes = 0;
  size_t token_count = 0;  ///< Anti-DCE witness.
};

/// Repeats `body` until it has consumed at least `min_seconds`, returning
/// the BEST (minimum) seconds per repetition — the standard noise-robust
/// estimator for a deterministic workload: scheduler preemption and cache
/// pollution only ever make a rep slower, so the minimum is the cleanest
/// observation of the code's real cost.
template <typename Fn>
double TimedReps(double min_seconds, Fn&& body) {
  // One warm-up rep (first-touch page faults, lazy statics).
  body();
  double best = 1e100;
  double elapsed = 0.0;
  do {
    Clock::time_point start = Clock::now();
    body();
    double secs = SecondsSince(start);
    if (secs < best) best = secs;
    elapsed += secs;
  } while (elapsed < min_seconds);
  return best;
}

Measurement Measure(const std::vector<std::string>& statements) {
  Measurement m;
  m.statements = statements.size();
  for (const auto& s : statements) m.bytes += s.size();
  const double mb = static_cast<double>(m.bytes) / (1024.0 * 1024.0);

  // Lex only: reusable token buffer, zero per-token allocations steady-state.
  // Measured twice — once on the block-scan fast tier, once forced scalar —
  // so the SIMD speedup is visible as its own row. The ambient force-scalar
  // mode (SQLCHECK_FORCE_SCALAR) is restored afterwards so the end-to-end
  // sections below still run in whatever mode the caller selected.
  {
    const bool ambient_scalar = sql::blockscan::ForceScalar();
    sql::TokenBuffer buffer;
    size_t tokens = 0;
    auto lex_all = [&] {
      tokens = 0;
      for (const auto& s : statements) {
        tokens += sql::Lex(s, buffer).size();
      }
    };
    sql::blockscan::SetForceScalarForTest(false);
    m.lex_mbs = mb / TimedReps(0.4, lex_all);
    m.token_count = tokens;
    sql::blockscan::SetForceScalarForTest(true);
    m.lex_scalar_mbs = mb / TimedReps(0.4, lex_all);
    if (tokens != m.token_count) {
      std::fprintf(stderr, "FAIL: scalar token count %zu != fast %zu\n", tokens,
                   m.token_count);
      std::exit(1);
    }
    sql::blockscan::SetForceScalarForTest(ambient_scalar);
  }

  // Lex + parse into an arena (the context build's statement path).
  {
    size_t parsed = 0;
    sql::Arena arena;
    sql::TokenBuffer buffer;
    double secs = TimedReps(0.4, [&] {
      arena.Reset();
      parsed = 0;
      for (const auto& s : statements) {
        sql::StatementPtr stmt = sql::ParseStatement(s, &arena, &buffer);
        parsed += stmt != nullptr;
      }
    });
    if (parsed != statements.size()) {
      std::fprintf(stderr, "FAIL: parser returned null (%zu/%zu)\n", parsed,
                   statements.size());
      std::exit(1);
    }
    m.lex_parse_mbs = mb / secs;
  }

  // End-to-end batch Run() with fix suggestion disabled — the configuration
  // comparable to the recorded pre-diagnosis baseline, and the one the
  // speedup gate judges. The detection digest must be identical either way.
  {
    SqlCheckOptions opt;
    opt.suggest_fixes = false;
    double secs = TimedReps(1.0, [&] {
      SqlCheck checker(opt);
      for (const auto& s : statements) checker.AddQuery(s);
      Report report = checker.Run();
      m.digest = DigestReport(report);
    });
    m.run_stmts_per_sec = static_cast<double>(m.statements) / secs;
  }

  // Batch Run() with the full diagnosis pipeline (default options): per-rule
  // fixers propose, every rewrite is verify-parsed and re-analyzed. Reported
  // as its own metric so fix-suggestion overhead is tracked per commit, not
  // gated — it prices a feature the baseline did not have.
  {
    double secs = TimedReps(1.0, [&] {
      SqlCheck checker;
      for (const auto& s : statements) checker.AddQuery(s);
      Report report = checker.Run();
      uint64_t digest = DigestReport(report);
      if (digest != m.digest) {
        std::fprintf(stderr,
                     "FAIL: detection digest with fixes (%llu) != without (%llu)\n",
                     static_cast<unsigned long long>(digest),
                     static_cast<unsigned long long>(m.digest));
        std::exit(1);
      }
    });
    m.run_with_fixes_stmts_per_sec = static_cast<double>(m.statements) / secs;
  }

  // Sharded bulk ingestion: the whole corpus as one script through
  // AnalysisSession::AddScript at ingest_parallelism 1/2/4/8, snapshot
  // included (the merge is part of the cost being measured). The digest of
  // every row must match — main() enforces that identity unconditionally.
  {
    std::string script;
    script.reserve(m.bytes + 2 * m.statements);
    for (const auto& s : statements) {
      script += s;
      script += ";\n";
    }
    for (int shards : {1, 2, 4, 8}) {
      SqlCheckOptions opt;
      opt.suggest_fixes = false;
      opt.ingest_parallelism = shards;
      IngestRow row;
      row.shards = shards;
      size_t count = 0;
      double secs = TimedReps(0.6, [&] {
        AnalysisSession session(opt);
        count = session.AddScript(script);
        row.digest = DigestReport(session.Snapshot());
      });
      if (count != m.statements) {
        std::fprintf(stderr, "FAIL: %d-shard ingest saw %zu statements, want %zu\n",
                     shards, count, m.statements);
        std::exit(1);
      }
      row.stmts_per_sec = static_cast<double>(count) / secs;
      m.ingest.push_back(row);
    }
  }
  return m;
}

void WriteJson(const Measurement& m, int repo_count, bool gated, bool passed) {
  FILE* f = std::fopen("BENCH_frontend.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write BENCH_frontend.json\n");
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"frontend_throughput\",\n"
               "  \"repo_count\": %d,\n"
               "  \"statements\": %zu,\n"
               "  \"corpus_bytes\": %zu,\n"
               "  \"block_scan_tier\": \"%s\",\n"
               "  \"hardware_threads\": %u,\n"
               "  \"lex_mb_per_s\": %.2f,\n"
               "  \"lex_scalar_mb_per_s\": %.2f,\n"
               "  \"lex_parse_mb_per_s\": %.2f,\n"
               "  \"run_stmts_per_s\": %.0f,\n"
               "  \"run_with_fixes_stmts_per_s\": %.0f,\n"
               "  \"baseline_lex_mb_per_s\": %.2f,\n"
               "  \"baseline_lex_parse_mb_per_s\": %.2f,\n"
               "  \"baseline_run_stmts_per_s\": %.0f,\n"
               "  \"prev_lex_mb_per_s\": %.2f,\n"
               "  \"lex_speedup\": %.2f,\n"
               "  \"lex_speedup_vs_prev\": %.2f,\n"
               "  \"lex_parse_speedup\": %.2f,\n"
               "  \"run_speedup\": %.2f,\n",
               repo_count, m.statements, m.bytes, sql::blockscan::FastTierName(),
               std::thread::hardware_concurrency(), m.lex_mbs, m.lex_scalar_mbs,
               m.lex_parse_mbs, m.run_stmts_per_sec, m.run_with_fixes_stmts_per_sec,
               kBaselineLexMBs, kBaselineLexParseMBs, kBaselineRunStmtsPerSec,
               kPrevLexMBs, m.lex_mbs / kBaselineLexMBs, m.lex_mbs / kPrevLexMBs,
               m.lex_parse_mbs / kBaselineLexParseMBs,
               m.run_stmts_per_sec / kBaselineRunStmtsPerSec);
  std::fprintf(f, "  \"ingest_scaling\": [\n");
  for (size_t i = 0; i < m.ingest.size(); ++i) {
    const IngestRow& row = m.ingest[i];
    std::fprintf(f,
                 "    {\"shards\": %d, \"stmts_per_s\": %.0f, "
                 "\"digest_matches_serial\": %s}%s\n",
                 row.shards, row.stmts_per_sec,
                 row.digest == m.ingest.front().digest ? "true" : "false",
                 i + 1 < m.ingest.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"digest_matches_baseline\": %s,\n"
               "  \"gate\": %s\n"
               "}\n",
               m.digest == kBaselineDigest ? "true" : "false",
               gated ? (passed ? "\"pass\"" : "\"fail\"") : "\"not-run\"");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  int repo_count = kBaselineRepoCount;
  bool gate = false;
  bool record = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    } else if (std::strcmp(argv[i], "--record-baseline") == 0) {
      record = true;
    } else {
      repo_count = std::atoi(argv[i]);
      if (repo_count <= 0) {
        std::fprintf(stderr,
                     "usage: %s [repo_count] [--gate] [--record-baseline]\n",
                     argv[0]);
        return 2;
      }
    }
  }

  if (gate && repo_count != kBaselineRepoCount) {
    std::fprintf(stderr,
                 "--gate compares against the recorded baseline and requires "
                 "repo_count=%d (got %d)\n",
                 kBaselineRepoCount, repo_count);
    return 2;
  }

  workload::CorpusOptions options;
  options.repo_count = repo_count;
  workload::Corpus corpus = workload::GenerateCorpus(options);
  std::vector<std::string> statements;
  for (const auto& labeled : corpus.AllStatements()) statements.push_back(labeled.sql);

  Measurement m = Measure(statements);

  std::printf("frontend throughput (repo_count=%d, %zu statements, %.2f MB, %zu tokens)\n",
              repo_count, m.statements,
              static_cast<double>(m.bytes) / (1024.0 * 1024.0), m.token_count);
  std::printf("  lex (%s)%*s %8.2f MB/s   (pre-SIMD %8.2f, %5.2fx; baseline %5.2fx)\n",
              sql::blockscan::FastTierName(),
              static_cast<int>(9 - std::strlen(sql::blockscan::FastTierName())), "",
              m.lex_mbs, kPrevLexMBs, m.lex_mbs / kPrevLexMBs,
              m.lex_mbs / kBaselineLexMBs);
  std::printf("  lex (scalar)    %8.2f MB/s   (fast tier is %5.2fx scalar)\n",
              m.lex_scalar_mbs, m.lex_mbs / m.lex_scalar_mbs);
  std::printf("  lex+parse       %8.2f MB/s   (baseline %8.2f, %5.2fx)\n",
              m.lex_parse_mbs, kBaselineLexParseMBs,
              m.lex_parse_mbs / kBaselineLexParseMBs);
  std::printf("  batch Run()     %8.0f stmt/s (baseline %8.0f, %5.2fx)\n",
              m.run_stmts_per_sec, kBaselineRunStmtsPerSec,
              m.run_stmts_per_sec / kBaselineRunStmtsPerSec);
  std::printf("  batch Run()+fix %8.0f stmt/s (fix suggestion + verification)\n",
              m.run_with_fixes_stmts_per_sec);
  for (const IngestRow& row : m.ingest) {
    std::printf("  ingest x%d       %8.0f stmt/s (%5.2fx serial, digest %s)\n",
                row.shards, row.stmts_per_sec,
                row.stmts_per_sec / m.ingest.front().stmts_per_sec,
                row.digest == m.ingest.front().digest ? "ok" : "MISMATCH");
  }
  std::printf("  report digest   %llu\n", static_cast<unsigned long long>(m.digest));

  if (record) {
    std::printf(
        "\npaste into the baseline block:\n"
        "constexpr int kBaselineRepoCount = %d;\n"
        "constexpr double kBaselineLexMBs = %.2f;\n"
        "constexpr double kBaselineLexParseMBs = %.2f;\n"
        "constexpr double kBaselineRunStmtsPerSec = %.0f;\n"
        "constexpr uint64_t kBaselineDigest = %lluull;\n",
        repo_count, m.lex_mbs, m.lex_parse_mbs, m.run_stmts_per_sec,
        static_cast<unsigned long long>(m.digest));
    WriteJson(m, repo_count, false, false);
    return 0;
  }

  // Digest identity is hardware-independent and therefore unconditional: the
  // zero-copy frontend must not change a single detection byte, and sharded
  // bulk ingestion must reproduce serial ingestion exactly at every shard
  // count (and match the per-AddQuery batch digest).
  bool ok = true;
  if (repo_count == kBaselineRepoCount && m.digest != kBaselineDigest) {
    std::fprintf(stderr,
                 "FAIL: report digest %llu != recorded pre-refactor digest %llu\n",
                 static_cast<unsigned long long>(m.digest),
                 static_cast<unsigned long long>(kBaselineDigest));
    ok = false;
  }
  for (const IngestRow& row : m.ingest) {
    if (row.digest != m.digest) {
      std::fprintf(stderr,
                   "FAIL: %d-shard ingest digest %llu != batch digest %llu\n",
                   row.shards, static_cast<unsigned long long>(row.digest),
                   static_cast<unsigned long long>(m.digest));
      ok = false;
    }
  }

  // Only same-run ratios gate: both sides are measured in this process on
  // this machine, so a pass or fail reflects the code, not the host. The
  // cross-host baseline/pre-SIMD ratios above are printed and recorded in
  // the JSON, never enforced.
  bool gate_passed = true;
  if (gate && repo_count == kBaselineRepoCount) {
    if (m.lex_mbs < kLexFastVsScalarFloor * m.lex_scalar_mbs) {
      std::fprintf(stderr,
                   "FAIL: fast lex %.2f MB/s < %.2fx same-run scalar %.2f MB/s\n",
                   m.lex_mbs, kLexFastVsScalarFloor, m.lex_scalar_mbs);
      gate_passed = false;
    }
    // The shard-scaling ratio gate needs the cores to scale onto; the digest
    // identity above runs everywhere regardless.
    if (std::thread::hardware_concurrency() >= 4) {
      const double serial = m.ingest.front().stmts_per_sec;
      double four = 0.0;
      for (const IngestRow& row : m.ingest) {
        if (row.shards == 4) four = row.stmts_per_sec;
      }
      if (four < 1.5 * serial) {
        std::fprintf(stderr,
                     "FAIL: 4-shard ingest %.0f stmt/s < 1.5x serial %.0f stmt/s\n",
                     four, serial);
        gate_passed = false;
      }
    }
  }

  if (!ok || !gate_passed) {
    // A red run must not leave a plausible-looking artifact behind.
    std::remove("BENCH_frontend.json");
    std::fprintf(stderr, "refusing to write BENCH_frontend.json: checks failed\n");
    return 1;
  }
  WriteJson(m, repo_count, gate, true);
  return 0;
}
