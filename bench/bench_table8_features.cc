// Table 8: feature comparison — sqlcheck vs a physical-design tuning advisor
// (Microsoft DETA). Static by nature; printed for completeness, with each
// sqlcheck 'yes' cross-checked against the module that provides it.
#include <cstdio>

#include "fix/fix_engine.h"
#include "rules/registry.h"

using namespace sqlcheck;

int main() {
  struct Row {
    const char* feature;
    bool deta;
    bool sqlcheck;
  };
  const Row rows[] = {
      {"Index creation/destruction suggestions", true, true},
      {"Type of index to create based on workload", true, false},
      {"Materialized view creation/destruction suggestions", true, false},
      {"Suggestions tailored to hardware constraints & data distribution", true, false},
      {"Table partitioning suggestions", true, false},
      {"Column type suggestions based on data", false, true},
      {"Query refactoring suggestions", false, true},
      {"Alternate logical schema design suggestions", false, true},
      {"Logical errors that may invalidate data integrity", false, true},
  };
  std::printf("Table 8 — SQLCheck vs physical-design tuning advisor (DETA)\n");
  std::printf("%-64s %6s %9s\n", "Supported feature", "DETA", "SQLCheck");
  for (const Row& row : rows) {
    std::printf("%-64s %6s %9s\n", row.feature, row.deta ? "yes" : "-",
                row.sqlcheck ? "yes" : "-");
  }

  // Cross-check: the claimed sqlcheck capabilities exist in this build.
  RuleRegistry registry = RuleRegistry::Default();
  bool ok = registry.size() == static_cast<size_t>(kAntiPatternCount);
  std::printf("\nbuilt-in rules registered: %zu (expected %d) — %s\n", registry.size(),
              kAntiPatternCount, ok ? "ok" : "MISMATCH");
  return ok ? 0 : 1;
}
