// Server load: drives an in-process sqlcheck-server with N concurrent
// tenant sessions (default 1000), each streaming the same statement mix
// over loopback TCP, and measures aggregate statements/sec plus the
// per-request round-trip latency distribution (p50/p99). Two correctness
// checks are always enforced, not just under --gate:
//   * byte-identity — every session's final snapshot findings must equal,
//     byte for byte, the offline AnalysisSession run of the same stream;
//   * bounded memory — every session must stay within the configured
//     per-session arena cap (plus at most one chunk of slack).
// Results go to BENCH_server.json. With --gate the run additionally
// requires >= 1000 concurrent sessions, >= 1000 statements/sec, and a
// request p99 under 250ms.
//
//   $ ./bench_server_load [sessions] [statements_per_session] [--gate]
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/emit.h"
#include "core/session.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"

using namespace sqlcheck;
using server::LineClient;
using server::ServerOptions;
using server::SqlCheckServer;

namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kArenaCapBytes = 512 << 10;
constexpr size_t kArenaSlackBytes = 64 << 10;  // at most one chunk of overshoot

double UsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

/// The per-tenant statement stream: DDL to seed design rules, duplicate-heavy
/// queries for the memo, and a tail of unique statements. Identical across
/// sessions so one offline run prices the expected bytes for all of them.
std::vector<std::string> BuildStream(size_t count) {
  static const char* kTemplates[] = {
      "SELECT * FROM users WHERE status = 'active'",
      "SELECT u.name, o.total FROM users u JOIN orders o ON u.id = o.user_id",
      "SELECT name FROM users WHERE email LIKE '%@example.com'",
      "SELECT id, name FROM users GROUP BY id, name ORDER BY RAND()",
      "SELECT name, password FROM users WHERE password = 'hunter2'",
  };
  constexpr size_t kTemplateCount = sizeof(kTemplates) / sizeof(kTemplates[0]);
  std::vector<std::string> stream;
  stream.reserve(count + 2);
  stream.push_back(
      "CREATE TABLE users (id INT, name VARCHAR(64), email VARCHAR(64), "
      "password VARCHAR(64), status VARCHAR(8), tag_ids TEXT)");
  stream.push_back("CREATE TABLE orders (id INT, user_id INT, total FLOAT)");
  for (size_t i = 0; stream.size() < count + 2; ++i) {
    if (i % 5 == 4) {
      stream.push_back("SELECT name FROM users WHERE id = " + std::to_string(i));
    } else {
      stream.push_back(kTemplates[i % kTemplateCount]);
    }
  }
  return stream;
}

std::string CheckRequest(const std::string& sql) {
  return R"({"op": "check", "sql": ")" + JsonEscape(sql) + "\"}";
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

/// Pulls one numeric field out of a stats response — enough JSON for a bench.
uint64_t ExtractNumber(const std::string& json, const std::string& key) {
  size_t at = json.find("\"" + key + "\": ");
  if (at == std::string::npos) return 0;
  return static_cast<uint64_t>(std::atoll(json.c_str() + at + key.size() + 4));
}

/// Reads one full response (finding lines + terminal); returns the terminal
/// line, appending any finding lines to `findings` when non-null.
bool ReadResponse(LineClient* client, std::string* terminal,
                  std::vector<std::string>* findings = nullptr) {
  std::string line;
  while (client->ReadLine(&line).ok()) {
    if (line.rfind("{\"op\": \"finding\", ", 0) == 0) {
      if (findings != nullptr) findings->push_back(line);
      continue;
    }
    *terminal = line;
    return true;
  }
  return false;
}

struct WorkerResult {
  std::vector<double> latencies_us;
  size_t identity_mismatches = 0;
  size_t cap_breaches = 0;
  size_t errors = 0;
};

}  // namespace

int main(int argc, char** argv) {
  size_t sessions = 1000;
  size_t per_session = 20;
  bool gate = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--gate") {
      gate = true;
    } else if (positional++ == 0) {
      sessions = static_cast<size_t>(std::atoll(argv[i]));
    } else {
      per_session = static_cast<size_t>(std::atoll(argv[i]));
    }
  }

  // One fd per session plus epoll/listen/wake overhead; raise the soft
  // RLIMIT_NOFILE toward the hard cap (best-effort — CI runners often
  // default to 1024 soft).
  rlimit nofile{};
  if (getrlimit(RLIMIT_NOFILE, &nofile) == 0 && nofile.rlim_cur < nofile.rlim_max) {
    nofile.rlim_cur = nofile.rlim_max;
    setrlimit(RLIMIT_NOFILE, &nofile);
  }
  if (getrlimit(RLIMIT_NOFILE, &nofile) == 0 &&
      nofile.rlim_cur < 2 * sessions + 64) {
    std::fprintf(stderr,
                 "FAIL: RLIMIT_NOFILE %llu too low for %zu sessions "
                 "(need ~%zu; raise with ulimit -n)\n",
                 static_cast<unsigned long long>(nofile.rlim_cur), sessions,
                 2 * sessions + 64);
    return 1;
  }

  std::vector<std::string> stream = BuildStream(per_session);
  std::printf("server load: %zu concurrent sessions x %zu statements "
              "(arena cap %zuKiB/session)\n\n",
              sessions, stream.size(), kArenaCapBytes >> 10);

  // The expected bytes, priced once offline: the same stream through a plain
  // AnalysisSession, findings serialized with the same emitter the server
  // streams through.
  SqlCheckOptions offline_options;
  AnalysisSession offline(offline_options);
  for (const auto& sql : stream) offline.Check(sql);
  Report offline_report = offline.Snapshot();
  std::vector<std::string> expected;
  expected.reserve(offline_report.findings.size());
  for (size_t i = 0; i < offline_report.findings.size(); ++i) {
    expected.push_back("{\"op\": \"finding\", \"finding\": " +
                       FindingToJsonLine(offline_report.findings[i], i + 1) + "}");
  }

  ServerOptions options;
  options.port = 0;
  options.max_sessions = sessions + 16;
  options.analysis.limits.arena_cap_bytes = kArenaCapBytes;
  SqlCheckServer srv(options);
  Status status = srv.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", status.message().c_str());
    return 1;
  }

  // ---- Phase 1: open every session up front; all stay connected. ----
  auto connect_start = Clock::now();
  std::vector<LineClient> clients(sessions);
  {
    std::atomic<size_t> next{0};
    std::atomic<size_t> failures{0};
    auto connect_some = [&] {
      for (size_t i = next.fetch_add(1); i < sessions; i = next.fetch_add(1)) {
        std::string hello;
        if (!clients[i].Connect("127.0.0.1", srv.port()).ok() ||
            !clients[i].ReadLine(&hello).ok()) {
          failures.fetch_add(1);
        }
      }
    };
    std::vector<std::thread> connectors;
    for (int t = 0; t < 8; ++t) connectors.emplace_back(connect_some);
    for (auto& t : connectors) t.join();
    if (failures.load() != 0) {
      std::fprintf(stderr, "FAIL: %zu/%zu connections failed\n", failures.load(),
                   sessions);
      return 1;
    }
  }
  double connect_ms = UsSince(connect_start) / 1000.0;
  size_t concurrent = srv.gauges().active_sessions.load();

  // ---- Phase 2: every session streams every statement. ----
  const int driver_threads = 8;
  std::vector<WorkerResult> results(driver_threads);
  auto load_start = Clock::now();
  {
    std::vector<std::thread> drivers;
    for (int t = 0; t < driver_threads; ++t) {
      drivers.emplace_back([&, t] {
        WorkerResult& r = results[t];
        for (size_t i = t; i < sessions; i += driver_threads) {
          for (const auto& sql : stream) {
            auto start = Clock::now();
            std::string terminal;
            if (!clients[i].SendLine(CheckRequest(sql)).ok() ||
                !ReadResponse(&clients[i], &terminal) ||
                terminal.find("\"ok\": true") == std::string::npos) {
              ++r.errors;
              continue;
            }
            r.latencies_us.push_back(UsSince(start));
          }
        }
      });
    }
    for (auto& t : drivers) t.join();
  }
  double load_secs = UsSince(load_start) / 1e6;

  // ---- Phase 3: per-session identity + cap audit. ----
  {
    std::vector<std::thread> auditors;
    for (int t = 0; t < driver_threads; ++t) {
      auditors.emplace_back([&, t] {
        WorkerResult& r = results[t];
        for (size_t i = t; i < sessions; i += driver_threads) {
          std::vector<std::string> findings;
          std::string terminal;
          if (!clients[i].SendLine(R"({"op": "snapshot"})").ok() ||
              !ReadResponse(&clients[i], &terminal, &findings)) {
            ++r.errors;
            continue;
          }
          if (findings != expected) ++r.identity_mismatches;
          if (!clients[i].SendLine(R"({"op": "stats"})").ok() ||
              !ReadResponse(&clients[i], &terminal)) {
            ++r.errors;
            continue;
          }
          if (ExtractNumber(terminal, "arena_reserved_bytes") >
              kArenaCapBytes + kArenaSlackBytes) {
            ++r.cap_breaches;
          }
        }
      });
    }
    for (auto& t : auditors) t.join();
  }
  for (auto& client : clients) client.Close();
  srv.Stop();

  std::vector<double> latencies;
  size_t identity_mismatches = 0, cap_breaches = 0, errors = 0;
  for (const auto& r : results) {
    latencies.insert(latencies.end(), r.latencies_us.begin(), r.latencies_us.end());
    identity_mismatches += r.identity_mismatches;
    cap_breaches += r.cap_breaches;
    errors += r.errors;
  }
  std::sort(latencies.begin(), latencies.end());
  double p50 = Percentile(latencies, 0.50);
  double p99 = Percentile(latencies, 0.99);
  double stmts_per_sec =
      load_secs > 0.0 ? static_cast<double>(latencies.size()) / load_secs : 0.0;

  std::printf("%28s %12s\n", "metric", "value");
  std::printf("%28s %12zu\n", "concurrent sessions", concurrent);
  std::printf("%28s %10.1fms\n", "connect all", connect_ms);
  std::printf("%28s %12zu\n", "check requests", latencies.size());
  std::printf("%28s %11.0f/s\n", "statements", stmts_per_sec);
  std::printf("%28s %10.1fus\n", "request p50", p50);
  std::printf("%28s %10.1fus\n", "request p99", p99);
  std::printf("%28s %12zu\n", "identity mismatches", identity_mismatches);
  std::printf("%28s %12zu\n", "arena cap breaches", cap_breaches);
  std::printf("%28s %12zu\n", "request errors", errors);

  FILE* out = std::fopen("BENCH_server.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write BENCH_server.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"server_load\",\n"
               "  \"sessions\": %zu,\n"
               "  \"concurrent_sessions\": %zu,\n"
               "  \"statements_per_session\": %zu,\n"
               "  \"arena_cap_bytes\": %zu,\n"
               "  \"connect_all_ms\": %.2f,\n"
               "  \"check_requests\": %zu,\n"
               "  \"statements_per_sec\": %.1f,\n"
               "  \"request_p50_us\": %.2f,\n"
               "  \"request_p99_us\": %.2f,\n"
               "  \"identity_mismatches\": %zu,\n"
               "  \"cap_breaches\": %zu,\n"
               "  \"request_errors\": %zu\n"
               "}\n",
               sessions, concurrent, stream.size(), kArenaCapBytes, connect_ms,
               latencies.size(), stmts_per_sec, p50, p99, identity_mismatches,
               cap_breaches, errors);
  std::fclose(out);
  std::printf("\nwrote BENCH_server.json\n");

  if (identity_mismatches != 0) {
    std::printf("FAIL: %zu session(s) diverged from the offline report bytes\n",
                identity_mismatches);
    return 1;
  }
  if (cap_breaches != 0) {
    std::printf("FAIL: %zu session(s) exceeded the arena cap\n", cap_breaches);
    return 1;
  }
  if (errors != 0) {
    std::printf("FAIL: %zu request(s) errored\n", errors);
    return 1;
  }
  std::printf("all %zu sessions byte-identical to the offline run, caps held\n",
              sessions);

  if (!gate) {
    std::printf("load gate off — pass --gate to enforce the 1k-session targets\n");
    return 0;
  }
  bool pass = true;
  if (concurrent < 1000) {
    std::printf("FAIL: only %zu concurrent sessions (target 1000)\n", concurrent);
    pass = false;
  }
  if (stmts_per_sec < 1000.0) {
    std::printf("FAIL: %.0f statements/sec (target 1000)\n", stmts_per_sec);
    pass = false;
  }
  if (p99 > 250000.0) {
    std::printf("FAIL: request p99 %.1fms (target 250ms)\n", p99 / 1000.0);
    pass = false;
  }
  if (!pass) return 1;
  std::printf("gate passed: %zu sessions, %.0f stmts/sec, p99 %.1fms\n", concurrent,
              stmts_per_sec, p99 / 1000.0);
  return 0;
}
