#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace sqlcheck {

/// \brief Stack-lowered copy of a (short) SQL name, for byte-compare probes
/// into containers keyed by lowercased names. Allocation-free up to 64
/// bytes; longer names spill to a heap string.
class LowerProbe {
 public:
  explicit LowerProbe(std::string_view s) {
    if (s.size() <= sizeof(buf_)) {
      for (size_t i = 0; i < s.size(); ++i) {
        char c = s[i];
        buf_[i] = c >= 'A' && c <= 'Z' ? static_cast<char>(c + 32) : c;
      }
      view_ = std::string_view(buf_, s.size());
    } else {
      spill_.reserve(s.size());
      for (char c : s) {
        spill_.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c + 32) : c);
      }
      view_ = spill_;
    }
  }
  LowerProbe(const LowerProbe&) = delete;
  LowerProbe& operator=(const LowerProbe&) = delete;

  operator std::string_view() const { return view_; }
  std::string_view view() const { return view_; }

 private:
  char buf_[64];
  std::string spill_;
  std::string_view view_;
};

/// \brief Transparent hash for heterogeneous unordered-container lookup:
/// lets a map keyed by std::string answer find(std::string_view) without
/// materializing a temporary key string.
struct StringViewHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// \brief ASCII-lowercases a copy of `s` (SQL identifiers/keywords are
/// case-insensitive in every dialect we target).
std::string ToLower(std::string_view s);

/// \brief ASCII-uppercases a copy of `s`.
std::string ToUpper(std::string_view s);

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// \brief True if `s` equals `other` ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view s, std::string_view other);

/// \brief True if `s` starts with `prefix` ignoring ASCII case.
bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix);

/// \brief True if `s` ends with `suffix` ignoring ASCII case.
bool EndsWithIgnoreCase(std::string_view s, std::string_view suffix);

/// \brief True if `haystack` contains `needle` ignoring ASCII case.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// \brief Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// \brief Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief True if every character is an ASCII digit (and `s` is non-empty).
bool IsAllDigits(std::string_view s);

/// \brief True if `s` parses fully as a decimal integer or real number.
bool LooksNumeric(std::string_view s);

/// \brief True if `s` looks like a calendar date or timestamp (e.g.
/// "2019-07-04", "07/04/2019", "2019-07-04 12:30:00").
bool LooksLikeDate(std::string_view s);

/// \brief True if a date/timestamp string carries an explicit timezone
/// (trailing Z, +HH[:MM], or -HH[:MM] offset after the time component).
bool HasTimezoneSuffix(std::string_view s);

/// \brief Strips one layer of matching quotes ('x', "x", `x`, [x]) if present.
std::string Unquote(std::string_view s);

}  // namespace sqlcheck
