#include "common/strings.h"

#include <algorithm>
#include <cctype>

namespace sqlcheck {

namespace {
char LowerChar(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}
char UpperChar(char c) {
  return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
}
bool IsSpaceChar(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
bool IsDigitChar(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }
}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), LowerChar);
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), UpperChar);
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && IsSpaceChar(s[b])) ++b;
  while (e > b && IsSpaceChar(s[e - 1])) --e;
  return s.substr(b, e - b);
}

bool EqualsIgnoreCase(std::string_view s, std::string_view other) {
  if (s.size() != other.size()) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (LowerChar(s[i]) != LowerChar(other[i])) return false;
  }
  return true;
}

bool EndsWithIgnoreCase(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         EqualsIgnoreCase(s.substr(s.size() - suffix.size()), suffix);
}

bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && EqualsIgnoreCase(s.substr(0, prefix.size()), prefix);
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (haystack.size() < needle.size()) return false;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (EqualsIgnoreCase(haystack.substr(i, needle.size()), needle)) return true;
  }
  return false;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), IsDigitChar);
}

bool LooksNumeric(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return false;
  size_t i = 0;
  if (s[i] == '+' || s[i] == '-') ++i;
  bool digits = false;
  bool dot = false;
  for (; i < s.size(); ++i) {
    if (IsDigitChar(s[i])) {
      digits = true;
    } else if (s[i] == '.' && !dot) {
      dot = true;
    } else {
      return false;
    }
  }
  return digits;
}

bool LooksLikeDate(std::string_view s) {
  s = Trim(s);
  // YYYY-MM-DD or YYYY/MM/DD prefix.
  if (s.size() >= 10 && IsDigitChar(s[0]) && IsDigitChar(s[1]) && IsDigitChar(s[2]) &&
      IsDigitChar(s[3]) && (s[4] == '-' || s[4] == '/') && IsDigitChar(s[5]) &&
      IsDigitChar(s[6]) && s[7] == s[4] && IsDigitChar(s[8]) && IsDigitChar(s[9])) {
    return true;
  }
  // MM/DD/YYYY.
  if (s.size() >= 10 && IsDigitChar(s[0]) && IsDigitChar(s[1]) && s[2] == '/' &&
      IsDigitChar(s[3]) && IsDigitChar(s[4]) && s[5] == '/' && IsDigitChar(s[6]) &&
      IsDigitChar(s[7]) && IsDigitChar(s[8]) && IsDigitChar(s[9])) {
    return true;
  }
  return false;
}

bool HasTimezoneSuffix(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return false;
  if (s.back() == 'Z' || s.back() == 'z') return true;
  // Look for +HH[:MM] / -HH[:MM] after a time component (i.e. after a ':').
  size_t colon = s.find(':');
  if (colon == std::string_view::npos) return false;
  for (size_t i = colon; i < s.size(); ++i) {
    if ((s[i] == '+' || s[i] == '-') && i + 2 < s.size() + 1 && i + 2 <= s.size() &&
        IsDigitChar(s[i + 1])) {
      return true;
    }
  }
  return false;
}

std::string Unquote(std::string_view s) {
  if (s.size() >= 2) {
    char f = s.front();
    char b = s.back();
    if ((f == '\'' && b == '\'') || (f == '"' && b == '"') || (f == '`' && b == '`') ||
        (f == '[' && b == ']')) {
      return std::string(s.substr(1, s.size() - 2));
    }
  }
  return std::string(s);
}

}  // namespace sqlcheck
