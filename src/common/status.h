#pragma once

#include <string>
#include <utility>

namespace sqlcheck {

/// \brief Lightweight error-or-ok type used across public APIs instead of
/// exceptions (per the project's Google-style convention).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(std::string message) { return Status(std::move(message)); }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

  bool operator==(const Status& other) const {
    return ok_ == other.ok_ && message_ == other.message_;
  }

 private:
  explicit Status(std::string message) : ok_(false), message_(std::move(message)) {}

  bool ok_ = true;
  std::string message_;
};

/// \brief Value-or-error result. `ok()` must be checked before `value()`.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  static Result<T> Error(std::string message) {
    return Result<T>(Status::Error(std::move(message)));
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const std::string& message() const { return status_.message(); }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  const T& operator*() const& { return value_; }
  T& operator*() & { return value_; }
  const T* operator->() const { return &value_; }
  T* operator->() { return &value_; }

 private:
  T value_{};
  Status status_;
};

}  // namespace sqlcheck
