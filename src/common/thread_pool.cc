#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "common/failpoint.h"

namespace sqlcheck {

int ThreadPool::ResolveParallelism(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  int n = ResolveParallelism(threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    // Chaos seam: a stalled dispatch — the task still runs (the pool's
    // "tasks must not throw" contract stays intact), it just starts late,
    // exercising every caller's tolerance for slow workers.
    if (SQLCHECK_FAILPOINT("thread_pool_dispatch")) {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ParallelShards(size_t n, int parallelism,
                    const std::function<void(int shard, size_t begin, size_t end)>& body,
                    ThreadPool* pool) {
  if (n == 0) return;
  int shards = std::max(parallelism, 1);
  if (static_cast<size_t>(shards) > n) shards = static_cast<int>(n);
  if (shards <= 1) {
    body(0, 0, n);
    return;
  }
  std::unique_ptr<ThreadPool> transient;
  if (pool == nullptr) {
    transient = std::make_unique<ThreadPool>(shards);
    pool = transient.get();
  }
  // Contiguous, near-equal shards: the first n % shards get one extra item.
  // Boundaries are a pure function of (n, shards) — the determinism anchor.
  size_t base = n / static_cast<size_t>(shards);
  size_t extra = n % static_cast<size_t>(shards);
  size_t begin = 0;
  for (int s = 0; s < shards; ++s) {
    size_t len = base + (static_cast<size_t>(s) < extra ? 1 : 0);
    size_t end = begin + len;
    pool->Submit([&body, s, begin, end] { body(s, begin, end); });
    begin = end;
  }
  pool->Wait();
}

}  // namespace sqlcheck
