#include "common/arena.h"

#include <cstring>
#include <new>

#include "common/failpoint.h"

#if defined(__SANITIZE_ADDRESS__)
#define SQLCHECK_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SQLCHECK_ASAN 1
#endif
#endif

#ifdef SQLCHECK_ASAN
#include <sanitizer/asan_interface.h>
#define SQLCHECK_POISON(addr, size) ASAN_POISON_MEMORY_REGION(addr, size)
#define SQLCHECK_UNPOISON(addr, size) ASAN_UNPOISON_MEMORY_REGION(addr, size)
#else
#define SQLCHECK_POISON(addr, size) ((void)(addr), (void)(size))
#define SQLCHECK_UNPOISON(addr, size) ((void)(addr), (void)(size))
#endif

namespace sqlcheck {

namespace {

constexpr size_t AlignUp(size_t n, size_t align) { return (n + align - 1) & ~(align - 1); }

}  // namespace

Arena::Arena(size_t first_chunk_bytes)
    : next_chunk_bytes_(first_chunk_bytes < 64 ? 64 : first_chunk_bytes) {}

Arena::~Arena() {
  for (Chunk* chunk : chunks_) {
    UnpoisonChunk(chunk);
    ::operator delete(chunk);
  }
}

Arena::Chunk* Arena::NewChunk(size_t min_payload) {
  size_t payload = next_chunk_bytes_;
  if (payload < min_payload) payload = AlignUp(min_payload, alignof(std::max_align_t));
  if (next_chunk_bytes_ < kMaxChunkBytes) next_chunk_bytes_ *= 2;

  // Chaos seam: simulated allocation failure. Scoped — fires only under a
  // FailpointScope (the session append paths), where bad_alloc is recovered
  // by retry/quarantine; arenas outside such a scope are unaffected.
  if (SQLCHECK_SCOPED_FAILPOINT("arena_alloc")) throw std::bad_alloc();

  void* raw = ::operator new(sizeof(Chunk) + payload);
  Chunk* chunk = static_cast<Chunk*>(raw);
  chunk->capacity = payload;
  chunks_.push_back(chunk);
  bytes_reserved_ += payload;
  // The whole payload starts poisoned; Allocate unpoisons what it hands out.
  SQLCHECK_POISON(chunk->data(), payload);
  return chunk;
}

void* Arena::Allocate(size_t bytes, size_t align) {
  if (bytes == 0) bytes = 1;
  char* aligned =
      reinterpret_cast<char*>(AlignUp(reinterpret_cast<uintptr_t>(cursor_), align));
  if (aligned == nullptr || aligned + bytes > limit_) {
    // Reuse a retained chunk (Reset keeps them all for steady-state refill
    // cycles) before reserving a new one from the heap.
    Chunk* chunk = nullptr;
    while (++active_ < chunks_.size()) {
      if (chunks_[active_]->capacity >= bytes + align) {
        chunk = chunks_[active_];
        break;
      }
    }
    if (chunk == nullptr) {
      chunk = NewChunk(bytes + align);
      active_ = chunks_.size() - 1;
    }
    cursor_ = chunk->data();
    limit_ = chunk->data() + chunk->capacity;
    aligned = reinterpret_cast<char*>(AlignUp(reinterpret_cast<uintptr_t>(cursor_), align));
  }
  SQLCHECK_UNPOISON(aligned, bytes);
  cursor_ = aligned + bytes;
  bytes_used_ += bytes;
  ++allocation_count_;
  return aligned;
}

std::string_view Arena::Dup(std::string_view s) {
  if (s.empty()) return {};
  char* copy = static_cast<char*>(Allocate(s.size(), 1));
  std::memcpy(copy, s.data(), s.size());
  return std::string_view(copy, s.size());
}

void Arena::Reset() {
  bytes_used_ = 0;
  allocation_count_ = 0;
  // Retain every chunk: a steady Reset/refill loop reuses the same memory
  // and never touches the heap again (the zero-allocation contract the parse
  // path is tested against). Memory is only returned on destruction.
  for (Chunk* chunk : chunks_) {
    SQLCHECK_POISON(chunk->data(), chunk->capacity);
  }
  active_ = 0;
  if (chunks_.empty()) {
    cursor_ = nullptr;
    limit_ = nullptr;
  } else {
    cursor_ = chunks_[0]->data();
    limit_ = chunks_[0]->data() + chunks_[0]->capacity;
  }
}

void Arena::Trim(size_t keep_bytes) {
  if (bytes_used_ != 0) return;  // live allocations would dangle — refuse
  while (chunks_.size() > 1 && bytes_reserved_ > keep_bytes) {
    Chunk* chunk = chunks_.back();
    bytes_reserved_ -= chunk->capacity;
    UnpoisonChunk(chunk);
    ::operator delete(chunk);
    chunks_.pop_back();
  }
  // Re-anchor the cursor (the freed tail may have held it) and restart the
  // doubling schedule from what is left, as a fresh arena of this size would.
  active_ = 0;
  if (chunks_.empty()) {
    cursor_ = nullptr;
    limit_ = nullptr;
  } else {
    cursor_ = chunks_[0]->data();
    limit_ = chunks_[0]->data() + chunks_[0]->capacity;
    next_chunk_bytes_ = chunks_[0]->capacity < kMaxChunkBytes / 2
                            ? chunks_[0]->capacity * 2
                            : kMaxChunkBytes;
  }
}

void Arena::UnpoisonChunk(Chunk* chunk) {
  SQLCHECK_UNPOISON(chunk->data(), chunk->capacity);
}

}  // namespace sqlcheck
