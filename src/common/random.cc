#include "common/random.h"

namespace sqlcheck {

uint64_t Rng::Next() {
  // splitmix64: tiny, fast, and high-quality enough for workload synthesis.
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBelow(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::string Rng::NextWord(int min_len, int max_len) {
  int len = static_cast<int>(NextInRange(min_len, max_len));
  std::string out;
  out.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    out.push_back(static_cast<char>('a' + NextBelow(26)));
  }
  return out;
}

}  // namespace sqlcheck
