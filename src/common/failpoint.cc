#include "common/failpoint.h"

#include <cstdlib>

#include "common/strings.h"

namespace sqlcheck {

namespace failpoint_detail {

std::atomic<int> g_armed_count{0};
thread_local int g_scope_depth = 0;

}  // namespace failpoint_detail

namespace {

/// splitmix64 — the per-point probability stream. Each Eval advances the
/// state atomically, so concurrent evaluations draw distinct values without
/// a lock; determinism per point is not a goal (chaos profiles are random by
/// design), only uniformity and thread safety are.
uint64_t MixRandom(std::atomic<uint64_t>* state) {
  uint64_t z = state->fetch_add(0x9E3779B97F4A7C15ull, std::memory_order_relaxed) +
               0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

struct FailpointRegistry::Point {
  std::string name;
  std::atomic<bool> armed{false};

  // Config: every field atomic so a test arming/disarming while server
  // threads evaluate is a defined (and TSan-clean) race.
  enum class Mode { kOff, kProb, kAfterN };
  std::atomic<Mode> mode{Mode::kOff};
  std::atomic<double> probability{0.0};
  std::atomic<uint64_t> fire_at{0};  ///< kAfterN: the 1-based evaluation that fires.

  std::atomic<uint64_t> evaluations{0};
  std::atomic<uint64_t> fires{0};
  std::atomic<uint64_t> rng{0x6A09E667F3BCC909ull};

  bool Eval() {
    const uint64_t n = evaluations.fetch_add(1, std::memory_order_relaxed) + 1;
    bool fire = false;
    switch (mode.load(std::memory_order_relaxed)) {
      case Mode::kOff:
        break;
      case Mode::kProb: {
        // p == 1.0 must fire deterministically (the chaos suites rely on
        // it), and p * 2^64 as a double rounds to 2^64 — casting that to
        // uint64_t is undefined. Compare in 53-bit space instead, where
        // p < 1 scales to a representable, castable threshold.
        const double p = probability.load(std::memory_order_relaxed);
        fire = p >= 1.0 ||
               (MixRandom(&rng) >> 11) < static_cast<uint64_t>(p * 9007199254740992.0);
        break;
      }
      case Mode::kAfterN:
        fire = n == fire_at.load(std::memory_order_relaxed);
        break;
    }
    if (fire) fires.fetch_add(1, std::memory_order_relaxed);
    return fire;
  }
};

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

FailpointRegistry::FailpointRegistry() {
  const char* env = std::getenv("SQLCHECK_FAILPOINTS");
  if (env != nullptr && *env != '\0') Configure(env);
}

FailpointRegistry::Point* FailpointRegistry::FindOrCreateLocked(std::string_view name) {
  for (auto& point : points_) {
    if (point->name == name) return point.get();
  }
  points_.push_back(std::make_unique<Point>());
  points_.back()->name = std::string(name);
  return points_.back().get();
}

FailpointRegistry::Point* FailpointRegistry::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& point : points_) {
    if (point->name == name) return point.get();
  }
  return nullptr;
}

Status FailpointRegistry::Configure(std::string_view spec) {
  for (const std::string& entry : Split(spec, ',')) {
    std::string_view trimmed = Trim(entry);
    if (trimmed.empty()) continue;
    size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::Error("bad failpoint spec entry '" + std::string(trimmed) +
                           "' (want name=prob|after-N|oneshot)");
    }
    Status status = Arm(Trim(trimmed.substr(0, eq)), Trim(trimmed.substr(eq + 1)));
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Status FailpointRegistry::Arm(std::string_view name, std::string_view mode) {
  Point::Mode parsed = Point::Mode::kOff;
  double probability = 0.0;
  uint64_t fire_at = 0;
  if (mode == "oneshot") {
    parsed = Point::Mode::kAfterN;
    fire_at = 1;
  } else if (mode.substr(0, 6) == "after-" && IsAllDigits(mode.substr(6))) {
    parsed = Point::Mode::kAfterN;
    fire_at = std::strtoull(std::string(mode.substr(6)).c_str(), nullptr, 10);
    if (fire_at == 0) {
      return Status::Error("failpoint '" + std::string(name) + "': after-N needs N >= 1");
    }
  } else {
    char* end = nullptr;
    std::string copy(mode);
    probability = std::strtod(copy.c_str(), &end);
    if (end == nullptr || *end != '\0' || !(probability > 0.0) || probability > 1.0) {
      return Status::Error("failpoint '" + std::string(name) + "': bad mode '" +
                           copy + "' (want a probability in (0,1], after-N, or oneshot)");
    }
    parsed = Point::Mode::kProb;
  }

  std::lock_guard<std::mutex> lock(mu_);
  Point* point = FindOrCreateLocked(name);
  const bool was_armed = point->armed.load(std::memory_order_relaxed);
  point->mode.store(parsed, std::memory_order_relaxed);
  point->probability.store(probability, std::memory_order_relaxed);
  point->fire_at.store(fire_at, std::memory_order_relaxed);
  point->evaluations.store(0, std::memory_order_relaxed);
  point->fires.store(0, std::memory_order_relaxed);
  if (!was_armed) {
    failpoint_detail::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  point->armed.store(true, std::memory_order_release);
  return Status::Ok();
}

void FailpointRegistry::Disarm(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& point : points_) {
    if (point->name != name) continue;
    if (point->armed.exchange(false, std::memory_order_release)) {
      failpoint_detail::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
    point->mode.store(Point::Mode::kOff, std::memory_order_relaxed);
    return;
  }
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& point : points_) {
    if (point->armed.exchange(false, std::memory_order_release)) {
      failpoint_detail::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
    point->mode.store(Point::Mode::kOff, std::memory_order_relaxed);
    point->evaluations.store(0, std::memory_order_relaxed);
    point->fires.store(0, std::memory_order_relaxed);
  }
}

std::vector<FailpointInfo> FailpointRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FailpointInfo> out;
  out.reserve(points_.size());
  for (const auto& point : points_) {
    FailpointInfo info;
    info.name = point->name;
    if (!point->armed.load(std::memory_order_relaxed)) {
      info.mode = "off";
    } else if (point->mode.load(std::memory_order_relaxed) == Point::Mode::kProb) {
      info.mode = "p=" + std::to_string(point->probability.load(std::memory_order_relaxed));
    } else {
      info.mode = "after-" + std::to_string(point->fire_at.load(std::memory_order_relaxed));
    }
    info.evaluations = point->evaluations.load(std::memory_order_relaxed);
    info.fires = point->fires.load(std::memory_order_relaxed);
    out.push_back(std::move(info));
  }
  return out;
}

FailpointInfo FailpointRegistry::Info(std::string_view name) const {
  for (const FailpointInfo& info : List()) {
    if (info.name == name) return info;
  }
  FailpointInfo info;
  info.name = std::string(name);
  info.mode = "off";
  return info;
}

namespace failpoint_detail {

bool EvalSlow(std::string_view name, bool scoped) {
  if (scoped && g_scope_depth == 0) return false;
  FailpointRegistry& registry = FailpointRegistry::Instance();
  FailpointRegistry::Point* point = registry.Find(name);
  if (point == nullptr || !point->armed.load(std::memory_order_acquire)) return false;
  return point->Eval();
}

}  // namespace failpoint_detail

}  // namespace sqlcheck
