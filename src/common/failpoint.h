#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sqlcheck {

/// \brief Fault-injection points for chaos testing, in the style of
/// FreeBSD's fail(9): code threads named `SQLCHECK_FAILPOINT("name")`
/// branches through its hot seams (arena chunk allocation, thread-pool
/// dispatch, socket I/O, fingerprint-memo inserts, exec-verifier row
/// generation), and a test — or an operator via the `SQLCHECK_FAILPOINTS`
/// environment variable — arms a subset of them to simulate allocation
/// failure, I/O stalls, and slow dispatch against real workloads.
///
/// Cost discipline: a disarmed process pays one relaxed atomic load per
/// site evaluation (the global armed count), nothing else; building with
/// -DSQLCHECK_FAILPOINTS=OFF compiles every site to a constant-false branch
/// the optimizer deletes.
///
/// Modes (the value half of a `name=value` spec):
///   - a float in (0, 1]   fire with that probability per evaluation
///   - `after-N`           fire exactly once, on the Nth evaluation (N >= 1)
///   - `oneshot`           alias for after-1
///
/// Scoped vs unscoped sites: seams whose failures the engine can recover
/// from (allocation inside a session append, memo inserts) evaluate through
/// SQLCHECK_SCOPED_FAILPOINT, which additionally requires an active
/// FailpointScope on the calling thread. The append paths open that scope,
/// so an armed `arena_alloc` can never detonate in code (parser unit tests,
/// report assembly) that has no recovery story — which is what lets the
/// whole test suite run green under a nonzero chaos profile.

namespace failpoint_detail {

extern std::atomic<int> g_armed_count;
extern thread_local int g_scope_depth;

/// Slow path behind the macros; only reached while something is armed.
bool EvalSlow(std::string_view name, bool scoped);

}  // namespace failpoint_detail

/// True while at least one failpoint is armed anywhere in the process.
inline bool AnyFailpointArmed() {
  return failpoint_detail::g_armed_count.load(std::memory_order_relaxed) > 0;
}

/// \brief RAII marker for a recovery-capable region: scoped failpoints fire
/// only on threads whose innermost frames include one of these. Re-entrant.
class FailpointScope {
 public:
  FailpointScope() { ++failpoint_detail::g_scope_depth; }
  ~FailpointScope() { --failpoint_detail::g_scope_depth; }
  FailpointScope(const FailpointScope&) = delete;
  FailpointScope& operator=(const FailpointScope&) = delete;
};

/// \brief RAII suspension of the calling thread's FailpointScope: scoped
/// failpoints are inert until this leaves scope. For recovery *bookkeeping*
/// inside a fault-tolerant region (quarantine fingerprinting, failure
/// recording) that must behave identically whether or not a chaos profile is
/// armed — injecting faults into the recovery path itself only tests that
/// the fallback of the fallback exists, at the price of nondeterministic
/// quarantine keys.
class FailpointScopeSuspend {
 public:
  FailpointScopeSuspend()
      : saved_(failpoint_detail::g_scope_depth) {
    failpoint_detail::g_scope_depth = 0;
  }
  ~FailpointScopeSuspend() { failpoint_detail::g_scope_depth = saved_; }
  FailpointScopeSuspend(const FailpointScopeSuspend&) = delete;
  FailpointScopeSuspend& operator=(const FailpointScopeSuspend&) = delete;

 private:
  int saved_;
};

/// \brief Counters/config snapshot of one failpoint, for tests and the
/// operator-facing listing.
struct FailpointInfo {
  std::string name;
  std::string mode;  ///< "off", "p=0.02", "after-3", ...
  uint64_t evaluations = 0;
  uint64_t fires = 0;
};

/// \brief Process-wide registry of named failpoints. Points are created on
/// first mention (by a site evaluation or a Configure/Arm call) and live for
/// the process; arming/disarming is fully thread-safe and cheap enough for
/// tests to toggle per-case.
class FailpointRegistry {
 public:
  static FailpointRegistry& Instance();

  /// Applies a comma-separated spec: `name=prob|after-N|oneshot,...` — the
  /// `SQLCHECK_FAILPOINTS` environment syntax. Unknown names register new
  /// points (a site may not have been reached yet). Non-OK names the first
  /// malformed entry; valid entries before it are applied.
  Status Configure(std::string_view spec);

  /// Arms one point. `mode` uses the spec's value syntax.
  Status Arm(std::string_view name, std::string_view mode);

  void Disarm(std::string_view name);

  /// Disarms everything and zeroes counters — the chaos tests' reset.
  void DisarmAll();

  /// Snapshot of every registered point.
  std::vector<FailpointInfo> List() const;

  /// Counters for one point (zeroes if it does not exist).
  FailpointInfo Info(std::string_view name) const;

 private:
  FailpointRegistry();
  friend bool failpoint_detail::EvalSlow(std::string_view, bool);

  struct Point;
  Point* FindOrCreateLocked(std::string_view name);
  Point* Find(std::string_view name) const;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Point>> points_;  ///< Stable addresses.
};

#if defined(SQLCHECK_NO_FAILPOINTS)
#define SQLCHECK_FAILPOINT(name) false
#define SQLCHECK_SCOPED_FAILPOINT(name) false
#else
/// Evaluates to true when the named failpoint decides this call should fail.
#define SQLCHECK_FAILPOINT(name) \
  (::sqlcheck::AnyFailpointArmed() && ::sqlcheck::failpoint_detail::EvalSlow(name, false))
/// As above, but inert unless the calling thread holds a FailpointScope.
#define SQLCHECK_SCOPED_FAILPOINT(name) \
  (::sqlcheck::AnyFailpointArmed() && ::sqlcheck::failpoint_detail::EvalSlow(name, true))
#endif

}  // namespace sqlcheck
