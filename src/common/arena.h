#pragma once

#include <cstddef>
#include <cstdint>
#include <memory_resource>
#include <new>
#include <string_view>
#include <utility>
#include <vector>

namespace sqlcheck {

/// \brief Bump-pointer arena: a monotonic allocator backing the zero-copy SQL
/// frontend. Parse trees, interned names, and normalized token payloads are
/// bump-allocated here and freed wholesale when the owning object (Context,
/// TokenBuffer, NameInterner) goes away — no per-node `delete`, no destructor
/// walks.
///
/// Implements `std::pmr::memory_resource`, so the AST's `std::pmr::string` /
/// `std::pmr::vector` members can draw from it directly: an arena-allocated
/// statement's every byte lives in its arena, which is what makes skipping
/// its destructor (see sql::AstDelete) safe.
///
/// Ownership rules:
///  - The arena outlives everything allocated from it. Holders keep it in a
///    `std::unique_ptr` so the arena address stays stable across moves.
///  - `Reset()` invalidates every prior allocation at once but retains all
///    chunks for reuse; it is how per-statement scratch buffers
///    (TokenBuffer) recycle memory without touching the heap.
///  - Not thread-safe: one arena belongs to one thread at a time. Parallel
///    phases only ever *read* arena-backed objects, which is safe.
///
/// Under AddressSanitizer the slack between the bump pointer and the chunk
/// end stays poisoned, so off-the-end reads of arena objects trap exactly
/// like heap overflows would.
class Arena final : public std::pmr::memory_resource {
 public:
  /// `first_chunk_bytes` sizes the initial chunk; later chunks double up to
  /// a 1 MiB cap, keeping waste bounded on both tiny and huge workloads.
  explicit Arena(size_t first_chunk_bytes = kDefaultFirstChunkBytes);
  ~Arena() override;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (a power of two).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Copies `s` into the arena and returns a stable view of the copy.
  std::string_view Dup(std::string_view s);

  /// Constructs a `T` in the arena. The destructor will NOT run — only use
  /// this for types whose members are arena-backed or trivially destructible.
  template <class T, class... Args>
  T* New(Args&&... args) {
    return ::new (Allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  /// Invalidates all allocations; retains every chunk for reuse, so a
  /// steady-state Reset/refill cycle never touches the heap. Memory is
  /// returned to the system only on destruction (or an explicit Trim).
  void Reset();

  /// Returns retained chunks to the heap until `bytes_reserved()` drops to
  /// `keep_bytes` (later chunks freed first; the first chunk always stays).
  /// Only legal when nothing is live — i.e. immediately after Reset() — and
  /// checked: a Trim with `bytes_used() != 0` is a no-op. This is the
  /// memory-discipline valve for long-lived per-tenant scratch buffers: one
  /// giant statement must not pin its high-water chunks for the rest of the
  /// session (see AnalysisSession's scratch trimming).
  void Trim(size_t keep_bytes = 0);

  /// Bytes handed out since construction/Reset (live payload).
  size_t bytes_used() const { return bytes_used_; }
  /// Bytes of chunk capacity currently reserved from the heap.
  size_t bytes_reserved() const { return bytes_reserved_; }
  /// Number of Allocate calls since construction/Reset.
  size_t allocation_count() const { return allocation_count_; }

  static constexpr size_t kDefaultFirstChunkBytes = 16 * 1024;
  static constexpr size_t kMaxChunkBytes = 1024 * 1024;

 private:
  struct Chunk {
    size_t capacity;  ///< Payload bytes following this header.
    char* data() { return reinterpret_cast<char*>(this + 1); }
  };

  void* do_allocate(size_t bytes, size_t align) override { return Allocate(bytes, align); }
  void do_deallocate(void* /*p*/, size_t /*bytes*/, size_t /*align*/) override {
    // Monotonic: individual frees are no-ops; Reset()/~Arena reclaim.
  }
  bool do_is_equal(const std::pmr::memory_resource& other) const noexcept override {
    return this == &other;
  }

  Chunk* NewChunk(size_t min_payload);
  void UnpoisonChunk(Chunk* chunk);

  std::vector<Chunk*> chunks_;  ///< In creation order; all retained by Reset.
  size_t active_ = 0;           ///< Index of the chunk the cursor is in.
  char* cursor_ = nullptr;
  char* limit_ = nullptr;
  size_t next_chunk_bytes_;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
  size_t allocation_count_ = 0;
};

}  // namespace sqlcheck
