#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sqlcheck {

/// \brief A fixed-size worker pool for the batch analysis pipeline. Tasks are
/// plain closures; Wait() blocks until every submitted task has finished, so
/// one pool can serve several fork/join phases of a single SqlCheck::Run().
///
/// The pool makes no ordering promises — callers that need deterministic
/// output (the detector does) write into pre-sharded slots and merge in shard
/// order after Wait().
class ThreadPool {
 public:
  /// Creates `threads` workers; `threads <= 0` uses the hardware concurrency.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void Wait();

  /// Maps a user-facing `parallelism` knob to a worker count: values <= 0
  /// mean "use all hardware threads"; anything else is taken literally.
  static int ResolveParallelism(int requested);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   ///< Signals workers: work or shutdown.
  std::condition_variable idle_cv_;   ///< Signals Wait(): everything drained.
  size_t in_flight_ = 0;              ///< Tasks popped but not yet finished.
  bool stop_ = false;
};

/// \brief Fork/join helper over an index range: splits [0, n) into
/// `parallelism` contiguous shards and runs `body(shard, begin, end)` for
/// each. Shard boundaries depend only on (n, parallelism) — never on the
/// executing pool — so per-shard results merged in shard order are
/// deterministic. With `parallelism <= 1` (or nothing to shard) the body runs
/// inline on the calling thread. Passing `pool` reuses its workers across
/// calls (the fork/join phases of one SqlCheck::Run() share one pool);
/// without it a transient pool is spun up for this call.
void ParallelShards(size_t n, int parallelism,
                    const std::function<void(int shard, size_t begin, size_t end)>& body,
                    ThreadPool* pool = nullptr);

}  // namespace sqlcheck
