#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/arena.h"

namespace sqlcheck {

/// \brief Dense identifier for an interned SQL name. 0 (`kNoName`) means
/// "not interned" / "unknown"; real ids start at 1 and are assigned in
/// first-intern order, so they are stable for the interner's lifetime.
using NameId = uint32_t;
inline constexpr NameId kNoName = 0;

/// \brief Case-insensitive string -> dense NameId table for SQL identifiers
/// (tables, columns, aliases). SQL folds identifier case in every dialect we
/// target, so two spellings that lowercase equal intern to the same id —
/// name equality anywhere downstream becomes one integer compare, and the
/// O(1) `Lower()` view replaces the `ToLower(...)` temporaries the analyzer
/// and rules used to allocate on every lookup.
///
/// Instances are single-threaded by design (one per Context / per shard);
/// parallel shards intern into their own instance and `Merge()` folds a
/// shard's table into another, returning the id remap. Lookups (`Find`,
/// `Intern` of an already-known name) never allocate: the probe lowercases
/// into a stack buffer.
class NameInterner {
 public:
  NameInterner();
  NameInterner(NameInterner&&) = default;
  NameInterner& operator=(NameInterner&&) = default;
  NameInterner(const NameInterner&) = delete;
  NameInterner& operator=(const NameInterner&) = delete;

  /// Interns `name` (case-insensitively), returning its id. The first
  /// spelling seen is retained as `Spelling(id)`. Empty names intern to
  /// `kNoName`.
  NameId Intern(std::string_view name);

  /// Looks `name` up without inserting; `kNoName` when never interned.
  /// Allocation-free for names up to LowerProbe's stack capacity (64 bytes).
  NameId Find(std::string_view name) const;

  /// Lowercase form of an interned name. Views stay valid for the
  /// interner's lifetime (storage is arena-backed and never reallocates).
  std::string_view Lower(NameId id) const { return entries_[id].lower; }

  /// The spelling first seen for this name.
  std::string_view Spelling(NameId id) const { return entries_[id].spelling; }

  /// Number of distinct names interned (ids run 1..size()).
  size_t size() const { return entries_.size() - 1; }

  /// Approximate heap footprint: name-byte arena reservation plus the entry
  /// table and hash-map structures. Feeds per-tenant accounting (the server's
  /// `stats` op and SessionLimits::interner_cap_names sizing guidance) — an
  /// estimate, not an allocator-exact byte count.
  size_t memory_bytes() const;

  /// Folds every name of `other` into this interner. `remap` (optional) maps
  /// other's ids to this interner's: `remap[other_id] == Intern(spelling)`.
  /// This is the shard-merge path: parallel workers intern lock-free into
  /// their own instance, then the owner merges serially.
  void Merge(const NameInterner& other, std::vector<NameId>* remap = nullptr);

 private:
  struct Entry {
    std::string_view lower;
    std::string_view spelling;
  };

  NameId InternLowered(std::string_view lower, std::string_view spelling);

  std::unique_ptr<Arena> storage_;            ///< Owns all name bytes (stable).
  std::vector<Entry> entries_;                ///< entries_[0] is the kNoName slot.
  std::unordered_map<std::string_view, NameId> map_;  ///< Keys view into storage_.
};

}  // namespace sqlcheck
