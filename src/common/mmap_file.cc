#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/failpoint.h"

namespace sqlcheck {

namespace {

Status Errno(const char* what, const std::string& path) {
  return Status::Error(std::string(what) + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    empty_ok_ = std::exchange(other.empty_ok_, false);
  }
  return *this;
}

Status MappedFile::Open(const std::string& path) {
  Reset();
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("cannot open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = Errno("cannot stat", path);
    ::close(fd);
    return s;
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::Error("not a regular file: '" + path + "'");
  }
  Status s = OpenFd(fd, static_cast<size_t>(st.st_size));
  ::close(fd);  // The mapping keeps the pages alive without the descriptor.
  return s;
}

Status MappedFile::OpenFd(int fd, size_t length) {
  Reset();
  if (length == 0) {
    empty_ok_ = true;
    return Status::Ok();
  }
  if (SQLCHECK_FAILPOINT("store_map")) {
    return Status::Error("mmap failed (injected store_map fault)");
  }
  void* addr = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd, 0);
  if (addr == MAP_FAILED) {
    return Status::Error(std::string("mmap failed: ") + std::strerror(errno));
  }
  data_ = static_cast<const char*>(addr);
  size_ = length;
  return Status::Ok();
}

void MappedFile::Reset() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  empty_ok_ = false;
}

Status ReadFileToString(const std::string& path, std::string* out) {
  out->clear();
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("cannot open", path);
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Errno("cannot read", path);
      ::close(fd);
      return s;
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::Ok();
}

}  // namespace sqlcheck
