#include "common/interner.h"

#include "common/strings.h"

namespace sqlcheck {

NameInterner::NameInterner() : storage_(std::make_unique<Arena>(4 * 1024)) {
  entries_.push_back(Entry{});  // kNoName slot.
}

NameId NameInterner::InternLowered(std::string_view lower, std::string_view spelling) {
  auto it = map_.find(lower);
  if (it != map_.end()) return it->second;
  Entry entry;
  entry.lower = storage_->Dup(lower);
  entry.spelling = lower == spelling ? entry.lower : storage_->Dup(spelling);
  NameId id = static_cast<NameId>(entries_.size());
  entries_.push_back(entry);
  map_.emplace(entry.lower, id);
  return id;
}

NameId NameInterner::Intern(std::string_view name) {
  if (name.empty()) return kNoName;
  return InternLowered(LowerProbe(name).view(), name);
}

NameId NameInterner::Find(std::string_view name) const {
  if (name.empty()) return kNoName;
  auto it = map_.find(LowerProbe(name).view());
  return it == map_.end() ? kNoName : it->second;
}

size_t NameInterner::memory_bytes() const {
  // Arena reservation + dense entry table + an estimate of the node-based
  // hash map (one pointer-linked node per entry, one bucket pointer each).
  return storage_->bytes_reserved() + entries_.capacity() * sizeof(Entry) +
         map_.bucket_count() * sizeof(void*) +
         map_.size() * (sizeof(std::pair<std::string_view, NameId>) + 2 * sizeof(void*));
}

void NameInterner::Merge(const NameInterner& other, std::vector<NameId>* remap) {
  if (remap != nullptr) {
    remap->assign(other.entries_.size(), kNoName);
  }
  for (size_t i = 1; i < other.entries_.size(); ++i) {
    NameId id = InternLowered(other.entries_[i].lower, other.entries_[i].spelling);
    if (remap != nullptr) (*remap)[i] = id;
  }
}

}  // namespace sqlcheck
