#include "common/status.h"

namespace sqlcheck {

// Status is header-only today; this translation unit anchors the library
// target and reserves space for richer error categories later.

}  // namespace sqlcheck
