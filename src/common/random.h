#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sqlcheck {

/// \brief Deterministic PRNG (splitmix64 core) used by every generator so all
/// experiments are reproducible bit-for-bit from an explicit seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound) — bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform real in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability `p`.
  bool NextBool(double p);

  /// Uniformly chosen element of `items` (must be non-empty).
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[NextBelow(items.size())];
  }

  /// Random lowercase identifier-ish string of length in [min_len, max_len].
  std::string NextWord(int min_len, int max_len);

 private:
  uint64_t state_;
};

}  // namespace sqlcheck
