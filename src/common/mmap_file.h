#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "common/status.h"

namespace sqlcheck {

/// \brief RAII read-only memory mapping of a file. The mapping reflects the
/// file's size at Open() time; bytes appended to the file afterwards are not
/// visible through it (and do not invalidate it — growing a file never moves
/// the pages already mapped). Zero-length files map to an empty view without
/// touching mmap, so every regular file is mappable.
///
/// Used by the corpus scanner (scanned sources are read zero-copy) and the
/// persistent fingerprint store (the committed log is probed in place).
/// Failure seams thread the `store_map` failpoint so chaos tests can force
/// the degraded paths.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { Reset(); }

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. On failure the object stays empty.
  Status Open(const std::string& path);

  /// Maps the first `length` bytes of an already-open descriptor (the store's
  /// committed prefix). Does not take ownership of `fd`.
  Status OpenFd(int fd, size_t length);

  /// Unmaps; the object becomes empty.
  void Reset();

  bool mapped() const { return data_ != nullptr || empty_ok_; }
  const char* data() const { return data_; }
  size_t size() const { return size_; }
  std::string_view view() const { return std::string_view(data_, size_); }

 private:
  const char* data_ = nullptr;
  size_t size_ = 0;
  bool empty_ok_ = false;  ///< Open() succeeded on a zero-length file.
};

/// \brief Reads a whole file into `out` (for small control files and the
/// scanner's fallback when a mapping fails). Returns non-OK on I/O error.
Status ReadFileToString(const std::string& path, std::string* out);

}  // namespace sqlcheck
