#pragma once

#include <map>
#include <string>
#include <vector>

#include "fix/fix.h"
#include "ranking/model.h"

namespace sqlcheck {

/// \brief One reported finding: the ranked detection plus its suggested fix.
struct Finding {
  RankedDetection ranked;
  Fix fix;
};

/// \brief The output of a SqlCheck run.
struct Report {
  std::vector<Finding> findings;  ///< Ordered by ap-rank (highest impact first).

  size_t size() const { return findings.size(); }
  bool empty() const { return findings.empty(); }

  /// Detection counts grouped by anti-pattern type.
  std::map<AntiPattern, int> CountsByType() const;

  /// Number of distinct anti-pattern *types* present.
  int DistinctTypes() const;

  /// Renders a human-readable report (the CLI/GUI surface of §7). With
  /// `color`, severity-graded ANSI escapes highlight rule names and scores.
  std::string ToText(size_t max_findings = 0, bool color = false) const;

  /// Deterministic JSON rendering (src/core/emit.cc; see ToJson for the
  /// shape and EmitOptions for caps/URIs).
  std::string ToJson() const;

  /// SARIF 2.1.0 rendering for code-scanning upload (src/core/emit.cc).
  std::string ToSarif() const;
};

}  // namespace sqlcheck
