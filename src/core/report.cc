#include "core/report.h"

#include <sstream>

namespace sqlcheck {

std::map<AntiPattern, int> Report::CountsByType() const {
  std::map<AntiPattern, int> counts;
  for (const auto& finding : findings) ++counts[finding.ranked.detection.type];
  return counts;
}

int Report::DistinctTypes() const { return static_cast<int>(CountsByType().size()); }

std::string Report::ToText(size_t max_findings) const {
  std::ostringstream out;
  size_t limit = max_findings == 0 ? findings.size() : std::min(max_findings, findings.size());
  out << "sqlcheck report: " << findings.size() << " anti-pattern(s), "
      << DistinctTypes() << " distinct type(s)\n";
  for (size_t i = 0; i < limit; ++i) {
    const Finding& f = findings[i];
    const Detection& d = f.ranked.detection;
    out << "\n[" << (i + 1) << "] " << ApName(d.type) << "  (category: "
        << CategoryName(InfoFor(d.type).category) << ", score: " << f.ranked.score << ")\n";
    if (!d.table.empty()) {
      out << "    at: " << d.table;
      if (!d.column.empty()) out << "." << d.column;
      out << "\n";
    }
    if (!d.query.empty()) out << "    query: " << d.query << "\n";
    out << "    why: " << d.message << "\n";
    if (f.fix.kind == FixKind::kRewrite && !f.fix.statements.empty()) {
      out << "    fix:\n";
      for (const auto& stmt : f.fix.statements) out << "      " << stmt << "\n";
    } else {
      out << "    fix (manual): " << f.fix.explanation << "\n";
    }
    if (!f.fix.impacted_queries.empty()) {
      out << "    impacted queries: " << f.fix.impacted_queries.size() << "\n";
    }
  }
  if (limit < findings.size()) {
    out << "\n... " << (findings.size() - limit) << " more finding(s) suppressed\n";
  }
  return out.str();
}

}  // namespace sqlcheck
