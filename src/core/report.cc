#include "core/report.h"

#include <sstream>

namespace sqlcheck {

std::map<AntiPattern, int> Report::CountsByType() const {
  std::map<AntiPattern, int> counts;
  for (const auto& finding : findings) ++counts[finding.ranked.detection.type];
  return counts;
}

int Report::DistinctTypes() const { return static_cast<int>(CountsByType().size()); }

std::string Report::ToText(size_t max_findings, bool color) const {
  std::ostringstream out;
  size_t limit = max_findings == 0 ? findings.size() : std::min(max_findings, findings.size());
  const char* reset = color ? "\x1b[0m" : "";
  const char* bold = color ? "\x1b[1m" : "";
  out << "sqlcheck report: " << findings.size() << " anti-pattern(s), "
      << DistinctTypes() << " distinct type(s)\n";
  for (size_t i = 0; i < limit; ++i) {
    const Finding& f = findings[i];
    const Detection& d = f.ranked.detection;
    // Severity-graded highlight: red for high-impact findings, yellow for
    // mid, cyan for low (thresholds on the Figure 6 score).
    const char* severity = !color            ? ""
                           : f.ranked.score >= 0.5  ? "\x1b[31m"
                           : f.ranked.score >= 0.15 ? "\x1b[33m"
                                                    : "\x1b[36m";
    out << "\n[" << (i + 1) << "] " << bold << severity << ApName(d.type) << reset
        << "  (category: " << CategoryName(InfoFor(d.type).category)
        << ", score: " << severity << f.ranked.score << reset << ")\n";
    if (!d.table.empty()) {
      out << "    at: " << d.table;
      if (!d.column.empty()) out << "." << d.column;
      out << "\n";
    }
    if (!d.query.empty()) out << "    query: " << d.query << "\n";
    out << "    why: " << d.message << "\n";
    if (f.fix.kind == FixKind::kRewrite && !f.fix.statements.empty()) {
      out << "    fix:\n";
      for (const auto& stmt : f.fix.statements) out << "      " << stmt << "\n";
    } else {
      out << "    fix (manual): " << f.fix.explanation << "\n";
    }
    if (!f.fix.impacted_queries.empty()) {
      out << "    impacted queries: " << f.fix.impacted_queries.size() << "\n";
    }
  }
  if (limit < findings.size()) {
    out << "\n... " << (findings.size() - limit) << " more finding(s) suppressed\n";
  }
  return out.str();
}

}  // namespace sqlcheck
