#include "core/report.h"

#include <sstream>

namespace sqlcheck {

std::map<AntiPattern, int> Report::CountsByType() const {
  std::map<AntiPattern, int> counts;
  for (const auto& finding : findings) ++counts[finding.ranked.detection.type];
  return counts;
}

int Report::DistinctTypes() const { return static_cast<int>(CountsByType().size()); }

std::string Report::ToText(size_t max_findings, bool color) const {
  std::ostringstream out;
  size_t limit = max_findings == 0 ? findings.size() : std::min(max_findings, findings.size());
  const char* reset = color ? "\x1b[0m" : "";
  const char* bold = color ? "\x1b[1m" : "";
  out << "sqlcheck report: " << findings.size() << " anti-pattern(s), "
      << DistinctTypes() << " distinct type(s)\n";
  for (size_t i = 0; i < limit; ++i) {
    const Finding& f = findings[i];
    const Detection& d = f.ranked.detection;
    // Severity-graded highlight: red for high-impact findings, yellow for
    // mid, cyan for low (thresholds live in ranking/model.h).
    const char* severity = "";
    if (color) {
      switch (ScoreSeverity(f.ranked.score)) {
        case Severity::kHigh: severity = "\x1b[31m"; break;
        case Severity::kMedium: severity = "\x1b[33m"; break;
        case Severity::kLow: severity = "\x1b[36m"; break;
      }
    }
    out << "\n[" << (i + 1) << "] " << bold << severity << ApName(d.type) << reset
        << "  (category: " << CategoryName(InfoFor(d.type).category)
        << ", score: " << severity << f.ranked.score << reset << ")\n";
    if (!d.table.empty()) {
      out << "    at: " << d.table;
      if (!d.column.empty()) out << "." << d.column;
      out << "\n";
    }
    if (!d.query.empty()) out << "    query: " << d.query << "\n";
    out << "    why: " << d.message << "\n";
    if (f.fix.kind == FixKind::kRewrite && !f.fix.statements.empty()) {
      out << (f.fix.verified ? "    fix (verified rewrite):\n" : "    fix:\n");
      for (const auto& stmt : f.fix.statements) out << "      " << stmt << "\n";
    } else {
      out << "    fix (manual): " << f.fix.explanation << "\n";
      if (!f.fix.verify_note.empty()) {
        out << "    note: rewrite withheld — " << f.fix.verify_note << "\n";
      }
    }
    if (!f.fix.impacted_queries.empty()) {
      out << "    impacted queries: " << f.fix.impacted_queries.size() << "\n";
    }
  }
  if (limit < findings.size()) {
    out << "\n... " << (findings.size() - limit) << " more finding(s) suppressed\n";
  }
  return out.str();
}

}  // namespace sqlcheck
