#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "analysis/context.h"
#include "common/status.h"
#include "common/strings.h"
#include "core/options.h"
#include "core/report.h"
#include "rules/registry.h"
#include "storage/database.h"

namespace sqlcheck {

class FixEngine;

/// \brief Point-in-time memory/ingest accounting for one AnalysisSession —
/// the numbers behind the server's `stats` op and SessionLimits sizing.
struct SessionUsage {
  size_t statements = 0;            ///< Statements ingested.
  size_t unique_groups = 0;         ///< Distinct fingerprint groups.
  size_t ingested_bytes = 0;        ///< Raw SQL bytes accepted so far.
  size_t arena_reserved_bytes = 0;  ///< Parse-tree arena heap reservation.
  size_t arena_used_bytes = 0;      ///< Parse-tree arena live payload.
  size_t scratch_reserved_bytes = 0;  ///< Lexer scratch (TokenBuffer) arena.
  size_t interner_names = 0;        ///< Distinct identifiers interned.
  size_t interner_bytes = 0;        ///< Interner footprint (estimate).
};

/// \brief The incremental analysis engine: accepts statements one at a time
/// (or in chunks), updates the Context in place, and re-runs only the
/// affected rules. This is the long-lived core the paper's interactive
/// toolchain (§3, §7) implies — an editor/CI/monitor integration appends new
/// statements for the lifetime of an application instead of re-analyzing the
/// whole workload per call.
///
/// What stays incremental:
///  - Parsing/analysis: each statement is parsed once; the PR-2 fingerprint
///    memo persists across calls, so a repeated statement costs one hash
///    lookup and a facts rebase instead of a fresh analysis.
///  - Statement-local rules (Rule::query_scope() == kStatementLocal) run
///    once per unique statement; their detections are cached and replayed.
///  - Workload-sensitive rules re-evaluate against maintained aggregates
///    (Context::stats(), updated per append) rather than O(workload) scans.
///
/// Snapshot() assembles the full report through the same fan-out as the
/// batch detector, so its output is byte-identical to SqlCheck::Run() over
/// the same statement order — enforced by tests/test_session.cc.
///
/// \code
///   AnalysisSession session;                     // or session(options)
///   session.AddScript(schema_sql);               // bulk history
///   Report delta = session.Check(incoming_sql);  // findings for new stmt only
///   Report full  = session.Snapshot();           // == batch Run() output
/// \endcode
class AnalysisSession {
 public:
  explicit AnalysisSession(SqlCheckOptions options = {});

  /// Non-OK when the options were invalid (e.g. an unknown name in
  /// disabled_rules); the session still works with the full rule set.
  const Status& status() const { return status_; }

  /// Connects the target database: its schema becomes the catalog baseline
  /// (workload DDL re-applies on top) and its tables are profiled once, now.
  /// May be called before or after statements are added; call again with the
  /// same database to re-profile after its data changes.
  void AttachDatabase(const Database* db);

  /// Registers a custom rule (extensibility hook of §7). Takes effect from
  /// the next Check()/Snapshot(); statements already ingested are covered
  /// (statement-local detections for them are backfilled lazily).
  void RegisterRule(std::unique_ptr<Rule> rule);

  /// Appends one statement. Returns its workload index.
  size_t AddQuery(std::string_view sql_text);

  /// Appends every statement in a script (one chunk — analysis of new unique
  /// statements is sharded across SqlCheckOptions::parallelism workers).
  /// Returns the number of statements appended.
  ///
  /// With SqlCheckOptions::ingest_parallelism > 1 and a script of at least
  /// 2 * kMinStatementsPerIngestShard statements, the whole frontend runs
  /// sharded: the statement stream is split once, contiguous shards are
  /// parsed + fingerprinted + analyzed in independent per-shard sessions,
  /// and the shards fold back in order through the NameInterner merge path
  /// (ParallelIngest/MergeShard). The merged session is byte-identical to
  /// serial ingestion — same statements, groups, NameIds, memos, and
  /// reports — enforced by tests/test_parallel_ingest.cc.
  size_t AddScript(std::string_view script);

  /// Appends an already-parsed statement (takes ownership).
  void AddStatement(sql::StatementPtr stmt);

  /// Streaming check: appends every statement in `sql` and returns a ranked
  /// report of the findings *on those statements only*, evaluated against
  /// the whole workload seen so far (aggregates include the new statements).
  /// Table-level data-analysis findings are not re-examined here — they
  /// belong to Snapshot(). This is the per-statement hot path: O(rules) with
  /// O(1) aggregate lookups, independent of history length.
  Report Check(std::string_view sql);

  /// Full report over everything ingested so far: byte-identical to
  /// SqlCheck::Run() on the same statements, in the same order. Idempotent —
  /// the session remains usable (and appendable) afterwards.
  Report Snapshot();

  const Context& context() const { return context_; }
  const SqlCheckOptions& options() const { return options_; }
  size_t statement_count() const { return context_.statements_.size(); }
  /// Unique fingerprint groups seen (== statement_count() with dedup off).
  size_t unique_count() const { return context_.query_groups_.unique.size(); }
  /// Fix-cache telemetry: replays served from / entries added to the
  /// per-fingerprint-group fix cache (statement-local detection/action pairs
  /// only; workload-sensitive fixes always re-evaluate).
  size_t fix_cache_hits() const { return fix_cache_hits_; }
  size_t fix_cache_misses() const { return fix_cache_misses_; }
  /// Rewrite-verification telemetry (fix/verify.h): per-tier counts of the
  /// fixes this session suggested, demotions, differential-execution runs,
  /// and verification-memo hit rates. Counters accumulate across
  /// Check()/Snapshot() calls for the session's lifetime.
  const VerifyStats& verify_stats() const { return verify_stats_; }

  /// Would appending `incoming_bytes` of raw SQL breach SessionLimits? OK
  /// when every cap holds; otherwise an error naming the exhausted quota.
  /// The append paths consult this themselves — the public form lets a
  /// caller (the server) reject a request before paying for its parse.
  Status CheckQuota(size_t incoming_bytes) const;

  /// OK until an append was refused by SessionLimits; then the refusal
  /// reason, sticky until more room appears (it never does — caps only
  /// tighten as the session grows — so treat non-OK as terminal and either
  /// drop the tenant or start a fresh session). Snapshot()/Check() over the
  /// already-ingested history keep working either way.
  const Status& quota_status() const { return quota_status_; }

  /// Current memory/ingest accounting (see SessionUsage).
  SessionUsage Usage() const;

  /// Minimum statements a parallel-ingest shard must receive: below this the
  /// per-shard session + merge overhead dwarfs the parse work, so AddScript
  /// falls back to the serial path (and shard counts clamp so every shard
  /// meets the floor).
  static constexpr size_t kMinStatementsPerIngestShard = 16;

 private:
  /// Appends `stmts` as one chunk: dedup bookkeeping serially, analysis and
  /// statement-local rule evaluation for new uniques sharded. Returns the
  /// index of the first appended statement.
  size_t IngestChunk(std::vector<sql::StatementPtr> stmts);

  /// Sharded bulk ingestion (the ingest_parallelism path of AddScript):
  /// `pieces` — the split statement texts, in script order — are divided
  /// into `shards` contiguous ranges; each range is parsed and ingested into
  /// a fresh per-shard session on a ThreadPool, then the shards fold into
  /// this session in order via MergeShard. Byte-identical to pushing the
  /// pieces through the serial path.
  void ParallelIngest(const std::vector<std::string_view>& pieces, int shards);

  /// Folds one ingestion shard into this session, in workload order:
  /// re-resolves the shard's fingerprint groups against this session's memos
  /// (cross-shard duplicates collapse exactly as serial ingestion would),
  /// moves statements/facts/cache rows over, replays DDL onto the catalog,
  /// merges the workload aggregates through the interner remap, and adopts
  /// the shard's arena so the moved parse trees stay valid. The shard is
  /// consumed.
  void MergeShard(AnalysisSession&& shard);

  /// Quota gate for every append path: true = proceed (bytes are charged),
  /// false = refused (quota_status_ records why, nothing is ingested).
  bool GateAppend(size_t incoming_bytes);

  /// Releases high-water lexer scratch after an append (see
  /// TokenBuffer::Trim) so one huge statement cannot pin megabytes of
  /// per-session scratch for the rest of a long-lived session.
  void TrimScratch();

  /// Fills cache slots for rules registered after row `u` was created (late
  /// RegisterRule); statement-local rules are context-free, so backfilling
  /// at any time yields what ingest-time evaluation would have.
  void EnsureCacheRow(size_t u);

  /// Appends group `u`'s detections in registry order: statement-local rules
  /// from the cache, workload rules evaluated fresh against the current
  /// context. Rows are disjoint, so concurrent calls on distinct `u` are
  /// safe.
  void AssembleGroupDetections(size_t u, std::vector<Detection>* out);

  /// ap-rank + ap-fix over an assembled detection stream. Non-const: fix
  /// suggestion funnels through the per-group fix cache.
  Report MakeReport(std::vector<Detection> detections);

  /// Cache-aware ap-fix for one ranked detection. Fixes whose detection half
  /// *and* action half are both statement-local (Rule::query_scope() and
  /// Fixer::fix_scope() == kStatementLocal) are computed once per unique
  /// fingerprint group and replayed for every duplicate occurrence with the
  /// anchor rebased onto the occurrence's raw text — exactly the detection
  /// cache's contract. Everything else (catalog-driven expansions,
  /// profile-driven DDL) re-evaluates against the current context, which is
  /// what keeps replayed fixes valid as the workload grows.
  Fix FixForDetection(const Detection& d, const FixEngine& engine);

  SqlCheckOptions options_;
  RuleRegistry registry_;
  Status status_;
  Status quota_status_;
  size_t ingested_bytes_ = 0;  ///< Raw SQL bytes accepted (quota accounting).
  Context context_;
  sql::TokenBuffer token_buffer_;  ///< Reused across every parse this session runs.

  /// Fingerprint memo (persists across calls): raw statement bytes -> group
  /// representative index, and exact-canonical form -> representative.
  /// Transparent hashing so the per-statement probe takes a view of the
  /// statement's own raw_sql — no temporary key string.
  std::unordered_map<std::string, size_t, StringViewHash, std::equal_to<>> raw_memo_;
  std::unordered_map<std::string, size_t, StringViewHash, std::equal_to<>> canonical_memo_;
  /// Representative statement index -> position in query_groups().unique.
  std::unordered_map<size_t, size_t> unique_pos_;

  /// Per unique group: per registry rule, the cached detections of every
  /// statement-local rule (workload-rule slots stay empty).
  std::vector<std::vector<std::vector<Detection>>> local_cache_;

  /// One statement-local fix, keyed by what distinguishes detections within
  /// a group (a rule may flag several columns of one statement).
  struct CachedFix {
    AntiPattern type;
    std::string table;
    std::string column;
    Fix fix;
  };
  /// Per unique group: cached fixes of statement-local detection/action
  /// pairs (parallel to local_cache_; grown per unique statement).
  std::vector<std::vector<CachedFix>> fix_cache_;
  size_t fix_cache_hits_ = 0;
  size_t fix_cache_misses_ = 0;

  /// Verification verdicts memoized across snapshots: each MakeReport builds
  /// a fresh FixEngine, but the engine writes its verdicts here, so a unique
  /// proposal pays the (Tier-3-expensive) pipeline once per session, not
  /// once per Snapshot(). Sound because verdicts are deterministic in the
  /// proposal + options, both session-constant. Tier-2 verdicts over
  /// *workload-sensitive* rules could in principle flip as the catalog
  /// grows; the memo key includes the original statement and the rewritten
  /// spelling, and catalog growth changes the rewritten spelling (expansions
  /// name the new columns), so stale entries are simply never probed again.
  VerifyMemo verify_memo_;
  VerifyStats verify_stats_;
};

}  // namespace sqlcheck
