#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "analysis/context.h"
#include "common/status.h"
#include "common/strings.h"
#include "core/options.h"
#include "core/report.h"
#include "rules/registry.h"
#include "storage/database.h"

namespace sqlcheck {

class FixEngine;

/// \brief Point-in-time memory/ingest accounting for one AnalysisSession —
/// the numbers behind the server's `stats` op and SessionLimits sizing.
struct SessionUsage {
  size_t statements = 0;            ///< Statements ingested.
  size_t unique_groups = 0;         ///< Distinct fingerprint groups.
  size_t ingested_bytes = 0;        ///< Raw SQL bytes accepted so far.
  size_t arena_reserved_bytes = 0;  ///< Parse-tree arena heap reservation.
  size_t arena_used_bytes = 0;      ///< Parse-tree arena live payload.
  size_t scratch_reserved_bytes = 0;  ///< Lexer scratch (TokenBuffer) arena.
  size_t interner_names = 0;        ///< Distinct identifiers interned.
  size_t interner_bytes = 0;        ///< Interner footprint (estimate).
};

/// \brief Bounded LRU of poisoned-statement fingerprints. A statement whose
/// analysis throws/faults persistently (or blows its wall-clock budget) is
/// quarantined by exact-canonical fingerprint; repeat offenders are refused
/// with one O(1) hash probe before any parse work is paid. Bounded so an
/// adversarial stream of distinct poison cannot grow it without limit — the
/// oldest entry falls out, which is the right failure mode (a re-offending
/// evictee just re-quarantines on its next failure).
class QuarantineSet {
 public:
  explicit QuarantineSet(size_t capacity = 256) : capacity_(capacity) {}

  /// True if `key` is quarantined; refreshes its recency.
  bool Touch(uint64_t key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }

  void Insert(uint64_t key) {
    if (capacity_ == 0) return;
    if (Touch(key)) return;
    order_.push_front(key);
    index_.emplace(key, order_.begin());
    if (index_.size() > capacity_) {
      index_.erase(order_.back());
      order_.pop_back();
    }
  }

  bool empty() const { return index_.empty(); }
  size_t size() const { return index_.size(); }

  /// Every quarantined key, most recent first (shard-merge + tests).
  std::vector<uint64_t> Keys() const {
    return std::vector<uint64_t>(order_.begin(), order_.end());
  }

 private:
  size_t capacity_;
  std::list<uint64_t> order_;  ///< Front = most recently touched.
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> index_;
};

/// \brief One statement the latest append call could not fully process. The
/// session survives these — the failure is reported per statement instead of
/// poisoning the tenant — and the server streams each entry as a
/// `statement_error` line. `quarantined` entries were also fingerprinted
/// into the QuarantineSet; note a budget-exceeder (code "deadline_exceeded",
/// quarantined) *was* ingested — only its repeats are refused.
struct StatementFailure {
  std::string sql;      ///< The statement text (possibly a refused piece).
  std::string code;     ///< "internal_error" or "deadline_exceeded".
  std::string message;  ///< Human-readable diagnosis.
  bool quarantined = false;
};

/// \brief The incremental analysis engine: accepts statements one at a time
/// (or in chunks), updates the Context in place, and re-runs only the
/// affected rules. This is the long-lived core the paper's interactive
/// toolchain (§3, §7) implies — an editor/CI/monitor integration appends new
/// statements for the lifetime of an application instead of re-analyzing the
/// whole workload per call.
///
/// What stays incremental:
///  - Parsing/analysis: each statement is parsed once; the PR-2 fingerprint
///    memo persists across calls, so a repeated statement costs one hash
///    lookup and a facts rebase instead of a fresh analysis.
///  - Statement-local rules (Rule::query_scope() == kStatementLocal) run
///    once per unique statement; their detections are cached and replayed.
///  - Workload-sensitive rules re-evaluate against maintained aggregates
///    (Context::stats(), updated per append) rather than O(workload) scans.
///
/// Snapshot() assembles the full report through the same fan-out as the
/// batch detector, so its output is byte-identical to SqlCheck::Run() over
/// the same statement order — enforced by tests/test_session.cc.
///
/// \code
///   AnalysisSession session;                     // or session(options)
///   session.AddScript(schema_sql);               // bulk history
///   Report delta = session.Check(incoming_sql);  // findings for new stmt only
///   Report full  = session.Snapshot();           // == batch Run() output
/// \endcode
class AnalysisSession {
 public:
  explicit AnalysisSession(SqlCheckOptions options = {});

  /// Non-OK when the options were invalid (e.g. an unknown name in
  /// disabled_rules); the session still works with the full rule set.
  const Status& status() const { return status_; }

  /// Connects the target database: its schema becomes the catalog baseline
  /// (workload DDL re-applies on top) and its tables are profiled once, now.
  /// May be called before or after statements are added; call again with the
  /// same database to re-profile after its data changes.
  void AttachDatabase(const Database* db);

  /// Registers a custom rule (extensibility hook of §7). Takes effect from
  /// the next Check()/Snapshot(); statements already ingested are covered
  /// (statement-local detections for them are backfilled lazily).
  void RegisterRule(std::unique_ptr<Rule> rule);

  /// Appends one statement. Returns its workload index.
  size_t AddQuery(std::string_view sql_text);

  /// Appends every statement in a script (one chunk — analysis of new unique
  /// statements is sharded across SqlCheckOptions::parallelism workers).
  /// Returns the number of statements appended.
  ///
  /// With SqlCheckOptions::ingest_parallelism > 1 and a script of at least
  /// 2 * kMinStatementsPerIngestShard statements, the whole frontend runs
  /// sharded: the statement stream is split once, contiguous shards are
  /// parsed + fingerprinted + analyzed in independent per-shard sessions,
  /// and the shards fold back in order through the NameInterner merge path
  /// (ParallelIngest/MergeShard). The merged session is byte-identical to
  /// serial ingestion — same statements, groups, NameIds, memos, and
  /// reports — enforced by tests/test_parallel_ingest.cc.
  size_t AddScript(std::string_view script);

  /// Appends an already-parsed statement (takes ownership).
  void AddStatement(sql::StatementPtr stmt);

  /// Streaming check: appends every statement in `sql` and returns a ranked
  /// report of the findings *on those statements only*, evaluated against
  /// the whole workload seen so far (aggregates include the new statements).
  /// Table-level data-analysis findings are not re-examined here — they
  /// belong to Snapshot(). This is the per-statement hot path: O(rules) with
  /// O(1) aggregate lookups, independent of history length.
  Report Check(std::string_view sql);

  /// Full report over everything ingested so far: byte-identical to
  /// SqlCheck::Run() on the same statements, in the same order. Idempotent —
  /// the session remains usable (and appendable) afterwards.
  Report Snapshot();

  const Context& context() const { return context_; }
  const SqlCheckOptions& options() const { return options_; }
  size_t statement_count() const { return context_.statements_.size(); }
  /// Unique fingerprint groups seen (== statement_count() with dedup off).
  size_t unique_count() const { return context_.query_groups_.unique.size(); }
  /// Fix-cache telemetry: replays served from / entries added to the
  /// per-fingerprint-group fix cache (statement-local detection/action pairs
  /// only; workload-sensitive fixes always re-evaluate).
  size_t fix_cache_hits() const { return fix_cache_hits_; }
  size_t fix_cache_misses() const { return fix_cache_misses_; }
  /// Rewrite-verification telemetry (fix/verify.h): per-tier counts of the
  /// fixes this session suggested, demotions, differential-execution runs,
  /// and verification-memo hit rates. Counters accumulate across
  /// Check()/Snapshot() calls for the session's lifetime.
  const VerifyStats& verify_stats() const { return verify_stats_; }

  /// Would appending `incoming_bytes` of raw SQL breach SessionLimits? OK
  /// when every cap holds; otherwise an error naming the exhausted quota.
  /// The append paths consult this themselves — the public form lets a
  /// caller (the server) reject a request before paying for its parse.
  Status CheckQuota(size_t incoming_bytes) const;

  /// OK until an append was refused by SessionLimits; then the refusal
  /// reason, sticky until more room appears (it never does — caps only
  /// tighten as the session grows — so treat non-OK as terminal and either
  /// drop the tenant or start a fresh session). Snapshot()/Check() over the
  /// already-ingested history keep working either way.
  const Status& quota_status() const { return quota_status_; }

  /// Current memory/ingest accounting (see SessionUsage).
  SessionUsage Usage() const;

  /// Statements the *latest* append call (AddQuery/AddScript/Check) could
  /// not fully process: persistent faults, quarantine refusals, deadline
  /// expiries. Cleared at the start of each append. Capped at
  /// kMaxRecordedFailures entries per call so a mass expiry cannot balloon a
  /// response; quarantine/refusal side effects still apply past the cap.
  const std::vector<StatementFailure>& recent_failures() const { return failures_; }

  /// Wall-clock deadline for subsequent append work: once it passes, the
  /// remaining statements of the current (and any later) append are refused
  /// with a "deadline_exceeded" failure entry instead of being analyzed.
  /// Checked between statements — a single statement overruns by its own
  /// cost at most (pair with SqlCheckOptions::statement_budget_ms to
  /// quarantine the overrunner). The server arms this per request from
  /// --request-deadline-ms.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) { deadline_ = deadline; }
  void ClearDeadline() { deadline_.reset(); }

  /// Poisoned-statement quarantine telemetry (see QuarantineSet).
  size_t quarantine_size() const { return quarantine_.size(); }
  /// Statements quarantined over the session's lifetime.
  uint64_t statements_quarantined() const { return statements_quarantined_; }
  /// Appends refused by the O(1) quarantine probe (repeat offenders).
  uint64_t quarantine_refusals() const { return quarantine_refusals_; }
  /// Transient faults the append paths absorbed via retry — the statements
  /// involved landed normally (chaos-profile observability).
  uint64_t faults_recovered() const {
    return faults_recovered_.load(std::memory_order_relaxed);
  }

  /// Shard count the most recent AddScript actually ran with: 1 for serial
  /// ingestion (including small-script fallback), otherwise the resolved
  /// count after the auto clamp (ingest_parallelism <= 0 → hardware threads,
  /// never more) and the per-shard statement floor. Lets callers and tests
  /// observe that auto mode never oversubscribes the machine.
  int last_ingest_shards() const { return last_ingest_shards_; }

  /// Failure entries one append call records before capping (see
  /// recent_failures()).
  static constexpr size_t kMaxRecordedFailures = 64;

  /// Minimum statements a parallel-ingest shard must receive: below this the
  /// per-shard session + merge overhead dwarfs the parse work, so AddScript
  /// falls back to the serial path (and shard counts clamp so every shard
  /// meets the floor).
  static constexpr size_t kMinStatementsPerIngestShard = 16;

 private:
  /// Parse + memo retry budget under fault injection: a transient fault
  /// (arena_alloc, memo_insert) is retried this many times before the
  /// statement is declared poisoned and quarantined.
  static constexpr int kFaultRetryAttempts = 4;

  /// Appends `stmts` as one chunk: dedup bookkeeping serially, analysis and
  /// statement-local rule evaluation for new uniques sharded. Returns the
  /// index of the first appended statement. Fault-tolerant: a statement
  /// whose memo bookkeeping faults persistently is dropped + quarantined; a
  /// statement whose analysis faults persistently keeps empty facts (and is
  /// quarantined) — either way the chunk's other statements land normally.
  size_t IngestChunk(std::vector<sql::StatementPtr> stmts);

  /// Sharded bulk ingestion (the ingest_parallelism path of AddScript):
  /// `pieces` — the split statement texts, in script order — are divided
  /// into `shards` contiguous ranges; each range is parsed and ingested into
  /// a fresh per-shard session on a ThreadPool, then the shards fold into
  /// this session in order via MergeShard. Byte-identical to pushing the
  /// pieces through the serial path.
  void ParallelIngest(const std::vector<std::string_view>& pieces, int shards);

  /// Folds one ingestion shard into this session, in workload order:
  /// re-resolves the shard's fingerprint groups against this session's memos
  /// (cross-shard duplicates collapse exactly as serial ingestion would),
  /// moves statements/facts/cache rows over, replays DDL onto the catalog,
  /// merges the workload aggregates through the interner remap, and adopts
  /// the shard's arena so the moved parse trees stay valid. The shard is
  /// consumed.
  void MergeShard(AnalysisSession&& shard);

  /// Quota gate for every append path: true = proceed (bytes are charged),
  /// false = refused (quota_status_ records why, nothing is ingested).
  bool GateAppend(size_t incoming_bytes);

  /// True when the hardened (per-piece) append path must run: a deadline or
  /// statement budget is armed, the quarantine is non-empty, or failpoints
  /// are active. False = the historical bulk path, byte-for-byte.
  bool HardenedAppend() const;

  /// True once deadline_ has passed.
  bool DeadlineExpired() const;

  /// Quarantine key of a statement: fingerprint of its exact-canonical form
  /// (whitespace/case-insensitive), falling back to a hash of the raw bytes
  /// if canonicalization itself faults.
  static uint64_t QuarantineKey(std::string_view sql);

  /// Records a StatementFailure (thread-safe; capped, see
  /// kMaxRecordedFailures).
  void RecordFailure(std::string_view sql, const char* code, std::string message,
                     bool quarantined);

  /// Quarantines a statement's fingerprint (thread-safe).
  void Quarantine(std::string_view sql);

  /// O(1) repeat-offender probe; records the refusal when it hits.
  bool QuarantineRefused(std::string_view piece);

  /// ParseStatement with a kFaultRetryAttempts retry loop; nullptr + error
  /// message on persistent failure.
  sql::StatementPtr ParseWithRetry(std::string_view piece, std::string* error);

  /// Hardened single-piece append: parse-with-retry (quarantining a
  /// persistent failure), one-statement IngestChunk, statement-budget
  /// enforcement. True if the piece landed.
  bool IngestPiece(std::string_view piece);

  /// Parses pieces [begin, end) with retry and ingests them as one chunk —
  /// the per-shard body of ParallelIngest.
  void IngestRange(const std::vector<std::string_view>& pieces, size_t begin,
                   size_t end);

  /// Releases high-water lexer scratch after an append (see
  /// TokenBuffer::Trim) so one huge statement cannot pin megabytes of
  /// per-session scratch for the rest of a long-lived session.
  void TrimScratch();

  /// Fills cache slots for rules registered after row `u` was created (late
  /// RegisterRule); statement-local rules are context-free, so backfilling
  /// at any time yields what ingest-time evaluation would have.
  void EnsureCacheRow(size_t u);

  /// Appends group `u`'s detections in registry order: statement-local rules
  /// from the cache, workload rules evaluated fresh against the current
  /// context. Rows are disjoint, so concurrent calls on distinct `u` are
  /// safe.
  void AssembleGroupDetections(size_t u, std::vector<Detection>* out);

  /// ap-rank + ap-fix over an assembled detection stream. Non-const: fix
  /// suggestion funnels through the per-group fix cache.
  Report MakeReport(std::vector<Detection> detections);

  /// Cache-aware ap-fix for one ranked detection. Fixes whose detection half
  /// *and* action half are both statement-local (Rule::query_scope() and
  /// Fixer::fix_scope() == kStatementLocal) are computed once per unique
  /// fingerprint group and replayed for every duplicate occurrence with the
  /// anchor rebased onto the occurrence's raw text — exactly the detection
  /// cache's contract. Everything else (catalog-driven expansions,
  /// profile-driven DDL) re-evaluates against the current context, which is
  /// what keeps replayed fixes valid as the workload grows.
  Fix FixForDetection(const Detection& d, const FixEngine& engine);

  SqlCheckOptions options_;
  RuleRegistry registry_;
  Status status_;
  Status quota_status_;
  size_t ingested_bytes_ = 0;  ///< Raw SQL bytes accepted (quota accounting).
  Context context_;
  sql::TokenBuffer token_buffer_;  ///< Reused across every parse this session runs.

  /// Fingerprint memo (persists across calls): raw statement bytes -> group
  /// representative index, and exact-canonical form -> representative.
  /// Transparent hashing so the per-statement probe takes a view of the
  /// statement's own raw_sql — no temporary key string.
  std::unordered_map<std::string, size_t, StringViewHash, std::equal_to<>> raw_memo_;
  std::unordered_map<std::string, size_t, StringViewHash, std::equal_to<>> canonical_memo_;
  /// Representative statement index -> position in query_groups().unique.
  std::unordered_map<size_t, size_t> unique_pos_;

  /// Per unique group: per registry rule, the cached detections of every
  /// statement-local rule (workload-rule slots stay empty).
  std::vector<std::vector<std::vector<Detection>>> local_cache_;

  /// One statement-local fix, keyed by what distinguishes detections within
  /// a group (a rule may flag several columns of one statement).
  struct CachedFix {
    AntiPattern type;
    std::string table;
    std::string column;
    Fix fix;
  };
  /// Per unique group: cached fixes of statement-local detection/action
  /// pairs (parallel to local_cache_; grown per unique statement).
  std::vector<std::vector<CachedFix>> fix_cache_;
  size_t fix_cache_hits_ = 0;
  size_t fix_cache_misses_ = 0;

  /// Verification verdicts memoized across snapshots: each MakeReport builds
  /// a fresh FixEngine, but the engine writes its verdicts here, so a unique
  /// proposal pays the (Tier-3-expensive) pipeline once per session, not
  /// once per Snapshot(). Sound because verdicts are deterministic in the
  /// proposal + options, both session-constant. Tier-2 verdicts over
  /// *workload-sensitive* rules could in principle flip as the catalog
  /// grows; the memo key includes the original statement and the rewritten
  /// spelling, and catalog growth changes the rewritten spelling (expansions
  /// name the new columns), so stale entries are simply never probed again.
  VerifyMemo verify_memo_;
  VerifyStats verify_stats_;

  /// Robustness state (failure semantics documented in docs/OPERATIONS.md).
  QuarantineSet quarantine_;
  std::vector<StatementFailure> failures_;
  size_t failures_recorded_ = 0;  ///< Includes entries past the cap.
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  uint64_t statements_quarantined_ = 0;
  uint64_t quarantine_refusals_ = 0;
  std::atomic<uint64_t> faults_recovered_{0};
  int last_ingest_shards_ = 1;  ///< See last_ingest_shards().
  /// Guards failures_/quarantine_ mutation from analysis pool workers; the
  /// single-threaded probe/read paths run while no append is in flight.
  std::mutex failures_mu_;
};

}  // namespace sqlcheck
