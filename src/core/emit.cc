#include "core/emit.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>
#include <unordered_map>

namespace sqlcheck {

namespace {

const char* SourceName(DetectionSource source) {
  switch (source) {
    case DetectionSource::kIntraQuery: return "intra-query";
    case DetectionSource::kInterQuery: return "inter-query";
    case DetectionSource::kDataAnalysis: return "data-analysis";
  }
  return "unknown";
}

/// %.6g matches the precision ToText's ostream formatting uses, and always
/// yields a valid JSON number for the bounded [0, 1] scores.
std::string FormatScore(double score) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", score);
  return buffer;
}

size_t EmitLimit(const Report& report, const EmitOptions& options) {
  if (options.max_findings == 0) return report.findings.size();
  return std::min(options.max_findings, report.findings.size());
}

void AppendQuoted(std::ostringstream& out, std::string_view s) {
  out << '"' << JsonEscape(s) << '"';
}

/// The one finding serializer behind both renderings: pretty (`pretty` with
/// `pad` as the object's base indent — ToJson's result entries, byte-stable
/// and golden-tested) and compact (single line — the server's NDJSON finding
/// unit). Field set and ordering are identical by construction.
void AppendFindingObject(std::ostringstream& out, const Finding& f, size_t rank,
                         bool include_fixes, bool pretty, std::string_view pad) {
  const Detection& d = f.ranked.detection;
  const std::string nl = pretty ? "\n" : "";
  const std::string ind2 = pretty ? std::string(pad) + "  " : "";
  const std::string ind3 = pretty ? std::string(pad) + "    " : "";
  const char* comma = pretty ? "," : ", ";
  auto key = [&](const std::string& ind, const char* name, bool first) {
    out << (first ? "" : comma) << nl << ind << '"' << name << "\": ";
  };
  out << pad << "{";
  key(ind2, "rank", true);
  out << rank;
  key(ind2, "rule", false);
  AppendQuoted(out, ApName(d.type));
  key(ind2, "id", false);
  AppendQuoted(out, ApSlug(d.type));
  key(ind2, "category", false);
  AppendQuoted(out, CategoryName(InfoFor(d.type).category));
  key(ind2, "source", false);
  AppendQuoted(out, SourceName(d.source));
  key(ind2, "score", false);
  out << FormatScore(f.ranked.score);
  if (include_fixes) {
    key(ind2, "severity", false);
    AppendQuoted(out, SeverityName(ScoreSeverity(f.ranked.score)));
  }
  key(ind2, "table", false);
  AppendQuoted(out, d.table);
  key(ind2, "column", false);
  AppendQuoted(out, d.column);
  key(ind2, "query", false);
  AppendQuoted(out, d.query);
  key(ind2, "message", false);
  AppendQuoted(out, d.message);
  key(ind2, "fix", false);
  out << "{";
  key(ind3, "kind", true);
  out << '"' << (f.fix.kind == FixKind::kRewrite ? "rewrite" : "textual") << '"';
  key(ind3, "explanation", false);
  AppendQuoted(out, f.fix.explanation);
  key(ind3, "statements", false);
  out << "[";
  for (size_t s = 0; s < f.fix.statements.size(); ++s) {
    out << (s == 0 ? "" : ", ");
    AppendQuoted(out, f.fix.statements[s]);
  }
  out << "]";
  key(ind3, "impacted_queries", false);
  out << f.fix.impacted_queries.size();
  if (include_fixes) {
    // Extended diagnosis surface (--fixes): verification status, anchor,
    // and the impacted-query list itself.
    key(ind3, "verified", false);
    out << (f.fix.verified ? "true" : "false");
    key(ind3, "verify_tier", false);
    AppendQuoted(out, VerifyTierName(f.fix.verify_tier));
    key(ind3, "replaces_original", false);
    out << (f.fix.replaces_original ? "true" : "false");
    key(ind3, "verify_note", false);
    AppendQuoted(out, f.fix.verify_note);
    key(ind3, "anchor", false);
    AppendQuoted(out, f.fix.original_sql);
    key(ind3, "impacted", false);
    out << "[";
    for (size_t q = 0; q < f.fix.impacted_queries.size(); ++q) {
      out << (q == 0 ? "" : ", ");
      AppendQuoted(out, f.fix.impacted_queries[q]);
    }
    out << "]";
  }
  out << nl << ind2 << "}";
  out << nl << pad << "}";
}

/// Emits the SARIF 2.1.0 `fixes[]` member for one verified rewrite: one fix
/// with one artifactChange whose replacement region is located inside the
/// workload text. Statement-replacing rewrites delete the offending
/// statement's span (found by its exact bytes — statements are stored as
/// trimmed substrings of the source, so the match is the original span —
/// extended over the trailing `;` so the `;`-terminated rewrite drops in
/// without doubling the terminator); additive DDL inserts at end-of-artifact
/// (charLength 0). `cursors` tracks the next search position per
/// (rule, anchor) so repeated offending statements anchor to successive
/// occurrences instead of all deleting the first one — same-type duplicates
/// rank adjacently in stream order, so sequential assignment matches. Emits
/// nothing when the anchor cannot be located or no content was supplied.
void AppendSarifFixes(std::ostringstream& out, const Fix& fix,
                      const EmitOptions& options,
                      std::unordered_map<std::string, size_t>* cursors) {
  if (!options.include_fixes || fix.kind != FixKind::kRewrite || !fix.verified ||
      fix.statements.empty() || options.artifact_uri.empty() ||
      options.artifact_content.empty()) {
    return;
  }
  const std::string& content = options.artifact_content;
  size_t offset = 0;
  size_t length = 0;
  if (fix.replaces_original) {
    if (fix.original_sql.empty()) return;
    std::string key = std::to_string(static_cast<int>(fix.type));
    key += '\x1f';
    key += fix.original_sql;
    size_t& from = (*cursors)[key];
    offset = content.find(fix.original_sql, from);
    if (offset == std::string::npos) return;
    from = offset + 1;  // the next duplicate anchors to the next occurrence
    length = fix.original_sql.size();
    // Fold the statement's own terminator into the deleted region.
    size_t end = offset + length;
    while (end < content.size() &&
           std::isspace(static_cast<unsigned char>(content[end]))) {
      ++end;
    }
    if (end < content.size() && content[end] == ';') length = end - offset + 1;
  } else {
    offset = content.size();  // insertion point: end of file
  }
  std::string inserted;
  for (size_t s = 0; s < fix.statements.size(); ++s) {
    if (s > 0) inserted += "\n";
    inserted += fix.statements[s];
  }
  out << ",\n          \"fixes\": [\n            {\n";
  out << "              \"description\": { \"text\": ";
  AppendQuoted(out, fix.explanation);
  out << " },\n              \"properties\": { \"verify_tier\": ";
  AppendQuoted(out, VerifyTierName(fix.verify_tier));
  out << " },\n              \"artifactChanges\": [\n                {\n";
  out << "                  \"artifactLocation\": { \"uri\": ";
  AppendQuoted(out, options.artifact_uri);
  out << " },\n                  \"replacements\": [\n                    {\n";
  out << "                      \"deletedRegion\": { \"charOffset\": " << offset
      << ", \"charLength\": " << length << " },\n";
  out << "                      \"insertedContent\": { \"text\": ";
  AppendQuoted(out, inserted);
  out << " }\n                    }\n                  ]\n                }\n"
         "              ]\n            }\n          ]";
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out.push_back(c);  // UTF-8 bytes pass through untouched
        }
    }
  }
  return out;
}

std::string ApSlug(AntiPattern type) {
  std::string slug;
  for (char c : std::string_view(ApName(type))) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!slug.empty() && slug.back() != '-') {
      slug.push_back('-');
    }
  }
  if (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug;
}

std::string FindingToJsonLine(const Finding& finding, size_t rank, bool include_fixes) {
  std::ostringstream out;
  AppendFindingObject(out, finding, rank, include_fixes, /*pretty=*/false, "");
  return out.str();
}

std::string ToJson(const Report& report, const EmitOptions& options) {
  const size_t limit = EmitLimit(report, options);
  std::ostringstream out;
  out << "{\n";
  out << "  \"tool\": \"sqlcheck\",\n";
  out << "  \"findings\": " << report.findings.size() << ",\n";
  out << "  \"distinct_types\": " << report.DistinctTypes() << ",\n";
  out << "  \"results\": [";
  for (size_t i = 0; i < limit; ++i) {
    out << (i == 0 ? "\n" : ",\n");
    AppendFindingObject(out, report.findings[i], i + 1, options.include_fixes,
                        /*pretty=*/true, "    ");
  }
  out << (limit == 0 ? "]" : "\n  ]");
  if (limit < report.findings.size()) {
    out << ",\n  \"suppressed\": " << (report.findings.size() - limit);
  }
  out << "\n}\n";
  return out.str();
}

std::string ToSarif(const Report& report, const EmitOptions& options) {
  const size_t limit = EmitLimit(report, options);
  std::ostringstream out;
  out << "{\n";
  out << "  \"$schema\": "
         "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
         "Schemata/sarif-schema-2.1.0.json\",\n";
  out << "  \"version\": \"2.1.0\",\n";
  out << "  \"runs\": [\n";
  out << "    {\n";
  out << "      \"tool\": {\n";
  out << "        \"driver\": {\n";
  out << "          \"name\": \"sqlcheck\",\n";
  out << "          \"informationUri\": "
         "\"https://doi.org/10.1145/3318464.3389754\",\n";
  out << "          \"rules\": [";
  // The full catalog, in enum order, so result ruleIndex values are stable.
  for (int t = 0; t < kAntiPatternCount; ++t) {
    AntiPattern type = InfoFor(static_cast<AntiPattern>(t)).type;
    out << (t == 0 ? "\n" : ",\n");
    out << "            {\n";
    out << "              \"id\": ";
    AppendQuoted(out, ApSlug(type));
    out << ",\n              \"name\": ";
    AppendQuoted(out, ApName(type));
    out << ",\n              \"shortDescription\": { \"text\": ";
    AppendQuoted(out, ApName(type));
    out << " },\n              \"properties\": { \"category\": ";
    AppendQuoted(out, CategoryName(InfoFor(type).category));
    out << " }\n            }";
  }
  out << "\n          ]\n";
  out << "        }\n";
  out << "      },\n";
  out << "      \"results\": [";
  std::unordered_map<std::string, size_t> fix_cursors;
  for (size_t i = 0; i < limit; ++i) {
    const Finding& f = report.findings[i];
    const Detection& d = f.ranked.detection;
    out << (i == 0 ? "\n" : ",\n");
    out << "        {\n";
    out << "          \"ruleId\": ";
    AppendQuoted(out, ApSlug(d.type));
    out << ",\n          \"ruleIndex\": " << static_cast<int>(d.type);
    out << ",\n          \"level\": \"warning\"";
    out << ",\n          \"message\": { \"text\": ";
    std::string text = d.message;
    if (!d.query.empty()) text += " | query: " + d.query;
    AppendQuoted(out, text);
    out << " }";
    if (!d.table.empty() || !options.artifact_uri.empty()) {
      out << ",\n          \"locations\": [\n            {";
      bool first = true;
      if (!options.artifact_uri.empty()) {
        out << "\n              \"physicalLocation\": { \"artifactLocation\": "
               "{ \"uri\": ";
        AppendQuoted(out, options.artifact_uri);
        out << " } }";
        first = false;
      }
      if (!d.table.empty()) {
        out << (first ? "\n" : ",\n");
        out << "              \"logicalLocations\": [ { \"name\": ";
        AppendQuoted(out,
                     d.column.empty() ? d.table : d.table + "." + d.column);
        out << ", \"kind\": \"member\" } ]";
      }
      out << "\n            }\n          ]";
    }
    AppendSarifFixes(out, f.fix, options, &fix_cursors);
    out << ",\n          \"properties\": { \"score\": " << FormatScore(f.ranked.score)
        << ", \"source\": ";
    AppendQuoted(out, SourceName(d.source));
    out << " }\n        }";
  }
  out << (limit == 0 ? "]\n" : "\n      ]\n");
  out << "    }\n";
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

std::string Report::ToJson() const { return sqlcheck::ToJson(*this); }

std::string Report::ToSarif() const { return sqlcheck::ToSarif(*this); }

}  // namespace sqlcheck
