#include "core/options.h"

namespace sqlcheck {

SqlCheckOptions SqlCheckOptions::IntraQueryOnly() {
  SqlCheckOptions options;
  options.detector.intra_query = true;
  options.detector.inter_query = false;
  options.detector.data_analysis = false;
  return options;
}

SqlCheckOptions SqlCheckOptions::Full() { return SqlCheckOptions{}; }

SqlCheckOptions SqlCheckOptions::Parallel(int threads) {
  SqlCheckOptions options;
  options.parallelism = threads;
  options.ingest_parallelism = threads;
  return options;
}

}  // namespace sqlcheck
