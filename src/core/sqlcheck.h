#pragma once

#include <string>
#include <string_view>

#include "analysis/context.h"
#include "core/options.h"
#include "core/report.h"
#include "fix/repair_engine.h"
#include "rules/registry.h"
#include "storage/database.h"

namespace sqlcheck {

/// \brief The sqlcheck facade: find, rank, and fix anti-patterns in a
/// database application (the toolchain of §3).
///
/// Usage mirrors the paper's workflow:
/// \code
///   SqlCheck checker;  // or SqlCheck(SqlCheckOptions::Parallel()) for batches
///   checker.AddScript(application_sql);   // queries + DDL
///   checker.AttachDatabase(&db);          // optional: enables data analysis
///   Report report = checker.Run();
///   std::cout << report.ToText();
/// \endcode
class SqlCheck {
 public:
  explicit SqlCheck(SqlCheckOptions options = {});

  /// Adds one SQL statement from the application workload.
  void AddQuery(std::string_view sql_text);
  /// Adds a multi-statement script.
  void AddScript(std::string_view script);
  /// Connects the target database; profiled on Run() (the §4.2 data analyzer).
  void AttachDatabase(const Database* db);

  /// Registers a custom rule (extensibility hook of §7).
  void RegisterRule(std::unique_ptr<Rule> rule);

  /// Runs ap-detect -> ap-rank -> ap-fix and returns the ranked report.
  Report Run();

  const SqlCheckOptions& options() const { return options_; }

 private:
  SqlCheckOptions options_;
  ContextBuilder builder_;
  RuleRegistry registry_;
};

/// \brief One-shot convenience mirroring the paper's Python API
/// (`find_anti_patterns(query)`): checks a single statement in isolation.
Report FindAntiPatterns(std::string_view sql_text, const SqlCheckOptions& options = {});

}  // namespace sqlcheck
