#pragma once

#include <string>
#include <string_view>

#include "core/options.h"
#include "core/report.h"
#include "core/session.h"
#include "storage/database.h"

namespace sqlcheck {

/// \brief The sqlcheck facade: find, rank, and fix anti-patterns in a
/// database application (the toolchain of §3).
///
/// This is a thin batch wrapper over the incremental AnalysisSession —
/// Run() is session().Snapshot(), so batch reports are byte-identical to
/// feeding the same statements through a session one at a time.
///
/// Usage mirrors the paper's workflow:
/// \code
///   SqlCheck checker;  // or SqlCheck(SqlCheckOptions::Parallel()) for batches
///   checker.AddScript(application_sql);   // queries + DDL
///   checker.AttachDatabase(&db);          // optional: enables data analysis
///   Report report = checker.Run();
///   std::cout << report.ToText();
/// \endcode
class SqlCheck {
 public:
  explicit SqlCheck(SqlCheckOptions options = {});

  /// Adds one SQL statement from the application workload.
  void AddQuery(std::string_view sql_text);
  /// Adds a multi-statement script.
  void AddScript(std::string_view script);
  /// Connects the target database (the §4.2 data analyzer). Its schema and
  /// table profiles are captured at attach time — call again to re-profile
  /// if the data changes between attach and Run(). (The pre-incremental
  /// facade profiled lazily inside Run(); attach-time capture is what lets
  /// a long-lived session amortize profiling across many reports.)
  void AttachDatabase(const Database* db);

  /// Registers a custom rule (extensibility hook of §7).
  void RegisterRule(std::unique_ptr<Rule> rule);

  /// Runs ap-detect -> ap-rank -> ap-fix and returns the ranked report.
  /// Idempotent: statements may keep being added and Run() called again.
  Report Run();

  const SqlCheckOptions& options() const { return session_.options(); }

  /// The underlying incremental engine, for callers that outgrow batch mode.
  AnalysisSession& session() { return session_; }
  const AnalysisSession& session() const { return session_; }

 private:
  AnalysisSession session_;
};

/// \brief One-shot convenience mirroring the paper's Python API
/// (`find_anti_patterns(query)`): checks a single statement in isolation.
/// Routed through AnalysisSession, so it cannot drift from the batch or
/// streaming paths.
Report FindAntiPatterns(std::string_view sql_text, const SqlCheckOptions& options = {});

}  // namespace sqlcheck
