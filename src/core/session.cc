#include "core/session.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "analysis/query_analyzer.h"
#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "fix/fix_engine.h"
#include "fix/fixer.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"
#include "sql/splitter.h"

namespace sqlcheck {

AnalysisSession::AnalysisSession(SqlCheckOptions options)
    : options_(std::move(options)),
      registry_(RuleRegistry::Default()),
      quarantine_(options_.quarantine_capacity) {
  status_ = registry_.Disable(options_.disabled_rules);
}

void AnalysisSession::AttachDatabase(const Database* db) {
  context_.database_ = db;
  if (db != nullptr) {
    context_.catalog_ = db->BuildCatalog();
    context_.data_ = AnalyzeDatabase(*db, options_.data_analyzer);
  } else {
    context_.catalog_ = Catalog();
    context_.data_ = DataContext();
  }
  // Workload DDL layers on top of the database schema, exactly as a batch
  // build orders it — so attaching late reproduces attaching first.
  for (const auto& stmt : context_.statements_) {
    context_.catalog_.ApplyDdl(*stmt);
  }
}

void AnalysisSession::RegisterRule(std::unique_ptr<Rule> rule) {
  registry_.Register(std::move(rule));
}

namespace {

/// Scratch (TokenBuffer) reservation above which the post-append trim kicks
/// in: steady-state statements stay far below this, so only a pathological
/// one-off statement ever pays the trim/regrow cycle.
constexpr size_t kScratchTrimBytes = 1 << 20;

/// Reserves room for `extra` more elements without defeating geometric
/// growth: a bare reserve(size()+1) on every chunk-of-1 append would
/// reallocate-and-copy the whole vector each time, turning a
/// statement-at-a-time session O(n^2).
template <typename Vec>
void GrowFor(Vec& v, size_t extra) {
  const size_t need = v.size() + extra;
  if (need > v.capacity()) v.reserve(std::max(need, v.capacity() * 2));
}

}  // namespace

Status AnalysisSession::CheckQuota(size_t incoming_bytes) const {
  // Framing-level guard before the quota math: Token stores u32 source
  // offsets (sql/token.h), so one Lex() pass — and hence one append — is
  // capped at 4 GiB of SQL. Nothing real approaches this; it exists so the
  // narrowing is provably safe even against adversarial input.
  if (incoming_bytes > sql::kMaxLexBytes) {
    return Status::Error("single append exceeds the 4 GiB lexer span limit");
  }
  const SessionLimits& limits = options_.limits;
  if (limits.unlimited()) return Status::Ok();
  if (limits.max_statements != 0 &&
      context_.statements_.size() >= limits.max_statements) {
    return Status::Error("statement quota exhausted (max_statements=" +
                         std::to_string(limits.max_statements) + ")");
  }
  if (limits.max_ingest_bytes != 0 &&
      ingested_bytes_ + incoming_bytes > limits.max_ingest_bytes) {
    return Status::Error("ingest byte quota exhausted (max_ingest_bytes=" +
                         std::to_string(limits.max_ingest_bytes) + ")");
  }
  if (limits.arena_cap_bytes != 0 &&
      context_.arena_reserved_bytes() >= limits.arena_cap_bytes) {
    return Status::Error("session arena cap reached (arena_cap_bytes=" +
                         std::to_string(limits.arena_cap_bytes) + ")");
  }
  if (limits.interner_cap_names != 0 &&
      context_.names().size() >= limits.interner_cap_names) {
    return Status::Error("interner name cap reached (interner_cap_names=" +
                         std::to_string(limits.interner_cap_names) + ")");
  }
  return Status::Ok();
}

SessionUsage AnalysisSession::Usage() const {
  SessionUsage usage;
  usage.statements = context_.statements_.size();
  usage.unique_groups = context_.query_groups_.unique.size();
  usage.ingested_bytes = ingested_bytes_;
  usage.arena_reserved_bytes = context_.arena_reserved_bytes();
  usage.arena_used_bytes = context_.arena_used_bytes();
  usage.scratch_reserved_bytes = token_buffer_.reserved_bytes();
  usage.interner_names = context_.names().size();
  usage.interner_bytes = context_.names().memory_bytes();
  return usage;
}

bool AnalysisSession::HardenedAppend() const {
  return deadline_.has_value() || options_.statement_budget_ms > 0 ||
         !quarantine_.empty() || AnyFailpointArmed();
}

bool AnalysisSession::DeadlineExpired() const {
  return deadline_.has_value() && std::chrono::steady_clock::now() >= *deadline_;
}

uint64_t AnalysisSession::QuarantineKey(std::string_view sql) {
  // Key computation runs with injected faults suspended: the insert (made
  // while a chaos profile is firing) and the later repeat-offender probe
  // (typically after faults clear) must derive the same key, or the
  // quarantine never matches. Real faults still hit the raw-bytes fallback.
  FailpointScopeSuspend no_faults;
  try {
    return sql::FingerprintCanonical(
        sql::CanonicalizeSql(sql, sql::FingerprintOptions::Exact()));
  } catch (const std::exception&) {
    // Canonicalization itself faulted — key the raw bytes (FNV-1a is what
    // FingerprintCanonical applies to its input anyway). A cosmetic variant
    // of the same poison then re-quarantines under its own key, which is
    // correct, just slower.
    return sql::FingerprintCanonical(sql);
  }
}

void AnalysisSession::RecordFailure(std::string_view sql, const char* code,
                                    std::string message, bool quarantined) {
  std::lock_guard<std::mutex> lock(failures_mu_);
  ++failures_recorded_;
  if (failures_.size() >= kMaxRecordedFailures) return;
  StatementFailure failure;
  failure.sql = std::string(sql);
  failure.code = code;
  failure.message = std::move(message);
  failure.quarantined = quarantined;
  failures_.push_back(std::move(failure));
}

void AnalysisSession::Quarantine(std::string_view sql) {
  std::lock_guard<std::mutex> lock(failures_mu_);
  quarantine_.Insert(QuarantineKey(sql));
  ++statements_quarantined_;
}

bool AnalysisSession::QuarantineRefused(std::string_view piece) {
  if (quarantine_.empty()) return false;
  if (!quarantine_.Touch(QuarantineKey(piece))) return false;
  ++quarantine_refusals_;
  RecordFailure(piece, "internal_error",
                "statement fingerprint is quarantined (repeat offender); "
                "reset the session to clear the quarantine",
                /*quarantined=*/true);
  return true;
}

sql::StatementPtr AnalysisSession::ParseWithRetry(std::string_view piece,
                                                  std::string* error) {
  for (int attempt = 0; attempt < kFaultRetryAttempts; ++attempt) {
    try {
      FailpointScope fault_scope;  // parse allocations are a chaos seam
      sql::StatementPtr stmt =
          sql::ParseStatement(piece, context_.arena(), &token_buffer_);
      if (attempt > 0) faults_recovered_.fetch_add(1, std::memory_order_relaxed);
      return stmt;
    } catch (const std::exception& e) {
      *error = e.what();
    }
  }
  return nullptr;
}

bool AnalysisSession::IngestPiece(std::string_view piece) {
  const auto start = std::chrono::steady_clock::now();
  std::string error;
  sql::StatementPtr stmt = ParseWithRetry(piece, &error);
  if (stmt == nullptr) {
    Quarantine(piece);
    RecordFailure(piece, "internal_error",
                  "statement parse failed persistently (" + error +
                      "); fingerprint quarantined",
                  /*quarantined=*/true);
    return false;
  }
  const size_t before = context_.statements_.size();
  std::vector<sql::StatementPtr> chunk;
  chunk.push_back(std::move(stmt));
  IngestChunk(std::move(chunk));
  if (context_.statements_.size() == before) return false;  // dropped (recorded)
  if (options_.statement_budget_ms > 0) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    if (elapsed > options_.statement_budget_ms) {
      // The statement landed (its results are valid) but blew its budget:
      // quarantine the fingerprint so its repeats are refused in O(1).
      Quarantine(piece);
      RecordFailure(piece, "deadline_exceeded",
                    "statement took " + std::to_string(elapsed) +
                        "ms against a " +
                        std::to_string(options_.statement_budget_ms) +
                        "ms budget; fingerprint quarantined (statement was "
                        "ingested)",
                    /*quarantined=*/true);
    }
  }
  return true;
}

size_t AnalysisSession::AddQuery(std::string_view sql_text) {
  failures_.clear();
  if (!GateAppend(sql_text.size())) return 0;
  const size_t first = context_.statements_.size();
  if (!HardenedAppend()) {
    std::vector<sql::StatementPtr> stmts;
    stmts.push_back(sql::ParseStatement(sql_text, context_.arena(), &token_buffer_));
    IngestChunk(std::move(stmts));
    TrimScratch();
    return first;
  }
  if (!QuarantineRefused(sql_text)) IngestPiece(sql_text);
  TrimScratch();
  return first;
}

size_t AnalysisSession::AddScript(std::string_view script) {
  failures_.clear();
  if (!GateAppend(script.size())) return 0;
  const size_t first = context_.statements_.size();
  const int requested = ThreadPool::ResolveParallelism(options_.ingest_parallelism);
  last_ingest_shards_ = 1;  // Updated below if a sharded path runs.

  if (!HardenedAppend()) {
    // The historical bulk path, untouched: no deadline, no budget, empty
    // quarantine, no armed failpoints — nothing to probe or recover, so pay
    // zero robustness overhead.
    if (requested > 1) {
      // Split once up front (the splitter returns trimmed, non-empty views
      // into `script` — exactly the pieces ParseScript would parse), then
      // either shard the parse+analyze work or fall back to serial when the
      // script is too small to amortize a shard.
      std::vector<std::string_view> pieces =
          sql::SplitStatements(script, nullptr, &token_buffer_);
      const int shards = static_cast<int>(std::min<size_t>(
          static_cast<size_t>(requested), pieces.size() / kMinStatementsPerIngestShard));
      if (shards > 1) {
        last_ingest_shards_ = shards;
        ParallelIngest(pieces, shards);
        TrimScratch();
        return context_.statements_.size() - first;
      }
      std::vector<sql::StatementPtr> stmts;
      stmts.reserve(pieces.size());
      for (std::string_view piece : pieces) {
        stmts.push_back(sql::ParseStatement(piece, context_.arena(), &token_buffer_));
      }
      IngestChunk(std::move(stmts));
      TrimScratch();
      return context_.statements_.size() - first;
    }
    std::vector<sql::StatementPtr> stmts =
        sql::ParseScript(script, context_.arena(), &token_buffer_);
    IngestChunk(std::move(stmts));
    TrimScratch();
    return context_.statements_.size() - first;
  }

  // Hardened path: statement-at-a-time so every piece gets its own probe,
  // deadline check, retry budget, and wall-clock attribution. Identical
  // output to the bulk path when nothing fires — appending statements in N
  // chunks of 1 reproduces one chunk of N (the chunk-identity contract
  // tests/test_session.cc enforces). Failpoint scopes open only inside the
  // retry-protected regions (the split below, ParseWithRetry, IngestChunk's
  // memo and analysis loops) — an injected fault can never land on
  // bookkeeping that has no recovery story.
  std::vector<std::string_view> pieces;
  {
    std::string split_error;
    bool split_ok = false;
    for (int attempt = 0; attempt < kFaultRetryAttempts && !split_ok; ++attempt) {
      try {
        FailpointScope fault_scope;
        pieces = sql::SplitStatements(script, nullptr, &token_buffer_);
        split_ok = true;
        if (attempt > 0) faults_recovered_.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::exception& e) {
        split_error = e.what();
      }
    }
    if (!split_ok) {
      RecordFailure(script.substr(0, 256), "internal_error",
                    "script split failed persistently (" + split_error + ")",
                    /*quarantined=*/false);
      return 0;
    }
  }

  // Sharded bulk load still applies when only fault tolerance (not
  // per-statement timing) is needed: pre-filter quarantined pieces, then
  // let the shard sessions absorb faults locally and fold their quarantine
  // state back in MergeShard.
  if (!deadline_.has_value() && options_.statement_budget_ms == 0 && requested > 1) {
    std::vector<std::string_view> kept;
    kept.reserve(pieces.size());
    for (std::string_view piece : pieces) {
      if (!QuarantineRefused(piece)) kept.push_back(piece);
    }
    const int shards = static_cast<int>(std::min<size_t>(
        static_cast<size_t>(requested), kept.size() / kMinStatementsPerIngestShard));
    if (shards > 1) {
      last_ingest_shards_ = shards;
      ParallelIngest(kept, shards);
      TrimScratch();
      return context_.statements_.size() - first;
    }
    for (std::string_view piece : kept) IngestPiece(piece);
    TrimScratch();
    return context_.statements_.size() - first;
  }

  for (std::string_view piece : pieces) {
    if (DeadlineExpired()) {
      RecordFailure(piece, "deadline_exceeded",
                    "request deadline expired before this statement",
                    /*quarantined=*/false);
      continue;
    }
    if (QuarantineRefused(piece)) continue;
    IngestPiece(piece);
  }
  TrimScratch();
  return context_.statements_.size() - first;
}

void AnalysisSession::ParallelIngest(const std::vector<std::string_view>& pieces,
                                     int shards) {
  // Shard sessions share this session's analysis configuration (dedup mode,
  // detector thresholds, disabled rules — the registry prefix must match for
  // cache-row transfer) but run serial inside, carry no quotas (the owner
  // gated the whole script already), and skip the fix machinery (shards
  // never produce reports).
  SqlCheckOptions shard_options = options_;
  shard_options.parallelism = 1;
  shard_options.ingest_parallelism = 1;
  shard_options.suggest_fixes = false;
  shard_options.verify_exec = ExecVerifyOptions{};
  shard_options.limits = SessionLimits{};

  std::vector<std::unique_ptr<AnalysisSession>> workers;
  workers.reserve(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    workers.push_back(std::make_unique<AnalysisSession>(shard_options));
  }

  // Contiguous shards in script order: each worker parses into its own
  // arena and interns into its own name table, completely lock-free.
  ThreadPool pool(shards);
  ParallelShards(
      pieces.size(), shards,
      [&workers, &pieces](int shard, size_t begin, size_t end) {
        // Pool tasks must not throw: IngestRange absorbs parse faults into
        // the shard's own failure log, which MergeShard folds back (its
        // internals open their own failpoint scopes where they can recover).
        workers[shard]->IngestRange(pieces, begin, end);
      },
      &pool);

  // Serial fold, in shard order — which is script order, so the merged
  // session reproduces serial ingestion exactly.
  for (auto& worker : workers) MergeShard(std::move(*worker));
}

void AnalysisSession::IngestRange(const std::vector<std::string_view>& pieces,
                                  size_t begin, size_t end) {
  std::vector<sql::StatementPtr> stmts;
  stmts.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    std::string error;
    sql::StatementPtr stmt = ParseWithRetry(pieces[i], &error);
    if (stmt == nullptr) {
      Quarantine(pieces[i]);
      RecordFailure(pieces[i], "internal_error",
                    "statement parse failed persistently (" + error +
                        "); fingerprint quarantined",
                    /*quarantined=*/true);
      continue;
    }
    stmts.push_back(std::move(stmt));
  }
  IngestChunk(std::move(stmts));
}

void AnalysisSession::MergeShard(AnalysisSession&& shard) {
  // Robustness state folds first — a shard whose every statement failed
  // carries failures and quarantine entries but zero statements, and those
  // must survive the early return below. MergeShard runs serially on the
  // owner thread (after the pool drained), but RecordFailure's mutex still
  // guards the owner-side containers for uniformity.
  {
    std::lock_guard<std::mutex> lock(failures_mu_);
    failures_recorded_ += shard.failures_recorded_;
    for (auto& failure : shard.failures_) {
      if (failures_.size() >= kMaxRecordedFailures) break;
      failures_.push_back(std::move(failure));
    }
    // Keys() lists most-recent first; insert oldest-first so the owner's
    // LRU ends up with the same recency order the shard observed.
    std::vector<uint64_t> keys = shard.quarantine_.Keys();
    for (auto it = keys.rbegin(); it != keys.rend(); ++it) {
      quarantine_.Insert(*it);
    }
    statements_quarantined_ += shard.statements_quarantined_;
    quarantine_refusals_ += shard.quarantine_refusals_;
  }
  faults_recovered_.fetch_add(
      shard.faults_recovered_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);

  Context& sc = shard.context_;
  const size_t base = context_.statements_.size();
  const size_t n = sc.statements_.size();
  if (n == 0) return;

  // The merge loop is the serial section of sharded ingestion — every
  // reallocation or avoidable hash probe in it eats directly into the
  // Amdahl budget, so all destination containers are sized up front.
  context_.statements_.reserve(base + n);
  context_.query_facts_.reserve(base + n);
  context_.query_groups_.representative.reserve(base + n);
  context_.query_groups_.fingerprints.reserve(base + n);

  // Index the shard's canonical-memo nodes by their representative so the
  // canonical strings move (not copy) into this session's memo when their
  // group turns out to be new.
  using MemoNode =
      std::unordered_map<std::string, size_t, StringViewHash, std::equal_to<>>::node_type;
  std::unordered_map<size_t, MemoNode> canon_nodes;
  canon_nodes.reserve(shard.canonical_memo_.size());
  while (!shard.canonical_memo_.empty()) {
    MemoNode node = shard.canonical_memo_.extract(shard.canonical_memo_.begin());
    const size_t rep = node.mapped();
    canon_nodes.emplace(rep, std::move(node));
  }
  QueryGroups& groups = context_.query_groups_;
  canonical_memo_.reserve(canonical_memo_.size() + canon_nodes.size());
  // The shard's unique list is ascending in statement index, so a cursor
  // replaces a hash lookup per locally-unique statement.
  size_t local_u = 0;
  std::vector<size_t> global_rep(n);
  for (size_t i = 0; i < n; ++i) {
    sql::StatementPtr stmt = std::move(sc.statements_[i]);
    const size_t gi = base + i;
    context_.catalog_.ApplyDdl(*stmt);  // workload order, exactly as serial

    size_t rep = gi;
    size_t cache_row = 0;  // shard.local_cache_ row when locally unique
    if (options_.dedup_queries) {
      const size_t local_rep = sc.query_groups_.representative[i];
      if (local_rep != i) {
        rep = global_rep[local_rep];  // the shard resolved it; remap to global
      } else {
        cache_row = local_u++;
        auto raw_it = raw_memo_.find(std::string_view(stmt->raw_sql));
        if (raw_it != raw_memo_.end()) {
          rep = raw_it->second;
        } else {
          // First time this raw spelling crosses the session: resolve by the
          // canonical form the shard already computed, inserting its memo
          // node when the group is new. On a cross-shard canonical collision
          // the existing (earlier) representative wins, as serial order
          // demands. Raw-spelling entries merge wholesale below.
          MemoNode& node = canon_nodes.at(i);
          node.mapped() = gi;
          auto ins = canonical_memo_.insert(std::move(node));
          rep = ins.position->second;
        }
      }
      global_rep[i] = rep;
      groups.representative.push_back(rep);
      groups.fingerprints.push_back(sc.query_groups_.fingerprints[i]);
    } else {
      cache_row = local_u++;
      global_rep[i] = gi;
      groups.representative.push_back(gi);
    }

    // The shard analyzed (or rebased) these facts for this very statement —
    // exactly what serial ingestion attaches to it.
    context_.query_facts_.push_back(std::move(sc.query_facts_[i]));
    if (rep == gi) {
      unique_pos_.emplace(gi, groups.unique.size());
      groups.unique.push_back(gi);
      local_cache_.push_back(std::move(shard.local_cache_[cache_row]));
      fix_cache_.emplace_back();  // shards never run ap-fix
    }
    context_.statements_.push_back(std::move(stmt));
  }

  // Raw-spelling memo: remap shard values to global representatives; the
  // keys (statement bytes) move over node-by-node. Spellings this session
  // already knew keep their existing, earlier representative.
  raw_memo_.reserve(raw_memo_.size() + shard.raw_memo_.size());
  while (!shard.raw_memo_.empty()) {
    MemoNode node = shard.raw_memo_.extract(shard.raw_memo_.begin());
    node.mapped() = global_rep[node.mapped()];
    raw_memo_.insert(std::move(node));
  }

  // Workload aggregates fold through the interner remap. Merging contiguous
  // shards in order reproduces the serial fold exactly — including the
  // NameId assignment, since a shard's first-intern order is the serial
  // first-intern order restricted to its statements.
  context_.stats_.MergeFrom(sc.stats_, base);

  // The moved parse trees (and their pmr raw_sql payloads) live in the
  // shard's arena — adopt it so they outlive the shard. The shard's lexer
  // scratch, catalog, and interner die with it.
  context_.adopted_arenas_.push_back(std::move(sc.arena_));
}

void AnalysisSession::AddStatement(sql::StatementPtr stmt) {
  if (!GateAppend(stmt->raw_sql.size())) return;
  std::vector<sql::StatementPtr> stmts;
  stmts.push_back(std::move(stmt));
  IngestChunk(std::move(stmts));
}

bool AnalysisSession::GateAppend(size_t incoming_bytes) {
  Status quota = CheckQuota(incoming_bytes);
  if (!quota.ok()) {
    quota_status_ = std::move(quota);
    return false;
  }
  ingested_bytes_ += incoming_bytes;
  return true;
}

void AnalysisSession::TrimScratch() {
  if (token_buffer_.reserved_bytes() > kScratchTrimBytes) token_buffer_.Trim();
}

size_t AnalysisSession::IngestChunk(std::vector<sql::StatementPtr> stmts) {
  const size_t first = context_.statements_.size();
  if (stmts.empty()) return first;

  QueryGroups& groups = context_.query_groups_;
  std::vector<size_t> new_uniques;  // unique-list positions added by this chunk

  // Size everything for the whole chunk up front: the per-statement pushes
  // below then cannot throw, so a memo-stage fault (the only fallible step
  // in the serial pass) always observes a fully consistent session.
  GrowFor(context_.statements_, stmts.size());
  GrowFor(context_.query_facts_, stmts.size());
  GrowFor(groups.representative, stmts.size());
  GrowFor(groups.fingerprints, stmts.size());
  GrowFor(groups.unique, stmts.size());
  GrowFor(local_cache_, stmts.size());
  GrowFor(fix_cache_, stmts.size());
  new_uniques.reserve(stmts.size());

  // Serial pass: dedup bookkeeping, catalog, slot allocation. The memos make
  // a repeated statement cost one hash lookup here.
  for (auto& stmt : stmts) {
    const size_t i = context_.statements_.size();

    size_t rep = i;
    uint64_t fingerprint = 0;
    if (options_.dedup_queries) {
      // The memo stage allocates (canonical string + two hash-table nodes),
      // so it can fault — for real under memory pressure, on demand under
      // the memo_insert failpoint. It retries with rollback: if the raw-
      // spelling insert fails after the canonical node landed, the canonical
      // entry is erased before the retry, so no memo ever points at a
      // statement slot that is never filled.
      bool memo_ok = false;
      std::string memo_error;
      for (int attempt = 0; attempt < kFaultRetryAttempts && !memo_ok; ++attempt) {
        try {
          FailpointScope fault_scope;  // memo allocations are a chaos seam
          rep = i;
          auto raw_it = raw_memo_.find(std::string_view(stmt->raw_sql));
          if (raw_it != raw_memo_.end()) {
            rep = raw_it->second;
            fingerprint = groups.fingerprints[rep];
          } else {
            if (SQLCHECK_SCOPED_FAILPOINT("memo_insert")) throw std::bad_alloc();
            std::string canonical =
                sql::CanonicalizeSql(stmt->raw_sql, sql::FingerprintOptions::Exact());
            fingerprint = sql::FingerprintCanonical(canonical);
            auto [canon_it, inserted] =
                canonical_memo_.try_emplace(std::move(canonical), i);
            rep = canon_it->second;
            try {
              raw_memo_.emplace(std::string(stmt->raw_sql), rep);
            } catch (...) {
              if (inserted) canonical_memo_.erase(canon_it);
              throw;
            }
          }
          memo_ok = true;
          if (attempt > 0) faults_recovered_.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception& e) {
          memo_error = e.what();
        }
      }
      if (!memo_ok) {
        // Persistent fault: drop the statement whole — it never touched the
        // catalog, the group tables, or the aggregates, so the session is
        // byte-identical to one that never saw it.
        Quarantine(stmt->raw_sql);
        RecordFailure(stmt->raw_sql, "internal_error",
                      "statement bookkeeping failed persistently (" + memo_error +
                          "); fingerprint quarantined",
                      /*quarantined=*/true);
        continue;
      }
      groups.representative.push_back(rep);
      groups.fingerprints.push_back(fingerprint);
    } else {
      groups.representative.push_back(i);
    }
    // Catalog mutation comes after the fallible memo stage on purpose: a
    // dropped statement must not leave DDL side effects behind.
    context_.catalog_.ApplyDdl(*stmt);  // ignores DML; duplicate DDL is a no-op
    if (rep == i) {
      unique_pos_.emplace(i, groups.unique.size());
      new_uniques.push_back(groups.unique.size());
      groups.unique.push_back(i);
      local_cache_.emplace_back();
      fix_cache_.emplace_back();
    }
    context_.statements_.push_back(std::move(stmt));
    context_.query_facts_.emplace_back();
  }

  const size_t n = context_.statements_.size();
  int threads = ThreadPool::ResolveParallelism(options_.parallelism);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1 && new_uniques.size() > 1) {
    pool = std::make_unique<ThreadPool>(threads);
  }

  // Analyze each new unique statement (sharded — analysis is independent per
  // statement) and pre-evaluate its statement-local rules into the cache.
  // Pool tasks must not throw, so each statement's analysis retries in-lambda;
  // a persistent fault degrades that one statement to empty facts and a
  // full-but-empty cache row (so later lazy passes don't re-run it), and the
  // statement's fingerprint is quarantined.
  ParallelShards(
      new_uniques.size(), threads,
      [this, &new_uniques](int /*shard*/, size_t begin, size_t end) {
        const size_t rule_count = registry_.rules().size();
        for (size_t x = begin; x < end; ++x) {
          size_t u = new_uniques[x];
          size_t i = context_.query_groups_.unique[u];
          for (int attempt = 0;; ++attempt) {
            try {
              // thread_local scope, (re)opened per worker — and only around
              // the retried analysis, so the catch's recovery bookkeeping
              // cannot itself draw an injected fault.
              FailpointScope fault_scope;
              context_.query_facts_[i] = AnalyzeQuery(*context_.statements_[i]);
              EnsureCacheRow(u);
              if (attempt > 0) {
                faults_recovered_.fetch_add(1, std::memory_order_relaxed);
              }
              break;
            } catch (const std::exception& e) {
              // EnsureCacheRow may have resized the row before throwing —
              // clear it so the retry (or the terminal assign) starts clean
              // instead of early-returning on a half-filled row.
              local_cache_[u].clear();
              if (attempt + 1 < kFaultRetryAttempts) continue;
              context_.query_facts_[i] = QueryFacts{};
              local_cache_[u].assign(rule_count, {});
              Quarantine(context_.statements_[i]->raw_sql);
              RecordFailure(context_.statements_[i]->raw_sql, "internal_error",
                            std::string("statement analysis failed persistently (") +
                                e.what() + "); findings unavailable, fingerprint "
                                "quarantined",
                            /*quarantined=*/true);
              break;
            }
          }
        }
      },
      pool.get());

  // Duplicates take a copy of their group's facts rebased onto their own raw
  // text and parse tree, then everything folds into the workload aggregates
  // in workload order.
  for (size_t i = first; i < n; ++i) {
    size_t rep = context_.query_groups_.representative[i];
    if (rep != i) {
      context_.query_facts_[i] =
          RebaseFacts(context_.query_facts_[rep], *context_.statements_[i]);
    }
    context_.stats_.AddStatementFacts(i, context_.query_facts_[i]);
  }
  return first;
}

void AnalysisSession::EnsureCacheRow(size_t u) {
  const auto& rules = registry_.rules();
  std::vector<std::vector<Detection>>& row = local_cache_[u];
  if (row.size() >= rules.size()) return;
  const size_t i = context_.query_groups_.unique[u];
  const QueryFacts& facts = context_.query_facts_[i];
  size_t from = row.size();
  row.resize(rules.size());
  for (size_t r = from; r < rules.size(); ++r) {
    if (rules[r]->query_scope() != QueryRuleScope::kStatementLocal) continue;
    rules[r]->CheckQuery(facts, context_, options_.detector, &row[r]);
  }
}

void AnalysisSession::AssembleGroupDetections(size_t u, std::vector<Detection>* out) {
  EnsureCacheRow(u);
  const auto& rules = registry_.rules();
  const size_t i = context_.query_groups_.unique[u];
  const QueryFacts& facts = context_.query_facts_[i];
  const std::vector<std::vector<Detection>>& row = local_cache_[u];
  // Pre-size from the known cache-row counts so replaying the cached
  // statement-local detections never regrows the buffer mid-assembly.
  size_t cached = 0;
  for (const auto& slot : row) cached += slot.size();
  out->reserve(out->size() + cached);
  for (size_t r = 0; r < rules.size(); ++r) {
    if (rules[r]->query_scope() == QueryRuleScope::kStatementLocal) {
      out->insert(out->end(), row[r].begin(), row[r].end());
    } else {
      rules[r]->CheckQuery(facts, context_, options_.detector, out);
    }
  }
}

Report AnalysisSession::Check(std::string_view sql) {
  const size_t first = context_.statements_.size();
  AddScript(sql);
  const size_t n = context_.statements_.size();

  std::vector<Detection> detections;
  for (size_t i = first; i < n; ++i) {
    size_t rep = context_.query_groups_.representative[i];
    std::vector<Detection> buffer;
    AssembleGroupDetections(unique_pos_.at(rep), &buffer);
    if (rep == i) {
      for (auto& d : buffer) detections.push_back(std::move(d));
      continue;
    }
    for (auto& d : buffer) {
      detections.push_back(RebaseDetection(std::move(d), context_.query_facts_[rep],
                                           context_.query_facts_[i]));
    }
  }
  return MakeReport(std::move(detections));
}

Report AnalysisSession::Snapshot() {
  const size_t unique_count = context_.query_groups_.unique.size();
  int threads = ThreadPool::ResolveParallelism(options_.parallelism);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  // Per-group buffers assemble in shards (cache rows are disjoint, workload
  // rules are stateless/const); the shared fan-out then reproduces the
  // serial batch stream byte-for-byte.
  std::vector<std::vector<Detection>> per_group(unique_count);
  ParallelShards(
      unique_count, threads,
      [this, &per_group](int /*shard*/, size_t begin, size_t end) {
        for (size_t u = begin; u < end; ++u) {
          AssembleGroupDetections(u, &per_group[u]);
        }
      },
      pool.get());

  std::vector<Detection> data_detections =
      DetectDataAntiPatterns(context_, registry_, options_.detector);
  return MakeReport(FanOutDetections(context_, context_.query_groups_,
                                     std::move(per_group), std::move(data_detections)));
}

Report AnalysisSession::MakeReport(std::vector<Detection> detections) {
  // ap-rank (§5).
  RankingModel model(options_.ranking_weights, options_.ranking_mode);
  std::vector<RankedDetection> ranked = model.Rank(std::move(detections));

  // ap-fix (§6): per-rule fixers + verification, attached in rank order so
  // fixes surface with the impact model's ordering.
  FixEngine engine(registry_, options_.detector, options_.verify_exec,
                   &verify_memo_, &verify_stats_);
  Report report;
  report.findings.reserve(ranked.size());
  for (auto& r : ranked) {
    Finding finding;
    if (options_.suggest_fixes) finding.fix = FixForDetection(r.detection, engine);
    finding.ranked = std::move(r);
    report.findings.push_back(std::move(finding));
  }
  return report;
}

Fix AnalysisSession::FixForDetection(const Detection& d, const FixEngine& engine) {
  const Fixer* fixer = registry_.FindFixer(d.type);
  const Rule* rule = registry_.FindRule(d.type);
  bool cacheable = options_.dedup_queries && !d.query.empty() && fixer != nullptr &&
                   fixer->fix_scope() == QueryRuleScope::kStatementLocal &&
                   rule != nullptr &&
                   rule->query_scope() == QueryRuleScope::kStatementLocal;
  if (!cacheable) return engine.SuggestFix(d, context_);
  auto raw_it = raw_memo_.find(std::string_view(d.query));
  if (raw_it == raw_memo_.end()) return engine.SuggestFix(d, context_);
  const size_t u = unique_pos_.at(raw_it->second);
  for (const CachedFix& cached : fix_cache_[u]) {
    if (cached.type == d.type && cached.table == d.table &&
        cached.column == d.column) {
      ++fix_cache_hits_;
      Fix fix = cached.fix;
      fix.original_sql = d.query;  // rebase the anchor onto this occurrence
      return fix;
    }
  }
  ++fix_cache_misses_;
  Fix fix = engine.SuggestFix(d, context_);
  fix_cache_[u].push_back({d.type, d.table, d.column, fix});
  return fix;
}

}  // namespace sqlcheck
