#include "core/sqlcheck.h"

#include <memory>

#include "common/thread_pool.h"

namespace sqlcheck {

SqlCheck::SqlCheck(SqlCheckOptions options)
    : options_(options), registry_(RuleRegistry::Default()) {}

void SqlCheck::AddQuery(std::string_view sql_text) { builder_.AddQuery(sql_text); }

void SqlCheck::AddScript(std::string_view script) { builder_.AddScript(script); }

void SqlCheck::AttachDatabase(const Database* db) {
  builder_.AttachDatabase(db, options_.data_analyzer);
}

void SqlCheck::RegisterRule(std::unique_ptr<Rule> rule) {
  registry_.Register(std::move(rule));
}

Report SqlCheck::Run() {
  // One pool serves every fork/join phase of the run (analysis + detection).
  int threads = ThreadPool::ResolveParallelism(options_.parallelism);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  Context context = builder_.Build(threads, pool.get(), options_.dedup_queries);

  // ap-detect (Algorithm 1), sharded across options_.parallelism workers.
  std::vector<Detection> detections =
      DetectAntiPatterns(context, registry_, options_.detector, threads, pool.get());

  // ap-rank (§5).
  RankingModel model(options_.ranking_weights, options_.ranking_mode);
  std::vector<RankedDetection> ranked = model.Rank(detections);

  // ap-fix (§6).
  RepairEngine repair;
  Report report;
  report.findings.reserve(ranked.size());
  for (auto& r : ranked) {
    Finding finding;
    finding.fix = options_.suggest_fixes ? repair.SuggestFix(r.detection, context) : Fix{};
    finding.ranked = std::move(r);
    report.findings.push_back(std::move(finding));
  }
  return report;
}

Report FindAntiPatterns(std::string_view sql_text, const SqlCheckOptions& options) {
  SqlCheck checker(options);
  checker.AddQuery(sql_text);
  return checker.Run();
}

}  // namespace sqlcheck
