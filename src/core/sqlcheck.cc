#include "core/sqlcheck.h"

#include <utility>

namespace sqlcheck {

SqlCheck::SqlCheck(SqlCheckOptions options) : session_(std::move(options)) {}

void SqlCheck::AddQuery(std::string_view sql_text) { session_.AddQuery(sql_text); }

void SqlCheck::AddScript(std::string_view script) { session_.AddScript(script); }

void SqlCheck::AttachDatabase(const Database* db) { session_.AttachDatabase(db); }

void SqlCheck::RegisterRule(std::unique_ptr<Rule> rule) {
  session_.RegisterRule(std::move(rule));
}

Report SqlCheck::Run() { return session_.Snapshot(); }

Report FindAntiPatterns(std::string_view sql_text, const SqlCheckOptions& options) {
  AnalysisSession session(options);
  session.AddQuery(sql_text);
  return session.Snapshot();
}

}  // namespace sqlcheck
