#pragma once

#include <string>
#include <string_view>

#include "core/report.h"

namespace sqlcheck {

/// \brief Options for the structured report emitters.
struct EmitOptions {
  /// Cap on emitted findings (0 = all) — the CLI's --top flag.
  size_t max_findings = 0;
  /// Artifact URI recorded in SARIF result locations ("" = omit physical
  /// locations; logical locations — table/column — are always emitted).
  std::string artifact_uri;
  /// Surface the full diagnosis (the CLI's --fixes flag): ToJson adds the
  /// verification fields and impacted-query list to each fix object, and
  /// ToSarif emits SARIF 2.1.0 `fixes[]` with artifactChanges/replacements
  /// whose regions are located inside `artifact_content`. Off by default so
  /// the baseline emission stays byte-stable.
  bool include_fixes = false;
  /// The workload text behind `artifact_uri`; SARIF fix replacement regions
  /// (deletedRegion charOffset/charLength) are computed by locating each
  /// fix's anchor statement in it. Leave empty to omit fixes[] regions.
  std::string artifact_content;
};

/// \brief Renders the report as deterministic, pretty-printed JSON: run
/// totals plus one result object per finding (rule, category, source, score,
/// table/column, offending query, message, and the suggested fix). Byte
/// stability is part of the contract — golden-file tested.
std::string ToJson(const Report& report, const EmitOptions& options = {});

/// \brief Renders the report as a SARIF 2.1.0 log (the GitHub code scanning
/// / IDE interchange format): one run, the full 27-rule driver catalog, and
/// one result per finding with logical (table/column) locations. Validated
/// against the SARIF 2.1.0 required-key set by golden-file tests.
std::string ToSarif(const Report& report, const EmitOptions& options = {});

/// \brief Escapes a string for embedding inside a JSON string literal
/// (quotes, backslashes, and control characters; no surrounding quotes).
std::string JsonEscape(std::string_view s);

/// \brief Stable machine identifier for an anti-pattern: the display name
/// lowered with non-alphanumerics folded to '-' ("column-wildcard-usage").
/// Shared by the JSON/SARIF emitters, the rule-reference generator, and the
/// server wire protocol.
std::string ApSlug(AntiPattern type);

/// \brief One finding as a single-line JSON object — the NDJSON unit of the
/// sqlcheck-server wire protocol. Carries exactly the fields of a ToJson
/// result entry (rank, rule, id, category, source, score, table, column,
/// query, message, fix{...}); field parity is structural, not cosmetic: both
/// renderings run through one shared emitter, so the server's streamed
/// findings cannot drift from the batch document format.
std::string FindingToJsonLine(const Finding& finding, size_t rank,
                              bool include_fixes = false);

}  // namespace sqlcheck
