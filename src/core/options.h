#pragma once

#include <string>
#include <vector>

#include "analysis/data_analyzer.h"
#include "ranking/model.h"
#include "rules/rule.h"

namespace sqlcheck {

/// \brief Top-level configuration for a SqlCheck run: which analyses are
/// enabled, rule thresholds, sampling, and the ranking model shape.
struct SqlCheckOptions {
  DetectorConfig detector;
  DataAnalyzerOptions data_analyzer;
  RankingWeights ranking_weights = RankingWeights::C1();
  InterQueryMode ranking_mode = InterQueryMode::kByScore;

  /// Run ap-fix (Algorithm 4) after ranking: each detection's registered
  /// Fixer proposes a repair and every mechanical rewrite is self-verified
  /// (re-parse + re-analysis) before it is attached. Turning this off skips
  /// the whole diagnosis pipeline — findings carry an empty Fix and the
  /// detection stream is byte-identical either way.
  bool suggest_fixes = true;

  /// Worker threads for batch analysis (query analysis + rule evaluation).
  /// 1 = serial; 0 or negative = use every hardware thread. Reports are
  /// byte-identical at any setting.
  int parallelism = 1;

  /// Memoize query analysis and rule evaluation by statement fingerprint:
  /// statements whose canonical token stream matches (whitespace, comments,
  /// and keyword case folded) are analyzed and rule-checked once, and the
  /// results fan out to every occurrence. Real workloads re-issue the same
  /// parameterized statements constantly, so this is a large win at zero
  /// accuracy cost — reports are byte-identical either way. Disable it only
  /// for custom rules that embed a statement's raw text outside
  /// Detection::query (see Rule::CheckQuery).
  bool dedup_queries = true;

  /// Rules to leave out of the run, by anti-pattern display name (ApName,
  /// ASCII-case-insensitive — e.g. "Column Wildcard Usage"). Validated
  /// against the known anti-patterns when the checker is constructed: an
  /// unknown name surfaces as an error status (AnalysisSession::status())
  /// and the full rule set stays active. The CLI's --disable flag plumbs
  /// straight into this.
  std::vector<std::string> disabled_rules;

  /// Convenience presets mirroring the paper's evaluation configurations.
  static SqlCheckOptions IntraQueryOnly();
  static SqlCheckOptions Full();

  /// Full analysis with batch work sharded across `threads` workers
  /// (0 = every hardware thread).
  static SqlCheckOptions Parallel(int threads = 0);
};

}  // namespace sqlcheck
