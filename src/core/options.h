#pragma once

#include <string>
#include <vector>

#include "analysis/data_analyzer.h"
#include "fix/verify.h"
#include "ranking/model.h"
#include "rules/rule.h"

namespace sqlcheck {

/// \brief Hard growth caps for a long-lived AnalysisSession. A batch run
/// obviously bounds its own memory (the workload is finite), but a session
/// fed by an untrusted network peer does not — the parse-tree arena, the
/// fingerprint memos, and the name interner all grow monotonically with the
/// statement stream. The sqlcheck-server holds one session per tenant, so
/// each cap here is a per-tenant quota: once a limit is reached the session
/// refuses further appends (AnalysisSession::quota_status() reports why)
/// while Check()/Snapshot() over the already-ingested history keep working.
/// 0 = unlimited (the default, so process-local callers are unaffected).
struct SessionLimits {
  /// Statements the session may hold; appends are refused at the cap.
  size_t max_statements = 0;
  /// Raw SQL bytes the session may ingest across its lifetime. Enforced
  /// before parsing: a request that would cross the cap is refused whole.
  size_t max_ingest_bytes = 0;
  /// Reserved-byte cap on the session's parse-tree arena. Checked before
  /// each append, so growth overshoots by at most one chunk (<= 1 MiB).
  size_t arena_cap_bytes = 0;
  /// Distinct identifiers the session's name interner may hold.
  size_t interner_cap_names = 0;

  bool unlimited() const {
    return max_statements == 0 && max_ingest_bytes == 0 && arena_cap_bytes == 0 &&
           interner_cap_names == 0;
  }
};

/// \brief Top-level configuration for a SqlCheck run: which analyses are
/// enabled, rule thresholds, sampling, and the ranking model shape.
struct SqlCheckOptions {
  DetectorConfig detector;
  DataAnalyzerOptions data_analyzer;
  RankingWeights ranking_weights = RankingWeights::C1();
  InterQueryMode ranking_mode = InterQueryMode::kByScore;

  /// Run ap-fix (Algorithm 4) after ranking: each detection's registered
  /// Fixer proposes a repair and every mechanical rewrite is self-verified
  /// (re-parse + re-analysis) before it is attached. Turning this off skips
  /// the whole diagnosis pipeline — findings carry an empty Fix and the
  /// detection stream is byte-identical either way.
  bool suggest_fixes = true;

  /// Worker threads for batch analysis (query analysis + rule evaluation).
  /// 1 = serial; 0 or negative = use every hardware thread. Reports are
  /// byte-identical at any setting.
  int parallelism = 1;

  /// Worker threads for bulk script ingestion (AddScript): the statement
  /// stream is split once, contiguous shards are parsed + analyzed in
  /// independent per-shard sessions, and the shards fold back into this
  /// session via the NameInterner merge/remap path. 1 = serial; 0 or
  /// negative = use every hardware thread. The merged session — statements,
  /// fingerprint groups, aggregates, memos, and every report derived from
  /// them — is byte-identical to serial ingestion at any setting. Scripts
  /// too small to amortize a shard (see AnalysisSession) fall back to the
  /// serial path automatically. The CLI's --ingest-threads and the server's
  /// --ingest-threads bulk-load knob plumb straight into this.
  int ingest_parallelism = 1;

  /// Memoize query analysis and rule evaluation by statement fingerprint:
  /// statements whose canonical token stream matches (whitespace, comments,
  /// and keyword case folded) are analyzed and rule-checked once, and the
  /// results fan out to every occurrence. Real workloads re-issue the same
  /// parameterized statements constantly, so this is a large win at zero
  /// accuracy cost — reports are byte-identical either way. Disable it only
  /// for custom rules that embed a statement's raw text outside
  /// Detection::query (see Rule::CheckQuery).
  bool dedup_queries = true;

  /// Tier-3 differential execution of rewrite fixes (fix/verify.h): off (the
  /// default — fixes stop at Tier 2, output stays byte-identical to PR 5),
  /// on (rewrites that diverge under their fixer's equivalence contract are
  /// demoted; engine-infeasible checks keep Tier 2), or required (infeasible
  /// checks demote too). The seed makes the generated datasets — and thus
  /// the verdicts — reproducible.
  ExecVerifyOptions verify_exec;

  /// Rules to leave out of the run, by anti-pattern display name (ApName,
  /// ASCII-case-insensitive — e.g. "Column Wildcard Usage"). Validated
  /// against the known anti-patterns when the checker is constructed: an
  /// unknown name surfaces as an error status (AnalysisSession::status())
  /// and the full rule set stays active. The CLI's --disable flag plumbs
  /// straight into this.
  std::vector<std::string> disabled_rules;

  /// Per-session growth quotas (see SessionLimits). Defaults to unlimited;
  /// the sqlcheck-server sets these per tenant from its flags.
  SessionLimits limits;

  /// Wall-clock budget (milliseconds) one statement may spend in
  /// parse + analysis before its fingerprint is quarantined (0 = off). The
  /// statement that blows the budget still lands — its results are valid —
  /// but repeats of it are refused in O(1), so one pathological statement
  /// cannot grind a shared worker down twice. The server's
  /// --statement-budget-ms flag plumbs straight into this.
  int statement_budget_ms = 0;

  /// Entries the poisoned-statement quarantine LRU retains (see
  /// AnalysisSession::recent_failures). Bounded so an adversarial stream of
  /// distinct poisoned statements costs O(capacity) memory, not O(stream).
  size_t quarantine_capacity = 256;

  /// Convenience presets mirroring the paper's evaluation configurations.
  static SqlCheckOptions IntraQueryOnly();
  static SqlCheckOptions Full();

  /// Full analysis with batch work sharded across `threads` workers
  /// (0 = every hardware thread).
  static SqlCheckOptions Parallel(int threads = 0);
};

}  // namespace sqlcheck
