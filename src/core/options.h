#pragma once

#include "analysis/data_analyzer.h"
#include "ranking/model.h"
#include "rules/rule.h"

namespace sqlcheck {

/// \brief Top-level configuration for a SqlCheck run: which analyses are
/// enabled, rule thresholds, sampling, and the ranking model shape.
struct SqlCheckOptions {
  DetectorConfig detector;
  DataAnalyzerOptions data_analyzer;
  RankingWeights ranking_weights = RankingWeights::C1();
  InterQueryMode ranking_mode = InterQueryMode::kByScore;
  bool suggest_fixes = true;

  /// Convenience presets mirroring the paper's evaluation configurations.
  static SqlCheckOptions IntraQueryOnly();
  static SqlCheckOptions Full();
};

}  // namespace sqlcheck
