#include "scan/scanner.h"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/context.h"
#include "common/mmap_file.h"
#include "common/thread_pool.h"
#include "core/emit.h"
#include "ranking/model.h"
#include "rules/registry.h"
#include "sql/extractor.h"
#include "sql/fingerprint.h"
#include "sql/splitter.h"
#include "sql/token.h"

namespace sqlcheck::scan {

namespace fs = std::filesystem;

namespace {

// Repo rule-presence is tracked as a bitmask; the rule set must fit one word.
static_assert(kAntiPatternCount <= 32, "widen the repo rule mask");

constexpr uint64_t kNoOffset = persist::FingerprintStore::kNoOffset;

enum class FileKind {
  kSqlScript,  ///< Split into statements directly.
  kSource,     ///< Host-language file: run the embedded-SQL extractor.
  kSniff,      ///< Unknown extension: content-sniff for a leading SQL verb.
  kIgnore,     ///< Known non-SQL noise (markup, archives, binaries).
};

std::string LowerExt(const fs::path& path) {
  std::string ext = path.extension().generic_string();
  for (char& c : ext) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return ext;
}

FileKind ClassifyExtension(const std::string& ext) {
  static const std::unordered_set<std::string> kSqlExts = {
      ".sql", ".ddl", ".dml", ".psql", ".pgsql", ".mysql", ".sqlite", ".hql"};
  static const std::unordered_set<std::string> kSourceExts = {
      ".py", ".java", ".php", ".js",  ".jsx",   ".ts", ".tsx", ".rb",
      ".go", ".cs",   ".c",   ".cc",  ".cpp",   ".cxx", ".h",  ".hh",
      ".hpp", ".kt",  ".scala", ".pl", ".pm",   ".sh"};
  static const std::unordered_set<std::string> kIgnoreExts = {
      ".md",   ".rst",  ".json", ".yml", ".yaml", ".xml", ".html", ".htm",
      ".css",  ".csv",  ".lock", ".toml", ".ini", ".cfg", ".conf", ".log",
      ".png",  ".jpg",  ".jpeg", ".gif", ".svg",  ".ico", ".pdf",  ".zip",
      ".gz",   ".tar",  ".bz2",  ".xz",  ".so",   ".o",   ".a",    ".bin",
      ".exe",  ".dll",  ".class", ".jar", ".pyc"};
  if (kSqlExts.count(ext)) return FileKind::kSqlScript;
  if (kSourceExts.count(ext)) return FileKind::kSource;
  if (kIgnoreExts.count(ext)) return FileKind::kIgnore;
  return FileKind::kSniff;
}

/// First-token sniff for extensionless dumps: skip whitespace and SQL
/// comments, read the leading word, accept the file when it is a statement
/// verb. Binary content (NUL in the head) is rejected outright.
bool LooksLikeSql(std::string_view head) {
  static const std::unordered_set<std::string> kVerbs = {
      "select", "insert",   "update", "delete", "create", "alter",  "drop",
      "with",   "begin",    "merge",  "truncate", "grant", "revoke",
      "explain", "pragma",  "analyze", "vacuum", "set",    "use",    "copy",
      "call",   "values",   "show",   "replace", "commit", "rollback"};
  if (head.find('\0') != std::string_view::npos) return false;
  size_t i = 0;
  while (i < head.size()) {
    char c = head[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < head.size() && head[i + 1] == '-') {
      while (i < head.size() && head[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < head.size() && head[i + 1] == '*') {
      size_t end = head.find("*/", i + 2);
      if (end == std::string_view::npos) return false;
      i = end + 2;
      continue;
    }
    break;
  }
  std::string word;
  while (i < head.size() && word.size() < 16) {
    char c = head[i];
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) {
      word.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
      ++i;
    } else {
      break;
    }
  }
  return kVerbs.count(word) > 0;
}

struct ScanFile {
  std::string path;      ///< Absolute path on disk.
  std::string rel;       ///< Root-relative path: the manifest key.
  uint64_t size = 0;     ///< Byte size at discovery (one stat serves all).
  uint64_t mtime_ns = 0; ///< mtime in nanoseconds at discovery.
  uint32_t repo = 0;     ///< Index into the repo table.
  FileKind kind = FileKind::kSniff;
};

struct RepoAgg {
  uint64_t files = 0;
  uint64_t statements = 0;
  uint64_t findings = 0;
  uint32_t rule_mask = 0;
};

/// One statement occurrence of a processed file, queued toward the store.
/// `canonical`/`findings` are only populated when the statement is not yet in
/// the store (offset == kNoOffset): the post-join append pass needs them.
struct StmtDraft {
  uint64_t exact = 0;
  uint64_t tmpl = 0;
  uint64_t offset = kNoOffset;
  std::string canonical;
  std::vector<persist::StoredFinding> findings;
  bool failed = false;  ///< Analysis fault: never append, no file manifest.
};

/// The store-bound result of processing one file the cold way: its freshness
/// key plus every statement in order. Appended serially after the join in
/// corpus (file, statement) order so the log layout is byte-stable.
struct FileDraft {
  uint32_t file = 0;
  std::string rel;
  uint64_t size = 0;
  uint64_t mtime_ns = 0;
  std::vector<StmtDraft> stmts;
};

struct ShardAgg {
  uint64_t statements = 0;
  uint64_t findings = 0;
  std::array<uint64_t, kAntiPatternCount> occurrences{};
  std::array<uint64_t, kAntiPatternCount> statements_with{};
  uint64_t severity[3] = {0, 0, 0};  ///< high / medium / low.
  std::unordered_set<uint64_t> unique_exact;
  std::unordered_set<uint64_t> unique_template;
  std::vector<RepoAgg> repos;
  uint64_t analyzed = 0;
  uint64_t store_reused = 0;
  uint64_t memo_reused = 0;
  uint64_t files_reused = 0;
  uint64_t skipped = 0;
  std::vector<FileDraft> drafts;
};

/// Per-worker analysis state. The registry/model/config are shared const
/// across workers (rules are stateless); everything here is private.
struct Worker {
  explicit Worker(size_t repo_count) { agg.repos.resize(repo_count); }

  struct MemoEntry {
    std::string canonical;
    size_t storage_idx = 0;
    uint64_t offset = kNoOffset;
    bool failed = false;
  };

  ShardAgg agg;
  sql::TokenBuffer buffer;
  /// Stable storage for folded finding stats; memo entries index into it.
  std::deque<std::vector<persist::FindingStat>> storage;
  /// In-run memo keyed by exact fingerprint; canonical text breaks ties.
  std::unordered_map<uint64_t, std::vector<MemoEntry>> memo;
  /// Scratch for file-manifest replay (capacity persists across files).
  std::vector<persist::StmtRef> refs;
  std::vector<std::vector<persist::FindingStat>> replay;
};

std::vector<persist::StoredFinding> AnalyzeStatement(std::string_view raw,
                                                     const RuleRegistry& registry,
                                                     const RankingModel& model,
                                                     const DetectorConfig& config) {
  ContextBuilder builder;
  builder.AddQuery(raw);
  Context context = builder.Build(1, nullptr, true);
  std::vector<RankedDetection> ranked =
      model.Rank(DetectAntiPatterns(context, registry, config, 1, nullptr));
  std::vector<persist::StoredFinding> out;
  out.reserve(ranked.size());
  for (const RankedDetection& r : ranked) {
    persist::StoredFinding f;
    f.type = static_cast<uint8_t>(r.detection.type);
    f.source = static_cast<uint8_t>(r.detection.source);
    f.has_query = !r.detection.query.empty();
    f.score = r.score;
    f.table = r.detection.table;
    f.column = r.detection.column;
    f.message = r.detection.message;
    out.push_back(std::move(f));
  }
  return out;
}

std::vector<persist::FindingStat> ToStats(
    const std::vector<persist::StoredFinding>& findings) {
  std::vector<persist::FindingStat> out;
  out.reserve(findings.size());
  for (const persist::StoredFinding& f : findings) {
    out.push_back(persist::FindingStat{f.type, f.score});
  }
  return out;
}

void FoldStats(const std::vector<persist::FindingStat>& findings, ShardAgg& agg,
               RepoAgg& repo) {
  uint32_t stmt_mask = 0;
  for (const persist::FindingStat& f : findings) {
    ++agg.findings;
    ++repo.findings;
    if (f.type < kAntiPatternCount) {
      ++agg.occurrences[f.type];
      stmt_mask |= 1u << f.type;
    }
    switch (ScoreSeverity(f.score)) {
      case Severity::kHigh: ++agg.severity[0]; break;
      case Severity::kMedium: ++agg.severity[1]; break;
      case Severity::kLow: ++agg.severity[2]; break;
    }
  }
  for (int k = 0; k < kAntiPatternCount; ++k) {
    if (stmt_mask & (1u << k)) ++agg.statements_with[k];
  }
  repo.rule_mask |= stmt_mask;
}

void HandleStatement(std::string_view raw, const ScanFile& file, Worker& w,
                     persist::FingerprintStore* store, const RuleRegistry& registry,
                     const RankingModel& model, const DetectorConfig& config,
                     FileDraft* draft) {
  std::string canonical;
  sql::ScanFingerprints fp = sql::FingerprintForScan(raw, &canonical);
  if (canonical.empty()) return;  // Comment-only / whitespace-only fragment.

  ShardAgg& agg = w.agg;
  RepoAgg& repo = agg.repos[file.repo];
  ++agg.statements;
  ++repo.statements;
  agg.unique_exact.insert(fp.exact);
  agg.unique_template.insert(fp.tmpl);

  auto mit = w.memo.find(fp.exact);
  if (mit != w.memo.end()) {
    for (const Worker::MemoEntry& entry : mit->second) {
      if (entry.canonical == canonical) {
        ++agg.memo_reused;
        FoldStats(w.storage[entry.storage_idx], agg, repo);
        if (draft != nullptr) {
          StmtDraft sd;
          sd.exact = fp.exact;
          sd.tmpl = fp.tmpl;
          sd.offset = entry.offset;
          sd.failed = entry.failed;
          // A repeat of a fresh statement still lacks an offset: keep the
          // canonical so the append pass can dedup against the first write.
          if (sd.offset == kNoOffset && !sd.failed) sd.canonical = canonical;
          draft->stmts.push_back(std::move(sd));
        }
        return;
      }
    }
  }

  StmtDraft sd;
  sd.exact = fp.exact;
  sd.tmpl = fp.tmpl;
  std::vector<persist::FindingStat> stats;
  bool failed = false;
  bool from_store = store != nullptr &&
                    store->ProbeStats(canonical, fp.exact, &stats, nullptr, &sd.offset);
  if (from_store) {
    ++agg.store_reused;
  } else {
    ++agg.analyzed;
    std::vector<persist::StoredFinding> findings;
    try {
      findings = AnalyzeStatement(raw, registry, model, config);
    } catch (...) {
      // An analysis fault (e.g. injected allocation failure) must not take
      // the scan down or poison the store: score the statement clean this
      // run and leave it unmemoized on disk so a healthy rescan retries it.
      findings.clear();
      failed = true;
    }
    stats = ToStats(findings);
    if (!failed) {
      sd.canonical = canonical;
      sd.findings = std::move(findings);
    }
    sd.failed = failed;
  }
  w.storage.push_back(std::move(stats));
  Worker::MemoEntry me;
  me.canonical = std::move(canonical);
  me.storage_idx = w.storage.size() - 1;
  me.offset = sd.offset;
  me.failed = failed;
  w.memo[fp.exact].push_back(std::move(me));
  FoldStats(w.storage.back(), agg, repo);
  if (draft != nullptr) draft->stmts.push_back(std::move(sd));
}

/// The warm fast path: if the store holds a manifest matching the file's
/// (path, size, mtime) key and every referenced statement record resolves,
/// fold the file's entire contribution without opening it. Any mismatch
/// returns false and the caller processes the file cold — resolution is
/// all-or-nothing so a partial replay can never skew the report.
bool TryReplayFile(const ScanFile& file, Worker& w, persist::FingerprintStore* store) {
  if (!store->ProbeFile(file.rel, file.size, file.mtime_ns, &w.refs)) return false;
  w.replay.resize(w.refs.size());
  for (size_t i = 0; i < w.refs.size(); ++i) {
    if (!store->ResolveStats(w.refs[i].offset, w.refs[i].exact, &w.replay[i], nullptr)) {
      return false;
    }
  }
  ShardAgg& agg = w.agg;
  RepoAgg& repo = agg.repos[file.repo];
  ++agg.files_reused;
  ++repo.files;
  agg.store_reused += w.refs.size();
  for (size_t i = 0; i < w.refs.size(); ++i) {
    ++agg.statements;
    ++repo.statements;
    agg.unique_exact.insert(w.refs[i].exact);
    agg.unique_template.insert(w.refs[i].tmpl);
    FoldStats(w.replay[i], agg, repo);
  }
  return true;
}

void ProcessFile(const ScanFile& file, uint32_t file_idx, Worker& w,
                 persist::FingerprintStore* store, const RuleRegistry& registry,
                 const RankingModel& model, const DetectorConfig& config) {
  MappedFile map;
  if (!map.Open(file.path).ok()) {
    ++w.agg.skipped;
    return;
  }
  std::string_view content = map.view();
  FileKind kind = file.kind;
  if (kind == FileKind::kSniff) {
    if (LooksLikeSql(content.substr(0, std::min<size_t>(content.size(), 2048)))) {
      kind = FileKind::kSqlScript;
    } else {
      // No manifest for sniff rejects: they never count as corpus files, so
      // a replayed manifest would inflate the file count.
      ++w.agg.skipped;
      return;
    }
  }
  ++w.agg.repos[file.repo].files;
  FileDraft draft;
  FileDraft* draft_ptr = nullptr;
  if (store != nullptr) {
    draft.file = file_idx;
    draft.rel = file.rel;
    draft.size = file.size;
    draft.mtime_ns = file.mtime_ns;
    draft_ptr = &draft;
  }
  if (kind == FileKind::kSource) {
    for (const sql::EmbeddedSql& embedded : sql::ExtractEmbeddedSql(content)) {
      HandleStatement(embedded.sql, file, w, store, registry, model, config, draft_ptr);
    }
  } else {
    for (std::string_view piece : sql::SplitStatements(content, nullptr, &w.buffer)) {
      HandleStatement(piece, file, w, store, registry, model, config, draft_ptr);
    }
  }
  if (draft_ptr != nullptr) w.agg.drafts.push_back(std::move(draft));
}

void AppendFormatted(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendFormatted(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  int n = vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<size_t>(static_cast<size_t>(n), sizeof(buf) - 1));
}

}  // namespace

std::string ScanReport::ToText() const {
  std::string out;
  AppendFormatted(out,
                  "corpus: %llu repos, %llu files, %llu statements "
                  "(%llu unique, %llu templates), %llu findings\n",
                  static_cast<unsigned long long>(repos),
                  static_cast<unsigned long long>(files),
                  static_cast<unsigned long long>(statements),
                  static_cast<unsigned long long>(unique_statements),
                  static_cast<unsigned long long>(unique_templates),
                  static_cast<unsigned long long>(findings));
  AppendFormatted(out, "severity: high %llu / medium %llu / low %llu\n",
                  static_cast<unsigned long long>(severity_high),
                  static_cast<unsigned long long>(severity_medium),
                  static_cast<unsigned long long>(severity_low));
  out += "\nrule                                        occur  stmts  repos\n";
  for (int k = 0; k < kAntiPatternCount; ++k) {
    const RuleRow& row = rules[k];
    if (row.occurrences == 0) continue;
    AppendFormatted(out, "%-42s %6llu %6llu %6llu\n",
                    ApName(static_cast<AntiPattern>(k)),
                    static_cast<unsigned long long>(row.occurrences),
                    static_cast<unsigned long long>(row.statements),
                    static_cast<unsigned long long>(row.repos));
  }
  out += "\nrepo                                        files  stmts  finds  rules\n";
  for (const RepoRow& row : repo_rows) {
    AppendFormatted(out, "%-42s %6llu %6llu %6llu %6llu\n", row.name.c_str(),
                    static_cast<unsigned long long>(row.files),
                    static_cast<unsigned long long>(row.statements),
                    static_cast<unsigned long long>(row.findings),
                    static_cast<unsigned long long>(row.rules));
  }
  return out;
}

std::string ScanReport::ToJson() const {
  std::string out = "{\n";
  AppendFormatted(out,
                  "  \"scan\": {\"repos\": %llu, \"files\": %llu, "
                  "\"statements\": %llu, \"unique_statements\": %llu, "
                  "\"unique_templates\": %llu, \"findings\": %llu},\n",
                  static_cast<unsigned long long>(repos),
                  static_cast<unsigned long long>(files),
                  static_cast<unsigned long long>(statements),
                  static_cast<unsigned long long>(unique_statements),
                  static_cast<unsigned long long>(unique_templates),
                  static_cast<unsigned long long>(findings));
  AppendFormatted(out,
                  "  \"severity\": {\"high\": %llu, \"medium\": %llu, \"low\": %llu},\n",
                  static_cast<unsigned long long>(severity_high),
                  static_cast<unsigned long long>(severity_medium),
                  static_cast<unsigned long long>(severity_low));
  out += "  \"rules\": [";
  bool first = true;
  for (int k = 0; k < kAntiPatternCount; ++k) {
    const RuleRow& row = rules[k];
    if (row.occurrences == 0) continue;
    out += first ? "\n" : ",\n";
    first = false;
    AntiPattern type = static_cast<AntiPattern>(k);
    AppendFormatted(out,
                    "    {\"rule\": \"%s\", \"id\": \"%s\", \"occurrences\": %llu, "
                    "\"statements\": %llu, \"repos\": %llu}",
                    JsonEscape(ApName(type)).c_str(), ApSlug(type).c_str(),
                    static_cast<unsigned long long>(row.occurrences),
                    static_cast<unsigned long long>(row.statements),
                    static_cast<unsigned long long>(row.repos));
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"repos\": [";
  first = true;
  for (const RepoRow& row : repo_rows) {
    out += first ? "\n" : ",\n";
    first = false;
    AppendFormatted(out,
                    "    {\"name\": \"%s\", \"files\": %llu, \"statements\": %llu, "
                    "\"findings\": %llu, \"rules\": %llu}",
                    JsonEscape(row.name).c_str(),
                    static_cast<unsigned long long>(row.files),
                    static_cast<unsigned long long>(row.statements),
                    static_cast<unsigned long long>(row.findings),
                    static_cast<unsigned long long>(row.rules));
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

uint64_t DigestScanReport(const ScanReport& report) {
  std::string json = report.ToJson();
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : json) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

Result<ScanReport> CorpusScanner::Scan(const std::string& root) {
  auto t0 = std::chrono::steady_clock::now();
  summary_ = ScanSummary{};

  const RuleRegistry registry = RuleRegistry::Default();
  const RankingModel model;
  const DetectorConfig config;

  std::unique_ptr<persist::FingerprintStore> store;
  if (!options_.store_path.empty()) {
    store = std::make_unique<persist::FingerprintStore>();
    Status st = store->Open(options_.store_path,
                            persist::FingerprintStore::RulesetHash(registry));
    if (!st.ok()) return st;
    summary_.store_enabled = true;
    summary_.store = store->stats();  // Keeps the warning if Open degraded.
    if (!store->usable()) store.reset();
  }

  std::error_code ec;
  fs::path root_path(root);
  if (!fs::is_directory(root_path, ec) || ec) {
    return Status::Error("scan root is not a directory: " + root);
  }

  // The store file must never scan itself; compare identities by inode so any
  // spelling of its path is caught.
  struct stat store_st{};
  bool have_store_st =
      !options_.store_path.empty() && ::stat(options_.store_path.c_str(), &store_st) == 0;

  // Discovery: collect regular files (skipping dot-entries and the store
  // itself), keyed by their root-relative path so the ordering — and with it
  // repo numbering and the store append order — is byte-stable. One stat per
  // file covers regularity, size, and mtime: the manifest freshness key.
  struct Discovered {
    std::string rel;
    std::string abs;
    uint64_t size = 0;
    uint64_t mtime_ns = 0;
    bool operator<(const Discovered& other) const { return rel < other.rel; }
  };
  std::vector<Discovered> discovered;
  fs::recursive_directory_iterator it(root_path,
                                      fs::directory_options::skip_permission_denied, ec);
  fs::recursive_directory_iterator end;
  for (; !ec && it != end; it.increment(ec)) {
    const fs::directory_entry& entry = *it;
    std::string name = entry.path().filename().generic_string();
    if (!name.empty() && name[0] == '.') {
      std::error_code dec;
      if (entry.is_directory(dec)) it.disable_recursion_pending();
      continue;
    }
    struct stat st{};
    if (::stat(entry.path().c_str(), &st) != 0 || !S_ISREG(st.st_mode)) continue;
    if (have_store_st && st.st_dev == store_st.st_dev && st.st_ino == store_st.st_ino) {
      continue;
    }
    Discovered d;
    d.rel = entry.path().lexically_relative(root_path).generic_string();
    d.abs = entry.path().string();
    d.size = static_cast<uint64_t>(st.st_size);
    d.mtime_ns = static_cast<uint64_t>(st.st_mtim.tv_sec) * 1000000000ull +
                 static_cast<uint64_t>(st.st_mtim.tv_nsec);
    discovered.push_back(std::move(d));
  }
  std::sort(discovered.begin(), discovered.end());

  std::vector<std::string> repo_names;
  std::map<std::string, uint32_t> repo_index;
  std::vector<ScanFile> files;
  files.reserve(discovered.size());
  for (Discovered& d : discovered) {
    FileKind kind = ClassifyExtension(LowerExt(fs::path(d.rel)));
    if (kind == FileKind::kIgnore) continue;
    size_t slash = d.rel.find('/');
    std::string repo = slash == std::string::npos ? "(root)" : d.rel.substr(0, slash);
    auto [rit, inserted] = repo_index.emplace(repo, repo_names.size());
    if (inserted) repo_names.push_back(repo);
    ScanFile file;
    file.path = std::move(d.abs);
    file.rel = std::move(d.rel);
    file.size = d.size;
    file.mtime_ns = d.mtime_ns;
    file.repo = rit->second;
    file.kind = kind;
    files.push_back(std::move(file));
  }

  int jobs = options_.jobs;
  if (jobs <= 0) jobs = ThreadPool::ResolveParallelism(0);  // hardware clamp
  jobs = std::max(1, std::min<int>(jobs, static_cast<int>(files.empty() ? 1 : files.size())));
  summary_.jobs = jobs;

  std::vector<std::unique_ptr<Worker>> workers(jobs);
  for (int s = 0; s < jobs; ++s) workers[s] = std::make_unique<Worker>(repo_names.size());
  persist::FingerprintStore* store_ptr = store.get();
  ParallelShards(files.size(), jobs,
                 [&](int shard, size_t begin, size_t endi) {
                   Worker& w = *workers[shard];
                   for (size_t i = begin; i < endi; ++i) {
                     if (store_ptr != nullptr && TryReplayFile(files[i], w, store_ptr)) {
                       continue;
                     }
                     ProcessFile(files[i], static_cast<uint32_t>(i), w, store_ptr,
                                 registry, model, config);
                   }
                 });

  // Deterministic merge: shard order for the counters, corpus (file,
  // statement) order for the store appends.
  ScanReport report;
  std::vector<RepoAgg> repos(repo_names.size());
  std::unordered_set<uint64_t> unique_exact;
  std::unordered_set<uint64_t> unique_template;
  std::vector<FileDraft> drafts;
  for (const std::unique_ptr<Worker>& wp : workers) {
    ShardAgg& agg = wp->agg;
    report.statements += agg.statements;
    report.findings += agg.findings;
    for (int k = 0; k < kAntiPatternCount; ++k) {
      report.rules[k].occurrences += agg.occurrences[k];
      report.rules[k].statements += agg.statements_with[k];
    }
    report.severity_high += agg.severity[0];
    report.severity_medium += agg.severity[1];
    report.severity_low += agg.severity[2];
    unique_exact.insert(agg.unique_exact.begin(), agg.unique_exact.end());
    unique_template.insert(agg.unique_template.begin(), agg.unique_template.end());
    for (size_t r = 0; r < repos.size(); ++r) {
      repos[r].files += agg.repos[r].files;
      repos[r].statements += agg.repos[r].statements;
      repos[r].findings += agg.repos[r].findings;
      repos[r].rule_mask |= agg.repos[r].rule_mask;
    }
    summary_.analyzed += agg.analyzed;
    summary_.store_reused += agg.store_reused;
    summary_.memo_reused += agg.memo_reused;
    summary_.files_reused += agg.files_reused;
    summary_.files_skipped += agg.skipped;
    drafts.insert(drafts.end(), std::make_move_iterator(agg.drafts.begin()),
                  std::make_move_iterator(agg.drafts.end()));
  }
  report.unique_statements = unique_exact.size();
  report.unique_templates = unique_template.size();
  for (size_t r = 0; r < repos.size(); ++r) {
    if (repos[r].files == 0) continue;
    ++report.repos;
    report.files += repos[r].files;
    RepoRow row;
    row.name = repo_names[r];
    row.files = repos[r].files;
    row.statements = repos[r].statements;
    row.findings = repos[r].findings;
    for (int k = 0; k < kAntiPatternCount; ++k) {
      if (repos[r].rule_mask & (1u << k)) {
        ++row.rules;
        ++report.rules[k].repos;
      }
    }
    report.repo_rows.push_back(std::move(row));
  }
  std::sort(report.repo_rows.begin(), report.repo_rows.end(),
            [](const RepoRow& a, const RepoRow& b) { return a.name < b.name; });

  if (store != nullptr) {
    std::sort(drafts.begin(), drafts.end(),
              [](const FileDraft& a, const FileDraft& b) { return a.file < b.file; });
    std::vector<persist::StmtRef> refs;
    for (const FileDraft& d : drafts) {
      refs.clear();
      refs.reserve(d.stmts.size());
      bool manifest_ok = true;
      for (const StmtDraft& sd : d.stmts) {
        if (sd.failed) {
          // Keep appending the healthy statements, but a file with a faulted
          // statement gets no manifest: the next scan must reread it.
          manifest_ok = false;
          continue;
        }
        uint64_t off = sd.offset;
        if (off == kNoOffset) {
          // Dedup is internal to Append: a repeat occurrence (same canonical,
          // possibly staged by an earlier draft) returns the first offset.
          off = store->Append(sd.canonical, sd.exact, sd.tmpl, sd.findings);
        }
        if (off == kNoOffset) {
          manifest_ok = false;  // Log frozen by an injected append fault.
          continue;
        }
        refs.push_back(persist::StmtRef{sd.exact, sd.tmpl, off});
      }
      if (manifest_ok) store->AppendFile(d.rel, d.size, d.mtime_ns, refs);
    }
    store->Close();  // Commits; any commit failure lands in stats().warning.
    summary_.store = store->stats();
  }

  summary_.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return report;
}

}  // namespace sqlcheck::scan
