#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "persist/fingerprint_store.h"
#include "rules/rule.h"

namespace sqlcheck::scan {

/// \brief Options for one corpus scan.
struct ScanOptions {
  /// Fingerprint-store path; empty disables the store (every statement is
  /// analyzed in-process, with an in-run memo only).
  std::string store_path;
  /// Worker shards for the file pipeline. <= 0 means auto: the hardware
  /// thread count, never more (shards past the physical threads only add
  /// contention — the same clamp AnalysisSession applies to auto
  /// `ingest_parallelism`), and never more than there are files. Explicit
  /// positive values are honored literally.
  int jobs = 0;
};

/// \brief Per-rule prevalence row (Table 3/4 style).
struct RuleRow {
  uint64_t occurrences = 0;  ///< Individual detections.
  uint64_t statements = 0;   ///< Statement occurrences with >= 1 detection.
  uint64_t repos = 0;        ///< Repositories where the rule fires at all.
};

/// \brief Per-repository distribution row (Table 5 style).
struct RepoRow {
  std::string name;
  uint64_t files = 0;
  uint64_t statements = 0;
  uint64_t findings = 0;
  uint64_t rules = 0;  ///< Distinct anti-pattern types present.
};

/// \brief The analysis-only scan report: a pure function of the corpus
/// contents and the rule set. Everything here is digest-covered and must be
/// byte-identical whether the scan ran cold, warm from the store, or with the
/// store disabled — operational counters (store hits, timing) live in
/// ScanSummary instead, because they legitimately differ between those runs.
struct ScanReport {
  uint64_t repos = 0;
  uint64_t files = 0;
  uint64_t statements = 0;
  uint64_t unique_statements = 0;  ///< Distinct exact-canonical forms.
  uint64_t unique_templates = 0;   ///< Distinct literal-collapsed templates.
  uint64_t findings = 0;
  std::array<RuleRow, kAntiPatternCount> rules{};  ///< AntiPattern enum order.
  uint64_t severity_high = 0;
  uint64_t severity_medium = 0;
  uint64_t severity_low = 0;
  std::vector<RepoRow> repo_rows;  ///< Sorted by repository name.

  std::string ToText() const;
  std::string ToJson() const;
};

/// Order-sensitive FNV-1a digest of the serialized report — the identity the
/// cold/warm/store-disabled gate checks.
uint64_t DigestScanReport(const ScanReport& report);

/// \brief Operational telemetry of one scan (not digest-covered).
struct ScanSummary {
  bool store_enabled = false;
  persist::StoreStats store;
  uint64_t analyzed = 0;      ///< Statements analyzed from scratch.
  uint64_t store_reused = 0;  ///< Statement occurrences served by the store.
  uint64_t memo_reused = 0;   ///< Occurrences served by the in-run memo.
  uint64_t files_reused = 0;  ///< Files replayed whole from their manifest.
  uint64_t files_skipped = 0; ///< Unreadable or unclassifiable files.
  int jobs = 1;
  double seconds = 0.0;
};

/// \brief The `sqlcheck scan` driver: walks a directory tree of repositories
/// / SQL dumps, classifies files (extension first, then a content sniff for
/// extensionless dumps), extracts statements (`sql::SplitStatements` for SQL
/// scripts, `sql::ExtractEmbeddedSql` for host-language sources), and
/// analyzes each statement in isolation — a fresh single-statement context
/// against the full rule set, the per-statement prevalence methodology of the
/// paper's GitHub pipeline (§8.1). Isolation is what makes findings a pure
/// function of the exact-canonical fingerprint, so the persistent store can
/// replay them for every later occurrence and a warm scan reports
/// byte-identically to a cold run.
///
/// Reuse works at two granularities. Per statement, a store probe by
/// exact-canonical fingerprint skips analysis. Per file, the store's
/// manifest records — keyed by (root-relative path, size, mtime) — let a
/// warm scan fold an unchanged file's whole contribution without even
/// opening it: on this tier the scan does one stat(2) per file and nothing
/// else, which is what makes warm scans I/O-bound on the directory walk
/// rather than on file reads. A changed file falls back to the statement
/// tier; a changed rule set invalidates the store entirely.
///
/// Files shard across a thread pool (first-level directories are the
/// "repositories" for the distribution tables); shard merge is deterministic
/// in shard order, so reports are byte-stable at any job count.
class CorpusScanner {
 public:
  explicit CorpusScanner(ScanOptions options) : options_(std::move(options)) {}

  /// Scans the tree rooted at `root`. Non-OK only for hard errors (root
  /// missing / store path unwritable); store degradation is reported through
  /// summary().store.warning and the scan proceeds cold.
  Result<ScanReport> Scan(const std::string& root);

  const ScanSummary& summary() const { return summary_; }

 private:
  ScanOptions options_;
  ScanSummary summary_;
};

}  // namespace sqlcheck::scan
