#include "storage/statistics.h"

#include <map>
#include <unordered_map>

#include "common/strings.h"
#include "storage/sampler.h"

namespace sqlcheck {

const ColumnStats* TableStats::FindColumn(std::string_view name) const {
  for (const auto& c : columns) {
    if (EqualsIgnoreCase(c.column, name)) return &c;
  }
  return nullptr;
}

bool LooksDelimited(const std::string& s, char* delimiter) {
  // A multi-valued attribute looks like "U1,U2,U3": short fields separated by
  // a consistent delimiter. Sentences (with spaces around words) do not count.
  static constexpr char kDelims[] = {',', ';', '|'};
  for (char d : kDelims) {
    size_t fields = 0;
    size_t field_len = 0;
    bool ok = true;
    for (char c : s) {
      if (c == d) {
        if (field_len == 0) {
          ok = false;
          break;
        }
        ++fields;
        field_len = 0;
      } else {
        ++field_len;
        if (field_len > 32) {  // long prose field — not a value list
          ok = false;
          break;
        }
      }
    }
    if (ok && fields >= 1 && field_len > 0) {
      // fields counts separators; >=1 separator means >=2 fields.
      if (delimiter != nullptr) *delimiter = d;
      return true;
    }
  }
  return false;
}

TableStats ComputeTableStats(const Table& table, size_t sample_limit, uint64_t seed) {
  TableStats stats;
  stats.table = table.schema().name;
  stats.row_count = table.live_row_count();

  std::vector<size_t> slots;
  if (sample_limit > 0 && table.live_row_count() > sample_limit) {
    slots = SampleSlots(table, sample_limit, seed);
  } else {
    slots = table.LiveSlots();
  }

  const auto& columns = table.schema().columns;
  stats.columns.resize(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) {
    ColumnStats& cs = stats.columns[c];
    cs.column = columns[c].name;
    cs.row_count = slots.size();

    std::unordered_map<size_t, size_t> hash_buckets;  // value-hash -> count
    std::map<size_t, Value> hash_rep;                 // representative values
    double numeric_sum = 0.0;
    size_t numeric_count = 0;
    size_t string_count = 0;
    size_t length_sum = 0;
    size_t numeric_strings = 0;
    size_t date_strings = 0;
    size_t tz_strings = 0;
    size_t delimited = 0;
    std::map<char, size_t> delimiter_votes;

    for (size_t slot : slots) {
      const Row& row = table.RowAt(slot);
      const Value& v = c < row.size() ? row[c] : Value::Null_();
      if (v.is_null()) {
        ++cs.null_count;
        continue;
      }
      size_t h = v.Hash();
      size_t& bucket = hash_buckets[h];
      ++bucket;
      hash_rep.emplace(h, v);
      if (!cs.min.has_value() || v < *cs.min) cs.min = v;
      if (!cs.max.has_value() || *cs.max < v) cs.max = v;
      if (v.is_numeric()) {
        numeric_sum += v.AsReal();
        ++numeric_count;
      }
      if (v.is_string()) {
        const std::string& s = v.AsString();
        ++string_count;
        length_sum += s.size();
        if (LooksNumeric(s)) ++numeric_strings;
        if (LooksLikeDate(s)) {
          ++date_strings;
          if (HasTimezoneSuffix(s)) ++tz_strings;
        }
        char delim = '\0';
        if (LooksDelimited(s, &delim)) {
          ++delimited;
          ++delimiter_votes[delim];
        }
      }
    }

    cs.distinct_count = hash_buckets.size();
    for (const auto& [h, count] : hash_buckets) {
      if (count > cs.top_frequency) {
        cs.top_frequency = count;
        cs.top_value = hash_rep[h];
      }
    }
    if (numeric_count > 0) cs.mean = numeric_sum / static_cast<double>(numeric_count);
    if (string_count > 0) {
      cs.avg_length = static_cast<double>(length_sum) / static_cast<double>(string_count);
      cs.numeric_string_fraction =
          static_cast<double>(numeric_strings) / static_cast<double>(string_count);
      cs.date_string_fraction =
          static_cast<double>(date_strings) / static_cast<double>(string_count);
      cs.delimited_fraction =
          static_cast<double>(delimited) / static_cast<double>(string_count);
      if (date_strings > 0) {
        cs.timezone_fraction =
            static_cast<double>(tz_strings) / static_cast<double>(date_strings);
      }
      size_t best = 0;
      for (const auto& [delim, votes] : delimiter_votes) {
        if (votes > best) {
          best = votes;
          cs.dominant_delimiter = delim;
        }
      }
    }
  }
  return stats;
}

}  // namespace sqlcheck
