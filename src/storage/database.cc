#include "storage/database.h"

#include "common/strings.h"

namespace sqlcheck {

Status Database::CreateTable(TableSchema schema) {
  std::string key = ToLower(schema.name);
  if (tables_.count(key) > 0) {
    return Status::Error("table already exists: " + schema.name);
  }
  tables_.emplace(std::move(key), std::make_unique<Table>(std::move(schema)));
  return Status::Ok();
}

Status Database::DropTable(std::string_view name) {
  if (tables_.erase(ToLower(name)) == 0) {
    return Status::Error("no such table: " + std::string(name));
  }
  return Status::Ok();
}

Table* Database::GetTable(std::string_view name) {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(std::string_view name) const {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<Table*> Database::Tables() {
  std::vector<Table*> out;
  out.reserve(tables_.size());
  for (auto& [_, table] : tables_) out.push_back(table.get());
  return out;
}

std::vector<const Table*> Database::Tables() const {
  std::vector<const Table*> out;
  out.reserve(tables_.size());
  for (const auto& [_, table] : tables_) out.push_back(table.get());
  return out;
}

Status Database::CreateIndex(const IndexSchema& index) {
  Table* table = GetTable(index.table);
  if (table == nullptr) return Status::Error("no such table: " + index.table);
  return table->CreateIndex(index);
}

Status Database::DropIndex(std::string_view name) {
  for (auto& [_, table] : tables_) {
    Status s = table->DropIndex(name);
    if (s.ok()) return s;
  }
  return Status::Error("no such index: " + std::string(name));
}

Catalog Database::BuildCatalog() const {
  Catalog catalog;
  for (const auto& [_, table] : tables_) {
    catalog.AddTable(table->schema());
    for (const auto& index : table->indexes()) {
      catalog.AddIndex(index->schema());
    }
  }
  return catalog;
}

}  // namespace sqlcheck
