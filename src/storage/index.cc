#include "storage/index.h"

namespace sqlcheck {

CompositeKey Index::KeyFor(const Row& row) const {
  CompositeKey key;
  key.values.reserve(column_positions_.size());
  for (int pos : column_positions_) {
    key.values.push_back(pos >= 0 && static_cast<size_t>(pos) < row.size()
                             ? row[static_cast<size_t>(pos)]
                             : Value::Null_());
  }
  return key;
}

void Index::Insert(const Row& row, size_t slot) { entries_.emplace(KeyFor(row), slot); }

void Index::Remove(const Row& row, size_t slot) {
  auto [begin, end] = entries_.equal_range(KeyFor(row));
  for (auto it = begin; it != end; ++it) {
    if (it->second == slot) {
      entries_.erase(it);
      return;
    }
  }
}

std::vector<size_t> Index::Lookup(const CompositeKey& key) const {
  std::vector<size_t> out;
  auto [begin, end] = entries_.equal_range(key);
  for (auto it = begin; it != end; ++it) out.push_back(it->second);
  return out;
}

bool Index::Contains(const CompositeKey& key) const { return entries_.count(key) > 0; }

void Index::ForEachEntry(
    const std::function<void(const CompositeKey&, size_t)>& fn) const {
  for (const auto& [key, slot] : entries_) fn(key, slot);
}

}  // namespace sqlcheck
