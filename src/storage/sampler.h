#pragma once

#include <cstdint>
#include <vector>

#include "storage/table.h"

namespace sqlcheck {

/// \brief Reservoir-samples up to `limit` live row slots from `table`
/// (deterministic for a given seed). Used by the data analyzer because
/// profiling full tables is the expensive part of data analysis (§4.2).
std::vector<size_t> SampleSlots(const Table& table, size_t limit, uint64_t seed);

/// \brief Materializes the sampled rows.
std::vector<Row> SampleRows(const Table& table, size_t limit, uint64_t seed);

}  // namespace sqlcheck
