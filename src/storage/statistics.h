#pragma once

#include <optional>
#include <string>
#include <vector>

#include "catalog/value.h"
#include "storage/table.h"

namespace sqlcheck {

/// \brief Column profile computed by the data analyzer (§4.2): the
/// distribution facts that data rules key off.
struct ColumnStats {
  std::string column;
  size_t row_count = 0;
  size_t null_count = 0;
  size_t distinct_count = 0;
  std::optional<Value> min;
  std::optional<Value> max;
  double mean = 0.0;          ///< Over numeric values only.
  double avg_length = 0.0;    ///< Over string values only.
  Value top_value;            ///< Most frequent non-null value.
  size_t top_frequency = 0;

  // Fractions over non-null *string* values — the signals the paper's data
  // rules use (multi-valued attributes, incorrect types, missing timezones).
  double numeric_string_fraction = 0.0;  ///< Strings that parse as numbers.
  double date_string_fraction = 0.0;     ///< Strings that look like dates/timestamps.
  double timezone_fraction = 0.0;        ///< Date-like strings carrying a TZ.
  double delimited_fraction = 0.0;       ///< Strings that look delimiter-separated.
  char dominant_delimiter = '\0';        ///< Most common separator when delimited.

  double NullFraction() const {
    return row_count == 0 ? 0.0 : static_cast<double>(null_count) / row_count;
  }
  double DistinctRatio() const {
    size_t non_null = row_count - null_count;
    return non_null == 0 ? 0.0 : static_cast<double>(distinct_count) / non_null;
  }
};

/// \brief Table-level profile.
struct TableStats {
  std::string table;
  size_t row_count = 0;
  std::vector<ColumnStats> columns;

  const ColumnStats* FindColumn(std::string_view name) const;
};

/// \brief Profiles every column of `table`, optionally over a sample of at
/// most `sample_limit` rows (0 = full scan). Deterministic for a given seed.
TableStats ComputeTableStats(const Table& table, size_t sample_limit = 0,
                             uint64_t seed = 42);

/// \brief True if `s` looks like a delimiter-separated list of at least two
/// non-empty fields; sets `*delimiter` to the separator found.
bool LooksDelimited(const std::string& s, char* delimiter);

}  // namespace sqlcheck
