#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "storage/index.h"

namespace sqlcheck {

/// \brief In-memory row store with tombstoned deletes and maintained hash
/// indexes. Constraint *enforcement* lives in the executor; the table is the
/// physical layer (slots, index maintenance, schema changes).
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  const TableSchema& schema() const { return schema_; }
  TableSchema& schema_mutable() { return schema_; }

  size_t live_row_count() const { return live_count_; }
  size_t slot_count() const { return rows_.size(); }
  bool IsLive(size_t slot) const { return slot < live_.size() && live_[slot]; }
  const Row& RowAt(size_t slot) const { return rows_[slot]; }

  /// Appends a row (caller has already validated it) and updates all indexes.
  /// Returns the new slot.
  size_t Insert(Row row);

  /// Replaces the row in `slot`, updating every index entry touched.
  Status UpdateRow(size_t slot, Row row);

  /// Tombstones the row in `slot` and removes its index entries.
  Status DeleteRow(size_t slot);

  /// Invokes `fn(slot, row)` for every live row.
  void ForEachLive(const std::function<void(size_t, const Row&)>& fn) const;

  /// Collects live slots (handy for sampling and tests).
  std::vector<size_t> LiveSlots() const;

  // ------------------------------- indexes --------------------------------
  /// Builds a new index over existing rows. Fails if a column is unknown or
  /// the name already exists on this table.
  Status CreateIndex(const IndexSchema& schema);
  Status DropIndex(std::string_view name);
  const std::vector<std::unique_ptr<Index>>& indexes() const { return indexes_; }

  /// First index whose leading column is `column` (nullptr when none).
  const Index* FindIndexOnColumn(std::string_view column) const;
  /// First SINGLE-column index on exactly `column` — the one usable for
  /// point lookups by that column alone (nullptr when none).
  const Index* FindSingleColumnIndex(std::string_view column) const;
  /// Index matching the column list exactly (nullptr when none).
  const Index* FindIndexOnColumns(const std::vector<std::string>& columns) const;

  // ----------------------------- schema changes ---------------------------
  /// Adds a column with a fill value for existing rows.
  Status AddColumn(const ColumnSchema& column, const Value& fill);
  /// Removes a column and rewrites all rows (indexes on it are dropped).
  Status DropColumn(std::string_view name);

  // --------------------------- auto-increment -----------------------------
  int64_t NextAutoValue() { return ++auto_counter_; }
  void ObserveAutoValue(int64_t v) {
    if (v > auto_counter_) auto_counter_ = v;
  }

 private:
  TableSchema schema_;
  std::vector<Row> rows_;
  std::vector<bool> live_;
  size_t live_count_ = 0;
  int64_t auto_counter_ = 0;
  std::vector<std::unique_ptr<Index>> indexes_;
};

}  // namespace sqlcheck
