#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "catalog/value.h"

namespace sqlcheck {

/// \brief Hash index over one or more columns of a table.
///
/// Maps a composite key to the set of live row slots holding it. The owning
/// Table maintains entries on every insert/update/delete — which is exactly
/// the write amplification the Index Overuse experiment (Fig. 8a) measures.
class Index {
 public:
  Index(IndexSchema schema, std::vector<int> column_positions)
      : schema_(std::move(schema)), column_positions_(std::move(column_positions)) {}

  const IndexSchema& schema() const { return schema_; }
  const std::vector<int>& column_positions() const { return column_positions_; }

  /// Extracts this index's key from a full row.
  CompositeKey KeyFor(const Row& row) const;

  void Insert(const Row& row, size_t slot);
  void Remove(const Row& row, size_t slot);

  /// Row slots whose key equals `key` (unordered).
  std::vector<size_t> Lookup(const CompositeKey& key) const;

  /// True if some live entry already has this key (for UNIQUE enforcement).
  bool Contains(const CompositeKey& key) const;

  /// Visits every (key, slot) entry. Entries with equal keys are visited
  /// consecutively (multimap guarantee) — the executor's index-assisted
  /// GROUP BY relies on this adjacency.
  void ForEachEntry(const std::function<void(const CompositeKey&, size_t)>& fn) const;

  size_t entry_count() const { return entries_.size(); }

 private:
  IndexSchema schema_;
  std::vector<int> column_positions_;
  std::unordered_multimap<CompositeKey, size_t, CompositeKeyHash> entries_;
};

}  // namespace sqlcheck
