#include "storage/sampler.h"

#include <algorithm>

#include "common/random.h"

namespace sqlcheck {

std::vector<size_t> SampleSlots(const Table& table, size_t limit, uint64_t seed) {
  std::vector<size_t> reservoir;
  if (limit == 0) return reservoir;
  reservoir.reserve(limit);
  Rng rng(seed);
  size_t seen = 0;
  table.ForEachLive([&](size_t slot, const Row&) {
    if (reservoir.size() < limit) {
      reservoir.push_back(slot);
    } else {
      size_t j = static_cast<size_t>(rng.NextBelow(seen + 1));
      if (j < limit) reservoir[j] = slot;
    }
    ++seen;
  });
  std::sort(reservoir.begin(), reservoir.end());
  return reservoir;
}

std::vector<Row> SampleRows(const Table& table, size_t limit, uint64_t seed) {
  std::vector<Row> out;
  for (size_t slot : SampleSlots(table, limit, seed)) {
    out.push_back(table.RowAt(slot));
  }
  return out;
}

}  // namespace sqlcheck
