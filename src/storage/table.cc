#include "storage/table.h"

#include "common/strings.h"

namespace sqlcheck {

size_t Table::Insert(Row row) {
  size_t slot = rows_.size();
  rows_.push_back(std::move(row));
  live_.push_back(true);
  ++live_count_;
  for (auto& index : indexes_) index->Insert(rows_[slot], slot);
  return slot;
}

Status Table::UpdateRow(size_t slot, Row row) {
  if (!IsLive(slot)) return Status::Error("update of dead slot");
  for (auto& index : indexes_) index->Remove(rows_[slot], slot);
  rows_[slot] = std::move(row);
  for (auto& index : indexes_) index->Insert(rows_[slot], slot);
  return Status::Ok();
}

Status Table::DeleteRow(size_t slot) {
  if (!IsLive(slot)) return Status::Error("delete of dead slot");
  for (auto& index : indexes_) index->Remove(rows_[slot], slot);
  live_[slot] = false;
  --live_count_;
  return Status::Ok();
}

void Table::ForEachLive(const std::function<void(size_t, const Row&)>& fn) const {
  for (size_t slot = 0; slot < rows_.size(); ++slot) {
    if (live_[slot]) fn(slot, rows_[slot]);
  }
}

std::vector<size_t> Table::LiveSlots() const {
  std::vector<size_t> out;
  out.reserve(live_count_);
  for (size_t slot = 0; slot < rows_.size(); ++slot) {
    if (live_[slot]) out.push_back(slot);
  }
  return out;
}

Status Table::CreateIndex(const IndexSchema& index_schema) {
  for (const auto& existing : indexes_) {
    if (EqualsIgnoreCase(existing->schema().name, index_schema.name)) {
      return Status::Error("index already exists: " + index_schema.name);
    }
  }
  std::vector<int> positions;
  for (const auto& col : index_schema.columns) {
    int pos = schema_.ColumnIndex(col);
    if (pos < 0) {
      return Status::Error("no such column for index: " + col);
    }
    positions.push_back(pos);
  }
  auto index = std::make_unique<Index>(index_schema, std::move(positions));
  ForEachLive([&](size_t slot, const Row& row) { index->Insert(row, slot); });
  indexes_.push_back(std::move(index));
  return Status::Ok();
}

Status Table::DropIndex(std::string_view name) {
  for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
    if (EqualsIgnoreCase((*it)->schema().name, name)) {
      indexes_.erase(it);
      return Status::Ok();
    }
  }
  return Status::Error("no such index: " + std::string(name));
}

const Index* Table::FindIndexOnColumn(std::string_view column) const {
  for (const auto& index : indexes_) {
    const auto& cols = index->schema().columns;
    if (!cols.empty() && EqualsIgnoreCase(cols[0], column)) return index.get();
  }
  return nullptr;
}

const Index* Table::FindSingleColumnIndex(std::string_view column) const {
  for (const auto& index : indexes_) {
    const auto& cols = index->schema().columns;
    if (cols.size() == 1 && EqualsIgnoreCase(cols[0], column)) return index.get();
  }
  return nullptr;
}

const Index* Table::FindIndexOnColumns(const std::vector<std::string>& columns) const {
  for (const auto& index : indexes_) {
    const auto& cols = index->schema().columns;
    if (cols.size() != columns.size()) continue;
    bool all = true;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (!EqualsIgnoreCase(cols[i], columns[i])) {
        all = false;
        break;
      }
    }
    if (all) return index.get();
  }
  return nullptr;
}

Status Table::AddColumn(const ColumnSchema& column, const Value& fill) {
  if (schema_.FindColumn(column.name) != nullptr) {
    return Status::Error("duplicate column: " + column.name);
  }
  schema_.columns.push_back(column);
  for (auto& row : rows_) row.push_back(fill);
  return Status::Ok();
}

Status Table::DropColumn(std::string_view name) {
  int pos = schema_.ColumnIndex(name);
  if (pos < 0) return Status::Error("no such column: " + std::string(name));

  // Any index touching the column must go (it indexes a dead position); the
  // rest must be rebuilt because positions shift.
  std::vector<IndexSchema> keep;
  for (const auto& index : indexes_) {
    bool touches = false;
    for (const auto& col : index->schema().columns) {
      if (EqualsIgnoreCase(col, name)) touches = true;
    }
    if (!touches) keep.push_back(index->schema());
  }
  indexes_.clear();

  schema_.columns.erase(schema_.columns.begin() + pos);
  std::erase_if(schema_.primary_key,
                [&](const std::string& c) { return EqualsIgnoreCase(c, name); });
  std::erase_if(schema_.foreign_keys, [&](const ForeignKeySchema& fk) {
    for (const auto& c : fk.columns) {
      if (EqualsIgnoreCase(c, name)) return true;
    }
    return false;
  });
  for (auto& row : rows_) row.erase(row.begin() + pos);

  for (const auto& index_schema : keep) {
    Status s = CreateIndex(index_schema);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace sqlcheck
