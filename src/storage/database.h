#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "storage/table.h"

namespace sqlcheck {

/// \brief An in-memory database: named tables plus a catalog view. This is
/// the substrate standing in for PostgreSQL/SQLite in the paper's
/// experiments — it is what the data analyzer profiles and what the executor
/// runs queries against.
class Database {
 public:
  explicit Database(std::string name = "db") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  Status CreateTable(TableSchema schema);
  Status DropTable(std::string_view name);
  Table* GetTable(std::string_view name);
  const Table* GetTable(std::string_view name) const;
  std::vector<Table*> Tables();
  std::vector<const Table*> Tables() const;

  Status CreateIndex(const IndexSchema& index);
  Status DropIndex(std::string_view name);

  /// Rebuilds a Catalog snapshot (schemas + indexes) from current state.
  Catalog BuildCatalog() const;

  size_t table_count() const { return tables_.size(); }

 private:
  std::string name_;
  std::map<std::string, std::unique_ptr<Table>> tables_;  // keyed lowercased
};

}  // namespace sqlcheck
