#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "rules/rule.h"

namespace sqlcheck {

/// \brief Re-implementation of the dbdeo baseline (Sharma et al., ICSE'18):
/// the state-of-the-art sqlcheck compares against in §8.1.
///
/// dbdeo detects database smells by pattern-matching *raw SQL strings*, one
/// statement at a time: no parse tree, no inter-query context, no data
/// analysis, no ranking, no fixes. It covers 11 smell types. The
/// context-freeness is faithful to the original and is what produces its
/// false positives/negatives relative to sqlcheck (Table 2).
class Dbdeo {
 public:
  /// One statement; returns the smells matched on its raw text.
  std::vector<Detection> Check(std::string_view sql_text) const;

  /// Whole workload, statement by statement.
  std::vector<Detection> CheckAll(const std::vector<std::string>& statements) const;

  /// The 11 smell types dbdeo supports.
  static const std::vector<AntiPattern>& SupportedTypes();
};

}  // namespace sqlcheck
