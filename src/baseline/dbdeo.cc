#include "baseline/dbdeo.h"

#include <cctype>

#include "common/strings.h"

namespace sqlcheck {

namespace {

Detection Smell(AntiPattern type, std::string_view sql_text, std::string message) {
  Detection d;
  d.type = type;
  d.source = DetectionSource::kIntraQuery;
  d.query = std::string(sql_text);
  d.message = std::move(message);
  return d;
}

/// Counts occurrences of `needle` (case-insensitive) in `haystack`.
int CountIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return 0;
  int count = 0;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (EqualsIgnoreCase(haystack.substr(i, needle.size()), needle)) ++count;
  }
  return count;
}

/// Number of top-level commas inside the first (...) group — dbdeo's crude
/// way of counting CREATE TABLE columns without parsing.
int CountTopLevelCommas(std::string_view sql_text) {
  int depth = 0;
  int commas = 0;
  bool in_string = false;
  bool seen_paren = false;
  for (char c : sql_text) {
    if (c == '\'') in_string = !in_string;
    if (in_string) continue;
    if (c == '(') {
      ++depth;
      seen_paren = true;
    } else if (c == ')') {
      --depth;
      if (depth == 0 && seen_paren) break;
    } else if (c == ',' && depth == 1) {
      ++commas;
    }
  }
  return commas;
}

bool TableNameHasNumericSuffix(std::string_view sql_text) {
  // Scan for "TABLE <name>" and test the name's tail.
  for (size_t i = 0; i + 6 <= sql_text.size(); ++i) {
    if (!EqualsIgnoreCase(sql_text.substr(i, 5), "table")) continue;
    size_t j = i + 5;
    while (j < sql_text.size() && std::isspace(static_cast<unsigned char>(sql_text[j]))) ++j;
    size_t start = j;
    while (j < sql_text.size() &&
           (std::isalnum(static_cast<unsigned char>(sql_text[j])) || sql_text[j] == '_')) {
      ++j;
    }
    if (j > start) {
      std::string_view name = sql_text.substr(start, j - start);
      size_t digits = 0;
      while (digits < name.size() &&
             std::isdigit(static_cast<unsigned char>(name[name.size() - 1 - digits]))) {
        ++digits;
      }
      return digits > 0 && digits < name.size();
    }
  }
  return false;
}

}  // namespace

const std::vector<AntiPattern>& Dbdeo::SupportedTypes() {
  static const std::vector<AntiPattern>* kTypes = new std::vector<AntiPattern>{
      AntiPattern::kNoPrimaryKey,     AntiPattern::kDataInMetadata,
      AntiPattern::kEnumeratedTypes,  AntiPattern::kIndexUnderuse,
      AntiPattern::kGodTable,         AntiPattern::kCloneTable,
      AntiPattern::kRoundingErrors,   AntiPattern::kMultiValuedAttribute,
      AntiPattern::kPatternMatching,  AntiPattern::kAdjacencyList,
      AntiPattern::kIndexOveruse,
  };
  return *kTypes;
}

std::vector<Detection> Dbdeo::Check(std::string_view sql_text) const {
  std::vector<Detection> out;
  std::string lower = ToLower(sql_text);
  bool is_create_table = ContainsIgnoreCase(lower, "create table");
  bool is_select = lower.rfind("select", 0) == 0;

  // --- No Primary Key: CREATE TABLE text lacking "primary key". -----------
  if (is_create_table && !ContainsIgnoreCase(lower, "primary key")) {
    out.push_back(Smell(AntiPattern::kNoPrimaryKey, sql_text,
                        "dbdeo: CREATE TABLE without 'primary key' substring"));
  }

  // --- God Table: >10 commas in the column group (no parsing!). -----------
  if (is_create_table && CountTopLevelCommas(sql_text) >= 10) {
    out.push_back(
        Smell(AntiPattern::kGodTable, sql_text, "dbdeo: many columns in CREATE TABLE"));
  }

  // --- Enumerated Types: the words ENUM or CHECK...IN anywhere. ------------
  // Context-free, so 'enum' inside an identifier or comment also fires (FP).
  if (lower.find("enum") != std::string::npos ||
      (lower.find("check") != std::string::npos && lower.find(" in ") != std::string::npos &&
       lower.find("(") != std::string::npos)) {
    out.push_back(Smell(AntiPattern::kEnumeratedTypes, sql_text,
                        "dbdeo: enum/check-in-list keyword match"));
  }

  // --- Rounding Errors: FLOAT/REAL/DOUBLE keyword anywhere. ----------------
  if (lower.find("float") != std::string::npos || lower.find(" real") != std::string::npos ||
      lower.find("double") != std::string::npos) {
    out.push_back(Smell(AntiPattern::kRoundingErrors, sql_text,
                        "dbdeo: floating-point type keyword match"));
  }

  // --- Pattern Matching: LIKE/REGEXP keyword in SELECTs. -------------------
  // Misses leading-wildcard distinction; flags benign prefix LIKEs (FP) and
  // skips regex operators it does not know (~) (FN).
  if (is_select && (lower.find(" like ") != std::string::npos ||
                    lower.find(" regexp ") != std::string::npos ||
                    lower.find(" rlike ") != std::string::npos)) {
    out.push_back(Smell(AntiPattern::kPatternMatching, sql_text,
                        "dbdeo: LIKE/REGEXP keyword in query"));
  }

  // --- Multi-Valued Attribute: the paper's (id\s+regexp)|(id\s+like). ------
  {
    size_t pos = lower.find("id");
    bool hit = false;
    while (pos != std::string::npos && !hit) {
      size_t after = pos + 2;
      size_t ws = after;
      while (ws < lower.size() && std::isspace(static_cast<unsigned char>(lower[ws]))) ++ws;
      if (ws > after && (lower.compare(ws, 4, "like") == 0 ||
                         lower.compare(ws, 6, "regexp") == 0)) {
        hit = true;
      }
      pos = lower.find("id", pos + 1);
    }
    if (hit) {
      out.push_back(Smell(AntiPattern::kMultiValuedAttribute, sql_text,
                          "dbdeo: id-column pattern-matched (packed list suspected)"));
    }
  }

  // --- Adjacency List: table mentioned twice around REFERENCES. ------------
  if (is_create_table && ContainsIgnoreCase(lower, "references")) {
    // Crude: self-reference guessed when "parent" naming is present.
    if (lower.find("parent") != std::string::npos) {
      out.push_back(Smell(AntiPattern::kAdjacencyList, sql_text,
                          "dbdeo: parent-style self reference suspected"));
    }
  }

  // --- Clone Table: numeric-suffixed table name (single statement only,
  // so a lone "backup_2" also fires — FP vs sqlcheck's catalog check). ------
  if (is_create_table && TableNameHasNumericSuffix(sql_text)) {
    out.push_back(Smell(AntiPattern::kCloneTable, sql_text,
                        "dbdeo: numeric-suffixed table name"));
  }

  // --- Data In Metadata: numbered column names col1, col2... ---------------
  {
    int numbered = 0;
    for (size_t i = 0; i + 1 < lower.size(); ++i) {
      if (std::isalpha(static_cast<unsigned char>(lower[i])) &&
          std::isdigit(static_cast<unsigned char>(lower[i + 1]))) {
        size_t j = i + 1;
        while (j < lower.size() && std::isdigit(static_cast<unsigned char>(lower[j]))) ++j;
        bool ends_identifier =
            j >= lower.size() ||
            !(std::isalnum(static_cast<unsigned char>(lower[j])) || lower[j] == '_');
        if (ends_identifier) ++numbered;
        i = j;
      }
    }
    // Fires on ANY statement with 2+ digit-tailed identifiers, including
    // aliases like t1/t2 in joins — a classic dbdeo false positive.
    if (numbered >= 2) {
      out.push_back(Smell(AntiPattern::kDataInMetadata, sql_text,
                          "dbdeo: numbered identifier series"));
    }
  }

  // --- Index Underuse: WHERE on a SELECT with no CREATE INDEX nearby. ------
  // Statement-local, so it flags every filtered SELECT (massive FP source) —
  // dbdeo cannot see the other statements that create the index.
  if (is_select && lower.find(" where ") != std::string::npos &&
      lower.find(" join ") == std::string::npos && CountIgnoreCase(lower, "=") >= 1 &&
      lower.find(" like ") == std::string::npos) {
    out.push_back(Smell(AntiPattern::kIndexUnderuse, sql_text,
                        "dbdeo: filtered query assumed unindexed"));
  }

  // --- Index Overuse: multi-column or repeated CREATE INDEX text. ----------
  if (ContainsIgnoreCase(lower, "create index") && CountTopLevelCommas(sql_text) >= 1) {
    out.push_back(Smell(AntiPattern::kIndexOveruse, sql_text,
                        "dbdeo: wide index definition"));
  }

  return out;
}

std::vector<Detection> Dbdeo::CheckAll(const std::vector<std::string>& statements) const {
  std::vector<Detection> out;
  for (const auto& sql_text : statements) {
    auto found = Check(sql_text);
    out.insert(out.end(), std::make_move_iterator(found.begin()),
               std::make_move_iterator(found.end()));
  }
  return out;
}

}  // namespace sqlcheck
