#pragma once

#include <map>

#include "rules/rule.h"

namespace sqlcheck {

/// \brief The six raw impact metrics ap-rank collects per AP (§5.1):
///   RP/WP — measured speedup of read/write queries after fixing the AP
///           (e.g. 636x for the multi-valued attribute lookup, Fig. 3a);
///   M     — number of query changes a schema evolution task needs (O(Q) vs
///           O(1), §5.1 ❷), expressed as a small integer scale;
///   DA    — data amplification factor removed by the fix;
///   DI/A  — binary: does the AP threaten integrity / accuracy.
struct ApMetrics {
  double read_speedup = 0.0;
  double write_speedup = 0.0;
  double maintainability = 0.0;
  double data_amplification = 0.0;
  int data_integrity = 0;  // 0/1
  int accuracy = 0;        // 0/1
};

/// \brief Store of per-AP metrics. Seeded from the paper's GlobaLeaks
/// empirical analysis (§8.2) and updatable as new performance data arrives —
/// the "retraining" loop of §3 step ❹.
class MetricsStore {
 public:
  /// Store seeded with the built-in calibration table.
  static MetricsStore Default();

  const ApMetrics& For(AntiPattern type) const;

  /// Blends a fresh measurement into the stored metrics (exponential moving
  /// average with weight `alpha` on the new observation).
  void RecordObservation(AntiPattern type, const ApMetrics& observed, double alpha = 0.3);

  void Set(AntiPattern type, ApMetrics metrics) { metrics_[type] = metrics; }

 private:
  std::map<AntiPattern, ApMetrics> metrics_;
};

}  // namespace sqlcheck
