#include "ranking/metrics.h"

namespace sqlcheck {

namespace {

/// Calibration table. RP/WP come from the paper's measurements where stated
/// (Figs. 3 and 8); the rest follow Table 1's impact flags.
std::map<AntiPattern, ApMetrics> BuildDefaults() {
  std::map<AntiPattern, ApMetrics> m;
  auto set = [&](AntiPattern t, double rp, double wp, double maint, double da, int di,
                 int a) { m[t] = ApMetrics{rp, wp, maint, da, di, a}; };

  // Logical design.
  set(AntiPattern::kMultiValuedAttribute, 636.0, 3.0, 4.0, 2.0, 1, 1);  // Fig 3a
  set(AntiPattern::kNoPrimaryKey, 2.0, 1.0, 3.0, 2.0, 1, 0);
  set(AntiPattern::kNoForeignKey, 1.1, 1.1, 3.0, 0.0, 1, 0);            // Fig 8d/e
  set(AntiPattern::kGenericPrimaryKey, 0.0, 0.0, 1.0, 0.0, 0, 0);
  set(AntiPattern::kDataInMetadata, 2.0, 1.5, 4.0, 2.0, 1, 1);
  set(AntiPattern::kAdjacencyList, 1.1, 0.0, 2.0, 0.0, 0, 0);           // §8.5: PG11 ~1.1x
  set(AntiPattern::kGodTable, 1.5, 1.2, 3.0, 0.0, 0, 0);

  // Physical design.
  set(AntiPattern::kRoundingErrors, 0.0, 0.0, 1.0, 0.0, 0, 1);
  set(AntiPattern::kEnumeratedTypes, 0.0, 10.0, 2.0, 1.0, 0, 0);        // Fig 7b row
  set(AntiPattern::kExternalDataStorage, 0.0, 0.0, 2.0, 0.0, 1, 1);
  set(AntiPattern::kIndexOveruse, 1.0, 10.0, 1.0, 1.0, 0, 0);           // Fig 8a: ~10x
  set(AntiPattern::kIndexUnderuse, 1.5, 0.0, 0.0, 0.0, 0, 0);           // Fig 7b row
  set(AntiPattern::kCloneTable, 1.5, 1.0, 4.0, 0.0, 1, 1);

  // Query APs.
  set(AntiPattern::kColumnWildcard, 1.3, 0.0, 1.0, 0.0, 0, 1);
  set(AntiPattern::kConcatenateNulls, 0.0, 0.0, 0.5, 0.0, 0, 1);
  set(AntiPattern::kOrderingByRand, 5.0, 0.0, 0.0, 0.0, 0, 0);
  set(AntiPattern::kPatternMatching, 10.0, 0.0, 0.5, 0.0, 0, 0);
  set(AntiPattern::kImplicitColumns, 0.0, 0.0, 2.0, 0.0, 1, 0);
  set(AntiPattern::kDistinctAndJoin, 2.0, 0.0, 1.0, 0.0, 0, 0);
  set(AntiPattern::kTooManyJoins, 3.0, 0.0, 0.5, 0.0, 0, 0);
  set(AntiPattern::kReadablePassword, 0.0, 0.0, 0.5, 0.0, 1, 1);

  // Data APs.
  set(AntiPattern::kMissingTimezone, 0.0, 0.0, 1.0, 0.0, 0, 1);
  set(AntiPattern::kIncorrectDataType, 1.5, 0.0, 1.0, 2.0, 0, 0);
  set(AntiPattern::kDenormalizedTable, 1.5, 0.0, 1.0, 3.0, 0, 0);
  set(AntiPattern::kInformationDuplication, 0.0, 0.0, 2.0, 1.0, 1, 1);
  set(AntiPattern::kRedundantColumn, 0.0, 0.0, 0.5, 2.0, 0, 0);
  set(AntiPattern::kNoDomainConstraint, 0.0, 0.0, 1.0, 1.0, 1, 0);
  return m;
}

}  // namespace

MetricsStore MetricsStore::Default() {
  MetricsStore store;
  store.metrics_ = BuildDefaults();
  return store;
}

const ApMetrics& MetricsStore::For(AntiPattern type) const {
  static const ApMetrics kZero{};
  auto it = metrics_.find(type);
  return it == metrics_.end() ? kZero : it->second;
}

void MetricsStore::RecordObservation(AntiPattern type, const ApMetrics& observed,
                                     double alpha) {
  ApMetrics& current = metrics_[type];
  auto blend = [alpha](double old_value, double new_value) {
    return (1.0 - alpha) * old_value + alpha * new_value;
  };
  current.read_speedup = blend(current.read_speedup, observed.read_speedup);
  current.write_speedup = blend(current.write_speedup, observed.write_speedup);
  current.maintainability = blend(current.maintainability, observed.maintainability);
  current.data_amplification =
      blend(current.data_amplification, observed.data_amplification);
  // Binary flags stick once observed.
  current.data_integrity = current.data_integrity | observed.data_integrity;
  current.accuracy = current.accuracy | observed.accuracy;
}

}  // namespace sqlcheck
