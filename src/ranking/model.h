#pragma once

#include <vector>

#include "ranking/metrics.h"
#include "rules/rule.h"

namespace sqlcheck {

/// \brief Weights over the six metrics (Figure 7a of the paper).
struct RankingWeights {
  double rp = 0.7;
  double wp = 0.15;
  double m = 0.05;
  double da = 0.04;
  double di = 0.02;
  double a = 0.02;

  /// C1: prioritizes read performance (analytical workloads).
  static RankingWeights C1() { return {0.7, 0.15, 0.05, 0.04, 0.02, 0.02}; }
  /// C2: equal read/write priority (hybrid transactional/analytical).
  static RankingWeights C2() { return {0.4, 0.4, 0.1, 0.04, 0.02, 0.02}; }
};

/// \brief Inter-query ranking mode (§5.2 "Model Components" ❶/❷).
enum class InterQueryMode {
  kByScore,    ///< Flat ordering by computed impact score.
  kByApCount,  ///< Queries with more APs first, score breaks ties.
};

/// \brief One detection with its computed impact score.
struct RankedDetection {
  Detection detection;
  double score = 0.0;
  ApMetrics metrics;
};

/// \brief Severity grading of a Figure-6 impact score — the single place
/// the thresholds live, so every consumer (the text renderer's color
/// grading, the --fixes JSON "severity" field) draws the same lines.
enum class Severity { kHigh, kMedium, kLow };

/// >= 0.5 is high, >= 0.15 medium, below that low.
Severity ScoreSeverity(double score);

/// Stable lowercase name ("high" / "medium" / "low").
const char* SeverityName(Severity severity);

/// \brief ap-rank: scores detections with the Figure 6 formulae and orders
/// them so the developer's attention lands on high-impact APs first.
class RankingModel {
 public:
  explicit RankingModel(RankingWeights weights = RankingWeights::C1(),
                        InterQueryMode mode = InterQueryMode::kByScore,
                        MetricsStore metrics = MetricsStore::Default())
      : weights_(weights), mode_(mode), metrics_(std::move(metrics)) {}

  /// Figure 6: score = Wrp*min(1,RP/5) + Wwp*min(1,WP/5) + Wm*min(1,M/5)
  ///                 + Wda*min(1,DA/8) + Wdi*DI + Wa*A.
  double Score(const ApMetrics& metrics) const;

  /// Scores one detection using the metric store (query-aware: detections on
  /// read-only statements emphasize RP, write statements WP).
  RankedDetection ScoreDetection(Detection detection) const;

  /// Ranks all detections, highest impact first.
  std::vector<RankedDetection> Rank(std::vector<Detection> detections) const;

  const MetricsStore& metrics_store() const { return metrics_; }
  MetricsStore& metrics_store() { return metrics_; }
  const RankingWeights& weights() const { return weights_; }

 private:
  RankingWeights weights_;
  InterQueryMode mode_;
  MetricsStore metrics_;
};

}  // namespace sqlcheck
