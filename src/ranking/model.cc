#include "ranking/model.h"

#include <algorithm>
#include <map>

namespace sqlcheck {

namespace {
double Squash5(double x) { return std::min(1.0, x / 5.0); }
double Squash8(double x) { return std::min(1.0, x / 8.0); }

/// Speedups are reported as ratios (1.0 = no change); the score input is the
/// *improvement*, so 1.0 maps to 0.
double SpeedupInput(double ratio) { return ratio > 1.0 ? ratio : 0.0; }
}  // namespace

double RankingModel::Score(const ApMetrics& m) const {
  return weights_.rp * Squash5(SpeedupInput(m.read_speedup)) +
         weights_.wp * Squash5(SpeedupInput(m.write_speedup)) +
         weights_.m * Squash5(m.maintainability) +
         weights_.da * Squash8(m.data_amplification) +
         weights_.di * static_cast<double>(m.data_integrity) +
         weights_.a * static_cast<double>(m.accuracy);
}

RankedDetection RankingModel::ScoreDetection(Detection detection) const {
  RankedDetection ranked;
  ranked.metrics = metrics_.For(detection.type);

  // Query-aware adjustment (§5.2): map the offending statement to the
  // standard query types. A detection on a pure read statement cannot buy
  // write speedup and vice versa.
  if (detection.stmt != nullptr) {
    switch (detection.stmt->kind) {
      case sql::StatementKind::kSelect:
        ranked.metrics.write_speedup = 0.0;
        break;
      case sql::StatementKind::kInsert:
      case sql::StatementKind::kUpdate:
      case sql::StatementKind::kDelete:
        ranked.metrics.read_speedup = 0.0;
        break;
      default:
        break;  // DDL detections keep the full profile
    }
  }
  ranked.score = Score(ranked.metrics);
  ranked.detection = std::move(detection);
  return ranked;
}

std::vector<RankedDetection> RankingModel::Rank(std::vector<Detection> detections) const {
  std::vector<RankedDetection> ranked;
  ranked.reserve(detections.size());
  for (Detection& d : detections) ranked.push_back(ScoreDetection(std::move(d)));

  if (mode_ == InterQueryMode::kByApCount) {
    // ❶ queries with more APs first; score breaks ties within and across.
    std::map<std::string, int> per_query;
    for (const auto& r : ranked) ++per_query[r.detection.query];
    std::stable_sort(ranked.begin(), ranked.end(),
                     [&](const RankedDetection& a, const RankedDetection& b) {
                       int ca = per_query[a.detection.query];
                       int cb = per_query[b.detection.query];
                       if (ca != cb) return ca > cb;
                       return a.score > b.score;
                     });
  } else {
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const RankedDetection& a, const RankedDetection& b) {
                       return a.score > b.score;
                     });
  }
  return ranked;
}

Severity ScoreSeverity(double score) {
  if (score >= 0.5) return Severity::kHigh;
  if (score >= 0.15) return Severity::kMedium;
  return Severity::kLow;
}

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kHigh: return "high";
    case Severity::kMedium: return "medium";
    case Severity::kLow: return "low";
  }
  return "low";
}

}  // namespace sqlcheck
