#include "fix/verify_exec.h"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "catalog/value.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "common/strings.h"
#include "engine/executor.h"
#include "sql/ast.h"
#include "sql/parser.h"
#include "storage/database.h"
#include "storage/table.h"

namespace sqlcheck {
namespace {

using Outcome = ExecCheck::Outcome;

ExecCheck Equivalent() { return {Outcome::kEquivalent, ""}; }
ExecCheck Divergent(std::string note) { return {Outcome::kDivergent, std::move(note)}; }
ExecCheck Infeasible(std::string note) { return {Outcome::kInfeasible, std::move(note)}; }
ExecCheck Skipped() { return {Outcome::kSkipped, ""}; }

uint64_t Fnv1a(std::string_view text) {
  uint64_t hash = 1469598103934665603ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

// ---------------------------------------------------------------------------
// Statement walking: root expressions, referenced tables, alias resolution
// ---------------------------------------------------------------------------

// Invokes `fn` on every root expression of the statement (select items, join
// conditions, WHERE/HAVING, GROUP BY / ORDER BY keys, UPDATE assignments).
// Subquery table sources recurse through CollectTables separately.
void ForEachRootExpr(const sql::Statement& stmt,
                     const std::function<void(const sql::Expr&)>& fn) {
  if (const auto* select = stmt.As<sql::SelectStatement>()) {
    for (const auto& item : select->items) {
      if (item.expr) fn(*item.expr);
    }
    for (const auto& join : select->joins) {
      if (join.on) fn(*join.on);
    }
    if (select->where) fn(*select->where);
    for (const auto& key : select->group_by) {
      if (key) fn(*key);
    }
    if (select->having) fn(*select->having);
    for (const auto& item : select->order_by) {
      if (item.expr) fn(*item.expr);
    }
    return;
  }
  if (const auto* update = stmt.As<sql::UpdateStatement>()) {
    for (const auto& assignment : update->assignments) {
      if (assignment.second) fn(*assignment.second);
    }
    if (update->where) fn(*update->where);
    return;
  }
  if (const auto* del = stmt.As<sql::DeleteStatement>()) {
    if (del->where) fn(*del->where);
    return;
  }
  // INSERT VALUES literals are data, not predicates; nothing to harvest.
  // An INSERT ... SELECT recurses through CollectTables instead.
}

void CollectTablesFromSelect(const sql::SelectStatement& select,
                             std::vector<std::string>* out);

void CollectTablesFromExpr(const sql::Expr& expr, std::vector<std::string>* out) {
  if (expr.subquery) CollectTablesFromSelect(*expr.subquery, out);
  for (const auto& child : expr.children) {
    if (child) CollectTablesFromExpr(*child, out);
  }
}

void CollectTablesFromSelect(const sql::SelectStatement& select,
                             std::vector<std::string>* out) {
  for (const auto& ref : select.from) {
    if (!ref.name.empty()) out->emplace_back(ref.name);
    if (ref.subquery) CollectTablesFromSelect(*ref.subquery, out);
  }
  for (const auto& join : select.joins) {
    if (!join.table.name.empty()) out->emplace_back(join.table.name);
    if (join.table.subquery) CollectTablesFromSelect(*join.table.subquery, out);
    if (join.on) CollectTablesFromExpr(*join.on, out);
  }
  for (const auto& item : select.items) {
    if (item.expr) CollectTablesFromExpr(*item.expr, out);
  }
  if (select.where) CollectTablesFromExpr(*select.where, out);
  if (select.having) CollectTablesFromExpr(*select.having, out);
  for (const auto& key : select.group_by) {
    if (key) CollectTablesFromExpr(*key, out);
  }
  for (const auto& item : select.order_by) {
    if (item.expr) CollectTablesFromExpr(*item.expr, out);
  }
}

// Every base-table name the statement touches, including tables referenced
// only from scalar subqueries (the ORDER BY RAND() probe's MAX(pk) source).
void CollectTables(const sql::Statement& stmt, std::vector<std::string>* out) {
  if (const auto* select = stmt.As<sql::SelectStatement>()) {
    CollectTablesFromSelect(*select, out);
    return;
  }
  if (const auto* insert = stmt.As<sql::InsertStatement>()) {
    if (!insert->table.empty()) out->emplace_back(insert->table);
    if (insert->select) CollectTablesFromSelect(*insert->select, out);
    return;
  }
  if (const auto* update = stmt.As<sql::UpdateStatement>()) {
    if (!update->table.empty()) out->emplace_back(update->table);
  } else if (const auto* del = stmt.As<sql::DeleteStatement>()) {
    if (!del->table.empty()) out->emplace_back(del->table);
  }
  ForEachRootExpr(stmt, [out](const sql::Expr& expr) {
    CollectTablesFromExpr(expr, out);
  });
}

// alias (lowercased) -> base table name, for resolving qualified column refs.
// `default_table` receives the sole base table when the statement has exactly
// one, so unqualified refs can be attributed.
void CollectAliases(const sql::Statement& stmt,
                    std::unordered_map<std::string, std::string>* aliases,
                    std::string* default_table) {
  std::vector<std::pair<std::string, std::string>> sources;  // (effective, base)
  auto add_ref = [&sources](const sql::TableRef& ref) {
    if (ref.name.empty()) return;
    sources.emplace_back(std::string(ref.EffectiveName()), std::string(ref.name));
  };
  if (const auto* select = stmt.As<sql::SelectStatement>()) {
    for (const auto& ref : select->from) add_ref(ref);
    for (const auto& join : select->joins) add_ref(join.table);
  } else if (const auto* insert = stmt.As<sql::InsertStatement>()) {
    if (!insert->table.empty()) {
      sources.emplace_back(std::string(insert->table), std::string(insert->table));
    }
  } else if (const auto* update = stmt.As<sql::UpdateStatement>()) {
    if (!update->table.empty()) {
      std::string effective(update->alias.empty() ? update->table : update->alias);
      sources.emplace_back(std::move(effective), std::string(update->table));
    }
  } else if (const auto* del = stmt.As<sql::DeleteStatement>()) {
    if (!del->table.empty()) {
      sources.emplace_back(std::string(del->table), std::string(del->table));
    }
  }
  for (auto& [effective, base] : sources) {
    (*aliases)[ToLower(effective)] = base;
  }
  if (sources.size() == 1 && default_table->empty()) {
    *default_table = sources.front().second;
  }
}

// ---------------------------------------------------------------------------
// Literal harvesting: plant the statements' own constants in the data
// ---------------------------------------------------------------------------

struct Harvest {
  std::vector<Value> values;          // comparison / IN / BETWEEN literals
  std::vector<std::string> patterns;  // LIKE patterns, materialized later
  bool saw_string = false;
};

// Keyed by "table_lc.column_lc"; unattributable refs are dropped.
using HarvestMap = std::unordered_map<std::string, Harvest>;

bool LiteralToValue(const sql::Expr& expr, Value* out) {
  switch (expr.kind) {
    case sql::ExprKind::kNullLiteral:
      *out = Value::Null_();
      return true;
    case sql::ExprKind::kBoolLiteral:
      *out = Value::Bool(EqualsIgnoreCase(expr.text, "true"));
      return true;
    case sql::ExprKind::kNumberLiteral: {
      std::string text(expr.text);
      if (text.find('.') == std::string::npos &&
          text.find('e') == std::string::npos &&
          text.find('E') == std::string::npos) {
        *out = Value::Int(std::strtoll(text.c_str(), nullptr, 10));
      } else {
        *out = Value::Real(std::strtod(text.c_str(), nullptr));
      }
      return true;
    }
    case sql::ExprKind::kStringLiteral:
      *out = Value::Str(std::string(expr.text));
      return true;
    default:
      return false;
  }
}

class Harvester {
 public:
  Harvester(HarvestMap* out,
            const std::unordered_map<std::string, std::string>& aliases,
            const std::string& default_table)
      : out_(out), aliases_(aliases), default_table_(default_table) {}

  void Walk(const sql::Expr& expr) {
    Observe(expr);
    if (expr.subquery) {
      if (expr.subquery->where) Walk(*expr.subquery->where);
      if (expr.subquery->having) Walk(*expr.subquery->having);
      for (const auto& join : expr.subquery->joins) {
        if (join.on) Walk(*join.on);
      }
    }
    for (const auto& child : expr.children) {
      if (child) Walk(*child);
    }
  }

 private:
  std::string KeyFor(const sql::Expr& column_ref) const {
    std::string column = ToLower(column_ref.ColumnName());
    if (column.empty()) return {};
    std::string qualifier = ToLower(column_ref.TableQualifier());
    std::string table;
    if (!qualifier.empty()) {
      auto it = aliases_.find(qualifier);
      table = ToLower(it != aliases_.end() ? it->second : qualifier);
    } else {
      table = ToLower(default_table_);
    }
    if (table.empty()) return {};
    return table + "." + column;
  }

  void Record(const std::string& key, const Value& value) {
    if (key.empty()) return;
    Harvest& harvest = (*out_)[key];
    harvest.values.push_back(value);
    if (value.is_string()) harvest.saw_string = true;
  }

  void Observe(const sql::Expr& expr) {
    switch (expr.kind) {
      case sql::ExprKind::kBinary: {
        if (expr.children.size() != 2) return;
        const sql::Expr* column = nullptr;
        const sql::Expr* literal = nullptr;
        if (expr.children[0] && expr.children[1]) {
          if (expr.children[0]->kind == sql::ExprKind::kColumnRef) {
            column = expr.children[0].get();
            literal = expr.children[1].get();
          } else if (expr.children[1]->kind == sql::ExprKind::kColumnRef) {
            column = expr.children[1].get();
            literal = expr.children[0].get();
          }
        }
        if (column == nullptr || literal == nullptr) return;
        Value value;
        if (LiteralToValue(*literal, &value)) Record(KeyFor(*column), value);
        return;
      }
      case sql::ExprKind::kLike: {
        if (expr.children.size() < 2 || !expr.children[0] || !expr.children[1]) {
          return;
        }
        if (expr.children[0]->kind != sql::ExprKind::kColumnRef) return;
        if (expr.children[1]->kind != sql::ExprKind::kStringLiteral) return;
        std::string key = KeyFor(*expr.children[0]);
        if (key.empty()) return;
        Harvest& harvest = (*out_)[key];
        harvest.patterns.emplace_back(expr.children[1]->text);
        harvest.saw_string = true;
        return;
      }
      case sql::ExprKind::kIn: {
        if (expr.children.empty() || !expr.children[0]) return;
        if (expr.children[0]->kind != sql::ExprKind::kColumnRef) return;
        std::string key = KeyFor(*expr.children[0]);
        for (size_t i = 1; i < expr.children.size(); ++i) {
          Value value;
          if (expr.children[i] && LiteralToValue(*expr.children[i], &value)) {
            Record(key, value);
          }
        }
        return;
      }
      case sql::ExprKind::kBetween: {
        if (expr.children.size() != 3 || !expr.children[0]) return;
        if (expr.children[0]->kind != sql::ExprKind::kColumnRef) return;
        std::string key = KeyFor(*expr.children[0]);
        for (size_t i = 1; i < 3; ++i) {
          Value value;
          if (expr.children[i] && LiteralToValue(*expr.children[i], &value)) {
            Record(key, value);
          }
        }
        return;
      }
      default:
        return;
    }
  }

  HarvestMap* out_;
  const std::unordered_map<std::string, std::string>& aliases_;
  const std::string& default_table_;
};

void HarvestStatement(const sql::Statement& stmt, HarvestMap* out) {
  std::unordered_map<std::string, std::string> aliases;
  std::string default_table;
  CollectAliases(stmt, &aliases, &default_table);
  Harvester harvester(out, aliases, default_table);
  ForEachRootExpr(stmt, [&harvester](const sql::Expr& expr) {
    harvester.Walk(expr);
  });
}

// Column references per table (lowercased), for synthesizing schemas of
// tables the workload never defined.
void CollectColumnRefs(
    const sql::Statement& stmt,
    std::unordered_map<std::string, std::vector<std::string>>* columns_by_table) {
  std::unordered_map<std::string, std::string> aliases;
  std::string default_table;
  CollectAliases(stmt, &aliases, &default_table);
  std::function<void(const sql::Expr&)> walk = [&](const sql::Expr& expr) {
    if (expr.kind == sql::ExprKind::kColumnRef) {
      std::string column(expr.ColumnName());
      if (!column.empty()) {
        std::string qualifier = ToLower(expr.TableQualifier());
        std::string table;
        if (!qualifier.empty()) {
          auto it = aliases.find(qualifier);
          table = ToLower(it != aliases.end() ? it->second : qualifier);
        } else {
          table = ToLower(default_table);
        }
        if (!table.empty()) (*columns_by_table)[table].push_back(column);
      }
    }
    if (expr.subquery) {
      for (const auto& item : expr.subquery->items) {
        if (item.expr) walk(*item.expr);
      }
      if (expr.subquery->where) walk(*expr.subquery->where);
    }
    for (const auto& child : expr.children) {
      if (child) walk(*child);
    }
  };
  ForEachRootExpr(stmt, walk);
  if (const auto* insert = stmt.As<sql::InsertStatement>()) {
    std::string table = ToLower(insert->table);
    if (!table.empty()) {
      for (const auto& column : insert->columns) {
        (*columns_by_table)[table].emplace_back(column);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Ephemeral database construction
// ---------------------------------------------------------------------------

// Deterministic materialization of a LIKE pattern into a matching string:
// '%' expands to a short seeded word, '_' to one seeded character, escapes
// drop to their literal. Planted into generated rows so leading-wildcard
// probes select a non-empty subset.
std::string MaterializePattern(std::string_view pattern, Rng* rng) {
  std::string result;
  bool escaped = false;
  for (char c : pattern) {
    if (escaped) {
      result.push_back(c);
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
      continue;
    }
    if (c == '%') {
      result += rng->NextWord(0, 5);
    } else if (c == '_') {
      result += static_cast<char>('a' + rng->NextBelow(26));
    } else {
      result.push_back(c);
    }
  }
  return result;
}

bool IsIdish(const std::string& lc) {
  return lc == "id" || (lc.size() > 3 && lc.rfind("_id") == lc.size() - 3);
}

TableSchema SynthesizeSchema(const std::string& name,
                             const std::vector<std::string>& columns,
                             const HarvestMap& harvest) {
  TableSchema schema;
  schema.name = name;
  std::unordered_set<std::string> seen;
  for (const auto& column : columns) {
    std::string lc = ToLower(column);
    if (!seen.insert(lc).second) continue;
    ColumnSchema col;
    col.name = column;
    auto it = harvest.find(ToLower(name) + "." + lc);
    bool integer = false;
    if (it != harvest.end() && !it->second.values.empty()) {
      bool all_int = true;
      for (const Value& value : it->second.values) {
        if (!value.is_int()) all_int = false;
      }
      integer = all_int && !it->second.saw_string && it->second.patterns.empty();
    } else if (IsIdish(lc)) {
      // id-ish names default to integers even without harvested evidence.
      integer = true;
    }
    col.type = integer ? DataType::Make(TypeId::kInteger)
                       : DataType::Make(TypeId::kVarchar);
    if (!integer) col.type.length = 64;
    schema.columns.push_back(std::move(col));
  }
  if (schema.columns.empty()) {
    ColumnSchema col;
    col.name = "id";
    col.type = DataType::Make(TypeId::kInteger);
    schema.columns.push_back(std::move(col));
  }
  // Prefer an integer id-ish column as primary key so pk-probe rewrites have
  // something to stand on.
  for (const auto& col : schema.columns) {
    if (col.type.IsIntegerLike() && IsIdish(ToLower(col.name))) {
      schema.primary_key = {col.name};
      break;
    }
  }
  return schema;
}

struct BuildPlan {
  // Population order: FK parents first. Each entry is a schema copy the
  // ephemeral database will own.
  std::vector<TableSchema> schemas;
};

// Resolves every referenced table to a schema (catalog first, synthesized
// otherwise), pulls in catalog FK parents transitively, and orders parents
// before children. Returns false when nothing is buildable.
bool PlanTables(const std::vector<std::string>& referenced, const Context& context,
                const std::unordered_map<std::string, std::vector<std::string>>&
                    synth_columns,
                const HarvestMap& harvest, BuildPlan* plan, std::string* note) {
  // A pathological FK graph must not turn one verification into a database
  // build-out; 16 tables is far beyond any single-statement rewrite's reach.
  constexpr size_t kMaxTables = 16;
  std::map<std::string, TableSchema> by_name;  // lowercased name -> schema
  std::vector<std::string> queue;
  auto enqueue = [&by_name, &queue](std::string_view name) {
    std::string lc = ToLower(name);
    if (lc.empty() || by_name.count(lc)) return;
    by_name[lc] = TableSchema{};  // placeholder, filled below
    queue.push_back(lc);
  };
  for (const auto& name : referenced) enqueue(name);
  if (queue.empty()) {
    *note = "statement references no base tables";
    return false;
  }
  for (size_t i = 0; i < queue.size() && i < kMaxTables; ++i) {
    const std::string lc = queue[i];
    const TableSchema* cataloged = context.catalog().FindTable(lc);
    if (cataloged != nullptr) {
      by_name[lc] = *cataloged;
      for (const auto& fk : cataloged->foreign_keys) {
        enqueue(fk.ref_table);
      }
    } else {
      auto it = synth_columns.find(lc);
      static const std::vector<std::string> kNoColumns;
      by_name[lc] = SynthesizeSchema(
          lc, it != synth_columns.end() ? it->second : kNoColumns, harvest);
    }
  }
  if (queue.size() > kMaxTables) {
    *note = "foreign-key closure exceeds the verifier's table budget";
    return false;
  }
  // Parents before children; a cycle (self-FK etc.) falls through on the
  // last guard pass and is populated best-effort.
  std::set<std::string> placed;
  size_t guard = by_name.size() + 2;
  while (placed.size() < by_name.size() && guard > 0) {
    --guard;
    for (auto& [lc, schema] : by_name) {
      if (placed.count(lc)) continue;
      bool ready = true;
      for (const auto& fk : schema.foreign_keys) {
        std::string parent = ToLower(fk.ref_table);
        if (parent != lc && by_name.count(parent) && !placed.count(parent)) {
          ready = false;
          break;
        }
      }
      if (ready || guard == 0) {
        plan->schemas.push_back(schema);
        placed.insert(lc);
      }
    }
  }
  return true;
}

// Values inserted so far, per table/column (lowercased), so FK columns can
// draw from their parent's actual key pool.
using ValuePools = std::unordered_map<
    std::string, std::unordered_map<std::string, std::vector<Value>>>;

// Populates `db` with deterministic rows for every planned table. Rows go in
// through Table::Insert directly — constraint validation is deliberately
// bypassed, because both sides of the differential run share this exact data
// and fairness, not cleanliness, is what the comparison needs.
void PopulateDatabase(Database* db, const BuildPlan& plan, const HarvestMap& harvest,
                      const ExecVerifyOptions& options) {
  size_t rows = std::max<size_t>(1, options.rows_per_table);
  ValuePools pools;
  for (const TableSchema& schema : plan.schemas) {
    Table* table = db->GetTable(schema.name);
    if (table == nullptr) continue;
    std::string table_lc = ToLower(schema.name);
    Rng rng(options.seed ^ Fnv1a(table_lc));
    std::set<std::string> key_cols;
    for (const auto& pk : schema.primary_key) key_cols.insert(ToLower(pk));
    for (const auto& uc : schema.unique_constraints) {
      if (uc.size() == 1) key_cols.insert(ToLower(uc[0]));
    }
    // column -> parent pool, for single-column FKs whose parent is populated.
    std::unordered_map<std::string, const std::vector<Value>*> fk_pool;
    for (const auto& fk : schema.foreign_keys) {
      if (fk.columns.size() != 1) continue;
      std::string parent_lc = ToLower(fk.ref_table);
      auto parent_it = pools.find(parent_lc);
      if (parent_it == pools.end()) continue;
      std::string parent_col;
      if (!fk.ref_columns.empty()) {
        parent_col = ToLower(fk.ref_columns[0]);
      } else {
        const Table* parent = db->GetTable(parent_lc);
        if (parent != nullptr && parent->schema().primary_key.size() == 1) {
          parent_col = ToLower(parent->schema().primary_key[0]);
        }
      }
      auto col_it = parent_it->second.find(parent_col);
      if (col_it != parent_it->second.end() && !col_it->second.empty()) {
        fk_pool[ToLower(fk.columns[0])] = &col_it->second;
      }
    }

    int64_t max_auto = 0;
    for (size_t i = 1; i <= rows; ++i) {
      // Chaos seam: a row the generator cannot produce. The caller maps the
      // throw to an Infeasible verdict — exactly how a genuinely
      // ungenerable dataset degrades (the fix keeps its Tier-2 verdict).
      if (SQLCHECK_FAILPOINT("exec_verify_row")) {
        throw std::runtime_error("failpoint exec_verify_row");
      }
      Row row;
      row.reserve(schema.columns.size());
      for (const ColumnSchema& col : schema.columns) {
        std::string col_lc = ToLower(col.name);
        auto harvest_it = harvest.find(table_lc + "." + col_lc);
        const Harvest* harvested =
            harvest_it != harvest.end() ? &harvest_it->second : nullptr;
        bool keyish =
            key_cols.count(col_lc) > 0 || col.unique || col.auto_increment;
        Value value;
        auto fk_it = fk_pool.find(col_lc);
        if (fk_it != fk_pool.end()) {
          value = (*fk_it->second)[rng.NextBelow(fk_it->second->size())];
        } else if (keyish) {
          // Ascending keys keep uniqueness trivially and give the RAND()
          // pk-probe a dense range to land in.
          if (col.type.IsTextual()) {
            value = Value::Str("k" + std::to_string(i));
          } else {
            value = Value::Int(static_cast<int64_t>(i));
            if (value.AsInt() > max_auto) max_auto = value.AsInt();
          }
        } else if (harvested != nullptr && i % 2 == 1 &&
                   (!harvested->values.empty() || !harvested->patterns.empty())) {
          // Plant the statement's own constants in half the rows so its
          // predicates partition the table instead of selecting everything
          // or nothing.
          size_t total = harvested->values.size() + harvested->patterns.size();
          size_t pick = (i / 2) % total;
          if (pick < harvested->values.size()) {
            value = harvested->values[pick];
          } else {
            value = Value::Str(MaterializePattern(
                harvested->patterns[pick - harvested->values.size()], &rng));
          }
        } else if (!col.not_null && rng.NextBool(0.25)) {
          value = Value::Null_();
        } else {
          switch (col.type.id) {
            case TypeId::kBoolean:
              value = Value::Bool(rng.NextBool(0.5));
              break;
            case TypeId::kEnum:
              value = !col.type.enum_values.empty()
                          ? Value::Str(rng.Choice(col.type.enum_values))
                          : Value::Str(rng.NextWord(3, 8));
              break;
            case TypeId::kDate: {
              int64_t day = rng.NextInRange(1, 28);
              value = Value::Str("2020-06-" + std::string(day < 10 ? "0" : "") +
                                 std::to_string(day));
              break;
            }
            case TypeId::kTime:
              value = Value::Str("12:34:56");
              break;
            case TypeId::kTimestamp:
            case TypeId::kTimestampTz:
              value = Value::Str("2020-06-14 12:34:56");
              break;
            case TypeId::kFloat:
            case TypeId::kDouble:
            case TypeId::kNumeric:
              value = Value::Real(
                  static_cast<double>(rng.NextInRange(0, 9999)) / 100.0);
              break;
            default:
              if (col.type.IsIntegerLike()) {
                value = Value::Int(rng.NextInRange(0, 99));
              } else {
                value = Value::Str(rng.NextWord(3, 10));
              }
              break;
          }
        }
        value = col.type.Coerce(value);
        pools[table_lc][col_lc].push_back(value);
        row.push_back(std::move(value));
      }
      table->Insert(std::move(row));
    }
    if (max_auto > 0) table->ObserveAutoValue(max_auto);
  }
}

// ---------------------------------------------------------------------------
// Result / state comparison
// ---------------------------------------------------------------------------

std::string RenderRow(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToDisplay();
  }
  out += ")";
  return out;
}

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

bool RowLess(const Row& a, const Row& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

// Compares two result row lists under the contract; fills `note` on mismatch.
bool CompareRows(std::vector<Row> lhs, std::vector<Row> rhs,
                 EquivalenceContract contract, std::string* note) {
  if (lhs.size() != rhs.size()) {
    *note = "row counts differ: original returned " + std::to_string(lhs.size()) +
            " row(s), rewrite returned " + std::to_string(rhs.size());
    return false;
  }
  if (contract == EquivalenceContract::kMultiset) {
    std::sort(lhs.begin(), lhs.end(), RowLess);
    std::sort(rhs.begin(), rhs.end(), RowLess);
  }
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (!RowsEqual(lhs[i], rhs[i])) {
      *note = "first differing row at position " + std::to_string(i) +
              ": original " + RenderRow(lhs[i]) + " vs rewrite " +
              RenderRow(rhs[i]);
      return false;
    }
  }
  return true;
}

std::vector<Row> LiveRows(const Table& table) {
  std::vector<Row> rows;
  table.ForEachLive([&rows](size_t, const Row& row) { rows.push_back(row); });
  return rows;
}

bool AllSelects(const sql::Statement& original,
                const std::vector<sql::StatementPtr>& rewritten) {
  if (original.kind != sql::StatementKind::kSelect) return false;
  for (const auto& stmt : rewritten) {
    if (stmt->kind != sql::StatementKind::kSelect) return false;
  }
  return true;
}

}  // namespace

ExecCheck VerifyByExecution(const Fix& fix, EquivalenceContract contract,
                            const Context& context,
                            const ExecVerifyOptions& options) {
  if (contract == EquivalenceContract::kNotApplicable) return Skipped();
  if (!fix.replaces_original || fix.statements.empty() || fix.original_sql.empty()) {
    return Skipped();
  }

  // Tier 1 already ran, but the verifier owns its own parses: it needs the
  // ASTs, and must not trust earlier stages across refactors.
  sql::StatementPtr original = sql::ParseStatement(fix.original_sql);
  if (original == nullptr || original->kind == sql::StatementKind::kUnknown) {
    return Infeasible("original statement does not parse");
  }
  std::vector<sql::StatementPtr> rewritten;
  for (const std::string& statement : fix.statements) {
    sql::StatementPtr stmt = sql::ParseStatement(statement);
    if (stmt == nullptr || stmt->kind == sql::StatementKind::kUnknown) {
      return Infeasible("rewritten statement does not parse");
    }
    rewritten.push_back(std::move(stmt));
  }

  // Discover every base table either side touches, harvest their literals,
  // and record per-table column refs for schema synthesis.
  std::vector<std::string> referenced;
  HarvestMap harvest;
  std::unordered_map<std::string, std::vector<std::string>> synth_columns;
  CollectTables(*original, &referenced);
  HarvestStatement(*original, &harvest);
  CollectColumnRefs(*original, &synth_columns);
  for (const auto& stmt : rewritten) {
    CollectTables(*stmt, &referenced);
    HarvestStatement(*stmt, &harvest);
    CollectColumnRefs(*stmt, &synth_columns);
  }

  BuildPlan plan;
  std::string note;
  if (!PlanTables(referenced, context, synth_columns, harvest, &plan, &note)) {
    return Infeasible(std::move(note));
  }

  auto build = [&plan, &harvest, &options]() -> std::unique_ptr<Database> {
    try {
      auto db = std::make_unique<Database>("verify");
      for (const TableSchema& schema : plan.schemas) {
        db->CreateTable(schema);
      }
      PopulateDatabase(db.get(), plan, harvest, options);
      return db;
    } catch (const std::exception&) {
      // Dataset generation failed (allocation pressure, injected fault):
      // verification is infeasible, not divergent.
      return nullptr;
    }
  };

  if (AllSelects(*original, rewritten)) {
    // Read-only: one database, two independent same-seeded executors.
    std::unique_ptr<Database> db = build();
    if (db == nullptr) {
      return Infeasible("verification dataset generation failed");
    }
    Executor lhs_exec(db.get(), options.seed);
    auto lhs = lhs_exec.Execute(*original);
    if (!lhs.ok()) {
      return Infeasible("engine cannot execute the original statement: " +
                        lhs.message());
    }
    Executor rhs_exec(db.get(), options.seed);
    std::vector<Row> rhs_rows;
    size_t rhs_columns = 0;
    for (const auto& stmt : rewritten) {
      auto result = rhs_exec.Execute(*stmt);
      if (!result.ok()) {
        return Divergent("rewritten statement failed to execute: " +
                         result.message());
      }
      rhs_columns = result.value().columns.size();
      for (auto& row : result.value().rows) rhs_rows.push_back(std::move(row));
    }
    if (contract == EquivalenceContract::kDocumentedDivergence) {
      // Contract: the rewrite intentionally returns different results; both
      // sides executing successfully on populated tables is the requirement.
      return Equivalent();
    }
    if (lhs.value().columns.size() != rhs_columns) {
      return Divergent("column counts differ: original returned " +
                       std::to_string(lhs.value().columns.size()) +
                       ", rewrite returned " + std::to_string(rhs_columns));
    }
    if (!CompareRows(std::move(lhs.value().rows), std::move(rhs_rows), contract,
                     &note)) {
      return Divergent(std::move(note));
    }
    return Equivalent();
  }

  // Side effects involved: run each side against its own identically-seeded
  // database and compare the full table states afterwards.
  std::unique_ptr<Database> lhs_db = build();
  std::unique_ptr<Database> rhs_db = build();
  if (lhs_db == nullptr || rhs_db == nullptr) {
    return Infeasible("verification dataset generation failed");
  }
  Executor lhs_exec(lhs_db.get(), options.seed);
  Executor rhs_exec(rhs_db.get(), options.seed);
  auto lhs = lhs_exec.Execute(*original);
  bool rhs_ok = true;
  std::string rhs_error;
  for (const auto& stmt : rewritten) {
    auto result = rhs_exec.Execute(*stmt);
    if (!result.ok()) {
      rhs_ok = false;
      rhs_error = result.message();
      break;
    }
  }
  if (!lhs.ok() && rhs_ok) {
    // The original fails on this data but the rewrite succeeds: behavior
    // changed. (Identical failures fall through to the state comparison —
    // equal states mean the failure was faithfully preserved.)
    return Divergent("execution status diverged: original failed (" +
                     lhs.message() + ") but rewrite succeeded");
  }
  if (lhs.ok() && !rhs_ok) {
    return Divergent("execution status diverged: rewrite failed (" + rhs_error +
                     ") but original succeeded");
  }
  if (contract == EquivalenceContract::kDocumentedDivergence) {
    if (!lhs.ok()) {
      return Infeasible("engine cannot execute the original statement: " +
                        lhs.message());
    }
    return Equivalent();
  }
  for (const TableSchema& schema : plan.schemas) {
    const Table* lhs_table = lhs_db->GetTable(schema.name);
    const Table* rhs_table = rhs_db->GetTable(schema.name);
    if (lhs_table == nullptr || rhs_table == nullptr) continue;
    if (!CompareRows(LiveRows(*lhs_table), LiveRows(*rhs_table),
                     EquivalenceContract::kExactOrdered, &note)) {
      return Divergent("table state diverged in \"" + schema.name + "\": " + note);
    }
  }
  return Equivalent();
}

}  // namespace sqlcheck
