#include "fix/rewriter.h"

#include <utility>
#include <vector>

#include "analysis/query_analyzer.h"
#include "catalog/schema.h"
#include "common/strings.h"
#include "sql/parser.h"

namespace sqlcheck {

namespace {

/// One FROM/JOIN source resolved against the catalog: the name columns must
/// be qualified with (alias if set) and the schema to expand from.
struct ResolvedSource {
  std::string_view qualifier;
  const TableSchema* schema;
};

/// Resolves every source of `select`; false when any source is a subquery or
/// missing from the catalog (expansion would have to guess).
bool ResolveSources(const sql::SelectStatement& select, const Catalog& catalog,
                    std::vector<ResolvedSource>* out) {
  auto add = [&](const sql::TableRef& ref) {
    if (ref.subquery) return false;
    const TableSchema* schema = catalog.FindTable(ref.name);
    if (schema == nullptr) return false;
    out->push_back({std::string_view(ref.EffectiveName()), schema});
    return true;
  };
  for (const auto& f : select.from) {
    if (!add(f)) return false;
  }
  for (const auto& j : select.joins) {
    if (!add(j.table)) return false;
  }
  return !out->empty();
}

bool IsRandCall(const sql::Expr& e) {
  return e.kind == sql::ExprKind::kFunction && e.children.empty() &&
         (EqualsIgnoreCase(e.text, "rand") || EqualsIgnoreCase(e.text, "random"));
}

/// True when `pattern` is '%tail' with a wildcard-free ASCII tail; writes the
/// reversed tail. Multi-byte payloads are refused — reversing bytes would
/// corrupt UTF-8 sequences.
bool ReversibleTail(std::string_view pattern, std::string* reversed) {
  if (pattern.size() < 2 || pattern[0] != '%') return false;
  std::string_view tail = pattern.substr(1);
  for (char c : tail) {
    if (c == '%' || c == '_' || static_cast<unsigned char>(c) >= 0x80) return false;
  }
  reversed->assign(tail.rbegin(), tail.rend());
  return true;
}

/// Reverses every qualifying leading-wildcard LIKE under `e`; returns how
/// many predicates were transformed.
int ReverseLikes(sql::Expr* e) {
  int count = 0;
  if (e->kind == sql::ExprKind::kLike && e->children.size() >= 2 &&
      (EqualsIgnoreCase(e->text, "LIKE") || EqualsIgnoreCase(e->text, "ILIKE")) &&
      e->children[0]->kind == sql::ExprKind::kColumnRef &&
      e->children[1]->kind == sql::ExprKind::kStringLiteral) {
    std::string reversed;
    if (ReversibleTail(e->children[1]->text, &reversed)) {
      std::vector<sql::ExprPtr> args;
      args.push_back(std::move(e->children[0]));
      e->children[0] = sql::MakeFunction("REVERSE", std::move(args));
      e->children[1]->text = reversed + "%";
      ++count;
    }
  }
  for (auto& child : e->children) count += ReverseLikes(child.get());
  return count;
}

/// Wraps nullable column refs appearing under `||` / CONCAT in COALESCE;
/// returns how many columns were wrapped.
int WrapNullableConcatOperands(sql::Expr* e, const Context& context,
                               const std::string& default_table, bool under_concat) {
  int count = 0;
  bool concat_here =
      (e->kind == sql::ExprKind::kBinary && e->text == "||") ||
      (e->kind == sql::ExprKind::kFunction && EqualsIgnoreCase(e->text, "concat"));
  for (auto& child : e->children) {
    if ((under_concat || concat_here) && child->kind == sql::ExprKind::kColumnRef) {
      std::string table(child->TableQualifier());
      if (table.empty()) table = default_table;
      if (context.ColumnNullable(table, child->ColumnName())) {
        std::vector<sql::ExprPtr> args;
        args.push_back(std::move(child));
        args.push_back(sql::MakeStringLiteral(""));
        child = sql::MakeFunction("COALESCE", std::move(args));
        ++count;
        continue;
      }
    }
    count += WrapNullableConcatOperands(child.get(), context, default_table,
                                        under_concat || concat_here);
  }
  return count;
}

}  // namespace

sql::StatementPtr ExpandWildcard(const sql::SelectStatement& select,
                                 const Context& context) {
  std::vector<ResolvedSource> sources;
  if (!ResolveSources(select, context.catalog(), &sources)) return nullptr;
  const bool qualify = sources.size() > 1;

  auto cloned = select.CloneSelect();
  sql::AstVector<sql::SelectItem> items;
  bool expanded = false;
  for (auto& item : cloned->items) {
    if (!item.expr || item.expr->kind != sql::ExprKind::kStar) {
      items.push_back(std::move(item));
      continue;
    }
    std::string_view star_qualifier;
    if (!item.expr->name_parts.empty()) star_qualifier = item.expr->name_parts.back();
    bool matched = false;
    for (const ResolvedSource& src : sources) {
      if (!star_qualifier.empty() && !EqualsIgnoreCase(star_qualifier, src.qualifier)) {
        continue;
      }
      matched = true;
      if (src.schema->columns.empty()) return nullptr;  // nothing to expand to
      for (const auto& col : src.schema->columns) {
        sql::SelectItem concrete;
        std::vector<std::string> parts;
        if (qualify) parts.emplace_back(src.qualifier);
        parts.push_back(col.name);
        concrete.expr = sql::MakeColumnRef(std::move(parts));
        items.push_back(std::move(concrete));
      }
    }
    if (!matched) return nullptr;  // t.* over a source we cannot see
    expanded = true;
  }
  if (!expanded) return nullptr;
  cloned->items = std::move(items);
  return cloned;
}

sql::StatementPtr ExpandInsertColumns(const sql::InsertStatement& insert,
                                      const Context& context) {
  const TableSchema* schema = context.catalog().FindTable(insert.table);
  if (schema == nullptr || schema->columns.empty()) return nullptr;
  if (!insert.rows.empty() && insert.rows[0].size() != schema->columns.size()) {
    return nullptr;  // arity mismatch: the statement is already broken
  }
  auto cloned = insert.CloneStatement();
  auto* fixed = static_cast<sql::InsertStatement*>(cloned.get());
  fixed->columns.clear();
  for (const auto& col : schema->columns) fixed->columns.emplace_back(col.name);
  return cloned;
}

sql::StatementPtr ReplaceOrderByRand(const sql::SelectStatement& select,
                                     const Context& context) {
  // Only the random-pick idiom (ORDER BY RAND() ... LIMIT n) has an
  // equivalent key-probe form; a full shuffle does not.
  if (!select.limit.has_value() || select.order_by.empty()) return nullptr;
  if (select.from.size() != 1 || select.from[0].subquery || !select.joins.empty()) {
    return nullptr;
  }
  for (const auto& ob : select.order_by) {
    if (!IsRandCall(*ob.expr)) return nullptr;
  }
  const TableSchema* schema = context.catalog().FindTable(select.from[0].name);
  if (schema == nullptr || schema->primary_key.size() != 1) return nullptr;
  const std::string& pk = schema->primary_key[0];

  auto cloned = select.CloneSelect();
  cloned->order_by.clear();
  sql::OrderItem by_key;
  by_key.expr = sql::MakeColumnRef({pk});
  cloned->order_by.push_back(std::move(by_key));

  // pk >= (SELECT FLOOR(RAND() * MAX(pk)) FROM t)
  auto probe_select = sql::SelectPtr(new sql::SelectStatement());
  {
    std::vector<sql::ExprPtr> max_args;
    max_args.push_back(sql::MakeColumnRef({pk}));
    auto scaled = sql::MakeBinary("*", sql::MakeFunction("RAND", {}),
                                  sql::MakeFunction("MAX", std::move(max_args)));
    std::vector<sql::ExprPtr> floor_args;
    floor_args.push_back(std::move(scaled));
    sql::SelectItem probe_item;
    probe_item.expr = sql::MakeFunction("FLOOR", std::move(floor_args));
    probe_select->items.push_back(std::move(probe_item));
    sql::TableRef source;
    source.name = cloned->from[0].name;
    probe_select->from.push_back(std::move(source));
  }
  auto subquery = sql::MakeExpr(sql::ExprKind::kSubquery);
  subquery->subquery = std::move(probe_select);
  auto probe = sql::MakeBinary(">=", sql::MakeColumnRef({pk}), std::move(subquery));
  cloned->where = cloned->where
                      ? sql::MakeBinary("AND", std::move(cloned->where), std::move(probe))
                      : std::move(probe);
  return cloned;
}

sql::StatementPtr RewriteLeadingWildcards(const sql::SelectStatement& select) {
  auto cloned = select.CloneSelect();
  int count = 0;
  if (cloned->where) count += ReverseLikes(cloned->where.get());
  if (cloned->having) count += ReverseLikes(cloned->having.get());
  if (count == 0) return nullptr;
  return cloned;
}

sql::StatementPtr WrapConcatNulls(const sql::SelectStatement& select,
                                  const Context& context) {
  auto cloned = select.CloneSelect();
  std::string default_table;
  if (cloned->from.size() == 1) default_table = cloned->from[0].name;
  int count = 0;
  for (auto& item : cloned->items) {
    if (item.expr) {
      count += WrapNullableConcatOperands(item.expr.get(), context, default_table, false);
    }
  }
  if (cloned->where) {
    count += WrapNullableConcatOperands(cloned->where.get(), context, default_table, false);
  }
  // A detection this transformation cannot reach (concat in ORDER BY /
  // HAVING, NOT NULL operands only) must fall back to guidance, not claim a
  // rewrite that changed nothing.
  if (count == 0) return nullptr;
  return cloned;
}

RewriteCheck VerifyRewrite(const Fix& fix, const Rule* rule, const Context& context,
                           const DetectorConfig& config) {
  if (fix.statements.empty()) {
    return {false, "rewrite proposal carries no statements"};
  }
  for (const std::string& text : fix.statements) {
    sql::StatementPtr stmt = sql::ParseStatement(text);
    if (stmt == nullptr || stmt->kind == sql::StatementKind::kUnknown) {
      return {false, "rewritten SQL does not re-parse cleanly"};
    }
    if (rule == nullptr) continue;  // rule disabled/custom: parse check only
    QueryFacts facts = AnalyzeQuery(*stmt);
    std::vector<Detection> again;
    rule->CheckQuery(facts, context, config, &again);
    for (const Detection& d : again) {
      if (d.type == fix.type) {
        return {false, std::string("rewritten SQL still triggers ") + ApName(fix.type)};
      }
    }
  }
  return {true, {}};
}

}  // namespace sqlcheck
