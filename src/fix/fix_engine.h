#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/context.h"
#include "core/report.h"
#include "fix/fix.h"
#include "fix/rewriter.h"
#include "fix/verify.h"
#include "rules/registry.h"

namespace sqlcheck {

/// \brief ap-fix (Algorithm 4), refactored from a monolithic switch into the
/// registry's per-rule Fixer objects plus this thin orchestrator. For each
/// detection the engine
///   1. looks up the detection's action half (RuleRegistry::FindFixer),
///   2. lets it propose a fix (mechanical AST rewrite or textual guidance),
///   3. anchors provenance — data anti-patterns get the owning table's DDL
///      (or "table.column") as original_sql so emitters can always place the
///      fix somewhere,
///   4. runs every kRewrite proposal through the tiered verification
///      pipeline (fix/verify.h): Tier 1 re-parse, Tier 2 re-analysis with
///      the originating rule, Tier 3 (when --verify-exec is on) differential
///      execution against an ephemeral seeded database under the fixer's
///      declared equivalence contract. A proposal that fails any required
///      tier is demoted to kTextual with the reason in Fix::verify_note; the
///      tier it reached is recorded in Fix::verify_tier.
class FixEngine {
 public:
  /// `registry` supplies both halves (rules for verification, fixers for
  /// proposals) and must outlive the engine. `config` is the detector
  /// configuration re-analysis runs under (thresholds change what "fixed"
  /// means). `exec_options` controls Tier 3. `memo`/`stats`, when non-null,
  /// let a long-lived owner (the AnalysisSession) persist verification
  /// verdicts and telemetry across engine instances — the engine itself is
  /// scoped to one report assembly; without them it falls back to an
  /// engine-local memo.
  explicit FixEngine(const RuleRegistry& registry, DetectorConfig config = {},
                     ExecVerifyOptions exec_options = {},
                     VerifyMemo* memo = nullptr, VerifyStats* stats = nullptr);

  /// Suggests a (verified) fix for one detection.
  Fix SuggestFix(const Detection& detection, const Context& context) const;

  /// Suggests fixes for a ranked batch, in order.
  std::vector<Fix> SuggestFixes(const std::vector<Detection>& detections,
                                const Context& context) const;

 private:
  /// The full pipeline for one kRewrite proposal: Tier 1 + Tier 2 via the
  /// AST rewriter's re-parse/re-analysis check, Tier 3 via differential
  /// execution when enabled and the fixer declares an applicable contract.
  VerifyVerdict VerifyTiered(const Fix& fix, const Fixer* fixer,
                             const Context& context) const;

  const RuleRegistry* registry_;
  DetectorConfig config_;
  ExecVerifyOptions exec_options_;
  /// Verification verdict per unique (type, original, rewritten statements)
  /// proposal. Re-verifying an identical rewrite — workloads repeat the same
  /// offending shapes constantly — is pure waste, and Tier 3 makes a miss
  /// genuinely expensive (it builds and populates a database). Points at the
  /// session's memo when provided, else at own_memo_.
  VerifyMemo* memo_;
  mutable VerifyMemo own_memo_;
  VerifyStats* stats_;  ///< Null when the owner does not collect telemetry.
};

/// \brief Applies every verified statement-replacing rewrite in `report` to
/// the workload `context` was built from and returns the rewritten script:
/// statements stay in workload order, each offender replaced by its rewrite.
/// Findings are visited in report order (ap-rank order), so when two fixes
/// target the same statement the higher-impact rewrite wins. Additive DDL
/// fixes (CREATE INDEX, ALTER TABLE, ...) are *not* appended — they change
/// the schema and belong to a migration the developer reviews. Backs the
/// CLI's --apply flag; under --verify-exec every rewrite applied here has
/// passed differential execution (Fix::verify_tier == kExec). `applied_count`
/// (optional) receives the number of statements that were replaced.
std::string ApplyFixes(const Context& context, const Report& report,
                       size_t* applied_count = nullptr);

}  // namespace sqlcheck
