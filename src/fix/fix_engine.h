#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/context.h"
#include "core/report.h"
#include "fix/fix.h"
#include "fix/rewriter.h"
#include "rules/registry.h"

namespace sqlcheck {

/// \brief ap-fix (Algorithm 4), refactored from a monolithic switch into the
/// registry's per-rule Fixer objects plus this thin orchestrator. For each
/// detection the engine
///   1. looks up the detection's action half (RuleRegistry::FindFixer),
///   2. lets it propose a fix (mechanical AST rewrite or textual guidance),
///   3. anchors provenance — data anti-patterns get the owning table's DDL
///      (or "table.column") as original_sql so emitters can always place the
///      fix somewhere,
///   4. self-verifies every kRewrite proposal (fix/rewriter.h): re-parse must
///      succeed and re-analysis with the originating rule must come back
///      clean, otherwise the proposal is demoted to kTextual with the reason
///      in Fix::verify_note.
class FixEngine {
 public:
  /// `registry` supplies both halves (rules for verification, fixers for
  /// proposals) and must outlive the engine. `config` is the detector
  /// configuration re-analysis runs under (thresholds change what "fixed"
  /// means).
  explicit FixEngine(const RuleRegistry& registry, DetectorConfig config = {});

  /// Suggests a (verified) fix for one detection.
  Fix SuggestFix(const Detection& detection, const Context& context) const;

  /// Suggests fixes for a ranked batch, in order.
  std::vector<Fix> SuggestFixes(const std::vector<Detection>& detections,
                                const Context& context) const;

 private:
  const RuleRegistry* registry_;
  DetectorConfig config_;
  /// Verification verdict per unique (type, rewritten statements) proposal.
  /// The engine is scoped to one report assembly (the context does not
  /// change under it), so re-verifying an identical rewrite — workloads
  /// repeat the same offending shapes constantly — is pure waste; this memo
  /// collapses it to one parse + re-analysis per distinct proposal.
  mutable std::unordered_map<std::string, RewriteCheck> verify_memo_;
};

/// \brief Applies every verified statement-replacing rewrite in `report` to
/// the workload `context` was built from and returns the rewritten script:
/// statements stay in workload order, each offender replaced by its rewrite.
/// Findings are visited in report order (ap-rank order), so when two fixes
/// target the same statement the higher-impact rewrite wins. Additive DDL
/// fixes (CREATE INDEX, ALTER TABLE, ...) are *not* appended — they change
/// the schema and belong to a migration the developer reviews. Backs the
/// CLI's --apply flag. `applied_count` (optional) receives the number of
/// statements that were replaced.
std::string ApplyFixes(const Context& context, const Report& report,
                       size_t* applied_count = nullptr);

}  // namespace sqlcheck
