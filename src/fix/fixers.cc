#include "fix/fixers.h"

#include <string>
#include <utility>

#include "common/strings.h"
#include "fix/rewriter.h"
#include "sql/printer.h"

namespace sqlcheck {

namespace {

/// Seeds the common Fix fields from the detection.
Fix BaseFix(const Detection& d) {
  Fix fix;
  fix.type = d.type;
  fix.original_sql = d.query;
  return fix;
}

std::string IndexNameFor(std::string_view table, std::string_view column) {
  return "idx_" + ToLower(table) + "_" + ToLower(column);
}

/// Workload queries (other than `self`) that reference `table` — Algorithm
/// 4's GetImpactedQueries, answered through the WorkloadStats per-table
/// statement index (O(queries-on-table), not O(workload)).
std::vector<std::string> ImpactedQueries(const Context& context, std::string_view table,
                                         std::string_view self) {
  std::vector<std::string> out;
  for (const QueryFacts* facts : context.QueriesReferencing(table)) {
    if (facts->raw_sql.empty() || facts->raw_sql == self) continue;
    if (facts->kind == sql::StatementKind::kCreateTable ||
        facts->kind == sql::StatementKind::kCreateIndex) {
      continue;
    }
    out.emplace_back(facts->raw_sql);
  }
  return out;
}

/// Best-effort primary-key candidate for a table lacking one: a column whose
/// sampled values are unique, preferring id-ish names.
std::string PkCandidate(const Context& context, std::string_view table) {
  const TableSchema* schema = context.catalog().FindTable(table);
  if (schema == nullptr) return "";
  const TableProfile* profile = context.ProfileFor(table);
  std::string fallback;
  for (const auto& col : schema->columns) {
    bool idish = EqualsIgnoreCase(col.name, "id") || EndsWithIgnoreCase(col.name, "_id");
    bool unique_in_data = false;
    if (profile != nullptr) {
      const ColumnStats* stats = profile->stats.FindColumn(col.name);
      if (stats != nullptr && stats->row_count > 0 && stats->null_count == 0 &&
          stats->distinct_count == stats->row_count) {
        unique_in_data = true;
      }
    }
    if (idish && (profile == nullptr || unique_in_data)) return col.name;
    if (unique_in_data && fallback.empty()) fallback = col.name;
  }
  return fallback;
}

// ---------------------------------------------------------------------------
// Query-shape fixers (statement-replacing AST rewrites)
// ---------------------------------------------------------------------------

class ImplicitColumnsFixer final : public Fixer {
 public:
  AntiPattern type() const override { return AntiPattern::kImplicitColumns; }
  // Naming the columns of a full-width INSERT must not change what lands in
  // the table: Tier 3 compares the resulting table states exactly.
  EquivalenceContract equivalence() const override {
    return EquivalenceContract::kExactOrdered;
  }

  Fix Propose(const Detection& d, const Context& context) const override {
    Fix fix = BaseFix(d);
    const auto* insert = d.stmt != nullptr ? d.stmt->As<sql::InsertStatement>() : nullptr;
    sql::StatementPtr rewritten =
        insert != nullptr ? ExpandInsertColumns(*insert, context) : nullptr;
    if (rewritten != nullptr) {
      fix.kind = FixKind::kRewrite;
      fix.replaces_original = true;
      fix.statements.push_back(sql::PrintStatement(*rewritten));
      fix.explanation = "named the target columns explicitly so the INSERT survives "
                        "schema evolution";
    } else {
      fix.kind = FixKind::kTextual;
      fix.explanation = "list the target columns of table '" + d.table +
                        "' explicitly in the INSERT";
    }
    return fix;
  }
};

class ColumnWildcardFixer final : public Fixer {
 public:
  AntiPattern type() const override { return AntiPattern::kColumnWildcard; }
  // Expanding * into the concrete column list is a pure spelling change:
  // same rows, same order, same columns.
  EquivalenceContract equivalence() const override {
    return EquivalenceContract::kExactOrdered;
  }

  Fix Propose(const Detection& d, const Context& context) const override {
    Fix fix = BaseFix(d);
    const auto* select = d.stmt != nullptr ? d.stmt->As<sql::SelectStatement>() : nullptr;
    sql::StatementPtr rewritten =
        select != nullptr ? ExpandWildcard(*select, context) : nullptr;
    if (rewritten != nullptr) {
      fix.kind = FixKind::kRewrite;
      fix.replaces_original = true;
      fix.statements.push_back(sql::PrintStatement(*rewritten));
      fix.explanation = "expanded SELECT * into the concrete column list so schema "
                        "changes cannot silently alter the result shape";
    } else {
      fix.kind = FixKind::kTextual;
      fix.explanation = "replace SELECT * with the columns the caller actually reads";
    }
    return fix;
  }
};

class ConcatenateNullsFixer final : public Fixer {
 public:
  AntiPattern type() const override { return AntiPattern::kConcatenateNulls; }
  // The COALESCE wrap is the point of the fix: rows where a nullable operand
  // is NULL change from NULL to the non-null concatenation. Judging this
  // exact-equivalent would demote every correct proposal.
  EquivalenceContract equivalence() const override {
    return EquivalenceContract::kDocumentedDivergence;
  }

  Fix Propose(const Detection& d, const Context& context) const override {
    Fix fix = BaseFix(d);
    const auto* select = d.stmt != nullptr ? d.stmt->As<sql::SelectStatement>() : nullptr;
    sql::StatementPtr rewritten =
        select != nullptr ? WrapConcatNulls(*select, context) : nullptr;
    if (rewritten != nullptr) {
      fix.kind = FixKind::kRewrite;
      fix.replaces_original = true;
      fix.statements.push_back(sql::PrintStatement(*rewritten));
      fix.explanation = "wrapped nullable operands of || in COALESCE so a NULL field "
                        "no longer voids the whole concatenation";
    } else {
      fix.kind = FixKind::kTextual;
      fix.explanation = "wrap nullable columns in COALESCE(col, '') before "
                        "concatenating";
    }
    return fix;
  }
};

class OrderingByRandFixer final : public Fixer {
 public:
  AntiPattern type() const override { return AntiPattern::kOrderingByRand; }
  // Both sides sample at random — identical results are neither possible nor
  // wanted. Tier 3 only requires the pk-probe to execute on populated tables.
  EquivalenceContract equivalence() const override {
    return EquivalenceContract::kDocumentedDivergence;
  }

  Fix Propose(const Detection& d, const Context& context) const override {
    Fix fix = BaseFix(d);
    const auto* select = d.stmt != nullptr ? d.stmt->As<sql::SelectStatement>() : nullptr;
    sql::StatementPtr rewritten =
        select != nullptr ? ReplaceOrderByRand(*select, context) : nullptr;
    if (rewritten != nullptr) {
      fix.kind = FixKind::kRewrite;
      fix.replaces_original = true;
      fix.statements.push_back(sql::PrintStatement(*rewritten));
      fix.explanation = "replaced ORDER BY RAND() with a random primary-key range "
                        "probe; the DBMS seeks one index range instead of sorting "
                        "the entire result";
    } else {
      fix.kind = FixKind::kTextual;
      fix.explanation =
          "ORDER BY RAND() sorts the entire result; pick a random key instead "
          "(e.g. WHERE key >= <random value in key range> ORDER BY key LIMIT 1) or "
          "sample ids in the application";
    }
    return fix;
  }
};

class PatternMatchingFixer final : public Fixer {
 public:
  AntiPattern type() const override { return AntiPattern::kPatternMatching; }
  QueryRuleScope fix_scope() const override { return QueryRuleScope::kStatementLocal; }
  // REVERSE(col) LIKE 'liat%' selects the same rows but frees the engine to
  // return them in a different order (the index it enables sorts by the
  // reversed value), so the contract is multiset, not ordered.
  EquivalenceContract equivalence() const override {
    return EquivalenceContract::kMultiset;
  }

  Fix Propose(const Detection& d, const Context& context) const override {
    (void)context;
    Fix fix = BaseFix(d);
    const auto* select = d.stmt != nullptr ? d.stmt->As<sql::SelectStatement>() : nullptr;
    sql::StatementPtr rewritten =
        select != nullptr ? RewriteLeadingWildcards(*select) : nullptr;
    if (rewritten != nullptr) {
      fix.kind = FixKind::kRewrite;
      fix.replaces_original = true;
      fix.statements.push_back(sql::PrintStatement(*rewritten));
      fix.explanation = "reversed the leading-wildcard LIKE into a prefix match on "
                        "REVERSE(column); add a functional index on REVERSE(column) "
                        "and the scan becomes an index range probe";
    } else {
      fix.kind = FixKind::kTextual;
      fix.explanation =
          "pattern predicates on '" + d.column +
          "' cannot use B-tree indexes; add a full-text/trigram index, or restructure "
          "the data so equality predicates suffice";
    }
    return fix;
  }
};

// ---------------------------------------------------------------------------
// Index / schema fixers (additive DDL)
// ---------------------------------------------------------------------------

class IndexUnderuseFixer final : public Fixer {
 public:
  AntiPattern type() const override { return AntiPattern::kIndexUnderuse; }

  Fix Propose(const Detection& d, const Context& context) const override {
    (void)context;
    Fix fix = BaseFix(d);
    fix.kind = FixKind::kRewrite;
    fix.statements.push_back("CREATE INDEX " + IndexNameFor(d.table, d.column) + " ON " +
                             d.table + " (" + d.column + ");");
    fix.explanation = "added the missing index on the performance-critical access path";
    return fix;
  }
};

class IndexOveruseFixer final : public Fixer {
 public:
  AntiPattern type() const override { return AntiPattern::kIndexOveruse; }

  Fix Propose(const Detection& d, const Context& context) const override {
    (void)context;
    Fix fix = BaseFix(d);
    const auto* create =
        d.stmt != nullptr ? d.stmt->As<sql::CreateIndexStatement>() : nullptr;
    if (create != nullptr) {
      fix.kind = FixKind::kRewrite;
      fix.statements.push_back("DROP INDEX " + std::string(create->index) + ";");
      fix.explanation = "dropped the redundant index; every write was paying its "
                        "maintenance cost (Fig. 8a shows ~10x slower UPDATEs)";
    } else {
      fix.kind = FixKind::kTextual;
      fix.explanation = "drop the indexes on '" + d.table +
                        "' that no query uses, or merge single-column indexes into "
                        "one multi-column index";
    }
    return fix;
  }
};

class NoPrimaryKeyFixer final : public Fixer {
 public:
  AntiPattern type() const override { return AntiPattern::kNoPrimaryKey; }

  Fix Propose(const Detection& d, const Context& context) const override {
    Fix fix = BaseFix(d);
    std::string candidate = PkCandidate(context, d.table);
    if (!candidate.empty()) {
      fix.kind = FixKind::kRewrite;
      fix.statements.push_back("ALTER TABLE " + d.table + " ADD PRIMARY KEY (" +
                               candidate + ");");
      fix.explanation = "'" + candidate +
                        "' is unique across the sampled data, so it can carry the "
                        "primary key";
    } else {
      fix.kind = FixKind::kTextual;
      fix.explanation = "add a PRIMARY KEY to '" + d.table +
                        "' (introduce a surrogate key column if no natural key exists)";
    }
    return fix;
  }
};

class NoForeignKeyFixer final : public Fixer {
 public:
  AntiPattern type() const override { return AntiPattern::kNoForeignKey; }

  Fix Propose(const Detection& d, const Context& context) const override {
    Fix fix = BaseFix(d);
    if (!d.table.empty() && !d.column.empty()) {
      // Detection recorded the join edge's right side; find the other table.
      // Only statements referencing d.table can carry the edge, so the
      // per-table statement index answers this without an O(workload) scan.
      std::string parent;
      for (const QueryFacts* facts : context.QueriesReferencing(d.table)) {
        for (const auto& j : facts->joins) {
          if (EqualsIgnoreCase(j.right_table, d.table) &&
              EqualsIgnoreCase(j.right_column, d.column) && !j.left_table.empty()) {
            parent = j.left_table;
          }
        }
      }
      if (!parent.empty()) {
        fix.kind = FixKind::kRewrite;
        fix.statements.push_back("ALTER TABLE " + d.table + " ADD CONSTRAINT fk_" +
                                 ToLower(d.table) + "_" + ToLower(d.column) +
                                 " FOREIGN KEY (" + d.column + ") REFERENCES " + parent +
                                 " (" + d.column + ");");
        fix.explanation = "declared the foreign key the JOIN already implies, so the "
                          "DBMS enforces referential integrity";
        return fix;
      }
    }
    fix.kind = FixKind::kTextual;
    fix.explanation = "declare FOREIGN KEY constraints for the join relationships of "
                      "table '" + d.table + "'";
    return fix;
  }
};

class RoundingErrorsFixer final : public Fixer {
 public:
  AntiPattern type() const override { return AntiPattern::kRoundingErrors; }

  Fix Propose(const Detection& d, const Context& context) const override {
    (void)context;
    Fix fix = BaseFix(d);
    fix.kind = FixKind::kRewrite;
    fix.statements.push_back("ALTER TABLE " + d.table + " ALTER COLUMN " + d.column +
                             " TYPE NUMERIC(12, 2);");
    fix.explanation = "NUMERIC stores exact decimals; FLOAT drifts under aggregation "
                      "and breaks equality predicates";
    return fix;
  }
};

class MissingTimezoneFixer final : public Fixer {
 public:
  AntiPattern type() const override { return AntiPattern::kMissingTimezone; }

  Fix Propose(const Detection& d, const Context& context) const override {
    (void)context;
    Fix fix = BaseFix(d);
    if (!d.column.empty()) {
      fix.kind = FixKind::kRewrite;
      fix.statements.push_back("ALTER TABLE " + d.table + " ALTER COLUMN " + d.column +
                               " TYPE TIMESTAMP WITH TIME ZONE;");
      fix.explanation = "timestamps without a zone are ambiguous the moment the "
                        "application crosses regions or DST";
    } else {
      fix.kind = FixKind::kTextual;
      fix.explanation = "store date-times in '" + d.table + "' with explicit timezones";
    }
    return fix;
  }
};

class IncorrectDataTypeFixer final : public Fixer {
 public:
  AntiPattern type() const override { return AntiPattern::kIncorrectDataType; }

  Fix Propose(const Detection& d, const Context& context) const override {
    Fix fix = BaseFix(d);
    const TableProfile* profile = context.ProfileFor(d.table);
    const ColumnStats* stats =
        profile != nullptr ? profile->stats.FindColumn(d.column) : nullptr;
    std::string target = "NUMERIC(12, 2)";
    if (stats != nullptr &&
        stats->date_string_fraction > stats->numeric_string_fraction) {
      target = "TIMESTAMP WITH TIME ZONE";
    } else if (stats != nullptr && stats->numeric_string_fraction >= 0.9) {
      // All-integer strings become INTEGER.
      target = "INTEGER";
    }
    fix.kind = FixKind::kRewrite;
    fix.statements.push_back("ALTER TABLE " + d.table + " ALTER COLUMN " + d.column +
                             " TYPE " + target + ";");
    fix.explanation = "the sampled values are uniformly " +
                      std::string(target == "INTEGER" || target == "NUMERIC(12, 2)"
                                      ? "numeric"
                                      : "temporal") +
                      "; typed storage is smaller, ordered, and index-friendly";
    return fix;
  }
};

class RedundantColumnFixer final : public Fixer {
 public:
  AntiPattern type() const override { return AntiPattern::kRedundantColumn; }

  Fix Propose(const Detection& d, const Context& context) const override {
    Fix fix = BaseFix(d);
    fix.kind = FixKind::kRewrite;
    fix.statements.push_back("ALTER TABLE " + d.table + " DROP COLUMN " + d.column + ";");
    fix.impacted_queries = ImpactedQueries(context, d.table, d.query);
    fix.explanation = "the column stores no information (all NULL or one constant); "
                      "dropping it shrinks every row";
    return fix;
  }
};

class NoDomainConstraintFixer final : public Fixer {
 public:
  AntiPattern type() const override { return AntiPattern::kNoDomainConstraint; }

  Fix Propose(const Detection& d, const Context& context) const override {
    Fix fix = BaseFix(d);
    const TableProfile* profile = context.ProfileFor(d.table);
    const ColumnStats* stats =
        profile != nullptr ? profile->stats.FindColumn(d.column) : nullptr;
    std::string lo = stats != nullptr && stats->min ? stats->min->ToDisplay() : "0";
    std::string hi = stats != nullptr && stats->max ? stats->max->ToDisplay() : "100";
    fix.kind = FixKind::kRewrite;
    fix.statements.push_back("ALTER TABLE " + d.table + " ADD CONSTRAINT chk_" +
                             ToLower(d.column) + " CHECK (" + d.column + " BETWEEN " +
                             lo + " AND " + hi + ");");
    fix.explanation = "added a CHECK matching the observed value range so out-of-range "
                      "writes fail loudly";
    return fix;
  }
};

// ---------------------------------------------------------------------------
// Schema redesigns (DDL + guidance)
// ---------------------------------------------------------------------------

class MultiValuedAttributeFixer final : public Fixer {
 public:
  AntiPattern type() const override { return AntiPattern::kMultiValuedAttribute; }

  Fix Propose(const Detection& d, const Context& context) const override {
    Fix fix = BaseFix(d);
    std::string map_table = d.table + "_" + d.column + "_map";
    std::string parent_pk = "id";
    const TableSchema* schema = context.catalog().FindTable(d.table);
    if (schema != nullptr && !schema->primary_key.empty()) {
      parent_pk = schema->primary_key[0];
    }
    fix.kind = FixKind::kRewrite;
    fix.statements.push_back(
        "CREATE TABLE " + map_table + " (" + parent_pk + " VARCHAR(64) REFERENCES " +
        d.table + " (" + parent_pk + "), value VARCHAR(64), PRIMARY KEY (" + parent_pk +
        ", value));");
    fix.statements.push_back("ALTER TABLE " + d.table + " DROP COLUMN " + d.column + ";");
    fix.impacted_queries = ImpactedQueries(context, d.table, d.query);
    fix.explanation =
        "replaced the delimiter-separated list with intersection table '" + map_table +
        "' (the paper's Hosting-table fix, §2.1.1); rewrite LIKE-based lookups as "
        "indexed joins through it";
    return fix;
  }
};

class EnumeratedTypesFixer final : public Fixer {
 public:
  AntiPattern type() const override { return AntiPattern::kEnumeratedTypes; }

  Fix Propose(const Detection& d, const Context& context) const override {
    Fix fix = BaseFix(d);
    std::string lookup = d.column + "_lookup";
    fix.kind = FixKind::kRewrite;
    fix.statements.push_back("CREATE TABLE " + lookup + " (" + d.column +
                             "_id SERIAL PRIMARY KEY, " + d.column +
                             "_name VARCHAR(64) UNIQUE NOT NULL);");
    fix.statements.push_back("ALTER TABLE " + d.table + " ADD COLUMN " + d.column +
                             "_id INTEGER REFERENCES " + lookup + " (" + d.column +
                             "_id);");
    fix.statements.push_back("ALTER TABLE " + d.table + " DROP COLUMN " + d.column + ";");
    fix.impacted_queries = ImpactedQueries(context, d.table, d.query);
    fix.explanation =
        "moved the value domain into lookup table '" + lookup +
        "' (Fig. 5 of the paper); renaming a value becomes one UPDATE instead of "
        "DROP CONSTRAINT + UPDATE + ADD CONSTRAINT";
    return fix;
  }
};

class AdjacencyListFixer final : public Fixer {
 public:
  AntiPattern type() const override { return AntiPattern::kAdjacencyList; }
  QueryRuleScope fix_scope() const override { return QueryRuleScope::kStatementLocal; }

  Fix Propose(const Detection& d, const Context& context) const override {
    (void)context;
    Fix fix = BaseFix(d);
    std::string closure = d.table + "_paths";
    fix.kind = FixKind::kTextual;
    fix.statements.push_back("CREATE TABLE " + closure +
                             " (ancestor VARCHAR(64), descendant VARCHAR(64), depth "
                             "INTEGER, PRIMARY KEY (ancestor, descendant));");
    fix.explanation =
        "self-referencing '" + d.table + "." + d.column +
        "' needs recursive traversal for subtree queries; materialize a closure "
        "table ('" + closure + "') or use recursive CTEs where supported";
    return fix;
  }
};

class GenericPrimaryKeyFixer final : public Fixer {
 public:
  AntiPattern type() const override { return AntiPattern::kGenericPrimaryKey; }
  QueryRuleScope fix_scope() const override { return QueryRuleScope::kStatementLocal; }

  Fix Propose(const Detection& d, const Context& context) const override {
    (void)context;
    Fix fix = BaseFix(d);
    fix.kind = FixKind::kTextual;
    fix.statements.push_back("ALTER TABLE " + d.table + " RENAME COLUMN id TO " +
                             ToLower(d.table) + "_id;");
    fix.explanation = "a descriptive key name disambiguates joins (USING(" +
                      ToLower(d.table) + "_id)) and self-documents foreign keys";
    return fix;
  }
};

// ---------------------------------------------------------------------------
// Textual fixers
// ---------------------------------------------------------------------------

/// Shared shape for the anti-patterns whose repair is inherently a design
/// conversation: a fixed kind/scope plus a detection-tailored explanation.
class TextualFixer : public Fixer {
 public:
  Fix Propose(const Detection& d, const Context& context) const override {
    (void)context;
    Fix fix = BaseFix(d);
    fix.kind = FixKind::kTextual;
    fix.explanation = Explain(d);
    return fix;
  }

 protected:
  virtual std::string Explain(const Detection& d) const = 0;
};

class DistinctAndJoinFixer final : public TextualFixer {
 public:
  AntiPattern type() const override { return AntiPattern::kDistinctAndJoin; }
  QueryRuleScope fix_scope() const override { return QueryRuleScope::kStatementLocal; }

 protected:
  std::string Explain(const Detection& d) const override {
    (void)d;
    return "DISTINCT is compensating for join fan-out; rewrite the join as a semi-join "
           "(EXISTS / IN) against the many-side, or aggregate before joining";
  }
};

class TooManyJoinsFixer final : public TextualFixer {
 public:
  AntiPattern type() const override { return AntiPattern::kTooManyJoins; }
  QueryRuleScope fix_scope() const override { return QueryRuleScope::kStatementLocal; }

 protected:
  std::string Explain(const Detection& d) const override {
    (void)d;
    return "split the query, cache the stable dimensions, or materialize a pre-joined "
           "view; if the joins stem from over-normalization, consider a modest "
           "denormalization of read-mostly attributes";
  }
};

class GodTableFixer final : public TextualFixer {
 public:
  AntiPattern type() const override { return AntiPattern::kGodTable; }
  QueryRuleScope fix_scope() const override { return QueryRuleScope::kStatementLocal; }

 protected:
  std::string Explain(const Detection& d) const override {
    return "vertically partition '" + d.table +
           "' into entity-focused tables; group columns by update cadence and access "
           "pattern, linked by the primary key";
  }
};

class DataInMetadataFixer final : public TextualFixer {
 public:
  AntiPattern type() const override { return AntiPattern::kDataInMetadata; }
  QueryRuleScope fix_scope() const override { return QueryRuleScope::kStatementLocal; }

 protected:
  std::string Explain(const Detection& d) const override {
    return "the numbered columns/tables of '" + d.table +
           "' encode a data dimension in schema names; fold the series index into a "
           "column of a child table";
  }
};

class CloneTableFixer final : public TextualFixer {
 public:
  AntiPattern type() const override { return AntiPattern::kCloneTable; }
  QueryRuleScope fix_scope() const override { return QueryRuleScope::kStatementLocal; }

 protected:
  std::string Explain(const Detection& d) const override {
    return "merge the '" + d.table +
           "'-style clones into one table with a discriminator column; the numeric "
           "suffix is data, and cross-clone queries currently need UNIONs";
  }
};

class ExternalDataStorageFixer final : public TextualFixer {
 public:
  AntiPattern type() const override { return AntiPattern::kExternalDataStorage; }
  QueryRuleScope fix_scope() const override { return QueryRuleScope::kStatementLocal; }

 protected:
  std::string Explain(const Detection& d) const override {
    (void)d;
    return "store the file content in a BLOB column (or at minimum enforce path "
           "integrity at the application edge); external files miss transactions, "
           "backups, and permissions";
  }
};

class ReadablePasswordFixer final : public TextualFixer {
 public:
  AntiPattern type() const override { return AntiPattern::kReadablePassword; }
  QueryRuleScope fix_scope() const override { return QueryRuleScope::kStatementLocal; }

 protected:
  std::string Explain(const Detection& d) const override {
    (void)d;
    return "store a salted adaptive hash (bcrypt/argon2) instead of the password and "
           "compare hashes in the application layer";
  }
};

class InformationDuplicationFixer final : public TextualFixer {
 public:
  AntiPattern type() const override { return AntiPattern::kInformationDuplication; }
  QueryRuleScope fix_scope() const override { return QueryRuleScope::kStatementLocal; }

 protected:
  std::string Explain(const Detection& d) const override {
    return "drop derived column '" + d.column +
           "' and compute it at query time (or in a view); stored derivations go stale "
           "when their sources change";
  }
};

class DenormalizedTableFixer final : public Fixer {
 public:
  AntiPattern type() const override { return AntiPattern::kDenormalizedTable; }
  QueryRuleScope fix_scope() const override { return QueryRuleScope::kStatementLocal; }

  Fix Propose(const Detection& d, const Context& context) const override {
    (void)context;
    Fix fix = BaseFix(d);
    fix.kind = FixKind::kTextual;
    fix.statements.push_back("CREATE TABLE " + d.column +
                             "_dim (id SERIAL PRIMARY KEY, " + d.column +
                             " VARCHAR(64) UNIQUE);");
    fix.explanation =
        "extract the functionally-dependent pair into a dimension table and "
        "reference it by id; duplicates currently amplify storage and can drift";
    return fix;
  }
};

}  // namespace

std::vector<std::unique_ptr<Fixer>> MakeBuiltinFixers() {
  std::vector<std::unique_ptr<Fixer>> fixers;
  // Logical design.
  fixers.push_back(std::make_unique<MultiValuedAttributeFixer>());
  fixers.push_back(std::make_unique<NoPrimaryKeyFixer>());
  fixers.push_back(std::make_unique<NoForeignKeyFixer>());
  fixers.push_back(std::make_unique<GenericPrimaryKeyFixer>());
  fixers.push_back(std::make_unique<DataInMetadataFixer>());
  fixers.push_back(std::make_unique<AdjacencyListFixer>());
  fixers.push_back(std::make_unique<GodTableFixer>());
  // Physical design.
  fixers.push_back(std::make_unique<RoundingErrorsFixer>());
  fixers.push_back(std::make_unique<EnumeratedTypesFixer>());
  fixers.push_back(std::make_unique<ExternalDataStorageFixer>());
  fixers.push_back(std::make_unique<IndexOveruseFixer>());
  fixers.push_back(std::make_unique<IndexUnderuseFixer>());
  fixers.push_back(std::make_unique<CloneTableFixer>());
  // Query shape.
  fixers.push_back(std::make_unique<ColumnWildcardFixer>());
  fixers.push_back(std::make_unique<ConcatenateNullsFixer>());
  fixers.push_back(std::make_unique<OrderingByRandFixer>());
  fixers.push_back(std::make_unique<PatternMatchingFixer>());
  fixers.push_back(std::make_unique<ImplicitColumnsFixer>());
  fixers.push_back(std::make_unique<DistinctAndJoinFixer>());
  fixers.push_back(std::make_unique<TooManyJoinsFixer>());
  fixers.push_back(std::make_unique<ReadablePasswordFixer>());
  // Data.
  fixers.push_back(std::make_unique<MissingTimezoneFixer>());
  fixers.push_back(std::make_unique<IncorrectDataTypeFixer>());
  fixers.push_back(std::make_unique<DenormalizedTableFixer>());
  fixers.push_back(std::make_unique<InformationDuplicationFixer>());
  fixers.push_back(std::make_unique<RedundantColumnFixer>());
  fixers.push_back(std::make_unique<NoDomainConstraintFixer>());
  return fixers;
}

const char* FixerContract(AntiPattern type) {
  switch (type) {
    case AntiPattern::kColumnWildcard:
      return "mechanical rewrite: expands * into the catalog's column list "
             "(qualified per source when several tables are read); textual when a "
             "source is a subquery or missing from the catalog; equivalence "
             "contract: exact-ordered — differential execution requires identical "
             "rows in identical order";
    case AntiPattern::kImplicitColumns:
      return "mechanical rewrite: names the INSERT's target columns from the "
             "catalog; textual when the table is unknown or the VALUES arity "
             "mismatches the schema; equivalence contract: exact-ordered — "
             "differential execution requires identical table states afterward";
    case AntiPattern::kConcatenateNulls:
      return "mechanical rewrite: wraps nullable || / CONCAT operands in "
             "COALESCE(col, ''); equivalence contract: documented-divergence — "
             "rows with NULL operands intentionally change from NULL to the "
             "non-null concatenation, so execution is checked but results are not "
             "compared";
    case AntiPattern::kOrderingByRand:
      return "mechanical rewrite: ORDER BY RAND() ... LIMIT n becomes a random "
             "primary-key range probe; textual without a LIMIT or a single-column "
             "primary key; equivalence contract: documented-divergence — both "
             "sides sample at random, so execution is checked but results are not "
             "compared";
    case AntiPattern::kPatternMatching:
      return "mechanical rewrite: col LIKE '%tail' becomes REVERSE(col) LIKE "
             "'liat%' (serviceable by a functional index); textual for regexes and "
             "infix patterns; equivalence contract: multiset — differential "
             "execution requires the same rows, in any order";
    case AntiPattern::kIndexUnderuse:
      return "emits CREATE INDEX on the unindexed performance-critical access path";
    case AntiPattern::kIndexOveruse:
      return "emits DROP INDEX for the unused index; textual when the defining "
             "statement is not in the workload";
    case AntiPattern::kNoPrimaryKey:
      return "emits ALTER TABLE ... ADD PRIMARY KEY on a column the sampled data "
             "proves unique; textual when no candidate exists";
    case AntiPattern::kNoForeignKey:
      return "emits ALTER TABLE ... ADD CONSTRAINT FOREIGN KEY for the join edge "
             "the workload already exercises";
    case AntiPattern::kRoundingErrors:
      return "emits ALTER COLUMN ... TYPE NUMERIC(12, 2) — exact decimals instead "
             "of drifting FLOAT";
    case AntiPattern::kMissingTimezone:
      return "emits ALTER COLUMN ... TYPE TIMESTAMP WITH TIME ZONE";
    case AntiPattern::kIncorrectDataType:
      return "emits ALTER COLUMN to the type the sampled values actually are "
             "(INTEGER / NUMERIC / TIMESTAMP WITH TIME ZONE)";
    case AntiPattern::kRedundantColumn:
      return "emits ALTER TABLE ... DROP COLUMN, listing the impacted workload "
             "queries (Algorithm 4's I set)";
    case AntiPattern::kNoDomainConstraint:
      return "emits ADD CONSTRAINT ... CHECK matching the observed value range";
    case AntiPattern::kMultiValuedAttribute:
      return "emits the intersection-table conversion (the paper's Hosting fix, "
             "§2.1.1) and lists the impacted queries";
    case AntiPattern::kEnumeratedTypes:
      return "emits the lookup-table conversion of Fig. 5 and lists the impacted "
             "queries";
    case AntiPattern::kAdjacencyList:
      return "guidance plus sketch DDL for a closure table (or recursive CTEs)";
    case AntiPattern::kGenericPrimaryKey:
      return "guidance plus a RENAME COLUMN sketch toward a descriptive key name";
    case AntiPattern::kDenormalizedTable:
      return "guidance plus sketch DDL extracting the dependent pair into a "
             "dimension table";
    case AntiPattern::kDistinctAndJoin:
      return "guidance: rewrite the join as a semi-join (EXISTS / IN) or aggregate "
             "before joining";
    case AntiPattern::kTooManyJoins:
      return "guidance: split the query, cache stable dimensions, or denormalize "
             "read-mostly attributes";
    case AntiPattern::kGodTable:
      return "guidance: vertically partition by update cadence and access pattern";
    case AntiPattern::kDataInMetadata:
      return "guidance: fold the numbered-series index into rows of a child table";
    case AntiPattern::kCloneTable:
      return "guidance: merge clones into one table with a discriminator column";
    case AntiPattern::kExternalDataStorage:
      return "guidance: store file content in a BLOB column so it participates in "
             "transactions and backups";
    case AntiPattern::kInformationDuplication:
      return "guidance: drop the derived column and compute it at query time";
    case AntiPattern::kReadablePassword:
      return "guidance: store salted adaptive hashes and compare hashes in the "
             "application layer";
  }
  return "guidance tailored to the detection";
}

}  // namespace sqlcheck
