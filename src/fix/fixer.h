#pragma once

#include "analysis/context.h"
#include "fix/fix.h"
#include "rules/rule.h"

namespace sqlcheck {

/// \brief The action half of a rule (Algorithm 4): proposes a fix for one
/// detection of its anti-pattern. Fixers are registered in the RuleRegistry
/// alongside their detection halves, so detection/action pairs travel
/// together and custom deployments can swap either side independently.
///
/// A fixer only *proposes*; the FixEngine owns the verification loop that
/// promotes a proposal to a trusted `kRewrite` (or demotes it to `kTextual`
/// with a reason). Implementations should route mechanical transformations
/// through the AST rewriter (fix/rewriter.h) rather than string pasting, so
/// the proposal inherits the printer's round-trip guarantees.
class Fixer {
 public:
  virtual ~Fixer() = default;

  /// The anti-pattern this fixer repairs (pairs it with the Rule of the same
  /// type in the registry).
  virtual AntiPattern type() const = 0;

  /// Caching contract, mirroring Rule::query_scope(): kStatementLocal means
  /// Propose() derives the fix from the detection (and its parse tree) alone
  /// and never reads the evolving workload context — the incremental session
  /// may compute it once per unique fingerprint group and replay it verbatim.
  /// The conservative default forces re-evaluation whenever the workload may
  /// have changed (catalog-driven expansions, data-profile-driven DDL, ...).
  virtual QueryRuleScope fix_scope() const { return QueryRuleScope::kWorkload; }

  /// The Tier-3 equivalence contract this fixer's rewrites are judged under
  /// (fix/verify.h): whether differential execution must find exact ordered
  /// results, a matching multiset, or a documented divergence — or does not
  /// apply at all (additive DDL, textual guidance). The default keeps Tier 3
  /// off for fixers that never emit statement-replacing rewrites; every
  /// mechanical fixer declares its contract explicitly so the verifier never
  /// demotes an intentionally-divergent rewrite by default.
  virtual EquivalenceContract equivalence() const {
    return EquivalenceContract::kNotApplicable;
  }

  /// Proposes a fix for one detection of type(). `d.stmt` may be null (data
  /// anti-patterns); implementations must degrade to a textual fix then.
  virtual Fix Propose(const Detection& d, const Context& context) const = 0;
};

}  // namespace sqlcheck
