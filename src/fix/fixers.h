#pragma once

#include <memory>
#include <vector>

#include "fix/fixer.h"

namespace sqlcheck {

/// \brief The built-in action halves of the 27 rules (Algorithm 4's repair
/// table): one Fixer per anti-pattern, registered by RuleRegistry::Default()
/// alongside the detection halves. Mechanical transformations go through the
/// AST rewriter (fix/rewriter.h); everything else emits context-tailored
/// textual guidance, sometimes with sketch DDL attached.
std::vector<std::unique_ptr<Fixer>> MakeBuiltinFixers();

/// \brief One-line description of the built-in repair strategy for an
/// anti-pattern — what the fixer rewrites mechanically (and when it must
/// fall back to guidance). Backs the CLI's --explain surface.
const char* FixerContract(AntiPattern type);

}  // namespace sqlcheck
