#pragma once

#include <string>

#include "analysis/context.h"
#include "fix/fix.h"
#include "fix/verify.h"

namespace sqlcheck {

/// \brief Outcome of one Tier-3 differential execution (see VerifyByExecution).
struct ExecCheck {
  enum class Outcome {
    kEquivalent,  ///< Both sides executed; results equivalent under the contract.
    kDivergent,   ///< Both sides executed; results (or states) differ — demote.
    kInfeasible,  ///< The embedded engine could not run the check (unsupported
                  ///< statement shape, no tables to build, ...). Policy decides:
                  ///< --verify-exec on keeps Tier 2, required demotes.
    kSkipped,     ///< Tier 3 does not apply (contract kNotApplicable, additive
                  ///< DDL, or a non-replacing fix).
  };
  Outcome outcome = Outcome::kSkipped;
  std::string note;  ///< Divergence/infeasibility diagnostic ("" otherwise).
};

/// \brief Tier 3 of the rewrite verification pipeline: differential execution
/// on the embedded engine (src/engine/, src/storage/ — the seed's dormant
/// execution machinery, awakened as the product's strongest guarantee).
///
/// The verifier builds an ephemeral Database from the workload's DDL (table
/// schemas come from the Context's catalog; tables the workload never defined
/// are synthesized from the statement's own column references and harvested
/// literals), populates every referenced table — plus its foreign-key parents
/// — with deterministic seeded type-driven rows (literals and LIKE patterns
/// harvested from the statements are planted in the data so predicates select
/// non-trivial row sets), then executes `fix.original_sql` and
/// `fix.statements` through two identically-seeded Executors and compares:
///
///   * SELECT rewrites: the two result sets, row-for-row (kExactOrdered) or
///     as sorted multisets (kMultiset);
///   * DML rewrites: the full table states of two identically-built
///     databases after each side ran (kExactOrdered compares slot order);
///   * kDocumentedDivergence: both sides must *execute* successfully on the
///     populated tables; results are intentionally different and are not
///     compared.
///
/// Everything is deterministic in (options.seed, options.rows_per_table, the
/// statements themselves): re-running yields the same verdict bit-for-bit,
/// which is what makes the session-level memo sound.
ExecCheck VerifyByExecution(const Fix& fix, EquivalenceContract contract,
                            const Context& context, const ExecVerifyOptions& options);

}  // namespace sqlcheck
