#pragma once

#include <string>
#include <vector>

#include "rules/rule.h"

namespace sqlcheck {

/// \brief How a fix is delivered (§6): a mechanical rewrite when the
/// transformation is non-ambiguous, otherwise a context-tailored textual fix
/// the developer applies manually.
enum class FixKind { kRewrite, kTextual };

/// \brief One suggested fix for a detection.
///
/// `kRewrite` fixes produced by the built-in fixers are *self-verified*
/// before they leave the FixEngine: every rewritten statement must re-lex and
/// re-parse cleanly, and re-analysis with the originating rule must no longer
/// report the anti-pattern. A proposal that fails verification is demoted to
/// `kTextual` with the reason in `verify_note`, so a consumer can trust that
/// `kind == kRewrite && verified` means "safe to apply mechanically".
struct Fix {
  AntiPattern type = AntiPattern::kColumnWildcard;
  FixKind kind = FixKind::kTextual;
  std::string original_sql;            ///< The offending statement; for data
                                       ///< anti-patterns, the owning table's DDL
                                       ///< (or "table.column") so emitters can
                                       ///< always anchor a location.
  std::vector<std::string> statements; ///< New/rewritten SQL to apply, in order.
  std::vector<std::string> impacted_queries;  ///< Other workload queries the fix
                                              ///< touches (Algorithm 4's I set).
  std::string explanation;             ///< Why, and what to do when kind==kTextual.

  /// statements[0..] *replace* the offending statement in place (query-shape
  /// rewrites). False for additive fixes (new DDL the developer runs once).
  bool replaces_original = false;
  /// The rewrite passed the verification loop (re-parse + re-analysis).
  bool verified = false;
  /// Why a proposed rewrite was demoted to kTextual ("" when it was not).
  std::string verify_note;
};

}  // namespace sqlcheck
