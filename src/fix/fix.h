#pragma once

#include <string>
#include <vector>

#include "rules/rule.h"

namespace sqlcheck {

/// \brief How a fix is delivered (§6): a mechanical rewrite when the
/// transformation is non-ambiguous, otherwise a context-tailored textual fix
/// the developer applies manually.
enum class FixKind { kRewrite, kTextual };

/// \brief One suggested fix for a detection.
struct Fix {
  AntiPattern type = AntiPattern::kColumnWildcard;
  FixKind kind = FixKind::kTextual;
  std::string original_sql;            ///< The offending statement ("" for data APs).
  std::vector<std::string> statements; ///< New/rewritten SQL to apply, in order.
  std::vector<std::string> impacted_queries;  ///< Other workload queries the fix
                                              ///< touches (Algorithm 4's I set).
  std::string explanation;             ///< Why, and what to do when kind==kTextual.
};

}  // namespace sqlcheck
