#pragma once

#include <string>
#include <vector>

#include "fix/verify.h"
#include "rules/rule.h"

namespace sqlcheck {

/// \brief How a fix is delivered (§6): a mechanical rewrite when the
/// transformation is non-ambiguous, otherwise a context-tailored textual fix
/// the developer applies manually.
enum class FixKind { kRewrite, kTextual };

/// \brief One suggested fix for a detection.
///
/// `kRewrite` fixes produced by the built-in fixers are *self-verified*
/// before they leave the FixEngine, through the tiered pipeline in
/// fix/verify.h: every rewritten statement must re-lex and re-parse cleanly
/// (Tier 1), re-analysis with the originating rule must no longer report the
/// anti-pattern (Tier 2), and — when differential execution is enabled —
/// original and rewrite must execute to equivalent results on an ephemeral
/// seeded database under the fixer's equivalence contract (Tier 3). A
/// proposal that fails verification is demoted to `kTextual` with the reason
/// in `verify_note`, so a consumer can trust that `kind == kRewrite &&
/// verified` means "safe to apply mechanically".
struct Fix {
  AntiPattern type = AntiPattern::kColumnWildcard;
  FixKind kind = FixKind::kTextual;
  std::string original_sql;            ///< The offending statement; for data
                                       ///< anti-patterns, the owning table's DDL
                                       ///< (or "table.column") so emitters can
                                       ///< always anchor a location.
  std::vector<std::string> statements; ///< New/rewritten SQL to apply, in order.
  std::vector<std::string> impacted_queries;  ///< Other workload queries the fix
                                              ///< touches (Algorithm 4's I set).
  std::string explanation;             ///< Why, and what to do when kind==kTextual.

  /// statements[0..] *replace* the offending statement in place (query-shape
  /// rewrites). False for additive fixes (new DDL the developer runs once).
  bool replaces_original = false;
  /// The rewrite passed the verification pipeline (see verify_tier for how
  /// far it climbed).
  bool verified = false;
  /// Highest verification tier the proposal reached: kParse/kAnalysis from
  /// the re-parse + re-analysis loop, kExec when differential execution
  /// proved result equivalence under the fixer's declared contract. kNone
  /// for textual fixes and demoted proposals.
  VerifyTier verify_tier = VerifyTier::kNone;
  /// Why a proposed rewrite was demoted to kTextual, or what Tier 3 observed
  /// ("" for a clean, unremarkable pass).
  std::string verify_note;
};

}  // namespace sqlcheck
