#include "fix/fix_engine.h"

#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/strings.h"
#include "fix/fixer.h"
#include "fix/rewriter.h"
#include "fix/verify_exec.h"

namespace sqlcheck {

namespace {

/// Data anti-patterns detect on table profiles, not statements, so their
/// fixes arrive with no query to anchor to. Anchor them to the owning
/// table's DDL when the workload carries it (the per-table statement index
/// makes this O(statements-on-table)), else to a "table.column" locator.
void AnchorProvenance(Fix* fix, const Detection& d, const Context& context) {
  if (!fix->original_sql.empty() || d.table.empty()) return;
  for (const QueryFacts* facts : context.QueriesReferencing(d.table)) {
    if (facts->kind == sql::StatementKind::kCreateTable && !facts->raw_sql.empty()) {
      fix->original_sql = facts->raw_sql;
      return;
    }
  }
  fix->original_sql = d.table;
  if (!d.column.empty()) {
    fix->original_sql += '.';
    fix->original_sql += d.column;
  }
}

}  // namespace

FixEngine::FixEngine(const RuleRegistry& registry, DetectorConfig config,
                     ExecVerifyOptions exec_options, VerifyMemo* memo,
                     VerifyStats* stats)
    : registry_(&registry),
      config_(config),
      exec_options_(exec_options),
      memo_(memo),
      stats_(stats) {}

VerifyVerdict FixEngine::VerifyTiered(const Fix& fix, const Fixer* fixer,
                                      const Context& context) const {
  VerifyVerdict verdict;

  // Tiers 1 + 2: re-parse, then re-analysis with the originating rule. When
  // the rule is unavailable (custom fixer without a detection half) the
  // check stops at the parse tier.
  const Rule* rule = registry_->FindRule(fix.type);
  RewriteCheck check = VerifyRewrite(fix, rule, context, config_);
  if (!check.ok) {
    verdict.ok = false;
    verdict.tier = VerifyTier::kNone;
    verdict.note = check.reason;
    return verdict;
  }
  verdict.ok = true;
  verdict.tier = rule != nullptr ? VerifyTier::kAnalysis : VerifyTier::kParse;

  // Tier 3: differential execution, gated on the mode and the fixer's
  // declared contract.
  if (exec_options_.mode == ExecVerifyMode::kOff) return verdict;
  EquivalenceContract contract = fixer != nullptr
                                     ? fixer->equivalence()
                                     : EquivalenceContract::kNotApplicable;
  ExecCheck exec = VerifyByExecution(fix, contract, context, exec_options_);
  switch (exec.outcome) {
    case ExecCheck::Outcome::kSkipped:
      // Tier 3 does not apply to this fix; Tier 2 is its ceiling.
      return verdict;
    case ExecCheck::Outcome::kEquivalent:
      if (stats_ != nullptr) ++stats_->exec_runs;
      verdict.tier = VerifyTier::kExec;
      return verdict;
    case ExecCheck::Outcome::kDivergent:
      if (stats_ != nullptr) ++stats_->exec_runs;
      verdict.ok = false;
      verdict.tier = VerifyTier::kNone;
      verdict.note = "differential execution (" +
                     std::string(EquivalenceContractName(contract)) +
                     " contract): " + exec.note;
      return verdict;
    case ExecCheck::Outcome::kInfeasible:
      if (stats_ != nullptr) ++stats_->exec_infeasible;
      if (exec_options_.mode == ExecVerifyMode::kRequired) {
        verdict.ok = false;
        verdict.tier = VerifyTier::kNone;
        verdict.note = "differential execution required but infeasible: " + exec.note;
      }
      // kOn: an engine limitation must not demote a fix that passed Tier 2.
      return verdict;
  }
  return verdict;
}

Fix FixEngine::SuggestFix(const Detection& d, const Context& context) const {
  Fix fix;
  const Fixer* fixer = registry_->FindFixer(d.type);
  if (fixer == nullptr) {
    // Custom rule without a registered action half: generic guidance.
    fix.type = d.type;
    fix.original_sql = d.query;
    fix.kind = FixKind::kTextual;
    fix.explanation = "review the detected anti-pattern";
  } else {
    fix = fixer->Propose(d, context);
  }
  AnchorProvenance(&fix, d, context);

  if (fix.kind == FixKind::kRewrite) {
    // Tier 3 executes the original too, so the memo key must cover it:
    // distinct originals can share a rewritten spelling yet behave
    // differently on the ephemeral database.
    std::string memo_key;
    memo_key.reserve(96);
    memo_key += std::to_string(static_cast<int>(fix.type));
    memo_key += '\x1f';
    memo_key += fix.original_sql;
    for (const std::string& stmt : fix.statements) {
      memo_key += '\x1f';
      memo_key += stmt;
    }
    VerifyMemo& memo = memo_ != nullptr ? *memo_ : own_memo_;
    auto [it, inserted] = memo.try_emplace(std::move(memo_key));
    if (inserted) {
      if (stats_ != nullptr) ++stats_->memo_misses;
      it->second = VerifyTiered(fix, fixer, context);
    } else if (stats_ != nullptr) {
      ++stats_->memo_hits;
    }
    const VerifyVerdict& verdict = it->second;
    if (verdict.ok) {
      fix.verified = true;
      fix.verify_tier = verdict.tier;
    } else {
      // The proposal keeps its statements as a sketch, but loses the
      // "mechanically applicable" promise.
      fix.kind = FixKind::kTextual;
      fix.verified = false;
      fix.verify_tier = VerifyTier::kNone;
      fix.verify_note = verdict.note;
    }
    if (stats_ != nullptr) {
      switch (fix.verify_tier) {
        case VerifyTier::kParse: ++stats_->tier_parse; break;
        case VerifyTier::kAnalysis: ++stats_->tier_analysis; break;
        case VerifyTier::kExec: ++stats_->tier_exec; break;
        case VerifyTier::kNone: ++stats_->demoted; break;
      }
    }
  }
  return fix;
}

std::vector<Fix> FixEngine::SuggestFixes(const std::vector<Detection>& detections,
                                         const Context& context) const {
  std::vector<Fix> fixes;
  fixes.reserve(detections.size());
  for (const Detection& d : detections) fixes.push_back(SuggestFix(d, context));
  return fixes;
}

std::string ApplyFixes(const Context& context, const Report& report,
                       size_t* applied_count) {
  // Highest-ranked verified rewrite per offending statement wins; the keys
  // view the report's own Fix storage, which outlives this call.
  std::unordered_map<std::string_view, const Fix*> replacements;
  for (const Finding& f : report.findings) {
    const Fix& fix = f.fix;
    if (fix.kind != FixKind::kRewrite || !fix.verified || !fix.replaces_original) {
      continue;
    }
    if (fix.original_sql.empty() || fix.statements.empty()) continue;
    replacements.try_emplace(std::string_view(fix.original_sql), &fix);
  }

  std::string out;
  size_t applied = 0;
  for (const QueryFacts& facts : context.queries()) {
    auto it = replacements.find(facts.raw_sql);
    if (it == replacements.end()) {
      out.append(facts.raw_sql);
      // Statements are stored trimmed; restore the terminator they lost.
      if (!facts.raw_sql.empty() && facts.raw_sql.back() != ';') out.push_back(';');
      out.push_back('\n');
      continue;
    }
    ++applied;
    for (const std::string& stmt : it->second->statements) {
      out.append(stmt);
      out.push_back('\n');
    }
  }
  if (applied_count != nullptr) *applied_count = applied;
  return out;
}

}  // namespace sqlcheck
