#include "fix/fix_engine.h"

#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/strings.h"
#include "fix/fixer.h"
#include "fix/rewriter.h"

namespace sqlcheck {

namespace {

/// Data anti-patterns detect on table profiles, not statements, so their
/// fixes arrive with no query to anchor to. Anchor them to the owning
/// table's DDL when the workload carries it (the per-table statement index
/// makes this O(statements-on-table)), else to a "table.column" locator.
void AnchorProvenance(Fix* fix, const Detection& d, const Context& context) {
  if (!fix->original_sql.empty() || d.table.empty()) return;
  for (const QueryFacts* facts : context.QueriesReferencing(d.table)) {
    if (facts->kind == sql::StatementKind::kCreateTable && !facts->raw_sql.empty()) {
      fix->original_sql = facts->raw_sql;
      return;
    }
  }
  fix->original_sql = d.table;
  if (!d.column.empty()) {
    fix->original_sql += '.';
    fix->original_sql += d.column;
  }
}

}  // namespace

FixEngine::FixEngine(const RuleRegistry& registry, DetectorConfig config)
    : registry_(&registry), config_(config) {}

Fix FixEngine::SuggestFix(const Detection& d, const Context& context) const {
  Fix fix;
  const Fixer* fixer = registry_->FindFixer(d.type);
  if (fixer == nullptr) {
    // Custom rule without a registered action half: generic guidance.
    fix.type = d.type;
    fix.original_sql = d.query;
    fix.kind = FixKind::kTextual;
    fix.explanation = "review the detected anti-pattern";
  } else {
    fix = fixer->Propose(d, context);
  }
  AnchorProvenance(&fix, d, context);

  if (fix.kind == FixKind::kRewrite) {
    std::string memo_key;
    memo_key.reserve(64);
    memo_key += std::to_string(static_cast<int>(fix.type));
    for (const std::string& stmt : fix.statements) {
      memo_key += '\x1f';
      memo_key += stmt;
    }
    auto [it, inserted] = verify_memo_.try_emplace(std::move(memo_key));
    if (inserted) {
      it->second = VerifyRewrite(fix, registry_->FindRule(d.type), context, config_);
    }
    const RewriteCheck& check = it->second;
    if (check.ok) {
      fix.verified = true;
    } else {
      // The proposal keeps its statements as a sketch, but loses the
      // "mechanically applicable" promise.
      fix.kind = FixKind::kTextual;
      fix.verified = false;
      fix.verify_note = check.reason;
    }
  }
  return fix;
}

std::vector<Fix> FixEngine::SuggestFixes(const std::vector<Detection>& detections,
                                         const Context& context) const {
  std::vector<Fix> fixes;
  fixes.reserve(detections.size());
  for (const Detection& d : detections) fixes.push_back(SuggestFix(d, context));
  return fixes;
}

std::string ApplyFixes(const Context& context, const Report& report,
                       size_t* applied_count) {
  // Highest-ranked verified rewrite per offending statement wins; the keys
  // view the report's own Fix storage, which outlives this call.
  std::unordered_map<std::string_view, const Fix*> replacements;
  for (const Finding& f : report.findings) {
    const Fix& fix = f.fix;
    if (fix.kind != FixKind::kRewrite || !fix.verified || !fix.replaces_original) {
      continue;
    }
    if (fix.original_sql.empty() || fix.statements.empty()) continue;
    replacements.try_emplace(std::string_view(fix.original_sql), &fix);
  }

  std::string out;
  size_t applied = 0;
  for (const QueryFacts& facts : context.queries()) {
    auto it = replacements.find(facts.raw_sql);
    if (it == replacements.end()) {
      out.append(facts.raw_sql);
      // Statements are stored trimmed; restore the terminator they lost.
      if (!facts.raw_sql.empty() && facts.raw_sql.back() != ';') out.push_back(';');
      out.push_back('\n');
      continue;
    }
    ++applied;
    for (const std::string& stmt : it->second->statements) {
      out.append(stmt);
      out.push_back('\n');
    }
  }
  if (applied_count != nullptr) *applied_count = applied;
  return out;
}

}  // namespace sqlcheck
