#include "fix/fix.h"

namespace sqlcheck {

// Fix is a plain data carrier; logic lives in the repair engine.

}  // namespace sqlcheck
