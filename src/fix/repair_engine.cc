#include "fix/repair_engine.h"

#include "common/strings.h"
#include "sql/printer.h"

namespace sqlcheck {

namespace {

/// Wraps nullable column refs appearing under `||` / CONCAT in COALESCE.
void WrapConcatNulls(sql::Expr* e, const Context& context,
                     const std::string& default_table, bool under_concat) {
  bool concat_here =
      (e->kind == sql::ExprKind::kBinary && e->text == "||") ||
      (e->kind == sql::ExprKind::kFunction && EqualsIgnoreCase(e->text, "concat"));
  for (auto& child : e->children) {
    if ((under_concat || concat_here) && child->kind == sql::ExprKind::kColumnRef) {
      std::string table(child->TableQualifier());
      if (table.empty()) table = default_table;
      if (context.ColumnNullable(table, child->ColumnName())) {
        std::vector<sql::ExprPtr> args;
        args.push_back(std::move(child));
        args.push_back(sql::MakeStringLiteral(""));
        child = sql::MakeFunction("COALESCE", std::move(args));
        continue;
      }
    }
    WrapConcatNulls(child.get(), context, default_table, under_concat || concat_here);
  }
}

std::string IndexNameFor(const std::string& table, const std::string& column) {
  return "idx_" + ToLower(table) + "_" + ToLower(column);
}

/// Workload queries (other than `self`) that reference `table` — Algorithm 4's
/// GetImpactedQueries.
std::vector<std::string> ImpactedQueries(const Context& context, const std::string& table,
                                         const std::string& self) {
  std::vector<std::string> out;
  for (const QueryFacts* facts : context.QueriesReferencing(table)) {
    if (facts->raw_sql.empty() || facts->raw_sql == self) continue;
    if (facts->kind == sql::StatementKind::kCreateTable ||
        facts->kind == sql::StatementKind::kCreateIndex) {
      continue;
    }
    out.emplace_back(facts->raw_sql);
  }
  return out;
}

/// Best-effort primary-key candidate for a table lacking one: a column whose
/// sampled values are unique, preferring id-ish names.
std::string PkCandidate(const Context& context, const std::string& table) {
  const TableSchema* schema = context.catalog().FindTable(table);
  if (schema == nullptr) return "";
  const TableProfile* profile = context.ProfileFor(table);
  std::string fallback;
  for (const auto& col : schema->columns) {
    bool idish = EqualsIgnoreCase(col.name, "id") || EndsWithIgnoreCase(col.name, "_id");
    bool unique_in_data = false;
    if (profile != nullptr) {
      const ColumnStats* stats = profile->stats.FindColumn(col.name);
      if (stats != nullptr && stats->row_count > 0 && stats->null_count == 0 &&
          stats->distinct_count == stats->row_count) {
        unique_in_data = true;
      }
    }
    if (idish && (profile == nullptr || unique_in_data)) return col.name;
    if (unique_in_data && fallback.empty()) fallback = col.name;
  }
  return fallback;
}

}  // namespace

Fix RepairEngine::SuggestFix(const Detection& d, const Context& context) const {
  Fix fix;
  fix.type = d.type;
  fix.original_sql = d.query;

  switch (d.type) {
    // ----------------------- mechanical rewrites ---------------------------
    case AntiPattern::kImplicitColumns: {
      const auto* insert =
          d.stmt != nullptr ? d.stmt->As<sql::InsertStatement>() : nullptr;
      const TableSchema* schema =
          insert != nullptr ? context.catalog().FindTable(insert->table) : nullptr;
      if (insert != nullptr && schema != nullptr &&
          (insert->rows.empty() ||
           insert->rows[0].size() == schema->columns.size())) {
        auto cloned = insert->CloneStatement();
        auto* fixed = static_cast<sql::InsertStatement*>(cloned.get());
        fixed->columns.clear();
        for (const auto& c : schema->columns) fixed->columns.emplace_back(c.name);
        fix.kind = FixKind::kRewrite;
        fix.statements.push_back(sql::PrintStatement(*fixed));
        fix.explanation = "named the target columns explicitly so the INSERT survives "
                          "schema evolution";
      } else {
        fix.kind = FixKind::kTextual;
        fix.explanation = "list the target columns of table '" + d.table +
                          "' explicitly in the INSERT";
      }
      return fix;
    }

    case AntiPattern::kColumnWildcard: {
      const auto* select =
          d.stmt != nullptr ? d.stmt->As<sql::SelectStatement>() : nullptr;
      bool expandable = select != nullptr;
      std::vector<std::string> columns;
      if (select != nullptr) {
        std::vector<std::string_view> tables;
        select->CollectReferencedTables(&tables);
        for (std::string_view table : tables) {
          const TableSchema* schema = context.catalog().FindTable(table);
          if (schema == nullptr) {
            expandable = false;
            break;
          }
          for (const auto& col : schema->columns) columns.push_back(col.name);
        }
      }
      if (expandable && !columns.empty()) {
        auto cloned = select->CloneSelect();
        sql::AstVector<sql::SelectItem> items;
        for (auto& item : cloned->items) {
          if (item.expr->kind != sql::ExprKind::kStar) {
            items.push_back(std::move(item));
            continue;
          }
          for (const auto& col : columns) {
            sql::SelectItem expanded;
            expanded.expr = sql::MakeColumnRef({col});
            items.push_back(std::move(expanded));
          }
        }
        cloned->items = std::move(items);
        fix.kind = FixKind::kRewrite;
        fix.statements.push_back(sql::PrintStatement(*cloned));
        fix.explanation = "expanded SELECT * into the concrete column list so schema "
                          "changes cannot silently alter the result shape";
      } else {
        fix.kind = FixKind::kTextual;
        fix.explanation = "replace SELECT * with the columns the caller actually reads";
      }
      return fix;
    }

    case AntiPattern::kConcatenateNulls: {
      const auto* select =
          d.stmt != nullptr ? d.stmt->As<sql::SelectStatement>() : nullptr;
      if (select != nullptr) {
        auto cloned = select->CloneSelect();
        std::string default_table;
        if (cloned->from.size() == 1) default_table = cloned->from[0].name;
        for (auto& item : cloned->items) {
          if (item.expr) WrapConcatNulls(item.expr.get(), context, default_table, false);
        }
        if (cloned->where) {
          WrapConcatNulls(cloned->where.get(), context, default_table, false);
        }
        fix.kind = FixKind::kRewrite;
        fix.statements.push_back(sql::PrintStatement(*cloned));
        fix.explanation = "wrapped nullable operands of || in COALESCE so a NULL field "
                          "no longer voids the whole concatenation";
      } else {
        fix.kind = FixKind::kTextual;
        fix.explanation = "wrap nullable columns in COALESCE(col, '') before "
                          "concatenating";
      }
      return fix;
    }

    case AntiPattern::kIndexUnderuse: {
      fix.kind = FixKind::kRewrite;
      fix.statements.push_back("CREATE INDEX " + IndexNameFor(d.table, d.column) + " ON " +
                               d.table + " (" + d.column + ");");
      fix.explanation = "added the missing index on the performance-critical access path";
      return fix;
    }

    case AntiPattern::kIndexOveruse: {
      const auto* create =
          d.stmt != nullptr ? d.stmt->As<sql::CreateIndexStatement>() : nullptr;
      if (create != nullptr) {
        fix.kind = FixKind::kRewrite;
        fix.statements.push_back("DROP INDEX " + std::string(create->index) + ";");
        fix.explanation = "dropped the redundant index; every write was paying its "
                          "maintenance cost (Fig. 8a shows ~10x slower UPDATEs)";
      } else {
        fix.kind = FixKind::kTextual;
        fix.explanation = "drop the indexes on '" + d.table +
                          "' that no query uses, or merge single-column indexes into "
                          "one multi-column index";
      }
      return fix;
    }

    case AntiPattern::kNoPrimaryKey: {
      std::string candidate = PkCandidate(context, d.table);
      if (!candidate.empty()) {
        fix.kind = FixKind::kRewrite;
        fix.statements.push_back("ALTER TABLE " + d.table + " ADD PRIMARY KEY (" +
                                 candidate + ");");
        fix.explanation = "'" + candidate +
                          "' is unique across the sampled data, so it can carry the "
                          "primary key";
      } else {
        fix.kind = FixKind::kTextual;
        fix.explanation = "add a PRIMARY KEY to '" + d.table +
                          "' (introduce a surrogate key column if no natural key exists)";
      }
      return fix;
    }

    case AntiPattern::kNoForeignKey: {
      if (!d.table.empty() && !d.column.empty()) {
        // Detection recorded the join edge's right side; find the other table.
        std::string parent;
        for (const QueryFacts& facts : context.queries()) {
          for (const auto& j : facts.joins) {
            if (EqualsIgnoreCase(j.right_table, d.table) &&
                EqualsIgnoreCase(j.right_column, d.column) && !j.left_table.empty()) {
              parent = j.left_table;
            }
          }
        }
        if (!parent.empty()) {
          fix.kind = FixKind::kRewrite;
          fix.statements.push_back("ALTER TABLE " + d.table + " ADD CONSTRAINT fk_" +
                                   ToLower(d.table) + "_" + ToLower(d.column) +
                                   " FOREIGN KEY (" + d.column + ") REFERENCES " + parent +
                                   " (" + d.column + ");");
          fix.explanation = "declared the foreign key the JOIN already implies, so the "
                            "DBMS enforces referential integrity";
          return fix;
        }
      }
      fix.kind = FixKind::kTextual;
      fix.explanation = "declare FOREIGN KEY constraints for the join relationships of "
                        "table '" + d.table + "'";
      return fix;
    }

    case AntiPattern::kRoundingErrors: {
      fix.kind = FixKind::kRewrite;
      fix.statements.push_back("ALTER TABLE " + d.table + " ALTER COLUMN " + d.column +
                               " TYPE NUMERIC(12, 2);");
      fix.explanation = "NUMERIC stores exact decimals; FLOAT drifts under aggregation "
                        "and breaks equality predicates";
      return fix;
    }

    case AntiPattern::kMissingTimezone: {
      if (!d.column.empty()) {
        fix.kind = FixKind::kRewrite;
        fix.statements.push_back("ALTER TABLE " + d.table + " ALTER COLUMN " + d.column +
                                 " TYPE TIMESTAMP WITH TIME ZONE;");
        fix.explanation = "timestamps without a zone are ambiguous the moment the "
                          "application crosses regions or DST";
      } else {
        fix.kind = FixKind::kTextual;
        fix.explanation = "store date-times in '" + d.table + "' with explicit timezones";
      }
      return fix;
    }

    case AntiPattern::kIncorrectDataType: {
      const TableProfile* profile = context.ProfileFor(d.table);
      const ColumnStats* stats =
          profile != nullptr ? profile->stats.FindColumn(d.column) : nullptr;
      std::string target = "NUMERIC(12, 2)";
      if (stats != nullptr && stats->date_string_fraction > stats->numeric_string_fraction) {
        target = "TIMESTAMP WITH TIME ZONE";
      } else if (stats != nullptr && stats->numeric_string_fraction >= 0.9) {
        // All-integer strings become INTEGER.
        target = "INTEGER";
      }
      fix.kind = FixKind::kRewrite;
      fix.statements.push_back("ALTER TABLE " + d.table + " ALTER COLUMN " + d.column +
                               " TYPE " + target + ";");
      fix.explanation = "the sampled values are uniformly " +
                        std::string(target == "INTEGER" || target == "NUMERIC(12, 2)"
                                        ? "numeric"
                                        : "temporal") +
                        "; typed storage is smaller, ordered, and index-friendly";
      return fix;
    }

    case AntiPattern::kRedundantColumn: {
      fix.kind = FixKind::kRewrite;
      fix.statements.push_back("ALTER TABLE " + d.table + " DROP COLUMN " + d.column + ";");
      fix.impacted_queries = ImpactedQueries(context, d.table, d.query);
      fix.explanation = "the column stores no information (all NULL or one constant); "
                        "dropping it shrinks every row";
      return fix;
    }

    case AntiPattern::kNoDomainConstraint: {
      const TableProfile* profile = context.ProfileFor(d.table);
      const ColumnStats* stats =
          profile != nullptr ? profile->stats.FindColumn(d.column) : nullptr;
      std::string lo = stats != nullptr && stats->min ? stats->min->ToDisplay() : "0";
      std::string hi = stats != nullptr && stats->max ? stats->max->ToDisplay() : "100";
      fix.kind = FixKind::kRewrite;
      fix.statements.push_back("ALTER TABLE " + d.table + " ADD CONSTRAINT chk_" +
                               ToLower(d.column) + " CHECK (" + d.column + " BETWEEN " +
                               lo + " AND " + hi + ");");
      fix.explanation = "added a CHECK matching the observed value range so out-of-range "
                        "writes fail loudly";
      return fix;
    }

    // -------------------- schema redesigns (DDL + guidance) ----------------
    case AntiPattern::kMultiValuedAttribute: {
      std::string map_table = d.table + "_" + d.column + "_map";
      std::string parent_pk = "id";
      const TableSchema* schema = context.catalog().FindTable(d.table);
      if (schema != nullptr && !schema->primary_key.empty()) {
        parent_pk = schema->primary_key[0];
      }
      fix.kind = FixKind::kRewrite;
      fix.statements.push_back(
          "CREATE TABLE " + map_table + " (" + parent_pk + " VARCHAR(64) REFERENCES " +
          d.table + " (" + parent_pk + "), value VARCHAR(64), PRIMARY KEY (" + parent_pk +
          ", value));");
      fix.statements.push_back("ALTER TABLE " + d.table + " DROP COLUMN " + d.column + ";");
      fix.impacted_queries = ImpactedQueries(context, d.table, d.query);
      fix.explanation =
          "replaced the delimiter-separated list with intersection table '" + map_table +
          "' (the paper's Hosting-table fix, §2.1.1); rewrite LIKE-based lookups as "
          "indexed joins through it";
      return fix;
    }

    case AntiPattern::kEnumeratedTypes: {
      std::string lookup = d.column + "_lookup";
      fix.kind = FixKind::kRewrite;
      fix.statements.push_back("CREATE TABLE " + lookup + " (" + d.column +
                               "_id SERIAL PRIMARY KEY, " + d.column +
                               "_name VARCHAR(64) UNIQUE NOT NULL);");
      fix.statements.push_back("ALTER TABLE " + d.table + " ADD COLUMN " + d.column +
                               "_id INTEGER REFERENCES " + lookup + " (" + d.column +
                               "_id);");
      fix.statements.push_back("ALTER TABLE " + d.table + " DROP COLUMN " + d.column + ";");
      fix.impacted_queries = ImpactedQueries(context, d.table, d.query);
      fix.explanation =
          "moved the value domain into lookup table '" + lookup +
          "' (Fig. 5 of the paper); renaming a value becomes one UPDATE instead of "
          "DROP CONSTRAINT + UPDATE + ADD CONSTRAINT";
      return fix;
    }

    case AntiPattern::kAdjacencyList: {
      std::string closure = d.table + "_paths";
      fix.kind = FixKind::kTextual;
      fix.statements.push_back("CREATE TABLE " + closure +
                               " (ancestor VARCHAR(64), descendant VARCHAR(64), depth "
                               "INTEGER, PRIMARY KEY (ancestor, descendant));");
      fix.explanation =
          "self-referencing '" + d.table + "." + d.column +
          "' needs recursive traversal for subtree queries; materialize a closure "
          "table ('" + closure + "') or use recursive CTEs where supported";
      return fix;
    }

    case AntiPattern::kGenericPrimaryKey: {
      fix.kind = FixKind::kTextual;
      fix.statements.push_back("ALTER TABLE " + d.table + " RENAME COLUMN id TO " +
                               ToLower(d.table) + "_id;");
      fix.explanation = "a descriptive key name disambiguates joins (USING(" +
                        ToLower(d.table) + "_id)) and self-documents foreign keys";
      return fix;
    }

    // --------------------------- textual fixes -----------------------------
    case AntiPattern::kOrderingByRand:
      fix.kind = FixKind::kTextual;
      fix.explanation =
          "ORDER BY RAND() sorts the entire result; pick a random key instead "
          "(e.g. WHERE key >= <random value in key range> ORDER BY key LIMIT 1) or "
          "sample ids in the application";
      return fix;

    case AntiPattern::kPatternMatching:
      fix.kind = FixKind::kTextual;
      fix.explanation =
          "pattern predicates on '" + d.column +
          "' cannot use B-tree indexes; add a full-text/trigram index, or restructure "
          "the data so equality predicates suffice";
      return fix;

    case AntiPattern::kDistinctAndJoin:
      fix.kind = FixKind::kTextual;
      fix.explanation =
          "DISTINCT is compensating for join fan-out; rewrite the join as a semi-join "
          "(EXISTS / IN) against the many-side, or aggregate before joining";
      return fix;

    case AntiPattern::kTooManyJoins:
      fix.kind = FixKind::kTextual;
      fix.explanation =
          "split the query, cache the stable dimensions, or materialize a pre-joined "
          "view; if the joins stem from over-normalization, consider a modest "
          "denormalization of read-mostly attributes";
      return fix;

    case AntiPattern::kGodTable:
      fix.kind = FixKind::kTextual;
      fix.explanation =
          "vertically partition '" + d.table +
          "' into entity-focused tables; group columns by update cadence and access "
          "pattern, linked by the primary key";
      return fix;

    case AntiPattern::kDataInMetadata:
      fix.kind = FixKind::kTextual;
      fix.explanation =
          "the numbered columns/tables of '" + d.table +
          "' encode a data dimension in schema names; fold the series index into a "
          "column of a child table";
      return fix;

    case AntiPattern::kCloneTable: {
      fix.kind = FixKind::kTextual;
      fix.explanation =
          "merge the '" + d.table +
          "'-style clones into one table with a discriminator column; the numeric "
          "suffix is data, and cross-clone queries currently need UNIONs";
      return fix;
    }

    case AntiPattern::kExternalDataStorage:
      fix.kind = FixKind::kTextual;
      fix.explanation =
          "store the file content in a BLOB column (or at minimum enforce path "
          "integrity at the application edge); external files miss transactions, "
          "backups, and permissions";
      return fix;

    case AntiPattern::kDenormalizedTable:
      fix.kind = FixKind::kTextual;
      fix.statements.push_back("CREATE TABLE " + d.column +
                               "_dim (id SERIAL PRIMARY KEY, " + d.column +
                               " VARCHAR(64) UNIQUE);");
      fix.explanation =
          "extract the functionally-dependent pair into a dimension table and "
          "reference it by id; duplicates currently amplify storage and can drift";
      return fix;

    case AntiPattern::kInformationDuplication:
      fix.kind = FixKind::kTextual;
      fix.explanation =
          "drop derived column '" + d.column +
          "' and compute it at query time (or in a view); stored derivations go stale "
          "when their sources change";
      return fix;

    case AntiPattern::kReadablePassword:
      fix.kind = FixKind::kTextual;
      fix.explanation =
          "store a salted adaptive hash (bcrypt/argon2) instead of the password and "
          "compare hashes in the application layer";
      return fix;
  }

  fix.kind = FixKind::kTextual;
  fix.explanation = "review the detected anti-pattern";
  return fix;
}

std::vector<Fix> RepairEngine::SuggestFixes(const std::vector<Detection>& detections,
                                            const Context& context) const {
  std::vector<Fix> fixes;
  fixes.reserve(detections.size());
  for (const Detection& d : detections) fixes.push_back(SuggestFix(d, context));
  return fixes;
}

}  // namespace sqlcheck
