#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>

namespace sqlcheck {

// ---------------------------------------------------------------------------
// Tiered rewrite verification (SQLRepair's lesson, applied in depth)
// ---------------------------------------------------------------------------
//
// A kRewrite proposal climbs three verification tiers before it may be
// --apply'd:
//   Tier 1 (parse):    every rewritten statement re-lexes and re-parses to a
//                      recognized statement kind.
//   Tier 2 (analysis): re-analysis with the originating rule no longer
//                      reports the anti-pattern.
//   Tier 3 (exec):     differential execution — original and rewrite run on
//                      an ephemeral seeded database and their results must
//                      be equivalent under the fixer's declared contract.
// The tier a fix *reached* is recorded on the fix (Fix::verify_tier) and
// surfaced through the JSON/SARIF emitters, so a consumer can distinguish
// "re-parses and kills the pattern" from "provably computes the same result".

/// \brief Highest verification tier a fix passed. Order is meaningful:
/// each tier implies every tier below it.
enum class VerifyTier {
  kNone = 0,      ///< Not verified (textual fixes, or a failed proposal).
  kParse = 1,     ///< Re-parses cleanly (rule unavailable for re-analysis).
  kAnalysis = 2,  ///< Re-parses and re-analysis is clean.
  kExec = 3,      ///< Differentially executed to equivalent results.
};

inline const char* VerifyTierName(VerifyTier tier) {
  switch (tier) {
    case VerifyTier::kNone: return "none";
    case VerifyTier::kParse: return "parse";
    case VerifyTier::kAnalysis: return "analysis";
    case VerifyTier::kExec: return "exec";
  }
  return "none";
}

/// \brief How Tier 3 judges a fixer's rewrites. Declared per fixer
/// (Fixer::equivalence()) because the mechanical rewrites are *not* all
/// meant to be result-identical: the ORDER BY RAND() probe and the COALESCE
/// wrap intentionally change results, and demoting them for diverging would
/// be a false demotion.
enum class EquivalenceContract {
  /// Result sets must match row-for-row in order (SELECT), or the database
  /// states after execution must match exactly (DML on identically-seeded
  /// databases).
  kExactOrdered,
  /// Result rows must match as a multiset — same rows, any order.
  kMultiset,
  /// Results intentionally differ (documented in the fixer's contract);
  /// Tier 3 only requires that the rewrite *executes* successfully on
  /// populated tables.
  kDocumentedDivergence,
  /// Tier 3 does not apply (additive DDL, textual guidance); the fix stops
  /// at Tier 2.
  kNotApplicable,
};

inline const char* EquivalenceContractName(EquivalenceContract contract) {
  switch (contract) {
    case EquivalenceContract::kExactOrdered: return "exact-ordered";
    case EquivalenceContract::kMultiset: return "multiset";
    case EquivalenceContract::kDocumentedDivergence: return "documented-divergence";
    case EquivalenceContract::kNotApplicable: return "not-applicable";
  }
  return "not-applicable";
}

/// \brief Tier-3 policy knob (CLI --verify-exec).
enum class ExecVerifyMode {
  kOff,       ///< Tier 3 never runs; fixes stop at Tier 2 (the PR-5 behavior).
  kOn,        ///< Tier 3 runs; infeasible executions (engine limits) keep Tier 2.
  kRequired,  ///< Tier 3 must pass; infeasible executions demote the fix.
};

/// \brief Tier-3 configuration carried by SqlCheckOptions. Everything here is
/// deterministic: the same options over the same workload produce the same
/// verdicts, bit for bit.
struct ExecVerifyOptions {
  ExecVerifyMode mode = ExecVerifyMode::kOff;
  /// Seed for generated table rows (and the executors' RAND()). Changing it
  /// re-verifies against a different deterministic dataset.
  uint64_t seed = 42;
  /// Rows generated per populated table.
  size_t rows_per_table = 24;
};

/// \brief Verdict of the full tiered pipeline for one proposal, memoizable
/// across snapshots (AnalysisSession keys it by type + original + rewritten
/// statements; the exec options are session-constant).
struct VerifyVerdict {
  bool ok = false;
  VerifyTier tier = VerifyTier::kNone;  ///< Highest tier reached when ok.
  std::string note;  ///< Why the fix was demoted ("" when ok and unremarkable).
};

/// Verification verdict per unique (type, original, rewritten statements)
/// proposal. Owned by the AnalysisSession so verdicts persist across
/// Check()/Snapshot() calls — Tier 3 is the expensive tier, and workloads
/// repeat the same offending shapes constantly.
using VerifyMemo = std::unordered_map<std::string, VerifyVerdict>;

/// \brief Pipeline telemetry (CLI stderr summary, server `stats` op).
/// Tier buckets count suggested kRewrite fixes by the tier they reached;
/// `demoted` counts proposals the pipeline pushed back to textual guidance.
struct VerifyStats {
  size_t tier_parse = 0;
  size_t tier_analysis = 0;
  size_t tier_exec = 0;
  size_t demoted = 0;
  size_t exec_runs = 0;        ///< Fresh differential executions performed.
  size_t exec_infeasible = 0;  ///< Executions the engine could not complete.
  size_t memo_hits = 0;
  size_t memo_misses = 0;
};

}  // namespace sqlcheck
