#pragma once

#include <vector>

#include "analysis/context.h"
#include "fix/fix.h"
#include "rules/rule.h"

namespace sqlcheck {

/// \brief ap-fix (Algorithm 4): suggests alternate designs and queries for
/// detected APs. Rules are (detection, action) pairs — the detection half
/// lives in rules/, the action half here. When a non-ambiguous parse-tree
/// transformation exists the engine rewrites SQL mechanically; otherwise it
/// emits a textual fix tailored to the application context (§6.1).
class RepairEngine {
 public:
  /// Suggests a fix for one detection.
  Fix SuggestFix(const Detection& detection, const Context& context) const;

  /// Suggests fixes for a ranked batch, in order.
  std::vector<Fix> SuggestFixes(const std::vector<Detection>& detections,
                                const Context& context) const;
};

}  // namespace sqlcheck
