#pragma once

#include <string>

#include "analysis/context.h"
#include "fix/fix.h"
#include "rules/rule.h"
#include "sql/ast.h"

namespace sqlcheck {

// ---------------------------------------------------------------------------
// AST-level mechanical rewrites (ap-fix, §6.1)
// ---------------------------------------------------------------------------
//
// Each function clones the offending statement onto the heap tier, applies
// the transformation to the parse tree, and hands the result back for
// printing through sql::PrintStatement — no string concatenation, so the
// rewrite inherits the printer's round-trip guarantees. A null return means
// the transformation is ambiguous for this statement (missing catalog entry,
// subquery source, pattern that cannot be mechanically reversed, ...) and
// the caller should fall back to a textual fix.

/// Expands `SELECT *` / `SELECT t.*` into the concrete column list from the
/// catalog. Columns are qualified with the source's effective name (alias if
/// set) when the statement reads more than one source; a qualified star
/// expands only its own table. Null when any source is a subquery or any
/// referenced table is missing from the catalog.
sql::StatementPtr ExpandWildcard(const sql::SelectStatement& select,
                                 const Context& context);

/// Names the target columns of an implicit-column INSERT from the catalog.
/// Null when the table is unknown or the VALUES arity does not match the
/// schema (the statement is already broken; guessing would mask it).
sql::StatementPtr ExpandInsertColumns(const sql::InsertStatement& insert,
                                      const Context& context);

/// Replaces `ORDER BY RAND() ... LIMIT n` with a random primary-key range
/// probe: `WHERE pk >= (SELECT FLOOR(RAND() * MAX(pk)) FROM t) ORDER BY pk
/// LIMIT n` — the paper's "pick a random key" fix as a tree transformation.
/// Null unless the statement reads exactly one cataloged table with a
/// single-column primary key, orders by RAND()/RANDOM() alone, and carries a
/// LIMIT (without one the shuffle semantics cannot be preserved).
sql::StatementPtr ReplaceOrderByRand(const sql::SelectStatement& select,
                                     const Context& context);

/// Rewrites index-hostile leading-wildcard LIKE predicates `col LIKE '%tail'`
/// as `REVERSE(col) LIKE 'liat%'`, which a functional index on REVERSE(col)
/// can serve. Only literal ASCII patterns with a single leading `%` and no
/// other wildcards are reversed; null when no predicate qualifies.
sql::StatementPtr RewriteLeadingWildcards(const sql::SelectStatement& select);

/// Wraps nullable column refs appearing under `||` / CONCAT in the select
/// list and WHERE clause in COALESCE(col, '') so one NULL field no longer
/// voids the concatenation. Nullability comes from the catalog (unknown
/// tables count as nullable). Null when no operand was wrapped (the concat
/// lives in a clause this transformation does not reach, or every operand
/// is NOT NULL).
sql::StatementPtr WrapConcatNulls(const sql::SelectStatement& select,
                                  const Context& context);

// ---------------------------------------------------------------------------
// Rewrite verification
// ---------------------------------------------------------------------------

struct RewriteCheck {
  bool ok = false;
  std::string reason;  ///< Why verification failed ("" when ok).
};

/// The self-verification loop every kRewrite proposal must pass (SQLRepair's
/// lesson: an unvalidated repair is a liability): each rewritten statement
/// must re-lex/re-parse to a recognized statement kind, and — when the
/// originating rule is available — re-analysis of the statement against the
/// current context must no longer report `fix.type`. The FixEngine demotes
/// proposals that fail to kTextual, carrying `reason` in Fix::verify_note.
RewriteCheck VerifyRewrite(const Fix& fix, const Rule* rule, const Context& context,
                           const DetectorConfig& config);

}  // namespace sqlcheck
