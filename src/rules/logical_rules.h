#pragma once

#include <memory>
#include <vector>

#include "rules/rule.h"

namespace sqlcheck {

/// \brief The seven logical-design rules of Table 1: Multi-Valued Attribute,
/// No Primary Key, No Foreign Key, Generic Primary Key, Data in Metadata,
/// Adjacency List, and God Table.
std::vector<std::unique_ptr<Rule>> MakeLogicalDesignRules();

}  // namespace sqlcheck
