#pragma once

#include <string>
#include <vector>

#include "analysis/context.h"
#include "analysis/query_context.h"

namespace sqlcheck {

/// \brief Every anti-pattern sqlcheck detects (Table 1 of the paper, plus
/// Readable Password which appears in the Table 3 distribution).
enum class AntiPattern {
  // Logical design APs.
  kMultiValuedAttribute,
  kNoPrimaryKey,
  kNoForeignKey,
  kGenericPrimaryKey,
  kDataInMetadata,
  kAdjacencyList,
  kGodTable,
  // Physical design APs.
  kRoundingErrors,
  kEnumeratedTypes,
  kExternalDataStorage,
  kIndexOveruse,
  kIndexUnderuse,
  kCloneTable,
  // Query APs.
  kColumnWildcard,
  kConcatenateNulls,
  kOrderingByRand,
  kPatternMatching,
  kImplicitColumns,
  kDistinctAndJoin,
  kTooManyJoins,
  kReadablePassword,
  // Data APs.
  kMissingTimezone,
  kIncorrectDataType,
  kDenormalizedTable,
  kInformationDuplication,
  kRedundantColumn,
  kNoDomainConstraint,
};

/// Number of distinct anti-pattern types.
inline constexpr int kAntiPatternCount = 27;

enum class ApCategory { kLogicalDesign, kPhysicalDesign, kQuery, kData };

/// \brief Static metadata for one AP: display name, category, and the five
/// impact flags of Table 1 (Performance, Maintainability, Data Amplification,
/// Data Integrity, Accuracy).
struct ApInfo {
  AntiPattern type;
  const char* name;
  ApCategory category;
  bool performance;
  bool maintainability;
  bool data_amplification;
  bool data_integrity;
  bool accuracy;
};

const ApInfo& InfoFor(AntiPattern type);
const char* ApName(AntiPattern type);
const char* CategoryName(ApCategory category);

/// Reverse lookup by display name (ApName, ASCII-case-insensitive); nullptr
/// when no anti-pattern carries that name. Used to validate user-supplied
/// rule lists (e.g. SqlCheckOptions::disabled_rules, the CLI's --disable).
const ApInfo* FindApInfoByName(std::string_view name);

/// \brief How a detection was established — used for the intra/inter/data
/// ablation experiments (§8.1).
enum class DetectionSource { kIntraQuery, kInterQuery, kDataAnalysis };

/// \brief One detected anti-pattern instance.
struct Detection {
  AntiPattern type = AntiPattern::kColumnWildcard;
  DetectionSource source = DetectionSource::kIntraQuery;
  std::string table;    ///< Affected table ("" when unknown).
  std::string column;   ///< Affected column ("" when table-level).
  std::string query;    ///< Offending statement text ("" for data detections).
  const sql::Statement* stmt = nullptr;  ///< Parse tree for ap-fix (may be null).
  std::string message;  ///< Human-readable diagnosis.
};

/// \brief Detector configuration: which analyses run and the rule thresholds
/// (all configurable, per §4.2).
struct DetectorConfig {
  bool intra_query = true;
  bool inter_query = true;
  bool data_analysis = true;

  // Thresholds (paper defaults in parentheses where stated).
  int god_table_columns = 10;        ///< Table 1: "cross a threshold (e.g., 10)".
  int too_many_joins = 5;
  int index_overuse_count = 4;       ///< User indexes per table before flagging.
  double enum_distinct_ratio = 0.05; ///< Distinct/rows below this looks enum-ish.
  double delimited_fraction = 0.5;   ///< MVA data rule activation.
  double numeric_string_fraction = 0.9;
  double redundant_fraction = 0.95;  ///< Nulls-or-constant fraction.
  size_t min_rows_for_data_rules = 4;
  double low_cardinality_ratio = 0.01;  ///< Index underuse suppression (Fig 8c).
};

/// \brief What CheckQuery reads — the contract the incremental engine
/// (AnalysisSession) relies on to decide what it may cache.
enum class QueryRuleScope {
  /// Detections derive from (facts, config) alone; the context argument is
  /// never read. Safe to evaluate once per unique statement and replay
  /// verbatim no matter how the workload grows afterwards.
  kStatementLocal,
  /// Detections read the evolving workload context (catalog, other queries,
  /// workload aggregates, data profiles); must be re-evaluated whenever the
  /// context may have changed.
  kWorkload,
};

/// \brief A detection rule: a named check over queries and/or data. Mirrors
/// the paper's generic rule interface (name, type, detection rule) — ranking
/// metrics and repair rules attach by AntiPattern type in ranking/ and fix/.
class Rule {
 public:
  virtual ~Rule() = default;

  virtual AntiPattern type() const = 0;
  const ApInfo& info() const { return InfoFor(type()); }

  /// Caching contract for CheckQuery (see QueryRuleScope). The conservative
  /// default forces re-evaluation; built-in rules that never touch the
  /// context override to kStatementLocal so the incremental session can
  /// serve them from its per-fingerprint cache.
  virtual QueryRuleScope query_scope() const { return QueryRuleScope::kWorkload; }

  /// Applied to each analyzed query (Algorithm 2). Implementations honour
  /// `config.intra_query` / `config.inter_query` to scope what they use.
  ///
  /// Under query dedup (SqlCheckOptions::dedup_queries, default on) this may
  /// run once per fingerprint group and have its detections replayed for
  /// every duplicate occurrence, with `query`/`stmt` fields rebased per
  /// occurrence. Derive detections from `facts` and `context` only; a rule
  /// that embeds `facts.raw_sql` anywhere other than Detection::query must
  /// be run with dedup disabled.
  virtual void CheckQuery(const QueryFacts& facts, const Context& context,
                          const DetectorConfig& config,
                          std::vector<Detection>* out) const {
    (void)facts;
    (void)context;
    (void)config;
    (void)out;
  }

  /// Applied to each profiled table (Algorithm 3).
  virtual void CheckData(const TableProfile& profile, const Context& context,
                         const DetectorConfig& config,
                         std::vector<Detection>* out) const {
    (void)profile;
    (void)context;
    (void)config;
    (void)out;
  }
};

}  // namespace sqlcheck
