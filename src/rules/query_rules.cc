#include "rules/query_rules.h"

#include "common/strings.h"

namespace sqlcheck {

namespace {

Detection MakeDetection(AntiPattern type, DetectionSource source, const QueryFacts& facts,
                        std::string_view table, std::string_view column, std::string message) {
  Detection d;
  d.type = type;
  d.source = source;
  d.table = table;
  d.column = column;
  d.query = facts.raw_sql;
  d.stmt = facts.stmt;
  d.message = std::move(message);
  return d;
}

// ---------------------------------------------------------------------------
// Column Wildcard Usage
// ---------------------------------------------------------------------------
class ColumnWildcardRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kColumnWildcard; }
  QueryRuleScope query_scope() const override {
    return QueryRuleScope::kStatementLocal;
  }

  void CheckQuery(const QueryFacts& facts, const Context& context,
                  const DetectorConfig& config, std::vector<Detection>* out) const override {
    (void)context;
    if (!config.intra_query) return;
    if (facts.kind != sql::StatementKind::kSelect || !facts.selects_wildcard) return;
    out->push_back(MakeDetection(
        type(), DetectionSource::kIntraQuery, facts,
        facts.tables.empty() ? "" : facts.tables[0], "",
        "SELECT * couples the application to the table layout; it breaks on "
        "refactoring and fetches columns the caller never reads"));
  }
};

// ---------------------------------------------------------------------------
// Concatenate Nulls
// ---------------------------------------------------------------------------
class ConcatenateNullsRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kConcatenateNulls; }

  void CheckQuery(const QueryFacts& facts, const Context& context,
                  const DetectorConfig& config, std::vector<Detection>* out) const override {
    if (!config.intra_query) return;
    for (const auto& qualified : facts.concat_columns) {
      size_t dot = qualified.find('.');
      std::string table = dot == std::string::npos ? "" : qualified.substr(0, dot);
      std::string column = dot == std::string::npos ? qualified : qualified.substr(dot + 1);
      // Inter-query refinement: NOT NULL columns cannot poison the concat.
      if (config.inter_query && !table.empty() &&
          !context.ColumnNullable(table, column)) {
        continue;
      }
      out->push_back(MakeDetection(
          type(),
          config.inter_query ? DetectionSource::kInterQuery : DetectionSource::kIntraQuery,
          facts, table, column,
          "'" + column + "' is concatenated with ||; one NULL nulls the whole result — "
          "wrap it in COALESCE(...)"));
      return;  // one per query
    }
  }
};

// ---------------------------------------------------------------------------
// Ordering by RAND
// ---------------------------------------------------------------------------
class OrderingByRandRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kOrderingByRand; }
  QueryRuleScope query_scope() const override {
    return QueryRuleScope::kStatementLocal;
  }

  void CheckQuery(const QueryFacts& facts, const Context& context,
                  const DetectorConfig& config, std::vector<Detection>* out) const override {
    (void)context;
    if (!config.intra_query || !facts.order_by_rand) return;
    out->push_back(MakeDetection(
        type(), DetectionSource::kIntraQuery, facts,
        facts.tables.empty() ? "" : facts.tables[0], "",
        "ORDER BY RAND() materializes and sorts the entire result to pick random "
        "rows; sample by random key lookup instead"));
  }
};

// ---------------------------------------------------------------------------
// Pattern Matching
// ---------------------------------------------------------------------------
class PatternMatchingRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kPatternMatching; }
  QueryRuleScope query_scope() const override {
    return QueryRuleScope::kStatementLocal;
  }

  void CheckQuery(const QueryFacts& facts, const Context& context,
                  const DetectorConfig& config, std::vector<Detection>* out) const override {
    (void)context;
    if (!config.intra_query) return;
    for (const auto& p : facts.patterns) {
      bool regex = p.op == "REGEXP" || p.op == "RLIKE" || p.op == "SIMILAR TO";
      bool hostile_like = (p.op == "LIKE" || p.op == "ILIKE") &&
                          (p.leading_wildcard || p.word_boundary || p.computed_pattern);
      if (!regex && !hostile_like) continue;
      out->push_back(MakeDetection(
          type(), DetectionSource::kIntraQuery, facts, p.table, p.column,
          "predicate on '" + std::string(p.column) + "' uses " + std::string(p.op) +
              (p.leading_wildcard ? " with a leading wildcard" : "") +
              "; it defeats indexes and scans every row — consider full-text search"));
      return;
    }
  }
};

// ---------------------------------------------------------------------------
// Implicit Columns
// ---------------------------------------------------------------------------
class ImplicitColumnsRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kImplicitColumns; }
  QueryRuleScope query_scope() const override {
    return QueryRuleScope::kStatementLocal;
  }

  void CheckQuery(const QueryFacts& facts, const Context& context,
                  const DetectorConfig& config, std::vector<Detection>* out) const override {
    (void)context;
    if (!config.intra_query) return;
    if (facts.kind != sql::StatementKind::kInsert || !facts.insert_without_columns) return;
    out->push_back(MakeDetection(
        type(), DetectionSource::kIntraQuery, facts,
        facts.tables.empty() ? "" : facts.tables[0], "",
        "INSERT without a column list breaks silently when the schema evolves "
        "(Example 2 of the paper); name the target columns explicitly"));
  }
};

// ---------------------------------------------------------------------------
// DISTINCT and JOIN
// ---------------------------------------------------------------------------
class DistinctAndJoinRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kDistinctAndJoin; }
  QueryRuleScope query_scope() const override {
    return QueryRuleScope::kStatementLocal;
  }

  void CheckQuery(const QueryFacts& facts, const Context& context,
                  const DetectorConfig& config, std::vector<Detection>* out) const override {
    (void)context;
    if (!config.intra_query) return;
    if (facts.kind != sql::StatementKind::kSelect || !facts.distinct ||
        facts.join_count < 1) {
      return;
    }
    out->push_back(MakeDetection(
        type(), DetectionSource::kIntraQuery, facts,
        facts.tables.empty() ? "" : facts.tables[0], "",
        "DISTINCT papering over JOIN fan-out sorts/hashes the whole result; fix the "
        "join cardinality (semi-join/EXISTS) instead"));
  }
};

// ---------------------------------------------------------------------------
// Too Many Joins
// ---------------------------------------------------------------------------
class TooManyJoinsRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kTooManyJoins; }
  QueryRuleScope query_scope() const override {
    return QueryRuleScope::kStatementLocal;
  }

  void CheckQuery(const QueryFacts& facts, const Context& context,
                  const DetectorConfig& config, std::vector<Detection>* out) const override {
    (void)context;
    if (!config.intra_query) return;
    if (facts.kind != sql::StatementKind::kSelect ||
        facts.join_count < config.too_many_joins) {
      return;
    }
    out->push_back(MakeDetection(
        type(), DetectionSource::kIntraQuery, facts,
        facts.tables.empty() ? "" : facts.tables[0], "",
        "query joins " + std::to_string(facts.join_count + 1) + " tables (threshold " +
            std::to_string(config.too_many_joins) +
            "); the optimizer's search space explodes and plans degrade"));
  }
};

// ---------------------------------------------------------------------------
// Readable Password
// ---------------------------------------------------------------------------
class ReadablePasswordRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kReadablePassword; }
  QueryRuleScope query_scope() const override {
    return QueryRuleScope::kStatementLocal;
  }

  void CheckQuery(const QueryFacts& facts, const Context& context,
                  const DetectorConfig& config, std::vector<Detection>* out) const override {
    (void)context;
    if (!config.intra_query || facts.stmt == nullptr) return;
    if (const auto* create = facts.stmt->As<sql::CreateTableStatement>()) {
      for (const auto& col : create->columns) {
        if (!IsPasswordName(col.name)) continue;
        out->push_back(MakeDetection(
            type(), DetectionSource::kIntraQuery, facts, create->table, col.name,
            "column '" + std::string(col.name) +
                "' appears to store passwords; store salted hashes, never plaintext"));
        return;
      }
    }
    // Predicates comparing a password column against a string literal imply
    // plaintext comparison.
    for (const auto& p : facts.predicates) {
      if ((p.op == "=" || p.op == "==") && IsPasswordName(p.column) && !p.literal.empty()) {
        out->push_back(MakeDetection(
            type(), DetectionSource::kIntraQuery, facts, p.table, p.column,
            "query compares '" + std::string(p.column) +
                "' to a plaintext literal; authenticate against a salted hash"));
        return;
      }
    }
  }

 private:
  static bool IsPasswordName(std::string_view name) {
    return EqualsIgnoreCase(name, "password") || EqualsIgnoreCase(name, "passwd") ||
           EqualsIgnoreCase(name, "pwd") || EndsWithIgnoreCase(name, "_password");
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> MakeQueryRules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<ColumnWildcardRule>());
  rules.push_back(std::make_unique<ConcatenateNullsRule>());
  rules.push_back(std::make_unique<OrderingByRandRule>());
  rules.push_back(std::make_unique<PatternMatchingRule>());
  rules.push_back(std::make_unique<ImplicitColumnsRule>());
  rules.push_back(std::make_unique<DistinctAndJoinRule>());
  rules.push_back(std::make_unique<TooManyJoinsRule>());
  rules.push_back(std::make_unique<ReadablePasswordRule>());
  return rules;
}

}  // namespace sqlcheck
