#include "rules/physical_rules.h"

#include <cctype>
#include <map>
#include <set>

#include "common/strings.h"

namespace sqlcheck {

namespace {

const sql::CreateTableStatement* AsCreateTable(const QueryFacts& facts) {
  if (facts.stmt == nullptr) return nullptr;
  return facts.stmt->As<sql::CreateTableStatement>();
}

// ---------------------------------------------------------------------------
// Rounding Errors
// ---------------------------------------------------------------------------
class RoundingErrorsRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kRoundingErrors; }
  QueryRuleScope query_scope() const override {
    return QueryRuleScope::kStatementLocal;
  }

  void CheckQuery(const QueryFacts& facts, const Context& context,
                  const DetectorConfig& config, std::vector<Detection>* out) const override {
    (void)context;
    if (!config.intra_query) return;
    const auto* create = AsCreateTable(facts);
    if (create == nullptr) return;
    for (const auto& col : create->columns) {
      DataType t = DataType::FromTypeName(col.type);
      if (!t.IsFiniteBinaryFloat()) continue;
      Detection d;
      d.type = type();
      d.source = DetectionSource::kIntraQuery;
      d.table = create->table;
      d.column = col.name;
      d.query = facts.raw_sql;
      d.stmt = facts.stmt;
      d.message = "column '" + std::string(col.name) + "' stores fractional data as " + t.ToSql() +
                  "; binary floating point drifts under aggregation — use NUMERIC/DECIMAL";
      out->push_back(std::move(d));
    }
  }

  void CheckData(const TableProfile& profile, const Context& context,
                 const DetectorConfig& config, std::vector<Detection>* out) const override {
    if (!config.data_analysis) return;
    const TableSchema* schema = context.catalog().FindTable(profile.table);
    if (schema == nullptr) return;
    for (const auto& col : schema->columns) {
      if (!col.type.IsFiniteBinaryFloat()) continue;
      const ColumnStats* stats = profile.stats.FindColumn(col.name);
      if (stats == nullptr || stats->row_count < config.min_rows_for_data_rules) continue;
      Detection d;
      d.type = type();
      d.source = DetectionSource::kDataAnalysis;
      d.table = profile.table;
      d.column = col.name;
      d.message = "column '" + col.name + "' holds fractional values in a " +
                  col.type.ToSql() + " column; sums/equality comparisons will drift";
      out->push_back(std::move(d));
    }
  }
};

// ---------------------------------------------------------------------------
// Enumerated Types
// ---------------------------------------------------------------------------
class EnumeratedTypesRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kEnumeratedTypes; }
  QueryRuleScope query_scope() const override {
    return QueryRuleScope::kStatementLocal;
  }

  void CheckQuery(const QueryFacts& facts, const Context& context,
                  const DetectorConfig& config, std::vector<Detection>* out) const override {
    (void)context;
    if (!config.intra_query) return;
    if (facts.stmt == nullptr) return;

    if (const auto* create = facts.stmt->As<sql::CreateTableStatement>()) {
      for (const auto& col : create->columns) {
        DataType t = DataType::FromTypeName(col.type);
        if (t.id == TypeId::kEnum) {
          Emit(create->table, col.name, facts, "ENUM type", out);
        } else if (col.check && IsInListCheck(*col.check)) {
          Emit(create->table, col.name, facts, "CHECK (col IN (...)) constraint", out);
        }
      }
      for (const auto& con : create->constraints) {
        if (con.kind == sql::TableConstraintKind::kCheck && con.check != nullptr &&
            IsInListCheck(*con.check)) {
          Emit(create->table, CheckedColumn(*con.check), facts, "CHECK constraint", out);
        }
      }
      return;
    }
    if (const auto* alter = facts.stmt->As<sql::AlterTableStatement>()) {
      if (alter->action == sql::AlterAction::kAddConstraint &&
          alter->constraint.kind == sql::TableConstraintKind::kCheck &&
          alter->constraint.check != nullptr && IsInListCheck(*alter->constraint.check)) {
        Emit(alter->table, CheckedColumn(*alter->constraint.check), facts,
             "CHECK constraint (Example 4 of the paper)", out);
      }
    }
  }

  void CheckData(const TableProfile& profile, const Context& context,
                 const DetectorConfig& config, std::vector<Detection>* out) const override {
    if (!config.data_analysis) return;
    const TableSchema* schema = context.catalog().FindTable(profile.table);
    if (schema == nullptr) return;
    for (const auto& col : schema->columns) {
      bool declared_enum = col.type.id == TypeId::kEnum;
      bool has_check = false;
      for (const auto& check : schema->checks) {
        if (ContainsIgnoreCase(check.expression_sql, col.name) &&
            ContainsIgnoreCase(check.expression_sql, " IN ")) {
          has_check = true;
        }
      }
      if (!declared_enum && !has_check) continue;
      const ColumnStats* stats = profile.stats.FindColumn(col.name);
      if (stats == nullptr || stats->row_count < config.min_rows_for_data_rules) continue;
      // §4.2 Example 4: ratio of distinct values to tuples below threshold.
      if (stats->DistinctRatio() > config.enum_distinct_ratio) continue;
      Detection d;
      d.type = type();
      d.source = DetectionSource::kDataAnalysis;
      d.table = profile.table;
      d.column = col.name;
      d.message = "column '" + col.name + "' takes only " +
                  std::to_string(stats->distinct_count) + " distinct values over " +
                  std::to_string(stats->row_count - stats->null_count) +
                  " rows and is domain-constrained; use a lookup table instead";
      out->push_back(std::move(d));
    }
  }

 private:
  static bool IsInListCheck(const sql::Expr& check) {
    bool found = false;
    sql::VisitExpr(check, false, [&](const sql::Expr& e) {
      if (e.kind == sql::ExprKind::kIn && !e.children.empty() &&
          e.children[0]->kind == sql::ExprKind::kColumnRef) {
        // All list members must be literals for this to be a domain restriction.
        bool all_literals = e.children.size() > 1;
        for (size_t i = 1; i < e.children.size(); ++i) {
          if (e.children[i]->kind != sql::ExprKind::kStringLiteral &&
              e.children[i]->kind != sql::ExprKind::kNumberLiteral) {
            all_literals = false;
          }
        }
        if (all_literals) found = true;
      }
    });
    return found;
  }

  static std::string CheckedColumn(const sql::Expr& check) {
    std::string column;
    sql::VisitExpr(check, false, [&](const sql::Expr& e) {
      if (column.empty() && e.kind == sql::ExprKind::kIn && !e.children.empty() &&
          e.children[0]->kind == sql::ExprKind::kColumnRef) {
        column = e.children[0]->ColumnName();
      }
    });
    return column;
  }

  void Emit(std::string_view table, std::string_view column, const QueryFacts& facts,
            std::string_view how, std::vector<Detection>* out) const {
    Detection d;
    d.type = type();
    d.source = DetectionSource::kIntraQuery;
    d.table = table;
    d.column = column;
    d.query = facts.raw_sql;
    d.stmt = facts.stmt;
    d.message = "column '" + std::string(column) + "' restricts its domain via " +
                std::string(how) +
                "; renaming or extending values requires DDL — use a lookup table";
    out->push_back(std::move(d));
  }
};

// ---------------------------------------------------------------------------
// External Data Storage
// ---------------------------------------------------------------------------
class ExternalDataStorageRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kExternalDataStorage; }
  QueryRuleScope query_scope() const override {
    return QueryRuleScope::kStatementLocal;
  }

  void CheckQuery(const QueryFacts& facts, const Context& context,
                  const DetectorConfig& config, std::vector<Detection>* out) const override {
    (void)context;
    if (!config.intra_query) return;
    const auto* create = AsCreateTable(facts);
    if (create == nullptr) return;
    for (const auto& col : create->columns) {
      DataType t = DataType::FromTypeName(col.type);
      if (!t.IsTextual()) continue;
      if (!SoundsLikePath(col.name)) continue;
      Detection d;
      d.type = type();
      d.source = DetectionSource::kIntraQuery;
      d.table = create->table;
      d.column = col.name;
      d.query = facts.raw_sql;
      d.stmt = facts.stmt;
      d.message = "column '" + col.name +
                  "' stores file paths instead of content; files escape transactions, "
                  "backups, and access control";
      out->push_back(std::move(d));
    }
  }

  void CheckData(const TableProfile& profile, const Context& context,
                 const DetectorConfig& config, std::vector<Detection>* out) const override {
    (void)context;
    if (!config.data_analysis) return;
    if (profile.sample.size() < config.min_rows_for_data_rules) return;
    const TableSchema* schema = context.catalog().FindTable(profile.table);
    if (schema == nullptr) return;
    for (size_t c = 0; c < schema->columns.size(); ++c) {
      if (!schema->columns[c].type.IsTextual()) continue;
      size_t pathlike = 0;
      size_t non_null = 0;
      for (const Row& row : profile.sample) {
        if (c >= row.size() || !row[c].is_string()) continue;
        ++non_null;
        const std::string& s = row[c].AsString();
        if (LooksLikeFilePath(s)) ++pathlike;
      }
      if (non_null >= config.min_rows_for_data_rules &&
          pathlike * 10 >= non_null * 9) {  // >= 90% path-like
        Detection d;
        d.type = type();
        d.source = DetectionSource::kDataAnalysis;
        d.table = profile.table;
        d.column = schema->columns[c].name;
        d.message = "values of '" + schema->columns[c].name +
                    "' are file-system paths; store the content (or use BLOBs) so the "
                    "DBMS manages it";
        out->push_back(std::move(d));
      }
    }
  }

 private:
  static bool SoundsLikePath(std::string_view name) {
    return ContainsIgnoreCase(name, "path") || ContainsIgnoreCase(name, "filename") ||
           EqualsIgnoreCase(name, "file") || EndsWithIgnoreCase(name, "_file") ||
           EndsWithIgnoreCase(name, "_url") || EqualsIgnoreCase(name, "url");
  }
  static bool LooksLikeFilePath(const std::string& s) {
    if (s.size() < 3) return false;
    bool slashy = s.find('/') != std::string::npos || s.find('\\') != std::string::npos;
    bool exty = false;
    size_t dot = s.find_last_of('.');
    if (dot != std::string::npos && s.size() - dot <= 5 && dot > 0) exty = true;
    return (slashy && exty) || s.rfind("/", 0) == 0 || s.rfind("C:\\", 0) == 0;
  }
};

// ---------------------------------------------------------------------------
// Index Overuse
// ---------------------------------------------------------------------------
class IndexOveruseRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kIndexOveruse; }

  void CheckQuery(const QueryFacts& facts, const Context& context,
                  const DetectorConfig& config, std::vector<Detection>* out) const override {
    // Inter-query by nature (Example 5): whether an index is redundant
    // depends on the other indexes and the whole workload.
    if (!config.inter_query) return;
    if (facts.stmt == nullptr) return;
    const auto* create = facts.stmt->As<sql::CreateIndexStatement>();
    if (create == nullptr) return;

    auto indexes = context.catalog().IndexesOnTable(create->table);
    std::vector<const IndexSchema*> user_indexes;
    for (const auto* index : indexes) {
      if (!index->system) user_indexes.push_back(index);
    }
    if (static_cast<int>(user_indexes.size()) >= config.index_overuse_count) {
      Detection d;
      d.type = type();
      d.source = DetectionSource::kInterQuery;
      d.table = create->table;
      d.query = facts.raw_sql;
      d.stmt = facts.stmt;
      d.message = "table '" + std::string(create->table) + "' carries " +
                  std::to_string(user_indexes.size()) +
                  " user indexes; every write must maintain all of them";
      out->push_back(std::move(d));
      return;
    }

    // Redundancy: this index's columns are a prefix of another index.
    for (const auto* other : user_indexes) {
      if (EqualsIgnoreCase(other->name, create->index)) continue;
      if (other->columns.size() <= create->columns.size()) continue;
      bool prefix = true;
      for (size_t i = 0; i < create->columns.size(); ++i) {
        if (!EqualsIgnoreCase(other->columns[i], create->columns[i])) prefix = false;
      }
      if (!prefix) continue;
      // Workload check (Example 5): if some query filters the leading column
      // WITHOUT the composite's remaining columns, the narrow index earns its
      // keep and is not redundant (workload 2's shape).
      if (AnyQueryUsesLeadingAlone(context, create->table, create->columns[0],
                                   other->columns)) {
        continue;
      }
      Detection d;
      d.type = type();
      d.source = DetectionSource::kInterQuery;
      d.table = create->table;
      d.column = create->columns.empty() ? "" : create->columns[0];
      d.query = facts.raw_sql;
      d.stmt = facts.stmt;
      d.message = "index '" + std::string(create->index) + "' is a prefix of '" + other->name +
                  "' and the workload never needs it separately";
      out->push_back(std::move(d));
      return;
    }
  }

 private:
  static bool AnyQueryUsesLeadingAlone(const Context& context, std::string_view table,
                                       std::string_view leading,
                                       const std::vector<std::string>& composite) {
    for (const QueryFacts* facts : context.QueriesReferencing(table)) {
      bool has_leading = false;
      size_t covered = 0;
      for (const auto& col : composite) {
        for (const auto& p : facts->predicates) {
          if (EqualsIgnoreCase(p.column, col)) {
            if (EqualsIgnoreCase(col, leading)) has_leading = true;
            ++covered;
            break;
          }
        }
      }
      if (has_leading && covered < composite.size()) return true;
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// Index Underuse
// ---------------------------------------------------------------------------
class IndexUnderuseRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kIndexUnderuse; }

  void CheckQuery(const QueryFacts& facts, const Context& context,
                  const DetectorConfig& config, std::vector<Detection>* out) const override {
    if (!config.inter_query) return;
    // Performance-critical access paths: equality predicates, join keys, and
    // GROUP BY columns without a supporting index.
    auto consider = [&](std::string_view table, std::string_view column,
                        const char* role) {
      if (table.empty() || column.empty()) return;
      const TableSchema* schema = context.catalog().FindTable(table);
      if (schema == nullptr || schema->FindColumn(column) == nullptr) return;
      if (context.catalog().HasIndexOnColumn(table, column)) return;
      // A composite index containing the column can still serve conjunctive
      // predicates (its leading columns are filtered alongside) — treat the
      // column as covered rather than flag a false positive.
      for (const auto* index : context.catalog().IndexesOnTable(table)) {
        for (const auto& indexed_col : index->columns) {
          if (EqualsIgnoreCase(indexed_col, column)) return;
        }
      }
      // PK columns get an implicit index.
      for (const auto& pk : schema->primary_key) {
        if (EqualsIgnoreCase(pk, column)) return;
      }
      // Data refinement (Fig. 8c): indexing a low-cardinality column can
      // *hurt*; suppress the detection when the data says so.
      if (config.data_analysis && context.has_data()) {
        const TableProfile* profile = context.ProfileFor(table);
        if (profile != nullptr) {
          const ColumnStats* stats = profile->stats.FindColumn(column);
          if (stats != nullptr && stats->row_count >= config.min_rows_for_data_rules &&
              stats->DistinctRatio() <= config.low_cardinality_ratio) {
            return;
          }
        }
      }
      Detection d;
      d.type = type();
      d.source = DetectionSource::kInterQuery;
      d.table = table;
      d.column = column;
      d.query = facts.raw_sql;
      d.stmt = facts.stmt;
      d.message = "column '" + std::string(table) + "." + std::string(column) +
                  "' is used as a " + role + " but has no index";
      out->push_back(std::move(d));
    };

    // Early-exit once a filter or left-join-key detection is emitted;
    // right-join keys and grouping keys may still add one each (they surface
    // distinct index candidates).
    const size_t baseline = out->size();
    for (const auto& p : facts.predicates) {
      if (p.op == "=" || p.op == "==" || p.op == "IN") {
        consider(p.table, p.column, "filter");
        if (out->size() > baseline) return;
      }
    }
    for (const auto& j : facts.joins) {
      if (j.expression_join) continue;
      consider(j.left_table, j.left_column, "join key");
      if (out->size() > baseline) return;
      consider(j.right_table, j.right_column, "join key");
    }
    for (const auto& g : facts.group_by_columns) {
      size_t dot = g.find('.');
      if (dot == std::string::npos) continue;
      consider(g.substr(0, dot), g.substr(dot + 1), "grouping key");
    }
  }
};

// ---------------------------------------------------------------------------
// Clone Table
// ---------------------------------------------------------------------------
class CloneTableRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kCloneTable; }

  void CheckQuery(const QueryFacts& facts, const Context& context,
                  const DetectorConfig& config, std::vector<Detection>* out) const override {
    if (!config.inter_query) return;  // needs the full catalog
    const auto* create = AsCreateTable(facts);
    if (create == nullptr) return;
    std::string base = StripNumericSuffix(create->table);
    if (base.empty() || EqualsIgnoreCase(base, create->table)) return;
    // Another table with the same base and a different suffix?
    for (const auto* other : context.catalog().Tables()) {
      if (EqualsIgnoreCase(other->name, create->table)) continue;
      std::string other_base = StripNumericSuffix(other->name);
      if (!other_base.empty() && EqualsIgnoreCase(other_base, base)) {
        Detection d;
        d.type = type();
        d.source = DetectionSource::kInterQuery;
        d.table = create->table;
        d.query = facts.raw_sql;
        d.stmt = facts.stmt;
        d.message = "tables '" + std::string(create->table) + "' and '" + other->name +
                    "' are clones of '" + base +
                    "_N'; the suffix is data — fold it into a column";
        out->push_back(std::move(d));
        return;
      }
    }
  }

  void CheckData(const TableProfile& profile, const Context& context,
                 const DetectorConfig& config, std::vector<Detection>* out) const override {
    if (!config.data_analysis) return;
    std::string base = StripNumericSuffix(profile.table);
    if (base.empty() || EqualsIgnoreCase(base, profile.table)) return;
    for (const auto* other : context.catalog().Tables()) {
      if (EqualsIgnoreCase(other->name, profile.table)) continue;
      std::string other_base = StripNumericSuffix(other->name);
      if (!other_base.empty() && EqualsIgnoreCase(other_base, base)) {
        Detection d;
        d.type = type();
        d.source = DetectionSource::kDataAnalysis;
        d.table = profile.table;
        d.message = "table '" + profile.table + "' matches the clone pattern '" + base +
                    "_N'";
        out->push_back(std::move(d));
        return;
      }
    }
  }

 private:
  static std::string StripNumericSuffix(std::string_view name) {
    size_t end = name.size();
    while (end > 0 && std::isdigit(static_cast<unsigned char>(name[end - 1]))) --end;
    if (end == name.size() || end == 0) return "";
    if (name[end - 1] == '_') --end;
    if (end == 0) return "";
    return std::string(name.substr(0, end));
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> MakePhysicalDesignRules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<RoundingErrorsRule>());
  rules.push_back(std::make_unique<EnumeratedTypesRule>());
  rules.push_back(std::make_unique<ExternalDataStorageRule>());
  rules.push_back(std::make_unique<IndexOveruseRule>());
  rules.push_back(std::make_unique<IndexUnderuseRule>());
  rules.push_back(std::make_unique<CloneTableRule>());
  return rules;
}

}  // namespace sqlcheck
