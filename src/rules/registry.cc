#include "rules/registry.h"

#include <memory>
#include <utility>

#include "common/thread_pool.h"
#include "rules/data_rules.h"
#include "rules/logical_rules.h"
#include "rules/physical_rules.h"
#include "rules/query_rules.h"

namespace sqlcheck {

RuleRegistry RuleRegistry::Default() {
  RuleRegistry registry;
  for (auto& rule : MakeLogicalDesignRules()) registry.Register(std::move(rule));
  for (auto& rule : MakePhysicalDesignRules()) registry.Register(std::move(rule));
  for (auto& rule : MakeQueryRules()) registry.Register(std::move(rule));
  for (auto& rule : MakeDataRules()) registry.Register(std::move(rule));
  return registry;
}

namespace {

/// Applies every rule to the query shard [begin, end), appending to `out` in
/// the same (query-major, rule-minor) order the serial loop uses.
void CheckQueryShard(const Context& context, const RuleRegistry& registry,
                     const DetectorConfig& config, size_t begin, size_t end,
                     std::vector<Detection>* out) {
  const std::vector<QueryFacts>& queries = context.queries();
  for (size_t i = begin; i < end; ++i) {
    for (const auto& rule : registry.rules()) {
      rule->CheckQuery(queries[i], context, config, out);
    }
  }
}

/// Applies every rule to the profile shard [begin, end) of `profiles`.
void CheckDataShard(const Context& context, const RuleRegistry& registry,
                    const DetectorConfig& config,
                    const std::vector<const TableProfile*>& profiles, size_t begin,
                    size_t end, std::vector<Detection>* out) {
  for (size_t i = begin; i < end; ++i) {
    for (const auto& rule : registry.rules()) {
      rule->CheckData(*profiles[i], context, config, out);
    }
  }
}

}  // namespace

std::vector<Detection> DetectAntiPatterns(const Context& context,
                                          const RuleRegistry& registry,
                                          const DetectorConfig& config,
                                          int parallelism, ThreadPool* pool) {
  // Profiles in map-iteration order, so serial and sharded runs agree.
  std::vector<const TableProfile*> profiles;
  if (config.data_analysis) {
    profiles.reserve(context.data().profiles.size());
    for (const auto& [_, profile] : context.data().profiles) profiles.push_back(&profile);
  }

  int threads = ThreadPool::ResolveParallelism(parallelism);
  if (threads <= 1) {
    // Serial reference path (Algorithms 2 and 3).
    std::vector<Detection> detections;
    CheckQueryShard(context, registry, config, 0, context.queries().size(), &detections);
    CheckDataShard(context, registry, config, profiles, 0, profiles.size(), &detections);
    return detections;
  }

  // Parallel path: per-shard buffers, merged in shard order. Queries shard
  // [0..Q) then profiles shard [0..P) reproduces the serial detection order
  // exactly, so N-thread output is byte-identical to the serial path. Both
  // phases run on one pool — the caller's, or a transient one created here.
  std::unique_ptr<ThreadPool> transient;
  if (pool == nullptr) {
    transient = std::make_unique<ThreadPool>(threads);
    pool = transient.get();
  }

  std::vector<std::vector<Detection>> query_buffers(static_cast<size_t>(threads));
  ParallelShards(
      context.queries().size(), threads,
      [&](int shard, size_t begin, size_t end) {
        CheckQueryShard(context, registry, config, begin, end,
                        &query_buffers[static_cast<size_t>(shard)]);
      },
      pool);

  std::vector<std::vector<Detection>> data_buffers(static_cast<size_t>(threads));
  ParallelShards(
      profiles.size(), threads,
      [&](int shard, size_t begin, size_t end) {
        CheckDataShard(context, registry, config, profiles, begin, end,
                       &data_buffers[static_cast<size_t>(shard)]);
      },
      pool);

  size_t total = 0;
  for (const auto& buffer : query_buffers) total += buffer.size();
  for (const auto& buffer : data_buffers) total += buffer.size();

  std::vector<Detection> detections;
  detections.reserve(total);
  for (auto& buffer : query_buffers) {
    for (auto& d : buffer) detections.push_back(std::move(d));
  }
  for (auto& buffer : data_buffers) {
    for (auto& d : buffer) detections.push_back(std::move(d));
  }
  return detections;
}

std::vector<Detection> DetectAntiPatterns(const Context& context,
                                          const DetectorConfig& config,
                                          int parallelism) {
  return DetectAntiPatterns(context, RuleRegistry::Default(), config, parallelism);
}

}  // namespace sqlcheck
