#include "rules/registry.h"

#include "rules/data_rules.h"
#include "rules/logical_rules.h"
#include "rules/physical_rules.h"
#include "rules/query_rules.h"

namespace sqlcheck {

RuleRegistry RuleRegistry::Default() {
  RuleRegistry registry;
  for (auto& rule : MakeLogicalDesignRules()) registry.Register(std::move(rule));
  for (auto& rule : MakePhysicalDesignRules()) registry.Register(std::move(rule));
  for (auto& rule : MakeQueryRules()) registry.Register(std::move(rule));
  for (auto& rule : MakeDataRules()) registry.Register(std::move(rule));
  return registry;
}

std::vector<Detection> DetectAntiPatterns(const Context& context,
                                          const RuleRegistry& registry,
                                          const DetectorConfig& config) {
  std::vector<Detection> detections;
  // Query rules over every analyzed statement (Algorithm 2).
  for (const QueryFacts& facts : context.queries()) {
    for (const auto& rule : registry.rules()) {
      rule->CheckQuery(facts, context, config, &detections);
    }
  }
  // Data rules over every profiled table (Algorithm 3).
  if (config.data_analysis) {
    for (const auto& [_, profile] : context.data().profiles) {
      for (const auto& rule : registry.rules()) {
        rule->CheckData(profile, context, config, &detections);
      }
    }
  }
  return detections;
}

std::vector<Detection> DetectAntiPatterns(const Context& context,
                                          const DetectorConfig& config) {
  return DetectAntiPatterns(context, RuleRegistry::Default(), config);
}

}  // namespace sqlcheck
