#include "rules/registry.h"

#include <memory>
#include <utility>

#include "common/thread_pool.h"
#include "fix/fixers.h"
#include "rules/data_rules.h"
#include "rules/logical_rules.h"
#include "rules/physical_rules.h"
#include "rules/query_rules.h"

namespace sqlcheck {

RuleRegistry RuleRegistry::Default() {
  RuleRegistry registry;
  for (auto& rule : MakeLogicalDesignRules()) registry.Register(std::move(rule));
  for (auto& rule : MakePhysicalDesignRules()) registry.Register(std::move(rule));
  for (auto& rule : MakeQueryRules()) registry.Register(std::move(rule));
  for (auto& rule : MakeDataRules()) registry.Register(std::move(rule));
  for (auto& fixer : MakeBuiltinFixers()) registry.RegisterFixer(std::move(fixer));
  return registry;
}

const Rule* RuleRegistry::FindRule(AntiPattern type) const {
  for (const auto& rule : rules_) {
    if (rule->type() == type) return rule.get();
  }
  return nullptr;
}

const Fixer* RuleRegistry::FindFixer(AntiPattern type) const {
  for (auto it = fixers_.rbegin(); it != fixers_.rend(); ++it) {
    if ((*it)->type() == type) return it->get();
  }
  return nullptr;
}

Status RuleRegistry::Disable(const std::vector<std::string>& names) {
  std::vector<AntiPattern> disabled;
  disabled.reserve(names.size());
  for (const auto& name : names) {
    const ApInfo* info = FindApInfoByName(name);
    if (info == nullptr) {
      return Status::Error("unknown rule name '" + name +
                           "' in disabled_rules (rule names are the anti-pattern "
                           "display names, e.g. 'Column Wildcard Usage')");
    }
    disabled.push_back(info->type);
  }
  std::erase_if(rules_, [&disabled](const std::unique_ptr<Rule>& rule) {
    for (AntiPattern type : disabled) {
      if (rule->type() == type) return true;
    }
    return false;
  });
  return Status::Ok();
}

namespace {

/// Applies every rule to the profile shard [begin, end) of `profiles`.
void CheckDataShard(const Context& context, const RuleRegistry& registry,
                    const DetectorConfig& config,
                    const std::vector<const TableProfile*>& profiles, size_t begin,
                    size_t end, std::vector<Detection>* out) {
  for (size_t i = begin; i < end; ++i) {
    for (const auto& rule : registry.rules()) {
      rule->CheckData(*profiles[i], context, config, out);
    }
  }
}

}  // namespace

std::vector<Detection> DetectAntiPatterns(const Context& context,
                                          const RuleRegistry& registry,
                                          const DetectorConfig& config,
                                          int parallelism, ThreadPool* pool) {
  const std::vector<QueryFacts>& queries = context.queries();
  const size_t n = queries.size();

  // Fingerprint grouping from the context build; fall back to the identity
  // mapping for contexts that carry none (e.g. hand-constructed ones).
  const QueryGroups& groups = context.query_groups();
  QueryGroups identity;
  const QueryGroups* g = &groups;
  if (groups.representative.size() != n) {
    identity.representative.resize(n);
    identity.unique.resize(n);
    for (size_t i = 0; i < n; ++i) identity.representative[i] = identity.unique[i] = i;
    g = &identity;
  }
  const size_t unique_count = g->unique.size();

  // Profiles in map-iteration order, so serial and sharded runs agree.
  std::vector<const TableProfile*> profiles;
  if (config.data_analysis) {
    profiles.reserve(context.data().profiles.size());
    for (const auto& [_, profile] : context.data().profiles) profiles.push_back(&profile);
  }

  // Query rules run once per unique fingerprint group (Algorithm 2 memoized):
  // every statement in a group carries identical facts modulo raw_sql/stmt,
  // so one evaluation of the group's representative stands in for all of
  // them. Results land in per-group slots, then fan back out to every
  // occurrence in original statement order — reproducing the serial
  // (query-major, rule-minor) detection stream byte-for-byte.
  int threads = ThreadPool::ResolveParallelism(parallelism);
  std::unique_ptr<ThreadPool> transient;
  if (threads > 1 && pool == nullptr) {
    transient = std::make_unique<ThreadPool>(threads);
    pool = transient.get();
  }

  std::vector<std::vector<Detection>> per_group(unique_count);
  ParallelShards(
      unique_count, threads,
      [&](int /*shard*/, size_t begin, size_t end) {
        for (size_t u = begin; u < end; ++u) {
          std::vector<Detection>* out = &per_group[u];
          for (const auto& rule : registry.rules()) {
            rule->CheckQuery(queries[g->unique[u]], context, config, out);
          }
        }
      },
      pool);

  std::vector<std::vector<Detection>> data_buffers(
      static_cast<size_t>(threads > 1 ? threads : 1));
  ParallelShards(
      profiles.size(), threads,
      [&](int shard, size_t begin, size_t end) {
        CheckDataShard(context, registry, config, profiles, begin, end,
                       &data_buffers[static_cast<size_t>(shard)]);
      },
      pool);

  // Merge the per-shard data buffers in shard order (== profile map order),
  // then serialize the final stream through the shared fan-out.
  std::vector<Detection> data_detections;
  size_t data_total = 0;
  for (const auto& buffer : data_buffers) data_total += buffer.size();
  data_detections.reserve(data_total);
  for (auto& buffer : data_buffers) {
    for (auto& d : buffer) data_detections.push_back(std::move(d));
  }
  return FanOutDetections(context, *g, std::move(per_group), std::move(data_detections));
}

std::vector<Detection> FanOutDetections(const Context& context, const QueryGroups& groups,
                                        std::vector<std::vector<Detection>> per_group,
                                        std::vector<Detection> data_detections) {
  const std::vector<QueryFacts>& queries = context.queries();
  const size_t n = groups.representative.size();
  const size_t unique_count = groups.unique.size();

  // Fan out: statement i gets its group's detections, rebased onto its own
  // raw text / parse tree wherever the rule pointed them at the
  // representative's. Statements that lead a single-occurrence group take
  // their buffer by move (the common non-duplicate case costs nothing).
  std::vector<size_t> group_pos(n);
  std::vector<size_t> group_size(unique_count, 0);
  for (size_t u = 0; u < unique_count; ++u) group_pos[groups.unique[u]] = u;
  for (size_t i = 0; i < n; ++i) ++group_size[group_pos[groups.representative[i]]];

  size_t total = data_detections.size();
  for (size_t i = 0; i < n; ++i) {
    total += per_group[group_pos[groups.representative[i]]].size();
  }

  std::vector<Detection> detections;
  detections.reserve(total);
  std::vector<size_t> remaining(unique_count);
  for (size_t u = 0; u < unique_count; ++u) remaining[u] = group_size[u];
  for (size_t i = 0; i < n; ++i) {
    size_t rep = groups.representative[i];
    size_t g = group_pos[rep];
    std::vector<Detection>& buffer = per_group[g];
    bool last_occurrence = --remaining[g] == 0;
    if (rep == i) {
      // The representative's detections are already correctly based; move
      // them when no later duplicate still needs the originals.
      if (last_occurrence) {
        for (auto& d : buffer) detections.push_back(std::move(d));
      } else {
        for (const auto& d : buffer) detections.push_back(d);
      }
      continue;
    }
    if (last_occurrence) {
      // Final fan-out of this group: rebase the buffer in place and move it
      // out instead of copying every string field one more time.
      for (auto& d : buffer) {
        detections.push_back(RebaseDetection(std::move(d), queries[rep], queries[i]));
      }
      continue;
    }
    for (const auto& d : buffer) {
      detections.push_back(RebaseDetection(d, queries[rep], queries[i]));
    }
  }
  for (auto& d : data_detections) detections.push_back(std::move(d));
  return detections;
}

Detection RebaseDetection(Detection d, const QueryFacts& rep_facts,
                          const QueryFacts& occ_facts) {
  if (d.query == rep_facts.raw_sql) d.query = occ_facts.raw_sql;
  if (d.stmt == rep_facts.stmt) d.stmt = occ_facts.stmt;
  return d;
}

std::vector<Detection> DetectDataAntiPatterns(const Context& context,
                                              const RuleRegistry& registry,
                                              const DetectorConfig& config) {
  std::vector<Detection> out;
  if (!config.data_analysis) return out;
  for (const auto& [_, profile] : context.data().profiles) {
    for (const auto& rule : registry.rules()) {
      rule->CheckData(profile, context, config, &out);
    }
  }
  return out;
}

std::vector<Detection> DetectAntiPatterns(const Context& context,
                                          const DetectorConfig& config,
                                          int parallelism) {
  return DetectAntiPatterns(context, RuleRegistry::Default(), config, parallelism);
}

}  // namespace sqlcheck
