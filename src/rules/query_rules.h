#pragma once

#include <memory>
#include <vector>

#include "rules/rule.h"

namespace sqlcheck {

/// \brief The query-shape rules of Table 1 plus Readable Password: Column
/// Wildcard, Concatenate Nulls, Ordering by RAND, Pattern Matching, Implicit
/// Columns, DISTINCT and JOIN, Too Many Joins.
std::vector<std::unique_ptr<Rule>> MakeQueryRules();

}  // namespace sqlcheck
