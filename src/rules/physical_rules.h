#pragma once

#include <memory>
#include <vector>

#include "rules/rule.h"

namespace sqlcheck {

/// \brief The six physical-design rules of Table 1: Rounding Errors,
/// Enumerated Types, External Data Storage, Index Overuse, Index Underuse,
/// and Clone Table.
std::vector<std::unique_ptr<Rule>> MakePhysicalDesignRules();

}  // namespace sqlcheck
