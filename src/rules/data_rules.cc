#include "rules/data_rules.h"

#include <cmath>
#include <map>

#include "common/strings.h"

namespace sqlcheck {

namespace {

Detection DataDetection(AntiPattern type, std::string table, std::string column,
                        std::string message) {
  Detection d;
  d.type = type;
  d.source = DetectionSource::kDataAnalysis;
  d.table = std::move(table);
  d.column = std::move(column);
  d.message = std::move(message);
  return d;
}

// ---------------------------------------------------------------------------
// Missing Timezone
// ---------------------------------------------------------------------------
class MissingTimezoneRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kMissingTimezone; }
  QueryRuleScope query_scope() const override {
    return QueryRuleScope::kStatementLocal;
  }

  void CheckQuery(const QueryFacts& facts, const Context& context,
                  const DetectorConfig& config, std::vector<Detection>* out) const override {
    (void)context;
    if (!config.intra_query || facts.stmt == nullptr) return;
    const auto* create = facts.stmt->As<sql::CreateTableStatement>();
    if (create == nullptr) return;
    for (const auto& col : create->columns) {
      DataType t = DataType::FromTypeName(col.type);
      if (t.id != TypeId::kTimestamp) continue;  // tz-less timestamp type
      Detection d;
      d.type = type();
      d.source = DetectionSource::kIntraQuery;
      d.table = create->table;
      d.column = col.name;
      d.query = facts.raw_sql;
      d.stmt = facts.stmt;
      d.message = "column '" + col.name +
                  "' is TIMESTAMP WITHOUT TIME ZONE; instants become ambiguous across "
                  "deployments — use TIMESTAMPTZ";
      out->push_back(std::move(d));
      return;
    }
  }

  void CheckData(const TableProfile& profile, const Context& context,
                 const DetectorConfig& config, std::vector<Detection>* out) const override {
    if (!config.data_analysis) return;
    const TableSchema* schema = context.catalog().FindTable(profile.table);
    for (const auto& stats : profile.stats.columns) {
      if (stats.row_count < config.min_rows_for_data_rules) continue;
      bool schema_tzless = false;
      if (schema != nullptr) {
        const ColumnSchema* col = schema->FindColumn(stats.column);
        if (col != nullptr && col->type.id == TypeId::kTimestamp) schema_tzless = true;
      }
      bool data_tzless =
          stats.date_string_fraction >= 0.9 && stats.timezone_fraction <= 0.1;
      if (!schema_tzless && !data_tzless) continue;
      out->push_back(DataDetection(
          type(), profile.table, stats.column,
          "date-time values in '" + stats.column + "' carry no timezone"));
      return;  // one per table keeps the report readable
    }
  }
};

// ---------------------------------------------------------------------------
// Incorrect Data Type
// ---------------------------------------------------------------------------
class IncorrectDataTypeRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kIncorrectDataType; }

  void CheckData(const TableProfile& profile, const Context& context,
                 const DetectorConfig& config, std::vector<Detection>* out) const override {
    if (!config.data_analysis) return;
    const TableSchema* schema = context.catalog().FindTable(profile.table);
    if (schema == nullptr) return;
    for (const auto& stats : profile.stats.columns) {
      if (stats.row_count - stats.null_count < config.min_rows_for_data_rules) continue;
      const ColumnSchema* col = schema->FindColumn(stats.column);
      if (col == nullptr || !col->type.IsTextual()) continue;
      if (stats.numeric_string_fraction >= config.numeric_string_fraction) {
        out->push_back(DataDetection(
            type(), profile.table, stats.column,
            "column '" + stats.column + "' is " + col->type.ToSql() + " but " +
                std::to_string(static_cast<int>(stats.numeric_string_fraction * 100)) +
                "% of sampled values are numbers; numeric storage is smaller and "
                "comparable"));
        continue;
      }
      if (stats.date_string_fraction >= config.numeric_string_fraction) {
        out->push_back(DataDetection(
            type(), profile.table, stats.column,
            "column '" + stats.column +
                "' stores date-times as text; use a temporal type"));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Denormalized Table
// ---------------------------------------------------------------------------
class DenormalizedTableRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kDenormalizedTable; }

  void CheckData(const TableProfile& profile, const Context& context,
                 const DetectorConfig& config, std::vector<Detection>* out) const override {
    if (!config.data_analysis) return;
    const TableSchema* schema = context.catalog().FindTable(profile.table);
    if (schema == nullptr || profile.sample.size() < config.min_rows_for_data_rules) return;

    // Look for a functional dependency X -> Y between non-key columns where X
    // repeats: the (X, Y) pairs belong in their own table.
    const auto& columns = schema->columns;
    for (size_t x = 0; x < columns.size(); ++x) {
      if (IsKeyColumn(*schema, columns[x].name)) continue;
      const ColumnStats* xs = profile.stats.FindColumn(columns[x].name);
      if (xs == nullptr || xs->distinct_count == 0) continue;
      // X must repeat meaningfully.
      size_t non_null = xs->row_count - xs->null_count;
      if (non_null < 2 * xs->distinct_count) continue;
      for (size_t y = 0; y < columns.size(); ++y) {
        if (x == y || IsKeyColumn(*schema, columns[y].name)) continue;
        if (!columns[y].type.IsTextual()) continue;
        if (!FunctionallyDetermines(profile.sample, x, y)) continue;
        const ColumnStats* ys = profile.stats.FindColumn(columns[y].name);
        if (ys == nullptr || ys->distinct_count < 2) continue;  // constants are a
                                                                // different AP
        out->push_back(DataDetection(
            type(), profile.table, columns[y].name,
            "'" + columns[y].name + "' is functionally determined by '" +
                columns[x].name + "' and duplicated across rows; normalize the pair "
                "into a lookup table"));
        return;
      }
    }
  }

 private:
  static bool IsKeyColumn(const TableSchema& schema, const std::string& column) {
    for (const auto& pk : schema.primary_key) {
      if (EqualsIgnoreCase(pk, column)) return true;
    }
    return false;
  }

  static bool FunctionallyDetermines(const std::vector<Row>& sample, size_t x, size_t y) {
    std::map<std::string, std::string> mapping;
    bool repeats = false;
    for (const Row& row : sample) {
      if (x >= row.size() || y >= row.size()) return false;
      if (row[x].is_null() || row[y].is_null()) continue;
      std::string key = row[x].ToDisplay();
      std::string value = row[y].ToDisplay();
      auto [it, inserted] = mapping.emplace(key, value);
      if (!inserted) {
        if (it->second != value) return false;  // not functional
        repeats = true;
      }
    }
    return repeats && mapping.size() >= 2;
  }
};

// ---------------------------------------------------------------------------
// Information Duplication
// ---------------------------------------------------------------------------
class InformationDuplicationRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kInformationDuplication; }

  void CheckData(const TableProfile& profile, const Context& context,
                 const DetectorConfig& config, std::vector<Detection>* out) const override {
    if (!config.data_analysis) return;
    const TableSchema* schema = context.catalog().FindTable(profile.table);
    if (schema == nullptr || profile.sample.size() < config.min_rows_for_data_rules) return;
    const auto& columns = schema->columns;

    // Name-based pair: an age column next to a birth-date column.
    int age_idx = -1;
    int dob_idx = -1;
    for (size_t c = 0; c < columns.size(); ++c) {
      std::string_view name = columns[c].name;
      if (EqualsIgnoreCase(name, "age")) age_idx = static_cast<int>(c);
      if (ContainsIgnoreCase(name, "birth") || EqualsIgnoreCase(name, "dob")) {
        dob_idx = static_cast<int>(c);
      }
    }
    if (age_idx >= 0 && dob_idx >= 0) {
      out->push_back(DataDetection(
          type(), profile.table, columns[static_cast<size_t>(age_idx)].name,
          "'age' duplicates information derivable from '" +
              columns[static_cast<size_t>(dob_idx)].name +
              "'; it goes stale and must be maintained on every write"));
      return;
    }

    // Arithmetic duplication: numeric Z = X + Y across the whole sample.
    std::vector<size_t> numeric;
    for (size_t c = 0; c < columns.size(); ++c) {
      if (columns[c].type.IsNumeric()) numeric.push_back(c);
    }
    for (size_t zi : numeric) {
      for (size_t xi : numeric) {
        if (xi == zi) continue;
        for (size_t yi : numeric) {
          if (yi == zi || yi < xi) continue;  // yi<xi dedupes (x,y) pairs; x may equal y
          if (SumHolds(profile.sample, xi, yi, zi)) {
            out->push_back(DataDetection(
                type(), profile.table, columns[zi].name,
                "'" + columns[zi].name + "' always equals " + columns[xi].name + " + " +
                    columns[yi].name + " in the sample; derived columns drift when a "
                    "source column changes"));
            return;
          }
        }
      }
    }
  }

 private:
  static bool SumHolds(const std::vector<Row>& sample, size_t x, size_t y, size_t z) {
    int checked = 0;
    for (const Row& row : sample) {
      if (x >= row.size() || y >= row.size() || z >= row.size()) return false;
      if (row[x].is_null() || row[y].is_null() || row[z].is_null()) continue;
      if (std::fabs(row[x].AsReal() + row[y].AsReal() - row[z].AsReal()) > 1e-9) {
        return false;
      }
      ++checked;
    }
    return checked >= 3;
  }
};

// ---------------------------------------------------------------------------
// Redundant Column
// ---------------------------------------------------------------------------
class RedundantColumnRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kRedundantColumn; }

  void CheckData(const TableProfile& profile, const Context& context,
                 const DetectorConfig& config, std::vector<Detection>* out) const override {
    (void)context;
    if (!config.data_analysis) return;
    for (const auto& stats : profile.stats.columns) {
      if (stats.row_count < config.min_rows_for_data_rules) continue;
      if (stats.NullFraction() >= config.redundant_fraction) {
        out->push_back(DataDetection(
            type(), profile.table, stats.column,
            "column '" + stats.column + "' is NULL in " +
                std::to_string(static_cast<int>(stats.NullFraction() * 100)) +
                "% of rows; it stores nothing"));
        continue;
      }
      size_t non_null = stats.row_count - stats.null_count;
      if (non_null >= config.min_rows_for_data_rules && stats.distinct_count == 1) {
        out->push_back(DataDetection(
            type(), profile.table, stats.column,
            "column '" + stats.column + "' holds the single value '" +
                stats.top_value.ToDisplay() + "' in every row (e.g. a hard-coded "
                "'en-us' locale)"));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// No Domain Constraint
// ---------------------------------------------------------------------------
class NoDomainConstraintRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kNoDomainConstraint; }

  void CheckData(const TableProfile& profile, const Context& context,
                 const DetectorConfig& config, std::vector<Detection>* out) const override {
    if (!config.data_analysis) return;
    const TableSchema* schema = context.catalog().FindTable(profile.table);
    if (schema == nullptr) return;
    for (const auto& col : schema->columns) {
      if (!col.type.IsNumeric()) continue;
      if (!SoundsBounded(col.name)) continue;
      if (HasCheckOn(*schema, col.name)) continue;
      const ColumnStats* stats = profile.stats.FindColumn(col.name);
      if (stats == nullptr || stats->row_count - stats->null_count <
                                  config.min_rows_for_data_rules) {
        continue;
      }
      if (!stats->min.has_value() || !stats->max.has_value()) continue;
      double lo = stats->min->AsReal();
      double hi = stats->max->AsReal();
      // Observed values live in a tight conventional range.
      bool tight = (lo >= 0 && hi <= 5) || (lo >= 0 && hi <= 10) || (lo >= 0 && hi <= 100);
      if (!tight) continue;
      out->push_back(DataDetection(
          type(), profile.table, col.name,
          "'" + col.name + "' values span [" + stats->min->ToDisplay() + ", " +
              stats->max->ToDisplay() +
              "] but no CHECK constraint enforces the range; bad writes will pass "
              "silently"));
    }
  }

 private:
  static bool SoundsBounded(std::string_view name) {
    return ContainsIgnoreCase(name, "rating") || ContainsIgnoreCase(name, "score") ||
           ContainsIgnoreCase(name, "percent") || ContainsIgnoreCase(name, "grade") ||
           EqualsIgnoreCase(name, "stars") || EqualsIgnoreCase(name, "priority") ||
           EqualsIgnoreCase(name, "level");
  }
  static bool HasCheckOn(const TableSchema& schema, const std::string& column) {
    for (const auto& check : schema.checks) {
      if (ContainsIgnoreCase(check.expression_sql, column)) return true;
    }
    return false;
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> MakeDataRules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<MissingTimezoneRule>());
  rules.push_back(std::make_unique<IncorrectDataTypeRule>());
  rules.push_back(std::make_unique<DenormalizedTableRule>());
  rules.push_back(std::make_unique<InformationDuplicationRule>());
  rules.push_back(std::make_unique<RedundantColumnRule>());
  rules.push_back(std::make_unique<NoDomainConstraintRule>());
  return rules;
}

}  // namespace sqlcheck
