#include "rules/rule.h"

#include "common/strings.h"

namespace sqlcheck {

namespace {

// Table 1 of the paper: each AP's category and its impact on Performance,
// Maintainability, Data Amplification, Data Integrity, and Accuracy.
constexpr ApInfo kApTable[] = {
    {AntiPattern::kMultiValuedAttribute, "Multi-Valued Attribute",
     ApCategory::kLogicalDesign, true, true, true, true, true},
    {AntiPattern::kNoPrimaryKey, "No Primary Key", ApCategory::kLogicalDesign, true, true,
     true, true, false},
    {AntiPattern::kNoForeignKey, "No Foreign Key", ApCategory::kLogicalDesign, true, true,
     false, true, false},
    {AntiPattern::kGenericPrimaryKey, "Generic Primary Key", ApCategory::kLogicalDesign,
     false, true, false, false, false},
    {AntiPattern::kDataInMetadata, "Data in Metadata", ApCategory::kLogicalDesign, true,
     true, true, true, true},
    {AntiPattern::kAdjacencyList, "Adjacency List", ApCategory::kLogicalDesign, true, false,
     false, false, false},
    {AntiPattern::kGodTable, "God Table", ApCategory::kLogicalDesign, true, true, false,
     false, false},

    {AntiPattern::kRoundingErrors, "Rounding Errors", ApCategory::kPhysicalDesign, false,
     false, false, false, true},
    {AntiPattern::kEnumeratedTypes, "Enumerated Types", ApCategory::kPhysicalDesign, true,
     true, true, false, false},
    {AntiPattern::kExternalDataStorage, "External Data Storage",
     ApCategory::kPhysicalDesign, false, true, false, true, true},
    {AntiPattern::kIndexOveruse, "Index Overuse", ApCategory::kPhysicalDesign, true, true,
     true, false, false},
    {AntiPattern::kIndexUnderuse, "Index Underuse", ApCategory::kPhysicalDesign, true, true,
     true, false, false},
    {AntiPattern::kCloneTable, "Clone Table", ApCategory::kPhysicalDesign, true, true,
     false, true, true},

    {AntiPattern::kColumnWildcard, "Column Wildcard Usage", ApCategory::kQuery, true, false,
     false, false, true},
    {AntiPattern::kConcatenateNulls, "Concatenate Nulls", ApCategory::kQuery, false, false,
     false, false, true},
    {AntiPattern::kOrderingByRand, "Ordering by RAND", ApCategory::kQuery, true, false,
     false, false, false},
    {AntiPattern::kPatternMatching, "Pattern Matching", ApCategory::kQuery, true, false,
     false, false, false},
    {AntiPattern::kImplicitColumns, "Implicit Columns", ApCategory::kQuery, false, true,
     false, true, false},
    {AntiPattern::kDistinctAndJoin, "DISTINCT and JOIN", ApCategory::kQuery, true, true,
     false, false, false},
    {AntiPattern::kTooManyJoins, "Too Many Joins", ApCategory::kQuery, true, false, false,
     false, false},
    {AntiPattern::kReadablePassword, "Readable Password", ApCategory::kQuery, false, false,
     false, true, true},

    {AntiPattern::kMissingTimezone, "Missing Timezone", ApCategory::kData, false, false,
     false, false, true},
    {AntiPattern::kIncorrectDataType, "Incorrect Data Type", ApCategory::kData, true, false,
     true, false, false},
    {AntiPattern::kDenormalizedTable, "Denormalized Table", ApCategory::kData, true, false,
     true, false, false},
    {AntiPattern::kInformationDuplication, "Information Duplication", ApCategory::kData,
     false, true, false, true, true},
    {AntiPattern::kRedundantColumn, "Redundant Column", ApCategory::kData, false, false,
     true, false, false},
    {AntiPattern::kNoDomainConstraint, "No Domain Constraint", ApCategory::kData, false,
     true, true, true, false},
};

static_assert(sizeof(kApTable) / sizeof(kApTable[0]) == kAntiPatternCount,
              "AP metadata table out of sync with the AntiPattern enum");

}  // namespace

const ApInfo& InfoFor(AntiPattern type) {
  for (const ApInfo& info : kApTable) {
    if (info.type == type) return info;
  }
  return kApTable[0];
}

const char* ApName(AntiPattern type) { return InfoFor(type).name; }

const ApInfo* FindApInfoByName(std::string_view name) {
  for (const ApInfo& info : kApTable) {
    if (EqualsIgnoreCase(info.name, name)) return &info;
  }
  return nullptr;
}

const char* CategoryName(ApCategory category) {
  switch (category) {
    case ApCategory::kLogicalDesign: return "Logical Design";
    case ApCategory::kPhysicalDesign: return "Physical Design";
    case ApCategory::kQuery: return "Query";
    case ApCategory::kData: return "Data";
  }
  return "Unknown";
}

}  // namespace sqlcheck
