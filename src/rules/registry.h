#pragma once

#include <memory>
#include <vector>

#include "rules/rule.h"

namespace sqlcheck {

class ThreadPool;

/// \brief Extensible rule registry (§7 "Extensibility"): starts with the
/// built-in 27 rules; callers may register their own Rule implementations.
class RuleRegistry {
 public:
  /// Registry pre-loaded with every built-in rule.
  static RuleRegistry Default();

  /// Empty registry (for tests and custom deployments).
  RuleRegistry() = default;

  void Register(std::unique_ptr<Rule> rule) { rules_.push_back(std::move(rule)); }
  const std::vector<std::unique_ptr<Rule>>& rules() const { return rules_; }
  size_t size() const { return rules_.size(); }

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
};

/// \brief Runs ap-detect (Algorithm 1): applies every query rule to every
/// analyzed query and every data rule to every profiled table, honouring the
/// config's intra/inter/data switches.
///
/// Query rules are evaluated once per unique query fingerprint group (see
/// Context::query_groups()) and the detections fan back out to every
/// occurrence in original statement order, rebased onto each occurrence's
/// own raw text/parse tree — so duplicate-heavy workloads pay for each
/// distinct statement once while the report stays byte-identical to an
/// unmemoized run.
///
/// With `parallelism > 1` the workload is sharded over a ThreadPool — unique
/// query groups and table profiles are split into contiguous index ranges,
/// each worker evaluates the full rule set against its shard into private
/// detection buffers, and the buffers are merged deterministically. The
/// merged report is byte-identical to a single-threaded run. `parallelism <=
/// 0` uses every hardware thread; rules must stay stateless/
/// `const`-thread-safe (the built-ins are). `pool` (optional) reuses an
/// existing pool for both the query and data phases instead of spinning up a
/// transient one.
std::vector<Detection> DetectAntiPatterns(const Context& context,
                                          const RuleRegistry& registry,
                                          const DetectorConfig& config = {},
                                          int parallelism = 1,
                                          ThreadPool* pool = nullptr);

/// \brief Convenience: detect with the default registry.
std::vector<Detection> DetectAntiPatterns(const Context& context,
                                          const DetectorConfig& config = {},
                                          int parallelism = 1);

}  // namespace sqlcheck
