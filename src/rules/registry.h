#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "fix/fixer.h"
#include "rules/rule.h"

namespace sqlcheck {

class ThreadPool;

/// \brief Extensible rule registry (§7 "Extensibility"): starts with the
/// built-in 27 rules; callers may register their own Rule implementations.
///
/// The registry holds both halves of the paper's (detection, action) pairs:
/// Rules detect, Fixers repair. They pair by AntiPattern type, so a custom
/// deployment may replace either half independently — register a Fixer for
/// a built-in rule's type and the FixEngine uses yours instead.
class RuleRegistry {
 public:
  /// Registry pre-loaded with every built-in rule and its fixer.
  static RuleRegistry Default();

  /// Empty registry (for tests and custom deployments).
  RuleRegistry() = default;

  void Register(std::unique_ptr<Rule> rule) { rules_.push_back(std::move(rule)); }
  const std::vector<std::unique_ptr<Rule>>& rules() const { return rules_; }
  size_t size() const { return rules_.size(); }

  /// Registers the action half for an anti-pattern. The most recently
  /// registered fixer for a type wins, so custom fixers override built-ins.
  void RegisterFixer(std::unique_ptr<Fixer> fixer) {
    fixers_.push_back(std::move(fixer));
  }
  const std::vector<std::unique_ptr<Fixer>>& fixers() const { return fixers_; }

  /// The detection half for `type`, or nullptr (disabled / never registered).
  const Rule* FindRule(AntiPattern type) const;

  /// The action half for `type` (latest registration wins), or nullptr.
  const Fixer* FindFixer(AntiPattern type) const;

  /// Removes every rule whose anti-pattern display name (ApName, matched
  /// ASCII-case-insensitively) appears in `names`. A name that matches no
  /// known anti-pattern returns an error and leaves the registry unchanged;
  /// a valid name with no registered rule (e.g. already disabled) is fine.
  /// Fixers stay registered — with the detection half gone they simply never
  /// fire. Backs SqlCheckOptions::disabled_rules and the CLI's --disable.
  Status Disable(const std::vector<std::string>& names);

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
  std::vector<std::unique_ptr<Fixer>> fixers_;
};

/// \brief Runs ap-detect (Algorithm 1): applies every query rule to every
/// analyzed query and every data rule to every profiled table, honouring the
/// config's intra/inter/data switches.
///
/// Query rules are evaluated once per unique query fingerprint group (see
/// Context::query_groups()) and the detections fan back out to every
/// occurrence in original statement order, rebased onto each occurrence's
/// own raw text/parse tree — so duplicate-heavy workloads pay for each
/// distinct statement once while the report stays byte-identical to an
/// unmemoized run.
///
/// With `parallelism > 1` the workload is sharded over a ThreadPool — unique
/// query groups and table profiles are split into contiguous index ranges,
/// each worker evaluates the full rule set against its shard into private
/// detection buffers, and the buffers are merged deterministically. The
/// merged report is byte-identical to a single-threaded run. `parallelism <=
/// 0` uses every hardware thread; rules must stay stateless/
/// `const`-thread-safe (the built-ins are). `pool` (optional) reuses an
/// existing pool for both the query and data phases instead of spinning up a
/// transient one.
std::vector<Detection> DetectAntiPatterns(const Context& context,
                                          const RuleRegistry& registry,
                                          const DetectorConfig& config = {},
                                          int parallelism = 1,
                                          ThreadPool* pool = nullptr);

/// \brief Convenience: detect with the default registry.
std::vector<Detection> DetectAntiPatterns(const Context& context,
                                          const DetectorConfig& config = {},
                                          int parallelism = 1);

/// \brief Fans per-unique-group query-rule detection buffers back out to
/// every statement occurrence in workload order — rebasing each detection's
/// `query`/`stmt` from the group representative onto the occurrence — then
/// appends the data-rule stream. `per_group[u]` must hold the detections of
/// group `groups.unique[u]`'s representative, in registry rule order.
///
/// This is the single serialization point for detection streams: both the
/// batch detector and the incremental AnalysisSession assemble their final
/// order through it, so the two paths cannot drift.
std::vector<Detection> FanOutDetections(const Context& context, const QueryGroups& groups,
                                        std::vector<std::vector<Detection>> per_group,
                                        std::vector<Detection> data_detections);

/// \brief Runs every rule's CheckData over the profiled tables (profile map
/// order, profile-major / rule-minor) into one stream — the serial reference
/// shape of the batch data phase, reused by the incremental session.
std::vector<Detection> DetectDataAntiPatterns(const Context& context,
                                              const RuleRegistry& registry,
                                              const DetectorConfig& config);

/// \brief Rebases one group-representative detection onto another occurrence
/// of the same canonical statement: query text and parse-tree pointer move
/// from the representative's to the occurrence's, everything else is shared.
/// Used by both the batch fan-out and the streaming Check() path.
Detection RebaseDetection(Detection d, const QueryFacts& rep_facts,
                          const QueryFacts& occ_facts);

}  // namespace sqlcheck
