#pragma once

#include <memory>
#include <vector>

#include "rules/rule.h"

namespace sqlcheck {

/// \brief Extensible rule registry (§7 "Extensibility"): starts with the
/// built-in 27 rules; callers may register their own Rule implementations.
class RuleRegistry {
 public:
  /// Registry pre-loaded with every built-in rule.
  static RuleRegistry Default();

  /// Empty registry (for tests and custom deployments).
  RuleRegistry() = default;

  void Register(std::unique_ptr<Rule> rule) { rules_.push_back(std::move(rule)); }
  const std::vector<std::unique_ptr<Rule>>& rules() const { return rules_; }
  size_t size() const { return rules_.size(); }

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
};

/// \brief Runs ap-detect (Algorithm 1): applies every query rule to every
/// analyzed query and every data rule to every profiled table, honouring the
/// config's intra/inter/data switches.
std::vector<Detection> DetectAntiPatterns(const Context& context,
                                          const RuleRegistry& registry,
                                          const DetectorConfig& config = {});

/// \brief Convenience: detect with the default registry.
std::vector<Detection> DetectAntiPatterns(const Context& context,
                                          const DetectorConfig& config = {});

}  // namespace sqlcheck
