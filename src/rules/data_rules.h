#pragma once

#include <memory>
#include <vector>

#include "rules/rule.h"

namespace sqlcheck {

/// \brief The six data rules of Table 1 (detected by analysing the data
/// itself, §4.2): Missing Timezone, Incorrect Data Type, Denormalized Table,
/// Information Duplication, Redundant Column, No Domain Constraint.
std::vector<std::unique_ptr<Rule>> MakeDataRules();

}  // namespace sqlcheck
