#include "rules/logical_rules.h"

#include "common/strings.h"

namespace sqlcheck {

namespace {

/// True for column names that usually hold prose, where delimiters are
/// ordinary punctuation rather than value separators (§4.1 "Limitation").
bool IsProseColumnName(std::string_view name) {
  static constexpr std::string_view kProse[] = {
      "address", "description", "comment", "comments", "notes", "note",
      "message", "body",        "text",    "bio",      "summary",
  };
  for (std::string_view p : kProse) {
    if (EqualsIgnoreCase(name, p)) return true;
  }
  return false;
}

/// Column names that *sound* like packed value lists.
bool SoundsLikeValueList(std::string_view name) {
  return name.size() > 3 &&
         (EndsWithIgnoreCase(name, "_ids") || EndsWithIgnoreCase(name, "ids") ||
          EndsWithIgnoreCase(name, "_list") || EndsWithIgnoreCase(name, "_tags") ||
          EqualsIgnoreCase(name, "tags"));
}

const sql::CreateTableStatement* AsCreateTable(const QueryFacts& facts) {
  if (facts.stmt == nullptr) return nullptr;
  return facts.stmt->As<sql::CreateTableStatement>();
}

// ---------------------------------------------------------------------------
// Multi-Valued Attribute
// ---------------------------------------------------------------------------
class MultiValuedAttributeRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kMultiValuedAttribute; }

  void CheckQuery(const QueryFacts& facts, const Context& context,
                  const DetectorConfig& config, std::vector<Detection>* out) const override {
    if (!config.intra_query) return;
    // Intra-query signal: LIKE/REGEXP over an id-list-looking column,
    // word-boundary/computed patterns (the string-processing tricks of §2.1),
    // or delimiter-carrying patterns ('%,42,%'). The delimiter variant is the
    // paper's noisy regex — it is exactly what the inter-query context prunes.
    for (const auto& p : facts.patterns) {
      bool id_list_column = SoundsLikeValueList(p.column);
      bool trick_pattern = p.word_boundary || (p.computed_pattern && !p.column.empty());
      bool delimiter_pattern =
          !p.pattern.empty() && (p.pattern.find(',') != std::string::npos ||
                                 p.pattern.find(';') != std::string::npos);
      if (!id_list_column && !trick_pattern && !delimiter_pattern) continue;

      // Inter-query refinement (fewer false positives): prose columns and
      // columns whose data is not delimiter-separated are suppressed.
      if (config.inter_query) {
        if (IsProseColumnName(p.column)) continue;
        if (config.data_analysis && context.has_data() && !p.table.empty()) {
          const TableProfile* profile = context.ProfileFor(p.table);
          if (profile != nullptr) {
            const ColumnStats* stats = profile->stats.FindColumn(p.column);
            if (stats != nullptr && stats->row_count >= config.min_rows_for_data_rules &&
                stats->delimited_fraction < config.delimited_fraction) {
              continue;  // data says this is not a packed list
            }
          }
        }
      }
      Detection d;
      d.type = type();
      d.source = config.inter_query ? DetectionSource::kInterQuery
                                    : DetectionSource::kIntraQuery;
      d.table = p.table;
      d.column = p.column;
      d.query = facts.raw_sql;
      d.stmt = facts.stmt;
      d.message = "column '" + std::string(p.column) +
                  "' is queried with pattern matching, suggesting a delimiter-separated "
                  "value list (violates 1NF); use an intersection table instead";
      out->push_back(std::move(d));
      return;  // one detection per query is enough
    }

    // DDL signal: a textual column whose name advertises a packed list.
    const auto* create = AsCreateTable(facts);
    if (create != nullptr) {
      for (const auto& col : create->columns) {
        DataType t = DataType::FromTypeName(col.type);
        if (t.IsTextual() && SoundsLikeValueList(col.name)) {
          Detection d;
          d.type = type();
          d.source = DetectionSource::kIntraQuery;
          d.table = create->table;
          d.column = col.name;
          d.query = facts.raw_sql;
          d.stmt = facts.stmt;
          d.message = "textual column '" + col.name +
                      "' looks like a delimiter-separated id list; model the relationship "
                      "with an intersection table";
          out->push_back(std::move(d));
        }
      }
    }
  }

  void CheckData(const TableProfile& profile, const Context& context,
                 const DetectorConfig& config, std::vector<Detection>* out) const override {
    (void)context;
    if (!config.data_analysis) return;
    if (profile.stats.row_count < config.min_rows_for_data_rules) return;
    for (const auto& stats : profile.stats.columns) {
      if (stats.delimited_fraction < config.delimited_fraction) continue;
      if (IsProseColumnName(stats.column)) continue;
      Detection d;
      d.type = type();
      d.source = DetectionSource::kDataAnalysis;
      d.table = profile.table;
      d.column = stats.column;
      d.message = "sampled values of '" + stats.column + "' are '" +
                  std::string(1, stats.dominant_delimiter == '\0' ? ','
                                                                  : stats.dominant_delimiter) +
                  "'-separated lists in " +
                  std::to_string(static_cast<int>(stats.delimited_fraction * 100)) +
                  "% of rows (multi-valued attribute)";
      out->push_back(std::move(d));
    }
  }
};

// ---------------------------------------------------------------------------
// No Primary Key
// ---------------------------------------------------------------------------
class NoPrimaryKeyRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kNoPrimaryKey; }
  QueryRuleScope query_scope() const override {
    return QueryRuleScope::kStatementLocal;
  }

  void CheckQuery(const QueryFacts& facts, const Context& context,
                  const DetectorConfig& config, std::vector<Detection>* out) const override {
    (void)context;
    if (!config.intra_query) return;
    const auto* create = AsCreateTable(facts);
    if (create == nullptr || create->HasPrimaryKey()) return;
    Detection d;
    d.type = type();
    d.source = DetectionSource::kIntraQuery;
    d.table = create->table;
    d.query = facts.raw_sql;
    d.stmt = facts.stmt;
    d.message = "table '" + create->table +
                "' has no PRIMARY KEY; rows cannot be uniquely identified and duplicates "
                "are silently allowed";
    out->push_back(std::move(d));
  }

  void CheckData(const TableProfile& profile, const Context& context,
                 const DetectorConfig& config, std::vector<Detection>* out) const override {
    if (!config.data_analysis) return;
    const TableSchema* schema = context.catalog().FindTable(profile.table);
    if (schema == nullptr || schema->HasPrimaryKey()) return;
    Detection d;
    d.type = type();
    d.source = DetectionSource::kDataAnalysis;
    d.table = profile.table;
    d.message = "table '" + profile.table + "' stores " +
                std::to_string(profile.stats.row_count) + " rows without a PRIMARY KEY";
    out->push_back(std::move(d));
  }
};

// ---------------------------------------------------------------------------
// No Foreign Key
// ---------------------------------------------------------------------------
class NoForeignKeyRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kNoForeignKey; }

  void CheckQuery(const QueryFacts& facts, const Context& context,
                  const DetectorConfig& config, std::vector<Detection>* out) const override {
    // Inherently inter-query (Example 3): needs both DDL statements plus the
    // JOIN that connects them.
    if (!config.inter_query) return;
    for (const auto& j : facts.joins) {
      if (j.expression_join || j.left_table.empty() || j.right_table.empty()) continue;
      if (EqualsIgnoreCase(j.left_table, j.right_table)) continue;
      const TableSchema* left = context.catalog().FindTable(j.left_table);
      const TableSchema* right = context.catalog().FindTable(j.right_table);
      if (left == nullptr || right == nullptr) continue;  // need both DDLs
      if (context.ForeignKeyExists(j.left_table, j.right_table)) continue;
      Detection d;
      d.type = type();
      d.source = DetectionSource::kInterQuery;
      d.table = j.right_table;
      d.column = j.right_column;
      d.query = facts.raw_sql;
      d.stmt = facts.stmt;
      d.message = "tables '" + std::string(j.left_table) + "' and '" +
                  std::string(j.right_table) + "' are joined on " +
                  std::string(j.left_column) +
                  " but no FOREIGN KEY links them; referential integrity is unenforced";
      out->push_back(std::move(d));
      return;
    }
  }

  void CheckData(const TableProfile& profile, const Context& context,
                 const DetectorConfig& config, std::vector<Detection>* out) const override {
    if (!config.data_analysis) return;
    const TableSchema* schema = context.catalog().FindTable(profile.table);
    if (schema == nullptr || !schema->foreign_keys.empty()) return;
    // Column named <other_table>_id (or matching another table's PK) with no
    // FK recorded anywhere.
    for (const auto& col : schema->columns) {
      if (!EndsWithIgnoreCase(col.name, "_id") || EqualsIgnoreCase(col.name, "_id")) {
        continue;
      }
      std::string_view target = std::string_view(col.name).substr(0, col.name.size() - 3);
      const TableSchema* parent = context.catalog().FindTable(target);
      if (parent == nullptr) {
        parent = context.catalog().FindTable(std::string(target) + "s");
      }
      if (parent == nullptr || EqualsIgnoreCase(parent->name, profile.table)) continue;
      Detection d;
      d.type = type();
      d.source = DetectionSource::kDataAnalysis;
      d.table = profile.table;
      d.column = col.name;
      d.message = "column '" + col.name + "' appears to reference table '" + parent->name +
                  "' but carries no FOREIGN KEY constraint";
      out->push_back(std::move(d));
      return;
    }
  }
};

// ---------------------------------------------------------------------------
// Generic Primary Key
// ---------------------------------------------------------------------------
class GenericPrimaryKeyRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kGenericPrimaryKey; }
  QueryRuleScope query_scope() const override {
    return QueryRuleScope::kStatementLocal;
  }

  void CheckQuery(const QueryFacts& facts, const Context& context,
                  const DetectorConfig& config, std::vector<Detection>* out) const override {
    (void)context;
    if (!config.intra_query) return;
    const auto* create = AsCreateTable(facts);
    if (create == nullptr) return;
    for (const auto& col : create->columns) {
      if (col.primary_key && EqualsIgnoreCase(col.name, "id")) {
        Emit(create->table, facts, out);
        return;
      }
    }
    for (const auto& con : create->constraints) {
      if (con.kind == sql::TableConstraintKind::kPrimaryKey && con.columns.size() == 1 &&
          EqualsIgnoreCase(con.columns[0], "id")) {
        Emit(create->table, facts, out);
        return;
      }
    }
  }

  void CheckData(const TableProfile& profile, const Context& context,
                 const DetectorConfig& config, std::vector<Detection>* out) const override {
    if (!config.data_analysis) return;
    const TableSchema* schema = context.catalog().FindTable(profile.table);
    if (schema == nullptr) return;
    if (schema->primary_key.size() == 1 && EqualsIgnoreCase(schema->primary_key[0], "id")) {
      Detection d;
      d.type = type();
      d.source = DetectionSource::kDataAnalysis;
      d.table = profile.table;
      d.column = "id";
      d.message = "table '" + profile.table +
                  "' uses a generic 'id' primary key; a descriptive key (e.g. " +
                  ToLower(profile.table) + "_id) improves join readability";
      out->push_back(std::move(d));
    }
  }

 private:
  void Emit(std::string_view table, const QueryFacts& facts,
            std::vector<Detection>* out) const {
    Detection d;
    d.type = type();
    d.source = DetectionSource::kIntraQuery;
    d.table = table;
    d.column = "id";
    d.query = facts.raw_sql;
    d.stmt = facts.stmt;
    d.message = "table '" + std::string(table) + "' defines a generic primary key column 'id'";
    out->push_back(std::move(d));
  }
};

// ---------------------------------------------------------------------------
// Data in Metadata
// ---------------------------------------------------------------------------
class DataInMetadataRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kDataInMetadata; }
  QueryRuleScope query_scope() const override {
    return QueryRuleScope::kStatementLocal;
  }

  void CheckQuery(const QueryFacts& facts, const Context& context,
                  const DetectorConfig& config, std::vector<Detection>* out) const override {
    (void)context;
    if (!config.intra_query) return;
    const auto* create = AsCreateTable(facts);
    if (create == nullptr) return;
    // Numbered column series (tag1, tag2, tag3) hard-code a domain dimension
    // into the schema.
    int series = CountNumberedSeries(create);
    if (series >= 3) {
      Detection d;
      d.type = type();
      d.source = DetectionSource::kIntraQuery;
      d.table = create->table;
      d.query = facts.raw_sql;
      d.stmt = facts.stmt;
      d.message = "table '" + std::string(create->table) + "' defines " + std::to_string(series) +
                  " numbered sibling columns; the series index is data hiding in "
                  "metadata — move it into rows of a child table";
      out->push_back(std::move(d));
    }
  }

  void CheckData(const TableProfile& profile, const Context& context,
                 const DetectorConfig& config, std::vector<Detection>* out) const override {
    if (!config.data_analysis) return;
    const TableSchema* schema = context.catalog().FindTable(profile.table);
    if (schema == nullptr) return;
    int series = 0;
    for (const auto& col : schema->columns) {
      std::string_view name = col.name;
      size_t digits = 0;
      while (digits < name.size() &&
             std::isdigit(static_cast<unsigned char>(name[name.size() - 1 - digits]))) {
        ++digits;
      }
      if (digits > 0 && digits < name.size()) ++series;
    }
    if (series >= 3) {
      Detection d;
      d.type = type();
      d.source = DetectionSource::kDataAnalysis;
      d.table = profile.table;
      d.message = "table '" + profile.table +
                  "' has a numbered column series; application logic is hard-coded in "
                  "the table's metadata";
      out->push_back(std::move(d));
    }
  }

 private:
  static int CountNumberedSeries(const sql::CreateTableStatement* create) {
    int count = 0;
    for (const auto& col : create->columns) {
      std::string_view name = col.name;
      size_t digits = 0;
      while (digits < name.size() &&
             std::isdigit(static_cast<unsigned char>(name[name.size() - 1 - digits]))) {
        ++digits;
      }
      if (digits > 0 && digits < name.size()) ++count;
    }
    return count;
  }
};

// ---------------------------------------------------------------------------
// Adjacency List
// ---------------------------------------------------------------------------
class AdjacencyListRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kAdjacencyList; }
  QueryRuleScope query_scope() const override {
    return QueryRuleScope::kStatementLocal;
  }

  void CheckQuery(const QueryFacts& facts, const Context& context,
                  const DetectorConfig& config, std::vector<Detection>* out) const override {
    (void)context;
    if (!config.intra_query) return;
    const auto* create = AsCreateTable(facts);
    if (create == nullptr) return;
    auto emit = [&](std::string_view column) {
      Detection d;
      d.type = type();
      d.source = DetectionSource::kIntraQuery;
      d.table = create->table;
      d.column = column;
      d.query = facts.raw_sql;
      d.stmt = facts.stmt;
      d.message = "table '" + std::string(create->table) + "' references itself via '" +
                  std::string(column) +
                  "' (adjacency list); hierarchical queries will need recursive "
                  "traversal — consider a path enumeration or closure table";
      out->push_back(std::move(d));
    };
    for (const auto& col : create->columns) {
      if (col.references.has_value() &&
          EqualsIgnoreCase(col.references->table, create->table)) {
        emit(col.name);
        return;
      }
    }
    for (const auto& con : create->constraints) {
      if (con.kind == sql::TableConstraintKind::kForeignKey &&
          EqualsIgnoreCase(con.reference.table, create->table)) {
        emit(con.columns.empty() ? "" : con.columns[0]);
        return;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// God Table
// ---------------------------------------------------------------------------
class GodTableRule final : public Rule {
 public:
  AntiPattern type() const override { return AntiPattern::kGodTable; }
  QueryRuleScope query_scope() const override {
    return QueryRuleScope::kStatementLocal;
  }

  void CheckQuery(const QueryFacts& facts, const Context& context,
                  const DetectorConfig& config, std::vector<Detection>* out) const override {
    (void)context;
    if (!config.intra_query) return;
    const auto* create = AsCreateTable(facts);
    if (create == nullptr) return;
    if (static_cast<int>(create->columns.size()) < config.god_table_columns) return;
    Detection d;
    d.type = type();
    d.source = DetectionSource::kIntraQuery;
    d.table = create->table;
    d.query = facts.raw_sql;
    d.stmt = facts.stmt;
    d.message = "table '" + std::string(create->table) + "' defines " +
                std::to_string(create->columns.size()) +
                " columns (threshold " + std::to_string(config.god_table_columns) +
                "); it likely conflates several entities";
    out->push_back(std::move(d));
  }

  void CheckData(const TableProfile& profile, const Context& context,
                 const DetectorConfig& config, std::vector<Detection>* out) const override {
    if (!config.data_analysis) return;
    const TableSchema* schema = context.catalog().FindTable(profile.table);
    if (schema == nullptr) return;
    if (static_cast<int>(schema->columns.size()) < config.god_table_columns) return;
    Detection d;
    d.type = type();
    d.source = DetectionSource::kDataAnalysis;
    d.table = profile.table;
    d.message = "table '" + profile.table + "' carries " +
                std::to_string(schema->columns.size()) + " columns";
    out->push_back(std::move(d));
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> MakeLogicalDesignRules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<MultiValuedAttributeRule>());
  rules.push_back(std::make_unique<NoPrimaryKeyRule>());
  rules.push_back(std::make_unique<NoForeignKeyRule>());
  rules.push_back(std::make_unique<GenericPrimaryKeyRule>());
  rules.push_back(std::make_unique<DataInMetadataRule>());
  rules.push_back(std::make_unique<AdjacencyListRule>());
  rules.push_back(std::make_unique<GodTableRule>());
  return rules;
}

}  // namespace sqlcheck
