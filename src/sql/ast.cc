#include "sql/ast.h"

#include "common/strings.h"

namespace sqlcheck::sql {

std::vector<std::string> ToStringVector(const AstVector<AstString>& v) {
  std::vector<std::string> out;
  out.reserve(v.size());
  for (const auto& s : v) out.emplace_back(s);
  return out;
}

// ----------------------------- AstDelete -----------------------------------

void AstDelete::operator()(Expr* e) const {
  // Arena-tier nodes are reclaimed wholesale by their arena; running their
  // destructor would be wasted work (every member is arena-backed).
  if (e != nullptr && !e->arena_managed) delete e;
}

void AstDelete::operator()(Statement* s) const {
  if (s != nullptr && !s->arena_managed) delete s;
}

// --------------------------------- Expr -----------------------------------

ExprPtr MakeExpr(ExprKind kind) {
  ExprPtr e(new Expr());
  e->kind = kind;
  return e;
}

ExprPtr Expr::Clone() const {
  ExprPtr out(new Expr());
  out->kind = kind;
  out->text = text;
  out->name_parts.reserve(name_parts.size());
  for (const auto& p : name_parts) out->name_parts.emplace_back(p);
  out->negated = negated;
  out->distinct_arg = distinct_arg;
  out->children.reserve(children.size());
  for (const auto& c : children) out->children.push_back(c->Clone());
  if (subquery) out->subquery = subquery->CloneSelect();
  return out;
}

std::string_view Expr::ColumnName() const {
  if (kind != ExprKind::kColumnRef || name_parts.empty()) return {};
  return name_parts.back();
}

std::string_view Expr::TableQualifier() const {
  if (kind != ExprKind::kColumnRef || name_parts.size() < 2) return {};
  return name_parts[name_parts.size() - 2];
}

ExprPtr MakeColumnRef(std::vector<std::string> name_parts) {
  ExprPtr e = MakeExpr(ExprKind::kColumnRef);
  e->name_parts.reserve(name_parts.size());
  for (auto& p : name_parts) e->name_parts.emplace_back(p);
  return e;
}

ExprPtr MakeStringLiteral(std::string value) {
  ExprPtr e = MakeExpr(ExprKind::kStringLiteral);
  e->text = value;
  return e;
}

ExprPtr MakeNumberLiteral(std::string value) {
  ExprPtr e = MakeExpr(ExprKind::kNumberLiteral);
  e->text = value;
  return e;
}

ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  ExprPtr e = MakeExpr(ExprKind::kBinary);
  e->text = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args) {
  ExprPtr e = MakeExpr(ExprKind::kFunction);
  e->text = name;
  e->children.reserve(args.size());
  for (auto& a : args) e->children.push_back(std::move(a));
  return e;
}

namespace {
void VisitSelectExprs(const SelectStatement& select, bool enter_subqueries,
                      const std::function<void(const Expr&)>& fn);
}  // namespace

void VisitExpr(const Expr& expr, bool enter_subqueries,
               const std::function<void(const Expr&)>& fn) {
  fn(expr);
  for (const auto& c : expr.children) VisitExpr(*c, enter_subqueries, fn);
  if (enter_subqueries && expr.subquery) {
    VisitSelectExprs(*expr.subquery, enter_subqueries, fn);
  }
}

namespace {
void VisitSelectExprs(const SelectStatement& select, bool enter_subqueries,
                      const std::function<void(const Expr&)>& fn) {
  for (const auto& item : select.items) {
    if (item.expr) VisitExpr(*item.expr, enter_subqueries, fn);
  }
  for (const auto& join : select.joins) {
    if (join.on) VisitExpr(*join.on, enter_subqueries, fn);
  }
  if (select.where) VisitExpr(*select.where, enter_subqueries, fn);
  for (const auto& g : select.group_by) VisitExpr(*g, enter_subqueries, fn);
  if (select.having) VisitExpr(*select.having, enter_subqueries, fn);
  for (const auto& o : select.order_by) {
    if (o.expr) VisitExpr(*o.expr, enter_subqueries, fn);
  }
}
}  // namespace

// ------------------------------ Statements --------------------------------

const char* StatementKindName(StatementKind kind) {
  switch (kind) {
    case StatementKind::kSelect: return "SELECT";
    case StatementKind::kInsert: return "INSERT";
    case StatementKind::kUpdate: return "UPDATE";
    case StatementKind::kDelete: return "DELETE";
    case StatementKind::kCreateTable: return "CREATE TABLE";
    case StatementKind::kCreateIndex: return "CREATE INDEX";
    case StatementKind::kAlterTable: return "ALTER TABLE";
    case StatementKind::kDropTable: return "DROP TABLE";
    case StatementKind::kDropIndex: return "DROP INDEX";
    case StatementKind::kUnknown: return "UNKNOWN";
  }
  return "UNKNOWN";
}

TableRef TableRef::Clone() const {
  TableRef out;
  out.name = name;
  out.alias = alias;
  if (subquery) out.subquery = subquery->CloneSelect();
  return out;
}

JoinClause JoinClause::Clone() const {
  JoinClause out;
  out.type = type;
  out.table = table.Clone();
  if (on) out.on = on->Clone();
  out.using_columns.reserve(using_columns.size());
  for (const auto& c : using_columns) out.using_columns.emplace_back(c);
  return out;
}

SelectItem SelectItem::Clone() const {
  SelectItem out;
  if (expr) out.expr = expr->Clone();
  out.alias = alias;
  return out;
}

OrderItem OrderItem::Clone() const {
  OrderItem out;
  if (expr) out.expr = expr->Clone();
  out.descending = descending;
  return out;
}

SelectPtr SelectStatement::CloneSelect() const {
  SelectPtr out(new SelectStatement());
  out->raw_sql = raw_sql;
  out->distinct = distinct;
  out->items.reserve(items.size());
  for (const auto& i : items) out->items.push_back(i.Clone());
  out->from.reserve(from.size());
  for (const auto& f : from) out->from.push_back(f.Clone());
  out->joins.reserve(joins.size());
  for (const auto& j : joins) out->joins.push_back(j.Clone());
  if (where) out->where = where->Clone();
  out->group_by.reserve(group_by.size());
  for (const auto& g : group_by) out->group_by.push_back(g->Clone());
  if (having) out->having = having->Clone();
  out->order_by.reserve(order_by.size());
  for (const auto& o : order_by) out->order_by.push_back(o.Clone());
  out->limit = limit;
  out->offset = offset;
  return out;
}

StatementPtr SelectStatement::CloneStatement() const { return CloneSelect(); }

std::vector<std::string> SelectStatement::ReferencedTables() const {
  std::vector<std::string_view> views;
  CollectReferencedTables(&views);
  std::vector<std::string> out;
  out.reserve(views.size());
  for (std::string_view v : views) out.emplace_back(v);
  return out;
}

void SelectStatement::CollectReferencedTables(std::vector<std::string_view>* out) const {
  for (const auto& f : from) {
    if (!f.name.empty()) out->push_back(f.name);
    if (f.subquery) f.subquery->CollectReferencedTables(out);
  }
  for (const auto& j : joins) {
    if (!j.table.name.empty()) out->push_back(j.table.name);
    if (j.table.subquery) j.table.subquery->CollectReferencedTables(out);
  }
}

int SelectStatement::JoinCount() const {
  int implicit = from.size() > 1 ? static_cast<int>(from.size()) - 1 : 0;
  return implicit + static_cast<int>(joins.size());
}

StatementPtr InsertStatement::CloneStatement() const {
  auto* out = new InsertStatement();
  out->raw_sql = raw_sql;
  out->table = table;
  out->columns.reserve(columns.size());
  for (const auto& c : columns) out->columns.emplace_back(c);
  out->rows.reserve(rows.size());
  for (const auto& row : rows) {
    AstVector<ExprPtr> r;
    r.reserve(row.size());
    for (const auto& e : row) r.push_back(e->Clone());
    out->rows.push_back(std::move(r));
  }
  if (select) out->select = select->CloneSelect();
  out->or_replace = or_replace;
  return StatementPtr(out);
}

StatementPtr UpdateStatement::CloneStatement() const {
  auto* out = new UpdateStatement();
  out->raw_sql = raw_sql;
  out->table = table;
  out->alias = alias;
  out->assignments.reserve(assignments.size());
  for (const auto& [col, e] : assignments) {
    out->assignments.emplace_back(std::piecewise_construct, std::forward_as_tuple(col),
                                  std::forward_as_tuple(e->Clone()));
  }
  if (where) out->where = where->Clone();
  return StatementPtr(out);
}

StatementPtr DeleteStatement::CloneStatement() const {
  auto* out = new DeleteStatement();
  out->raw_sql = raw_sql;
  out->table = table;
  if (where) out->where = where->Clone();
  return StatementPtr(out);
}

std::string TypeName::ToString() const {
  std::string out(name);
  if (!enum_values.empty()) {
    out += "(";
    for (size_t i = 0; i < enum_values.size(); ++i) {
      if (i > 0) out += ", ";
      out += "'";
      out += enum_values[i];
      out += "'";
    }
    out += ")";
  } else if (!params.empty()) {
    out += "(";
    for (size_t i = 0; i < params.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(params[i]);
    }
    out += ")";
  }
  if (with_time_zone) out += " WITH TIME ZONE";
  return out;
}

ColumnDefAst ColumnDefAst::Clone() const {
  ColumnDefAst out;
  out.name = name;
  out.type = type;
  out.not_null = not_null;
  out.primary_key = primary_key;
  out.unique = unique;
  out.auto_increment = auto_increment;
  if (default_value) out.default_value = default_value->Clone();
  if (check) out.check = check->Clone();
  if (references.has_value()) {
    ForeignKeyRefAst ref;
    ref.table = references->table;
    ref.columns.reserve(references->columns.size());
    for (const auto& c : references->columns) ref.columns.emplace_back(c);
    ref.on_delete_cascade = references->on_delete_cascade;
    out.references = std::move(ref);
  }
  return out;
}

TableConstraintAst TableConstraintAst::Clone() const {
  TableConstraintAst out;
  out.kind = kind;
  out.name = name;
  out.columns.reserve(columns.size());
  for (const auto& c : columns) out.columns.emplace_back(c);
  out.reference.table = reference.table;
  out.reference.columns.reserve(reference.columns.size());
  for (const auto& c : reference.columns) out.reference.columns.emplace_back(c);
  out.reference.on_delete_cascade = reference.on_delete_cascade;
  if (check) out.check = check->Clone();
  return out;
}

StatementPtr CreateTableStatement::CloneStatement() const {
  auto* out = new CreateTableStatement();
  out->raw_sql = raw_sql;
  out->table = table;
  out->if_not_exists = if_not_exists;
  out->columns.reserve(columns.size());
  for (const auto& c : columns) out->columns.push_back(c.Clone());
  out->constraints.reserve(constraints.size());
  for (const auto& c : constraints) out->constraints.push_back(c.Clone());
  return StatementPtr(out);
}

const ColumnDefAst* CreateTableStatement::FindColumn(std::string_view name) const {
  for (const auto& c : columns) {
    if (EqualsIgnoreCase(c.name, name)) return &c;
  }
  return nullptr;
}

bool CreateTableStatement::HasPrimaryKey() const {
  for (const auto& c : columns) {
    if (c.primary_key) return true;
  }
  for (const auto& c : constraints) {
    if (c.kind == TableConstraintKind::kPrimaryKey) return true;
  }
  return false;
}

bool CreateTableStatement::HasForeignKey() const {
  for (const auto& c : columns) {
    if (c.references.has_value()) return true;
  }
  for (const auto& c : constraints) {
    if (c.kind == TableConstraintKind::kForeignKey) return true;
  }
  return false;
}

StatementPtr CreateIndexStatement::CloneStatement() const {
  auto* out = new CreateIndexStatement();
  out->raw_sql = raw_sql;
  out->index = index;
  out->table = table;
  out->columns.reserve(columns.size());
  for (const auto& c : columns) out->columns.emplace_back(c);
  out->unique = unique;
  out->if_not_exists = if_not_exists;
  return StatementPtr(out);
}

StatementPtr AlterTableStatement::CloneStatement() const {
  auto* out = new AlterTableStatement();
  out->raw_sql = raw_sql;
  out->table = table;
  out->action = action;
  out->column = column.Clone();
  out->target_name = target_name;
  out->new_name = new_name;
  out->constraint = constraint.Clone();
  out->if_exists = if_exists;
  return StatementPtr(out);
}

StatementPtr DropTableStatement::CloneStatement() const {
  auto* out = new DropTableStatement();
  out->raw_sql = raw_sql;
  out->table = table;
  out->if_exists = if_exists;
  return StatementPtr(out);
}

StatementPtr DropIndexStatement::CloneStatement() const {
  auto* out = new DropIndexStatement();
  out->raw_sql = raw_sql;
  out->index = index;
  out->if_exists = if_exists;
  return StatementPtr(out);
}

void UnknownStatement::AdoptTokens(const std::vector<Token>& source_tokens,
                                   std::string_view lex_source) {
  // raw_sql is the trimmed substring of lex_source; almost every
  // non-normalized token text is a subview of lex_source within the trimmed
  // range and rebases to a view of raw_sql. The exceptions — escape-stripped
  // payloads, and the pathological unterminated-quote case whose body runs
  // into the whitespace Trim removed — get owned copies instead, so the
  // stored bytes always equal the lexed bytes.
  const char* base = lex_source.data();
  const size_t trim_offset =
      raw_sql.empty() ? 0 : static_cast<size_t>(Trim(lex_source).data() - base);
  std::string_view raw_view(raw_sql);

  auto rebases_to_view = [&](const Token& t) {
    if (t.normalized) return false;
    if (t.text.empty()) return true;
    size_t pos = static_cast<size_t>(t.text.data() - base);
    return pos >= trim_offset && pos - trim_offset + t.text.size() <= raw_view.size();
  };

  size_t owned_count = 0;
  for (const Token& t : source_tokens) owned_count += rebases_to_view(t) ? 0 : 1;
  // Exact reserve: views into owned_texts stay valid because the vector
  // never regrows after this.
  owned_texts.clear();
  owned_texts.reserve(owned_count);

  tokens.clear();
  tokens.reserve(source_tokens.size());
  for (const Token& t : source_tokens) {
    Token copy = t;
    if (!rebases_to_view(t)) {
      owned_texts.emplace_back(t.text);
      copy.text = owned_texts.back();
      copy.normalized = true;  // marks "text lives in owned_texts" for Clone
    } else if (!t.text.empty()) {
      size_t pos = static_cast<size_t>(t.text.data() - base);
      copy.text = raw_view.substr(pos - trim_offset, t.text.size());
    } else {
      copy.text = {};
    }
    tokens.push_back(copy);
  }
}

StatementPtr UnknownStatement::CloneStatement() const {
  auto* out = new UnknownStatement();
  out->raw_sql = raw_sql;
  // Rebase the token views onto the clone's own raw_sql / owned_texts;
  // normalized payloads appear in token order, so a single index walks them.
  out->owned_texts.reserve(owned_texts.size());
  for (const auto& s : owned_texts) out->owned_texts.emplace_back(s);
  out->tokens.reserve(tokens.size());
  std::string_view from_raw(raw_sql);
  std::string_view to_raw(out->raw_sql);
  size_t owned_index = 0;
  for (const Token& t : tokens) {
    Token copy = t;
    if (t.normalized) {
      copy.text = out->owned_texts[owned_index++];
    } else if (!t.text.empty()) {
      size_t pos = static_cast<size_t>(t.text.data() - from_raw.data());
      copy.text = to_raw.substr(pos, t.text.size());
    } else {
      copy.text = {};
    }
    out->tokens.push_back(copy);
  }
  return StatementPtr(out);
}

}  // namespace sqlcheck::sql
