#include "sql/ast.h"

#include "common/strings.h"

namespace sqlcheck::sql {

// --------------------------------- Expr -----------------------------------

std::unique_ptr<Expr> Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->text = text;
  out->name_parts = name_parts;
  out->negated = negated;
  out->distinct_arg = distinct_arg;
  out->raw_tokens = raw_tokens;
  out->children.reserve(children.size());
  for (const auto& c : children) out->children.push_back(c->Clone());
  if (subquery) out->subquery = subquery->CloneSelect();
  return out;
}

std::string Expr::ColumnName() const {
  if (kind != ExprKind::kColumnRef || name_parts.empty()) return "";
  return name_parts.back();
}

std::string Expr::TableQualifier() const {
  if (kind != ExprKind::kColumnRef || name_parts.size() < 2) return "";
  return name_parts[name_parts.size() - 2];
}

ExprPtr MakeColumnRef(std::vector<std::string> name_parts) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->name_parts = std::move(name_parts);
  return e;
}

ExprPtr MakeStringLiteral(std::string value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStringLiteral;
  e->text = std::move(value);
  return e;
}

ExprPtr MakeNumberLiteral(std::string value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNumberLiteral;
  e->text = std::move(value);
  return e;
}

ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->text = std::move(op);
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunction;
  e->text = std::move(name);
  e->children = std::move(args);
  return e;
}

namespace {
void VisitSelectExprs(const SelectStatement& select, bool enter_subqueries,
                      const std::function<void(const Expr&)>& fn);
}  // namespace

void VisitExpr(const Expr& expr, bool enter_subqueries,
               const std::function<void(const Expr&)>& fn) {
  fn(expr);
  for (const auto& c : expr.children) VisitExpr(*c, enter_subqueries, fn);
  if (enter_subqueries && expr.subquery) {
    VisitSelectExprs(*expr.subquery, enter_subqueries, fn);
  }
}

namespace {
void VisitSelectExprs(const SelectStatement& select, bool enter_subqueries,
                      const std::function<void(const Expr&)>& fn) {
  for (const auto& item : select.items) {
    if (item.expr) VisitExpr(*item.expr, enter_subqueries, fn);
  }
  for (const auto& join : select.joins) {
    if (join.on) VisitExpr(*join.on, enter_subqueries, fn);
  }
  if (select.where) VisitExpr(*select.where, enter_subqueries, fn);
  for (const auto& g : select.group_by) VisitExpr(*g, enter_subqueries, fn);
  if (select.having) VisitExpr(*select.having, enter_subqueries, fn);
  for (const auto& o : select.order_by) {
    if (o.expr) VisitExpr(*o.expr, enter_subqueries, fn);
  }
}
}  // namespace

// ------------------------------ Statements --------------------------------

const char* StatementKindName(StatementKind kind) {
  switch (kind) {
    case StatementKind::kSelect: return "SELECT";
    case StatementKind::kInsert: return "INSERT";
    case StatementKind::kUpdate: return "UPDATE";
    case StatementKind::kDelete: return "DELETE";
    case StatementKind::kCreateTable: return "CREATE TABLE";
    case StatementKind::kCreateIndex: return "CREATE INDEX";
    case StatementKind::kAlterTable: return "ALTER TABLE";
    case StatementKind::kDropTable: return "DROP TABLE";
    case StatementKind::kDropIndex: return "DROP INDEX";
    case StatementKind::kUnknown: return "UNKNOWN";
  }
  return "UNKNOWN";
}

TableRef TableRef::Clone() const {
  TableRef out;
  out.name = name;
  out.alias = alias;
  if (subquery) out.subquery = subquery->CloneSelect();
  return out;
}

JoinClause JoinClause::Clone() const {
  JoinClause out;
  out.type = type;
  out.table = table.Clone();
  if (on) out.on = on->Clone();
  out.using_columns = using_columns;
  return out;
}

SelectItem SelectItem::Clone() const {
  SelectItem out;
  if (expr) out.expr = expr->Clone();
  out.alias = alias;
  return out;
}

OrderItem OrderItem::Clone() const {
  OrderItem out;
  if (expr) out.expr = expr->Clone();
  out.descending = descending;
  return out;
}

std::unique_ptr<SelectStatement> SelectStatement::CloneSelect() const {
  auto out = std::make_unique<SelectStatement>();
  out->raw_sql = raw_sql;
  out->distinct = distinct;
  for (const auto& i : items) out->items.push_back(i.Clone());
  for (const auto& f : from) out->from.push_back(f.Clone());
  for (const auto& j : joins) out->joins.push_back(j.Clone());
  if (where) out->where = where->Clone();
  for (const auto& g : group_by) out->group_by.push_back(g->Clone());
  if (having) out->having = having->Clone();
  for (const auto& o : order_by) out->order_by.push_back(o.Clone());
  out->limit = limit;
  out->offset = offset;
  return out;
}

std::vector<std::string> SelectStatement::ReferencedTables() const {
  std::vector<std::string> out;
  for (const auto& f : from) {
    if (!f.name.empty()) out.push_back(f.name);
    if (f.subquery) {
      auto inner = f.subquery->ReferencedTables();
      out.insert(out.end(), inner.begin(), inner.end());
    }
  }
  for (const auto& j : joins) {
    if (!j.table.name.empty()) out.push_back(j.table.name);
    if (j.table.subquery) {
      auto inner = j.table.subquery->ReferencedTables();
      out.insert(out.end(), inner.begin(), inner.end());
    }
  }
  return out;
}

int SelectStatement::JoinCount() const {
  int implicit = from.size() > 1 ? static_cast<int>(from.size()) - 1 : 0;
  return implicit + static_cast<int>(joins.size());
}

StatementPtr InsertStatement::CloneStatement() const {
  auto out = std::make_unique<InsertStatement>();
  out->raw_sql = raw_sql;
  out->table = table;
  out->columns = columns;
  for (const auto& row : rows) {
    std::vector<ExprPtr> r;
    for (const auto& e : row) r.push_back(e->Clone());
    out->rows.push_back(std::move(r));
  }
  if (select) out->select = select->CloneSelect();
  out->or_replace = or_replace;
  return out;
}

StatementPtr UpdateStatement::CloneStatement() const {
  auto out = std::make_unique<UpdateStatement>();
  out->raw_sql = raw_sql;
  out->table = table;
  out->alias = alias;
  for (const auto& [col, e] : assignments) {
    out->assignments.emplace_back(col, e->Clone());
  }
  if (where) out->where = where->Clone();
  return out;
}

StatementPtr DeleteStatement::CloneStatement() const {
  auto out = std::make_unique<DeleteStatement>();
  out->raw_sql = raw_sql;
  out->table = table;
  if (where) out->where = where->Clone();
  return out;
}

std::string TypeName::ToString() const {
  std::string out = name;
  if (!enum_values.empty()) {
    out += "(";
    for (size_t i = 0; i < enum_values.size(); ++i) {
      if (i > 0) out += ", ";
      out += "'" + enum_values[i] + "'";
    }
    out += ")";
  } else if (!params.empty()) {
    out += "(";
    for (size_t i = 0; i < params.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(params[i]);
    }
    out += ")";
  }
  if (with_time_zone) out += " WITH TIME ZONE";
  return out;
}

ColumnDefAst ColumnDefAst::Clone() const {
  ColumnDefAst out;
  out.name = name;
  out.type = type;
  out.not_null = not_null;
  out.primary_key = primary_key;
  out.unique = unique;
  out.auto_increment = auto_increment;
  if (default_value) out.default_value = default_value->Clone();
  if (check) out.check = check->Clone();
  out.references = references;
  return out;
}

TableConstraintAst TableConstraintAst::Clone() const {
  TableConstraintAst out;
  out.kind = kind;
  out.name = name;
  out.columns = columns;
  out.reference = reference;
  if (check) out.check = check->Clone();
  return out;
}

StatementPtr CreateTableStatement::CloneStatement() const {
  auto out = std::make_unique<CreateTableStatement>();
  out->raw_sql = raw_sql;
  out->table = table;
  out->if_not_exists = if_not_exists;
  for (const auto& c : columns) out->columns.push_back(c.Clone());
  for (const auto& c : constraints) out->constraints.push_back(c.Clone());
  return out;
}

const ColumnDefAst* CreateTableStatement::FindColumn(std::string_view name) const {
  for (const auto& c : columns) {
    if (EqualsIgnoreCase(c.name, name)) return &c;
  }
  return nullptr;
}

bool CreateTableStatement::HasPrimaryKey() const {
  for (const auto& c : columns) {
    if (c.primary_key) return true;
  }
  for (const auto& c : constraints) {
    if (c.kind == TableConstraintKind::kPrimaryKey) return true;
  }
  return false;
}

bool CreateTableStatement::HasForeignKey() const {
  for (const auto& c : columns) {
    if (c.references.has_value()) return true;
  }
  for (const auto& c : constraints) {
    if (c.kind == TableConstraintKind::kForeignKey) return true;
  }
  return false;
}

StatementPtr CreateIndexStatement::CloneStatement() const {
  auto out = std::make_unique<CreateIndexStatement>();
  *out = *this;  // all value members
  return out;
}

StatementPtr AlterTableStatement::CloneStatement() const {
  auto out = std::make_unique<AlterTableStatement>();
  out->raw_sql = raw_sql;
  out->table = table;
  out->action = action;
  out->column = column.Clone();
  out->target_name = target_name;
  out->new_name = new_name;
  out->constraint = constraint.Clone();
  out->if_exists = if_exists;
  return out;
}

StatementPtr DropTableStatement::CloneStatement() const {
  auto out = std::make_unique<DropTableStatement>();
  *out = *this;
  return out;
}

StatementPtr DropIndexStatement::CloneStatement() const {
  auto out = std::make_unique<DropIndexStatement>();
  *out = *this;
  return out;
}

StatementPtr UnknownStatement::CloneStatement() const {
  auto out = std::make_unique<UnknownStatement>();
  out->raw_sql = raw_sql;
  out->tokens = tokens;
  return out;
}

}  // namespace sqlcheck::sql
