#include "sql/block_scan.h"

#include <cstdlib>

namespace sqlcheck::sql::blockscan {

namespace detail {

std::atomic_int g_mode{-1};

int InitModeSlow() {
  const char* env = std::getenv("SQLCHECK_FORCE_SCALAR");
  int mode = (env != nullptr && env[0] != '\0' &&
              !(env[0] == '0' && env[1] == '\0'))
                 ? 1
                 : 0;
  // Racing first calls agree (the env cannot change mid-init), and a test
  // override that already landed must win — hence compare-exchange from the
  // uninitialized state only.
  int expected = -1;
  if (g_mode.compare_exchange_strong(expected, mode, std::memory_order_relaxed)) {
    return mode;
  }
  return expected;
}

}  // namespace detail

void SetForceScalarForTest(bool force) {
  detail::g_mode.store(force ? 1 : 0, std::memory_order_relaxed);
}

const char* FastTierName() {
#if SQLCHECK_BLOCK_SCAN_SSE2
  return "sse2";
#elif SQLCHECK_BLOCK_SCAN_NEON
  return "neon";
#elif SQLCHECK_BLOCK_SCAN_SWAR
  return "swar";
#else
  return "scalar";
#endif
}

}  // namespace sqlcheck::sql::blockscan
