#pragma once

#include <string_view>
#include <vector>

#include "sql/ast.h"

namespace sqlcheck::sql {

/// \brief Parses a single SQL statement.
///
/// Non-validating by design (mirroring the paper's use of `sqlparse`): the
/// parser accepts any dialect it can make sense of, and anything it cannot
/// parse comes back as an `UnknownStatement` carrying the raw token run so
/// pattern-based rules still apply. This function never returns null.
StatementPtr ParseStatement(std::string_view sql);

/// \brief Splits `script` on statement boundaries and parses each statement.
std::vector<StatementPtr> ParseScript(std::string_view script);

}  // namespace sqlcheck::sql
