#pragma once

#include <string_view>
#include <vector>

#include "common/arena.h"
#include "sql/ast.h"
#include "sql/lexer.h"

namespace sqlcheck::sql {

/// \brief Parses a single SQL statement.
///
/// Non-validating by design (mirroring the paper's use of `sqlparse`): the
/// parser accepts any dialect it can make sense of, and anything it cannot
/// parse comes back as an `UnknownStatement` carrying the raw token run so
/// pattern-based rules still apply. This function never returns null.
///
/// The one-argument form builds a heap-tier statement (self-contained,
/// deleted normally). The arena form is the hot path: the statement and its
/// whole tree are placed in `arena` — zero heap allocations per node — and
/// reclaimed when the arena is destroyed; `buffer` (optional) reuses token
/// storage across calls. Arena statements must not outlive their arena.
StatementPtr ParseStatement(std::string_view sql);
StatementPtr ParseStatement(std::string_view sql, Arena* arena,
                            TokenBuffer* buffer = nullptr);

/// \brief Splits `script` on statement boundaries and parses each statement.
std::vector<StatementPtr> ParseScript(std::string_view script);
std::vector<StatementPtr> ParseScript(std::string_view script, Arena* arena,
                                      TokenBuffer* buffer = nullptr);

}  // namespace sqlcheck::sql
